// §6.3/§6.5 microbenchmarks (google-benchmark, wall-clock): the in-network
// dirty set's register-level operations, utilization/overflow behaviour of
// the set-associative layout, and the resource footprint the paper quotes
// (1,310,720 32-bit registers = 5 MiB across 10 stages).
#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/pswitch/data_plane.h"
#include "src/pswitch/dirty_set.h"

namespace switchfs::psw {
namespace {

void BM_DirtySetInsert(benchmark::State& state) {
  DirtySet ds{DirtySetConfig{}};
  Rng rng(1);
  std::vector<Fingerprint> fps;
  for (int i = 0; i < 1 << 16; ++i) {
    fps.push_back(FingerprintFromHash(rng.Next()));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.Insert(fps[i & 0xffff]));
    if ((++i & 0xffff) == 0) {
      state.PauseTiming();
      ds.Clear();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_DirtySetInsert);

void BM_DirtySetQuery(benchmark::State& state) {
  DirtySet ds{DirtySetConfig{}};
  Rng rng(1);
  std::vector<Fingerprint> fps;
  for (int i = 0; i < 1 << 16; ++i) {
    fps.push_back(FingerprintFromHash(rng.Next()));
    ds.Insert(fps.back());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.Query(fps[i++ & 0xffff]));
  }
}
BENCHMARK(BM_DirtySetQuery);

void BM_DirtySetRemoveInsertCycle(benchmark::State& state) {
  DirtySet ds{DirtySetConfig{}};
  Rng rng(1);
  std::vector<Fingerprint> fps;
  for (int i = 0; i < 1 << 12; ++i) {
    fps.push_back(FingerprintFromHash(rng.Next()));
  }
  size_t i = 0;
  uint64_t seq = 0;
  for (auto _ : state) {
    const Fingerprint fp = fps[i++ & 0xfff];
    ds.Insert(fp);
    ds.Remove(fp, /*origin=*/1, ++seq);
  }
}
BENCHMARK(BM_DirtySetRemoveInsertCycle);

// Utilization sweep: overflow rate at increasing fill factors (the paper's
// "high memory utilization and low conflict rate" claim, §6.3).
void BM_DirtySetFillFactor(benchmark::State& state) {
  const double fill = static_cast<double>(state.range(0)) / 100.0;
  uint64_t overflows = 0;
  uint64_t inserts = 0;
  for (auto _ : state) {
    DirtySetConfig cfg;
    cfg.num_stages = 10;
    cfg.registers_per_stage = 4096;
    DirtySet ds(cfg);
    Rng rng(42);
    const auto n = static_cast<uint64_t>(10 * 4096 * fill);
    for (uint64_t i = 0; i < n; ++i) {
      if (!ds.Insert(FingerprintFromHash(rng.Next()))) {
        overflows++;
      }
      inserts++;
    }
  }
  state.counters["overflow_pct"] =
      100.0 * static_cast<double>(overflows) / static_cast<double>(inserts);
}
BENCHMARK(BM_DirtySetFillFactor)->Arg(25)->Arg(50)->Arg(75)->Arg(90)->Arg(100);

void BM_DataPlaneProcessInsert(benchmark::State& state) {
  DataPlane dp;
  dp.SetServerGroup({1, 2, 3, 4, 5, 6, 7, 8});
  Rng rng(1);
  for (auto _ : state) {
    net::Packet p;
    p.src = 1;
    p.dst = 9;
    p.ds.op = net::DsOp::kInsert;
    p.ds.fingerprint = FingerprintFromHash(rng.Next());
    p.ds.origin = 1;
    benchmark::DoNotOptimize(dp.Process(std::move(p)));
  }
}
BENCHMARK(BM_DataPlaneProcessInsert);

void BM_MemoryFootprint(benchmark::State& state) {
  for (auto _ : state) {
    DirtySet ds{DirtySetConfig{}};
    benchmark::DoNotOptimize(ds.MemoryBytes());
    state.counters["MiB"] =
        static_cast<double>(ds.MemoryBytes()) / (1024.0 * 1024.0);
  }
}
BENCHMARK(BM_MemoryFootprint)->Iterations(1);

}  // namespace
}  // namespace switchfs::psw

BENCHMARK_MAIN();
