// Fig 2 (motivation): throughput scalability and latency of metadata
// operations on the two emulated state-of-the-art baselines.
//  (a) stat throughput vs #servers, uniform files in one shared directory —
//      E-CFS scales (per-file hashing), E-InfiniFS is pinned to one server.
//  (b) latency breakdown (network / storage / software) of stat and create.
//  (c) create throughput vs #servers in a shared directory — neither scales
//      (directory-update serialization).
//  (d) create throughput vs cores per server — neither scales.
#include <cinttypes>

#include "bench/bench_util.h"

namespace switchfs::bench {
namespace {

using baselines::SystemKind;

void ThroughputVsServers(core::OpType op, bool fresh_names) {
  std::printf("%-20s %8s %8s\n", "system", "servers", "Kops/s");
  for (SystemKind kind : {SystemKind::kEInfiniFS, SystemKind::kECfs}) {
    for (uint32_t servers : {4u, 8u, 12u, 16u}) {
      auto world = MakeBaseline(kind, servers);
      auto dirs = wl::PreloadDirs(*world, 1, "/shared");
      std::unique_ptr<wl::OpStream> stream;
      if (fresh_names) {
        stream = std::make_unique<wl::FreshNameStream>(op, dirs, "n");
      } else {
        auto files = wl::PreloadFiles(*world, dirs, 4000);
        stream = std::make_unique<wl::RandomChoiceStream>(op, files);
      }
      wl::RunnerConfig rc;
      rc.workers = 256;
      rc.total_ops = ScaledOps(op == core::OpType::kStat ? 60000 : 25000);
      rc.warmup_ops = rc.total_ops / 10;
      wl::RunResult r = wl::RunWorkload(*world, *stream, rc);
      std::printf("%-20s %8u %8.1f\n", baselines::SystemName(kind), servers,
                  r.ThroughputOpsPerSec() / 1e3);
    }
  }
}

void LatencyBreakdown() {
  // Single-client latency plus its decomposition per the calibrated cost
  // model (network = link/switch traversals, storage = KV + WAL, software =
  // everything else). The decomposition is analytic; the total is measured.
  std::printf("%-20s %-8s %10s %9s %9s %9s\n", "system", "op", "total(us)",
              "net(us)", "store(us)", "sw(us)");
  for (SystemKind kind : {SystemKind::kEInfiniFS, SystemKind::kECfs}) {
    auto world = MakeBaseline(kind, 8);
    auto dirs = wl::PreloadDirs(*world, 1, "/shared");
    auto files = wl::PreloadFiles(*world, dirs, 1000);
    const sim::CostModel costs;

    for (core::OpType op : {core::OpType::kStat, core::OpType::kCreate}) {
      std::unique_ptr<wl::OpStream> stream;
      if (op == core::OpType::kCreate) {
        stream = std::make_unique<wl::FreshNameStream>(op, dirs, "n");
      } else {
        stream = std::make_unique<wl::RandomChoiceStream>(op, files);
      }
      wl::RunnerConfig rc;
      rc.workers = 1;  // one request at a time: pure latency
      rc.total_ops = ScaledOps(3000);
      rc.warmup_ops = 200;
      wl::RunResult r = wl::RunWorkload(*world, *stream, rc);

      const bool create = op == core::OpType::kCreate;
      // Network: request + response, one RTT each through the plain switch;
      // E-CFS create adds the cross-server directory-update round trip.
      double rtts = 1.0;
      if (create && kind == SystemKind::kECfs) {
        rtts += 1.0;
      }
      const double net_us =
          rtts * sim::ToMicros(2 * (2 * costs.link_latency +
                                    costs.plain_switch_delay));
      const double store_us =
          create ? sim::ToMicros(costs.kv_get + costs.wal_append +
                                 costs.kv_put)
                 : sim::ToMicros(costs.kv_get);
      const double sw_us = r.MeanLatencyUs() - net_us - store_us;
      std::printf("%-20s %-8s %10.2f %9.2f %9.2f %9.2f\n",
                  baselines::SystemName(kind), core::OpTypeName(op),
                  r.MeanLatencyUs(), net_us, store_us, sw_us);
    }
  }
}

void CreateVsCores() {
  std::printf("%-20s %8s %8s\n", "system", "cores", "Kops/s");
  for (SystemKind kind : {SystemKind::kEInfiniFS, SystemKind::kECfs}) {
    for (int cores : {2, 4, 6}) {
      auto world = MakeBaseline(kind, 8, cores);
      auto dirs = wl::PreloadDirs(*world, 1, "/shared");
      wl::FreshNameStream stream(core::OpType::kCreate, dirs, "n");
      wl::RunnerConfig rc;
      rc.workers = 256;
      rc.total_ops = ScaledOps(25000);
      rc.warmup_ops = rc.total_ops / 10;
      wl::RunResult r = wl::RunWorkload(*world, stream, rc);
      std::printf("%-20s %8d %8.1f\n", baselines::SystemName(kind), cores,
                  r.ThroughputOpsPerSec() / 1e3);
    }
  }
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs::bench;
  PrintHeader("Fig 2(a): stat throughput, shared directory (load balance)");
  ThroughputVsServers(switchfs::core::OpType::kStat, false);
  PrintHeader("Fig 2(b): latency breakdown, 8 servers");
  LatencyBreakdown();
  PrintHeader("Fig 2(c): create throughput in a shared directory vs servers");
  ThroughputVsServers(switchfs::core::OpType::kCreate, true);
  PrintHeader("Fig 2(d): create throughput vs cores per server (8 servers)");
  CreateVsCores();
  return 0;
}
