// Fig 12: peak throughput of individual metadata operations vs number of
// metadata servers, on all five systems, under two access patterns:
//  (a) a single large directory (load-balance stress), and
//  (b) 1024 directories (operation-overhead stress; scaled per bench size).
//
// IndexFS-sim is omitted from the single-large-directory pattern (the paper
// reports IndexFS "consistently crashes with errors" there) and from rmdir
// (its rmdir implementation is incomplete, §7.2.1).
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace switchfs::bench {
namespace {

struct OpSpec {
  core::OpType op;
  const char* name;
  bool fresh;     // create/mkdir: fresh names
  bool sweep;     // delete/rmdir: each target exactly once
  bool dir_op;    // statdir targets directories
};

const OpSpec kOps[] = {
    {core::OpType::kCreate, "create", true, false, false},
    {core::OpType::kUnlink, "delete", false, true, false},
    {core::OpType::kMkdir, "mkdir", true, false, false},
    {core::OpType::kRmdir, "rmdir", false, true, true},
    {core::OpType::kStat, "stat", false, false, false},
    {core::OpType::kStatDir, "statdir", false, false, true},
};

const char* kSystems[] = {"CephFS", "IndexFS", "Emulated-InfiniFS",
                          "Emulated-CFS", "SwitchFS"};

void RunPattern(const char* title, int num_dirs) {
  PrintHeader(title);
  std::printf("%-10s %-20s %8s %8s %8s %8s\n", "op", "system", "srv=4",
              "srv=8", "srv=12", "srv=16");
  for (const OpSpec& spec : kOps) {
    for (const char* system : kSystems) {
      const bool single_dir = num_dirs == 1;
      if (std::string(system) == "IndexFS" &&
          (single_dir || spec.op == core::OpType::kRmdir)) {
        std::printf("%-10s %-20s %8s %8s %8s %8s\n", spec.name, system, "-",
                    "-", "-", "-");
        continue;
      }
      std::printf("%-10s %-20s", spec.name, system);
      for (uint32_t servers : {4u, 8u, 12u, 16u}) {
        auto world = MakeWorld(system, servers);
        const bool ceph = std::string(system) == "CephFS";
        uint64_t total =
            ScaledOps(spec.op == core::OpType::kStat ||
                              spec.op == core::OpType::kStatDir
                          ? 40000
                          : 20000);
        if (ceph) {
          total = ScaledOps(4000);  // two orders slower; keep wall time sane
        }

        std::unique_ptr<wl::OpStream> stream;
        std::vector<std::string> dirs =
            wl::PreloadDirs(*world, num_dirs, "/dir");
        if (spec.op == core::OpType::kStatDir) {
          // Directory reads need a directory *population*: many dirs even in
          // the single-large-directory setting (a single object cannot be
          // read at Mops/s by construction). Use subdirs of the big dir.
          std::vector<std::string> targets;
          const int n = single_dir ? 512 : num_dirs;
          for (int i = 0; i < n; ++i) {
            targets.push_back((single_dir ? dirs[0] + "/sub" : "/dir") +
                              std::to_string(i));
            if (single_dir) {
              world->PreloadDir(targets.back());
            }
          }
          if (!single_dir) {
            targets = dirs;
          }
          stream = std::make_unique<wl::RandomChoiceStream>(spec.op, targets);
        } else if (spec.op == core::OpType::kRmdir) {
          // Sweep over preloaded empty subdirectories.
          std::vector<std::string> targets;
          for (uint64_t i = 0; i < total + total / 5; ++i) {
            targets.push_back(dirs[i % dirs.size()] + "/rd" +
                              std::to_string(i));
            world->PreloadDir(targets.back());
          }
          stream = std::make_unique<wl::ShuffledOnceStream>(spec.op, targets,
                                                            7);
        } else if (spec.sweep) {
          auto files = wl::PreloadFiles(
              *world, dirs,
              static_cast<int>((total + total / 5) / dirs.size() + 1));
          stream = std::make_unique<wl::ShuffledOnceStream>(spec.op, files, 7);
        } else if (spec.fresh) {
          stream = std::make_unique<wl::FreshNameStream>(spec.op, dirs, "n");
        } else {
          auto files = wl::PreloadFiles(
              *world, dirs, single_dir ? 20000 : 40);
          stream = std::make_unique<wl::RandomChoiceStream>(spec.op, files);
        }

        wl::RunnerConfig rc;
        rc.workers = 256;
        rc.total_ops = total;
        rc.warmup_ops = total / 10;
        wl::RunResult r = wl::RunWorkload(*world, *stream, rc);
        std::printf(" %8.1f", r.ThroughputOpsPerSec() / 1e3);
        std::fflush(stdout);
      }
      std::printf("   Kops/s\n");
    }
  }
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  switchfs::bench::RunPattern(
      "Fig 12(a): throughput, single large directory", 1);
  switchfs::bench::RunPattern(
      "Fig 12(b): throughput, multiple directories (256 dirs)", 256);
  return 0;
}
