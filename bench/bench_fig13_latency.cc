// Fig 13: mean latency of each metadata operation with a single client
// issuing requests one by one, 8 metadata servers, all five systems.
// The paper's headline: SwitchFS cuts create/delete/mkdir/rmdir latency by
// hiding the parent-directory update; its statdir pays a modest premium for
// the dirty-set check.
#include <memory>
#include <string>

#include "bench/bench_util.h"

namespace switchfs::bench {
namespace {

struct OpSpec {
  core::OpType op;
  const char* name;
  bool fresh;
  bool sweep;
};

const OpSpec kOps[] = {
    {core::OpType::kStat, "stat", false, false},
    {core::OpType::kStatDir, "statdir", false, false},
    {core::OpType::kCreate, "create", true, false},
    {core::OpType::kMkdir, "mkdir", true, false},
    {core::OpType::kUnlink, "delete", false, true},
    {core::OpType::kRmdir, "rmdir", false, true},
};

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs::bench;
  using switchfs::core::OpType;
  PrintHeader("Fig 13: single-client mean operation latency, 8 servers (us)");
  std::printf("%-20s %8s %8s %8s %8s %8s %8s\n", "system", "stat", "statdir",
              "create", "mkdir", "delete", "rmdir");
  for (const char* system :
       {"CephFS", "IndexFS", "Emulated-InfiniFS", "Emulated-CFS",
        "SwitchFS"}) {
    std::printf("%-20s", system);
    for (const OpSpec& spec : kOps) {
      auto world = MakeWorld(system, 8);
      auto dirs = switchfs::wl::PreloadDirs(*world, 64);
      std::unique_ptr<switchfs::wl::OpStream> stream;
      const bool ceph = std::string(system) == "CephFS";
      uint64_t total = ScaledOps(ceph ? 600 : 3000);
      if (spec.op == OpType::kStatDir) {
        stream = std::make_unique<switchfs::wl::RandomChoiceStream>(spec.op,
                                                                    dirs);
      } else if (spec.op == OpType::kRmdir) {
        std::vector<std::string> targets;
        for (uint64_t i = 0; i < total + 200; ++i) {
          targets.push_back(dirs[i % dirs.size()] + "/rd" + std::to_string(i));
          world->PreloadDir(targets.back());
        }
        stream = std::make_unique<switchfs::wl::ShuffledOnceStream>(
            spec.op, targets, 7);
      } else if (spec.sweep) {
        auto files = switchfs::wl::PreloadFiles(
            *world, dirs, static_cast<int>((total + 200) / dirs.size() + 1));
        stream = std::make_unique<switchfs::wl::ShuffledOnceStream>(spec.op,
                                                                    files, 7);
      } else if (spec.fresh) {
        stream = std::make_unique<switchfs::wl::FreshNameStream>(spec.op, dirs,
                                                                 "n");
      } else {
        auto files = switchfs::wl::PreloadFiles(*world, dirs, 40);
        stream = std::make_unique<switchfs::wl::RandomChoiceStream>(spec.op,
                                                                    files);
      }
      switchfs::wl::RunnerConfig rc;
      rc.workers = 1;  // one in-flight request: pure latency
      rc.total_ops = total;
      rc.warmup_ops = total / 10;
      switchfs::wl::RunResult r = RunWorkload(*world, *stream, rc);
      std::printf(" %8.2f", r.MeanLatencyUs());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
