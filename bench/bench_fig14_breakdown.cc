// Fig 14 (contribution breakdown): file create in a single shared directory
// on 8 servers, across the three SwitchFS configurations:
//   Baseline     — synchronous parent updates (async_updates off)
//   +Async       — asynchronous updates, no change-log compaction
//   +Compaction  — the full SwitchFS design
// Reported: throughput vs cores per server, and mean/p99 latency.
#include "bench/bench_util.h"

namespace switchfs::bench {
namespace {

struct Variant {
  const char* name;
  bool async_updates;
  bool compaction;
};

const Variant kVariants[] = {
    {"Baseline", false, false},
    {"+Async", true, false},
    {"+Compaction", true, true},
};

wl::RunResult RunCreate(core::FsWorld& world, uint64_t total, int workers) {
  auto dirs = wl::PreloadDirs(world, 1, "/shared");
  wl::FreshNameStream stream(core::OpType::kCreate, dirs, "n");
  wl::RunnerConfig rc;
  rc.workers = workers;
  rc.total_ops = total;
  rc.warmup_ops = total / 10;
  return wl::RunWorkload(world, stream, rc);
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs::bench;

  PrintHeader("Fig 14 (left): create throughput in one directory vs cores");
  std::printf("%-14s %8s %8s %8s\n", "variant", "cores=2", "cores=4",
              "cores=6");
  for (const Variant& v : kVariants) {
    std::printf("%-14s", v.name);
    for (int cores : {2, 4, 6}) {
      auto world = MakeSwitchFs(8, cores, switchfs::core::TrackerMode::kSwitch,
                                v.async_updates, v.compaction);
      switchfs::wl::RunResult r = RunCreate(*world, ScaledOps(25000), 256);
      std::printf(" %8.1f", r.ThroughputOpsPerSec() / 1e3);
      std::fflush(stdout);
    }
    std::printf("   Kops/s\n");
  }

  PrintHeader("Fig 14 (right): create latency in one directory (4 cores)");
  std::printf("%-14s %10s %10s %10s\n", "variant", "mean(us)", "p50(us)",
              "p99(us)");
  for (const Variant& v : kVariants) {
    auto world = MakeSwitchFs(8, 4, switchfs::core::TrackerMode::kSwitch,
                              v.async_updates, v.compaction);
    // Moderate concurrency: the paper's latency panel is taken under load.
    switchfs::wl::RunResult r = RunCreate(*world, ScaledOps(15000), 32);
    std::printf("%-14s %10.2f %10.2f %10.2f\n", v.name, r.MeanLatencyUs(),
                r.PercentileUs(0.5), r.PercentileUs(0.99));
  }
  return 0;
}
