// Fig 15 (§7.3.3): tracking directory state with a dedicated DPDK server
// instead of the programmable switch.
//  (a) create/statdir latency: the dedicated server adds an RTT on the
//      critical path.
//  (b) statdir throughput vs #servers (12 cores each): the tracker's CPU
//      caps it near 11 Mops/s while the switch scales with the cluster.
#include "bench/bench_util.h"

namespace switchfs::bench {
namespace {

wl::RunResult RunOp(core::FsWorld& world, core::OpType op, uint64_t total,
                    int workers, int dirs_n, int files_per_dir) {
  auto dirs = wl::PreloadDirs(world, dirs_n);
  std::unique_ptr<wl::OpStream> stream;
  if (op == core::OpType::kCreate) {
    stream = std::make_unique<wl::FreshNameStream>(op, dirs, "n");
  } else if (op == core::OpType::kStatDir) {
    stream = std::make_unique<wl::RandomChoiceStream>(op, dirs);
  } else {
    auto files = wl::PreloadFiles(world, dirs, files_per_dir);
    stream = std::make_unique<wl::RandomChoiceStream>(op, files);
  }
  wl::RunnerConfig rc;
  rc.workers = workers;
  rc.total_ops = total;
  rc.warmup_ops = total / 10;
  return wl::RunWorkload(world, *stream, rc);
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs::bench;
  using switchfs::core::OpType;
  using switchfs::core::TrackerMode;

  PrintHeader("Fig 15(a): single-client latency, switch vs dedicated server");
  std::printf("%-18s %10s %10s\n", "tracker", "create(us)", "statdir(us)");
  double sw_create = 0.0;
  double sw_statdir = 0.0;
  for (TrackerMode mode : {TrackerMode::kSwitch,
                           TrackerMode::kDedicatedServer}) {
    auto world = MakeSwitchFs(8, 4, mode);
    switchfs::wl::RunResult c =
        RunOp(*world, OpType::kCreate, ScaledOps(3000), 1, 16, 0);
    auto world2 = MakeSwitchFs(8, 4, mode);
    switchfs::wl::RunResult s =
        RunOp(*world2, OpType::kStatDir, ScaledOps(3000), 1, 64, 0);
    std::printf("%-18s %10.2f %10.2f\n",
                mode == TrackerMode::kSwitch ? "PSwitch" : "DPDK server",
                c.MeanLatencyUs(), s.MeanLatencyUs());
    if (mode == TrackerMode::kSwitch) {
      sw_create = c.MeanLatencyUs();
      sw_statdir = s.MeanLatencyUs();
    } else {
      std::printf("  -> create +%.1f%% (paper: +24.1%%), statdir +%.1f%% "
                  "(paper: +13.1%%)\n",
                  100.0 * (c.MeanLatencyUs() / sw_create - 1.0),
                  100.0 * (s.MeanLatencyUs() / sw_statdir - 1.0));
    }
  }

  PrintHeader("Fig 15(b): statdir throughput vs #servers (12 cores/server)");
  std::printf("%-18s %8s %8s %8s %8s\n", "tracker", "srv=4", "srv=8",
              "srv=12", "srv=15");
  for (TrackerMode mode : {TrackerMode::kSwitch,
                           TrackerMode::kDedicatedServer}) {
    std::printf("%-18s", mode == TrackerMode::kSwitch ? "PSwitch"
                                                      : "DPDK server");
    for (uint32_t servers : {4u, 8u, 12u, 15u}) {
      auto world = MakeSwitchFs(servers, 12, mode);
      switchfs::wl::RunResult r = RunOp(*world, OpType::kStatDir, ScaledOps(120000),
                              512, 2048, 0);
      std::printf(" %8.2f", r.ThroughputOpsPerSec() / 1e6);
      std::fflush(stdout);
    }
    std::printf("   Mops/s\n");
  }
  return 0;
}
