// Fig 16 (§7.3.3): tracking directory state on the owner server instead of
// the switch. Updates then cost two extra packets at the owner, consuming
// CPU and adding queueing: the paper reports median/p90/p99 create latency
// rising substantially under medium (50 Kops/s) and heavy (120 Kops/s) load.
// We approximate the offered loads with closed-loop worker counts calibrated
// on the SwitchFS configuration.
#include "bench/bench_util.h"

namespace switchfs::bench {
namespace {

wl::RunResult RunCreate(core::FsWorld& world, uint64_t total, int workers) {
  auto dirs = wl::PreloadDirs(world, 64);
  wl::FreshNameStream stream(core::OpType::kCreate, dirs, "n");
  wl::RunnerConfig rc;
  rc.workers = workers;
  rc.total_ops = total;
  rc.warmup_ops = total / 10;
  return wl::RunWorkload(world, stream, rc);
}

void RunLoadPoint(const char* label, int workers) {
  PrintHeader(label);
  std::printf("%-18s %9s %10s %10s %10s %10s %10s\n", "variant", "Kops/s",
              "p25(us)", "p50(us)", "p75(us)", "p90(us)", "p99(us)");
  for (auto mode : {switchfs::core::TrackerMode::kSwitch,
                    switchfs::core::TrackerMode::kOwnerServer}) {
    auto world = MakeSwitchFs(8, 4, mode);
    wl::RunResult r = RunCreate(*world, ScaledOps(20000), workers);
    std::printf("%-18s %9.1f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                mode == switchfs::core::TrackerMode::kSwitch
                    ? "SwitchFS"
                    : "SwitchFS-Variant",
                r.ThroughputOpsPerSec() / 1e3, r.PercentileUs(0.25),
                r.PercentileUs(0.5), r.PercentileUs(0.75),
                r.PercentileUs(0.9), r.PercentileUs(0.99));
  }
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs::bench;
  // Worker counts picked so the switch-tracked configuration lands near the
  // paper's 50 Kops/s and 120 Kops/s offered loads.
  RunLoadPoint("Fig 16(a): create latency under medium load", 2);
  RunLoadPoint("Fig 16(b): create latency under heavy load", 5);
  return 0;
}
