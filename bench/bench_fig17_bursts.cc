// Fig 17 (§7.4): throughput of create under operation bursts — groups of
// `burst_size` consecutive creates in the same directory, successive bursts
// rotating across directories — with 32 and 256 in-flight requests on 8
// servers. The baselines degrade as bursts grow (temporal hotspots pin one
// directory's server / serialize its lock); SwitchFS absorbs bursts in the
// change-log and stays flat.
#include "bench/bench_util.h"

namespace switchfs::bench {
namespace {

void RunPanel(int in_flight) {
  std::printf("%-20s %8s %8s %8s %8s %8s\n", "system", "b=10", "b=20", "b=50",
              "b=100", "b=1000");
  for (const char* system :
       {"Emulated-InfiniFS", "Emulated-CFS", "SwitchFS"}) {
    std::printf("%-20s", system);
    for (int burst : {10, 20, 50, 100, 1000}) {
      auto world = MakeWorld(system, 8);
      auto dirs = wl::PreloadDirs(*world, 128);
      wl::BurstCreateStream stream(dirs, burst);
      wl::RunnerConfig rc;
      rc.workers = in_flight;
      rc.total_ops = ScaledOps(25000);
      rc.warmup_ops = rc.total_ops / 10;
      wl::RunResult r = wl::RunWorkload(*world, stream, rc);
      std::printf(" %8.1f", r.ThroughputOpsPerSec() / 1e3);
      std::fflush(stdout);
    }
    std::printf("   Kops/s\n");
  }
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs::bench;
  PrintHeader("Fig 17(a): create bursts, 32 in-flight requests");
  RunPanel(32);
  PrintHeader("Fig 17(b): create bursts, 256 in-flight requests");
  RunPanel(256);
  return 0;
}
