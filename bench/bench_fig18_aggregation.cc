// Fig 18 (§7.5): directory aggregation overhead — the latency of statdir
// issued right after a sequence of creates in the same directory.
//  (a) vs the number of preceding creates (8 servers): grows, then plateaus
//      because proactive pushes bound the per-server change-log backlog to
//      one MTU (~29 entries).
//  (b) vs the number of servers (100 preceding creates): more servers keep
//      more entries un-pushed, so the aggregation collects more.
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/cluster.h"

namespace switchfs::bench {
namespace {

// Issues `creates` into a fresh directory through `workers` concurrent
// clients, then measures one statdir. Returns the statdir latency.
sim::SimTime MeasureOnce(core::Cluster& world, const std::string& dir,
                         int creates, int workers) {
  world.PreloadMkdir(dir);
  auto stat_client = world.NewClient(true);
  std::vector<std::unique_ptr<core::MetadataService>> clients;
  for (int w = 0; w < workers; ++w) {
    clients.push_back(world.NewClient(true));
  }
  struct State {
    int remaining;
    sim::SimTime statdir_latency = 0;
  };
  auto st = std::make_shared<State>();
  st->remaining = creates;

  auto issue_creates = [](core::MetadataService* c, const std::string d,
                          int base, int n) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) {
      (void)co_await c->Create(d + "/f" + std::to_string(base + i));
    }
  };
  const int per_worker = creates / workers;
  int base = 0;
  std::vector<sim::Task<void>> tasks;
  auto done = std::make_shared<sim::JoinCounter>(&world.sim(), workers);
  for (int w = 0; w < workers; ++w) {
    const int n = w == workers - 1 ? creates - base : per_worker;
    sim::Spawn([](core::MetadataService* c, std::string d, int b, int n,
                  std::shared_ptr<sim::JoinCounter> jc,
                  decltype(issue_creates)* fn) -> sim::Task<void> {
      co_await (*fn)(c, d, b, n);
      jc->Done();
    }(clients[w].get(), dir, base, n, done, &issue_creates));
    base += n;
  }
  // The statdir fires the moment the last create returns — no settling time
  // for pushes beyond what overlapped with the creates themselves.
  sim::Spawn([](core::Cluster* world, core::MetadataService* c, std::string d,
                std::shared_ptr<sim::JoinCounter> done,
                std::shared_ptr<State> st) -> sim::Task<void> {
    co_await done->Wait();
    const sim::SimTime start = world->sim().Now();
    auto r = co_await c->StatDir(d);
    (void)r;
    st->statdir_latency = world->sim().Now() - start;
  }(&world, stat_client.get(), dir, done, st));
  world.sim().Run();
  return st->statdir_latency;
}

double AverageLatencyUs(uint32_t servers, int creates, int rounds) {
  auto world = MakeSwitchFs(servers, 4);
  double total = 0.0;
  for (int round = 0; round < rounds; ++round) {
    const std::string dir = "/agg" + std::to_string(creates) + "_" +
                            std::to_string(round);
    total += sim::ToMicros(MeasureOnce(*world, dir, creates,
                                       std::min(creates, 32)));
  }
  return total / rounds;
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs::bench;
  PrintHeader("Fig 18(a): statdir latency after N creates (8 servers)");
  std::printf("%10s %14s\n", "creates", "statdir(us)");
  for (int creates : {1, 10, 100, 1000, 10000}) {
    std::printf("%10d %14.1f\n", creates,
                AverageLatencyUs(8, creates, creates >= 1000 ? 3 : 8));
    std::fflush(stdout);
  }

  PrintHeader("Fig 18(b): statdir latency after 100 creates vs #servers");
  std::printf("%10s %14s\n", "servers", "statdir(us)");
  for (uint32_t servers : {4u, 8u, 12u, 16u}) {
    std::printf("%10u %14.1f\n", servers, AverageLatencyUs(servers, 100, 8));
    std::fflush(stdout);
  }
  return 0;
}
