// Fig 19 (§7.6): end-to-end throughput under real-world workloads on
// CephFS-sim, Emulated-InfiniFS, Emulated-CFS, and SwitchFS:
//  * Synthetic   — the PanguFS data-center operation mix (Tab 2/Tab 5) over
//                  1024 directories with 80/20 skew; metadata-only (the
//                  paper omits data access here too).
//  * CV Training — dataset download + training epochs + removal, with and
//                  without data transfers.
//  * Thumbnails  — read images, create thumbnails (metadata-only column
//                  matches the paper's "data access disabled" replay).
// 8 metadata servers + 8 data nodes, 256 in-flight requests.
#include <memory>

#include "bench/bench_util.h"
#include "src/workload/data_service.h"
#include "src/workload/traces.h"

namespace switchfs::bench {
namespace {

const char* kSystems[] = {"CephFS", "Emulated-InfiniFS", "Emulated-CFS",
                          "SwitchFS"};

double RunSynthetic(const char* system) {
  auto world = MakeWorld(system, 8);
  const bool ceph = std::string(system) == "CephFS";
  const int dirs_n = 256;
  auto dirs = wl::PreloadDirs(*world, dirs_n);
  wl::PreloadFiles(*world, dirs, 40);
  wl::MixStream stream(wl::PanguMix(), dirs, 40, /*skew=*/0.8, 0, 11);
  wl::RunnerConfig rc;
  rc.workers = 256;
  rc.total_ops = ScaledOps(ceph ? 4000 : 30000);
  rc.warmup_ops = rc.total_ops / 10;
  wl::RunResult r = wl::RunWorkload(*world, stream, rc);
  return r.ThroughputOpsPerSec();
}

double RunTrace(const char* system, bool thumbnails, bool with_data) {
  auto world = MakeWorld(system, 8);
  const bool ceph = std::string(system) == "CephFS";
  wl::TraceConfig tc;
  tc.num_dirs = ceph ? 16 : 64;
  tc.files_per_dir = ceph ? 8 : (Scale() < 0.5 ? 24 : 60);
  tc.epochs = 1;
  tc.with_data = with_data;
  auto dirs = wl::PreloadDirs(*world, tc.num_dirs);

  std::unique_ptr<wl::OpStream> trace;
  if (thumbnails) {
    // Sources exist up front.
    for (const auto& d : dirs) {
      for (int i = 0; i < tc.files_per_dir; ++i) {
        world->PreloadFileAt(d + "/img" + std::to_string(i));
      }
    }
    trace = std::make_unique<wl::ThumbnailTrace>(dirs, tc);
  } else {
    trace = std::make_unique<wl::CvTrainingTrace>(dirs, tc);
  }

  static const sim::CostModel kCosts;
  wl::DataService data(&world->world_sim(), &kCosts, 8);
  wl::RunnerConfig rc;
  rc.workers = 256;
  rc.total_ops = 0;  // bounded trace, run dry
  rc.warmup_ops = 0;
  rc.data = with_data ? &data : nullptr;
  wl::RunResult r = wl::RunWorkload(*world, *trace, rc);
  return r.ThroughputOpsPerSec();
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs::bench;
  PrintHeader("Fig 19: end-to-end workloads, 8 metadata servers + 8 data nodes");
  std::printf("%-20s %12s %12s %12s %12s %12s\n", "system",
              "synth(meta)", "cv(meta)", "cv(e2e)", "thumb(meta)",
              "thumb(e2e)");
  for (const char* system : kSystems) {
    std::printf("%-20s", system);
    std::printf(" %12.1f", RunSynthetic(system) / 1e3);
    std::fflush(stdout);
    std::printf(" %12.1f", RunTrace(system, false, false) / 1e3);
    std::fflush(stdout);
    std::printf(" %12.1f", RunTrace(system, false, true) / 1e3);
    std::fflush(stdout);
    std::printf(" %12.1f", RunTrace(system, true, false) / 1e3);
    std::fflush(stdout);
    std::printf(" %12.1f", RunTrace(system, true, true) / 1e3);
    std::printf("   Kops/s\n");
  }
  return 0;
}
