// Substrate microbenchmarks (google-benchmark, wall-clock): simulator event
// throughput, coroutine round-trips, KV store, WAL, change-log append and
// compacted-state maintenance. These bound how much simulated work the
// figure benches can push per host second.
#include <benchmark/benchmark.h>

#include "src/common/histogram.h"
#include "src/core/change_log.h"
#include "src/kv/kvstore.h"
#include "src/kv/wal.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace switchfs {
namespace {

void BM_SimulatorEventDispatch(benchmark::State& state) {
  sim::Simulator s;
  uint64_t counter = 0;
  for (auto _ : state) {
    s.ScheduleAfter(1, [&counter] { counter++; });
    s.Run();
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_CoroutineDelayRoundTrip(benchmark::State& state) {
  sim::Simulator s;
  for (auto _ : state) {
    sim::Spawn([](sim::Simulator* sp) -> sim::Task<void> {
      co_await sim::Delay(sp, 1);
    }(&s));
    s.Run();
  }
}
BENCHMARK(BM_CoroutineDelayRoundTrip);

void BM_MutexHandoffChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::Mutex mu(&s);
    for (int i = 0; i < 64; ++i) {
      sim::Spawn([](sim::Simulator* sp, sim::Mutex* m) -> sim::Task<void> {
        auto g = co_await m->Acquire();
        co_await sim::Delay(sp, 1);
      }(&s, &mu));
    }
    s.Run();
  }
}
BENCHMARK(BM_MutexHandoffChain);

void BM_KvStorePut(benchmark::State& state) {
  kv::KvStore store;
  uint64_t i = 0;
  for (auto _ : state) {
    store.Put("key" + std::to_string(i++ & 0xffff), "value");
  }
  benchmark::DoNotOptimize(store.size());
}
BENCHMARK(BM_KvStorePut);

void BM_KvStoreGet(benchmark::State& state) {
  kv::KvStore store;
  for (int i = 0; i < 1 << 16; ++i) {
    store.Put("key" + std::to_string(i), "value");
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Get("key" + std::to_string(i++ & 0xffff)));
  }
}
BENCHMARK(BM_KvStoreGet);

void BM_WalAppend(benchmark::State& state) {
  kv::Wal wal;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.Append(1, "payload-of-a-typical-record"));
    if (wal.record_count() > 1 << 18) {
      state.PauseTiming();
      wal.TruncateUpTo(wal.next_lsn() - 2);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_WalAppend);

void BM_ChangeLogAppendAck(benchmark::State& state) {
  core::ChangeLog log(core::InodeId{}, 1);
  uint64_t acked = 0;
  for (auto _ : state) {
    core::ChangeLogEntry e;
    e.timestamp = 1;
    e.name = "file";
    e.size_delta = 1;
    const uint64_t seq = log.Append(std::move(e));
    if (log.size() >= 29) {
      acked += log.AckUpTo(seq).size();
    }
  }
  benchmark::DoNotOptimize(acked);
}
BENCHMARK(BM_ChangeLogAppendAck);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  int64_t v = 1;
  for (auto _ : state) {
    h.Record(v);
    v = (v * 2862933555777941757LL + 3037000493LL) & 0xfffff;
  }
  benchmark::DoNotOptimize(h.Mean());
}
BENCHMARK(BM_HistogramRecord);

}  // namespace
}  // namespace switchfs

BENCHMARK_MAIN();
