// §7.3.2 (impact of dirty-set overflow): force every dirty-set insertion to
// fail so double-inode operations fall back to synchronous updates at the
// parent's owner. The paper reports throughput dropping by 69.7% and average
// latency rising by 0.85x, closely matching the Baseline configuration.
#include "bench/bench_util.h"

namespace switchfs::bench {
namespace {

wl::RunResult RunCreate(core::Cluster& world, uint64_t total, int workers) {
  auto dirs = wl::PreloadDirs(world, 1, "/shared");
  wl::FreshNameStream stream(core::OpType::kCreate, dirs, "n");
  wl::RunnerConfig rc;
  rc.workers = workers;
  rc.total_ops = total;
  rc.warmup_ops = total / 10;
  return wl::RunWorkload(world, stream, rc);
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs::bench;
  PrintHeader("Sec 7.3.2: dirty-set overflow fallback (create, one dir, 8 servers)");
  std::printf("%-22s %10s %10s %10s %12s\n", "insert mode", "Kops/s",
              "mean(us)", "p99(us)", "fallbacks");

  double normal_tput = 0.0;
  double normal_lat = 0.0;
  for (bool force_overflow : {false, true}) {
    auto world = MakeSwitchFs(8, 4);
    world->data_plane()->SetForceInsertOverflow(force_overflow);
    switchfs::wl::RunResult r = RunCreate(*world, ScaledOps(20000), 256);
    std::printf("%-22s %10.1f %10.2f %10.2f %12llu\n",
                force_overflow ? "always-overflow" : "normal",
                r.ThroughputOpsPerSec() / 1e3, r.MeanLatencyUs(),
                r.PercentileUs(0.99),
                static_cast<unsigned long long>(
                    world->TotalStats().fallbacks));
    if (!force_overflow) {
      normal_tput = r.ThroughputOpsPerSec();
      normal_lat = r.MeanLatencyUs();
    } else {
      std::printf("\nthroughput drop: %.1f%% (paper: 69.7%%)\n",
                  100.0 * (1.0 - r.ThroughputOpsPerSec() / normal_tput));
      std::printf("latency increase: %.2fx (paper: 0.85x)\n",
                  r.MeanLatencyUs() / normal_lat - 1.0);
    }
  }
  return 0;
}
