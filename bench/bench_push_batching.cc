// Per-owner push batching (ROADMAP PR-1 follow-up): on a many-small-
// directories workload, per-directory pushes send one PushReq per directory
// while the per-owner pusher coalesces every ready change-log headed to the
// same owner into MTU-bounded batches. This bench creates files across
// `kDirs` directories (~kDirs / servers per owner) under both policies and
// reports cross-server PushReq packets per operation and owner-side apply
// throughput. Target: >= 2x fewer packets with apply throughput no worse.
//
// SFS_BENCH_JSON=<path>: also emit the rows as JSON (scripts/bench_smoke.sh
// writes BENCH_push_batching.json for the perf trajectory).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

namespace switchfs::bench {
namespace {

constexpr uint32_t kServers = 4;
constexpr int kDirs = 256;  // ~64 directories per owner

struct Row {
  std::string label;
  double kops = 0;
  double mean_us = 0;
  uint64_t ops = 0;
  uint64_t packets = 0;       // PushReq RPCs that completed
  uint64_t failures = 0;      // PushReq RPCs that failed
  double packets_per_op = 0;
  double dirs_per_packet = 0;     // PerDir sections per packet
  double entries_per_packet = 0;  // batch fill
  double apply_keps = 0;          // owner-side applied entries per second
  // Simulated time from first op to a fully drained cluster. The measured
  // window's Kops/s flatters lazy pushing (its apply work happens after the
  // window); this column is the honest end-to-end cost.
  double total_ms = 0;
};

Row RunOne(bool batch_pushes, uint64_t total_ops) {
  core::ClusterConfig cfg;
  cfg.num_servers = kServers;
  cfg.cores_per_server = 4;
  cfg.switch_config.dirty_set.num_stages = 10;
  cfg.switch_config.dirty_set.registers_per_stage = 1 << 14;
  cfg.server_template.batch_pushes = batch_pushes;
  core::Cluster world(cfg);

  auto dirs = wl::PreloadDirs(world, kDirs);
  wl::FreshNameStream stream(core::OpType::kCreate, dirs, "n");
  wl::RunnerConfig rc;
  rc.workers = 64;
  rc.total_ops = total_ops;
  rc.warmup_ops = total_ops / 10;
  const int64_t t0 = world.sim().Now();
  wl::RunResult r = wl::RunWorkload(world, stream, rc);
  const double run_secs = sim::ToSeconds(world.sim().Now() - t0);

  const auto st = world.TotalStats();
  Row row;
  row.label = batch_pushes ? "per-owner (batched)" : "per-dir";
  row.kops = r.ThroughputOpsPerSec() / 1e3;
  row.mean_us = r.MeanLatencyUs();
  row.ops = r.completed;
  row.packets = st.pushes_sent;
  row.failures = st.push_failures;
  row.packets_per_op =
      r.completed == 0 ? 0.0
                       : static_cast<double>(st.pushes_sent) /
                             static_cast<double>(r.completed);
  row.dirs_per_packet =
      st.pushes_sent == 0 ? 0.0
                          : static_cast<double>(st.push_dirs_sent) /
                                static_cast<double>(st.pushes_sent);
  row.entries_per_packet =
      st.pushes_sent == 0 ? 0.0
                          : static_cast<double>(st.push_entries_sent) /
                                static_cast<double>(st.pushes_sent);
  row.apply_keps = run_secs <= 0.0
                       ? 0.0
                       : static_cast<double>(st.entries_applied) / run_secs / 1e3;
  row.total_ms = run_secs * 1e3;
  return row;
}

void PrintRow(const Row& r) {
  std::printf(
      "%-22s %8.1f %9.2f %9llu %6llu %10.3f %9.2f %10.2f %11.1f %9.2f\n",
      r.label.c_str(), r.kops, r.mean_us,
      static_cast<unsigned long long>(r.packets),
      static_cast<unsigned long long>(r.failures), r.packets_per_op,
      r.dirs_per_packet, r.entries_per_packet, r.apply_keps, r.total_ms);
}

void EmitJson(const char* path, const Row& per_dir, const Row& per_owner,
              double ratio) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  auto emit = [f](const char* key, const Row& r, const char* tail) {
    std::fprintf(f,
                 "  \"%s\": {\"kops\": %.1f, \"mean_us\": %.2f, "
                 "\"ops\": %llu, \"push_packets\": %llu, "
                 "\"push_failures\": %llu, \"packets_per_op\": %.4f, "
                 "\"dirs_per_packet\": %.2f, \"entries_per_packet\": %.2f, "
                 "\"apply_keps\": %.1f, \"total_ms\": %.2f}%s\n",
                 key, r.kops, r.mean_us,
                 static_cast<unsigned long long>(r.ops),
                 static_cast<unsigned long long>(r.packets),
                 static_cast<unsigned long long>(r.failures),
                 r.packets_per_op, r.dirs_per_packet, r.entries_per_packet,
                 r.apply_keps, r.total_ms, tail);
  };
  std::fprintf(f, "{\n  \"bench\": \"push_batching\", \"dirs\": %d, "
               "\"servers\": %u,\n", kDirs, kServers);
  emit("per_dir", per_dir, ",");
  emit("per_owner", per_owner, ",");
  std::fprintf(f, "  \"packet_reduction\": %.2f\n}\n", ratio);
  std::fclose(f);
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs::bench;
  // Many-SMALL-directories regime (~12 files per directory at full scale):
  // per-dir pushes fan out one packet per directory here, which is exactly
  // the fan-out the per-owner pusher coalesces. With deep per-directory
  // backlogs both policies send near-full MTU packets and converge.
  const uint64_t total = ScaledOps(3200);
  PrintHeader("Push batching: per-dir vs per-owner (create, " +
              std::to_string(kDirs) + " dirs, " + std::to_string(kServers) +
              " servers)");
  std::printf("%-22s %8s %9s %9s %6s %10s %9s %10s %11s %9s\n", "push policy",
              "Kops/s", "mean(us)", "packets", "fail", "pkts/op",
              "dirs/pkt", "entries/pkt", "apply Keps", "total(ms)");

  const Row per_dir = RunOne(/*batch_pushes=*/false, total);
  PrintRow(per_dir);
  const Row per_owner = RunOne(/*batch_pushes=*/true, total);
  PrintRow(per_owner);

  const double ratio =
      per_owner.packets == 0
          ? 0.0
          : static_cast<double>(per_dir.packets) /
                static_cast<double>(per_owner.packets);
  std::printf("\nPushReq packet reduction: %.2fx (target: >= 2x)\n", ratio);
  std::printf("owner-side apply throughput: %.1f -> %.1f Keps\n",
              per_dir.apply_keps, per_owner.apply_keps);
  std::printf("end-to-end (burst + full drain): %.2f -> %.2f ms\n",
              per_dir.total_ms, per_owner.total_ms);

  if (const char* path = std::getenv("SFS_BENCH_JSON")) {
    EmitJson(path, per_dir, per_owner, ratio);
    std::printf("wrote %s\n", path);
  }
  return 0;
}
