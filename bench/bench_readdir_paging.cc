// Readdir at directory scale (MetadataService v2): a million-entry directory
// listed monolithically (the pre-v2 single-RPC shape) vs the cookie-paged
// OpenDir/ReaddirPage stream. The monolithic reply needs a response big
// enough to hold the whole directory and a client deadline sized to the
// server's full scan+marshal time — neither survives contact with real
// directories ("millions of users" ROADMAP scale) — while the paged stream
// keeps every packet bounded by the mtu_bytes budget and returns its first
// entries after one page's worth of work past the open.
//
// Two paged rows: the sequential one-page-at-a-time drain, and the
// pipelined client (prefetch_pages speculative page RPCs in flight, their
// scans overlapped across the owner's cores). The pipeline is what makes
// paged strictly FASTER than monolithic on total time, not just on first
// page: the same per-entry scan work runs concurrently instead of on one
// core.
//
// A second section measures BulkInsert: N fresh names through one open
// handle (one WAL-committed multi-entry RPC per owner page-fill) vs N
// per-entry Create round trips.
//
// SFS_BENCH_SCALE scales the directory (full = 1M entries, small = 200k);
// SFS_BENCH_JSON=<path> emits the rows for scripts/bench_check.py.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace switchfs::bench {
namespace {

constexpr uint32_t kServers = 4;

struct Row {
  double total_ms = 0;       // simulated start -> complete listing
  double first_ms = 0;       // simulated start -> first entries available
  uint64_t entries = 0;      // entries returned
  uint64_t packets = 0;      // response payloads (1 for monolithic)
  uint64_t max_packet_entries = 0;
};

struct BulkRow {
  double ms = 0;             // simulated start -> all names committed
  uint64_t packets = 0;      // network packets (incl. pushes), quiesced
  uint64_t failed = 0;
};

void Print(const char* label, const Row& r) {
  std::printf("%-12s %10.2f %10.2f %10llu %8llu %12llu\n", label, r.total_ms,
              r.first_ms, static_cast<unsigned long long>(r.entries),
              static_cast<unsigned long long>(r.packets),
              static_cast<unsigned long long>(r.max_packet_entries));
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs;
  using namespace switchfs::bench;

  const uint64_t kEntries = ScaledOps(1'000'000);
  const uint64_t kBulkN = ScaledOps(20'000);
  PrintHeader("Readdir paging: monolithic vs OpenDir/ReaddirPage (" +
              std::to_string(kEntries) + "-entry dir, " +
              std::to_string(kServers) + " servers)");

  core::ClusterConfig cfg;
  cfg.num_servers = kServers;
  cfg.switch_config.dirty_set.num_stages = 10;
  cfg.switch_config.dirty_set.registers_per_stage = 1 << 14;
  core::Cluster cluster(cfg);
  cluster.PreloadDir("/big");
  for (uint64_t i = 0; i < kEntries; ++i) {
    cluster.PreloadFile("/big/f" + std::to_string(i));
  }
  cluster.PreloadDir("/loopdir");
  cluster.PreloadDir("/bulkdir");

  // The monolithic call needs a deadline sized to the full server-side
  // scan+marshal (hundreds of ms of simulated time at 1M entries) — with the
  // production 2 ms RPC deadline it cannot complete at all. That asymmetry
  // IS the motivation; the paged clients keep the production deadline.
  core::SwitchFsClient::Config big_call;
  big_call.dirty_tracker = cluster.dirty_tracker();
  big_call.call.timeout = sim::Seconds(30);
  big_call.call.max_attempts = 2;
  core::SwitchFsClient mono_client(&cluster.sim(), &cluster.network(),
                                   &cluster, &cluster.costs(), big_call);
  cluster.WarmClient(mono_client);
  auto paged_client = cluster.MakeClient();
  cluster.WarmClient(*paged_client);

  Row mono;
  Row seq;
  Row paged;
  BulkRow loop;
  BulkRow bulk;
  bool ok = true;
  sim::Spawn([](core::Cluster* cluster, core::SwitchFsClient* mono_client,
                core::SwitchFsClient* paged_client, uint64_t kBulkN, Row* mono,
                Row* seq, Row* paged, BulkRow* loop, BulkRow* bulk,
                bool* ok) -> sim::Task<void> {
    sim::Simulator& sm = cluster->sim();
    {
      const sim::SimTime t0 = sm.Now();
      auto listing = co_await mono_client->ReaddirMonolithic("/big");
      const sim::SimTime t1 = sm.Now();
      if (!listing.ok()) {
        std::printf("monolithic readdir failed: %s\n",
                    listing.status().ToString().c_str());
        *ok = false;
        co_return;
      }
      mono->total_ms = sim::ToMicros(t1 - t0) / 1e3;
      mono->first_ms = mono->total_ms;  // all-or-nothing
      mono->entries = listing->size();
      mono->packets = 1;
      mono->max_packet_entries = listing->size();
    }
    // Sequential drain: one page RPC at a time. This is the row that shows
    // the per-packet shape (page count, largest payload) and the time to
    // first entries; its total pays one RTT + one single-core page build per
    // page back to back.
    {
      const sim::SimTime t0 = sm.Now();
      auto handle = co_await paged_client->OpenDir("/big");
      if (!handle.ok()) {
        std::printf("opendir failed: %s\n",
                    handle.status().ToString().c_str());
        *ok = false;
        co_return;
      }
      uint64_t cookie = core::kDirStreamStart;
      while (true) {
        auto page = co_await paged_client->ReaddirPage(*handle, cookie);
        if (!page.ok()) {
          std::printf("readdir page failed: %s\n",
                      page.status().ToString().c_str());
          *ok = false;
          co_return;
        }
        seq->packets++;
        seq->entries += page->entries.size();
        seq->max_packet_entries = std::max<uint64_t>(seq->max_packet_entries,
                                                     page->entries.size());
        if (seq->packets == 1) {
          seq->first_ms = sim::ToMicros(sm.Now() - t0) / 1e3;
        }
        if (page->at_end) {
          break;
        }
        cookie = page->next_cookie;
      }
      (void)co_await paged_client->CloseDir(*handle);
      seq->total_ms = sim::ToMicros(sm.Now() - t0) / 1e3;
    }
    // Pipelined drain: the client's Readdir keeps prefetch_pages speculative
    // page RPCs in flight; the owner overlaps their scans across its cores.
    {
      const sim::SimTime t0 = sm.Now();
      auto listing = co_await paged_client->Readdir("/big");
      if (!listing.ok()) {
        std::printf("pipelined readdir failed: %s\n",
                    listing.status().ToString().c_str());
        *ok = false;
        co_return;
      }
      paged->total_ms = sim::ToMicros(sm.Now() - t0) / 1e3;
      paged->entries = listing->size();
    }
    // The pipeline serves the same pages as the sequential drain; its first
    // page is identical (prefetch starts at page 0 too).
    paged->first_ms = seq->first_ms;
    paged->packets = seq->packets;
    paged->max_packet_entries = seq->max_packet_entries;

    // ---- BulkInsert vs per-entry creates ---------------------------------
    // Both windows include the deferred cross-server pushes: quiesce before
    // reading the packet counter so the comparison is end to end.
    {
      const sim::SimTime t0 = sm.Now();
      const uint64_t p0 = cluster->network().stats().packets_sent;
      for (uint64_t i = 0; i < kBulkN; ++i) {
        Status s = co_await paged_client->Create("/loopdir/e" +
                                                 std::to_string(i));
        if (!s.ok()) {
          loop->failed++;
        }
      }
      loop->ms = sim::ToMicros(sm.Now() - t0) / 1e3;
      co_await sim::Delay(&sm, sim::Milliseconds(20));
      loop->packets = cluster->network().stats().packets_sent - p0;
    }
    {
      std::vector<std::string> names;
      names.reserve(kBulkN);
      for (uint64_t i = 0; i < kBulkN; ++i) {
        names.push_back("e" + std::to_string(i));
      }
      const sim::SimTime t0 = sm.Now();
      const uint64_t p0 = cluster->network().stats().packets_sent;
      auto handle = co_await paged_client->OpenDir("/bulkdir");
      if (!handle.ok()) {
        std::printf("bulk opendir failed: %s\n",
                    handle.status().ToString().c_str());
        *ok = false;
        co_return;
      }
      auto verdicts = co_await paged_client->BulkInsert(*handle, names);
      for (const Status& s : verdicts) {
        if (!s.ok()) {
          bulk->failed++;
        }
      }
      (void)co_await paged_client->CloseDir(*handle);
      bulk->ms = sim::ToMicros(sm.Now() - t0) / 1e3;
      co_await sim::Delay(&sm, sim::Milliseconds(20));
      bulk->packets = cluster->network().stats().packets_sent - p0;
    }
  }(&cluster, &mono_client, paged_client.get(), kBulkN, &mono, &seq, &paged,
    &loop, &bulk, &ok));
  cluster.sim().Run();
  if (!ok || mono.entries != kEntries || seq.entries != kEntries ||
      paged.entries != kEntries || loop.failed != 0 || bulk.failed != 0) {
    std::printf("FAILED: mono=%llu seq=%llu paged=%llu expected=%llu "
                "loop_failed=%llu bulk_failed=%llu\n",
                static_cast<unsigned long long>(mono.entries),
                static_cast<unsigned long long>(seq.entries),
                static_cast<unsigned long long>(paged.entries),
                static_cast<unsigned long long>(kEntries),
                static_cast<unsigned long long>(loop.failed),
                static_cast<unsigned long long>(bulk.failed));
    return 1;
  }

  std::printf("%-12s %10s %10s %10s %8s %12s\n", "mode", "total(ms)",
              "first(ms)", "entries", "packets", "max/packet");
  Print("monolithic", mono);
  Print("paged-seq", seq);
  Print("paged-pipe", paged);
  std::printf("\nfirst entries: %.2f ms (paged) vs %.2f ms (monolithic "
              "all-or-nothing)\n", paged.first_ms, mono.first_ms);
  std::printf("pipelined total: %.2f ms vs monolithic %.2f ms (%.2fx)\n",
              paged.total_ms, mono.total_ms,
              paged.total_ms > 0 ? mono.total_ms / paged.total_ms : 0.0);
  std::printf("largest response payload: %llu entries -> %llu (mtu-bounded)\n",
              static_cast<unsigned long long>(mono.max_packet_entries),
              static_cast<unsigned long long>(paged.max_packet_entries));
  std::printf("\nbulk insert (%llu names): %.2f ms / %llu packets vs "
              "per-entry loop %.2f ms / %llu packets (%.1fx fewer packets)\n",
              static_cast<unsigned long long>(kBulkN), bulk.ms,
              static_cast<unsigned long long>(bulk.packets), loop.ms,
              static_cast<unsigned long long>(loop.packets),
              bulk.packets > 0
                  ? static_cast<double>(loop.packets) /
                        static_cast<double>(bulk.packets)
                  : 0.0);

  if (const char* path = std::getenv("SFS_BENCH_JSON")) {
    FILE* f = std::fopen(path, "w");
    if (f != nullptr) {
      std::fprintf(
          f,
          "{\n  \"bench\": \"readdir_paging\", \"entries\": %llu, "
          "\"servers\": %u,\n"
          "  \"mono\": {\"total_ms\": %.3f, \"first_ms\": %.3f, "
          "\"packets\": %llu, \"max_packet_entries\": %llu},\n"
          "  \"paged\": {\"total_ms\": %.3f, \"first_ms\": %.3f, "
          "\"packets\": %llu, \"max_packet_entries\": %llu, "
          "\"seq_total_ms\": %.3f},\n"
          "  \"bulk_insert\": {\"entries\": %llu, \"loop_ms\": %.3f, "
          "\"loop_packets\": %llu, \"bulk_ms\": %.3f, \"bulk_packets\": "
          "%llu}\n}\n",
          static_cast<unsigned long long>(kEntries), kServers, mono.total_ms,
          mono.first_ms, static_cast<unsigned long long>(mono.packets),
          static_cast<unsigned long long>(mono.max_packet_entries),
          paged.total_ms, paged.first_ms,
          static_cast<unsigned long long>(paged.packets),
          static_cast<unsigned long long>(paged.max_packet_entries),
          seq.total_ms, static_cast<unsigned long long>(kBulkN), loop.ms,
          static_cast<unsigned long long>(loop.packets), bulk.ms,
          static_cast<unsigned long long>(bulk.packets));
      std::fclose(f);
      std::printf("wrote %s\n", path);
    }
  }
  return 0;
}
