// §7.7 (crash recovery time): create a namespace, then measure the simulated
// time for (a) one metadata server to recover after a crash — WAL redo of
// its inodes and un-applied change-log entries plus re-aggregation of owned
// directories — and (b) the cluster to return to a consistent state after a
// switch crash (flushing every change-log against the empty dirty set).
// The paper reports 5.77 s and 3.82 s for 10M files / 100K directories;
// recovery time is proportional to the WAL length, so the scaled runs here
// are reported with their per-record rates.
#include "bench/bench_util.h"

namespace switchfs::bench {
namespace {

void PopulateNamespace(core::Cluster& world, int dirs_n, int files_per_dir) {
  auto dirs = wl::PreloadDirs(world, dirs_n);
  // Files go through the *protocol* (not preload) so WALs have real records.
  wl::FreshNameStream stream(core::OpType::kCreate, dirs, "f");
  wl::RunnerConfig rc;
  rc.workers = 128;
  rc.total_ops = static_cast<uint64_t>(dirs_n) * files_per_dir;
  rc.warmup_ops = 0;
  wl::RunResult r = wl::RunWorkload(world, stream, rc);
  (void)r;
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs::bench;
  const int dirs_n = 200;
  const int files_per_dir = static_cast<int>(ScaledOps(100));

  PrintHeader("Sec 7.7: crash recovery (8 servers)");
  std::printf("namespace: %d directories, %d files (paper: 100K dirs, 10M "
              "files)\n",
              dirs_n, dirs_n * files_per_dir);

  {
    auto world = MakeSwitchFs(8, 4);
    PopulateNamespace(*world, dirs_n, files_per_dir);
    const uint32_t victim = 3;
    const size_t wal_records =
        world->server(victim).stats().wal_replayed;  // pre-crash: 0
    (void)wal_records;
    world->CrashServer(victim);
    const switchfs::sim::SimTime start = world->sim().Now();
    switchfs::sim::Spawn(world->RecoverServer(victim));
    world->sim().Run();
    const switchfs::sim::SimTime took = world->sim().Now() - start;
    const auto replayed = world->server(victim).stats().wal_replayed;
    std::printf("\nserver crash:  recovered %llu WAL records in %.3f ms "
                "(%.2f us/record; paper: 5.77 s for ~2.5M records)\n",
                static_cast<unsigned long long>(replayed),
                static_cast<double>(took) / 1e6,
                replayed > 0 ? switchfs::sim::ToMicros(took) /
                                   static_cast<double>(replayed)
                             : 0.0);
  }

  {
    // The switch must die while deferred updates are still in the
    // change-logs: disable proactive flushing and stop mid-workload.
    switchfs::core::ClusterConfig cfg;
    cfg.num_servers = 8;
    cfg.cores_per_server = 4;
    cfg.server_template.push_idle_timeout = switchfs::sim::Seconds(3600);
    cfg.server_template.owner_quiet_period = switchfs::sim::Seconds(3600);
    cfg.server_template.push_mtu_entries = 1 << 20;
    auto world = std::make_unique<switchfs::core::Cluster>(cfg);
    auto dirs = switchfs::wl::PreloadDirs(*world, dirs_n);
    auto client = world->NewClient(true);
    const int creates = dirs_n * files_per_dir / 4;
    switchfs::sim::Spawn(
        [](switchfs::core::MetadataService* c, std::vector<std::string> ds,
           int n) -> switchfs::sim::Task<void> {
          for (int i = 0; i < n; ++i) {
            (void)co_await c->Create(ds[i % ds.size()] + "/f" +
                                     std::to_string(i));
          }
        }(client.get(), dirs, creates));
    world->sim().RunUntil(world->sim().Now() + switchfs::sim::Seconds(1));
    world->CrashSwitch();
    const size_t pending = world->TotalPendingChangeLogEntries();
    const switchfs::sim::SimTime start = world->sim().Now();
    // Record the completion instant: the long-disabled push timers still
    // drain afterwards and must not count toward recovery time.
    auto done_at = std::make_shared<switchfs::sim::SimTime>(0);
    switchfs::sim::Spawn(
        [](switchfs::core::Cluster* w,
           std::shared_ptr<switchfs::sim::SimTime> out)
            -> switchfs::sim::Task<void> {
          co_await w->RecoverSwitch();
          *out = w->sim().Now();
        }(world.get(), done_at));
    world->sim().Run();
    const switchfs::sim::SimTime took = *done_at - start;
    std::printf("switch crash:  flushed %zu pending change-log entries in "
                "%.3f ms (paper: 3.82 s to flush ~1.25M entries)\n",
                pending, static_cast<double>(took) / 1e6);
    std::printf("post-recovery pending entries: %zu (must be 0)\n",
                world->TotalPendingChangeLogEntries());
  }
  return 0;
}
