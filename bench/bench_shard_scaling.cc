// Shard scaling (multi-core owners): one owner server absorbs a burst of
// batched change-log pushes — a create storm skewed entirely onto its
// fingerprint groups — with its state split into 1 vs 4 shards. Every
// section funnels through HandlePush's real apply path (shard apply lane,
// WAL records, idempotency-token commit). With a single shard the sections
// serialize on one apply lane while the owner's other cores idle; with 4
// shards the balanced sections land on 4 lanes that apply concurrently on
// the 4-core CpuPool. The measured number is owner apply throughput:
// entries applied / makespan of the burst (first send to last ack).
// Target: >= 2x at 4 shards (the committed floor in the JSON).
//
// A non-timed coda retransmits part of the burst to show the per-(dir, src)
// idempotency tokens no-op duplicates (the dedup column / JSON field).
//
// SFS_BENCH_JSON=<path>: also emit the rows as JSON (scripts/bench_smoke.sh
// writes BENCH_shard_scaling.json; scripts/bench_check.py gates on it).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/aggregation.h"
#include "src/core/push_engine.h"
#include "src/core/schema.h"
#include "src/core/shard.h"
#include "src/net/network.h"
#include "src/tracker/owner_tracker.h"

namespace switchfs::bench {
namespace {

using namespace switchfs::core;

constexpr int kDirs = 64;        // 16 per shard group at 4 shards
constexpr int kDupBatches = 8;   // retransmitted in the idempotency coda

struct Row {
  std::string label;
  uint64_t sections = 0;
  uint64_t entries = 0;
  uint64_t applied = 0;   // owner-side entries applied in the timed burst
  uint64_t deduped = 0;   // duplicate batches no-op'd in the coda
  double apply_keps = 0;  // applied entries per second of burst makespan
  double drain_ms = 0;    // burst makespan (first send to last ack)
};

class SingleNodeCluster : public ClusterContext {
 public:
  explicit SingleNodeCluster(net::NodeId node) : node_(node) {
    ring_.AddServer(0);
  }
  const HashRing& ring() const override { return ring_; }
  net::NodeId ServerNode(uint32_t) const override { return node_; }
  uint32_t ServerCount() const override { return 1; }

 private:
  HashRing ring_;
  net::NodeId node_;
};

// One owner's aggregation + push modules over a bare context: the smallest
// stack that runs HandlePush's real apply path against crafted PushReqs.
class OwnerHarness {
 public:
  explicit OwnerHarness(int shard_count)
      : net(&sim, &costs, /*seed=*/7),
        sw(costs.plain_switch_delay),
        cpu(&sim, /*cores=*/4),
        rpc(&sim, &net),
        vol(std::make_shared<ServerVolatile>(&sim, shard_count)) {
    config.shard_count = shard_count;
    config.compaction = false;
    net.SetSwitch(&sw);
    cluster = std::make_unique<SingleNodeCluster>(rpc.id());
    sw.SetServerGroup({rpc.id()});
    ctx = ServerContext{&sim,    &net, cluster.get(), &durable, &costs,
                        &config, &cpu, &rpc,          &stats,   &tracker_impl};
    agg = std::make_unique<Aggregation>(ctx);
    push = std::make_unique<PushEngine>(ctx, *agg);
    agg->SetRebinder(push.get());
    rpc.SetCpu(&cpu);
    rpc.SetRequestHandler([this](net::Packet p) {
      if (p.body->type == PushReq::kType) {
        VolPtr v = vol;
        sim::Spawn(push->HandlePush(std::move(p), std::move(v)));
      }
    });
  }

  InodeId SeedDir(const std::string& name, uint64_t tag) {
    InodeId id;
    id.w[0] = tag;
    id.w[3] = 2;
    Attr attr;
    attr.id = id;
    attr.type = FileType::kDirectory;
    attr.mode = 0755;
    const std::string ikey = InodeKey(RootId(), name);
    vol->kv.Put(ikey, attr.Encode());
    vol->kv.Put(DirIndexKey(id),
                EncodeDirIndex(ikey, FingerprintOf(RootId(), name)));
    return id;
  }

  sim::Simulator sim;
  sim::CostModel costs;
  net::Network net;
  net::PlainSwitch sw;
  ServerConfig config;
  tracker::OwnerTracker tracker_impl;
  DurableState durable;
  sim::CpuPool cpu;
  net::RpcEndpoint rpc;
  ServerStats stats;
  std::unique_ptr<SingleNodeCluster> cluster;
  ServerContext ctx;
  VolPtr vol;
  std::unique_ptr<Aggregation> agg;
  std::unique_ptr<PushEngine> push;
};

// Dir names whose fingerprints spread EVENLY over 4 shard groups (fp % 4),
// so the 4-shard run measures lane parallelism, not bucket luck. The same
// set feeds the 1-shard run.
std::vector<std::string> BalancedDirNames() {
  std::vector<std::string> names;
  int per_group[4] = {0, 0, 0, 0};
  for (int i = 0; static_cast<int>(names.size()) < kDirs; ++i) {
    const std::string name = "h" + std::to_string(i);
    const auto g = static_cast<size_t>(
        FingerprintOf(RootId(), name) % 4);
    if (per_group[g] >= kDirs / 4) {
      continue;
    }
    per_group[g]++;
    names.push_back(name);
  }
  return names;
}

net::MsgPtr MakePush(const InodeId& dir, psw::Fingerprint fp,
                     uint64_t batch_token, uint64_t entries_per_dir) {
  auto req = std::make_shared<PushReq>();
  req->src_server = 0;
  PushReq::PerDir pd;
  pd.dir = dir;
  pd.fp = fp;
  pd.batch_token = batch_token;
  for (uint64_t s = 1; s <= entries_per_dir; ++s) {
    ChangeLogEntry e;
    e.seq = s;
    e.timestamp = 100 + static_cast<int64_t>(s);
    e.op = OpType::kCreate;
    e.name = "f" + std::to_string(s);
    e.entry_type = FileType::kFile;
    e.size_delta = 1;
    pd.entries.push_back(std::move(e));
  }
  req->dirs.push_back(std::move(pd));
  return req;
}

sim::Task<void> CallPush(net::RpcEndpoint* cli, net::NodeId server,
                         net::MsgPtr msg, sim::Simulator* sim,
                         sim::SimTime* finish) {
  net::CallOptions opts;
  opts.timeout = sim::Seconds(10);
  opts.max_attempts = 1;
  auto r = co_await cli->Call(server, std::move(msg), opts);
  if (r.ok() && *finish < sim->Now()) {
    *finish = sim->Now();
  }
}

Row RunOne(int shard_count, const std::vector<std::string>& dir_names,
           uint64_t entries_per_dir) {
  OwnerHarness h(shard_count);
  std::vector<net::MsgPtr> reqs;
  reqs.reserve(dir_names.size());
  for (size_t i = 0; i < dir_names.size(); ++i) {
    const InodeId dir = h.SeedDir(dir_names[i], /*tag=*/1000 + i);
    reqs.push_back(MakePush(dir, FingerprintOf(RootId(), dir_names[i]),
                            /*batch_token=*/1, entries_per_dir));
  }

  // Timed burst: every batch launched at t0, makespan runs to the last ack.
  net::RpcEndpoint source(&h.sim, &h.net);
  const sim::SimTime t0 = h.sim.Now();
  sim::SimTime last_ack = t0;
  for (const net::MsgPtr& req : reqs) {
    sim::Spawn(CallPush(&source, h.rpc.id(), req, &h.sim, &last_ack));
  }
  h.sim.Run();
  const double makespan_secs = sim::ToSeconds(last_ack - t0);
  const uint64_t applied = h.stats.entries_applied;

  // Idempotency coda (not timed): retransmit the first batches verbatim —
  // the committed per-(dir, src) tokens must no-op every one of them.
  for (int i = 0; i < kDupBatches; ++i) {
    sim::SimTime ignored = 0;
    sim::Spawn(CallPush(&source, h.rpc.id(), reqs[static_cast<size_t>(i)],
                        &h.sim, &ignored));
  }
  h.sim.Run();

  Row row;
  row.label = std::to_string(shard_count) +
              (shard_count == 1 ? " shard" : " shards");
  row.sections = reqs.size();
  row.entries = reqs.size() * entries_per_dir;
  row.applied = applied;
  row.deduped = h.stats.push_batches_deduped;
  row.apply_keps = makespan_secs <= 0.0
                       ? 0.0
                       : static_cast<double>(applied) / makespan_secs / 1e3;
  row.drain_ms = makespan_secs * 1e3;
  return row;
}

void PrintRow(const Row& r) {
  std::printf("%-10s %9llu %9llu %9llu %7llu %11.1f %9.3f\n", r.label.c_str(),
              static_cast<unsigned long long>(r.sections),
              static_cast<unsigned long long>(r.entries),
              static_cast<unsigned long long>(r.applied),
              static_cast<unsigned long long>(r.deduped), r.apply_keps,
              r.drain_ms);
}

void EmitJson(const char* path, const Row& one, const Row& four,
              double speedup) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  auto emit = [f](const char* key, const Row& r, const char* tail) {
    std::fprintf(f,
                 "  \"%s\": {\"sections\": %llu, \"entries\": %llu, "
                 "\"entries_applied\": %llu, \"batches_deduped\": %llu, "
                 "\"apply_keps\": %.1f, \"drain_ms\": %.3f}%s\n",
                 key, static_cast<unsigned long long>(r.sections),
                 static_cast<unsigned long long>(r.entries),
                 static_cast<unsigned long long>(r.applied),
                 static_cast<unsigned long long>(r.deduped), r.apply_keps,
                 r.drain_ms, tail);
  };
  std::fprintf(f, "{\n  \"bench\": \"shard_scaling\", \"dirs\": %d,\n", kDirs);
  emit("one_shard", one, ",");
  emit("four_shard", four, ",");
  std::fprintf(f, "  \"speedup\": %.2f,\n  \"speedup_floor\": 2.0\n}\n",
               speedup);
  std::fclose(f);
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs::bench;
  // Entries per directory section; Scale()-scaled directly (ScaledOps's
  // 500-op floor is meant for workload op counts, not per-section sizes).
  const auto entries_per_dir = static_cast<uint64_t>(
      std::max(8.0, 48.0 * Scale()));
  PrintHeader(
      "Shard scaling: 1 vs 4 fingerprint-group shards (push burst of a "
      "create storm skewed to one 4-core owner, " +
      std::to_string(kDirs) + " dirs x " +
      std::to_string(entries_per_dir) + " entries)");
  std::printf("%-10s %9s %9s %9s %7s %11s %9s\n", "owner", "sections",
              "entries", "applied", "dedup", "apply Keps", "drain(ms)");

  const auto dirs = BalancedDirNames();
  const Row one = RunOne(/*shard_count=*/1, dirs, entries_per_dir);
  PrintRow(one);
  const Row four = RunOne(/*shard_count=*/4, dirs, entries_per_dir);
  PrintRow(four);

  const double speedup =
      one.apply_keps <= 0.0 ? 0.0 : four.apply_keps / one.apply_keps;
  std::printf("\nowner apply throughput scaling: %.2fx (target: >= 2x)\n",
              speedup);
  std::printf("burst makespan: %.3f -> %.3f ms; duplicate batches no-op'd: "
              "%llu + %llu\n",
              one.drain_ms, four.drain_ms,
              static_cast<unsigned long long>(one.deduped),
              static_cast<unsigned long long>(four.deduped));

  if (const char* path = std::getenv("SFS_BENCH_JSON")) {
    EmitJson(path, one, four, speedup);
    std::printf("wrote %s\n", path);
  }
  return 0;
}
