// In-switch metadata read cache A/B (ROADMAP: serve hot lookup/stat at line
// rate from the data plane): a zipf-skewed hot-directory stat storm with a
// small write fraction runs once with the `switch_cache` lever off (every
// read pays the owner's CPU + KV path) and once with it on (hot fingerprints
// are answered by the switch before reaching any server). Reports throughput,
// latency, data-plane hit rate, and install/evict traffic. Target: >= 2x
// hot-read throughput with the cache on.
//
// SFS_BENCH_JSON=<path>: also emit the rows as JSON (scripts/bench_smoke.sh
// writes BENCH_switch_cache.json for the perf trajectory).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

namespace switchfs::bench {
namespace {

constexpr uint32_t kServers = 4;
constexpr int kDirs = 16;
constexpr int kFilesPerDir = 128;

struct Row {
  std::string label;
  double kops = 0;
  double mean_us = 0;
  double p99_us = 0;
  uint64_t ops = 0;
  double hit_rate = 0;   // data-plane cache hits / (hits + misses)
  uint64_t installs = 0;
  uint64_t evicts = 0;
  uint64_t server_ops = 0;  // requests that reached a metadata server
};

Row RunOne(bool switch_cache, uint64_t total_ops) {
  core::ClusterConfig cfg;
  cfg.num_servers = kServers;
  cfg.cores_per_server = 4;
  cfg.switch_config.dirty_set.num_stages = 10;
  cfg.switch_config.dirty_set.registers_per_stage = 1 << 14;
  cfg.server_template.switch_cache = switch_cache;
  core::Cluster world(cfg);

  auto dirs = wl::PreloadDirs(world, kDirs);
  wl::PreloadFiles(world, dirs, kFilesPerDir);

  // Hot-read storm: most ops are zipf-skewed stats of the hot directory's
  // files; plain stats over the whole population and a thin setattr stream
  // keep the invalidation path honest in BOTH arms.
  wl::MixRatios mix;
  mix.hot_read = 88;
  mix.stat = 8;
  mix.setattr = 4;
  wl::MixStream stream(mix, dirs, kFilesPerDir, /*skew=*/0.8,
                       /*io_bytes=*/0, cfg.seed);

  wl::RunnerConfig rc;
  rc.workers = 64;
  rc.total_ops = total_ops;
  rc.warmup_ops = total_ops / 10;
  wl::RunResult r = wl::RunWorkload(world, stream, rc);

  const auto& dp = world.data_plane()->stats();
  const auto st = world.TotalStats();
  Row row;
  row.label = switch_cache ? "switch cache" : "owner path";
  row.kops = r.ThroughputOpsPerSec() / 1e3;
  row.mean_us = r.MeanLatencyUs();
  row.p99_us = r.PercentileUs(0.99);
  row.ops = r.completed;
  const uint64_t probes = dp.mc_hits + dp.mc_misses;
  row.hit_rate = probes == 0 ? 0.0
                             : static_cast<double>(dp.mc_hits) /
                                   static_cast<double>(probes);
  row.installs = dp.mc_installs;
  row.evicts = dp.mc_evicts;
  row.server_ops = st.ops;
  return row;
}

void PrintRow(const Row& r) {
  std::printf("%-14s %9.1f %9.2f %9.2f %10llu %8.1f%% %9llu %8llu %11llu\n",
              r.label.c_str(), r.kops, r.mean_us, r.p99_us,
              static_cast<unsigned long long>(r.ops), r.hit_rate * 100.0,
              static_cast<unsigned long long>(r.installs),
              static_cast<unsigned long long>(r.evicts),
              static_cast<unsigned long long>(r.server_ops));
}

void EmitJson(const char* path, const Row& off, const Row& on,
              double speedup) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  auto emit = [f](const char* key, const Row& r, const char* tail) {
    std::fprintf(f,
                 "  \"%s\": {\"kops\": %.1f, \"mean_us\": %.2f, "
                 "\"p99_us\": %.2f, \"ops\": %llu, \"hit_rate\": %.4f, "
                 "\"installs\": %llu, \"evicts\": %llu, "
                 "\"server_ops\": %llu}%s\n",
                 key, r.kops, r.mean_us, r.p99_us,
                 static_cast<unsigned long long>(r.ops), r.hit_rate,
                 static_cast<unsigned long long>(r.installs),
                 static_cast<unsigned long long>(r.evicts),
                 static_cast<unsigned long long>(r.server_ops), tail);
  };
  std::fprintf(f,
               "{\n  \"bench\": \"switch_cache\", \"dirs\": %d, "
               "\"files_per_dir\": %d, \"servers\": %u,\n",
               kDirs, kFilesPerDir, kServers);
  emit("uncached", off, ",");
  emit("cached", on, ",");
  std::fprintf(f, "  \"speedup\": %.2f\n}\n", speedup);
  std::fclose(f);
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs::bench;
  const uint64_t total = ScaledOps(40000);
  PrintHeader("In-switch metadata read cache: hot-dir stat storm (" +
              std::to_string(kDirs) + " dirs x " +
              std::to_string(kFilesPerDir) + " files, " +
              std::to_string(kServers) + " servers)");
  std::printf("%-14s %9s %9s %9s %10s %9s %9s %8s %11s\n", "read path",
              "Kops/s", "mean(us)", "p99(us)", "ops", "hit rate", "installs",
              "evicts", "server ops");

  const Row off = RunOne(/*switch_cache=*/false, total);
  PrintRow(off);
  const Row on = RunOne(/*switch_cache=*/true, total);
  PrintRow(on);

  const double speedup = off.kops == 0 ? 0.0 : on.kops / off.kops;
  std::printf("\nhot-read speedup: %.2fx (target: >= 2x), "
              "cache hit rate: %.1f%%\n",
              speedup, on.hit_rate * 100.0);
  std::printf("server-visible requests: %llu -> %llu\n",
              static_cast<unsigned long long>(off.server_ops),
              static_cast<unsigned long long>(on.server_ops));

  if (const char* path = std::getenv("SFS_BENCH_JSON")) {
    EmitJson(path, off, on, speedup);
    std::printf("wrote %s\n", path);
  }
  return 0;
}
