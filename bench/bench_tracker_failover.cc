// Tracker crash mid-burst (§7.3.3 fault extension): a create storm runs
// against the dedicated tracker server vs the chain-replicated tracker
// group; the tracker (dedicated node / chain head) is killed mid-burst and
// the bench reports the throughput timeline around the crash, the dip
// depth, and two recovery times:
//   * throughput recovery — first window back at >= 90% of the pre-crash
//     average, measured from the crash instant;
//   * tracker recovery   — the subsystem's own restore procedure
//     (operator-driven RecoverAndRebuild for the dedicated node; automatic
//     lazy-detection failover + dirty-set reconstruction for the chain).
// The dedicated node rides out the outage on synchronous fallbacks (correct
// but slow, so the dip is deep and lasts until the operator restores it);
// the chain detects the dead head on first use and fails over in ~1 ms.
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "src/tracker/dedicated_tracker.h"
#include "src/tracker/replicated_tracker.h"
#include "src/tracker/tracker_server.h"

namespace switchfs::bench {
namespace {

using sim::SimTime;

constexpr SimTime kWindow = sim::Milliseconds(1);
constexpr SimTime kCrashAt = sim::Milliseconds(12);
constexpr SimTime kRunFor = sim::Milliseconds(36);
// Operator reaction time before the dedicated tracker's manual recovery.
constexpr SimTime kOperatorDelay = sim::Milliseconds(4);
constexpr int kWorkers = 32;  // scaled by SFS_BENCH_SCALE (floor 4)
constexpr int kDirs = 64;

int ScaledWorkers() {
  return std::max(4, static_cast<int>(kWorkers * Scale()));
}

struct BurstResult {
  std::vector<uint64_t> bins;  // completions per kWindow
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t fallbacks = 0;
  SimTime tracker_recovery = 0;  // subsystem-reported restore duration
  SimTime crash_at = 0;
  uint64_t verified_sizes = 0;  // sum of statdir sizes after the storm
};

sim::Task<void> Worker(core::MetadataService* client,
                       std::vector<std::string> dirs, int id, SimTime end,
                       sim::Simulator* sim, BurstResult* out) {
  int n = 0;
  while (sim->Now() < end) {
    const std::string path = dirs[(id + n) % dirs.size()] + "/w" +
                             std::to_string(id) + "_" + std::to_string(n);
    n++;
    Status s = co_await client->Create(path);
    if (s.ok()) {
      out->completed++;
      const size_t bin = static_cast<size_t>(sim->Now() / kWindow);
      if (bin < out->bins.size()) {
        out->bins[bin]++;
      }
    } else {
      out->failed++;
    }
  }
}

BurstResult RunBurst(core::TrackerMode mode) {
  core::ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.cores_per_server = 4;
  cfg.tracker = mode;
  cfg.tracker_replicas = 3;
  auto world = std::make_unique<core::Cluster>(cfg);
  auto dirs = wl::PreloadDirs(*world, kDirs);

  BurstResult out;
  out.bins.assign(static_cast<size_t>(kRunFor / kWindow) + 4, 0);

  std::vector<std::unique_ptr<core::MetadataService>> clients;
  const SimTime end = world->sim().Now() + kRunFor;
  for (int w = 0; w < ScaledWorkers(); ++w) {
    clients.push_back(world->NewClient(true));
    sim::Spawn(Worker(clients.back().get(), dirs, w, end, &world->sim(), &out));
  }

  world->sim().RunUntil(world->sim().Now() + kCrashAt);
  out.crash_at = world->sim().Now();
  if (mode == core::TrackerMode::kDedicatedServer) {
    world->tracker()->Crash();
    // The operator notices after kOperatorDelay and runs the manual
    // restore; tracker recovery spans crash -> restore completion.
    auto* cluster = world.get();
    auto* result = &out;
    cluster->sim().ScheduleAfter(kOperatorDelay, [cluster, result] {
      sim::Spawn([](core::Cluster* c, BurstResult* r) -> sim::Task<void> {
        co_await c->dedicated_tracker()->RecoverAndRebuild();
        r->tracker_recovery = c->sim().Now() - r->crash_at;
      }(cluster, result));
    });
  } else {
    auto* rep = world->replicated_tracker();
    rep->CrashNode(rep->head_index());
  }

  world->sim().Run();  // storm + recovery drain to quiescence
  out.fallbacks = world->TotalStats().fallbacks;
  if (mode == core::TrackerMode::kReplicated) {
    // Crash -> rebuilt chain serving (includes the lazy-detection window).
    auto* rep = world->replicated_tracker();
    if (rep->failovers() > 0) {
      out.tracker_recovery = rep->last_failover_completed_at() - out.crash_at;
    }
  }

  // Consistency check: every acknowledged create is visible to statdir.
  auto client = world->NewClient(true);
  auto* sum = &out.verified_sizes;
  sim::Spawn([](core::MetadataService* c, std::vector<std::string> ds,
                uint64_t* total) -> sim::Task<void> {
    for (const auto& d : ds) {
      auto sd = co_await c->StatDir(d);
      if (sd.ok()) {
        *total += sd->size;
      }
    }
  }(client.get(), dirs, sum));
  world->sim().Run();
  return out;
}

void Report(const char* label, const BurstResult& r) {
  const size_t crash_bin = static_cast<size_t>(r.crash_at / kWindow);
  double pre = 0;
  size_t pre_bins = 0;
  for (size_t b = 2; b < crash_bin; ++b) {  // skip the cold-start windows
    pre += static_cast<double>(r.bins[b]);
    pre_bins++;
  }
  pre = pre_bins > 0 ? pre / static_cast<double>(pre_bins) : 0;

  uint64_t dip = r.bins[crash_bin];
  size_t recovered_bin = r.bins.size();
  for (size_t b = crash_bin; b < r.bins.size(); ++b) {
    dip = std::min(dip, r.bins[b]);
    if (r.bins[b] >= 0.9 * pre) {
      recovered_bin = b;
      break;
    }
  }
  const double to_kops = 1e6 / sim::ToMicros(kWindow) / 1e3;
  std::printf("%-16s %9.1f %9.1f", label,
              pre * to_kops, static_cast<double>(dip) * to_kops);
  if (recovered_bin < r.bins.size()) {
    std::printf(" %10.2f ms",
                sim::ToMicros(static_cast<SimTime>(recovered_bin + 1) * kWindow -
                              r.crash_at) / 1e3);
  } else {
    std::printf(" %13s", "n/a");
  }
  std::printf(" %10.2f ms %10llu %11llu/%llu\n",
              sim::ToMicros(r.tracker_recovery) / 1e3,
              static_cast<unsigned long long>(r.fallbacks),
              static_cast<unsigned long long>(r.verified_sizes),
              static_cast<unsigned long long>(r.completed));

  std::printf("  timeline (Kops/s per %lld us window): ",
              static_cast<long long>(sim::ToMicros(kWindow)));
  for (size_t b = 2; b < r.bins.size() && b < crash_bin + 16; ++b) {
    std::printf("%s%.0f", b == crash_bin ? " |X| " : " ",
                static_cast<double>(r.bins[b]) * to_kops);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs::bench;
  PrintHeader("tracker crash mid-burst: dedicated server vs replicated chain");
  std::printf("8 servers, %d workers, %d dirs; crash at %.0f ms of %.0f ms "
              "storm\n\n",
              ScaledWorkers(), kDirs, switchfs::sim::ToMicros(kCrashAt) / 1e3,
              switchfs::sim::ToMicros(kRunFor) / 1e3);
  std::printf("%-16s %9s %9s %13s %13s %10s %13s\n", "mode", "pre Kops",
              "dip Kops", "tput recov", "tracker recov", "fallbacks",
              "visible/acked");

  BurstResult dedicated = RunBurst(switchfs::core::TrackerMode::kDedicatedServer);
  Report("DedicatedServer", dedicated);
  BurstResult replicated = RunBurst(switchfs::core::TrackerMode::kReplicated);
  Report("Replicated(3)", replicated);

  const bool ok_dedicated = dedicated.verified_sizes == dedicated.completed;
  const bool ok_replicated = replicated.verified_sizes == replicated.completed;
  std::printf("\nconsistency: dedicated %s, replicated %s (visible must equal "
              "acked)\n",
              ok_dedicated ? "OK" : "VIOLATION",
              ok_replicated ? "OK" : "VIOLATION");
  return ok_dedicated && ok_replicated ? 0 : 1;
}
