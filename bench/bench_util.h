// Shared helpers for the figure/table reproduction benches: system
// factories, op-count scaling, and aligned table output. Every bench prints
// the rows/series of its paper figure; see EXPERIMENTS.md for the mapping
// and the paper-vs-measured record.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/baseline.h"
#include "src/core/cluster.h"
#include "src/workload/generator.h"
#include "src/workload/runner.h"

namespace switchfs::bench {

// SFS_BENCH_SCALE scales op counts: a number (e.g. 0.2) or the presets
// "small" (0.2, CI smoke runs) / "full" (1.0).
inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("SFS_BENCH_SCALE");
    if (env == nullptr) {
      return 1.0;
    }
    const std::string s(env);
    if (s == "small") {
      return 0.2;
    }
    if (s == "full") {
      return 1.0;
    }
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return scale;
}

inline uint64_t ScaledOps(uint64_t n) {
  const auto scaled = static_cast<uint64_t>(static_cast<double>(n) * Scale());
  return scaled < 500 ? 500 : scaled;
}

inline std::unique_ptr<core::Cluster> MakeSwitchFs(
    uint32_t servers, int cores = 4,
    core::TrackerMode tracker = core::TrackerMode::kSwitch,
    bool async_updates = true, bool compaction = true, uint64_t seed = 42) {
  core::ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.cores_per_server = cores;
  cfg.tracker = tracker;
  cfg.async_updates = async_updates;
  cfg.compaction = compaction;
  cfg.seed = seed;
  // Modest dirty-set sizing keeps construction fast; no overflow occurs in
  // the evaluation workloads (matching §7.1 "no dirty-set overflow occurs").
  cfg.switch_config.dirty_set.num_stages = 10;
  cfg.switch_config.dirty_set.registers_per_stage = 1 << 14;
  return std::make_unique<core::Cluster>(cfg);
}

inline std::unique_ptr<baselines::BaselineCluster> MakeBaseline(
    baselines::SystemKind kind, uint32_t servers, int cores = 4,
    uint64_t seed = 42) {
  baselines::BaselineConfig cfg;
  cfg.kind = kind;
  cfg.num_servers = servers;
  cfg.cores_per_server = cores;
  cfg.seed = seed;
  return std::make_unique<baselines::BaselineCluster>(cfg);
}

// Factory by display name; nullptr tracker args use defaults.
inline std::unique_ptr<core::FsWorld> MakeWorld(const std::string& system,
                                                uint32_t servers,
                                                int cores = 4) {
  if (system == "SwitchFS") {
    return MakeSwitchFs(servers, cores);
  }
  if (system == "Emulated-InfiniFS") {
    return MakeBaseline(baselines::SystemKind::kEInfiniFS, servers, cores);
  }
  if (system == "Emulated-CFS") {
    return MakeBaseline(baselines::SystemKind::kECfs, servers, cores);
  }
  if (system == "CephFS") {
    return MakeBaseline(baselines::SystemKind::kCephFS, servers, cores);
  }
  if (system == "IndexFS") {
    return MakeBaseline(baselines::SystemKind::kIndexFS, servers, cores);
  }
  std::fprintf(stderr, "unknown system %s\n", system.c_str());
  std::abort();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintKops(const char* label, double ops_per_sec) {
  std::printf("%-22s %10.1f Kops/s\n", label, ops_per_sec / 1e3);
}

}  // namespace switchfs::bench

#endif  // BENCH_BENCH_UTIL_H_
