// Geo-replication (src/wan/): convergence time of a two-site world under a
// shared-namespace create workload, swept over WAN link lag, write volume,
// and conflict rate. The claim this bench exists to prove: convergence time
// after the last write scales with the WAN lag (a small multiple of the
// round trip — batches in flight plus the open batch), NOT with the write
// volume. Adaptive batch sizing (WanReplicatorConfig::max_closed_batches)
// is what makes that true: while acks lag, the open batch absorbs the
// backlog and each round trip ships it as one unit, so doubling the writes
// barely moves the post-write drain (volume_ratio vs volume_ratio_budget in
// the JSON). The conflict-rate sweep shows same-name cross-site writes
// settling by per-entry LWW (wan_conflicts_lww).
//
// Convergence is measured as simulated time from the LAST local write
// commit to full quiescence (GeoCluster::Converged: change logs drained,
// no batch mid-apply, every spool empty and acked), sampled on a 250us
// grid.
//
// SFS_BENCH_JSON=<path>: also emit the rows as JSON (scripts/bench_smoke.sh
// writes BENCH_wan_replication.json; scripts/bench_check.py gates on it).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/wan/geo.h"

namespace switchfs::bench {
namespace {

constexpr int kDirs = 4;            // shared replicated directories
constexpr int kWorkersPerSite = 4;  // concurrent writer clients per site
constexpr double kVolumeRatioBudget = 1.6;

struct Row {
  std::string label;
  int lag_ms = 0;
  uint64_t ops_per_site = 0;
  double write_ms = 0;  // first write launched to last write committed
  double conv_ms = 0;   // last write committed to full convergence
  uint64_t batches = 0;
  uint64_t applied = 0;
  uint64_t conflicts = 0;
};

sim::Task<void> SiteWriter(sim::Simulator* sm, core::SwitchFsClient* client,
                           wl::OpStream* stream, Rng* rng, uint64_t* remaining,
                           sim::SimTime* last_write, int* writers_left) {
  while (*remaining > 0) {
    --*remaining;
    const std::optional<wl::Op> op = stream->Next(*rng);
    // Pacing spreads the sites' writes over a window comparable to the WAN
    // round trip, so conflicting names really do commit concurrently.
    co_await sim::Delay(sm, sim::Microseconds(20 + rng->NextBelow(80)));
    (void)co_await client->Create(op->path);
    if (*last_write < sm->Now()) {
      *last_write = sm->Now();
    }
  }
  --*writers_left;
}

Row RunOne(const std::string& label, int lag_ms, double volume,
           double conflict_rate, uint64_t seed) {
  wan::GeoConfig g;
  g.num_clusters = 2;
  g.cluster_template.num_servers = 4;
  g.cluster_template.cores_per_server = 4;
  g.cluster_template.switch_config.dirty_set.num_stages = 10;
  g.cluster_template.switch_config.dirty_set.registers_per_stage = 1 << 14;
  g.seed = seed;
  g.link.latency = sim::Milliseconds(lag_ms);
  g.link.jitter = sim::Microseconds(200);
  g.replication.batch_interval = sim::Milliseconds(2);
  // The retry timeout must clear the round trip or healthy ships get
  // abandoned and re-sent forever.
  g.replication.ack_timeout = 2 * g.link.latency + sim::Milliseconds(20);
  g.replication.max_backoff = 4 * g.replication.ack_timeout;
  wan::GeoCluster geo(g);

  std::vector<std::string> dirs;
  for (int d = 0; d < kDirs; ++d) {
    dirs.push_back("/geo" + std::to_string(d));
    geo.PreloadDirAll(dirs.back());
  }

  // Volume multiplies AFTER the scale floor, so the 2x run really doubles
  // the writes even at SFS_BENCH_SCALE=small.
  const auto ops_per_site =
      static_cast<uint64_t>(static_cast<double>(ScaledOps(600)) * volume);
  std::vector<std::unique_ptr<core::SwitchFsClient>> clients;
  std::vector<std::unique_ptr<wl::SharedNamespaceStream>> streams;
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<uint64_t> remaining(2, ops_per_site);
  sim::SimTime last_write = 0;
  int writers_left = 2 * kWorkersPerSite;
  for (uint32_t site = 0; site < 2; ++site) {
    streams.push_back(std::make_unique<wl::SharedNamespaceStream>(
        dirs, site, conflict_rate));
    rngs.push_back(std::make_unique<Rng>(seed ^ (0x5bd1ULL * (site + 1))));
    for (int w = 0; w < kWorkersPerSite; ++w) {
      clients.push_back(geo.cluster(site).MakeClient());
      geo.cluster(site).WarmClient(*clients.back());
      sim::Spawn(SiteWriter(&geo.sim(), clients.back().get(),
                            streams[site].get(), rngs[site].get(),
                            &remaining[site], &last_write, &writers_left));
    }
  }

  // Drive the world in short slices and record the first slice boundary at
  // which the writers are done and everything is quiescent. RunUntil chases
  // RunWhileWorkPending because the latter does not advance the clock past
  // a gap (e.g. an ack still in flight beyond the slice).
  const sim::SimTime slice = sim::Microseconds(250);
  const sim::SimTime cap = sim::Seconds(120);
  while (geo.sim().Now() < cap) {
    const sim::SimTime t = geo.sim().Now() + slice;
    geo.sim().RunWhileWorkPending(t);
    geo.sim().RunUntil(t);
    if (writers_left == 0 && geo.Converged()) {
      break;
    }
  }

  const auto st = geo.TotalStats();
  Row row;
  row.label = label;
  row.lag_ms = lag_ms;
  row.ops_per_site = ops_per_site;
  row.write_ms = sim::ToSeconds(last_write) * 1e3;
  row.conv_ms = sim::ToSeconds(geo.sim().Now() - last_write) * 1e3;
  row.batches = st.wan_batches_shipped;
  row.applied = st.wan_entries_applied;
  row.conflicts = st.wan_conflicts_lww;
  return row;
}

void PrintRow(const Row& r) {
  std::printf("%-15s %7d %9llu %10.3f %10.3f %8llu %8llu %6llu\n",
              r.label.c_str(), r.lag_ms,
              static_cast<unsigned long long>(r.ops_per_site), r.write_ms,
              r.conv_ms, static_cast<unsigned long long>(r.batches),
              static_cast<unsigned long long>(r.applied),
              static_cast<unsigned long long>(r.conflicts));
}

void EmitJson(const char* path, const std::vector<Row>& rows,
              double volume_ratio) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"wan_replication\", \"sites\": 2, "
               "\"workers_per_site\": %d, \"dirs\": %d,\n",
               kWorkersPerSite, kDirs);
  for (const Row& r : rows) {
    std::fprintf(f,
                 "  \"%s\": {\"lag_ms\": %d, \"ops_per_site\": %llu, "
                 "\"write_ms\": %.3f, \"conv_ms\": %.3f, \"batches\": %llu, "
                 "\"applied\": %llu, \"conflicts\": %llu},\n",
                 r.label.c_str(), r.lag_ms,
                 static_cast<unsigned long long>(r.ops_per_site), r.write_ms,
                 r.conv_ms, static_cast<unsigned long long>(r.batches),
                 static_cast<unsigned long long>(r.applied),
                 static_cast<unsigned long long>(r.conflicts));
  }
  std::fprintf(f,
               "  \"volume_ratio\": %.3f,\n  \"volume_ratio_budget\": %.1f\n"
               "}\n",
               volume_ratio, kVolumeRatioBudget);
  std::fclose(f);
}

}  // namespace
}  // namespace switchfs::bench

int main() {
  using namespace switchfs::bench;
  PrintHeader(
      "WAN replication: convergence after the last write, 2 sites x " +
      std::to_string(kWorkersPerSite) + " writers over " +
      std::to_string(kDirs) + " shared dirs");
  std::printf("%-15s %7s %9s %10s %10s %8s %8s %6s\n", "row", "lag(ms)",
              "ops/site", "write(ms)", "conv(ms)", "batches", "applied",
              "lww");

  // Lag sweep at fixed volume: conv_ms must grow with the link lag.
  const Row lag5 = RunOne("lag5", 5, /*volume=*/1.0, /*conflict=*/0.2, 42);
  PrintRow(lag5);
  const Row lag20 = RunOne("lag20", 20, 1.0, 0.2, 42);
  PrintRow(lag20);
  const Row lag80 = RunOne("lag80", 80, 1.0, 0.2, 42);
  PrintRow(lag80);

  // Volume sweep at fixed lag: 2x the writes must NOT 2x the convergence
  // time (the open batch absorbs backlog; each round trip ships it whole).
  const Row vol2x = RunOne("vol2x", 20, 2.0, 0.2, 42);
  PrintRow(vol2x);

  // Conflict-rate sweep at fixed lag/volume: cross-site same-name creates
  // surface as wan_conflicts_lww (the older write dropped at the apply).
  const Row conflict_off = RunOne("conflict_off", 20, 1.0, 0.0, 42);
  PrintRow(conflict_off);
  const Row conflict_heavy = RunOne("conflict_heavy", 20, 1.0, 0.5, 42);
  PrintRow(conflict_heavy);

  const double volume_ratio =
      lag20.conv_ms <= 0.0 ? 0.0 : vol2x.conv_ms / lag20.conv_ms;
  std::printf(
      "\nconvergence vs lag: %.3f / %.3f / %.3f ms at 5/20/80 ms lag\n",
      lag5.conv_ms, lag20.conv_ms, lag80.conv_ms);
  std::printf("2x write volume convergence ratio: %.2fx (budget: < %.1fx)\n",
              volume_ratio, kVolumeRatioBudget);
  std::printf("LWW conflicts at 0%% / 50%% shared names: %llu / %llu\n",
              static_cast<unsigned long long>(conflict_off.conflicts),
              static_cast<unsigned long long>(conflict_heavy.conflicts));

  if (const char* path = std::getenv("SFS_BENCH_JSON")) {
    EmitJson(path, {lag5, lag20, lag80, vol2x, conflict_off, conflict_heavy},
             volume_ratio);
    std::printf("wrote %s\n", path);
  }
  return 0;
}
