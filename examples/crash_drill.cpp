// Crash drill: exercise the §5.4.2 fault-tolerance machinery end to end —
// kill a metadata server mid-workload, watch WAL-driven recovery, then kill
// the programmable switch and watch the cluster flush every change-log
// against the freshly initialized (empty) dirty set.
//
//   $ ./examples/crash_drill
#include <cstdio>

#include "src/core/cluster.h"
#include "src/workload/generator.h"
#include "src/workload/runner.h"

using namespace switchfs;

int main() {
  core::ClusterConfig config;
  config.num_servers = 8;
  // Slow background flushing so crashes catch deferred updates in flight.
  config.server_template.push_idle_timeout = sim::Milliseconds(50);
  config.server_template.owner_quiet_period = sim::Milliseconds(80);
  core::Cluster cluster(config);

  std::printf("phase 1: populate /data with 2000 files across 16 dirs\n");
  auto dirs = wl::PreloadDirs(cluster, 16, "/data");
  wl::FreshNameStream stream(core::OpType::kCreate, dirs, "f");
  wl::RunnerConfig rc;
  rc.workers = 64;
  rc.total_ops = 2000;
  rc.warmup_ops = 0;
  wl::RunResult r = wl::RunWorkload(cluster, stream, rc);
  std::printf("  %llu creates done, %zu change-log entries pending\n",
              static_cast<unsigned long long>(r.completed),
              cluster.TotalPendingChangeLogEntries());

  std::printf("\nphase 2: crash server 2 and recover it\n");
  cluster.CrashServer(2);
  const sim::SimTime t0 = cluster.sim().Now();
  sim::Spawn(cluster.RecoverServer(2));
  cluster.sim().Run();
  std::printf("  recovered in %.2f ms of simulated time, %llu WAL records "
              "replayed\n",
              static_cast<double>(cluster.sim().Now() - t0) / 1e6,
              static_cast<unsigned long long>(
                  cluster.server(2).stats().wal_replayed));

  std::printf("\nphase 3: crash the programmable switch\n");
  cluster.CrashSwitch();
  const sim::SimTime t1 = cluster.sim().Now();
  sim::Spawn(cluster.RecoverSwitch());
  cluster.sim().Run();
  std::printf("  dirty set reinitialized; all change-logs flushed in %.2f ms"
              "; pending entries now %zu\n",
              static_cast<double>(cluster.sim().Now() - t1) / 1e6,
              cluster.TotalPendingChangeLogEntries());

  std::printf("\nphase 4: verify — every directory still reports its exact "
              "entry count\n");
  auto client = cluster.MakeClient();
  cluster.WarmClient(*client);
  uint64_t total = 0;
  bool all_ok = true;
  sim::Spawn([](core::SwitchFsClient* c, std::vector<std::string> ds,
                uint64_t* total, bool* ok) -> sim::Task<void> {
    for (const auto& d : ds) {
      auto attr = co_await c->StatDir(d);
      if (!attr.ok()) {
        *ok = false;
        continue;
      }
      *total += attr->size;
    }
  }(client.get(), dirs, &total, &all_ok));
  cluster.sim().Run();
  std::printf("  sum of directory sizes: %llu (expected 2000), lookups %s\n",
              static_cast<unsigned long long>(total),
              all_ok ? "all OK" : "FAILED");
  return total == 2000 && all_ok ? 0 : 1;
}
