// Quickstart: build a SwitchFS cluster, mount a client, and walk through the
// metadata API — the ten-minute tour of the public interface.
//
//   $ ./examples/quickstart
//
// Everything runs inside the deterministic simulator: the "cluster" is four
// metadata servers behind a programmable-switch data plane, and all times
// printed are simulated time.
#include <cstdio>
#include <string>

#include "src/core/cluster.h"

using namespace switchfs;

namespace {

// Client operations are coroutines; a tiny driver runs one script to
// completion on the cluster's simulator.
void Run(core::Cluster& cluster, sim::Task<void> script) {
  sim::Spawn(std::move(script));
  cluster.sim().Run();
}

sim::Task<void> Tour(core::Cluster* /*cluster*/, core::SwitchFsClient* fs) {
  // Create a small project tree.
  (void)co_await fs->Mkdir("/projects");
  (void)co_await fs->Mkdir("/projects/switchfs");
  for (int i = 0; i < 5; ++i) {
    Status s = co_await fs->Create("/projects/switchfs/src" +
                                   std::to_string(i) + ".cc");
    std::printf("create src%d.cc      -> %s\n", i, s.ToString().c_str());
  }

  // Directory reads observe the deferred updates immediately (§5.2.2): the
  // switch's dirty set told the owner to aggregate before answering.
  auto attr = co_await fs->StatDir("/projects/switchfs");
  std::printf("statdir             -> %llu entries, mtime=%lld\n",
              static_cast<unsigned long long>(attr->size),
              static_cast<long long>(attr->mtime));

  // Listing is a cookie-paged stream (MetadataService v2): OpenDir pins an
  // owner-side snapshot — aggregated once, immune to concurrent mutations —
  // and each page is bounded by mtu_entries.
  auto dir = co_await fs->OpenDir("/projects/switchfs");
  std::printf("opendir             -> handle %llu\n",
              static_cast<unsigned long long>(dir->id));
  uint64_t cookie = core::kDirStreamStart;
  int page_no = 0;
  while (true) {
    auto page = co_await fs->ReaddirPage(*dir, cookie);
    std::printf("page %d              ->", page_no++);
    for (const auto& e : page->entries) {
      std::printf(" %s", e.name.c_str());
    }
    std::printf("%s\n", page->at_end ? "  [end]" : "");
    if (page->at_end) {
      break;
    }
    cookie = page->next_cookie;
  }
  (void)co_await fs->CloseDir(*dir);

  // Batched lookups: one multi-target RPC per owner server instead of one
  // round trip per path. (Named vector: GCC 12 miscompiles brace-init lists
  // inside co_await expressions.)
  std::vector<std::string> targets = {"/projects/switchfs/src1.cc",
                                      "/projects/switchfs/src2.cc",
                                      "/projects/switchfs/nope.cc"};
  auto stats = co_await fs->BatchStat(targets);
  std::printf("batchstat           -> src1: %s, src2: %s, nope: %s\n",
              stats[0].status().ToString().c_str(),
              stats[1].status().ToString().c_str(),
              stats[2].status().ToString().c_str());

  // Partial attribute updates commit through the WAL like any mutation.
  core::AttrDelta delta;
  delta.set_mode = true;
  delta.mode = 0600;
  Status ch = co_await fs->SetAttr("/projects/switchfs/src1.cc", delta);
  auto after = co_await fs->Stat("/projects/switchfs/src1.cc");
  std::printf("setattr 0600        -> %s (stat shows %o)\n",
              ch.ToString().c_str(), after->mode);

  // Rename and deletion round out the API.
  Status mv = co_await fs->Rename("/projects/switchfs/src0.cc",
                                  "/projects/switchfs/main.cc");
  std::printf("rename src0->main   -> %s\n", mv.ToString().c_str());
  Status rm = co_await fs->Unlink("/projects/switchfs/src4.cc");
  std::printf("unlink src4.cc      -> %s\n", rm.ToString().c_str());

  attr = co_await fs->StatDir("/projects/switchfs");
  std::printf("statdir             -> %llu entries\n",
              static_cast<unsigned long long>(attr->size));

  // rmdir enforces emptiness through an aggregation (§5.2.3).
  Status busy = co_await fs->Rmdir("/projects/switchfs");
  std::printf("rmdir (non-empty)   -> %s\n", busy.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("SwitchFS quickstart — 4 metadata servers, programmable "
              "switch data plane\n\n");
  core::ClusterConfig config;
  config.num_servers = 4;
  core::Cluster cluster(config);
  auto client = cluster.MakeClient();

  Run(cluster, Tour(&cluster, client.get()));

  const auto stats = cluster.TotalStats();
  std::printf("\ncluster counters: %llu ops, %llu aggregations, %llu "
              "change-log entries applied, %llu proactive pushes\n",
              static_cast<unsigned long long>(stats.ops),
              static_cast<unsigned long long>(stats.aggregations),
              static_cast<unsigned long long>(stats.entries_applied),
              static_cast<unsigned long long>(stats.pushes_sent));
  std::printf("switch dirty-set footprint: %.1f KiB across %d pipes\n",
              cluster.data_plane()->MemoryBytes() / 1024.0,
              4);
  std::printf("simulated time elapsed: %.1f us\n",
              sim::ToMicros(cluster.sim().Now()));
  return 0;
}
