// Skewed create storm: the paper's motivating scenario (§1, §3) — many
// clients bursting file creates into one hot directory — run side by side on
// SwitchFS and the two emulated state-of-the-art baselines.
//
//   $ ./examples/skewed_create_storm
//
// SwitchFS spreads the files by (parent, name) hash, defers the parent
// directory updates into per-server change-logs, and lets the switch's dirty
// set guarantee that the closing statdir still sees every file.
#include <cstdio>
#include <memory>

#include "src/baselines/baseline.h"
#include "src/core/cluster.h"
#include "src/workload/generator.h"
#include "src/workload/runner.h"

using namespace switchfs;

namespace {

void Storm(core::FsWorld& world) {
  world.PreloadDir("/hot");
  wl::FreshNameStream stream(core::OpType::kCreate, {"/hot"}, "burst");
  wl::RunnerConfig rc;
  rc.workers = 128;
  rc.total_ops = 8000;
  rc.warmup_ops = 800;
  wl::RunResult r = wl::RunWorkload(world, stream, rc);
  std::printf("%-20s %8.1f Kops/s   mean %6.1f us   p99 %7.1f us\n",
              world.name().c_str(), r.ThroughputOpsPerSec() / 1e3,
              r.MeanLatencyUs(), r.PercentileUs(0.99));
}

}  // namespace

int main() {
  std::printf("create storm: 128 clients hammering one directory "
              "(8 servers)\n\n");
  {
    core::ClusterConfig cfg;
    cfg.num_servers = 8;
    core::Cluster cluster(cfg);
    Storm(cluster);

    // Prove no update was lost — with the v2 API: a cookie-paged scan over
    // the hot directory (OpenDir aggregates once under the agg gate, pages
    // are mtu-bounded) plus a per-owner-batched stat burst over a sample of
    // the files just created.
    auto client = cluster.MakeClient();
    cluster.WarmClient(*client);
    uint64_t size = 0;
    uint64_t scanned = 0;
    uint64_t pages = 0;
    size_t sampled_ok = 0;
    sim::Spawn([](core::SwitchFsClient* c, uint64_t* size, uint64_t* scanned,
                  uint64_t* pages, size_t* sampled_ok) -> sim::Task<void> {
      auto attr = co_await c->StatDir("/hot");
      *size = attr.ok() ? attr->size : 0;

      auto dir = co_await c->OpenDir("/hot");
      if (!dir.ok()) {
        co_return;
      }
      std::vector<std::string> sample;
      uint64_t cookie = core::kDirStreamStart;
      while (true) {
        auto page = co_await c->ReaddirPage(*dir, cookie);
        if (!page.ok()) {
          break;
        }
        (*pages)++;
        *scanned += page->entries.size();
        if (sample.size() < 16 && !page->entries.empty()) {
          sample.push_back("/hot/" + page->entries.front().name);
        }
        if (page->at_end) {
          break;
        }
        cookie = page->next_cookie;
      }
      (void)co_await c->CloseDir(*dir);

      auto stats = co_await c->BatchStat(sample);
      for (const auto& s : stats) {
        *sampled_ok += s.ok() ? 1 : 0;
      }
    }(client.get(), &size, &scanned, &pages, &sampled_ok));
    cluster.sim().Run();
    std::printf("%-20s statdir(/hot) reports %llu entries; paged scan saw "
                "%llu across %llu pages; batch-stat sample %zu/16 ok\n\n",
                "SwitchFS", static_cast<unsigned long long>(size),
                static_cast<unsigned long long>(scanned),
                static_cast<unsigned long long>(pages), sampled_ok);

    // The storm above ships one RPC per create. BulkInsert ships the same
    // load as page-filled batches through an open dir handle — the same
    // WAL-committed entries in a fraction of the packets. Both windows
    // include the deferred change-log pushes (quiesce before counting).
    constexpr int kBulkFiles = 4000;
    uint64_t loop_packets = 0;
    uint64_t bulk_packets = 0;
    sim::Spawn([](core::Cluster* cluster, core::SwitchFsClient* c,
                  uint64_t* loop_packets,
                  uint64_t* bulk_packets) -> sim::Task<void> {
      (void)co_await c->Mkdir("/loop");
      (void)co_await c->Mkdir("/bulk");
      uint64_t p0 = cluster->network().stats().packets_sent;
      for (int i = 0; i < kBulkFiles; ++i) {
        (void)co_await c->Create("/loop/f" + std::to_string(i));
      }
      co_await sim::Delay(&cluster->sim(), sim::Milliseconds(5));
      *loop_packets = cluster->network().stats().packets_sent - p0;

      std::vector<std::string> names;
      names.reserve(kBulkFiles);
      for (int i = 0; i < kBulkFiles; ++i) {
        names.push_back("f" + std::to_string(i));
      }
      p0 = cluster->network().stats().packets_sent;
      auto handle = co_await c->OpenDir("/bulk");
      if (handle.ok()) {
        (void)co_await c->BulkInsert(*handle, names);
        (void)co_await c->CloseDir(*handle);
      }
      co_await sim::Delay(&cluster->sim(), sim::Milliseconds(5));
      *bulk_packets = cluster->network().stats().packets_sent - p0;
    }(&cluster, client.get(), &loop_packets, &bulk_packets));
    cluster.sim().Run();
    std::printf("%-20s %d creates: per-entry loop %llu packets -> BulkInsert "
                "%llu packets (%.1fx fewer, %lld saved)\n\n",
                "SwitchFS", kBulkFiles,
                static_cast<unsigned long long>(loop_packets),
                static_cast<unsigned long long>(bulk_packets),
                bulk_packets > 0 ? static_cast<double>(loop_packets) /
                                       static_cast<double>(bulk_packets)
                                 : 0.0,
                static_cast<long long>(loop_packets) -
                    static_cast<long long>(bulk_packets));
  }
  for (auto kind :
       {baselines::SystemKind::kEInfiniFS, baselines::SystemKind::kECfs}) {
    baselines::BaselineConfig cfg;
    cfg.kind = kind;
    cfg.num_servers = 8;
    baselines::BaselineCluster cluster(cfg);
    Storm(cluster);
  }
  std::printf("\nThe baselines serialize every create on the hot directory's "
              "server;\nSwitchFS absorbs the storm in per-server change-logs "
              "(§5.3).\n");
  return 0;
}
