// Trace replay: run the CV-training dataset lifecycle (download -> epochs ->
// removal, §7.6) end to end on SwitchFS with the simulated data-node tier,
// reporting per-phase progress and the final throughput.
//
//   $ ./examples/trace_replay
#include <cstdio>

#include "src/core/cluster.h"
#include "src/workload/data_service.h"
#include "src/workload/generator.h"
#include "src/workload/runner.h"
#include "src/workload/traces.h"

using namespace switchfs;

int main() {
  core::ClusterConfig config;
  config.num_servers = 8;
  core::Cluster cluster(config);
  wl::DataService data(&cluster.sim(), &cluster.costs(), 8);

  wl::TraceConfig tc;
  tc.num_dirs = 50;
  tc.files_per_dir = 40;
  tc.epochs = 2;
  tc.file_bytes = 128 * 1024;
  tc.with_data = true;

  std::printf("CV-training trace: %d dirs x %d files, %d epochs, 128KiB "
              "images, 8 data nodes\n",
              tc.num_dirs, tc.files_per_dir, tc.epochs);
  auto dirs = wl::PreloadDirs(cluster, tc.num_dirs, "/dataset");
  wl::CvTrainingTrace trace(dirs, tc);
  std::printf("trace length: %zu operations\n\n", trace.total_ops());

  wl::RunnerConfig rc;
  rc.workers = 256;
  rc.total_ops = 0;  // replay the bounded trace to completion
  rc.warmup_ops = 0;
  rc.data = &data;
  wl::RunResult r = wl::RunWorkload(cluster, trace, rc);

  std::printf("replayed %llu ops (%llu failed) in %.2f ms simulated\n",
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.failed),
              static_cast<double>(r.elapsed) / 1e6);
  std::printf("end-to-end throughput: %.1f Kops/s\n",
              r.ThroughputOpsPerSec() / 1e3);
  std::printf("data tier: %llu transfers, %.1f MiB moved\n",
              static_cast<unsigned long long>(data.transfers()),
              static_cast<double>(data.bytes_moved()) / (1024.0 * 1024.0));

  const auto stats = cluster.TotalStats();
  std::printf("metadata tier: %llu aggregations, %llu entries applied, %llu "
              "pushes\n",
              static_cast<unsigned long long>(stats.aggregations),
              static_cast<unsigned long long>(stats.entries_applied),
              static_cast<unsigned long long>(stats.pushes_sent));
  return 0;
}
