// Geo-replication demo: two SwitchFS clusters sharing a namespace over a
// simulated WAN link. The link is partitioned, both sites keep accepting
// writes to the same directory — including creates of the SAME names — and
// after the heal the change-log batches ship both ways and every conflict
// settles by per-entry last-writer-wins. The demo prints both sites'
// listings before and after the heal, plus the replication counters.
//
//   $ ./examples/wan_two_clusters
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/wan/geo.h"

using namespace switchfs;

namespace {

// Serialized sorted listing of `path` as cluster `i` sees it.
std::string Listing(wan::GeoCluster& geo, core::SwitchFsClient* client,
                    const std::string& path) {
  StatusOr<std::vector<core::DirEntry>> out = InternalError("not run");
  sim::Spawn([](core::SwitchFsClient* c, std::string p,
                StatusOr<std::vector<core::DirEntry>>* o) -> sim::Task<void> {
    *o = co_await c->Readdir(p);
  }(client, path, &out));
  // A bounded drive, not Run(): while the WAN is partitioned, ship retries
  // keep the event queue alive forever, but the local readdir completes in
  // well under this window.
  geo.sim().RunUntil(geo.sim().Now() + sim::Milliseconds(100));
  if (!out.ok()) {
    return "<readdir failed>";
  }
  std::vector<std::string> names;
  for (const core::DirEntry& e : *out) {
    names.push_back(e.name);
  }
  std::sort(names.begin(), names.end());
  std::string s;
  for (const std::string& n : names) {
    s += n;
    s += ' ';
  }
  return s;
}

sim::Task<void> SiteWrites(sim::Simulator* sm, core::SwitchFsClient* c,
                           uint32_t site) {
  Rng rng(0x9e37ULL * (site + 1));
  // Three names BOTH sites create while partitioned (the conflicts) plus
  // three site-unique files (plain replication volume).
  for (int k = 0; k < 3; ++k) {
    co_await sim::Delay(sm, sim::Microseconds(5 + rng.NextBelow(40)));
    (void)co_await c->Create("/shared/conflict" + std::to_string(k));
  }
  for (int k = 0; k < 3; ++k) {
    co_await sim::Delay(sm, sim::Microseconds(5 + rng.NextBelow(40)));
    (void)co_await c->Create("/shared/site" + std::to_string(site) + "_" +
                             std::to_string(k));
  }
}

}  // namespace

int main() {
  wan::GeoConfig g;
  g.num_clusters = 2;
  g.cluster_template.num_servers = 4;
  g.link.latency = sim::Milliseconds(20);
  wan::GeoCluster geo(g);
  geo.PreloadDirAll("/shared");

  std::vector<std::unique_ptr<core::SwitchFsClient>> clients;
  for (uint32_t i = 0; i < 2; ++i) {
    clients.push_back(geo.cluster(i).MakeClient());
    geo.cluster(i).WarmClient(*clients.back());
  }

  std::printf("phase 1: partition the WAN link, write at both sites\n");
  geo.SetPartitioned(0, 1, true);
  for (uint32_t i = 0; i < 2; ++i) {
    sim::Spawn(SiteWrites(&geo.sim(), clients[i].get(), i));
  }
  // Ship retries keep the event queue alive while partitioned: drive with a
  // deadline instead of Run().
  geo.sim().RunUntil(sim::Seconds(1));
  for (uint32_t i = 0; i < 2; ++i) {
    std::printf("  site %u sees: %s\n", i,
                Listing(geo, clients[i].get(), "/shared").c_str());
  }

  std::printf("\nphase 2: heal the link and let the batches ship\n");
  geo.SetPartitioned(0, 1, false);
  geo.sim().Run();  // one-shot timers only: a synced world drains out

  const auto st = geo.TotalStats();
  std::printf("  batches shipped %llu, entries applied %llu, LWW conflicts "
              "%llu, catch-up replays %llu\n",
              static_cast<unsigned long long>(st.wan_batches_shipped),
              static_cast<unsigned long long>(st.wan_entries_applied),
              static_cast<unsigned long long>(st.wan_conflicts_lww),
              static_cast<unsigned long long>(st.wan_catchup_replays));

  std::printf("\nphase 3: verify convergence\n");
  const std::string l0 = Listing(geo, clients[0].get(), "/shared");
  const std::string l1 = Listing(geo, clients[1].get(), "/shared");
  std::printf("  site 0 sees: %s\n", l0.c_str());
  std::printf("  site 1 sees: %s\n", l1.c_str());
  const bool converged = !l0.empty() && l0 == l1 && geo.WanIdle() &&
                         st.wan_conflicts_lww > 0;
  std::printf("  %s\n", converged
                            ? "converged: listings byte-identical, conflicts "
                              "settled by LWW"
                            : "FAILED to converge");
  return converged ? 0 : 1;
}
