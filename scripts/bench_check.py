#!/usr/bin/env python3
"""Regression gate for BENCH_push_batching.json.

Compares a fresh bench run against the committed baseline
(bench/baselines/push_batching.json) and fails on a >20% regression in any
gated metric. The bench runs in the deterministic simulator (all latency
and throughput figures are simulated time), so the comparison is stable
across machines — the baseline only needs regenerating when the simulated
protocol or cost model intentionally changes:

    SFS_BENCH_SCALE=small SFS_BENCH_JSON=bench/baselines/push_batching.json \
        ./build/bench_push_batching

Usage: scripts/bench_check.py <current.json> [<baseline.json>]
"""
import json
import pathlib
import sys

TOLERANCE = 0.20

# (json path, higher_is_better, description)
GATED = [
    (("per_owner", "apply_keps"), True, "owner-side apply throughput"),
    (("per_owner", "total_ms"), False, "end-to-end burst + drain time"),
    (("per_owner", "packets_per_op"), False, "PushReq packets per op"),
    (("packet_reduction",), True, "per-dir vs per-owner packet reduction"),
]


def lookup(doc, path):
    for key in path:
        doc = doc[key]
    return float(doc)


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    current_path = pathlib.Path(sys.argv[1])
    baseline_path = pathlib.Path(
        sys.argv[2]
        if len(sys.argv) > 2
        else pathlib.Path(__file__).resolve().parent.parent
        / "bench"
        / "baselines"
        / "push_batching.json"
    )
    current = json.loads(current_path.read_text())
    baseline = json.loads(baseline_path.read_text())

    failures = []
    for path, higher_is_better, desc in GATED:
        cur = lookup(current, path)
        base = lookup(baseline, path)
        if base == 0:
            continue
        ratio = cur / base
        regressed = (
            ratio < 1 - TOLERANCE if higher_is_better else ratio > 1 + TOLERANCE
        )
        marker = "FAIL" if regressed else "ok"
        print(
            f"  [{marker}] {'.'.join(path):28s} {desc}: "
            f"baseline {base:g} -> current {cur:g} ({ratio:+.1%} of baseline)"
        )
        if regressed:
            failures.append(desc)

    if failures:
        print(
            f"bench regression >{TOLERANCE:.0%} vs {baseline_path}: "
            + "; ".join(failures),
            file=sys.stderr,
        )
        return 1
    print(f"bench within {TOLERANCE:.0%} of {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
