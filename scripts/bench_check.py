#!/usr/bin/env python3
"""Regression gate for the committed perf-smoke benches.

Each bench emits a JSON document with a top-level "bench" name; this script
compares one or more fresh runs against their committed baselines
(bench/baselines/<name>.json) and fails on a >20% regression in any gated
metric. The benches run in the deterministic simulator (all latency and
throughput figures are simulated time), so the comparison is stable across
machines — a baseline only needs regenerating when the simulated protocol or
cost model intentionally changes:

    SFS_BENCH_SCALE=small SFS_BENCH_JSON=bench/baselines/push_batching.json \
        ./build/bench_push_batching
    SFS_BENCH_SCALE=small SFS_BENCH_JSON=bench/baselines/readdir_paging.json \
        ./build/bench_readdir_paging

Usage: scripts/bench_check.py <current.json> [<current2.json> ...]
       scripts/bench_check.py <current.json> --baseline <baseline.json>
"""
import json
import pathlib
import sys

TOLERANCE = 0.20

# bench name -> [(json path, higher_is_better, description)]
GATED = {
    "push_batching": [
        (("per_owner", "apply_keps"), True, "owner-side apply throughput"),
        (("per_owner", "total_ms"), False, "end-to-end burst + drain time"),
        (("per_owner", "packets_per_op"), False, "PushReq packets per op"),
        (("packet_reduction",), True, "per-dir vs per-owner packet reduction"),
    ],
    "readdir_paging": [
        (("mono", "total_ms"), False, "monolithic readdir time"),
        (("paged", "total_ms"), False, "pipelined paged scan time"),
        (("paged", "first_ms"), False, "time to first page"),
        (("paged", "packets"), False, "pages per scan"),
        (("paged", "max_packet_entries"), False, "page fill (mtu budget)"),
        (("bulk_insert", "bulk_ms"), False, "bulk insert time"),
        (("bulk_insert", "bulk_packets"), False, "bulk insert packets"),
    ],
    "switch_cache": [
        (("cached", "kops"), True, "cached hot-read throughput"),
        (("cached", "mean_us"), False, "cached hot-read mean latency"),
        (("cached", "hit_rate"), True, "data-plane cache hit rate"),
        (("speedup",), True, "cached vs uncached throughput ratio"),
    ],
    "shard_scaling": [
        (("four_shard", "apply_keps"), True, "4-shard owner apply throughput"),
        (("four_shard", "drain_ms"), False, "4-shard burst makespan"),
        (("speedup",), True, "4-shard vs 1-shard apply speedup"),
    ],
    "wan_replication": [
        (("lag5", "conv_ms"), False, "convergence time at 5 ms WAN lag"),
        (("lag20", "conv_ms"), False, "convergence time at 20 ms WAN lag"),
        (("lag80", "conv_ms"), False, "convergence time at 80 ms WAN lag"),
        (("lag20", "applied"), True, "entries replicated cross-site"),
        (("volume_ratio",), False, "2x-volume convergence blowup"),
    ],
}

# Comparative gates evaluated on the CURRENT run alone: metric A must be
# strictly less than metric B. These encode the claims the benches exist to
# prove (paged beats monolithic on BOTH first page and total; BulkInsert
# beats the per-entry loop), independent of baseline drift.
COMPARATIVE = {
    "readdir_paging": [
        (("paged", "total_ms"), ("mono", "total_ms"),
         "pipelined paged total beats monolithic"),
        (("paged", "first_ms"), ("mono", "first_ms"),
         "paged first page beats monolithic"),
        (("bulk_insert", "bulk_ms"), ("bulk_insert", "loop_ms"),
         "bulk insert beats the per-entry create loop"),
        (("bulk_insert", "bulk_packets"), ("bulk_insert", "loop_packets"),
         "bulk insert sends fewer packets than the loop"),
    ],
    "switch_cache": [
        (("cached", "mean_us"), ("uncached", "mean_us"),
         "cached hot-read latency beats the owner path"),
        (("uncached", "kops"), ("cached", "kops"),
         "cached hot-read throughput beats the owner path"),
        (("cached", "server_ops"), ("uncached", "server_ops"),
         "the cache offloads requests from the metadata servers"),
    ],
    "shard_scaling": [
        (("speedup_floor",), ("speedup",),
         "4-shard apply throughput at least 2x 1-shard"),
        (("four_shard", "drain_ms"), ("one_shard", "drain_ms"),
         "4 shards drain the skewed burst faster than 1"),
    ],
    "wan_replication": [
        (("lag5", "conv_ms"), ("lag20", "conv_ms"),
         "convergence grows with WAN lag (5 vs 20 ms)"),
        (("lag20", "conv_ms"), ("lag80", "conv_ms"),
         "convergence grows with WAN lag (20 vs 80 ms)"),
        (("volume_ratio",), ("volume_ratio_budget",),
         "convergence tracks WAN lag, not write volume"),
        (("conflict_off", "conflicts"), ("conflict_heavy", "conflicts"),
         "cross-site same-name writes settle by LWW"),
    ],
}


def lookup(doc, path):
    for key in path:
        doc = doc[key]
    return float(doc)


def check_one(current_path: pathlib.Path, baseline_path) -> list:
    current = json.loads(current_path.read_text())
    name = current.get("bench")
    if name not in GATED:
        print(f"  [skip] {current_path}: unknown bench {name!r}")
        return []
    if baseline_path is None:
        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "bench"
            / "baselines"
            / f"{name}.json"
        )
    baseline = json.loads(pathlib.Path(baseline_path).read_text())

    failures = []
    print(f"== {name} vs {baseline_path} ==")
    for path, higher_is_better, desc in GATED[name]:
        cur = lookup(current, path)
        base = lookup(baseline, path)
        if base == 0:
            continue
        ratio = cur / base
        regressed = (
            ratio < 1 - TOLERANCE if higher_is_better else ratio > 1 + TOLERANCE
        )
        marker = "FAIL" if regressed else "ok"
        print(
            f"  [{marker}] {'.'.join(path):28s} {desc}: "
            f"baseline {base:g} -> current {cur:g} ({ratio:+.1%} of baseline)"
        )
        if regressed:
            failures.append(f"{name}: {desc}")
    for path_a, path_b, desc in COMPARATIVE.get(name, []):
        a = lookup(current, path_a)
        b = lookup(current, path_b)
        holds = a < b
        marker = "ok" if holds else "FAIL"
        print(
            f"  [{marker}] {'.'.join(path_a)} < {'.'.join(path_b)}: "
            f"{desc} ({a:g} vs {b:g})"
        )
        if not holds:
            failures.append(f"{name}: {desc}")
    return failures


def main() -> int:
    args = sys.argv[1:]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    explicit_baseline = None
    if "--baseline" in args:
        i = args.index("--baseline")
        explicit_baseline = args[i + 1]
        del args[i : i + 2]

    failures = []
    for current in args:
        failures += check_one(pathlib.Path(current), explicit_baseline)

    if failures:
        print(
            f"bench regression >{TOLERANCE:.0%}: " + "; ".join(failures),
            file=sys.stderr,
        )
        return 1
    print(f"all benches within {TOLERANCE:.0%} of their baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
