#!/usr/bin/env bash
# Perf smoke for the committed bench trajectory: builds the gated benches,
# runs them at SFS_BENCH_SCALE=small, and emits BENCH_<name>.json for each.
# Opt-in from scripts/check.sh via SFS_BENCH_SMOKE=1, or run directly:
#
#   scripts/bench_smoke.sh            # writes ./BENCH_push_batching.json,
#                                     #   ./BENCH_readdir_paging.json,
#                                     #   ./BENCH_switch_cache.json,
#                                     #   ./BENCH_shard_scaling.json and
#                                     #   ./BENCH_wan_replication.json
#   BENCHES=bench_push_batching BENCH_JSON=/tmp/b.json scripts/bench_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}
BENCHES=${BENCHES:-"bench_push_batching bench_readdir_paging bench_switch_cache bench_shard_scaling bench_wan_replication"}

cmake -B "$BUILD_DIR" -S . >/dev/null
for bench in $BENCHES; do
  cmake --build "$BUILD_DIR" -j "$JOBS" --target "$bench"
done

for bench in $BENCHES; do
  name=${bench#bench_}
  out=${BENCH_JSON:-BENCH_${name}.json}
  SFS_BENCH_SCALE=small SFS_BENCH_JSON="$out" "$BUILD_DIR/$bench"
done
