#!/usr/bin/env bash
# Perf smoke for the push-batching trajectory: builds bench_push_batching,
# runs it at SFS_BENCH_SCALE=small, and emits BENCH_push_batching.json.
# Opt-in from scripts/check.sh via SFS_BENCH_SMOKE=1, or run directly:
#
#   scripts/bench_smoke.sh                 # writes ./BENCH_push_batching.json
#   BENCH_JSON=/tmp/b.json scripts/bench_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}
OUT=${BENCH_JSON:-BENCH_push_batching.json}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_push_batching

SFS_BENCH_SCALE=small SFS_BENCH_JSON="$OUT" "$BUILD_DIR/bench_push_batching"
