#!/usr/bin/env bash
# One-command gate for SwitchFS PRs: configure, build, run the tier-1 test
# suite AND the examples (API changes must not silently rot them), then
# repeat the tests under ASan/UBSan (-DCMAKE_BUILD_TYPE=Asan).
#
#   scripts/check.sh                    # tier-1 + examples + asan
#   scripts/check.sh --fast             # tier-1 + examples only
#   SFS_BENCH_SMOKE=1 scripts/check.sh  # also run the perf smoke benches
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

run_suite() {
  local build_dir=$1
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" --output-on-failure --no-tests=error -j "$JOBS"
}

echo "== tier-1: configure/build/ctest =="
run_suite build

echo "== examples: compile-and-run gate =="
for example in examples/*.cpp; do
  name=$(basename "$example" .cpp)
  echo "-- $name"
  ./build/"$name" > /dev/null
done

if [[ "${SFS_BENCH_SMOKE:-0}" == "1" ]]; then
  echo "== perf smoke: gated benches (SFS_BENCH_SCALE=small) =="
  scripts/bench_smoke.sh
  echo "== perf smoke: regression gate vs bench/baselines =="
  python3 scripts/bench_check.py BENCH_push_batching.json \
      BENCH_readdir_paging.json BENCH_switch_cache.json
fi

if [[ "${1:-}" != "--fast" ]]; then
  echo "== asan: configure/build/ctest (-DCMAKE_BUILD_TYPE=Asan) =="
  run_suite build-asan -DCMAKE_BUILD_TYPE=Asan
fi

echo "All checks passed."
