#!/usr/bin/env bash
# One-command gate for SwitchFS PRs: lint, configure, build, run the tier-1
# test suite AND the examples (API changes must not silently rot them), then
# repeat the tests under ASan/UBSan (-DCMAKE_BUILD_TYPE=Asan).
#
#   scripts/check.sh                    # lint + tier-1 + examples + asan
#   scripts/check.sh --fast             # lint + tier-1 + examples only
#   scripts/check.sh --lint-only        # sfs-lint + fixture golden, nothing else
#   SFS_TIDY=1 scripts/check.sh --fast  # also run clang-tidy (needs clang-tidy
#                                       # on PATH; installed in CI, not baked
#                                       # into the dev container)
#   SFS_BENCH_SMOKE=1 scripts/check.sh  # also run the perf smoke benches
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
MODE=${1:-}

run_suite() {
  local build_dir=$1
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" --output-on-failure --no-tests=error -j "$JOBS"
}

# Blocking lint stage: the fixture golden pins the analyzer's behavior, then
# the tree itself must be clean (zero unsuppressed findings; every
# suppression carries a reason). Runs first — it is the cheapest gate.
echo "== lint: sfs-lint (suspension safety / lock discipline) =="
python3 tools/lint/test_lint.py
python3 scripts/lint/sfs_lint.py src

if [[ "$MODE" == "--lint-only" ]]; then
  echo "Lint passed."
  exit 0
fi

echo "== tier-1: configure/build/ctest =="
run_suite build

echo "== examples: compile-and-run gate =="
# Each example's stdout goes through a pipe; `set -o pipefail` (above) makes
# the example's own exit status win, so a crash AFTER printing (abort,
# SIGSEGV mid-teardown) still fails the gate instead of being masked by the
# consumer's success. Failures are collected so one bad example doesn't hide
# the others.
example_failures=0
for example in examples/*.cpp; do
  name=$(basename "$example" .cpp)
  echo "-- $name"
  if ! ./build/"$name" 2>&1 | tail -n 5 > /dev/null; then
    echo "-- $name FAILED (nonzero exit propagated through the pipe)"
    example_failures=$((example_failures + 1))
  fi
done
if [[ "${SFS_CHECK_SELFTEST:-0}" == "1" ]]; then
  # Deliberate crash-after-print pushed through the same pipe shape: proves
  # the gate trips on an example that dies after producing output.
  if ! bash -c 'echo some output; kill -ABRT $$' 2>&1 | tail -n 5 > /dev/null
  then
    echo "-- selftest: crash-after-print correctly failed the gate"
  else
    echo "-- selftest: crash was masked by the pipe" >&2
    exit 1
  fi
fi
if (( example_failures > 0 )); then
  echo "examples gate: $example_failures failure(s)" >&2
  exit 1
fi

if [[ "${SFS_TIDY:-0}" == "1" ]]; then
  echo "== clang-tidy (SFS_TIDY=1, .clang-tidy curation) =="
  if ! command -v clang-tidy > /dev/null; then
    echo "SFS_TIDY=1 but clang-tidy is not on PATH" >&2
    exit 1
  fi
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  find src -name '*.cc' -print0 |
    xargs -0 -P "$JOBS" -n 4 clang-tidy -p build --quiet \
      --warnings-as-errors='*'
fi

if [[ "${SFS_BENCH_SMOKE:-0}" == "1" ]]; then
  echo "== perf smoke: gated benches (SFS_BENCH_SCALE=small) =="
  scripts/bench_smoke.sh
  echo "== perf smoke: regression gate vs bench/baselines =="
  python3 scripts/bench_check.py BENCH_push_batching.json \
      BENCH_readdir_paging.json BENCH_switch_cache.json \
      BENCH_shard_scaling.json BENCH_wan_replication.json
fi

if [[ "$MODE" != "--fast" ]]; then
  echo "== asan: configure/build/ctest (-DCMAKE_BUILD_TYPE=Asan) =="
  run_suite build-asan -DCMAKE_BUILD_TYPE=Asan
fi

echo "All checks passed."
