#!/usr/bin/env python3
"""sfs-lint: suspension-safety and lock-discipline analyzer for the SwitchFS
coroutine core.

The simulator is single-threaded, so the usual data-race tooling is silent on
the bugs that actually bite this codebase: references into shared state held
across a `co_await` (another chain mutates or erases the container while the
frame sleeps), lock-order inversions against the innermost changelog append
mutex, awaited Status values silently dropped, and switch-cache evicts run
without the exclusive inode lock (PR-3/PR-4 postmortems), and shard-private
state reached without going through a shard router. sfs-lint is a
lexical/structural analyzer for exactly those five patterns. It is not a
compiler: it tokenizes the source, tracks brace scopes, and keys off the
annotation macros in src/common/annotations.h rather than doing real type
resolution. libclang is deliberately not required.

Rules
-----
  borrow-across-suspend  (R1)
      A reference, pointer, or iterator derived from a type annotated
      SFS_SUSPENSION_SHARED (ServerVolatile, ClientCache, DirSessionTable,
      KvStore, ReplicatedTracker, ...) must not be used after a co_await that
      occurs while it is live. Re-binding the variable after the suspension
      (the re-find idiom) resets liveness.
  append-innermost       (R2)
      A lock table annotated SFS_LOCK_INNERMOST (changelog_append_locks) is
      the innermost lock: no other Acquire may be awaited while one of its
      guards is live. (The dynamic checker allows same-class pairs for the
      rebind path; statically even those must carry a suppression so the
      ordering argument is written down at the call site.)
  discarded-status       (R3)
      A statement-position `co_await f(...)` whose callee returns Status /
      StatusOr / Task<Status...> (harvested from declarations) discards the
      result. Assign and check it, make the discard explicit with a
      `(void)` cast, or suppress with a reason.
  evict-requires-lock    (R4)
      A call to a function annotated SFS_REQUIRES_EXCLUSIVE(member) —
      EvictSwitchCacheEntry, DataPlane::EvictCachedIf — must be lexically
      inside the live scope of an exclusive guard acquired from that member
      (`co_await ...member.AcquireExclusive(...)`), or carry a suppression
      naming the out-of-band witness.
  cross-shard-direct     (R5)
      A data member annotated SFS_SHARD_PRIVATE (ServerVolatile::shards)
      partitions state by fingerprint-group shard; only functions annotated
      SFS_SHARD_ROUTER (ShardFor/ShardAt/ShardForKey/SessionShard and the
      constructor) may touch it. Everything else must resolve a shard
      through a router at op entry — cross-shard work goes through the
      handoff lane — or carry a suppression naming the handoff argument.

Suppression
-----------
    // sfs-lint: allow(<rule>, <reason>)
on the flagged line or the line directly above. The reason is mandatory; an
empty reason is itself an error (bad-suppression).

Exit status: 0 when no unsuppressed findings, 1 otherwise, 2 on usage error.
"""

from __future__ import annotations

import argparse
import bisect
import json
import os
import re
import sys

RULES = (
    "borrow-across-suspend",
    "append-innermost",
    "discarded-status",
    "evict-requires-lock",
    "cross-shard-direct",
)

SUPPRESS_RE = re.compile(
    r"//\s*sfs-lint:\s*allow\(\s*([a-z-]+)\s*(?:,\s*(.*?))?\s*\)")

# Accessors that return an iterator (or iterator pair) into the receiver.
ITER_FUNCS = ("find", "begin", "cbegin", "rbegin", "end", "cend",
              "lower_bound", "upper_bound", "equal_range")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.suppressed = False
        self.reason = None

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Source model: comment/string-stripped text with offsets preserved, a line
# map, per-offset brace depth, and the suppression comments.
# ---------------------------------------------------------------------------

class SourceFile:
    def __init__(self, path, text):
        self.path = path
        self.raw = text
        self.clean = _strip(text)
        self.line_starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                self.line_starts.append(i + 1)
        self.depth = _depths(self.clean)
        # line -> (rule, reason) suppressions
        self.suppressions = {}
        self.bad_suppressions = []  # (line, text)
        for m in SUPPRESS_RE.finditer(text):
            line = self.line_of(m.start())
            rule, reason = m.group(1), (m.group(2) or "").strip()
            if rule not in RULES or not reason:
                self.bad_suppressions.append((line, m.group(0).strip()))
            else:
                self.suppressions.setdefault(line, []).append([rule, reason, False])

    def line_of(self, offset):
        return bisect.bisect_right(self.line_starts, offset)

    def allow(self, rule, line):
        """Consume a suppression for `rule` on `line` or the line above."""
        for cand in (line, line - 1):
            for entry in self.suppressions.get(cand, ()):
                if entry[0] == rule:
                    entry[2] = True
                    return entry[1]
        return None

    def enclosing_scope_open(self, offset):
        """Offset of the innermost '{' opening the scope containing
        `offset` (a '{' stores the pre-increment, i.e. parent, depth)."""
        d = self.depth[offset]
        if d == 0:
            return 0
        for i in range(offset, -1, -1):
            if self.clean[i] == "{" and self.depth[i] == d - 1:
                return i
        return 0

    def enclosing_scope_end(self, offset):
        """End offset of the innermost brace scope containing `offset`."""
        d = self.depth[offset]
        if d == 0:
            return len(self.clean)
        # A '}' stores the decremented depth, so the scope's own close is the
        # first '}' whose stored depth is d - 1 (nested closes store >= d).
        for i in range(offset, len(self.clean)):
            if self.clean[i] == "}" and self.depth[i] == d - 1:
                return i
        return len(self.clean)


def _strip(text):
    """Blank comments, string and char literals (newlines kept)."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c == '"':
            if text[i - 1] == "R" and i + 1 < n and text[i + 1] == "(":
                j = text.find(')"', i + 2)  # raw string, default delimiter
                j = n - 2 if j < 0 else j
                for k in range(i + 1, j + 1):
                    if out[k] != "\n":
                        out[k] = " "
                i = j + 2
                continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            if j - i <= 4:  # char literal, not a digit separator
                for k in range(i + 1, min(j, n)):
                    out[k] = " "
                i = j + 1
            else:
                i += 1
        else:
            i += 1
    return "".join(out)


def _depths(clean):
    depth = [0] * (len(clean) + 1)
    d = 0
    for i, ch in enumerate(clean):
        if ch == "{":
            depth[i] = d
            d += 1
        elif ch == "}":
            d -= 1
            depth[i] = d
        else:
            depth[i] = d
    depth[len(clean)] = 0
    return depth


# ---------------------------------------------------------------------------
# Pass 1: harvest annotations and status-returning declarations tree-wide.
# ---------------------------------------------------------------------------

class Harvest:
    def __init__(self):
        self.shared_types = set()     # SFS_SUSPENSION_SHARED class names
        self.shared_aliases = set()   # using X = ...<shared type>...
        self.innermost = set()        # SFS_LOCK_INNERMOST member names
        self.requires = {}            # function name -> required lock member
        self.status_funcs = set()     # names returning Status/StatusOr/...
        self.shard_private = set()    # SFS_SHARD_PRIVATE member names


SHARED_RE = re.compile(r"\b(?:class|struct)\s+SFS_SUSPENSION_SHARED\s+(\w+)")
INNERMOST_RE = re.compile(r"\bSFS_LOCK_INNERMOST\s+[\w:]+\s+(\w+)\s*;")
SHARD_PRIVATE_RE = re.compile(r"\bSFS_SHARD_PRIVATE\s+[^;{}()]*?(\w+)\s*;")
REQUIRES_RE = re.compile(
    r"\bSFS_REQUIRES_EXCLUSIVE\(\s*(\w+)\s*\)\s*"
    r"(?:[\w:]+(?:<[^;{}()]*>)?\s+)*?(\w+)\s*\(")
STATUS_RE = re.compile(
    r"\b(?:Status|StatusOr\s*<[^;{}]*?>|(?:sim::)?Task\s*<\s*"
    r"(?:Status|StatusOr\s*<[^;{}]*?>)\s*>)\s+(?:[\w:]+::)?(\w+)\s*\(")


def harvest_file(src, h):
    for m in SHARED_RE.finditer(src.clean):
        h.shared_types.add(m.group(1))
    for m in INNERMOST_RE.finditer(src.clean):
        h.innermost.add(m.group(1))
    for m in SHARD_PRIVATE_RE.finditer(src.clean):
        h.shard_private.add(m.group(1))
    for m in REQUIRES_RE.finditer(src.clean):
        h.requires[m.group(2)] = m.group(1)
    for m in STATUS_RE.finditer(src.clean):
        name = m.group(1)
        if name not in ("ok", "if", "return", "co_return", "co_await"):
            h.status_funcs.add(name)


def harvest_aliases(sources, h):
    # using VolPtr = std::shared_ptr<ServerVolatile>; etc.
    pat = re.compile(r"\busing\s+(\w+)\s*=\s*([^;]+);")
    for src in sources:
        for m in pat.finditer(src.clean):
            target = m.group(2)
            if any(re.search(r"\b%s\b" % t, target) for t in h.shared_types):
                h.shared_aliases.add(m.group(1))


# ---------------------------------------------------------------------------
# Pass 2: per-file analysis.
# ---------------------------------------------------------------------------

FUNC_BODY_RE = re.compile(
    r"\)\s*(?:const\s*|noexcept\s*|override\s*|final\s*|mutable\s*"
    r"|->\s*[\w:<>,\s&*]+?)*\{")


def coroutine_bodies(src):
    """Yield (start, end, header_start) for function bodies containing a
    co_await/co_return, outermost-first (nested lambdas are analyzed as part
    of their enclosing body's scope tracking)."""
    clean = src.clean
    bodies = []
    for m in FUNC_BODY_RE.finditer(clean):
        open_at = m.end() - 1
        close_at = src.enclosing_scope_end(open_at + 1)
        seg = clean[open_at:close_at]
        if "co_await" not in seg and "co_return" not in seg:
            continue
        bodies.append((open_at, close_at, m.start()))
    # Keep only outermost bodies.
    out = []
    for b in bodies:
        if not any(o[0] < b[0] and b[1] <= o[1] for o in out):
            out.append(b)
    return out


def header_text(src, header_start, open_at):
    """Text of the function head: from the start of its statement (previous
    ';', '{' or '}') to the body's '{'. Contains the parameter list."""
    clean = src.clean
    i = header_start
    # back up past the ')' to its matching '(' to include the full param list
    lo = max(clean.rfind(";", 0, i), clean.rfind("{", 0, i),
             clean.rfind("}", 0, i))
    return clean[lo + 1:open_at]


WORD = r"[A-Za-z_]\w*"


class Analyzer:
    def __init__(self, src, h):
        self.src = src
        self.h = h
        self.findings = []

    def report(self, rule, offset, message):
        line = self.src.line_of(offset)
        f = Finding(self.src.path, line, rule, message)
        reason = self.src.allow(rule, line)
        if reason is not None:
            f.suppressed = True
            f.reason = reason
        self.findings.append(f)

    # -- shared roots -------------------------------------------------------

    def shared_param_names(self, head):
        """Parameter/declaration names whose type mentions a shared type."""
        names = set()
        typenames = self.h.shared_types | self.h.shared_aliases
        if not typenames:
            return names
        type_alt = "|".join(sorted(typenames))
        pat = re.compile(
            r"\b(?:const\s+)?(?:[\w:]*(?:%s)[\w:]*|[\w:]+<[^<>]*"
            r"(?:%s)[^<>]*>)\s*[&*]*\s*(%s)\b" % (type_alt, type_alt, WORD))
        for m in pat.finditer(head):
            if m.group(1) not in typenames:
                names.add(m.group(1))
        return names

    def member_context(self, head, open_at):
        """True when the body belongs to a method of a shared-annotated class
        (qualified Class::Method definition, or inline within the annotated
        class body)."""
        m = re.search(r"\b(\w+)\s*::\s*~?\w+\s*\($", head.split("(")[0] + "(")
        if m and m.group(1) in self.h.shared_types:
            return True
        for cm in SHARED_RE.finditer(self.src.clean):
            brace = self.src.clean.find("{", cm.end())
            if brace < 0:
                continue
            if brace < open_at < self.src.enclosing_scope_end(brace + 1):
                return True
        return False

    # -- analysis entry -----------------------------------------------------

    def run(self):
        self.check_shard_direct()
        for open_at, close_at, header_start in coroutine_bodies(self.src):
            head = header_text(self.src, header_start, open_at)
            body = self.src.clean[open_at:close_at + 1]
            roots = self.shared_param_names(head)
            roots |= self.shared_param_names(body)
            in_member = self.member_context(head, open_at)
            awaits = [open_at + m.start()
                      for m in re.finditer(r"\bco_await\b", body)]
            self.check_borrows(open_at, body, roots, in_member, awaits)
            self.check_append_innermost(open_at, body)
            self.check_discarded_status(open_at, body)
            self.check_evict_lock(open_at, body)

    # -- R5 -----------------------------------------------------------------

    def check_shard_direct(self):
        """Flags uses of SFS_SHARD_PRIVATE members in any function whose
        header is not annotated SFS_SHARD_ROUTER. Runs over ALL function
        bodies (shard state is reachable from plain helpers too, not just
        coroutines)."""
        if not self.h.shard_private:
            return
        clean = self.src.clean
        bodies = [(m.end() - 1, self.src.enclosing_scope_end(m.end()),
                   m.start()) for m in FUNC_BODY_RE.finditer(clean)]
        alt = "|".join(sorted(re.escape(n) for n in self.h.shard_private))
        # `x.shards`, `x->shards`, or bare `shards` being indexed/deref'd.
        use_re = re.compile(
            r"(?:\.|->)\s*(?:%s)\b|(?<![\w.>])(?:%s)\s*(?=[\[.]|->)" %
            (alt, alt))
        for m in use_re.finditer(clean):
            at = m.start()
            # The annotated declaration itself.
            line_start = self.src.line_starts[self.src.line_of(at) - 1]
            if "SFS_SHARD_PRIVATE" in self.src.raw[line_start:at]:
                continue
            # The OUTERMOST enclosing `){`-body is the function (inner
            # matches are control-flow blocks or lambdas inside it); its
            # header carries the router annotation when sanctioned.
            outer = None
            for open_at, close_at, header_start in bodies:
                if open_at < at < close_at and \
                        (outer is None or open_at < outer[0]):
                    outer = (open_at, close_at, header_start)
            if outer is None:
                continue  # class/namespace scope: the declaration side
            head = header_text(self.src, outer[2], outer[0])
            if "SFS_SHARD_ROUTER" in head:
                continue
            self.report(
                "cross-shard-direct", at,
                "shard-private state accessed outside a SFS_SHARD_ROUTER "
                "accessor; resolve the shard via ShardFor/ShardAt/"
                "SessionShard at op entry (cross-shard work goes through "
                "the handoff lane) or suppress naming the handoff argument")

    # -- R1 -----------------------------------------------------------------

    def _tainted_init(self, init, roots, tainted, in_member):
        for r in roots:
            if re.search(r"\b%s\s*(?:->|\.|\))" % re.escape(r), init) or \
               re.search(r"&\s*%s\b" % re.escape(r), init):
                return True
        for t in tainted:
            if re.search(r"\b%s\b" % re.escape(t), init):
                return True
        if in_member and re.search(r"\b\w+_\s*(?:\.|->|\[)", init):
            return True
        return False

    TERMINATOR_RE = re.compile(
        r"(?:co_return|return|break|continue)\b[^;{}]*;\s*$")

    def _shielded(self, a, b, u):
        """True when the co_await at `a` sits inside a scope that excludes
        both the binding `b` and the use `u` and whose last statement is a
        terminator (co_return/return/break/continue): straight-line flow
        from that await cannot reach the use, and any loop back-edge
        re-executes the binding first. Lexical stand-in for path
        sensitivity — it clears the re-find-then-bail idiom."""
        pos = a
        while True:
            o = self.src.enclosing_scope_open(pos)
            c = self.src.enclosing_scope_end(pos)
            if o == 0 or o <= u <= c:
                return False
            if not (o <= b <= c) and \
                    self.TERMINATOR_RE.search(self.src.clean[o + 1:c]):
                return True
            pos = o

    def _liveness_violation(self, body, name, decl_end, scope_end, awaits,
                            base, rebindable):
        """First use of `name` separated from its latest (re)binding by a
        co_await, or None. Offsets are file-absolute; `body` is the body
        text starting at `base`. Pointers and iterators are `rebindable`:
        `name = ...` re-derives the borrow (the re-find idiom) and resets
        liveness. A reference cannot rebind — assignment through it writes
        the referent and counts as a use."""
        esc = re.escape(name)
        bindings = [decl_end]
        if rebindable:
            for m in re.finditer(r"\b%s\s*=(?![=])" % esc, body):
                at = base + m.start()
                if decl_end < at < scope_end:
                    end = body.find(";", m.end())
                    bindings.append(base + end if end >= 0 else at)
            bindings.sort()
        for m in re.finditer(r"\b%s\b" % esc, body):
            use = base + m.start()
            if not (decl_end < use < scope_end):
                continue
            nxt = body[m.end():m.end() + 2].lstrip()
            if rebindable and nxt.startswith("=") and \
                    not nxt.startswith("=="):
                continue  # the rebinding itself
            b = bindings[bisect.bisect_right(bindings, use) - 1]
            if any(b < a < use and not self._shielded(a, b, use)
                   for a in awaits):
                return use
        return None

    def check_borrows(self, base, body, roots, in_member, awaits):
        if not awaits:
            return
        tainted = set()
        # Declarations producing a reference/pointer.
        ref_decl = re.compile(
            r"(?:^|[;{}]|\)\s*)\s*(?:const\s+)?"
            r"(?:auto|[\w:]+(?:\s*<[^;=<>]*(?:<[^;=<>]*>)?[^;=<>]*>)?)"
            r"\s*(?:const\s*)?([&*]+)\s*(%s)\s*=\s*([^;]+);" % WORD)
        # Iterator declarations: auto it = x.find(...)
        iter_decl = re.compile(
            r"\b(?:auto|[\w:]+::(?:const_)?iterator)\s+(%s)\s*=\s*"
            r"([^;]*?(?:\.|->)\s*(?:%s)\s*\([^;]*);" % (WORD, "|".join(ITER_FUNCS)))
        # Structured bindings by reference.
        sb_decl = re.compile(
            r"\b(?:const\s+)?auto\s*&&?\s*\[([^\]]+)\]\s*=\s*([^;]+);")

        decls = []
        for m in ref_decl.finditer(body):
            rebindable = "&" not in m.group(1)
            decls.append((m.group(2), m.group(3), base + m.end(), rebindable,
                          "%s borrowed by %s" %
                          (m.group(2),
                           "pointer" if rebindable else "reference")))
        for m in iter_decl.finditer(body):
            decls.append((m.group(1), m.group(2), base + m.end(), True,
                          "iterator %s" % m.group(1)))
        for m in sb_decl.finditer(body):
            if re.match(r"\s*for\s*\($",
                        body[max(0, m.start() - 8):m.start() + 1]):
                continue
            for nm in [x.strip() for x in m.group(1).split(",")]:
                decls.append((nm, m.group(2), base + m.end(), False,
                              "structured binding &%s" % nm))
        decls.sort(key=lambda d: d[2])
        for name, init, decl_end, rebindable, what in decls:
            if not self._tainted_init(init, roots, tainted, in_member):
                continue
            tainted.add(name)
            scope_end = self.src.enclosing_scope_end(decl_end)
            use = self._liveness_violation(body, name, decl_end,
                                           scope_end, awaits, base,
                                           rebindable)
            if use is not None:
                self.report(
                    "borrow-across-suspend", decl_end - 1,
                    "%s into suspension-shared state is used at line %d "
                    "after an intervening co_await; copy the value, re-find "
                    "after the suspension, or suppress with the invariant "
                    "that pins it" % (what, self.src.line_of(use)))

        # Range-for over shared containers with a co_await in the loop body.
        for m in re.finditer(
                r"\bfor\s*\(\s*(?:const\s+)?auto\s*&&?\s*"
                r"(?:\[[^\]]+\]|%s)\s*:\s*([^)]+)\)\s*\{" % WORD, body):
            if not self._tainted_init(m.group(1), roots, tainted, in_member):
                continue
            loop_open = base + m.end() - 1
            loop_close = self.src.enclosing_scope_end(loop_open + 1)
            if any(loop_open < a < loop_close for a in awaits):
                self.report(
                    "borrow-across-suspend", base + m.start(),
                    "range-for over suspension-shared container suspends "
                    "inside the loop body; the hidden iterator does not "
                    "survive a concurrent mutation")

    # -- R2 -----------------------------------------------------------------

    def check_append_innermost(self, base, body):
        if not self.h.innermost:
            return
        inner_alt = "|".join(sorted(self.h.innermost))
        acq = re.compile(
            r"co_await\s+((?:[\w:]+(?:\.|->))*)(%s)\s*(?:\.|->)\s*"
            r"Acquire(?:Shared|Exclusive)?\s*\(" % WORD)
        holds = []  # (scope_end, table) for live innermost guards
        for m in acq.finditer(body):
            at = base + m.start()
            table = m.group(2)
            inner = table in self.h.innermost
            for scope_end, held in list(holds):
                if at >= scope_end:
                    holds.remove((scope_end, held))
            if holds:
                # Any acquisition (even a second innermost: the pair order
                # must be argued in a suppression) while an innermost guard
                # is live.
                self.report(
                    "append-innermost", at,
                    "lock %s acquired while the innermost append mutex %s "
                    "is held; release the append mutex first or suppress "
                    "with the ordering argument" % (table, holds[0][1]))
            if inner:
                # Guard lives to the end of the statement's scope unless the
                # variable it binds is Release()d; approximate with scope.
                stmt_scope = self.src.enclosing_scope_end(at)
                gm = re.search(r"(%s)\s*=\s*$" % WORD, body[:m.start()])
                # Explicit Release() of the bound guard ends the hold early.
                end = stmt_scope
                if gm:
                    rel = re.search(r"\b%s\s*\.\s*Release\s*\(" %
                                    re.escape(gm.group(1)), body[m.end():])
                    if rel:
                        end = min(end, base + m.end() + rel.start())
                holds.append((end, table))

    # -- R3 -----------------------------------------------------------------

    def check_discarded_status(self, base, body):
        callee_re = re.compile(
            r"co_await\s+(?:[\w:\]\[]+(?:\.|->))*(%s)\s*\(" % WORD)
        for m in re.finditer(r"\bco_await\b", body):
            j = m.start() - 1
            while j >= 0 and body[j] in " \t\n":
                j -= 1
            prev = body[j] if j >= 0 else "{"
            # Statement-position awaits only. `(void)co_await f()` reads as
            # an explicit, visible discard and is allowed (prev char ')').
            if prev not in ";{}":
                continue
            cm = callee_re.match(body, m.start())
            if not cm:
                continue
            callee = cm.group(1)
            if callee in self.h.status_funcs:
                self.report(
                    "discarded-status", base + m.start(),
                    "awaited result of %s() (returns Status/StatusOr) is "
                    "discarded; check it or suppress with why failure is "
                    "benign here" % callee)

    # -- R4 -----------------------------------------------------------------

    def _guard_scopes(self, base, body, member):
        """File-absolute (start, end) intervals in which an exclusive guard
        on `member` is live, keyed off the guard variable's declaration
        scope (handles Handle h; ... h = co_await ... and
        vec.push_back(co_await ...))."""
        scopes = []
        acq = re.compile(
            r"(?:(%s)\s*=\s*|(%s)\s*\.\s*(?:push_back|emplace_back)\s*\(\s*)?"
            r"co_await\s+[^;]*?\b%s\s*(?:\.|->)\s*AcquireExclusive\s*\(" %
            (WORD, WORD, re.escape(member)))
        for m in acq.finditer(body):
            at = base + m.start()
            var = m.group(1) or m.group(2)
            start = at
            scope_end = self.src.enclosing_scope_end(at)
            if var and var != "auto":
                # Use the variable's declaration scope when it was declared
                # earlier (Handle h; / std::vector<Handle> v;).
                dm = None
                for d in re.finditer(
                        r"[;{}]\s*(?:[\w:]+(?:<[^;=]*>)?\s+)+%s\s*;" %
                        re.escape(var), body[:m.start()]):
                    dm = d
                if dm:
                    decl_at = base + dm.end() - 1
                    scope_end = self.src.enclosing_scope_end(decl_at)
                # Release() ends the hold for the rest of its own scope.
                rel = re.search(r"\b%s\s*\.\s*Release\s*\(" % re.escape(var),
                                body[m.end():])
                if rel:
                    rel_at = base + m.end() + rel.start()
                    rel_scope_end = self.src.enclosing_scope_end(rel_at)
                    if rel_scope_end >= scope_end:
                        scope_end = rel_at
                    else:
                        scopes.append((start, scope_end, (rel_at,
                                                          rel_scope_end)))
                        continue
            scopes.append((start, scope_end, None))
        return scopes

    def check_evict_lock(self, base, body):
        for fn, member in self.h.requires.items():
            for m in re.finditer(r"\b%s\s*\(" % re.escape(fn), body):
                at = base + m.start()
                # Skip the function's own definition/declaration.
                head = body[max(0, m.start() - 64):m.start()]
                if re.search(r"(?:Task\s*<[^<>]*>|size_t|::)\s*$", head):
                    continue
                live = False
                for start, end, hole in self._guard_scopes(base, body,
                                                           member):
                    if start < at < end:
                        if hole and hole[0] < at < hole[1]:
                            continue
                        live = True
                        break
                if not live:
                    self.report(
                        "evict-requires-lock", at,
                        "%s() requires the exclusive %s guard to be live in "
                        "an enclosing scope; acquire it first or suppress "
                        "naming the out-of-band lock witness" % (fn, member))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for n in sorted(names):
                    if n.endswith((".h", ".cc", ".cpp", ".hpp")):
                        files.append(os.path.join(root, n))
        else:
            files.append(p)
    return sorted(set(files))


def main(argv=None):
    ap = argparse.ArgumentParser(prog="sfs-lint", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", help="files or directories to lint "
                    "(default: the repo's src/ tree)")
    ap.add_argument("--json", metavar="FILE",
                    help="also write findings as JSON (for CI artifacts)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--relative-to", metavar="DIR",
                    help="print paths relative to DIR (for golden tests)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    paths = args.paths
    if not paths:
        here = os.path.dirname(os.path.abspath(__file__))
        paths = [os.path.normpath(os.path.join(here, "..", "..", "src"))]

    files = collect(paths)
    if not files:
        print("sfs-lint: no input files", file=sys.stderr)
        return 2

    sources = []
    for f in files:
        try:
            with open(f, "r", encoding="utf-8", errors="replace") as fh:
                sources.append(SourceFile(f, fh.read()))
        except OSError as e:
            print("sfs-lint: %s: %s" % (f, e), file=sys.stderr)
            return 2

    h = Harvest()
    for src in sources:
        harvest_file(src, h)
    harvest_aliases(sources, h)

    findings = []
    for src in sources:
        a = Analyzer(src, h)
        a.run()
        findings.extend(a.findings)
        for line, text in src.bad_suppressions:
            findings.append(Finding(
                src.path, line, "bad-suppression",
                "suppression must name a known rule and a non-empty "
                "reason: %s" % text))

    def rel(p):
        return os.path.relpath(p, args.relative_to) if args.relative_to else p

    unsuppressed = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    for f in sorted(unsuppressed, key=lambda f: (rel(f.path), f.line)):
        print("%s:%d: [%s] %s" % (rel(f.path), f.line, f.rule, f.message))

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({
                "findings": [{
                    "path": rel(f.path), "line": f.line, "rule": f.rule,
                    "message": f.message, "suppressed": f.suppressed,
                    "reason": f.reason,
                } for f in findings],
                "summary": {
                    "files": len(sources),
                    "unsuppressed": len(unsuppressed),
                    "suppressed": len(suppressed),
                },
            }, fh, indent=2)
            fh.write("\n")

    print("sfs-lint: %d file(s), %d finding(s), %d suppressed" %
          (len(sources), len(unsuppressed), len(suppressed)),
          file=sys.stderr)
    return 1 if unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main())
