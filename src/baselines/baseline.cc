#include "src/baselines/baseline.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <utility>

#include "src/common/strings.h"
#include "src/core/batch_stat.h"
#include "src/core/keys.h"
#include "src/sim/task.h"

namespace switchfs::baselines {

using core::AncestorRef;
using core::Attr;
using core::CachedDir;
using core::DirEntry;
using core::EntryKey;
using core::EntryPrefix;
using core::FileType;
using core::InodeId;
using core::InodeKey;
using core::LookupReq;
using core::LookupResp;
using core::MetaReq;
using core::MetaResp;
using core::OpType;
using core::PathRef;
using core::RenameCommit;
using core::RenamePrepare;
using core::RenamePrepareResp;
using core::ContentKey;
using core::RootId;

const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kEInfiniFS:
      return "Emulated-InfiniFS";
    case SystemKind::kECfs:
      return "Emulated-CFS";
    case SystemKind::kCephFS:
      return "CephFS-sim";
    case SystemKind::kIndexFS:
      return "IndexFS-sim";
  }
  return "unknown";
}

uint32_t BaselinePlacement::FileServer(const InodeId& pid,
                                       const std::string& name,
                                       const std::string& top) const {
  switch (kind_) {
    case SystemKind::kEInfiniFS:
    case SystemKind::kIndexFS:
      return ring_->Owner(psw::FingerprintFromHash(pid.Hash64()));
    case SystemKind::kECfs:
      return ring_->Owner(core::FingerprintOf(pid, name));
    case SystemKind::kCephFS:
      return ring_->Owner(psw::FingerprintFromHash(HashString(top)));
  }
  return 0;
}

uint32_t BaselinePlacement::DirServer(const InodeId& dir_id,
                                      const std::string& top) const {
  if (kind_ == SystemKind::kCephFS) {
    return ring_->Owner(psw::FingerprintFromHash(HashString(top)));
  }
  return ring_->Owner(psw::FingerprintFromHash(dir_id.Hash64()));
}

// ---------------------------------------------------------------------------
// BaselineServer
// ---------------------------------------------------------------------------

BaselineServer::BaselineServer(sim::Simulator* sim, net::Network* net,
                               BaselineCluster* cluster,
                               const sim::CostModel* costs,
                               const BaselineConfig& config, uint32_t index)
    : sim_(sim),
      cluster_(cluster),
      costs_(costs),
      config_(config),
      index_(index),
      cpu_(sim, config.cores_per_server),
      rpc_(sim, net),
      locks_(sim),
      dir_sessions_(0),
      journal_mu_(sim) {
  rpc_.SetCpu(&cpu_);
  rpc_.SetRequestHandler([this](net::Packet p) { OnRequest(std::move(p)); });
  rpc_.SetRawHandler([this](net::Packet p) {
    if (p.body != nullptr && p.body->type == core::InvalBroadcast::kType) {
      inval_.Add(static_cast<const core::InvalBroadcast*>(p.body.get())->id,
                 sim_->Now());
    }
  });
}

void BaselineServer::SeedRoot() {
  const BaselinePlacement& placement = cluster_->placement();
  Attr root;
  root.id = RootId();
  root.type = FileType::kDirectory;
  root.mode = 0755;
  if (placement.FileServer(InodeId{}, "/", "/") == index_) {
    kv_.Put(InodeKey(InodeId{}, "/"), root.Encode());
  }
  if (placement.DirServer(RootId(), "/") == index_) {
    kv_.Put(ContentKey(RootId()), root.Encode());
  }
}

void BaselineServer::PreloadInode(const std::string& key, const Attr& attr) {
  kv_.Put(key, attr.Encode());
}

void BaselineServer::PreloadEntry(const InodeId& dir, const std::string& name,
                                  FileType t) {
  kv_.Put(EntryKey(dir, name), core::EncodeEntryValue(t));
}

sim::SimTime BaselineServer::ReadOverhead() const {
  switch (config_.kind) {
    case SystemKind::kCephFS:
      return costs_->ceph_op_overhead;
    case SystemKind::kIndexFS:
      return costs_->indexfs_lease_check;
    default:
      return 0;
  }
}

sim::SimTime BaselineServer::UpdateOverhead() const {
  switch (config_.kind) {
    case SystemKind::kCephFS:
      return costs_->ceph_op_overhead;
    case SystemKind::kIndexFS:
      return costs_->indexfs_lease_check;
    default:
      return 0;
  }
}

void BaselineServer::RespondStatus(const net::Packet& p, StatusCode code) {
  rpc_.Respond(p, net::MakeMsg<MetaResp>(code));
}

void BaselineServer::OnRequest(net::Packet p) {
  if (p.body == nullptr) {
    return;
  }
  switch (p.body->type) {
    case MetaReq::kType:
      sim::Spawn(HandleMeta(std::move(p)));
      break;
    case LookupReq::kType:
      sim::Spawn(HandleLookup(std::move(p)));
      break;
    case DirUpdateReq::kType:
      sim::Spawn(HandleDirUpdate(std::move(p)));
      break;
    case DirContentReq::kType:
      sim::Spawn(HandleDirContent(std::move(p)));
      break;
    case RenamePrepare::kType:
      sim::Spawn(HandleRenamePrepare(std::move(p)));
      break;
    case RenameCommit::kType:
      sim::Spawn(HandleRenameCommit(std::move(p)));
      break;
    default:
      break;
  }
}

sim::Task<void> BaselineServer::HandleMeta(net::Packet p) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  ops_++;
  co_await cpu_.Run(costs_->op_dispatch);
  switch (req->op) {
    case OpType::kCreate:
    case OpType::kMkdir:
    case OpType::kUnlink:
      co_await DoUpsert(p, *req);
      break;
    case OpType::kRmdir:
      co_await DoRmdir(p, *req);
      break;
    case OpType::kStat:
    case OpType::kOpen:
    case OpType::kClose:
    case OpType::kChmod:
    case OpType::kStatDir:
    case OpType::kReaddir:
      co_await DoRead(p, *req);
      break;
    case OpType::kOpenDir:
      co_await DoOpenDir(p, *req);
      break;
    case OpType::kReaddirPage:
      co_await DoReaddirPage(p, *req);
      break;
    case OpType::kCloseDir:
      co_await DoCloseDir(p, *req);
      break;
    case OpType::kBatchStat:
      co_await DoBatchStat(p, *req);
      break;
    case OpType::kSetAttr:
      co_await DoSetAttr(p, *req);
      break;
    case OpType::kBulkInsert:
      co_await DoBulkInsert(p, *req);
      break;
    case OpType::kRename:
      co_await HandleRename(std::move(p));
      break;
    default:
      RespondStatus(p, StatusCode::kInvalidArgument);
      break;
  }
}

sim::Task<Status> BaselineServer::ApplyDirUpdateLocal(
    const InodeId& dir, const std::string& name, FileType type, bool remove,
    int64_t timestamp) {
  // The serialized read-modify-write of directory attrs + entry list under
  // the directory lock: Challenge #2's contention point.
  auto lock = co_await locks_.AcquireExclusive(ContentKey(dir));
  if (config_.kind == SystemKind::kCephFS) {
    // The MDS journal additionally serializes update commits per server.
    auto jguard = co_await journal_mu_.Acquire();
    co_await cpu_.Run(costs_->ceph_journal);
  }
  co_await cpu_.Run(costs_->dir_update_cpu);
  co_await sim::Delay(sim_,
                      costs_->dir_update_critical - costs_->dir_update_cpu);
  auto value = kv_.Get(ContentKey(dir));
  if (!value.has_value()) {
    co_return NotFoundError("directory content missing");
  }
  Attr attr = Attr::Decode(*value);
  const std::string ekey = EntryKey(dir, name);
  if (remove) {
    kv_.Delete(ekey);
    if (attr.size > 0) {
      attr.size--;
    }
  } else {
    kv_.Put(ekey, core::EncodeEntryValue(type));
    attr.size++;
  }
  attr.mtime = std::max(attr.mtime, timestamp);
  kv_.Put(ContentKey(dir), attr.Encode());
  co_return OkStatus();
}

sim::Task<Status> BaselineServer::DirUpdate(const InodeId& dir,
                                            const std::string& top,
                                            const std::string& name,
                                            FileType type, bool remove) {
  const uint32_t home = cluster_->placement().DirServer(dir, top);
  if (home == index_) {
    co_return co_await ApplyDirUpdateLocal(dir, name, type, remove,
                                           sim_->Now());
  }
  auto msg = std::make_shared<DirUpdateReq>();
  msg->dir = dir;
  msg->name = name;
  msg->entry_type = type;
  msg->remove = remove;
  msg->timestamp = sim_->Now();
  net::CallOptions opts;
  opts.timeout = sim::Milliseconds(200);
  opts.max_attempts = 4;
  auto r = co_await rpc_.Call(cluster_->ServerNode(home), msg, opts);
  if (!r.ok()) {
    co_return r.status();
  }
  const auto* resp = net::MsgAs<DirUpdateResp>(*r);
  co_return resp != nullptr && resp->status == StatusCode::kOk
      ? OkStatus()
      : Status(resp == nullptr ? StatusCode::kInternal : resp->status);
}

sim::Task<void> BaselineServer::HandleDirUpdate(net::Packet p) {
  const auto* msg = static_cast<const DirUpdateReq*>(p.body.get());
  // Cross-server directory updates run as distributed-transaction legs.
  co_await cpu_.Run(costs_->op_dispatch + costs_->wal_append +
                    costs_->txn_prepare + costs_->txn_commit);
  wal_.Append(1, msg->name);
  Status s = co_await ApplyDirUpdateLocal(msg->dir, msg->name, msg->entry_type,
                                          msg->remove, msg->timestamp);
  auto resp = std::make_shared<DirUpdateResp>();
  resp->status = s.ok() ? StatusCode::kOk : s.code();
  rpc_.Respond(p, resp);
}

sim::Task<void> BaselineServer::HandleDirContent(net::Packet p) {
  const auto* msg = static_cast<const DirContentReq*>(p.body.get());
  co_await cpu_.Run(costs_->op_dispatch);
  auto resp = std::make_shared<DirContentResp>();
  if (msg->kind == DirContentReq::Kind::kInit) {
    auto lock = co_await locks_.AcquireExclusive(ContentKey(msg->dir));
    co_await cpu_.Run(costs_->kv_put + costs_->txn_commit);
    Attr attr;
    attr.id = msg->dir;
    attr.type = FileType::kDirectory;
    attr.mode = 0755;
    attr.ctime = attr.mtime = sim_->Now();
    kv_.Put(ContentKey(msg->dir), attr.Encode());
    resp->status = StatusCode::kOk;
  } else {
    auto lock = co_await locks_.AcquireExclusive(ContentKey(msg->dir));
    co_await cpu_.Run(costs_->kv_get);
    const size_t entries = kv_.CountPrefix(EntryPrefix(msg->dir));
    if (entries > 0) {
      resp->status = StatusCode::kNotEmpty;
    } else {
      co_await cpu_.Run(costs_->kv_delete);
      kv_.Delete(ContentKey(msg->dir));
      resp->status = StatusCode::kOk;
    }
  }
  rpc_.Respond(p, resp);
}

sim::Task<void> BaselineServer::DoUpsert(net::Packet p, const MetaReq& req) {
  const PathRef& ref = req.ref;
  const std::string top = req.top;  // top-level component (CephFS)
  // The parent directory's own subtree: the root belongs to "/", everything
  // else shares the target's top-level component.
  const std::string parent_top = ref.pid == RootId() ? "/" : top;
  const std::string ikey = InodeKey(ref.pid, ref.name);

  co_await cpu_.Run(UpdateOverhead());
  auto ino_lock = co_await locks_.AcquireExclusive(ikey);

  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  auto stale = inval_.Check(ref.ancestors);
  if (!stale.empty()) {
    auto resp = std::make_shared<MetaResp>(StatusCode::kStaleCache);
    resp->stale_ids = std::move(stale);
    rpc_.Respond(p, resp);
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  auto existing = kv_.Get(ikey);

  Attr attr;
  switch (req.op) {
    case OpType::kCreate:
    case OpType::kMkdir: {
      if (existing.has_value()) {
        RespondStatus(p, StatusCode::kAlreadyExists);
        co_return;
      }
      attr.id.w[0] = (static_cast<uint64_t>(index_) << 48) | id_counter_++;
      attr.id.w[1] = Mix64(attr.id.w[0]);
      attr.id.w[3] = 5;
      attr.type = req.op == OpType::kMkdir ? FileType::kDirectory
                                           : FileType::kFile;
      attr.mode = req.mode;
      attr.ctime = attr.mtime = attr.atime = sim_->Now();
      break;
    }
    case OpType::kUnlink: {
      if (!existing.has_value()) {
        RespondStatus(p, StatusCode::kNotFound);
        co_return;
      }
      attr = Attr::Decode(*existing);
      if (attr.is_dir()) {
        RespondStatus(p, StatusCode::kIsADirectory);
        co_return;
      }
      break;
    }
    default:
      RespondStatus(p, StatusCode::kInvalidArgument);
      co_return;
  }

  // WAL commit + inode mutation.
  co_await cpu_.Run(costs_->wal_append);
  wal_.Append(1, ikey);
  co_await cpu_.Run(req.op == OpType::kUnlink ? costs_->kv_delete
                                              : costs_->kv_put);
  if (req.op == OpType::kUnlink) {
    kv_.Delete(ikey);
  } else {
    kv_.Put(ikey, attr.Encode());
  }

  // Synchronous parent-directory update (the defining property of the
  // baselines: visibility requires the update on the read path *now*).
  Status dir_status = co_await DirUpdate(ref.pid, parent_top, ref.name,
                                         attr.type, req.op == OpType::kUnlink);
  if (!dir_status.ok()) {
    RespondStatus(p, dir_status.code());
    co_return;
  }

  // mkdir: initialize the directory's content record at its home server.
  if (req.op == OpType::kMkdir) {
    const uint32_t home = cluster_->placement().DirServer(attr.id, top);
    if (home == index_) {
      Attr content = attr;
      co_await cpu_.Run(costs_->kv_put);
      kv_.Put(ContentKey(attr.id), content.Encode());
    } else {
      auto msg = std::make_shared<DirContentReq>();
      msg->kind = DirContentReq::Kind::kInit;
      msg->dir = attr.id;
      co_await cpu_.Run(costs_->txn_prepare);
      auto r = co_await rpc_.Call(cluster_->ServerNode(home), msg);
      (void)r;
    }
  }

  co_await cpu_.Run(costs_->reply_build);
  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->attr = attr;
  rpc_.Respond(p, resp);
}

sim::Task<void> BaselineServer::DoRmdir(net::Packet p, const MetaReq& req) {
  const PathRef& ref = req.ref;
  const std::string top = req.top;
  const std::string parent_top = ref.pid == RootId() ? "/" : top;
  const std::string ikey = InodeKey(ref.pid, ref.name);

  co_await cpu_.Run(UpdateOverhead());
  auto ino_lock = co_await locks_.AcquireExclusive(ikey);
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  auto stale = inval_.Check(ref.ancestors);
  if (!stale.empty()) {
    auto resp = std::make_shared<MetaResp>(StatusCode::kStaleCache);
    resp->stale_ids = std::move(stale);
    rpc_.Respond(p, resp);
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  auto existing = kv_.Get(ikey);
  if (!existing.has_value()) {
    RespondStatus(p, StatusCode::kNotFound);
    co_return;
  }
  Attr attr = Attr::Decode(*existing);
  if (!attr.is_dir()) {
    RespondStatus(p, StatusCode::kNotADirectory);
    co_return;
  }

  // Check emptiness and drop the content record at the dir's home server.
  const uint32_t home = cluster_->placement().DirServer(attr.id, top);
  StatusCode content_status = StatusCode::kOk;
  if (home == index_) {
    auto lock = co_await locks_.AcquireExclusive(ContentKey(attr.id));
    co_await cpu_.Run(costs_->kv_get);
    if (kv_.CountPrefix(EntryPrefix(attr.id)) > 0) {
      content_status = StatusCode::kNotEmpty;
    } else {
      co_await cpu_.Run(costs_->kv_delete);
      kv_.Delete(ContentKey(attr.id));
    }
  } else {
    auto msg = std::make_shared<DirContentReq>();
    msg->kind = DirContentReq::Kind::kCheckEmptyAndDrop;
    msg->dir = attr.id;
    auto r = co_await rpc_.Call(cluster_->ServerNode(home), msg);
    if (!r.ok()) {
      RespondStatus(p, StatusCode::kUnavailable);
      co_return;
    }
    const auto* resp = net::MsgAs<DirContentResp>(*r);
    content_status =
        resp == nullptr ? StatusCode::kInternal : resp->status;
  }
  if (content_status != StatusCode::kOk) {
    RespondStatus(p, content_status);
    co_return;
  }

  co_await cpu_.Run(costs_->wal_append + costs_->kv_delete);
  wal_.Append(1, ikey);
  kv_.Delete(ikey);

  Status dir_status = co_await DirUpdate(ref.pid, parent_top, ref.name,
                                         FileType::kDirectory, true);
  (void)dir_status;

  // Lazy invalidation of client caches (E-InfiniFS style).
  if (config_.kind != SystemKind::kCephFS) {
    inval_.Add(attr.id, sim_->Now());
    auto bcast = std::make_shared<core::InvalBroadcast>();
    bcast->id = attr.id;
    net::Packet mc;
    mc.dst = net::kServerMulticast;
    mc.ds.origin = node_id();
    mc.body = bcast;
    rpc_.Send(std::move(mc));
  }

  RespondStatus(p, StatusCode::kOk);
}

sim::Task<void> BaselineServer::DoRead(net::Packet p, const MetaReq& req) {
  const PathRef& ref = req.ref;
  const bool dir_read =
      req.op == OpType::kStatDir || req.op == OpType::kReaddir;

  co_await cpu_.Run(ReadOverhead());
  if (req.op == OpType::kClose) {
    co_await cpu_.Run(costs_->reply_build);
    RespondStatus(p, StatusCode::kOk);
    co_return;
  }

  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  auto stale = inval_.Check(ref.ancestors);
  if (!stale.empty()) {
    auto resp = std::make_shared<MetaResp>(StatusCode::kStaleCache);
    resp->stale_ids = std::move(stale);
    rpc_.Respond(p, resp);
    co_return;
  }

  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  if (dir_read) {
    // Directory content lives here (home server); ref.pid carries the dir id
    // (the client resolves the directory itself, not its parent).
    const InodeId dir = ref.pid;
    auto lock = co_await locks_.AcquireShared(ContentKey(dir));
    co_await cpu_.Run(costs_->kv_get);
    auto value = kv_.Get(ContentKey(dir));
    if (!value.has_value()) {
      RespondStatus(p, StatusCode::kNotFound);
      co_return;
    }
    resp->attr = Attr::Decode(*value);
    if (req.op == OpType::kReaddir && req.want_entries) {
      size_t n = 0;
      kv_.ScanPrefix(EntryPrefix(dir),
                     [&](const std::string& k, const std::string& val) {
                       resp->entries.push_back(
                           DirEntry{std::string(core::EntryNameFromKey(k)),
                                    core::DecodeEntryValue(val)});
                       ++n;
                       return true;
                     });
      co_await cpu_.Run(static_cast<sim::SimTime>(n) *
                        (costs_->kv_scan_per_entry + costs_->readdir_per_entry));
    }
  } else {
    const std::string ikey = InodeKey(ref.pid, ref.name);
    auto lock = co_await locks_.AcquireShared(ikey);
    co_await cpu_.Run(costs_->kv_get);
    auto value = kv_.Get(ikey);
    if (!value.has_value()) {
      RespondStatus(p, StatusCode::kNotFound);
      co_return;
    }
    resp->attr = Attr::Decode(*value);
    if (req.op == OpType::kChmod) {
      resp->attr.mode = req.mode;
      co_await cpu_.Run(costs_->kv_put);
      kv_.Put(ikey, resp->attr.Encode());
    }
  }
  co_await cpu_.Run(costs_->reply_build);
  rpc_.Respond(p, resp);
}

// ---------------------------------------------------------------------------
// MetadataService v2: directory streams, batched lookups, attr deltas
// ---------------------------------------------------------------------------

sim::Task<void> BaselineServer::DoOpenDir(net::Packet p, const MetaReq& req) {
  const PathRef& ref = req.ref;
  co_await cpu_.Run(ReadOverhead());
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  auto stale = inval_.Check(ref.ancestors);
  if (!stale.empty()) {
    auto resp = std::make_shared<MetaResp>(StatusCode::kStaleCache);
    resp->stale_ids = std::move(stale);
    rpc_.Respond(p, resp);
    co_return;
  }
  // Directory content lives here (home server); ref.pid carries the dir id
  // (the client resolves the directory itself, as for statdir/readdir).
  const InodeId dir = ref.pid;
  auto lock = co_await locks_.AcquireShared(core::ContentKey(dir));
  co_await cpu_.Run(costs_->kv_get);
  auto value = kv_.Get(core::ContentKey(dir));
  if (!value.has_value()) {
    RespondStatus(p, StatusCode::kNotFound);
    co_return;
  }
  Attr attr = Attr::Decode(*value);

  // Snapshot under the content lock: the stream's one scan (pages pay only
  // their own marshalling, exactly as on SwitchFS).
  std::vector<DirEntry> entries;
  kv_.ScanPrefix(EntryPrefix(dir),
                 [&](const std::string& k, const std::string& val) {
                   entries.push_back(
                       DirEntry{std::string(core::EntryNameFromKey(k)),
                                core::DecodeEntryValue(val)});
                   return true;
                 });
  co_await cpu_.Run(static_cast<sim::SimTime>(entries.size()) *
                    costs_->kv_scan_per_entry);
  core::DirSession& session =
      dir_sessions_.Open(dir, std::move(entries), sim_->Now());
  sim::Spawn(DirSessionWatchdog(session.id));

  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->attr = attr;
  resp->dir_session = session.id;
  resp->dir_entries = session.entries.size();
  co_await cpu_.Run(costs_->reply_build);
  rpc_.Respond(p, resp);
}

sim::Task<void> BaselineServer::DirSessionWatchdog(uint64_t session_id) {
  while (true) {
    co_await sim::Delay(sim_, config_.dir_session_ttl);
    if (dir_sessions_.ExpireIfIdle(session_id, sim_->Now(),
                                   config_.dir_session_ttl)) {
      co_return;
    }
  }
}

sim::Task<void> BaselineServer::DoReaddirPage(net::Packet p,
                                              const MetaReq& req) {
  co_await cpu_.Run(ReadOverhead());
  core::DirSession* session = dir_sessions_.Touch(req.dir_session, sim_->Now(),
                                                  config_.dir_session_ttl);
  if (session == nullptr) {
    RespondStatus(p, StatusCode::kStaleHandle);
    co_return;
  }
  // Build before suspending: the watchdog may expire the session mid-await.
  core::DirPage page = core::DirSessionTable::PageOf(
      *session, req.cookie, config_.mtu_entries, config_.mtu_bytes);
  co_await cpu_.Run(static_cast<sim::SimTime>(page.entries.size()) *
                        costs_->readdir_per_entry +
                    costs_->reply_build);
  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->entries = std::move(page.entries);
  resp->next_cookie = page.next_cookie;
  resp->at_end = page.at_end;
  rpc_.Respond(p, resp);
}

sim::Task<void> BaselineServer::DoCloseDir(net::Packet p, const MetaReq& req) {
  co_await cpu_.Run(costs_->reply_build);
  dir_sessions_.Close(req.dir_session);
  RespondStatus(p, StatusCode::kOk);
}

sim::Task<void> BaselineServer::DoBatchStat(net::Packet p, const MetaReq& req) {
  co_await cpu_.Run(ReadOverhead());
  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->batch_status.reserve(req.targets.size());
  resp->batch_attrs.resize(req.targets.size());
  for (size_t i = 0; i < req.targets.size(); ++i) {
    const PathRef& ref = req.targets[i];
    const std::string ikey = InodeKey(ref.pid, ref.name);
    auto lock = co_await locks_.AcquireShared(ikey);
    co_await cpu_.Run(costs_->path_check *
                      static_cast<sim::SimTime>(1 + ref.ancestors.size()));
    auto stale = inval_.Check(ref.ancestors);
    if (!stale.empty()) {
      for (core::InodeId& id : stale) {
        resp->stale_ids.push_back(id);
      }
      resp->batch_status.push_back(StatusCode::kStaleCache);
      continue;
    }
    co_await cpu_.Run(costs_->kv_get);
    auto value = kv_.Get(ikey);
    if (!value.has_value()) {
      resp->batch_status.push_back(StatusCode::kNotFound);
      continue;
    }
    resp->batch_attrs[i] = Attr::Decode(*value);
    resp->batch_status.push_back(StatusCode::kOk);
  }
  co_await cpu_.Run(costs_->reply_build);
  rpc_.Respond(p, resp);
}

sim::Task<void> BaselineServer::DoSetAttr(net::Packet p, const MetaReq& req) {
  const PathRef& ref = req.ref;
  co_await cpu_.Run(UpdateOverhead());
  const std::string ikey = InodeKey(ref.pid, ref.name);
  auto lock = co_await locks_.AcquireExclusive(ikey);
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  auto stale = inval_.Check(ref.ancestors);
  if (!stale.empty()) {
    auto resp = std::make_shared<MetaResp>(StatusCode::kStaleCache);
    resp->stale_ids = std::move(stale);
    rpc_.Respond(p, resp);
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  auto value = kv_.Get(ikey);
  if (!value.has_value()) {
    RespondStatus(p, StatusCode::kNotFound);
    co_return;
  }
  Attr attr = Attr::Decode(*value);
  if (req.delta.ApplyTo(attr, sim_->Now())) {
    // WAL-backed like the other synchronous mutations. (The identity row is
    // authoritative for path resolution; the emulated systems keep the
    // directory content row's mode in sync only lazily, a simplification
    // shared with the pre-v2 chmod path.)
    co_await cpu_.Run(costs_->wal_append + costs_->kv_put);
    wal_.Append(1, ikey);
    kv_.Put(ikey, attr.Encode());
    if (attr.is_dir() && req.delta.set_mode &&
        config_.kind != SystemKind::kCephFS) {
      inval_.Add(attr.id, sim_->Now());
      auto bcast = std::make_shared<core::InvalBroadcast>();
      bcast->id = attr.id;
      net::Packet mc;
      mc.dst = net::kServerMulticast;
      mc.ds.origin = node_id();
      mc.body = bcast;
      rpc_.Send(std::move(mc));
    }
  }
  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->attr = attr;
  co_await cpu_.Run(costs_->reply_build);
  rpc_.Respond(p, resp);
}

sim::Task<void> BaselineServer::DoBulkInsert(net::Packet p,
                                             const MetaReq& req) {
  const PathRef& ref = req.ref;  // the shared parent; names in bulk_names
  const std::string top = req.top;
  const std::string parent_top = ref.pid == RootId() ? "/" : top;
  co_await cpu_.Run(UpdateOverhead());

  // Per-entry inode locks in name order, held through the batch.
  std::vector<size_t> order(req.bulk_names.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return req.bulk_names[a] < req.bulk_names[b];
  });
  std::vector<core::LockTable::Handle> ino_locks;
  ino_locks.reserve(order.size());
  for (size_t k = 0; k < order.size(); ++k) {
    const std::string& name = req.bulk_names[order[k]];
    if (k > 0 && name == req.bulk_names[order[k - 1]]) {
      continue;
    }
    ino_locks.push_back(
        co_await locks_.AcquireExclusive(InodeKey(ref.pid, name)));
  }

  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  auto stale = inval_.Check(ref.ancestors);
  if (!stale.empty()) {
    auto resp = std::make_shared<MetaResp>(StatusCode::kStaleCache);
    resp->stale_ids = std::move(stale);
    rpc_.Respond(p, resp);
    co_return;
  }

  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->batch_status.assign(req.bulk_names.size(), StatusCode::kOk);
  resp->batch_attrs.resize(req.bulk_names.size());
  std::set<std::string> admitted;
  std::vector<size_t> admitted_idx;
  for (size_t i = 0; i < req.bulk_names.size(); ++i) {
    const std::string& name = req.bulk_names[i];
    co_await cpu_.Run(costs_->kv_get);
    if (kv_.Get(InodeKey(ref.pid, name)).has_value() ||
        !admitted.insert(name).second) {
      resp->batch_status[i] = StatusCode::kAlreadyExists;
      continue;
    }
    admitted_idx.push_back(i);
  }
  if (admitted_idx.empty()) {
    co_await cpu_.Run(costs_->reply_build);
    rpc_.Respond(p, resp);
    co_return;
  }

  // One WAL append covers the batch (first entry pays the full append, the
  // rest the batched marginal cost); the inode rows commit individually.
  co_await cpu_.Run(costs_->wal_append +
                    static_cast<sim::SimTime>(admitted_idx.size() - 1) *
                        costs_->wal_append_batched);
  wal_.Append(1, "bulk");
  for (size_t i : admitted_idx) {
    const std::string& name = req.bulk_names[i];
    Attr attr;
    attr.id.w[0] = (static_cast<uint64_t>(index_) << 48) | id_counter_++;
    attr.id.w[1] = Mix64(attr.id.w[0]);
    attr.id.w[3] = 5;
    attr.type = FileType::kFile;
    attr.mode = req.mode;
    attr.ctime = attr.mtime = attr.atime = sim_->Now();
    co_await cpu_.Run(costs_->kv_put);
    kv_.Put(InodeKey(ref.pid, name), attr.Encode());
    resp->batch_attrs[i] = attr;
    // Synchronous parent update per entry — the defining property of the
    // baselines (no deferred path to batch the visibility through).
    Status dir_status =
        co_await DirUpdate(ref.pid, parent_top, name, FileType::kFile,
                           /*remove=*/false);
    if (!dir_status.ok()) {
      resp->batch_status[i] = dir_status.code();
    }
  }
  co_await cpu_.Run(costs_->reply_build);
  rpc_.Respond(p, resp);
}

sim::Task<void> BaselineServer::HandleLookup(net::Packet p) {
  const auto* req = static_cast<const LookupReq*>(p.body.get());
  co_await cpu_.Run(costs_->op_dispatch + ReadOverhead());
  const std::string ikey = InodeKey(req->pid, req->name);
  auto lock = co_await locks_.AcquireShared(ikey);
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + req->ancestors.size()));
  auto resp = std::make_shared<LookupResp>();
  auto stale = inval_.Check(req->ancestors);
  if (!stale.empty()) {
    resp->status = StatusCode::kStaleCache;
    resp->stale_ids = std::move(stale);
    rpc_.Respond(p, resp);
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  auto value = kv_.Get(ikey);
  if (!value.has_value()) {
    resp->status = StatusCode::kNotFound;
  } else {
    resp->status = StatusCode::kOk;
    resp->attr = Attr::Decode(*value);
    resp->read_at = sim_->Now();
  }
  rpc_.Respond(p, resp);
}

// Rename: 2PL/2PC coordinated by this server (the client routes renames to
// the configured coordinator).
sim::Task<void> BaselineServer::HandleRename(net::Packet p) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  const PathRef& src = req->ref;
  const PathRef& dst = req->ref2;
  const std::string src_top =
      src.ancestors.size() <= 1 ? src.name : std::string();
  (void)src_top;

  const std::string skey = InodeKey(src.pid, src.name);
  const std::string dkey = InodeKey(dst.pid, dst.name);
  if (skey == dkey) {
    RespondStatus(p, StatusCode::kInvalidArgument);
    co_return;
  }
  const BaselinePlacement& placement = cluster_->placement();
  struct Leg {
    uint32_t server;
    InodeId pid;
    std::string name;
    std::string top;         // the leg's own subtree key
    std::string parent_top;  // the leg's parent's subtree key
    bool is_src;
  };
  const std::string src_ptop = src.pid == RootId() ? "/" : req->top;
  const std::string dst_ptop = dst.pid == RootId() ? "/" : req->top2;
  Leg legs[2] = {
      {placement.FileServer(src.pid, src.name, req->top), src.pid, src.name,
       req->top, src_ptop, true},
      {placement.FileServer(dst.pid, dst.name, req->top2), dst.pid, dst.name,
       req->top2, dst_ptop, false},
  };
  if (InodeKey(legs[1].pid, legs[1].name) <
      InodeKey(legs[0].pid, legs[0].name)) {
    std::swap(legs[0], legs[1]);
  }

  const uint64_t txn =
      (static_cast<uint64_t>(index_) << 48) | txn_counter_++;
  Attr src_attr;
  StatusCode failure = StatusCode::kOk;
  int prepared = 0;
  for (int i = 0; i < 2; ++i) {
    auto prep = std::make_shared<RenamePrepare>();
    prep->txn_id = txn;
    prep->pid = legs[i].pid;
    prep->name = legs[i].name;
    prep->must_exist = legs[i].is_src;
    prep->must_absent = !legs[i].is_src;
    net::CallOptions prep_opts;
    prep_opts.timeout = sim::Milliseconds(100);
    prep_opts.max_attempts = 3;
    auto r = co_await rpc_.Call(cluster_->ServerNode(legs[i].server), prep,
                                prep_opts);
    if (!r.ok()) {
      failure = StatusCode::kUnavailable;
      break;
    }
    const auto* pr = net::MsgAs<RenamePrepareResp>(*r);
    if (pr == nullptr || pr->status != StatusCode::kOk) {
      failure = pr == nullptr ? StatusCode::kInternal : pr->status;
      break;
    }
    if (legs[i].is_src) {
      src_attr = pr->attr;
    }
    prepared = i + 1;
  }
  if (failure == StatusCode::kOk && src_attr.is_dir()) {
    for (const AncestorRef& a : dst.ancestors) {
      if (a.id == src_attr.id) {
        failure = StatusCode::kCrossDevice;
        break;
      }
    }
  }
  if (failure != StatusCode::kOk) {
    for (int i = 0; i < prepared; ++i) {
      auto abort = std::make_shared<RenameCommit>();
      abort->txn_id = txn;
      abort->abort = true;
      abort->parent_dir = legs[i].pid;
      abort->parent_entry_name = legs[i].name;
      net::CallOptions abort_opts;
      abort_opts.timeout = sim::Milliseconds(100);
      abort_opts.max_attempts = 3;
      auto r = co_await rpc_.Call(cluster_->ServerNode(legs[i].server), abort,
                                  abort_opts);
      (void)r;
    }
    RespondStatus(p, failure);
    co_return;
  }

  for (int i = 0; i < 2; ++i) {
    auto commit = std::make_shared<RenameCommit>();
    commit->txn_id = txn;
    commit->delete_inode = legs[i].is_src;
    commit->put_inode = !legs[i].is_src;
    commit->inode = src_attr;
    commit->parent_dir = legs[i].pid;
    commit->parent_entry_name = legs[i].name;
    commit->parent_entry_type = src_attr.type;
    commit->parent_op =
        legs[i].is_src ? OpType::kUnlink : OpType::kCreate;
    commit->log_parent_update = true;
    commit->top = legs[i].parent_top;
    net::CallOptions commit_opts;
    commit_opts.timeout = sim::Milliseconds(100);
    commit_opts.max_attempts = 3;
    auto r = co_await rpc_.Call(cluster_->ServerNode(legs[i].server), commit,
                                commit_opts);
    (void)r;
  }
  if (src_attr.is_dir() && config_.kind != SystemKind::kCephFS) {
    inval_.Add(src_attr.id, sim_->Now());
    auto bcast = std::make_shared<core::InvalBroadcast>();
    bcast->id = src_attr.id;
    net::Packet mc;
    mc.dst = net::kServerMulticast;
    mc.ds.origin = node_id();
    mc.body = bcast;
    rpc_.Send(std::move(mc));
  }
  RespondStatus(p, StatusCode::kOk);
}

sim::Task<void> BaselineServer::HandleRenamePrepare(net::Packet p) {
  const auto* msg = static_cast<const RenamePrepare*>(p.body.get());
  co_await cpu_.Run(costs_->op_dispatch + costs_->txn_prepare);
  const std::string ikey = InodeKey(msg->pid, msg->name);
  auto resp = std::make_shared<RenamePrepareResp>();
  auto ino = co_await locks_.AcquireExclusive(ikey);
  co_await cpu_.Run(costs_->kv_get);
  auto value = kv_.Get(ikey);
  if (msg->must_exist && !value.has_value()) {
    resp->status = StatusCode::kNotFound;
    rpc_.Respond(p, resp);
    co_return;
  }
  if (msg->must_absent && value.has_value()) {
    resp->status = StatusCode::kAlreadyExists;
    rpc_.Respond(p, resp);
    co_return;
  }
  if (value.has_value()) {
    resp->attr = Attr::Decode(*value);
  }
  resp->status = StatusCode::kOk;
  std::vector<core::LockTable::Handle> held;
  held.push_back(std::move(ino));
  // Keyed by (txn, leg): both legs of a rename may prepare on one server.
  txn_locks_[msg->txn_id ^ HashString(ikey)] = std::move(held);
  rpc_.Respond(p, resp);
}

sim::Task<void> BaselineServer::HandleRenameCommit(net::Packet p) {
  const auto* msg = static_cast<const RenameCommit*>(p.body.get());
  co_await cpu_.Run(costs_->op_dispatch + costs_->txn_commit);
  const std::string key = InodeKey(msg->parent_dir, msg->parent_entry_name);
  auto it = txn_locks_.find(msg->txn_id ^ HashString(key));
  if (it == txn_locks_.end()) {
    rpc_.Respond(p, net::MakeMsg<core::Ack>());
    co_return;
  }
  if (msg->abort) {
    txn_locks_.erase(it);
    rpc_.Respond(p, net::MakeMsg<core::Ack>());
    co_return;
  }
  co_await cpu_.Run(costs_->wal_append);
  wal_.Append(1, key);
  if (msg->delete_inode) {
    co_await cpu_.Run(costs_->kv_delete);
    kv_.Delete(key);
  } else {
    co_await cpu_.Run(costs_->kv_put);
    Attr attr = msg->inode;
    kv_.Put(key, attr.Encode());
  }
  if (msg->log_parent_update) {
    Status s = co_await DirUpdate(msg->parent_dir, msg->top,
                                  msg->parent_entry_name,
                                  msg->parent_entry_type,
                                  msg->parent_op == OpType::kUnlink);
    (void)s;
  }
  txn_locks_.erase(msg->txn_id ^ HashString(key));
  rpc_.Respond(p, net::MakeMsg<core::Ack>());
}

// ---------------------------------------------------------------------------
// BaselineClient
// ---------------------------------------------------------------------------

BaselineClient::BaselineClient(sim::Simulator* sim, net::Network* net,
                               BaselineCluster* cluster,
                               const sim::CostModel* costs)
    : sim_(sim), cluster_(cluster), costs_(costs), rpc_(sim, net) {
  // CephFS-sim ops cost hundreds of microseconds and queue far beyond that
  // under load; give its RPCs a generous deadline. The emulated systems stay
  // within microseconds.
  if (cluster->config().kind == SystemKind::kCephFS) {
    call_.timeout = sim::Milliseconds(400);
    call_.max_attempts = 4;
    txn_call_.timeout = sim::Seconds(4);
    txn_call_.max_attempts = 2;
  } else {
    call_.timeout = sim::Milliseconds(2);
    call_.max_attempts = 8;
    txn_call_.timeout = sim::Milliseconds(50);
    txn_call_.max_attempts = 3;
  }
  // OpenDir scans the whole entry list into the session snapshot — an
  // O(directory) op; see SwitchFsClient::Config::opendir_call.
  opendir_call_.timeout = sim::Seconds(2);
  opendir_call_.max_attempts = 3;
  CachedDir root;
  root.id = RootId();
  root.mode = 0755;
  root.ancestors = {AncestorRef{RootId(), 0}};
  cache_.Put("/", root);
}

sim::Task<StatusOr<CachedDir>> BaselineClient::ResolveDir(
    const std::string& path) {
  co_await sim::Delay(sim_, costs_->cache_lookup);
  if (const CachedDir* hit = cache_.Get(path)) {
    cache_.hits++;
    co_return *hit;
  }
  cache_.misses++;
  if (path == "/") {
    co_return InternalError("root must be cached");
  }
  auto parent = co_await ResolveDir(std::string(ParentPath(path)));
  if (!parent.ok()) {
    co_return parent.status();
  }
  const std::string name(Basename(path));
  const std::string top(SplitPath(path)[0]);
  auto req = std::make_shared<LookupReq>();
  req->pid = parent->id;
  req->name = name;
  req->ancestors = parent->ancestors;
  const uint32_t server =
      cluster_->placement().FileServer(parent->id, name, top);
  auto r = co_await rpc_.Call(cluster_->ServerNode(server), req, call_);
  if (!r.ok()) {
    co_return r.status();
  }
  const auto* resp = net::MsgAs<LookupResp>(*r);
  if (resp == nullptr) {
    co_return InternalError("bad lookup response");
  }
  if (resp->status == StatusCode::kStaleCache) {
    for (const InodeId& id : resp->stale_ids) {
      cache_.InvalidateId(id);
    }
    co_return StaleCacheError();
  }
  if (resp->status != StatusCode::kOk) {
    co_return Status(resp->status);
  }
  if (!resp->attr.is_dir()) {
    co_return NotADirectoryError(path);
  }
  CachedDir entry;
  entry.id = resp->attr.id;
  entry.mode = resp->attr.mode;
  entry.ancestors = parent->ancestors;
  entry.ancestors.push_back(AncestorRef{entry.id, resp->read_at});
  cache_.Put(path, entry);
  co_return entry;
}

sim::Task<StatusOr<PathRef>> BaselineClient::ResolveParent(
    const std::string& path) {
  if (!IsValidPath(path) || path == "/") {
    co_return InvalidArgumentError(path);
  }
  auto parent = co_await ResolveDir(std::string(ParentPath(path)));
  if (!parent.ok()) {
    co_return parent.status();
  }
  PathRef ref;
  ref.pid = parent->id;
  ref.name = std::string(Basename(path));
  ref.ancestors = parent->ancestors;
  co_return ref;
}

sim::Task<BaselineClient::OpResult> BaselineClient::Issue(
    OpType op, const std::string& path, bool want_entries,
    const core::AttrDelta* delta) {
  OpResult out;
  co_await sim::Delay(sim_, costs_->client_op_cost);
  const bool dir_read = op == OpType::kStatDir || op == OpType::kReaddir ||
                        op == OpType::kOpenDir;

  for (int attempt = 0; attempt < 12; ++attempt) {
    std::string top = path == "/" ? "/" : std::string(SplitPath(path)[0]);
    PathRef ref;
    uint32_t server = 0;
    if (dir_read) {
      // Directory reads target the directory's home server by its id.
      auto dir = co_await ResolveDir(path);
      if (!dir.ok()) {
        if (dir.status().code() == StatusCode::kStaleCache) {
          continue;
        }
        out.status = dir.status();
        co_return out;
      }
      ref.pid = dir->id;  // carries the dir id for DoRead
      ref.name = "";
      ref.ancestors = dir->ancestors;
      server = cluster_->placement().DirServer(dir->id, top);
    } else {
      auto resolved = co_await ResolveParent(path);
      if (!resolved.ok()) {
        if (resolved.status().code() == StatusCode::kStaleCache ||
            resolved.status().code() == StatusCode::kTimeout) {
          co_await sim::Delay(sim_, sim::Microseconds(100));
          continue;
        }
        out.status = resolved.status();
        co_return out;
      }
      ref = *std::move(resolved);
      server = cluster_->placement().FileServer(ref.pid, ref.name, top);
    }

    auto req = std::make_shared<MetaReq>();
    req->op = op;
    req->ref = ref;
    req->want_entries = want_entries;
    req->top = top;  // CephFS subtree routing key
    if (delta != nullptr) {
      req->delta = *delta;
    }
    auto r = co_await rpc_.Call(cluster_->ServerNode(server), req,
                                op == OpType::kOpenDir ? opendir_call_ : call_);
    if (!r.ok()) {
      co_await sim::Delay(sim_, sim::Microseconds(100));
      continue;
    }
    const auto* resp = net::MsgAs<MetaResp>(*r);
    if (resp == nullptr) {
      out.status = InternalError("bad response");
      co_return out;
    }
    if (resp->status == StatusCode::kStaleCache) {
      for (const InodeId& id : resp->stale_ids) {
        cache_.InvalidateId(id);
      }
      continue;
    }
    out.status = Status(resp->status);
    out.attr = resp->attr;
    out.entries = resp->entries;
    out.dir_session = resp->dir_session;
    out.next_cookie = resp->next_cookie;
    out.at_end = resp->at_end;
    co_return out;
  }
  out.status = TimeoutError("op retries exhausted");
  co_return out;
}

sim::Task<BaselineClient::OpResult> BaselineClient::IssueSessionOp(
    OpType op, uint32_t server, uint64_t session, uint64_t cookie) {
  OpResult out;
  co_await sim::Delay(sim_, costs_->client_op_cost);
  for (int attempt = 0; attempt < 12; ++attempt) {
    auto req = std::make_shared<MetaReq>();
    req->op = op;
    req->dir_session = session;
    req->cookie = cookie;
    auto r = co_await rpc_.Call(cluster_->ServerNode(server), req, call_);
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kTimeout) {
        out.status = StaleHandleError("dir session unreachable");
        co_return out;
      }
      co_await sim::Delay(sim_, sim::Microseconds(100));
      continue;
    }
    const auto* resp = net::MsgAs<MetaResp>(*r);
    if (resp == nullptr) {
      out.status = InternalError("bad response");
      co_return out;
    }
    out.status = Status(resp->status);
    out.attr = resp->attr;
    out.entries = resp->entries;
    out.next_cookie = resp->next_cookie;
    out.at_end = resp->at_end;
    co_return out;
  }
  out.status = TimeoutError("session op retries exhausted");
  co_return out;
}

sim::Task<Status> BaselineClient::Create(const std::string& path) {
  OpResult r = co_await Issue(OpType::kCreate, path, false);
  co_return r.status;
}
sim::Task<Status> BaselineClient::Unlink(const std::string& path) {
  OpResult r = co_await Issue(OpType::kUnlink, path, false);
  co_return r.status;
}
sim::Task<Status> BaselineClient::Mkdir(const std::string& path) {
  OpResult r = co_await Issue(OpType::kMkdir, path, false);
  co_return r.status;
}
sim::Task<Status> BaselineClient::Rmdir(const std::string& path) {
  OpResult r = co_await Issue(OpType::kRmdir, path, false);
  if (r.status.ok()) {
    cache_.ErasePath(path);
  }
  co_return r.status;
}
sim::Task<StatusOr<Attr>> BaselineClient::Stat(const std::string& path) {
  OpResult r = co_await Issue(OpType::kStat, path, false);
  if (!r.status.ok()) {
    co_return r.status;
  }
  co_return r.attr;
}
sim::Task<StatusOr<Attr>> BaselineClient::StatDir(const std::string& path) {
  OpResult r = co_await Issue(OpType::kStatDir, path, false);
  if (!r.status.ok()) {
    co_return r.status;
  }
  co_return r.attr;
}
sim::Task<StatusOr<Attr>> BaselineClient::Open(const std::string& path) {
  OpResult r = co_await Issue(OpType::kOpen, path, false);
  if (!r.status.ok()) {
    co_return r.status;
  }
  co_return r.attr;
}
sim::Task<Status> BaselineClient::Close(const std::string& path) {
  OpResult r = co_await Issue(OpType::kClose, path, false);
  co_return r.status;
}
sim::Task<Status> BaselineClient::SetAttr(const std::string& path,
                                          const core::AttrDelta& delta) {
  OpResult r = co_await Issue(OpType::kSetAttr, path, false, &delta);
  co_return r.status;
}

// --- MetadataService v2: directory streams & batched lookups ---

sim::Task<StatusOr<core::DirHandle>> BaselineClient::OpenDir(
    const std::string& path) {
  OpResult r = co_await Issue(OpType::kOpenDir, path, false);
  if (!r.status.ok()) {
    co_return r.status;
  }
  // Pin the routing: pages must go back to the home server that holds the
  // snapshot session.
  const std::string top = path == "/" ? "/" : std::string(SplitPath(path)[0]);
  core::OpenDirState state;
  state.path = path;
  state.dir = r.attr.id;
  state.server = cluster_->placement().DirServer(r.attr.id, top);
  state.session = r.dir_session;
  core::DirHandle handle;
  handle.id = cache_.PutHandle(std::move(state));
  co_return handle;
}

sim::Task<StatusOr<core::DirPage>> BaselineClient::ReaddirPage(
    const core::DirHandle& handle, uint64_t cookie) {
  core::OpenDirState* state = cache_.GetHandle(handle.id);
  if (state == nullptr) {
    co_return InvalidArgumentError("unknown dir handle");
  }
  OpResult r = co_await IssueSessionOp(OpType::kReaddirPage, state->server,
                                       state->session, cookie);
  if (!r.status.ok()) {
    co_return r.status;
  }
  core::DirPage page;
  page.entries = std::move(r.entries);
  page.next_cookie = r.next_cookie;
  page.at_end = r.at_end;
  co_return page;
}

sim::Task<Status> BaselineClient::CloseDir(const core::DirHandle& handle) {
  core::OpenDirState* state = cache_.GetHandle(handle.id);
  if (state == nullptr) {
    co_return OkStatus();  // already closed (idempotent)
  }
  const uint32_t server = state->server;
  const uint64_t session = state->session;
  cache_.EraseHandle(handle.id);
  OpResult r = co_await IssueSessionOp(OpType::kCloseDir, server, session,
                                       /*cookie=*/0);
  (void)r;  // best-effort: the TTL watchdog reclaims lost closes
  co_return OkStatus();
}

sim::Task<std::vector<StatusOr<Attr>>> BaselineClient::BatchStat(
    const std::vector<std::string>& paths) {
  co_await sim::Delay(sim_, costs_->client_op_cost);
  // Targets group by the system's file placement: E-InfiniFS/IndexFS
  // collapse a directory's files onto one server, E-CFS spreads them per
  // (pid, name), CephFS routes whole subtrees — the grouping (and so the
  // RPC count) follows each system's own placement function. Scaffolding
  // shared with SwitchFsClient via core::RunBatchStat.
  co_return co_await core::RunBatchStat(
      sim_, rpc_, cache_, paths, core::OpType::kBatchStat,
      /*scattered_hint=*/false, /*max_attempts=*/12,
      sim::Microseconds(100), call_,
      [this](const std::string& path)
          -> sim::Task<StatusOr<core::BatchTarget>> {
        auto ref = co_await ResolveParent(path);
        if (!ref.ok()) {
          co_return ref.status();
        }
        const std::string top(SplitPath(path)[0]);
        core::BatchTarget target;
        target.server =
            cluster_->placement().FileServer(ref->pid, ref->name, top);
        target.ref = *std::move(ref);
        co_return target;
      },
      [this](uint32_t server) { return cluster_->ServerNode(server); });
}

sim::Task<std::vector<Status>> BaselineClient::BulkInsert(
    const core::DirHandle& handle, const std::vector<std::string>& names) {
  co_await sim::Delay(sim_, costs_->client_op_cost);
  std::vector<Status> out(names.size(), OkStatus());
  if (names.empty()) {
    co_return out;
  }
  core::OpenDirState* state = cache_.GetHandle(handle.id);
  if (state == nullptr) {
    for (Status& s : out) {
      s = InvalidArgumentError("unknown dir handle");
    }
    co_return out;
  }
  const std::string dir_path = state->path;
  const InodeId dir = state->dir;
  const std::string top =
      dir_path == "/" ? "/" : std::string(SplitPath(dir_path)[0]);

  // Group by each system's file placement (like BatchStat), then chunk each
  // group to the transport page budget — one multi-entry RPC per chunk.
  std::map<uint32_t, std::vector<size_t>> by_server;
  for (size_t i = 0; i < names.size(); ++i) {
    by_server[cluster_->placement().FileServer(dir, names[i], top)]
        .push_back(i);
  }
  const BaselineConfig& cfg = cluster_->config();
  for (auto& [server, idxs] : by_server) {
    size_t start = 0;
    while (start < idxs.size()) {
      size_t used = 0;
      size_t end = start;
      while (end < idxs.size() &&
             core::PageHasRoom(used, static_cast<int>(end - start),
                               core::DirEntryWireSize(names[idxs[end]]),
                               cfg.mtu_bytes, cfg.mtu_entries)) {
        used += core::DirEntryWireSize(names[idxs[end]]);
        ++end;
      }
      const std::vector<size_t> chunk(
          idxs.begin() + static_cast<ptrdiff_t>(start),
          idxs.begin() + static_cast<ptrdiff_t>(end));
      start = end;
      bool settled = false;
      for (int attempt = 0; attempt < 12 && !settled; ++attempt) {
        auto resolved = co_await ResolveDir(dir_path);
        if (!resolved.ok()) {
          if (resolved.status().code() == StatusCode::kStaleCache ||
              resolved.status().code() == StatusCode::kTimeout) {
            co_await sim::Delay(sim_, sim::Microseconds(100));
            continue;
          }
          for (size_t i : chunk) {
            out[i] = resolved.status();
          }
          break;
        }
        auto req = std::make_shared<MetaReq>();
        req->op = OpType::kBulkInsert;
        req->ref.pid = dir;
        req->ref.ancestors = resolved->ancestors;
        req->top = top;
        req->bulk_names.reserve(chunk.size());
        for (size_t i : chunk) {
          req->bulk_names.push_back(names[i]);
        }
        auto r = co_await rpc_.Call(cluster_->ServerNode(server), req, call_);
        if (!r.ok()) {
          co_await sim::Delay(sim_, sim::Microseconds(100));
          continue;
        }
        const auto* resp = net::MsgAs<MetaResp>(*r);
        if (resp == nullptr) {
          for (size_t i : chunk) {
            out[i] = InternalError("bad bulk response");
          }
          break;
        }
        if (resp->status == StatusCode::kStaleCache) {
          for (const InodeId& id : resp->stale_ids) {
            cache_.InvalidateId(id);
          }
          continue;
        }
        if (resp->status != StatusCode::kOk) {
          for (size_t i : chunk) {
            out[i] = Status(resp->status);
          }
          break;
        }
        for (size_t k = 0; k < chunk.size(); ++k) {
          out[chunk[k]] = k < resp->batch_status.size()
                              ? Status(resp->batch_status[k])
                              : InternalError("truncated bulk verdicts");
        }
        settled = true;
      }
      if (!settled) {
        for (size_t i : chunk) {
          if (out[i].ok()) {
            out[i] = TimeoutError("bulk insert retries exhausted");
          }
        }
      }
    }
  }
  co_return out;
}

sim::Task<Status> BaselineClient::Rename(const std::string& from,
                                         const std::string& to) {
  co_await sim::Delay(sim_, costs_->client_op_cost);
  for (int attempt = 0; attempt < 12; ++attempt) {
    auto src = co_await ResolveParent(from);
    if (!src.ok()) {
      if (src.status().code() == StatusCode::kStaleCache) {
        continue;
      }
      co_return src.status();
    }
    auto dst = co_await ResolveParent(to);
    if (!dst.ok()) {
      if (dst.status().code() == StatusCode::kStaleCache) {
        continue;
      }
      co_return dst.status();
    }
    auto req = std::make_shared<MetaReq>();
    req->op = OpType::kRename;
    req->ref = *src;
    req->ref2 = *dst;
    req->top = std::string(SplitPath(from)[0]);
    req->top2 = std::string(SplitPath(to)[0]);
    auto r = co_await rpc_.Call(
        cluster_->ServerNode(cluster_->config().rename_coordinator), req,
        txn_call_);
    if (!r.ok()) {
      co_await sim::Delay(sim_, sim::Microseconds(100));
      continue;
    }
    const auto* resp = net::MsgAs<MetaResp>(*r);
    if (resp == nullptr) {
      co_return InternalError("bad rename response");
    }
    if (resp->status == StatusCode::kStaleCache) {
      for (const InodeId& id : resp->stale_ids) {
        cache_.InvalidateId(id);
      }
      continue;
    }
    if (resp->status == StatusCode::kOk) {
      cache_.ErasePath(from);
    }
    co_return Status(resp->status);
  }
  co_return TimeoutError("rename retries exhausted");
}

// ---------------------------------------------------------------------------
// BaselineCluster
// ---------------------------------------------------------------------------

BaselineCluster::BaselineCluster(BaselineConfig config)
    : config_(std::move(config)) {
  net_ = std::make_unique<net::Network>(&sim_, &config_.costs, config_.seed);
  switch_ =
      std::make_unique<net::PlainSwitch>(config_.costs.plain_switch_delay);
  net_->SetSwitch(switch_.get());
  net_->SetFaults(config_.faults);
  for (uint32_t i = 0; i < config_.num_servers; ++i) {
    ring_.AddServer(i);
  }
  placement_ = std::make_unique<BaselinePlacement>(config_.kind, &ring_);
  for (uint32_t i = 0; i < config_.num_servers; ++i) {
    servers_.push_back(std::make_unique<BaselineServer>(
        &sim_, net_.get(), this, &config_.costs, config_, i));
  }
  std::vector<net::NodeId> group;
  for (const auto& s : servers_) {
    group.push_back(s->node_id());
  }
  switch_->SetServerGroup(group);
  for (const auto& s : servers_) {
    s->SeedRoot();
  }
  PreloadedDir root;
  root.id = RootId();
  root.ancestors = {AncestorRef{RootId(), 0}};
  root.top = "/";
  preloaded_["/"] = root;
}

BaselineCluster::~BaselineCluster() = default;

std::unique_ptr<core::MetadataService> BaselineCluster::NewClient(bool warm) {
  auto client = std::make_unique<BaselineClient>(&sim_, net_.get(), this,
                                                 &config_.costs);
  if (warm) {
    for (const auto& [path, dir] : preloaded_) {
      CachedDir entry;
      entry.id = dir.id;
      entry.mode = 0755;
      entry.ancestors = dir.ancestors;
      client->WarmCache(path, entry);
    }
  }
  return client;
}

void BaselineCluster::BumpPreloadedDirSize(const std::string& dir_path) {
  const PreloadedDir& dir = preloaded_.at(dir_path);
  BaselineServer& home = *servers_[placement_->DirServer(dir.id, dir.top)];
  auto value = home.kv().Get(ContentKey(dir.id));
  if (value.has_value()) {
    Attr attr = Attr::Decode(*value);
    attr.size += 1;
    home.kv().Put(ContentKey(dir.id), attr.Encode());
  }
}

void BaselineCluster::PreloadDir(const std::string& path) {
  if (preloaded_.count(path) > 0) {
    return;
  }
  const std::string parent_path(ParentPath(path));
  auto pit = preloaded_.find(parent_path);
  assert(pit != preloaded_.end() && "preload parents before children");
  const PreloadedDir& parent = pit->second;
  const std::string name(Basename(path));
  const std::string top(SplitPath(path)[0]);

  PreloadedDir dir;
  dir.id.w[0] = HashString(path);
  dir.id.w[1] = HashString(path, 11);
  dir.id.w[3] = 6;
  dir.ancestors = parent.ancestors;
  dir.ancestors.push_back(AncestorRef{dir.id, 0});
  dir.top = top;

  Attr attr;
  attr.id = dir.id;
  attr.type = FileType::kDirectory;
  attr.mode = 0755;
  // Identity inode at the file server of (parent, name).
  servers_[placement_->FileServer(parent.id, name, top)]->PreloadInode(
      InodeKey(parent.id, name), attr);
  // Content record at the home server.
  servers_[placement_->DirServer(dir.id, top)]->kv().Put(ContentKey(dir.id),
                                                         attr.Encode());
  // Parent entry + size bump.
  servers_[placement_->DirServer(parent.id, parent.top)]->PreloadEntry(
      parent.id, name, FileType::kDirectory);
  preloaded_[path] = dir;
  BumpPreloadedDirSize(parent_path);
}

void BaselineCluster::PreloadFileAt(const std::string& path) {
  const std::string parent_path(ParentPath(path));
  auto pit = preloaded_.find(parent_path);
  assert(pit != preloaded_.end() && "preload the parent directory first");
  const PreloadedDir& parent = pit->second;
  const std::string name(Basename(path));
  const std::string top(SplitPath(path)[0]);

  Attr attr;
  attr.id.w[0] = HashString(path);
  attr.id.w[3] = 7;
  attr.type = FileType::kFile;
  attr.mode = 0644;
  servers_[placement_->FileServer(parent.id, name, top)]->PreloadInode(
      InodeKey(parent.id, name), attr);
  servers_[placement_->DirServer(parent.id, parent.top)]->PreloadEntry(
      parent.id, name, FileType::kFile);
  BumpPreloadedDirSize(parent_path);
}

}  // namespace switchfs::baselines
