// Emulated baseline distributed filesystems on the shared substrate
// (paper §7.1: "Emulated-InfiniFS, Emulated-CFS, and SwitchFS share the same
// storage and networking framework, ensuring a fair comparison"). Four
// comparators, all synchronous-update designs:
//
//  * Emulated-InfiniFS — parent/children grouping via per-directory hashing:
//    all children of directory D (file inodes + entry list + D's content
//    attrs) live on hash(D.id). create/delete/stat are single-server;
//    mkdir/rmdir are cross-server 2PC (Tab 1); a hot directory pins one
//    server (Fig 2a/2c).
//  * Emulated-CFS — parent/children separation via per-file hashing: file
//    inodes spread by hash(pid, name); the parent's entry list and attrs
//    live with the parent's inode, so double-inode ops are cross-server
//    2PC serialized at the directory's server (Fig 2b-2d).
//  * CephFS-sim — static subtree partitioning by top-level path component
//    plus the heavy MDS software stack and journaling (Fig 13's
//    587-1140 us means).
//  * IndexFS-sim — per-directory partitioning like E-InfiniFS with
//    lease-based client caching (per-op lease validation overhead).
#ifndef SRC_BASELINES_BASELINE_H_
#define SRC_BASELINES_BASELINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/client_cache.h"
#include "src/core/dir_session.h"
#include "src/core/fs_world.h"
#include "src/core/invalidation.h"
#include "src/core/lock_table.h"
#include "src/core/messages.h"
#include "src/core/metadata_service.h"
#include "src/core/placement.h"
#include "src/core/schema.h"
#include "src/core/types.h"
#include "src/kv/kvstore.h"
#include "src/kv/wal.h"
#include "src/net/network.h"
#include "src/net/rpc.h"
#include "src/sim/costs.h"
#include "src/sim/cpu.h"

namespace switchfs::baselines {

enum class SystemKind {
  kEInfiniFS = 0,
  kECfs = 1,
  kCephFS = 2,
  kIndexFS = 3,
};

const char* SystemName(SystemKind kind);

struct BaselineConfig {
  SystemKind kind = SystemKind::kEInfiniFS;
  uint32_t num_servers = 8;
  int cores_per_server = 4;
  sim::CostModel costs;
  net::Network::FaultConfig faults;
  uint64_t seed = 42;
  uint32_t rename_coordinator = 0;
  // MetadataService v2 directory streams: pages fill to the transport byte
  // budget (DirEntryWireSize per entry) with mtu_entries as the hard
  // entry-count cap, plus the session-inactivity TTL. Named after
  // SwitchFS's MTU-derived bounds so the shared suites can assert one
  // page-size contract across all five systems.
  int mtu_bytes = 1400;
  int mtu_entries = 128;
  sim::SimTime dir_session_ttl = sim::Milliseconds(20);
};

// --- placement ---
//
// E-InfiniFS / IndexFS / CephFS place a file by its *parent directory*
// (grouping); E-CFS places by the (pid, name) hash (separation). Directory
// "content" (attrs + entry list) always lives on the directory's home
// server: hash(dir id) for grouping systems, hash of the dir's own
// (pid, name) for E-CFS, and the subtree server for CephFS.
class BaselinePlacement {
 public:
  BaselinePlacement(SystemKind kind, const core::HashRing* ring)
      : kind_(kind), ring_(ring) {}

  // Server holding the inode of (pid, name) — also where create/delete/stat
  // for that name execute. `top` is the path's top-level component (CephFS).
  uint32_t FileServer(const core::InodeId& pid, const std::string& name,
                      const std::string& top) const;
  // Server holding directory content (attrs + entry list).
  uint32_t DirServer(const core::InodeId& dir_id, const std::string& top) const;

 private:
  SystemKind kind_;
  const core::HashRing* ring_;
};

// --- baseline-specific messages (type tags 200+) ---

// Synchronous directory update: add/remove an entry + attr read-modify-write
// under the directory lock (the serialized section of Challenge #2).
struct DirUpdateReq : net::Message {
  static constexpr uint32_t kType = 200;
  DirUpdateReq() : Message(kType) {}
  core::InodeId dir;
  std::string name;
  core::FileType entry_type = core::FileType::kFile;
  bool remove = false;
  int64_t timestamp = 0;
};

struct DirUpdateResp : net::Message {
  static constexpr uint32_t kType = 201;
  DirUpdateResp() : Message(kType) {}
  StatusCode status = StatusCode::kOk;
};

// Directory-content ops at the dir's home server: initialize content on
// mkdir, check-empty + drop content on rmdir.
struct DirContentReq : net::Message {
  static constexpr uint32_t kType = 202;
  DirContentReq() : Message(kType) {}
  enum class Kind : uint8_t { kInit = 0, kCheckEmptyAndDrop = 1 };
  Kind kind = Kind::kInit;
  core::InodeId dir;
};

struct DirContentResp : net::Message {
  static constexpr uint32_t kType = 203;
  DirContentResp() : Message(kType) {}
  StatusCode status = StatusCode::kOk;
};

class BaselineCluster;

// One baseline metadata server. Handles every op kind for every system; the
// SystemKind picks the placement and cost behaviour.
class BaselineServer {
 public:
  BaselineServer(sim::Simulator* sim, net::Network* net,
                 BaselineCluster* cluster, const sim::CostModel* costs,
                 const BaselineConfig& config, uint32_t index);

  net::NodeId node_id() const { return rpc_.id(); }
  uint32_t index() const { return index_; }
  sim::CpuPool& cpu() { return cpu_; }
  uint64_t ops() const { return ops_; }

  void SeedRoot();
  void PreloadInode(const std::string& key, const core::Attr& attr);
  void PreloadEntry(const core::InodeId& dir, const std::string& name,
                    core::FileType t);
  kv::KvStore& kv() { return kv_; }

 private:
  friend class BaselineClient;

  void OnRequest(net::Packet p);
  sim::Task<void> HandleMeta(net::Packet p);
  sim::Task<void> HandleLookup(net::Packet p);
  sim::Task<void> HandleDirUpdate(net::Packet p);
  sim::Task<void> HandleDirContent(net::Packet p);
  sim::Task<void> HandleRename(net::Packet p);  // coordinator
  sim::Task<void> HandleRenamePrepare(net::Packet p);
  sim::Task<void> HandleRenameCommit(net::Packet p);

  sim::Task<void> DoUpsert(net::Packet p, const core::MetaReq& req);
  sim::Task<void> DoRmdir(net::Packet p, const core::MetaReq& req);
  sim::Task<void> DoRead(net::Packet p, const core::MetaReq& req);
  // MetadataService v2: directory streams, batched lookups, attr deltas.
  sim::Task<void> DoOpenDir(net::Packet p, const core::MetaReq& req);
  sim::Task<void> DoReaddirPage(net::Packet p, const core::MetaReq& req);
  sim::Task<void> DoCloseDir(net::Packet p, const core::MetaReq& req);
  sim::Task<void> DoBatchStat(net::Packet p, const core::MetaReq& req);
  sim::Task<void> DoSetAttr(net::Packet p, const core::MetaReq& req);
  sim::Task<void> DoBulkInsert(net::Packet p, const core::MetaReq& req);
  sim::Task<void> DirSessionWatchdog(uint64_t session_id);

  // Applies a directory entry/attr update locally under the dir lock,
  // charging the serialized critical section.
  sim::Task<Status> ApplyDirUpdateLocal(const core::InodeId& dir,
                                        const std::string& name,
                                        core::FileType type, bool remove,
                                        int64_t timestamp);
  // Routes a directory update to the dir's home server (local or RPC).
  sim::Task<Status> DirUpdate(const core::InodeId& dir, const std::string& top,
                              const std::string& name, core::FileType type,
                              bool remove);

  // Per-system extra CPU charges.
  sim::SimTime ReadOverhead() const;
  sim::SimTime UpdateOverhead() const;

  void RespondStatus(const net::Packet& p, StatusCode code);

  sim::Simulator* sim_;
  BaselineCluster* cluster_;
  const sim::CostModel* costs_;
  BaselineConfig config_;
  uint32_t index_;
  sim::CpuPool cpu_;
  net::RpcEndpoint rpc_;
  kv::KvStore kv_;
  kv::Wal wal_;
  core::LockTable locks_;
  core::InvalidationList inval_;
  // Directory-stream sessions (MetadataService v2). Baseline servers have
  // no crash/recovery machinery, so epoch 0 suffices.
  core::DirSessionTable dir_sessions_;
  // CephFS-sim: the MDS journal serializes update commits per server.
  sim::Mutex journal_mu_;
  std::unordered_map<uint64_t, std::vector<core::LockTable::Handle>> txn_locks_;
  uint64_t txn_counter_ = 1;
  uint64_t id_counter_ = 1;
  uint64_t ops_ = 0;
};

class BaselineClient : public core::MetadataService {
 public:
  BaselineClient(sim::Simulator* sim, net::Network* net,
                 BaselineCluster* cluster, const sim::CostModel* costs);

  sim::Task<Status> Create(const std::string& path) override;
  sim::Task<Status> Unlink(const std::string& path) override;
  sim::Task<Status> Mkdir(const std::string& path) override;
  sim::Task<Status> Rmdir(const std::string& path) override;
  sim::Task<StatusOr<core::Attr>> Stat(const std::string& path) override;
  sim::Task<StatusOr<core::Attr>> StatDir(const std::string& path) override;
  sim::Task<StatusOr<core::Attr>> Open(const std::string& path) override;
  sim::Task<Status> Close(const std::string& path) override;
  sim::Task<Status> SetAttr(const std::string& path,
                            const core::AttrDelta& delta) override;
  sim::Task<StatusOr<core::DirHandle>> OpenDir(
      const std::string& path) override;
  sim::Task<StatusOr<core::DirPage>> ReaddirPage(const core::DirHandle& handle,
                                                 uint64_t cookie) override;
  sim::Task<Status> CloseDir(const core::DirHandle& handle) override;
  sim::Task<std::vector<StatusOr<core::Attr>>> BatchStat(
      const std::vector<std::string>& paths) override;
  sim::Task<std::vector<Status>> BulkInsert(
      const core::DirHandle& handle,
      const std::vector<std::string>& names) override;
  sim::Task<Status> Rename(const std::string& from,
                           const std::string& to) override;

  void WarmCache(const std::string& path, const core::CachedDir& entry) {
    cache_.Put(path, entry);
  }

 private:
  struct OpResult {
    Status status;
    core::Attr attr;
    std::vector<core::DirEntry> entries;
    uint64_t dir_session = 0;
    uint64_t next_cookie = 0;
    bool at_end = false;
  };

  sim::Task<StatusOr<core::CachedDir>> ResolveDir(const std::string& path);
  sim::Task<StatusOr<core::PathRef>> ResolveParent(const std::string& path);
  sim::Task<OpResult> Issue(core::OpType op, const std::string& path,
                            bool want_entries,
                            const core::AttrDelta* delta = nullptr);
  // Session-addressed ops (ReaddirPage / CloseDir): routed straight to the
  // home server pinned in the handle state, no path resolution.
  sim::Task<OpResult> IssueSessionOp(core::OpType op, uint32_t server,
                                     uint64_t session, uint64_t cookie);

  sim::Simulator* sim_;
  BaselineCluster* cluster_;
  const sim::CostModel* costs_;
  net::RpcEndpoint rpc_;
  net::CallOptions call_;
  net::CallOptions txn_call_;      // renames (multi-RPC transactions)
  net::CallOptions opendir_call_;  // O(directory) snapshot scan at the server
  core::ClientCache cache_;
};

class BaselineCluster : public core::FsWorld {
 public:
  explicit BaselineCluster(BaselineConfig config);
  ~BaselineCluster() override;

  // FsWorld:
  sim::Simulator& world_sim() override { return sim_; }
  std::unique_ptr<core::MetadataService> NewClient(bool warm) override;
  void PreloadDir(const std::string& path) override;
  void PreloadFileAt(const std::string& path) override;
  std::string name() const override { return SystemName(config_.kind); }

  sim::Simulator& sim() { return sim_; }
  net::Network& network() { return *net_; }
  const BaselineConfig& config() const { return config_; }
  const core::HashRing& ring() const { return ring_; }
  const BaselinePlacement& placement() const { return *placement_; }
  net::NodeId ServerNode(uint32_t i) const { return servers_[i]->node_id(); }
  uint32_t ServerCount() const {
    return static_cast<uint32_t>(servers_.size());
  }
  BaselineServer& server(uint32_t i) { return *servers_[i]; }

  struct PreloadedDir {
    core::InodeId id;
    std::vector<core::AncestorRef> ancestors;
    std::string top;  // top-level component (CephFS routing)
  };
  const PreloadedDir* preloaded(const std::string& path) const {
    auto it = preloaded_.find(path);
    return it == preloaded_.end() ? nullptr : &it->second;
  }

 private:
  friend class BaselineClient;
  friend class BaselineServer;

  void BumpPreloadedDirSize(const std::string& dir_path);

  BaselineConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<net::PlainSwitch> switch_;
  core::HashRing ring_;
  std::unique_ptr<BaselinePlacement> placement_;
  std::vector<std::unique_ptr<BaselineServer>> servers_;
  std::unordered_map<std::string, PreloadedDir> preloaded_;
};

}  // namespace switchfs::baselines

#endif  // SRC_BASELINES_BASELINE_H_
