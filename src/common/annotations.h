// Lightweight discipline annotations for the coroutine core. These macros
// mark the types and functions that carry suspension-safety or lock-order
// obligations; `scripts/lint/sfs_lint.py` (the static side) and
// `sim::DisciplineChecker` (the dynamic side, src/sim/discipline.h) key off
// them, so the rules follow the annotations rather than hard-coded name
// lists. Under clang the macros also expand to [[clang::annotate]] so an
// AST-based tool sees the same marks; under every other compiler they expand
// to nothing and cost nothing.
//
//  SFS_SUSPENSION_SHARED      on a class/struct: the type's containers are
//                             shared across coroutine suspension points —
//                             references, pointers, and iterators derived
//                             from it must not live across a co_await
//                             (sfs-lint rule borrow-across-suspend).
//  SFS_LOCKABLE               on a class: its Acquire*/Guard machinery is a
//                             suspension-aware lock the lint tracks.
//  SFS_LOCK_INNERMOST         on a lock member: this lock is innermost in
//                             the lock order — no other lock may be acquired
//                             while it is held (rule append-innermost).
//  SFS_REQUIRES_EXCLUSIVE(l)  on a function: call sites must hold an
//                             exclusive guard of lock member `l` (or carry a
//                             suppression); the function body itself may
//                             assume the lock (rule evict-requires-lock).
//  SFS_SHARD_PRIVATE          on a data member: the member partitions
//                             per-shard state — only router functions may
//                             index it directly (rule cross-shard-direct).
//  SFS_SHARD_ROUTER           on a function: this function IS a shard
//                             router/accessor and may touch SFS_SHARD_PRIVATE
//                             members directly; everything else must go
//                             through a router or an enqueued shard task.
//
// Suppressions (reason mandatory, checked by the linter):
//   // sfs-lint: allow(<rule>, <reason>)
// on the flagged line or on a comment line directly above it.
#ifndef SRC_COMMON_ANNOTATIONS_H_
#define SRC_COMMON_ANNOTATIONS_H_

#if defined(__clang__)
#define SFS_SUSPENSION_SHARED [[clang::annotate("sfs::suspension_shared")]]
#define SFS_LOCKABLE [[clang::annotate("sfs::lockable")]]
#define SFS_LOCK_INNERMOST [[clang::annotate("sfs::lock_innermost")]]
#define SFS_REQUIRES_EXCLUSIVE(lock) \
  [[clang::annotate("sfs::requires_exclusive:" #lock)]]
#define SFS_SHARD_PRIVATE [[clang::annotate("sfs::shard_private")]]
#define SFS_SHARD_ROUTER [[clang::annotate("sfs::shard_router")]]
#else
#define SFS_SUSPENSION_SHARED
#define SFS_LOCKABLE
#define SFS_LOCK_INNERMOST
#define SFS_REQUIRES_EXCLUSIVE(lock)
#define SFS_SHARD_PRIVATE
#define SFS_SHARD_ROUTER
#endif

#endif  // SRC_COMMON_ANNOTATIONS_H_
