// Fixed-endian binary encoder/decoder used for KV values, WAL records, and
// schema keys. Little-endian, length-prefixed strings; no varints (simulated
// storage does not care about byte count beyond the coarse size model, and
// fixed widths keep decode failure modes simple).
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace switchfs {

class Encoder {
 public:
  void PutU8(uint8_t v) { Append(&v, 1); }
  void PutU16(uint16_t v) { AppendLe(v); }
  void PutU32(uint32_t v) { AppendLe(v); }
  void PutU64(uint64_t v) { AppendLe(v); }
  void PutI64(int64_t v) { AppendLe(static_cast<uint64_t>(v)); }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    Append(s.data(), s.size());
  }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  const std::string& data() const { return out_; }
  std::string Take() && { return std::move(out_); }

 private:
  template <typename T>
  void AppendLe(T v) {
    // Host is little-endian on every supported platform; memcpy keeps it UB-free.
    Append(&v, sizeof(T));
  }
  void Append(const void* p, size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }

  std::string out_;
};

class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

  uint8_t GetU8() { return GetLe<uint8_t>(); }
  uint16_t GetU16() { return GetLe<uint16_t>(); }
  uint32_t GetU32() { return GetLe<uint32_t>(); }
  uint64_t GetU64() { return GetLe<uint64_t>(); }
  int64_t GetI64() { return static_cast<int64_t>(GetLe<uint64_t>()); }
  bool GetBool() { return GetU8() != 0; }

  std::string GetString() {
    const uint32_t len = GetU32();
    if (!ok_ || remaining() < len) {
      ok_ = false;
      return {};
    }
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

 private:
  template <typename T>
  T GetLe() {
    if (remaining() < sizeof(T)) {
      ok_ = false;
      return T{};
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace switchfs

#endif  // SRC_COMMON_BYTES_H_
