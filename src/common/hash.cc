#include "src/common/hash.h"

namespace switchfs {

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL ^ Mix64(seed);
  size_t i = 0;
  // Consume 8 bytes at a time for speed; hash quality comes from the mixer.
  while (i + 8 <= len) {
    uint64_t chunk;
    std::memcpy(&chunk, p + i, 8);
    h = (h ^ Mix64(chunk)) * 0x100000001b3ULL;
    i += 8;
  }
  while (i < len) {
    h = (h ^ p[i]) * 0x100000001b3ULL;
    ++i;
  }
  return Mix64(h ^ len);
}

}  // namespace switchfs
