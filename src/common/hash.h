// Hashing utilities. SwitchFS derives both partition placement and switch
// fingerprints from hashes of (parent-directory id, name) pairs (paper §4.3),
// so the hash functions here must be stable across runs for reproducibility
// and have good avalanche behaviour. We use a SplitMix64-based mixer and an
// FNV-1a style streaming hash over bytes.
#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace switchfs {

// Finalizer from SplitMix64; a strong 64-bit mixer.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Streaming 64-bit hash over bytes (FNV-1a core with a Mix64 finalizer).
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

// Combines two 64-bit hashes (order-dependent).
constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace switchfs

#endif  // SRC_COMMON_HASH_H_
