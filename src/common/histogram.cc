#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace switchfs {

Histogram::Histogram() : buckets_(kBucketGroups * kSubBuckets, 0) {}

size_t Histogram::BucketIndex(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  const auto v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) {
    return static_cast<size_t>(v);
  }
  // Group g holds values in [2^(g+kSubBucketBits-1), 2^(g+kSubBucketBits)),
  // divided into kSubBuckets equal sub-buckets.
  const int msb = 63 - std::countl_zero(v);
  const int group = msb - kSubBucketBits + 1;
  const uint64_t sub = (v >> (msb - kSubBucketBits)) - kSubBuckets;
  // group >= 1 here; layout: group 0 = identity buckets [0, kSubBuckets).
  return static_cast<size_t>(group) * kSubBuckets + static_cast<size_t>(sub) +
         kSubBuckets;
}

int64_t Histogram::BucketMidpoint(size_t index) {
  if (index < kSubBuckets) {
    return static_cast<int64_t>(index);
  }
  const size_t adjusted = index - kSubBuckets;
  const size_t group = adjusted / kSubBuckets + 1;
  const size_t sub = adjusted % kSubBuckets;
  const uint64_t base = (static_cast<uint64_t>(kSubBuckets + sub))
                        << (group - 1);
  const uint64_t width = 1ULL << (group - 1);
  return static_cast<int64_t>(base + width / 2);
}

void Histogram::Record(int64_t value) {
  const size_t idx = BucketIndex(value);
  assert(idx < buckets_.size());
  buckets_[idx]++;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_++;
  sum_ += static_cast<double>(value);
}

void Histogram::Merge(const Histogram& other) {
  assert(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t Histogram::Percentile(double quantile) const {
  if (count_ == 0) {
    return 0;
  }
  quantile = std::clamp(quantile, 0.0, 1.0);
  const auto target = static_cast<uint64_t>(quantile * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      return std::clamp(BucketMidpoint(i), min_, max_);
    }
  }
  return max_;
}

}  // namespace switchfs
