// Latency histogram with log-linear buckets (HdrHistogram-style): relative
// error is bounded (~1/32) across nine decades, which is plenty for reporting
// the p25/p50/p75/p90/p99 latencies the paper uses (Fig 13, Fig 16).
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace switchfs {

class Histogram {
 public:
  Histogram();

  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;
  // quantile in [0, 1]; returns a representative value for that quantile.
  int64_t Percentile(double quantile) const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per decade-ish
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBucketGroups = 40;  // covers > int64 range

  static size_t BucketIndex(int64_t value);
  static int64_t BucketMidpoint(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace switchfs

#endif  // SRC_COMMON_HISTOGRAM_H_
