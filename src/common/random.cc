#include "src/common/random.h"

#include <cmath>

namespace switchfs {

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

namespace {

double PowApprox(double base, double exp) { return std::pow(base, exp); }

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n >= 1);
  assert(theta >= 0.0 && theta != 1.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - PowApprox(2.0, -theta));
}

double ZipfGenerator::H(double x) const {
  // Integral of 1/x^theta.
  return PowApprox(x, 1.0 - theta_) / (1.0 - theta_);
}

double ZipfGenerator::HInverse(double x) const {
  return PowApprox((1.0 - theta_) * x, 1.0 / (1.0 - theta_));
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  if (n_ == 1) {
    return 0;
  }
  if (theta_ == 0.0) {
    return rng.NextBelow(n_);
  }
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    const auto k = static_cast<uint64_t>(x + 0.5);
    const double kd = static_cast<double>(k);
    if (kd - x <= s_) {
      return (k >= 1 ? k : 1) - 1;
    }
    if (u >= H(kd + 0.5) - PowApprox(kd, -theta_)) {
      return (k >= 1 ? k : 1) - 1;
    }
  }
}

DiscreteSampler::DiscreteSampler(std::vector<double> weights) {
  double total = 0.0;
  cumulative_.reserve(weights.size());
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
    cumulative_.push_back(total);
  }
  assert(total > 0.0);
  for (double& c : cumulative_) {
    c /= total;
  }
  cumulative_.back() = 1.0;
}

size_t DiscreteSampler::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  for (size_t i = 0; i < cumulative_.size(); ++i) {
    if (u < cumulative_[i]) {
      return i;
    }
  }
  return cumulative_.size() - 1;
}

}  // namespace switchfs
