// Deterministic pseudo-random number generation for the simulator and the
// workload generators. All randomness in the repository flows through Rng so
// that a (seed, config) pair reproduces a run bit-for-bit.
#ifndef SRC_COMMON_RANDOM_H_
#define SRC_COMMON_RANDOM_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/common/hash.h"

namespace switchfs {

// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the four state words.
    for (auto& word : state_) {
      seed = Mix64(seed + 0x9e3779b97f4a7c15ULL);
      word = seed;
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection-free approximation is fine here; the
    // bias for bounds << 2^64 is negligible for simulation purposes.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  bool NextBool(double probability_true) { return NextDouble() < probability_true; }

  // Exponentially distributed with the given mean (for jitter / inter-arrival).
  double NextExponential(double mean);

  // Splits off an independent generator (for per-component determinism).
  Rng Fork() { return Rng(Next() ^ 0xf02c9e5a11bdeadULL); }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

// Zipf-distributed integers in [0, n). Used to model skewed directory /
// file popularity (paper §3.1: "datacenter workload is skewed along multiple
// dimensions"). Uses the rejection-inversion sampler of Hörmann, which is
// O(1) per sample and needs no O(n) table.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

// Weighted discrete sampler over a fixed small set of alternatives (used for
// operation-mix workloads, Tab 5). Alias-free linear scan is fine for <32
// entries.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::vector<double> weights);

  size_t Next(Rng& rng) const;
  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace switchfs

#endif  // SRC_COMMON_RANDOM_H_
