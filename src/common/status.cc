#include "src/common/status.h"

namespace switchfs {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kNotEmpty:
      return "NOT_EMPTY";
    case StatusCode::kNotADirectory:
      return "NOT_A_DIRECTORY";
    case StatusCode::kIsADirectory:
      return "IS_A_DIRECTORY";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kStaleCache:
      return "STALE_CACHE";
    case StatusCode::kOverflow:
      return "OVERFLOW";
    case StatusCode::kConflict:
      return "CONFLICT";
    case StatusCode::kCrossDevice:
      return "CROSS_DEVICE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kStaleHandle:
      return "STALE_HANDLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace switchfs
