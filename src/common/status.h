// Lightweight Status / StatusOr error-handling vocabulary used across the
// codebase instead of exceptions (protocol code is coroutine-heavy and
// exception propagation through coroutine frames is both slow and easy to get
// wrong). Modeled after absl::Status but self-contained.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace switchfs {

enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,        // ENOENT
  kAlreadyExists = 2,   // EEXIST
  kNotEmpty = 3,        // ENOTEMPTY
  kNotADirectory = 4,   // ENOTDIR
  kIsADirectory = 5,    // EISDIR
  kInvalidArgument = 6,
  kPermissionDenied = 7,
  kUnavailable = 8,     // server down / recovering
  kTimeout = 9,         // RPC gave up after retries
  kStaleCache = 10,     // client must invalidate and retry (internal)
  kOverflow = 11,       // dirty-set insert failed (internal)
  kConflict = 12,       // transaction conflict, retry (internal)
  kCrossDevice = 13,    // EXDEV (rename would create orphaned loop)
  kInternal = 14,
  // Directory-handle session unknown at the server (expired, closed, or
  // wiped by an owner crash): the caller must re-open the directory.
  kStaleHandle = 15,
};

std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status NotFoundError(std::string m = "") {
  return Status(StatusCode::kNotFound, std::move(m));
}
inline Status AlreadyExistsError(std::string m = "") {
  return Status(StatusCode::kAlreadyExists, std::move(m));
}
inline Status NotEmptyError(std::string m = "") {
  return Status(StatusCode::kNotEmpty, std::move(m));
}
inline Status NotADirectoryError(std::string m = "") {
  return Status(StatusCode::kNotADirectory, std::move(m));
}
inline Status IsADirectoryError(std::string m = "") {
  return Status(StatusCode::kIsADirectory, std::move(m));
}
inline Status InvalidArgumentError(std::string m = "") {
  return Status(StatusCode::kInvalidArgument, std::move(m));
}
inline Status PermissionDeniedError(std::string m = "") {
  return Status(StatusCode::kPermissionDenied, std::move(m));
}
inline Status UnavailableError(std::string m = "") {
  return Status(StatusCode::kUnavailable, std::move(m));
}
inline Status TimeoutError(std::string m = "") {
  return Status(StatusCode::kTimeout, std::move(m));
}
inline Status StaleCacheError(std::string m = "") {
  return Status(StatusCode::kStaleCache, std::move(m));
}
inline Status InternalError(std::string m = "") {
  return Status(StatusCode::kInternal, std::move(m));
}
inline Status StaleHandleError(std::string m = "") {
  return Status(StatusCode::kStaleHandle, std::move(m));
}

// StatusOr<T>: either an OK status with a value, or a non-OK status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }
  StatusOr(T value)  // NOLINT
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace switchfs

#endif  // SRC_COMMON_STATUS_H_
