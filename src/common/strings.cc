#include "src/common/strings.h"

namespace switchfs {

std::vector<std::string_view> SplitPath(std::string_view path) {
  std::vector<std::string_view> parts;
  size_t i = 0;
  while (i < path.size()) {
    if (path[i] == '/') {
      ++i;
      continue;
    }
    size_t j = path.find('/', i);
    if (j == std::string_view::npos) {
      j = path.size();
    }
    parts.push_back(path.substr(i, j - i));
    i = j;
  }
  return parts;
}

bool IsValidPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return false;
  }
  if (path == "/") {
    return true;
  }
  if (path.back() == '/') {
    return false;
  }
  size_t component_len = 0;
  for (size_t i = 1; i < path.size(); ++i) {
    if (path[i] == '/') {
      if (component_len == 0) {
        return false;  // "//" or "/a//b"
      }
      component_len = 0;
    } else {
      ++component_len;
    }
  }
  return component_len > 0;
}

std::string_view ParentPath(std::string_view path) {
  const size_t pos = path.rfind('/');
  if (pos == 0) {
    return "/";
  }
  return path.substr(0, pos);
}

std::string_view Basename(std::string_view path) {
  const size_t pos = path.rfind('/');
  return path.substr(pos + 1);
}

std::string JoinPath(std::string_view dir, std::string_view name) {
  std::string out(dir);
  if (out.empty() || out.back() != '/') {
    out.push_back('/');
  }
  out.append(name);
  return out;
}

}  // namespace switchfs
