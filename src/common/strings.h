// Path manipulation helpers shared by clients of all five systems. Paths are
// absolute, '/'-separated, and already normalized by callers ("/a/b"; no "."
// or ".." components — the paper's protocol operates on resolved paths).
#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace switchfs {

// "/a/b/c" -> {"a", "b", "c"}; "/" -> {}.
std::vector<std::string_view> SplitPath(std::string_view path);

// Returns true for "/", "/a", "/a/b" style paths (absolute, no empty or
// dot components, no trailing slash except the root itself).
bool IsValidPath(std::string_view path);

// "/a/b/c" -> "/a/b"; "/a" -> "/". Requires a valid non-root path.
std::string_view ParentPath(std::string_view path);

// "/a/b/c" -> "c". Requires a valid non-root path.
std::string_view Basename(std::string_view path);

// Joins with a single slash: ("/a", "b") -> "/a/b"; ("/", "b") -> "/b".
std::string JoinPath(std::string_view dir, std::string_view name);

}  // namespace switchfs

#endif  // SRC_COMMON_STRINGS_H_
