#include "src/core/aggregation.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "src/core/push_engine.h"
#include "src/core/schema.h"
#include "src/core/wal_records.h"
#include "src/sim/sync.h"
#include "src/tracker/dirty_tracker.h"

namespace switchfs::core {

sim::Task<Aggregation::Outcome> Aggregation::RunAggregation(
    VolPtr v, psw::Fingerprint fp, std::optional<InodeId> invalidate,
    psw::Fingerprint held_cl_fp, const std::string& held_inode_key,
    bool defer_done) {
  ctx_.stats->aggregations++;
  Outcome outcome;

  auto w = std::make_shared<ServerVolatile::AggWait>();
  for (uint32_t s = 0; s < ctx_.cluster->ServerCount(); ++s) {
    if (s != ctx_.config->index) {
      w->pending.insert(s);
    }
  }
  v->ShardFor(fp).agg_waits[fp] = w;

  if (invalidate.has_value()) {
    v->inval.Add(*invalidate, ctx_.Now());
  }

  // Local snapshot: our own change-logs belong to the collection too. The
  // shared lock serializes against in-flight double-inode ops (Fig 20).
  {
    LockTable::Handle local_lock;
    if (fp != held_cl_fp) {
      local_lock =
          co_await v->ShardFor(fp).changelog_locks.AcquireShared(FpKey(fp));
      if (v->dead) co_return outcome;
    }
    auto it = v->ShardFor(fp).changelogs.find(fp);
    if (it != v->ShardFor(fp).changelogs.end()) {
      for (auto& [dir, log] : it->second) {
        if (log.empty()) {
          continue;
        }
        AggEntries::PerDir pd;
        pd.dir = dir;
        pd.entries.assign(log.pending().begin(), log.pending().end());
        w->collected.push_back(std::move(pd));
        w->collected_src.push_back(ctx_.config->index);
      }
    }
  }

  // Remove the fingerprint and multicast the collect request; retry with a
  // fresh sequence number until every server has replied (§5.4.1).
  bool complete = w->pending.empty();
  for (int attempt = 0; attempt <= ctx_.config->agg_max_retries && !complete;
       ++attempt) {
    if (attempt > 0) {
      ctx_.stats->agg_retries++;
    }
    const uint64_t seq = ++ctx_.durable->remove_seq;
    w->seq = seq;
    w->slot = std::make_shared<sim::OneShot<bool>>(ctx_.sim);

    auto collect = std::make_shared<AggCollect>();
    collect->fp = fp;
    collect->initiator_server = ctx_.config->index;
    collect->initiator_node = ctx_.node_id();
    collect->agg_seq = seq;
    if (invalidate.has_value()) {
      collect->invalidate = true;
      collect->invalidate_id = *invalidate;
    }

    net::Packet rm;
    rm.dst = net::kServerMulticast;
    rm.body = collect;
    co_await ctx_.dirty_tracker->RemoveAndMulticast(ctx_, v, fp, seq,
                                                    std::move(rm));
    if (v->dead) co_return outcome;

    auto slot = w->slot;
    ctx_.sim->ScheduleAfter(ctx_.config->agg_reply_timeout,
                            [slot] { slot->Set(false); });
    complete = co_await slot->Wait();
    if (v->dead) co_return outcome;
    if (w->pending.empty()) {
      complete = true;
    }
  }

  // Apply phase: per-(dir, source) batches, hwm-deduplicated. Entries
  // collected for a directory that was renamed away (live moved tombstone)
  // are neither applied nor acked: acking at max seq would trim committed
  // entries at their sources. They become AggDone moved rows instead, and
  // each source re-keys its log toward the tombstone's target — the
  // aggregation-path analog of the kMoved push verdict.
  uint64_t local_max_acked = 0;
  std::map<std::pair<uint32_t, InodeId>, uint64_t> acked;
  std::map<std::pair<uint32_t, InodeId>, AggDone::MovedRow> moved;
  for (size_t i = 0; i < w->collected.size(); ++i) {
    const uint32_t src = w->collected_src[i];
    // Copies, not references: a straggling AggEntries reply (responder
    // retry) can push_back into w->collected while ApplyEntries suspends,
    // reallocating the vector under a held reference.
    const InodeId dir = w->collected[i].dir;
    if (w->collected[i].entries.empty()) {
      continue;
    }
    const uint64_t max_seq = w->collected[i].entries.back().seq;
    co_await ApplyEntries(v, dir, src, fp,
                          std::move(w->collected[i].entries), held_inode_key);
    if (v->dead) co_return outcome;
    // Classify AFTER the apply: ApplyEntries drops entries silently when
    // the directory is unknown here, and a rename can commit while the
    // apply waits on the inode lock — a pre-apply check would ack (and so
    // trim) entries the rename raced. The inode row is checked as well as
    // the index: WAL replay can leave a stale dir-index row behind (see
    // ReplayWalInto), matching PushEngine::ApplySection.
    std::string ikey;
    psw::Fingerprint ifp = 0;
    const bool live =
        v->LookupDirIndex(dir, &ikey, &ifp) && v->kv.Get(ikey).has_value();
    if (!live && ctx_.config->moved_rebind) {
      const ServerVolatile::MovedDir* tomb = v->FindMovedTombstone(
          dir, ctx_.Now(), ctx_.config->moved_tombstone_ttl);
      if (tomb != nullptr) {
        moved[{src, dir}] = AggDone::MovedRow{src,
                                              dir,
                                              tomb->AppliedFor(src, fp),
                                              tomb->new_fp,
                                              tomb->new_owner,
                                              tomb->epoch};
        continue;
      }
    }
    auto& high = acked[{src, dir}];
    high = std::max(high, max_seq);
  }

  // Ack our own change-logs synchronously.
  auto own = v->ShardFor(fp).changelogs.find(fp);
  if (own != v->ShardFor(fp).changelogs.end()) {
    for (auto& [dir, log] : own->second) {
      auto it = acked.find({ctx_.config->index, dir});
      if (it == acked.end()) {
        continue;
      }
      local_max_acked = std::max(local_max_acked, it->second);
      for (uint64_t lsn : log.AckUpTo(it->second)) {
        ctx_.durable->wal.MarkApplied(lsn);
      }
    }
  }
  (void)local_max_acked;

  auto done = std::make_shared<AggDone>();
  done->fp = fp;
  done->agg_seq = w->seq;
  for (const auto& [key, seq] : acked) {
    if (key.first == ctx_.config->index) {
      continue;
    }
    done->acked.push_back(AggDone::AckedRow{key.first, key.second, seq});
  }
  // Moved rows: remote sources re-key on receipt of the AggDone; our own
  // logs for the moved directory re-key in a detached task — the caller may
  // hold this group's change-log lock (rmdir's held_cl_fp), so an inline
  // rebind could self-deadlock on its own lock table.
  for (const auto& [key, row] : moved) {
    if (key.first != ctx_.config->index) {
      done->moved.push_back(row);
      continue;
    }
    if (rebinder_ != nullptr) {
      sim::Spawn(rebinder_->RebindMovedLogDetached(v, row.dir, fp, row.new_fp,
                                                   row.applied_seq,
                                                   /*from_aggregation=*/true));
    }
  }
  v->ShardFor(fp).last_agg_complete[fp] = ctx_.Now();
  v->ShardFor(fp).agg_waits.erase(fp);

  outcome.ok = true;
  if (defer_done) {
    outcome.deferred_done = done;
  } else {
    SendAggDone(done);
  }
  co_return outcome;
}

void Aggregation::SendAggDone(net::MsgPtr done_msg) {
  if (done_msg == nullptr) {
    return;
  }
  net::Packet p;
  p.dst = net::kServerMulticast;
  p.ds.origin = ctx_.node_id();
  p.body = std::move(done_msg);
  ctx_.rpc->Send(std::move(p));
}

sim::Task<void> Aggregation::GateAndAggregate(VolPtr v, psw::Fingerprint fp) {
  auto gate = co_await v->ShardFor(fp).agg_gates.AcquireExclusive(FpKey(fp));
  if (v->dead) co_return;
  co_await RunAggregation(v, fp, std::nullopt, 0, "", false);
}

sim::Task<void> Aggregation::ApplyEntries(VolPtr v, InodeId dir, uint32_t src,
                                          psw::Fingerprint lane_fp,
                                          std::vector<ChangeLogEntry> entries,
                                          const std::string& held_inode_key,
                                          uint64_t batch_token) {
  if (entries.empty()) {
    co_return;
  }
  std::string ikey;
  psw::Fingerprint fp = 0;
  if (!v->LookupDirIndex(dir, &ikey, &fp)) {
    // Directory unknown here: removed (entries are obsolete) or renamed
    // away. Callers that must not lose entries check the moved tombstone
    // BEFORE applying (PushEngine::ApplySection, RunAggregation's apply
    // phase, SyncParentUpdate) and route a kMoved/moved-row rebind verdict
    // instead; this silent drop is only reached for genuinely removed
    // directories or with moved_rebind off.
    co_return;
  }
  LockTable::Handle lock;
  if (ikey != held_inode_key) {
    lock = co_await v->ShardFor(fp).inode_locks.AcquireExclusive(ikey);
    if (v->dead) co_return;
  }

  // The hwm mark is tracked in a local and written through BumpHwm — not a
  // reference: v->hwm is suspension-shared, and a rename installing a moved
  // tombstone erases this very row (TakeHwmRows era hygiene) while the apply
  // suspends below, which would leave a reference dangling. BumpHwm also
  // refuses to resurrect an erased lane: its marks belong to the numbering
  // era the erase closed, and re-inserting them would swallow the fresh
  // era's entries as duplicates.
  const std::tuple<InodeId, uint32_t, psw::Fingerprint> lane{dir, src, lane_fp};
  uint64_t high = v->hwm[lane];
  const auto bump_hwm = [&high, &lane, &v](uint64_t seq) {
    high = std::max(high, seq);
    auto hit = v->hwm.find(lane);
    if (hit != v->hwm.end()) {
      hit->second = std::max(hit->second, high);
    }
  };
  // Resolved-prefix bridge: every batch starts at the source log's FRONT
  // (push gather, aggregation snapshot, fallback backlog all send FIFO
  // prefixes), and a log's front only advances through resolution — an ack
  // from this server, a moved_fp verdict trim (those entries migrated with
  // the renamed directory's entry list), or an obsolete-removal trim. So
  // everything below the first seq is settled and must not be waited for:
  // after a rename chain, a rebound or straggler batch resumes above marks
  // this incarnation of the lane never saw, and without the bridge it would
  // gap-stall forever. Stale duplicates cannot abuse this (their first seq
  // is never above the live front), and batches are single-flight per
  // (source, owner), so a bridged batch cannot overtake unresolved entries.
  bump_hwm(entries.front().seq - 1);
  std::vector<ChangeLogEntry> todo;
  uint64_t next = high + 1;
  for (ChangeLogEntry& e : entries) {
    if (e.seq < next) {
      ctx_.stats->entries_deduped++;
      continue;
    }
    if (e.seq > next) {
      break;  // mid-batch gap: apply the contiguous prefix only
    }
    todo.push_back(std::move(e));
    ++next;
  }
  if (todo.empty()) {
    co_return;
  }

  // Per-entry commit-stamp LWW (lww_resolve): each name's last applied write
  // keeps a stamp row, and an entry whose (ts, origin, src, seq) stamp is
  // older than the row no-ops. Within one lane seqs are FIFO with
  // non-decreasing timestamps, so this never fires for plain traffic — it
  // resolves the cross-era case (a rebound old-era entry arriving after a
  // same-name new-era entry; the hwm lanes are per-fingerprint and cannot
  // see that inversion) and WAN-replayed conflicts (the stamp a WAN apply
  // left carries its origin cluster). Runs BEFORE the WAL appends so records
  // exist only for winners — replay then re-applies unconditionally and
  // max-merges the stamps. Losers still resolve the lane: final_seq is
  // bumped into the hwm after the apply either way.
  //
  // Winners get a presence-aware size delta: a write that wins over an
  // already-applied same-name entry from another era or cluster replaces the
  // entry row rather than adding one, and the directory's entry count must
  // say so (the size half of the phantom-dirent gap).
  const uint64_t final_seq = todo.back().seq;
  if (ctx_.config->lww_resolve) {
    std::vector<ChangeLogEntry> kept;
    kept.reserve(todo.size());
    std::map<std::string, bool> present_override;  // in-batch sequences
    for (ChangeLogEntry& e : todo) {
      const LwwStamp incoming{e.timestamp, ctx_.config->cluster_id, src,
                              e.seq};
      const std::string skey = LwwStampKey(dir, e.name);
      auto row = v->kv.Get(skey);
      if (row.has_value() && incoming < LwwStamp::Decode(*row)) {
        ctx_.stats->wan_conflicts_lww++;
        continue;  // a newer write already resolved this name
      }
      const bool creates =
          e.op == OpType::kCreate || e.op == OpType::kMkdir;
      auto ov = present_override.find(e.name);
      const bool present =
          ov != present_override.end()
              ? ov->second
              : v->kv.Get(EntryKey(dir, e.name)).has_value();
      e.size_delta = creates ? (present ? 0 : 1) : (present ? -1 : 0);
      present_override[e.name] = creates;
      v->kv.Put(skey, incoming.Encode());
      kept.push_back(std::move(e));
    }
    todo = std::move(kept);
    if (todo.empty()) {
      bump_hwm(final_seq);
      co_return;
    }
  }

  co_await ctx_.cpu->Run(ctx_.costs->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (!value.has_value()) {
    co_return;  // directory vanished under a concurrent rmdir
  }
  Attr attr = Attr::Decode(*value);

  if (ctx_.config->compaction) {
    // §5.3: consolidated attribute update (one put) + entry-list operations
    // fanned out across cores; WAL appends are group-committed.
    int64_t size_delta = 0;
    int64_t max_ts = attr.mtime;
    for (const ChangeLogEntry& e : todo) {
      size_delta += e.size_delta;
      max_ts = std::max(max_ts, e.timestamp);
    }
    const uint64_t result_size = static_cast<uint64_t>(
        std::max<int64_t>(0, static_cast<int64_t>(attr.size) + size_delta));
    auto join = std::make_shared<sim::JoinCounter>(
        ctx_.sim, static_cast<int>(todo.size()));
    for (const ChangeLogEntry& e : todo) {
      EntryApplyRecord rec;
      rec.dir = dir;
      rec.src_server = src;
      rec.fp = lane_fp;
      rec.entry = e;
      rec.result_size = result_size;
      rec.result_mtime = max_ts;
      rec.batch_token = batch_token;
      ctx_.durable->wal.Append(kWalEntryApply, rec.Encode());
      sim::Spawn([](ServerContext* ctx, VolPtr vol, InodeId d,
                    ChangeLogEntry entry,
                    std::shared_ptr<sim::JoinCounter> jc) -> sim::Task<void> {
        co_await ctx->cpu->Run(ctx->costs->wal_append_batched +
                               ctx->costs->changelog_apply_entry);
        if (!vol->dead) {
          const std::string ekey = EntryKey(d, entry.name);
          if (entry.op == OpType::kCreate || entry.op == OpType::kMkdir) {
            vol->kv.Put(ekey, EncodeEntryValue(entry.entry_type));
          } else {
            vol->kv.Delete(ekey);
          }
        }
        jc->Done();
      }(&ctx_, v, dir, e, join));
    }
    co_await join->Wait();
    if (v->dead) co_return;
    attr.size = result_size;
    attr.mtime = max_ts;
    attr.atime = std::max(attr.atime, max_ts);
    co_await ctx_.cpu->Run(ctx_.costs->attr_merge_apply);
    if (v->dead) co_return;
    v->kv.Put(ikey, attr.Encode());
    bump_hwm(final_seq);
  } else {
    // No compaction (+Async ablation): every entry is a full read-modify-
    // write of the directory inode, serialized under the inode lock.
    for (const ChangeLogEntry& e : todo) {
      EntryApplyRecord rec;
      rec.dir = dir;
      rec.src_server = src;
      rec.fp = lane_fp;
      rec.entry = e;
      const int64_t new_size =
          std::max<int64_t>(0, static_cast<int64_t>(attr.size) + e.size_delta);
      rec.result_size = static_cast<uint64_t>(new_size);
      rec.result_mtime = std::max(attr.mtime, e.timestamp);
      rec.batch_token = batch_token;
      co_await ctx_.cpu->Run(ctx_.costs->wal_append);
      if (v->dead) co_return;
      ctx_.durable->wal.Append(kWalEntryApply, rec.Encode());
      co_await ctx_.cpu->Run(ctx_.costs->dir_update_cpu);
      if (v->dead) co_return;
      co_await sim::Delay(
          ctx_.sim, ctx_.costs->dir_update_critical - ctx_.costs->dir_update_cpu);
      if (v->dead) co_return;
      const std::string ekey = EntryKey(dir, e.name);
      if (e.op == OpType::kCreate || e.op == OpType::kMkdir) {
        v->kv.Put(ekey, EncodeEntryValue(e.entry_type));
      } else {
        v->kv.Delete(ekey);
      }
      attr.size = rec.result_size;
      attr.mtime = rec.result_mtime;
      v->kv.Put(ikey, attr.Encode());
      bump_hwm(e.seq);
    }
    bump_hwm(final_seq);  // LWW-dropped tail entries are resolved too
  }
  ctx_.stats->entries_applied += todo.size();

  // WAN capture: publish every locally-committed dirent apply to the
  // replicator (null without a WAN tier). Only this path feeds the sink —
  // WAN replays enter through SwitchServer::EnqueueWanApply instead, so a
  // shipped batch cannot echo back out of the cluster that applied it.
  if (ctx_.wan_sink != nullptr) {
    for (const ChangeLogEntry& e : todo) {
      WanEntry we;
      we.dir = dir;
      we.dir_fp = fp;
      we.origin_cluster = ctx_.config->cluster_id;
      we.src_server = src;
      we.entry = e;
      ctx_.wan_sink->OnEntryApplied(we);
    }
  }
}

// ---------------------------------------------------------------------------
// Responder side
// ---------------------------------------------------------------------------

sim::Task<void> Aggregation::HandleAggCollect(net::Packet p, VolPtr v) {
  auto body = p.body;
  const auto* msg = net::MsgAs<AggCollect>(body);
  if (msg == nullptr) {
    co_return;
  }
  co_await ctx_.cpu->Run(ctx_.costs->op_dispatch);
  if (v->dead) co_return;

  // Fig 6 step 5: insert the removed directory into the invalidation list
  // *before* snapshotting, so racing double-inode ops fail their checks.
  if (msg->invalidate) {
    v->inval.Add(msg->invalidate_id, ctx_.Now());
  }

  const psw::Fingerprint fp = msg->fp;
  auto it = v->ShardFor(fp).agg_sessions.find(fp);
  if (it == v->ShardFor(fp).agg_sessions.end()) {
    auto lock =
        co_await v->ShardFor(fp).changelog_locks.AcquireShared(FpKey(fp));
    if (v->dead) co_return;
    // Re-check: a concurrent collect may have created the session while we
    // waited for the lock; keep the first session's lock and drop ours.
    it = v->ShardFor(fp).agg_sessions.find(fp);
    if (it == v->ShardFor(fp).agg_sessions.end()) {
      ServerVolatile::AggSession session;
      session.seq = msg->agg_seq;
      session.lock = std::move(lock);
      session.started_at = ctx_.Now();
      it = v->ShardFor(fp).agg_sessions.emplace(fp, std::move(session)).first;
      sim::Spawn(ResponderSessionWatchdog(v, fp, msg->agg_seq));
    } else {
      it->second.seq = std::max(it->second.seq, msg->agg_seq);
    }
  } else {
    it->second.seq = std::max(it->second.seq, msg->agg_seq);
  }

  auto reply = std::make_shared<AggEntries>();
  reply->fp = fp;
  reply->agg_seq = msg->agg_seq;
  reply->src_server = ctx_.config->index;
  auto logs = v->ShardFor(fp).changelogs.find(fp);
  if (logs != v->ShardFor(fp).changelogs.end()) {
    for (auto& [dir, log] : logs->second) {
      if (log.empty()) {
        continue;
      }
      AggEntries::PerDir pd;
      pd.dir = dir;
      pd.entries.assign(log.pending().begin(), log.pending().end());
      reply->dirs.push_back(std::move(pd));
    }
  }
  net::CallOptions opts;
  opts.timeout = sim::Microseconds(500);
  opts.max_attempts = 5;
  auto r = co_await ctx_.rpc->Call(msg->initiator_node, reply, opts);
  (void)r;  // receipt ack only; AggDone (or the watchdog) finishes the session
}

void Aggregation::HandleAggEntries(net::Packet p, VolPtr v) {
  const auto* msg = net::MsgAs<AggEntries>(p.body);
  if (msg == nullptr) {
    return;
  }
  ctx_.rpc->Respond(p, net::MakeMsg<Ack>());
  auto it = v->ShardFor(msg->fp).agg_waits.find(msg->fp);
  if (it == v->ShardFor(msg->fp).agg_waits.end()) {
    return;  // aggregation already finished
  }
  auto& w = *it->second;
  for (const auto& pd : msg->dirs) {
    w.collected.push_back(pd);
    w.collected_src.push_back(msg->src_server);
  }
  if (msg->agg_seq == w.seq) {
    w.pending.erase(msg->src_server);
    if (w.pending.empty() && w.slot != nullptr) {
      w.slot->Set(true);
    }
  }
}

void Aggregation::HandleAggDone(const AggDone& done, VolPtr v) {
  // Moved rows first, independent of the session (a watchdog-reaped session
  // must not drop a rebind verdict): our collected entries for a renamed-away
  // directory were not acked — re-key them toward the new owner instead.
  if (rebinder_ != nullptr) {
    for (const auto& row : done.moved) {
      if (row.src_server != ctx_.config->index) {
        continue;
      }
      sim::Spawn(rebinder_->RebindMovedLogDetached(v, row.dir, done.fp,
                                                   row.new_fp, row.applied_seq,
                                                   /*from_aggregation=*/true));
    }
  }
  auto it = v->ShardFor(done.fp).agg_sessions.find(done.fp);
  if (it == v->ShardFor(done.fp).agg_sessions.end()) {
    return;
  }
  if (done.agg_seq < it->second.seq) {
    return;  // stale completion of an earlier attempt
  }
  auto logs = v->ShardFor(done.fp).changelogs.find(done.fp);
  if (logs != v->ShardFor(done.fp).changelogs.end()) {
    for (const auto& row : done.acked) {
      if (row.src_server != ctx_.config->index) {
        continue;
      }
      auto dit = logs->second.find(row.dir);
      if (dit == logs->second.end()) {
        continue;
      }
      for (uint64_t lsn : dit->second.AckUpTo(row.acked_seq)) {
        ctx_.durable->wal.MarkApplied(lsn);
      }
    }
  }
  v->ShardFor(done.fp).agg_sessions.erase(it);  // releases the lock (9a)
}

sim::Task<void> Aggregation::ResponderSessionWatchdog(VolPtr v,
                                                      psw::Fingerprint fp,
                                                      uint64_t seq) {
  while (true) {
    co_await sim::Delay(ctx_.sim, ctx_.config->responder_session_timeout);
    if (v->dead) co_return;
    auto it = v->ShardFor(fp).agg_sessions.find(fp);
    if (it == v->ShardFor(fp).agg_sessions.end()) {
      co_return;  // finished normally
    }
    if (it->second.seq != seq) {
      seq = it->second.seq;  // still live (retries); keep watching
      continue;
    }
    // The initiator went silent (likely crashed): release the lock. Pending
    // entries stay; recovery or the next aggregation re-collects them.
    v->ShardFor(fp).agg_sessions.erase(it);
    co_return;
  }
}

}  // namespace switchfs::core
