// Directory aggregation (paper §5.2.2 steps 5-10, §5.4.1): the owner-side
// collect/apply path that returns a scattered directory to normal state, and
// the responder-side session handling on every other server.
//
// Owner side: RunAggregation removes the fingerprint from the dirty set,
// multicasts a collect, gathers each server's change-log entries for the
// group, applies them (hwm-deduplicated, FIFO per source), and multicasts
// AggDone so the senders mark their WAL records applied. Retries use a fresh
// remove sequence number until every server replied (§5.4.1).
//
// Responder side: HandleAggCollect snapshots local change-logs under a shared
// change-log lock held for the session; the lock is released by AggDone or,
// if the initiator dies, by the session watchdog.
#ifndef SRC_CORE_AGGREGATION_H_
#define SRC_CORE_AGGREGATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/server_context.h"
#include "src/net/packet.h"
#include "src/sim/task.h"

namespace switchfs::core {

class PushEngine;  // push_engine.h (depends on this header)

class Aggregation {
 public:
  explicit Aggregation(ServerContext& ctx) : ctx_(ctx) {}
  Aggregation(const Aggregation&) = delete;
  Aggregation& operator=(const Aggregation&) = delete;

  // Wires the moved_fp rebind path (§5.2 rename race): entries collected for
  // a directory that was renamed away are routed to PushEngine::
  // RebindMovedLog instead of being acked at max seq. Set after construction
  // (PushEngine itself depends on Aggregation); without a rebinder, moved
  // directories degrade to the removed-directory trim.
  void SetRebinder(PushEngine* rebinder) { rebinder_ = rebinder; }

  struct Outcome {
    bool ok = false;
    net::MsgPtr deferred_done;  // AggDone to multicast (when defer_done)
  };

  // ---- owner side ----
  // Caller must hold the exclusive agg gate for `fp`. `held_cl_fp`: a
  // fingerprint whose change-log lock the caller already holds exclusively
  // (rmdir holds the parent's); pass 0 if none. `held_inode_key`: an inode
  // key the caller already holds a write lock on ("" if none). `invalidate`:
  // rmdir's lazy client-cache invalidation rides on the collect (§5.2.3).
  sim::Task<Outcome> RunAggregation(VolPtr v, psw::Fingerprint fp,
                                    std::optional<InodeId> invalidate,
                                    psw::Fingerprint held_cl_fp,
                                    const std::string& held_inode_key,
                                    bool defer_done);
  void SendAggDone(net::MsgPtr done_msg);
  // Applies entries from `src` to directory `dir` (hwm-deduped, FIFO). With
  // compaction on, N entries cost one consolidated attribute write (§5.3).
  // `lane_fp` is the fingerprint the entries were logged under at the
  // source: it selects the (dir, src, fp) dedup lane — see
  // ServerVolatile::hwm. `batch_token` (non-zero on the push path) is
  // stamped into every kWalEntryApply record so recovery rebuilds the
  // section's idempotency state.
  sim::Task<void> ApplyEntries(VolPtr v, InodeId dir, uint32_t src,
                               psw::Fingerprint lane_fp,
                               std::vector<ChangeLogEntry> entries,
                               const std::string& held_inode_key,
                               uint64_t batch_token = 0);
  // Takes the exclusive gate and aggregates (quiet timers, rename,
  // AggregateReq RPC, recovery).
  sim::Task<void> GateAndAggregate(VolPtr v, psw::Fingerprint fp);

  // ---- responder side ----
  sim::Task<void> HandleAggCollect(net::Packet p, VolPtr v);
  void HandleAggDone(const AggDone& done, VolPtr v);
  void HandleAggEntries(net::Packet p, VolPtr v);  // at initiator

 private:
  sim::Task<void> ResponderSessionWatchdog(VolPtr v, psw::Fingerprint fp,
                                           uint64_t seq);

  ServerContext& ctx_;
  PushEngine* rebinder_ = nullptr;  // see SetRebinder
};

}  // namespace switchfs::core

#endif  // SRC_CORE_AGGREGATION_H_
