// Shared client-side scaffolding for MetadataService::BatchStat: resolve
// every path, group the resolved targets by their owner server under the
// calling system's placement, ship ONE multi-target MetaReq per server, and
// map the per-target verdicts back into path order — retrying transient
// failures (stale cache, unreachable owners) across rounds. SwitchFsClient
// and BaselineClient differ only in how a path maps to (PathRef, server),
// so that is the one injected piece.
#ifndef SRC_CORE_BATCH_STAT_H_
#define SRC_CORE_BATCH_STAT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/client_cache.h"
#include "src/core/messages.h"
#include "src/net/rpc.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace switchfs::core {

// One resolved batch-stat target: the PathRef plus the index of the server
// that owns it under the calling system's placement.
struct BatchTarget {
  PathRef ref;
  uint32_t server = 0;
};

// `resolve` maps one path to its target (a kStaleCache/kTimeout/kUnavailable
// status defers the path to the next round; any other failure is final);
// `server_node` maps a server index to its fabric address. `op` selects the
// server-side flavor (kBatchStat for file targets, kBatchStatDir for
// directory targets); `scattered_hint` stamps the multi-target requests so
// a server whose dirty test is request-scoped (it cannot be pre-queried for
// N fingerprints in one packet) conservatively runs the aggregation dance
// per directory target.
inline sim::Task<std::vector<StatusOr<Attr>>> RunBatchStat(
    sim::Simulator* sim, net::RpcEndpoint& rpc, ClientCache& cache,
    std::vector<std::string> paths, OpType op, bool scattered_hint,
    int max_attempts, sim::SimTime retry_backoff, net::CallOptions call,
    std::function<sim::Task<StatusOr<BatchTarget>>(const std::string&)>
        resolve,
    std::function<net::NodeId(uint32_t)> server_node) {
  std::vector<StatusOr<Attr>> results(paths.size(),
                                      StatusOr<Attr>(InternalError("not run")));
  std::vector<size_t> open;  // indices still unresolved
  open.reserve(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    open.push_back(i);
  }

  for (int attempt = 0; attempt < max_attempts && !open.empty(); ++attempt) {
    struct Group {
      std::vector<size_t> indices;
      std::vector<PathRef> refs;
    };
    std::map<uint32_t, Group> groups;
    std::vector<size_t> still_open;
    for (size_t i : open) {
      auto target = co_await resolve(paths[i]);
      if (!target.ok()) {
        const StatusCode code = target.status().code();
        if (code == StatusCode::kStaleCache || code == StatusCode::kTimeout ||
            code == StatusCode::kUnavailable) {
          still_open.push_back(i);  // retry next round
          continue;
        }
        results[i] = target.status();
        continue;
      }
      Group& g = groups[target->server];
      g.indices.push_back(i);
      g.refs.push_back(std::move(target->ref));
    }

    for (auto& [server, group] : groups) {
      auto req = std::make_shared<MetaReq>();
      req->op = op;
      req->scattered_hint = scattered_hint;
      req->targets = std::move(group.refs);
      auto r = co_await rpc.Call(server_node(server), req, call);
      if (!r.ok()) {
        for (size_t i : group.indices) {
          still_open.push_back(i);  // owner unreachable: retry the group
        }
        continue;
      }
      const auto* resp = net::MsgAs<MetaResp>(*r);
      if (resp == nullptr ||
          resp->batch_status.size() != group.indices.size()) {
        for (size_t i : group.indices) {
          results[i] = InternalError("bad batch-stat response");
        }
        continue;
      }
      for (const InodeId& id : resp->stale_ids) {
        cache.InvalidateId(id);
      }
      for (size_t k = 0; k < group.indices.size(); ++k) {
        const size_t i = group.indices[k];
        switch (resp->batch_status[k]) {
          case StatusCode::kOk:
            results[i] = resp->batch_attrs[k];
            break;
          case StatusCode::kStaleCache:
          case StatusCode::kUnavailable:
            still_open.push_back(i);  // re-resolve with the fresh cache
            break;
          default:
            results[i] = Status(resp->batch_status[k]);
            break;
        }
      }
    }
    open = std::move(still_open);
    if (!open.empty()) {
      co_await sim::Delay(sim, retry_backoff);
    }
  }
  for (size_t i : open) {
    results[i] = TimeoutError("batch-stat retries exhausted");
  }
  co_return results;
}

}  // namespace switchfs::core

#endif  // SRC_CORE_BATCH_STAT_H_
