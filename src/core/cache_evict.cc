#include "src/core/cache_evict.h"

#include <memory>
#include <string>

#include "src/sim/discipline.h"
#include "src/sim/sync.h"

namespace switchfs::core {

sim::Task<void> EvictSwitchCacheEntry(ServerContext& ctx, VolPtr v,
                                      psw::Fingerprint fp,
                                      EvictLockWitness witness) {
  if (!ctx.config->switch_cache || v->cached_fps.count(fp) == 0) {
    co_return;
  }
#if SFS_DISCIPLINE_CHECKS
  if (witness == EvictLockWitness::kChain) {
    sim::DisciplineChecker::CheckEvictAllowed(
        co_await sim::discipline::CurrentChainId{},
        "fp=" + std::to_string(fp));
  }
#else
  (void)witness;
#endif
  const uint64_t token = v->op_token_counter++;
  auto wait = std::make_shared<ServerVolatile::CacheEvictWait>();
  v->cache_evict_waits[token] = wait;

  // Self-addressed evict: the switch bumps the set version and drops the
  // entry in flight, then the packet reaches our raw handler as the ack.
  net::Packet ev;
  ev.dst = ctx.node_id();
  ev.mc.op = net::McOp::kEvict;
  ev.mc.fingerprint = fp;
  ev.mc.token = token;

  bool acked = false;
  for (int attempt = 0; attempt < ctx.config->cache_evict_max_attempts;
       ++attempt) {
    if (wait->acked) {
      acked = true;
      break;
    }
    wait->slot = std::make_shared<sim::OneShot<int>>(ctx.sim);
    ctx.rpc->Send(ev);
    auto slot = wait->slot;
    ctx.sim->ScheduleAfter(ctx.config->cache_evict_timeout,
                           [slot] { slot->Set(0); });
    const int result = co_await slot->Wait();
    if (v->dead) co_return;
    if (result != 0) {
      acked = true;
      break;
    }
  }
  v->cache_evict_waits.erase(token);
  if (acked) {
    ctx.stats->cache_evicts++;
    v->cached_fps.erase(fp);
  } else {
    // Budget exhausted: the write proceeds. Either the evict executed and
    // only the acks were lost, or the switch is down and its cache state is
    // gone with it (Reset on recovery). Keep fp in cached_fps so the next
    // write retries the evict.
    ctx.stats->cache_evict_exhausted++;
  }
}

}  // namespace switchfs::core
