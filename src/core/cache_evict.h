// Writer-side invalidation of the in-switch metadata read cache.
//
// Every committing write to a fingerprint this server may have installed at
// the switch runs one evict round trip BEFORE its commit point, under the
// operation's exclusive locks. The switch evicts the entry and bumps the
// set's version register (closing the read-miss/install race: an install
// echoing a pre-evict version is rejected), then forwards the self-addressed
// packet back to us as the ack. Read-your-writes through the switch follows:
// once the write is visible, no cached pre-write record survives and no
// in-flight install of one can land.
#ifndef SRC_CORE_CACHE_EVICT_H_
#define SRC_CORE_CACHE_EVICT_H_

#include "src/common/annotations.h"
#include "src/core/server_context.h"
#include "src/sim/task.h"

namespace switchfs::core {

// How the caller proves it holds the exclusive inode lock the evict requires
// (rule evict-requires-lock).
enum class EvictLockWitness {
  // Default: the calling coroutine chain itself holds the lock; the
  // DisciplineChecker verifies this at runtime in debug builds.
  kChain,
  // The lock is held on the caller's behalf by another chain — the rename
  // 2PC commit leg evicts under locks its prepare phase parked in
  // v->txn_locks. The dynamic check is skipped; the call site carries a
  // static suppression naming the external holder.
  kExternal,
};

// No-op unless config->switch_cache is on AND `fp` is in v->cached_fps (the
// owner never installed it, so there is nothing to evict). Retries on the
// insert-ack cadence (cache_evict_timeout x cache_evict_max_attempts); on
// budget exhaustion the write proceeds and cache_evict_exhausted is counted —
// the only way the ack is lost while the evict did not execute is a switch
// outage, which wipes the cache anyway (DataPlane::Reset on recovery).
SFS_REQUIRES_EXCLUSIVE(inode_locks)
sim::Task<void> EvictSwitchCacheEntry(
    ServerContext& ctx, VolPtr v, psw::Fingerprint fp,
    EvictLockWitness witness = EvictLockWitness::kChain);

}  // namespace switchfs::core

#endif  // SRC_CORE_CACHE_EVICT_H_
