// Packs an attribute block (plus the owner's read timestamp) into the
// fixed-width 32-bit-word record the switch metadata cache stores, and back.
// The switch never interprets these words — it copies them register-to-header
// verbatim — so the codec lives entirely on the end hosts: the owner packs on
// install, the client unpacks on a cache hit.
//
// Layout (kCacheRecordWords = 21 words):
//   [0..7]   256-bit inode id (lo/hi word per 64-bit lane)
//   [8]      file type
//   [9]      mode
//   [10..11] size
//   [12..13] ctime   [14..15] mtime   [16..17] atime
//   [18]     nlink
//   [19..20] owner read timestamp (AncestorRef freshness for lookups)
#ifndef SRC_CORE_CACHE_RECORD_H_
#define SRC_CORE_CACHE_RECORD_H_

#include <cstdint>

#include "src/core/types.h"
#include "src/net/packet.h"

namespace switchfs::core {

namespace cache_record_detail {

inline void PutU64(net::CacheRecord& r, int at, uint64_t v) {
  r[static_cast<size_t>(at)] = static_cast<uint32_t>(v);
  r[static_cast<size_t>(at) + 1] = static_cast<uint32_t>(v >> 32);
}

inline uint64_t GetU64(const net::CacheRecord& r, int at) {
  return static_cast<uint64_t>(r[static_cast<size_t>(at)]) |
         (static_cast<uint64_t>(r[static_cast<size_t>(at) + 1]) << 32);
}

}  // namespace cache_record_detail

inline net::CacheRecord PackCacheRecord(const Attr& attr, int64_t read_at) {
  using cache_record_detail::PutU64;
  net::CacheRecord r{};
  for (int i = 0; i < 4; ++i) {
    PutU64(r, i * 2, attr.id.w[static_cast<size_t>(i)]);
  }
  r[8] = static_cast<uint32_t>(attr.type);
  r[9] = attr.mode;
  PutU64(r, 10, attr.size);
  PutU64(r, 12, static_cast<uint64_t>(attr.ctime));
  PutU64(r, 14, static_cast<uint64_t>(attr.mtime));
  PutU64(r, 16, static_cast<uint64_t>(attr.atime));
  r[18] = attr.nlink;
  PutU64(r, 19, static_cast<uint64_t>(read_at));
  return r;
}

inline Attr UnpackCacheRecord(const net::CacheRecord& r, int64_t* read_at) {
  using cache_record_detail::GetU64;
  Attr attr;
  for (int i = 0; i < 4; ++i) {
    attr.id.w[static_cast<size_t>(i)] = GetU64(r, i * 2);
  }
  attr.type = static_cast<FileType>(r[8]);
  attr.mode = r[9];
  attr.size = GetU64(r, 10);
  attr.ctime = static_cast<int64_t>(GetU64(r, 12));
  attr.mtime = static_cast<int64_t>(GetU64(r, 14));
  attr.atime = static_cast<int64_t>(GetU64(r, 16));
  attr.nlink = r[18];
  if (read_at != nullptr) {
    *read_at = static_cast<int64_t>(GetU64(r, 19));
  }
  return attr;
}

}  // namespace switchfs::core

#endif  // SRC_CORE_CACHE_RECORD_H_
