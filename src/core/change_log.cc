#include "src/core/change_log.h"

#include <algorithm>
#include <cassert>

namespace switchfs::core {

void ChangeLogEntry::EncodeTo(Encoder& enc) const {
  enc.PutU64(seq);
  enc.PutI64(timestamp);
  enc.PutU8(static_cast<uint8_t>(op));
  enc.PutString(name);
  enc.PutU8(static_cast<uint8_t>(entry_type));
  enc.PutI64(size_delta);
}

ChangeLogEntry ChangeLogEntry::DecodeFrom(Decoder& dec) {
  ChangeLogEntry e;
  e.seq = dec.GetU64();
  e.timestamp = dec.GetI64();
  e.op = static_cast<OpType>(dec.GetU8());
  e.name = dec.GetString();
  e.entry_type = static_cast<FileType>(dec.GetU8());
  e.size_delta = dec.GetI64();
  return e;
}

uint64_t ChangeLog::Append(ChangeLogEntry entry) {
  entry.seq = next_seq_++;
  max_timestamp_ = std::max(max_timestamp_, entry.timestamp);
  entries_.push_back(std::move(entry));
  return entries_.back().seq;
}

void ChangeLog::Restore(ChangeLogEntry entry) {
  assert(entries_.empty() || entries_.back().seq < entry.seq);
  max_timestamp_ = std::max(max_timestamp_, entry.timestamp);
  next_seq_ = std::max(next_seq_, entry.seq + 1);
  entries_.push_back(std::move(entry));
}

std::vector<uint64_t> ChangeLog::AckUpTo(uint64_t acked_seq) {
  std::vector<uint64_t> lsns;
  while (!entries_.empty() && entries_.front().seq <= acked_seq) {
    if (entries_.front().wal_lsn != 0) {
      lsns.push_back(entries_.front().wal_lsn);
    }
    entries_.pop_front();
  }
  return lsns;
}

size_t ChangeLog::DrainInto(ChangeLog& target) {
  assert(&target != this);  // self-drain would append forever
  const size_t moved = entries_.size();
  while (!entries_.empty()) {
    target.Append(std::move(entries_.front()));  // re-assigns the seq
    entries_.pop_front();
  }
  return moved;
}

int64_t ChangeLog::pending_size_delta() const {
  int64_t total = 0;
  for (const ChangeLogEntry& e : entries_) {
    total += e.size_delta;
  }
  return total;
}

}  // namespace switchfs::core
