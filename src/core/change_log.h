// Per-server, per-directory change-logs (paper §5.2, Fig 7): FIFO queues of
// committed-but-not-yet-applied asynchronous updates to a remote directory,
// plus the consolidated (compacted) attribute state — the maximum timestamp
// and the accumulated size delta — that lets the owner apply N entries with
// one attribute write (§5.3).
//
// Entry sequence numbers are per (source server, directory) and strictly
// FIFO; insertions and removals of the same name are always logged by the
// same server (the (pid, name) hash owner), so applying each source's
// entries in sequence order preserves the commit order of same-name pairs.
#ifndef SRC_CORE_CHANGE_LOG_H_
#define SRC_CORE_CHANGE_LOG_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/types.h"
#include "src/pswitch/fingerprint.h"

namespace switchfs::core {

struct ChangeLogEntry {
  uint64_t seq = 0;        // FIFO position within (source server, directory)
  int64_t timestamp = 0;   // commit time (type-(b) attribute overwrite)
  OpType op = OpType::kCreate;  // kCreate/kUnlink/kMkdir/kRmdir entry ops
  std::string name;
  FileType entry_type = FileType::kFile;
  int64_t size_delta = 0;  // type-(a) delta to the directory size
  uint64_t wal_lsn = 0;    // source-side WAL record to mark applied (not sent)

  void EncodeTo(Encoder& enc) const;
  static ChangeLogEntry DecodeFrom(Decoder& dec);
};

// The change-log of one directory on one (non-owner) server.
class ChangeLog {
 public:
  ChangeLog() = default;
  ChangeLog(const InodeId& dir_id, psw::Fingerprint fp)
      : dir_id_(dir_id), fp_(fp) {}

  // Appends a new entry, assigning the next sequence number. Returns the
  // assigned seq.
  uint64_t Append(ChangeLogEntry entry);
  // Re-inserts a recovered entry with its original seq (WAL replay).
  void Restore(ChangeLogEntry entry);

  // All entries not yet acknowledged by the owner, in FIFO order.
  const std::deque<ChangeLogEntry>& pending() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  // Drops entries with seq <= acked_seq; returns the WAL lsns of the dropped
  // entries so the caller can mark them "applied" (§5.2.2 step 9b).
  std::vector<uint64_t> AckUpTo(uint64_t acked_seq);

  // moved_fp rebind (§5.2 rename race): moves every pending entry into
  // `target` (the directory's change-log under its post-rename fingerprint),
  // re-assigning sequence numbers so they continue target's FIFO — the new
  // owner's high-water mark knows nothing of the old fingerprint's
  // numbering. WAL lsns ride along, so the eventual ack at the new owner
  // still marks the source's commit records applied. Returns the number of
  // entries moved; this log is empty afterwards.
  size_t DrainInto(ChangeLog& target);

  uint64_t last_appended_seq() const { return next_seq_ - 1; }
  // Compacted attribute state (Fig 7): consolidated max timestamp and total
  // size delta across pending entries.
  int64_t max_timestamp() const { return max_timestamp_; }
  int64_t pending_size_delta() const;

  const InodeId& dir_id() const { return dir_id_; }
  psw::Fingerprint fp() const { return fp_; }

 private:
  InodeId dir_id_;
  psw::Fingerprint fp_ = 0;
  uint64_t next_seq_ = 1;
  int64_t max_timestamp_ = 0;
  std::deque<ChangeLogEntry> entries_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_CHANGE_LOG_H_
