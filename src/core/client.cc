#include "src/core/client.h"

#include <utility>

#include "src/common/strings.h"
#include "src/sim/sync.h"
#include "src/tracker/dirty_tracker.h"

namespace switchfs::core {

SwitchFsClient::SwitchFsClient(sim::Simulator* sim, net::Network* net,
                               ClusterContext* cluster,
                               const sim::CostModel* costs, Config config)
    : sim_(sim),
      cluster_(cluster),
      costs_(costs),
      config_(std::move(config)),
      rpc_(sim, net) {
  // The root is always resolvable: its inode is keyed (0, "/").
  CachedDir root;
  root.id = RootId();
  root.fp = FingerprintOf(InodeId{}, "/");
  root.mode = 0755;
  root.ancestors = {AncestorRef{RootId(), 0}};
  cache_.Put("/", root);
}

const MetaResp* SwitchFsClient::UnwrapResponse(const net::MsgPtr& msg) {
  if (msg == nullptr) {
    return nullptr;
  }
  if (msg->type == InsertEnvelope::kType) {
    const auto* env = static_cast<const InsertEnvelope*>(msg.get());
    return net::MsgAs<MetaResp>(env->client_resp);
  }
  return net::MsgAs<MetaResp>(msg);
}

sim::Task<StatusOr<CachedDir>> SwitchFsClient::ResolveDir(
    const std::string& path) {
  co_await sim::Delay(sim_, costs_->cache_lookup);
  if (const CachedDir* hit = cache_.Get(path)) {
    cache_.hits++;
    co_return *hit;
  }
  cache_.misses++;
  if (path == "/") {
    co_return InternalError("root must be cached");
  }
  // Resolve the parent first (recursively through the cache), then look the
  // final component up at its owner.
  auto parent = co_await ResolveDir(std::string(ParentPath(path)));
  if (!parent.ok()) {
    co_return parent.status();
  }
  const std::string name(Basename(path));
  const psw::Fingerprint fp = FingerprintOf(parent->id, name);
  auto req = std::make_shared<LookupReq>();
  req->pid = parent->id;
  req->name = name;
  req->ancestors = parent->ancestors;
  auto r = co_await rpc_.Call(
      cluster_->ServerNode(cluster_->ring().Owner(fp)), req, config_.call);
  if (!r.ok()) {
    co_return r.status();
  }
  const auto* resp = net::MsgAs<LookupResp>(*r);
  if (resp == nullptr) {
    co_return InternalError("bad lookup response");
  }
  if (resp->status == StatusCode::kStaleCache) {
    for (const InodeId& id : resp->stale_ids) {
      cache_.InvalidateId(id);
    }
    co_return StaleCacheError();
  }
  if (resp->status != StatusCode::kOk) {
    co_return Status(resp->status);
  }
  if (!resp->attr.is_dir()) {
    co_return NotADirectoryError(path);
  }
  CachedDir entry;
  entry.id = resp->attr.id;
  entry.fp = fp;
  entry.mode = resp->attr.mode;
  entry.ancestors = parent->ancestors;
  entry.ancestors.push_back(AncestorRef{entry.id, resp->read_at});
  cache_.Put(path, entry);
  co_return entry;
}

sim::Task<StatusOr<PathRef>> SwitchFsClient::ResolveParent(
    const std::string& path) {
  if (!IsValidPath(path) || path == "/") {
    co_return InvalidArgumentError(path);
  }
  auto parent = co_await ResolveDir(std::string(ParentPath(path)));
  if (!parent.ok()) {
    co_return parent.status();
  }
  PathRef ref;
  ref.pid = parent->id;
  ref.parent_fp = parent->fp;
  ref.name = std::string(Basename(path));
  ref.ancestors = parent->ancestors;
  co_return ref;
}

sim::Task<SwitchFsClient::OpResult> SwitchFsClient::Issue(
    OpType op, const std::string& path, bool want_entries) {
  OpResult out;
  co_await sim::Delay(sim_, costs_->client_op_cost);
  const bool dir_read = op == OpType::kStatDir || op == OpType::kReaddir;

  for (int attempt = 0; attempt < config_.max_op_retries; ++attempt) {
    PathRef ref;
    if (path == "/" && dir_read) {
      // The root's inode is keyed (0, "/"). NOTE: assign(n, c) rather than a
      // literal assignment — GCC 12 flags the literal's inlined memcpy into
      // the coroutine frame with a spurious -Wrestrict.
      ref.pid = InodeId{};
      ref.name.assign(1, '/');
      ref.parent_fp = FingerprintOf(InodeId{}, "/");
      ref.ancestors = {AncestorRef{RootId(), 0}};
    } else {
      auto resolved = co_await ResolveParent(path);
      if (!resolved.ok()) {
        if (resolved.status().code() == StatusCode::kStaleCache ||
            resolved.status().code() == StatusCode::kTimeout ||
            resolved.status().code() == StatusCode::kUnavailable) {
          co_await sim::Delay(sim_, config_.retry_backoff);
          continue;
        }
        out.status = resolved.status();
        co_return out;
      }
      ref = *std::move(resolved);
    }

    auto req = std::make_shared<MetaReq>();
    req->op = op;
    req->ref = ref;
    req->want_entries = want_entries;

    const psw::Fingerprint target_fp = FingerprintOf(ref.pid, ref.name);
    const net::NodeId dst =
        cluster_->ServerNode(cluster_->ring().Owner(target_fp));

    net::CallOptions opts = config_.call;
    if (dir_read && config_.dirty_tracker != nullptr) {
      co_await config_.dirty_tracker->ClientPreRead(rpc_, target_fp, *req,
                                                    opts);
    }

    auto r = co_await rpc_.Call(dst, req, opts);
    if (!r.ok()) {
      co_await sim::Delay(sim_, config_.retry_backoff);
      continue;
    }
    const MetaResp* resp = UnwrapResponse(*r);
    if (resp == nullptr) {
      out.status = InternalError("bad response");
      co_return out;
    }
    if (resp->status == StatusCode::kStaleCache) {
      for (const InodeId& id : resp->stale_ids) {
        cache_.InvalidateId(id);
      }
      continue;
    }
    if (resp->status == StatusCode::kUnavailable) {
      co_await sim::Delay(sim_, config_.retry_backoff);
      continue;
    }
    out.status = Status(resp->status);
    out.attr = resp->attr;
    out.entries = resp->entries;
    co_return out;
  }
  out.status = TimeoutError("op retries exhausted");
  co_return out;
}

sim::Task<Status> SwitchFsClient::Create(const std::string& path) {
  OpResult r = co_await Issue(OpType::kCreate, path, false);
  co_return r.status;
}

sim::Task<Status> SwitchFsClient::Unlink(const std::string& path) {
  OpResult r = co_await Issue(OpType::kUnlink, path, false);
  co_return r.status;
}

sim::Task<Status> SwitchFsClient::Mkdir(const std::string& path) {
  OpResult r = co_await Issue(OpType::kMkdir, path, false);
  co_return r.status;
}

sim::Task<Status> SwitchFsClient::Rmdir(const std::string& path) {
  OpResult r = co_await Issue(OpType::kRmdir, path, false);
  if (r.status.ok()) {
    cache_.ErasePath(path);
  }
  co_return r.status;
}

sim::Task<StatusOr<Attr>> SwitchFsClient::Stat(const std::string& path) {
  OpResult r = co_await Issue(OpType::kStat, path, false);
  if (!r.status.ok()) {
    co_return r.status;
  }
  co_return r.attr;
}

sim::Task<StatusOr<Attr>> SwitchFsClient::StatDir(const std::string& path) {
  OpResult r = co_await Issue(OpType::kStatDir, path, false);
  if (!r.status.ok()) {
    co_return r.status;
  }
  co_return r.attr;
}

sim::Task<StatusOr<std::vector<DirEntry>>> SwitchFsClient::Readdir(
    const std::string& path) {
  OpResult r = co_await Issue(OpType::kReaddir, path, true);
  if (!r.status.ok()) {
    co_return r.status;
  }
  co_return r.entries;
}

sim::Task<StatusOr<Attr>> SwitchFsClient::Open(const std::string& path) {
  OpResult r = co_await Issue(OpType::kOpen, path, false);
  if (!r.status.ok()) {
    co_return r.status;
  }
  co_return r.attr;
}

sim::Task<Status> SwitchFsClient::Close(const std::string& path) {
  OpResult r = co_await Issue(OpType::kClose, path, false);
  co_return r.status;
}

sim::Task<Status> SwitchFsClient::Link(const std::string& src,
                                       const std::string& dst) {
  co_await sim::Delay(sim_, costs_->client_op_cost);
  for (int attempt = 0; attempt < config_.max_op_retries; ++attempt) {
    auto s = co_await ResolveParent(src);
    if (!s.ok()) {
      if (s.status().code() == StatusCode::kStaleCache) {
        continue;
      }
      co_return s.status();
    }
    auto d = co_await ResolveParent(dst);
    if (!d.ok()) {
      if (d.status().code() == StatusCode::kStaleCache) {
        continue;
      }
      co_return d.status();
    }
    auto req = std::make_shared<MetaReq>();
    req->op = OpType::kLink;
    req->ref = *d;
    req->ref2 = *s;
    const psw::Fingerprint target_fp = FingerprintOf(d->pid, d->name);
    auto r = co_await rpc_.Call(
        cluster_->ServerNode(cluster_->ring().Owner(target_fp)), req,
        config_.txn_call);
    if (!r.ok()) {
      co_await sim::Delay(sim_, config_.retry_backoff);
      continue;
    }
    const MetaResp* resp = UnwrapResponse(*r);
    if (resp == nullptr) {
      co_return InternalError("bad link response");
    }
    if (resp->status == StatusCode::kStaleCache) {
      for (const InodeId& id : resp->stale_ids) {
        cache_.InvalidateId(id);
      }
      continue;
    }
    co_return Status(resp->status);
  }
  co_return TimeoutError("link retries exhausted");
}

sim::Task<Status> SwitchFsClient::Rename(const std::string& from,
                                         const std::string& to) {
  co_await sim::Delay(sim_, costs_->client_op_cost);
  for (int attempt = 0; attempt < config_.max_op_retries; ++attempt) {
    auto src = co_await ResolveParent(from);
    if (!src.ok()) {
      if (src.status().code() == StatusCode::kStaleCache) {
        continue;
      }
      co_return src.status();
    }
    auto dst = co_await ResolveParent(to);
    if (!dst.ok()) {
      if (dst.status().code() == StatusCode::kStaleCache) {
        continue;
      }
      co_return dst.status();
    }
    auto req = std::make_shared<MetaReq>();
    req->op = OpType::kRename;
    req->ref = *src;
    req->ref2 = *dst;
    auto r = co_await rpc_.Call(
        cluster_->ServerNode(config_.rename_coordinator), req,
        config_.txn_call);
    if (!r.ok()) {
      co_await sim::Delay(sim_, config_.retry_backoff);
      continue;
    }
    const MetaResp* resp = UnwrapResponse(*r);
    if (resp == nullptr) {
      co_return InternalError("bad rename response");
    }
    if (resp->status == StatusCode::kStaleCache) {
      for (const InodeId& id : resp->stale_ids) {
        cache_.InvalidateId(id);
      }
      continue;
    }
    if (resp->status == StatusCode::kOk) {
      // The moved path (and everything cached beneath a moved directory) is
      // stale in our own cache too.
      cache_.ErasePath(from);
    }
    co_return Status(resp->status);
  }
  co_return TimeoutError("rename retries exhausted");
}

}  // namespace switchfs::core
