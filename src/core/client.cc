#include "src/core/client.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "src/common/strings.h"
#include "src/core/batch_stat.h"
#include "src/core/cache_record.h"
#include "src/pswitch/meta_cache.h"
#include "src/sim/sync.h"
#include "src/tracker/dirty_tracker.h"

namespace switchfs::core {

SwitchFsClient::SwitchFsClient(sim::Simulator* sim, net::Network* net,
                               ClusterContext* cluster,
                               const sim::CostModel* costs, Config config)
    : sim_(sim),
      cluster_(cluster),
      costs_(costs),
      config_(std::move(config)),
      rpc_(sim, net) {
  // The root is always resolvable: its inode is keyed (0, "/").
  CachedDir root;
  root.id = RootId();
  root.fp = FingerprintOf(InodeId{}, "/");
  root.mode = 0755;
  root.ancestors = {AncestorRef{RootId(), 0}};
  cache_.Put("/", root);
}

const MetaResp* SwitchFsClient::UnwrapResponse(const net::MsgPtr& msg) {
  if (msg == nullptr) {
    return nullptr;
  }
  if (msg->type == InsertEnvelope::kType) {
    const auto* env = static_cast<const InsertEnvelope*>(msg.get());
    return net::MsgAs<MetaResp>(env->client_resp);
  }
  return net::MsgAs<MetaResp>(msg);
}

sim::Task<StatusOr<CachedDir>> SwitchFsClient::ResolveDir(
    const std::string& path) {
  co_await sim::Delay(sim_, costs_->cache_lookup);
  if (const CachedDir* hit = cache_.Get(path)) {
    cache_.hits++;
    co_return *hit;
  }
  cache_.misses++;
  if (path == "/") {
    co_return InternalError("root must be cached");
  }
  // Resolve the parent first (recursively through the cache), then look the
  // final component up at its owner.
  auto parent = co_await ResolveDir(std::string(ParentPath(path)));
  if (!parent.ok()) {
    co_return parent.status();
  }
  const std::string name(Basename(path));
  const psw::Fingerprint fp = FingerprintOf(parent->id, name);
  auto req = std::make_shared<LookupReq>();
  req->pid = parent->id;
  req->name = name;
  req->ancestors = parent->ancestors;
  net::CallOptions opts = config_.call;
  if (config_.switch_cache) {
    opts.mc.op = net::McOp::kRead;
    opts.mc.fingerprint = fp;
  }
  auto r = co_await rpc_.Call(
      cluster_->ServerNode(cluster_->ring().Owner(fp)), req, opts);
  if (!r.ok()) {
    co_return r.status();
  }
  // A switch cache hit short-circuits the owner entirely: the data plane
  // answered with the packed record. Decode it BEFORE the LookupResp map —
  // MsgAs on the wrong type yields nullptr, not a crash.
  if (const auto* hit = net::MsgAs<psw::CacheHitResp>(*r)) {
    int64_t read_at = 0;
    const Attr attr = UnpackCacheRecord(hit->record, &read_at);
    if (!attr.is_dir()) {
      co_return NotADirectoryError(path);
    }
    CachedDir hit_entry;
    hit_entry.id = attr.id;
    hit_entry.fp = fp;
    hit_entry.mode = attr.mode;
    hit_entry.ancestors = parent->ancestors;
    hit_entry.ancestors.push_back(AncestorRef{hit_entry.id, read_at});
    cache_.Put(path, hit_entry);
    co_return hit_entry;
  }
  const auto* resp = net::MsgAs<LookupResp>(*r);
  if (resp == nullptr) {
    co_return InternalError("bad lookup response");
  }
  if (resp->status == StatusCode::kStaleCache) {
    for (const InodeId& id : resp->stale_ids) {
      cache_.InvalidateId(id);
    }
    co_return StaleCacheError();
  }
  if (resp->status != StatusCode::kOk) {
    co_return Status(resp->status);
  }
  if (!resp->attr.is_dir()) {
    co_return NotADirectoryError(path);
  }
  CachedDir entry;
  entry.id = resp->attr.id;
  entry.fp = fp;
  entry.mode = resp->attr.mode;
  entry.ancestors = parent->ancestors;
  entry.ancestors.push_back(AncestorRef{entry.id, resp->read_at});
  cache_.Put(path, entry);
  co_return entry;
}

sim::Task<StatusOr<PathRef>> SwitchFsClient::ResolveParent(
    const std::string& path) {
  if (!IsValidPath(path) || path == "/") {
    co_return InvalidArgumentError(path);
  }
  auto parent = co_await ResolveDir(std::string(ParentPath(path)));
  if (!parent.ok()) {
    co_return parent.status();
  }
  PathRef ref;
  ref.pid = parent->id;
  ref.parent_fp = parent->fp;
  ref.name = std::string(Basename(path));
  ref.ancestors = parent->ancestors;
  co_return ref;
}

sim::Task<SwitchFsClient::OpResult> SwitchFsClient::IssueOp(
    MetaCall call, const std::string& path) {
  OpResult out;
  co_await sim::Delay(sim_, costs_->client_op_cost);

  for (int attempt = 0; attempt < config_.max_op_retries; ++attempt) {
    PathRef ref;
    if (path == "/" && call.dir_target) {
      // The root's inode is keyed (0, "/"). NOTE: assign(n, c) rather than a
      // literal assignment — GCC 12 flags the literal's inlined memcpy into
      // the coroutine frame with a spurious -Wrestrict.
      ref.pid = InodeId{};
      ref.name.assign(1, '/');
      ref.parent_fp = FingerprintOf(InodeId{}, "/");
      ref.ancestors = {AncestorRef{RootId(), 0}};
    } else {
      auto resolved = co_await ResolveParent(path);
      if (!resolved.ok()) {
        if (resolved.status().code() == StatusCode::kStaleCache ||
            resolved.status().code() == StatusCode::kTimeout ||
            resolved.status().code() == StatusCode::kUnavailable) {
          co_await sim::Delay(sim_, config_.retry_backoff);
          continue;
        }
        out.status = resolved.status();
        co_return out;
      }
      ref = *std::move(resolved);
    }

    auto req = std::make_shared<MetaReq>();
    req->op = call.op;
    req->ref = ref;
    req->want_entries = call.want_entries;
    req->mode = call.mode;
    req->delta = call.delta;

    const psw::Fingerprint target_fp = FingerprintOf(ref.pid, ref.name);
    const net::NodeId dst =
        cluster_->ServerNode(cluster_->ring().Owner(target_fp));

    net::CallOptions opts =
        call.op == OpType::kOpenDir ? config_.opendir_call : config_.call;
    if (config_.switch_cache &&
        (call.op == OpType::kStat || call.op == OpType::kOpen ||
         call.op == OpType::kStatDir)) {
      opts.mc.op = net::McOp::kRead;
      opts.mc.fingerprint = target_fp;
    }
    if (call.pre_read && config_.dirty_tracker != nullptr) {
      co_await config_.dirty_tracker->ClientPreRead(rpc_, target_fp, *req,
                                                    opts);
    }

    auto r = co_await rpc_.Call(dst, req, opts);
    if (!r.ok()) {
      co_await sim::Delay(sim_, config_.retry_backoff);
      continue;
    }
    // Switch cache hit: the data plane synthesized the reply from its way
    // registers; there is no MetaResp to unwrap.
    if (const auto* hit = net::MsgAs<psw::CacheHitResp>(*r)) {
      out.status = OkStatus();
      out.attr = UnpackCacheRecord(hit->record, nullptr);
      out.target_fp = target_fp;
      co_return out;
    }
    const MetaResp* resp = UnwrapResponse(*r);
    if (resp == nullptr) {
      out.status = InternalError("bad response");
      co_return out;
    }
    if (resp->status == StatusCode::kStaleCache) {
      for (const InodeId& id : resp->stale_ids) {
        cache_.InvalidateId(id);
      }
      continue;
    }
    if (resp->status == StatusCode::kUnavailable) {
      co_await sim::Delay(sim_, config_.retry_backoff);
      continue;
    }
    out.status = Status(resp->status);
    out.attr = resp->attr;
    out.entries = resp->entries;
    out.dir_session = resp->dir_session;
    out.next_cookie = resp->next_cookie;
    out.at_end = resp->at_end;
    out.target_fp = target_fp;
    co_return out;
  }
  out.status = TimeoutError("op retries exhausted");
  co_return out;
}

sim::Task<SwitchFsClient::OpResult> SwitchFsClient::IssueSessionOp(
    OpType op, psw::Fingerprint target_fp, uint64_t session, uint64_t cookie) {
  OpResult out;
  co_await sim::Delay(sim_, costs_->client_op_cost);
  const net::NodeId dst =
      cluster_->ServerNode(cluster_->ring().Owner(target_fp));
  // Transport-level retries only: the session either answers or is gone.
  // kUnavailable (owner recovering) maps to kStaleHandle — the recovering
  // incarnation wiped its session table, so the stream cannot resume.
  for (int attempt = 0; attempt < config_.max_op_retries; ++attempt) {
    auto req = std::make_shared<MetaReq>();
    req->op = op;
    req->dir_session = session;
    req->cookie = cookie;
    auto r = co_await rpc_.Call(dst, req, config_.call);
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kTimeout) {
        out.status = StaleHandleError("dir session unreachable");
        co_return out;
      }
      co_await sim::Delay(sim_, config_.retry_backoff);
      continue;
    }
    const MetaResp* resp = UnwrapResponse(*r);
    if (resp == nullptr) {
      out.status = InternalError("bad response");
      co_return out;
    }
    if (resp->status == StatusCode::kUnavailable) {
      out.status = StaleHandleError("owner recovering; session lost");
      co_return out;
    }
    out.status = Status(resp->status);
    out.attr = resp->attr;
    out.entries = resp->entries;
    out.next_cookie = resp->next_cookie;
    out.at_end = resp->at_end;
    co_return out;
  }
  out.status = TimeoutError("session op retries exhausted");
  co_return out;
}

sim::Task<Status> SwitchFsClient::Create(const std::string& path) {
  OpResult r = co_await IssueOp(MetaCall::Mutation(OpType::kCreate), path);
  co_return r.status;
}

sim::Task<Status> SwitchFsClient::Unlink(const std::string& path) {
  OpResult r = co_await IssueOp(MetaCall::Mutation(OpType::kUnlink), path);
  co_return r.status;
}

sim::Task<Status> SwitchFsClient::Mkdir(const std::string& path) {
  OpResult r = co_await IssueOp(MetaCall::Mutation(OpType::kMkdir), path);
  co_return r.status;
}

sim::Task<Status> SwitchFsClient::Rmdir(const std::string& path) {
  OpResult r = co_await IssueOp(MetaCall::Mutation(OpType::kRmdir), path);
  if (r.status.ok()) {
    cache_.ErasePath(path);
  }
  co_return r.status;
}

sim::Task<StatusOr<Attr>> SwitchFsClient::Stat(const std::string& path) {
  OpResult r = co_await IssueOp(MetaCall::FileRead(OpType::kStat), path);
  if (!r.status.ok()) {
    co_return r.status;
  }
  co_return r.attr;
}

sim::Task<StatusOr<Attr>> SwitchFsClient::StatDir(const std::string& path) {
  OpResult r = co_await IssueOp(
      MetaCall::DirRead(OpType::kStatDir, /*want_entries=*/false), path);
  if (!r.status.ok()) {
    co_return r.status;
  }
  co_return r.attr;
}

sim::Task<StatusOr<std::vector<DirEntry>>> SwitchFsClient::ReaddirMonolithic(
    const std::string& path) {
  OpResult r = co_await IssueOp(
      MetaCall::DirRead(OpType::kReaddir, /*want_entries=*/true), path);
  if (!r.status.ok()) {
    co_return r.status;
  }
  co_return r.entries;
}

sim::Task<StatusOr<Attr>> SwitchFsClient::Open(const std::string& path) {
  OpResult r = co_await IssueOp(MetaCall::FileRead(OpType::kOpen), path);
  if (!r.status.ok()) {
    co_return r.status;
  }
  co_return r.attr;
}

sim::Task<Status> SwitchFsClient::Close(const std::string& path) {
  OpResult r = co_await IssueOp(MetaCall::FileRead(OpType::kClose), path);
  co_return r.status;
}

sim::Task<Status> SwitchFsClient::SetAttr(const std::string& path,
                                          const AttrDelta& delta) {
  OpResult r = co_await IssueOp(MetaCall::AttrUpdate(delta), path);
  co_return r.status;
}

// ---------------------------------------------------------------------------
// Directory streams (MetadataService v2)
// ---------------------------------------------------------------------------

sim::Task<StatusOr<DirHandle>> SwitchFsClient::OpenDir(
    const std::string& path) {
  // OpenDir is the consistency point of the stream: the owner aggregates
  // under the agg gate (dirty-tracker pre-read hook attached) and pins the
  // snapshot session the pages will be served from.
  MetaCall call = MetaCall::DirRead(OpType::kOpenDir, /*want_entries=*/false);
  OpResult r = co_await IssueOp(call, path);
  if (!r.status.ok()) {
    co_return r.status;
  }
  OpenDirState state;
  state.path = path;
  state.dir = r.attr.id;
  state.session = r.dir_session;
  // Pin the routing to the fingerprint the open was actually sent by: the
  // session lives at that owner, and a re-resolution here could diverge
  // (concurrent rename/invalidation) and point every page at the wrong
  // server.
  state.target_fp = r.target_fp;
  DirHandle handle;
  handle.id = cache_.PutHandle(std::move(state));
  co_return handle;
}

sim::Task<StatusOr<DirPage>> SwitchFsClient::ReaddirPage(
    const DirHandle& handle, uint64_t cookie) {
  OpenDirState* state = cache_.GetHandle(handle.id);
  if (state == nullptr) {
    co_return InvalidArgumentError("unknown dir handle");
  }
  OpResult r = co_await IssueSessionOp(OpType::kReaddirPage, state->target_fp,
                                       state->session, cookie);
  if (!r.status.ok()) {
    co_return r.status;
  }
  DirPage page;
  page.entries = std::move(r.entries);
  page.next_cookie = r.next_cookie;
  page.at_end = r.at_end;
  co_return page;
}

sim::Task<Status> SwitchFsClient::CloseDir(const DirHandle& handle) {
  OpenDirState* state = cache_.GetHandle(handle.id);
  if (state == nullptr) {
    co_return OkStatus();  // already closed (idempotent)
  }
  const psw::Fingerprint target_fp = state->target_fp;
  const uint64_t session = state->session;
  cache_.EraseHandle(handle.id);
  // Best-effort server-side release; the TTL watchdog reclaims the session
  // anyway if this notification is lost.
  OpResult r = co_await IssueSessionOp(OpType::kCloseDir, target_fp, session,
                                       /*cookie=*/0);
  (void)r;
  co_return OkStatus();
}

sim::Task<void> SwitchFsClient::FetchPage(DirHandle handle, uint64_t cookie,
                                          std::shared_ptr<PageSlot> slot) {
  slot->result = co_await ReaddirPage(handle, cookie);
  slot->done.Set(0);
}

sim::Task<StatusOr<std::vector<DirEntry>>> SwitchFsClient::Readdir(
    const std::string& path) {
  // Pipelined drain: keep a window of page RPCs in flight with sequential
  // cookies. The owner serves page p, advances the stream state, and only
  // then pays for marshalling — so page p+1's scan overlaps page p's
  // marshal on another core, and the link is never idle between pages.
  // Speculation is safe because SwitchFS pages are served (and re-served)
  // idempotently by sequence number; a stale handle on ANY in-flight page
  // restarts the whole scan, exactly like the base implementation.
  const int window = std::max(1, config_.prefetch_pages);
  constexpr int kMaxRestarts = 4;
  for (int attempt = 0; attempt <= kMaxRestarts; ++attempt) {
    auto handle = co_await OpenDir(path);
    if (!handle.ok()) {
      co_return handle.status();
    }
    std::vector<DirEntry> all;
    std::deque<std::shared_ptr<PageSlot>> inflight;
    uint64_t next_cookie = kDirStreamStart;
    for (int i = 0; i < window; ++i) {
      auto slot = std::make_shared<PageSlot>(sim_);
      sim::Spawn(FetchPage(*handle, next_cookie++, slot));
      inflight.push_back(std::move(slot));
    }
    bool stale = false;
    Status fail = OkStatus();
    bool done = false;
    while (!done && !inflight.empty()) {
      std::shared_ptr<PageSlot> slot = inflight.front();
      inflight.pop_front();
      co_await slot->done.Wait();
      if (!slot->result.ok()) {
        if (slot->result.status().code() == StatusCode::kStaleHandle) {
          stale = true;
        } else {
          fail = slot->result.status();
        }
        break;
      }
      DirPage& page = *slot->result;
      for (DirEntry& e : page.entries) {
        all.push_back(std::move(e));
      }
      if (page.at_end) {
        done = true;
        break;
      }
      auto next = std::make_shared<PageSlot>(sim_);
      sim::Spawn(FetchPage(*handle, next_cookie++, next));
      inflight.push_back(std::move(next));
    }
    // Join the remaining speculative fetches before touching the handle:
    // past the end they resolve as cheap empty tail pages, after a failure
    // they resolve with the same verdict. Either way the handle must not be
    // closed (or the scan restarted) under them.
    while (!inflight.empty()) {
      co_await inflight.front()->done.Wait();
      inflight.pop_front();
    }
    (void)co_await CloseDir(*handle);
    if (done) {
      co_return all;
    }
    if (!stale) {
      co_return fail;
    }
  }
  co_return StaleHandleError("readdir restarts exhausted");
}

// ---------------------------------------------------------------------------
// Batched lookups (MetadataService v2)
// ---------------------------------------------------------------------------

sim::Task<std::vector<StatusOr<Attr>>> SwitchFsClient::BatchStat(
    const std::vector<std::string>& paths) {
  co_await sim::Delay(sim_, costs_->client_op_cost);
  // Targets group by the (pid, name) hash owner — the read-path mirror of
  // the per-owner push batching. The scaffolding (grouping, multi-target
  // RPCs, per-target verdicts, retries) is shared with the baselines.
  co_return co_await RunBatchStat(
      sim_, rpc_, cache_, paths, OpType::kBatchStat, /*scattered_hint=*/false,
      config_.max_op_retries, config_.retry_backoff, config_.call,
      [this](const std::string& path) -> sim::Task<StatusOr<BatchTarget>> {
        auto ref = co_await ResolveParent(path);
        if (!ref.ok()) {
          co_return ref.status();
        }
        BatchTarget target;
        target.server =
            cluster_->ring().Owner(FingerprintOf(ref->pid, ref->name));
        target.ref = *std::move(ref);
        co_return target;
      },
      [this](uint32_t server) { return cluster_->ServerNode(server); });
}

sim::Task<std::vector<StatusOr<Attr>>> SwitchFsClient::BatchStatDir(
    const std::vector<std::string>& paths) {
  co_await sim::Delay(sim_, costs_->client_op_cost);
  // Directory flavor: same grouping and retry scaffolding, but the server
  // runs the per-target agg-gate dance before each stat, so every returned
  // attr reflects all updates committed before the call. A directory is
  // owned by its own (pid, name) fingerprint, so the routing is identical.
  // Gate deadline caveat: an aggregation per target can push a large batch
  // past the tight default call deadline, so reuse the OpenDir-scale one.
  co_return co_await RunBatchStat(
      sim_, rpc_, cache_, paths, OpType::kBatchStatDir,
      config_.batch_stat_dir_hint, config_.max_op_retries,
      config_.retry_backoff, config_.opendir_call,
      [this](const std::string& path) -> sim::Task<StatusOr<BatchTarget>> {
        auto ref = co_await ResolveParent(path);
        if (!ref.ok()) {
          co_return ref.status();
        }
        BatchTarget target;
        target.server =
            cluster_->ring().Owner(FingerprintOf(ref->pid, ref->name));
        target.ref = *std::move(ref);
        co_return target;
      },
      [this](uint32_t server) { return cluster_->ServerNode(server); });
}

// ---------------------------------------------------------------------------
// Bulk insert (MetadataService v2)
// ---------------------------------------------------------------------------

sim::Task<void> SwitchFsClient::SendBulkChunk(
    std::string dir_path, InodeId dir, psw::Fingerprint parent_fp,
    uint32_t owner, const std::vector<std::string>& names,
    std::vector<size_t> idxs, std::vector<Status>* out) {
  for (int attempt = 0; attempt < config_.max_op_retries; ++attempt) {
    // Re-resolve the directory each attempt for fresh ancestors (the
    // identity — pid and change-log fingerprint — is pinned by the handle).
    auto resolved = co_await ResolveDir(dir_path);
    if (!resolved.ok()) {
      if (resolved.status().code() == StatusCode::kStaleCache ||
          resolved.status().code() == StatusCode::kTimeout ||
          resolved.status().code() == StatusCode::kUnavailable) {
        co_await sim::Delay(sim_, config_.retry_backoff);
        continue;
      }
      for (size_t i : idxs) {
        (*out)[i] = resolved.status();
      }
      co_return;
    }
    auto req = std::make_shared<MetaReq>();
    req->op = OpType::kBulkInsert;
    req->ref.pid = dir;
    req->ref.parent_fp = parent_fp;
    req->ref.ancestors = resolved->ancestors;
    req->bulk_names.reserve(idxs.size());
    for (size_t i : idxs) {
      req->bulk_names.push_back(names[i]);
    }
    auto r = co_await rpc_.Call(cluster_->ServerNode(owner), req, config_.call);
    if (!r.ok()) {
      co_await sim::Delay(sim_, config_.retry_backoff);
      continue;
    }
    const MetaResp* resp = UnwrapResponse(*r);
    if (resp == nullptr) {
      for (size_t i : idxs) {
        (*out)[i] = InternalError("bad bulk response");
      }
      co_return;
    }
    if (resp->status == StatusCode::kStaleCache) {
      for (const InodeId& id : resp->stale_ids) {
        cache_.InvalidateId(id);
      }
      continue;
    }
    if (resp->status == StatusCode::kUnavailable) {
      co_await sim::Delay(sim_, config_.retry_backoff);
      continue;
    }
    if (resp->status != StatusCode::kOk) {
      for (size_t i : idxs) {
        (*out)[i] = Status(resp->status);
      }
      co_return;
    }
    for (size_t k = 0; k < idxs.size(); ++k) {
      (*out)[idxs[k]] = k < resp->batch_status.size()
                            ? Status(resp->batch_status[k])
                            : InternalError("truncated bulk verdicts");
    }
    co_return;
  }
  for (size_t i : idxs) {
    (*out)[i] = TimeoutError("bulk insert retries exhausted");
  }
}

sim::Task<std::vector<Status>> SwitchFsClient::BulkInsert(
    const DirHandle& handle, const std::vector<std::string>& names) {
  co_await sim::Delay(sim_, costs_->client_op_cost);
  std::vector<Status> out(names.size(), OkStatus());
  if (names.empty()) {
    co_return out;
  }
  OpenDirState* state = cache_.GetHandle(handle.id);
  if (state == nullptr) {
    for (Status& s : out) {
      s = InvalidArgumentError("unknown dir handle");
    }
    co_return out;
  }
  // Copy the routing identity out of the handle table: the state pointer
  // must not be held across a suspension.
  const std::string dir_path = state->path;
  const InodeId dir = state->dir;
  const psw::Fingerprint parent_fp = state->target_fp;

  // The create-path mirror of BatchStat: group names by the owner of their
  // (dir, name) hash, then chunk each group to the transport page budget —
  // one multi-entry RPC (and one server-side WAL record) per chunk instead
  // of one round trip per name.
  std::map<uint32_t, std::vector<size_t>> by_owner;
  for (size_t i = 0; i < names.size(); ++i) {
    by_owner[cluster_->ring().Owner(FingerprintOf(dir, names[i]))].push_back(i);
  }
  for (auto& [owner, idxs] : by_owner) {
    size_t start = 0;
    while (start < idxs.size()) {
      size_t used = 0;
      size_t end = start;
      while (end < idxs.size() &&
             PageHasRoom(used, static_cast<int>(end - start),
                         DirEntryWireSize(names[idxs[end]]), config_.mtu_bytes,
                         config_.mtu_entries)) {
        used += DirEntryWireSize(names[idxs[end]]);
        ++end;
      }
      co_await SendBulkChunk(
          dir_path, dir, parent_fp, owner, names,
          std::vector<size_t>(idxs.begin() + static_cast<ptrdiff_t>(start),
                              idxs.begin() + static_cast<ptrdiff_t>(end)),
          &out);
      start = end;
    }
  }
  co_return out;
}

sim::Task<Status> SwitchFsClient::Link(const std::string& src,
                                       const std::string& dst) {
  co_await sim::Delay(sim_, costs_->client_op_cost);
  for (int attempt = 0; attempt < config_.max_op_retries; ++attempt) {
    auto s = co_await ResolveParent(src);
    if (!s.ok()) {
      if (s.status().code() == StatusCode::kStaleCache) {
        continue;
      }
      co_return s.status();
    }
    auto d = co_await ResolveParent(dst);
    if (!d.ok()) {
      if (d.status().code() == StatusCode::kStaleCache) {
        continue;
      }
      co_return d.status();
    }
    auto req = std::make_shared<MetaReq>();
    req->op = OpType::kLink;
    req->ref = *d;
    req->ref2 = *s;
    const psw::Fingerprint target_fp = FingerprintOf(d->pid, d->name);
    auto r = co_await rpc_.Call(
        cluster_->ServerNode(cluster_->ring().Owner(target_fp)), req,
        config_.txn_call);
    if (!r.ok()) {
      co_await sim::Delay(sim_, config_.retry_backoff);
      continue;
    }
    const MetaResp* resp = UnwrapResponse(*r);
    if (resp == nullptr) {
      co_return InternalError("bad link response");
    }
    if (resp->status == StatusCode::kStaleCache) {
      for (const InodeId& id : resp->stale_ids) {
        cache_.InvalidateId(id);
      }
      continue;
    }
    co_return Status(resp->status);
  }
  co_return TimeoutError("link retries exhausted");
}

sim::Task<Status> SwitchFsClient::Rename(const std::string& from,
                                         const std::string& to) {
  co_await sim::Delay(sim_, costs_->client_op_cost);
  for (int attempt = 0; attempt < config_.max_op_retries; ++attempt) {
    auto src = co_await ResolveParent(from);
    if (!src.ok()) {
      if (src.status().code() == StatusCode::kStaleCache) {
        continue;
      }
      co_return src.status();
    }
    auto dst = co_await ResolveParent(to);
    if (!dst.ok()) {
      if (dst.status().code() == StatusCode::kStaleCache) {
        continue;
      }
      co_return dst.status();
    }
    auto req = std::make_shared<MetaReq>();
    req->op = OpType::kRename;
    req->ref = *src;
    req->ref2 = *dst;
    auto r = co_await rpc_.Call(
        cluster_->ServerNode(config_.rename_coordinator), req,
        config_.txn_call);
    if (!r.ok()) {
      co_await sim::Delay(sim_, config_.retry_backoff);
      continue;
    }
    const MetaResp* resp = UnwrapResponse(*r);
    if (resp == nullptr) {
      co_return InternalError("bad rename response");
    }
    if (resp->status == StatusCode::kStaleCache) {
      for (const InodeId& id : resp->stale_ids) {
        cache_.InvalidateId(id);
      }
      continue;
    }
    if (resp->status == StatusCode::kOk) {
      // The moved path (and everything cached beneath a moved directory) is
      // stale in our own cache too.
      cache_.ErasePath(from);
    }
    co_return Status(resp->status);
  }
  co_return TimeoutError("rename retries exhausted");
}

}  // namespace switchfs::core
