// LibFS: the SwitchFS client library (paper §4.2). Resolves paths through a
// directory-metadata cache, routes each operation to the owner of the target
// (pid, name) hash, attaches dirty-set queries to directory reads, unwraps
// insert-ack envelopes, and retries operations bounced by stale-cache
// invalidations.
#ifndef SRC_CORE_CLIENT_H_
#define SRC_CORE_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/client_cache.h"
#include "src/core/messages.h"
#include "src/core/metadata_service.h"
#include "src/core/server.h"
#include "src/net/rpc.h"
#include "src/sim/sync.h"

namespace switchfs::tracker {
class DirtyTracker;  // src/tracker/dirty_tracker.h
}  // namespace switchfs::tracker

namespace switchfs::core {

class SwitchFsClient : public MetadataService {
 public:
  struct Config {
    // The cluster's dirty-set tracker; directory reads run its pre-read hook
    // (in-network query header or tracker pre-query). Null skips the hook.
    tracker::DirtyTracker* dirty_tracker = nullptr;
    uint32_t rename_coordinator = 0;
    int max_op_retries = 12;
    sim::SimTime retry_backoff = sim::Microseconds(200);
    net::CallOptions call = [] {
      net::CallOptions o;
      o.timeout = sim::Milliseconds(2);
      o.max_attempts = 8;
      return o;
    }();
    // Renames are multi-RPC distributed transactions; a premature client
    // timeout spawns a duplicate transaction that contends with the original
    // (locks, EEXIST aborts), so their deadline is transaction-scale.
    net::CallOptions txn_call = [] {
      net::CallOptions o;
      o.timeout = sim::Milliseconds(50);
      o.max_attempts = 3;
      return o;
    }();
    // OpenDir is the directory stream's one heavyweight op: the owner
    // aggregates and scans the whole entry list into the session snapshot,
    // which is O(directory) work (a million-entry directory scans for
    // ~140 ms of simulated time). Pages stay on the tight `call` deadline —
    // they are mtu-bounded — but the open needs a directory-scale one.
    net::CallOptions opendir_call = [] {
      net::CallOptions o;
      o.timeout = sim::Seconds(2);
      o.max_attempts = 3;
      return o;
    }();
    // Depth of the Readdir prefetch pipeline: how many page RPCs are kept in
    // flight at once. SwitchFS page cookies are sequence numbers, so the
    // client can speculatively request page p+1..p+k while consuming page p;
    // the owner overlaps their scans across its cores. 1 disables prefetch.
    int prefetch_pages = 3;
    // Transport page budget for BulkInsert chunking — must match the
    // servers' mtu_bytes / mtu_entries (cluster MakeClient copies them).
    int mtu_bytes = 1400;
    int mtu_entries = 128;
    // In-switch metadata read cache: stamp lookup/stat requests with an
    // mc.kRead header so the data plane can answer hits without touching the
    // owner (cluster MakeClient copies the servers' setting).
    bool switch_cache = false;
    // BatchStatDir: stamp scattered_hint on the multi-target requests so the
    // owner runs the aggregation dance per directory target. Required for
    // tracker modes whose dirty test is request-scoped (the batch cannot
    // pre-query N fingerprints in one packet); owner-tracker clusters clear
    // it and rely on the owner's precise local set (MakeClient sets this).
    bool batch_stat_dir_hint = true;
  };

  SwitchFsClient(sim::Simulator* sim, net::Network* net,
                 ClusterContext* cluster, const sim::CostModel* costs,
                 Config config);

  // MetadataService:
  sim::Task<Status> Create(const std::string& path) override;
  sim::Task<Status> Unlink(const std::string& path) override;
  sim::Task<Status> Mkdir(const std::string& path) override;
  sim::Task<Status> Rmdir(const std::string& path) override;
  sim::Task<StatusOr<Attr>> Stat(const std::string& path) override;
  sim::Task<StatusOr<Attr>> StatDir(const std::string& path) override;
  sim::Task<StatusOr<Attr>> Open(const std::string& path) override;
  sim::Task<Status> Close(const std::string& path) override;
  sim::Task<Status> SetAttr(const std::string& path,
                            const AttrDelta& delta) override;
  sim::Task<StatusOr<DirHandle>> OpenDir(const std::string& path) override;
  sim::Task<StatusOr<DirPage>> ReaddirPage(const DirHandle& handle,
                                           uint64_t cookie) override;
  sim::Task<Status> CloseDir(const DirHandle& handle) override;
  sim::Task<std::vector<StatusOr<Attr>>> BatchStat(
      const std::vector<std::string>& paths) override;
  sim::Task<std::vector<StatusOr<Attr>>> BatchStatDir(
      const std::vector<std::string>& paths) override;
  sim::Task<std::vector<Status>> BulkInsert(
      const DirHandle& handle, const std::vector<std::string>& names) override;
  sim::Task<Status> Rename(const std::string& from,
                           const std::string& to) override;
  // Pipelined whole-directory listing: overrides the base one-page-at-a-time
  // drain with a `prefetch_pages`-deep window of speculative page RPCs.
  // Pages are served idempotently by sequence number, so speculation is
  // safe; a kStaleHandle on any page restarts the scan like the base path.
  sim::Task<StatusOr<std::vector<DirEntry>>> Readdir(
      const std::string& path) override;
  // Whole-directory listing in ONE RPC (the pre-v2 shape). Kept as the A/B
  // lever for bench_readdir_paging and for recovery tooling; the inherited
  // MetadataService::Readdir pages through OpenDir/ReaddirPage instead.
  sim::Task<StatusOr<std::vector<DirEntry>>> ReaddirMonolithic(
      const std::string& path);
  // Hard link (§5.5): `dst` becomes another name for `src`'s file. Not part
  // of MetadataService — the baselines do not implement hard links.
  sim::Task<Status> Link(const std::string& src, const std::string& dst);

  ClientCache& cache() { return cache_; }
  net::RpcEndpoint& rpc() { return rpc_; }

  // Seeds a cache entry (bench warm-up fast path).
  void WarmCache(const std::string& path, const CachedDir& entry) {
    cache_.Put(path, entry);
  }

 private:
  // Typed request description — the v2 replacement for the old
  // Issue(OpType, path, want_entries) funnel. Call sites build the request
  // through the named factories; IssueOp owns resolution, routing, and the
  // stale-cache/transport retry loop for every path-addressed op.
  struct MetaCall {
    OpType op = OpType::kStat;
    bool dir_target = false;    // the path itself is the target directory
    bool want_entries = false;  // monolithic readdir payload
    bool pre_read = false;      // run the dirty-tracker pre-read hook
    uint32_t mode = 0644;
    AttrDelta delta;

    static MetaCall Mutation(OpType op, uint32_t mode = 0644) {
      MetaCall c;
      c.op = op;
      c.mode = mode;
      return c;
    }
    static MetaCall FileRead(OpType op) {
      MetaCall c;
      c.op = op;
      return c;
    }
    static MetaCall DirRead(OpType op, bool want_entries) {
      MetaCall c;
      c.op = op;
      c.dir_target = true;
      c.want_entries = want_entries;
      c.pre_read = true;
      return c;
    }
    static MetaCall AttrUpdate(const AttrDelta& delta) {
      MetaCall c;
      c.op = OpType::kSetAttr;
      c.delta = delta;
      return c;
    }
  };

  struct OpResult {
    Status status;
    Attr attr;
    std::vector<DirEntry> entries;
    uint64_t dir_session = 0;        // kOpenDir
    uint64_t next_cookie = 0;        // kReaddirPage
    bool at_end = false;             // kReaddirPage
    psw::Fingerprint target_fp = 0;  // the fingerprint the op was routed by
  };

  // Resolves the parent directory of `path` into a PathRef. May issue
  // lookups; bounces stale cache entries internally.
  sim::Task<StatusOr<PathRef>> ResolveParent(const std::string& path);
  // Resolves one directory path to a cache entry (see ResolveParent).
  sim::Task<StatusOr<CachedDir>> ResolveDir(const std::string& path);

  // One prefetched page in flight: FetchPage runs detached and joins the
  // Readdir loop through the slot's completion event.
  struct PageSlot {
    explicit PageSlot(sim::Simulator* sim)
        : result(InternalError("pending")), done(sim) {}
    StatusOr<DirPage> result;
    sim::OneShot<int> done;
  };
  sim::Task<void> FetchPage(DirHandle handle, uint64_t cookie,
                            std::shared_ptr<PageSlot> slot);
  // One BulkInsert chunk (one owner, one page-fill of names): builds the
  // multi-entry request, runs the stale-cache/transport retry loop, and
  // writes the per-name verdicts into `out` at positions `idxs`.
  sim::Task<void> SendBulkChunk(std::string dir_path, InodeId dir,
                                psw::Fingerprint parent_fp, uint32_t owner,
                                const std::vector<std::string>& names,
                                std::vector<size_t> idxs,
                                std::vector<Status>* out);

  sim::Task<OpResult> IssueOp(MetaCall call, const std::string& path);
  // Session-addressed ops (ReaddirPage / CloseDir): no path resolution —
  // routed straight to the owner pinned in the handle state.
  sim::Task<OpResult> IssueSessionOp(OpType op, psw::Fingerprint target_fp,
                                     uint64_t session, uint64_t cookie);
  // Unwraps InsertEnvelope responses and maps the response message.
  static const MetaResp* UnwrapResponse(const net::MsgPtr& msg);

  sim::Simulator* sim_;
  ClusterContext* cluster_;
  const sim::CostModel* costs_;
  Config config_;
  net::RpcEndpoint rpc_;
  ClientCache cache_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_CLIENT_H_
