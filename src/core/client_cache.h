// Client-side metadata cache (paper §4.2): caches only *directory* metadata
// (id, permissions, fingerprint) keyed by path, to accelerate path
// resolution. Entries record the full ancestor-id chain so that a server-side
// invalidation of any ancestor drops every dependent entry.
#ifndef SRC_CORE_CLIENT_CACHE_H_
#define SRC_CORE_CLIENT_CACHE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/annotations.h"
#include "src/core/messages.h"
#include "src/core/types.h"
#include "src/pswitch/fingerprint.h"

namespace switchfs::core {

struct CachedDir {
  InodeId id;
  psw::Fingerprint fp = 0;   // fingerprint of the directory's (pid, name)
  uint32_t mode = 0755;
  // Every component on the path to this directory, inclusive, with the
  // server-side read time of each entry (invalidation ordering).
  std::vector<AncestorRef> ancestors;
};

// Client-side state behind one DirHandle (MetadataService v2): where the
// owner-side session lives and how to route page requests back to it. The
// routing is pinned at OpenDir — the session stays at the server that built
// the snapshot even if the directory is renamed away mid-stream.
struct OpenDirState {
  std::string path;
  InodeId dir;                     // directory id (observability)
  psw::Fingerprint target_fp = 0;  // SwitchFS: owner routing of the (pid, name)
  uint32_t server = 0;             // baselines: the dir's home-server index
  uint64_t session = 0;            // owner-side session id
};

class SFS_SUSPENSION_SHARED ClientCache {
 public:
  const CachedDir* Get(const std::string& path) const {
    auto it = map_.find(path);
    return it == map_.end() ? nullptr : &it->second;
  }

  void Put(const std::string& path, CachedDir entry) {
    map_[path] = std::move(entry);
  }

  void ErasePath(const std::string& path) { map_.erase(path); }

  // Drops every entry whose ancestor chain contains `id` (the entry itself
  // included). Returns the number of dropped entries.
  size_t InvalidateId(const InodeId& id) {
    size_t dropped = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      bool hit = false;
      for (const AncestorRef& a : it->second.ancestors) {
        if (a.id == id) {
          hit = true;
          break;
        }
      }
      if (hit) {
        it = map_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

  void Clear() { map_.clear(); }
  size_t size() const { return map_.size(); }

  // --- directory-handle table (MetadataService v2) ---
  uint64_t PutHandle(OpenDirState state) {
    const uint64_t id = next_handle_++;
    handles_.emplace(id, std::move(state));
    return id;
  }
  OpenDirState* GetHandle(uint64_t id) {
    auto it = handles_.find(id);
    return it == handles_.end() ? nullptr : &it->second;
  }
  void EraseHandle(uint64_t id) { handles_.erase(id); }
  size_t handle_count() const { return handles_.size(); }

  uint64_t hits = 0;
  uint64_t misses = 0;

 private:
  std::unordered_map<std::string, CachedDir> map_;
  std::unordered_map<uint64_t, OpenDirState> handles_;
  uint64_t next_handle_ = 1;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_CLIENT_CACHE_H_
