#include "src/core/cluster.h"

#include <cassert>

#include "src/common/strings.h"
#include "src/tracker/dedicated_tracker.h"
#include "src/tracker/owner_tracker.h"
#include "src/tracker/replicated_tracker.h"
#include "src/tracker/switch_tracker.h"
#include "src/tracker/tracker_server.h"

namespace switchfs::core {

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  if (config_.shared_sim != nullptr) {
    sim_ = config_.shared_sim;  // multi-cluster world: one shared clock
  } else {
    owned_sim_ = std::make_unique<sim::Simulator>();
    sim_ = owned_sim_.get();
  }
  net_ = std::make_unique<net::Network>(sim_, &config_.costs, config_.seed);

  if (config_.tracker == TrackerMode::kSwitch) {
    config_.switch_config.cache_serve_delay = config_.costs.switch_cache_serve;
    data_plane_ = std::make_unique<psw::DataPlane>(config_.switch_config);
    net_->SetSwitch(data_plane_.get());
    dirty_tracker_ = std::make_unique<tracker::SwitchTracker>();
  } else {
    plain_switch_ =
        std::make_unique<net::PlainSwitch>(config_.costs.plain_switch_delay);
    net_->SetSwitch(plain_switch_.get());
    switch (config_.tracker) {
      case TrackerMode::kDedicatedServer: {
        tracker_ = std::make_unique<tracker::TrackerServer>(sim_, net_.get(),
                                                            &config_.costs);
        auto dedicated = std::make_unique<tracker::DedicatedTracker>(
            sim_, net_.get(), this, &config_.costs, tracker_.get());
        dedicated_ = dedicated.get();
        dirty_tracker_ = std::move(dedicated);
        break;
      }
      case TrackerMode::kOwnerServer:
        dirty_tracker_ = std::make_unique<tracker::OwnerTracker>();
        break;
      case TrackerMode::kReplicated: {
        tracker::ReplicatedTrackerConfig rc;
        rc.replicas = static_cast<int>(config_.tracker_replicas);
        auto replicated = std::make_unique<tracker::ReplicatedTracker>(
            sim_, net_.get(), this, &config_.costs, rc);
        replicated_ = replicated.get();
        dirty_tracker_ = std::move(replicated);
        break;
      }
      case TrackerMode::kSwitch:
        break;  // unreachable
    }
  }
  net_->SetFaults(config_.faults);

  // The metadata read cache lives in the programmable data plane; without it
  // (alternative tracker modes) there is nothing to install into.
  if (config_.tracker != TrackerMode::kSwitch) {
    config_.server_template.switch_cache = false;
  }

  for (uint32_t i = 0; i < config_.num_servers; ++i) {
    ring_.AddServer(i);
  }
  for (uint32_t i = 0; i < config_.num_servers; ++i) {
    durables_.push_back(std::make_unique<DurableState>());
    ServerConfig sc = config_.server_template;
    sc.index = i;
    sc.cores = config_.cores_per_server;
    sc.async_updates = config_.async_updates;
    sc.compaction = config_.compaction;
    sc.cluster_id = config_.cluster_id;
    servers_.push_back(std::make_unique<SwitchServer>(
        sim_, net_.get(), this, durables_.back().get(), &config_.costs,
        dirty_tracker_.get(), sc));
  }
  std::vector<net::NodeId> group;
  for (const auto& s : servers_) {
    group.push_back(s->node_id());
  }
  if (data_plane_ != nullptr) {
    data_plane_->SetServerGroup(group);
  }
  if (plain_switch_ != nullptr) {
    plain_switch_->SetServerGroup(group);
  }
  for (const auto& s : servers_) {
    s->SeedRoot();
  }

  PreloadedDir root;
  root.id = RootId();
  root.fp = FingerprintOf(InodeId{}, "/");
  root.ancestors = {RootId()};
  preloaded_["/"] = root;
}

Cluster::~Cluster() = default;

std::unique_ptr<SwitchFsClient> Cluster::MakeClient() {
  SwitchFsClient::Config cc;
  cc.dirty_tracker = dirty_tracker_.get();
  cc.rename_coordinator = config_.server_template.rename_coordinator;
  cc.mtu_bytes = config_.server_template.mtu_bytes;
  cc.mtu_entries = config_.server_template.mtu_entries;
  cc.switch_cache = config_.server_template.switch_cache;
  // Owner-tracker clusters have a precise server-local dirty test per
  // fingerprint; everything else needs the conservative batch hint.
  cc.batch_stat_dir_hint = config_.tracker != TrackerMode::kOwnerServer;
  return std::make_unique<SwitchFsClient>(sim_, net_.get(), this,
                                          &config_.costs, cc);
}

void Cluster::CrashServer(uint32_t i) { servers_[i]->Crash(); }

sim::Task<void> Cluster::RecoverServer(uint32_t i) {
  // The crashed incarnation's installed-set bookkeeping (cached_fps) died
  // with it, so it can no longer evict what it installed. Control-plane
  // flush: drop every cached entry the recovering owner is responsible for
  // BEFORE it serves (and commits writes) again.
  if (data_plane_ != nullptr) {
    // sfs-lint: allow(evict-requires-lock, recovery flush — the crashed owner is down and nothing serves or commits for these fps until Recover() returns)
    data_plane_->EvictCachedIf(
        [this, i](psw::Fingerprint fp) { return ring_.Owner(fp) == i; });
  }
  co_await servers_[i]->Recover();
}

void Cluster::CrashSwitch() {
  net_->SetSwitchDown(true);
  if (data_plane_ != nullptr) {
    data_plane_->Reset();  // all register state is lost
  }
}

sim::Task<void> Cluster::RecoverSwitch() {
  // The switch reboots with an empty dirty set (already Reset). All servers
  // stop serving, flush their change-logs so every deferred update is applied
  // and every directory is back in normal state, then resume (§5.4.2).
  for (auto& s : servers_) {
    s->SetServing(false);
  }
  net_->SetSwitchDown(false);
  for (auto& s : servers_) {
    co_await s->FlushAllChangeLogs();
  }
  for (auto& s : servers_) {
    s->SetServing(true);
  }
}

sim::Task<void> Cluster::AddServerAndRebalance() {
  // Step 1: stop the world and aggregate everything (§A.3).
  for (auto& s : servers_) {
    s->SetServing(false);
  }
  for (auto& s : servers_) {
    co_await s->FlushAllChangeLogs();
  }
  for (auto& s : servers_) {
    co_await s->AggregateAllOwnedDirs();
  }

  // Step 2: extend the ring, then migrate misplaced metadata (two-phase
  // commit degenerates to install-then-delete here because the simulated
  // coordinator cannot crash mid-procedure; see DESIGN.md).
  const uint32_t new_index = static_cast<uint32_t>(servers_.size());
  durables_.push_back(std::make_unique<DurableState>());
  ServerConfig sc = config_.server_template;
  sc.index = new_index;
  sc.cores = config_.cores_per_server;
  sc.async_updates = config_.async_updates;
  sc.compaction = config_.compaction;
  sc.cluster_id = config_.cluster_id;
  servers_.push_back(std::make_unique<SwitchServer>(
      sim_, net_.get(), this, durables_.back().get(), &config_.costs,
      dirty_tracker_.get(), sc));
  servers_.back()->SetWanSink(wan_sink_);
  ring_.AddServer(new_index);

  std::vector<net::NodeId> group;
  for (const auto& s : servers_) {
    group.push_back(s->node_id());
  }
  if (data_plane_ != nullptr) {
    data_plane_->SetServerGroup(group);
  }
  if (plain_switch_ != nullptr) {
    plain_switch_->SetServerGroup(group);
  }

  for (uint32_t i = 0; i < new_index; ++i) {
    SwitchServer::MigrationBatch batch = servers_[i]->ExtractMisplaced(ring_);
    // All misplaced data moves to the new server under consistent hashing
    // with a single added node.
    servers_[new_index]->InstallBatch(batch);
  }
  servers_[new_index]->SeedRoot();

  // Step 3: resume.
  for (auto& s : servers_) {
    s->SetServing(true);
  }
}

namespace {

// Inode key of a preloaded directory path: (parent id, name); the root is
// keyed (0, "/").
std::string PreloadInodeKeyFor(
    const std::unordered_map<std::string, Cluster::PreloadedDir>& dirs,
    const std::string& path) {
  if (path == "/") {
    return InodeKey(InodeId{}, "/");
  }
  const std::string parent(ParentPath(path));
  return InodeKey(dirs.at(parent).id, Basename(path));
}

}  // namespace

void Cluster::BumpPreloadedDirSize(const std::string& dir_path) {
  const PreloadedDir& dir = preloaded_.at(dir_path);
  SwitchServer& owner = *servers_[ring_.Owner(dir.fp)];
  const std::string ikey = PreloadInodeKeyFor(preloaded_, dir_path);
  auto value = owner.kv_for_test().Get(ikey);
  if (value.has_value()) {
    Attr attr = Attr::Decode(*value);
    attr.size += 1;
    owner.PreloadInode(ikey, attr);
  }
}

const Cluster::PreloadedDir& Cluster::PreloadMkdir(const std::string& path) {
  auto it = preloaded_.find(path);
  if (it != preloaded_.end()) {
    return it->second;
  }
  const std::string parent_path(ParentPath(path));
  auto pit = preloaded_.find(parent_path);
  assert(pit != preloaded_.end() && "preload parents before children");
  const PreloadedDir& parent = pit->second;
  const std::string name(Basename(path));

  PreloadedDir dir;
  dir.id.w[0] = HashString(path);
  dir.id.w[1] = HashString(path, 1);
  dir.id.w[2] = HashString(path, 2);
  dir.id.w[3] = 3;
  dir.fp = FingerprintOf(parent.id, name);
  dir.ancestors = parent.ancestors;
  dir.ancestors.push_back(dir.id);

  Attr attr;
  attr.id = dir.id;
  attr.type = FileType::kDirectory;
  attr.mode = 0755;
  const std::string ikey = InodeKey(parent.id, name);
  SwitchServer& owner = *servers_[ring_.Owner(dir.fp)];
  owner.PreloadInode(ikey, attr);
  owner.PreloadDirIndex(dir.id, ikey, dir.fp);

  servers_[ring_.Owner(parent.fp)]->PreloadEntry(parent.id, name,
                                                 FileType::kDirectory);
  const PreloadedDir& result = preloaded_[path] = dir;
  BumpPreloadedDirSize(parent_path);
  return result;
}

void Cluster::PreloadFile(const std::string& path) {
  const std::string parent_path(ParentPath(path));
  auto pit = preloaded_.find(parent_path);
  assert(pit != preloaded_.end() && "preload the parent directory first");
  const PreloadedDir& parent = pit->second;
  const std::string name(Basename(path));

  Attr attr;
  attr.id.w[0] = HashString(path);
  attr.id.w[1] = HashString(path, 7);
  attr.id.w[3] = 4;
  attr.type = FileType::kFile;
  attr.mode = 0644;
  const psw::Fingerprint fp = FingerprintOf(parent.id, name);
  servers_[ring_.Owner(fp)]->PreloadInode(InodeKey(parent.id, name), attr);

  servers_[ring_.Owner(parent.fp)]->PreloadEntry(parent.id, name,
                                                 FileType::kFile);
  BumpPreloadedDirSize(parent_path);
}

const Cluster::PreloadedDir* Cluster::preloaded(const std::string& path) const {
  auto it = preloaded_.find(path);
  return it == preloaded_.end() ? nullptr : &it->second;
}

void Cluster::WarmClient(SwitchFsClient& client) const {
  for (const auto& [path, dir] : preloaded_) {
    CachedDir entry;
    entry.id = dir.id;
    entry.fp = dir.fp;
    entry.mode = 0755;
    for (const InodeId& a : dir.ancestors) {
      entry.ancestors.push_back(AncestorRef{a, 0});
    }
    client.WarmCache(path, entry);
  }
}

void Cluster::Checkpoint() {
  for (auto& d : durables_) {
    // Truncate the longest applied prefix.
    uint64_t up_to = 0;
    for (const kv::WalRecord& r : d->wal.records()) {
      if (!r.applied) {
        break;
      }
      up_to = r.lsn;
    }
    if (up_to > 0) {
      d->wal.TruncateUpTo(up_to);
    }
  }
}

void AccumulateServerStats(ServerStats& total, const ServerStats& st) {
  total.ops += st.ops;
  total.aggregations += st.aggregations;
  total.agg_retries += st.agg_retries;
  total.entries_applied += st.entries_applied;
  total.entries_deduped += st.entries_deduped;
  total.pushes_sent += st.pushes_sent;
  total.pushes_local += st.pushes_local;
  total.push_failures += st.push_failures;
  total.push_dirs_sent += st.push_dirs_sent;
  total.push_entries_sent += st.push_entries_sent;
  total.pushes_received += st.pushes_received;
  total.pushes_rebound += st.pushes_rebound;
  total.entries_rebound += st.entries_rebound;
  total.agg_rebinds += st.agg_rebinds;
  total.agg_entries_rebound += st.agg_entries_rebound;
  total.fallbacks += st.fallbacks;
  total.stale_cache_bounces += st.stale_cache_bounces;
  total.wal_replayed += st.wal_replayed;
  total.insert_exhausted += st.insert_exhausted;
  total.dir_opens += st.dir_opens;
  total.dir_pages += st.dir_pages;
  total.dir_page_entries += st.dir_page_entries;
  total.dir_sessions_expired += st.dir_sessions_expired;
  total.dir_sessions_evicted += st.dir_sessions_evicted;
  total.stale_handle_bounces += st.stale_handle_bounces;
  total.bulk_inserts += st.bulk_inserts;
  total.bulk_insert_entries += st.bulk_insert_entries;
  total.batch_stats += st.batch_stats;
  total.batch_stat_targets += st.batch_stat_targets;
  total.batch_stat_dirs += st.batch_stat_dirs;
  total.setattrs += st.setattrs;
  total.cache_installs += st.cache_installs;
  total.cache_evicts += st.cache_evicts;
  total.cache_evict_exhausted += st.cache_evict_exhausted;
  total.push_pace_hints += st.push_pace_hints;
  total.push_paced_drains += st.push_paced_drains;
  total.push_batches_deduped += st.push_batches_deduped;
  total.cross_shard_handoffs += st.cross_shard_handoffs;
  total.wan_batches_shipped += st.wan_batches_shipped;
  total.wan_entries_applied += st.wan_entries_applied;
  total.wan_conflicts_lww += st.wan_conflicts_lww;
  total.wan_catchup_replays += st.wan_catchup_replays;
  total.wan_entries_dropped += st.wan_entries_dropped;
}

void Cluster::SetWanSink(WanSink* sink) {
  wan_sink_ = sink;
  for (auto& s : servers_) {
    s->SetWanSink(sink);
  }
}

SwitchServer::Stats Cluster::TotalStats() const {
  SwitchServer::Stats total;
  for (const auto& s : servers_) {
    AccumulateServerStats(total, s->stats());
  }
  for (const ServerStats* st : extra_stats_) {
    AccumulateServerStats(total, *st);
  }
  return total;
}

size_t Cluster::TotalPendingChangeLogEntries() const {
  size_t total = 0;
  for (const auto& s : servers_) {
    total += s->PendingChangeLogEntries();
  }
  return total;
}

}  // namespace switchfs::core
