// Cluster wiring for SwitchFS: the simulator, the network fabric with the
// programmable-switch data plane (or a plain L2 switch for the alternative
// tracker modes), metadata servers with their durable state, and client
// factories. Also drives the fault-injection procedures of §5.4.2/§7.7
// (server crash, switch crash) and stop-the-world reconfiguration (§5.5/A.3).
#ifndef SRC_CORE_CLUSTER_H_
#define SRC_CORE_CLUSTER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/client.h"
#include "src/core/fs_world.h"
#include "src/core/placement.h"
#include "src/core/server.h"
#include "src/net/network.h"
#include "src/pswitch/data_plane.h"
#include "src/sim/costs.h"
#include "src/sim/simulator.h"

namespace switchfs::tracker {
class DedicatedTracker;
class DirtyTracker;
class ReplicatedTracker;
class TrackerServer;
}  // namespace switchfs::tracker

namespace switchfs::core {

struct ClusterConfig {
  uint32_t num_servers = 8;
  int cores_per_server = 4;
  // Geo-replication (src/wan/): this cluster's identity in LWW commit
  // stamps, and an optional externally-owned simulator so several clusters
  // share one event loop and virtual clock (the multi-cluster harness owns
  // it). Null = the cluster owns a private simulator (the default, and the
  // single-cluster behavior).
  uint32_t cluster_id = 0;
  sim::Simulator* shared_sim = nullptr;
  bool async_updates = true;
  bool compaction = true;
  TrackerMode tracker = TrackerMode::kSwitch;
  // kReplicated: chain length of the tracker group (2-3 per NetChain).
  uint32_t tracker_replicas = 3;
  psw::DataPlaneConfig switch_config;
  net::Network::FaultConfig faults;
  sim::CostModel costs;
  uint64_t seed = 42;
  // Copied into every server's config (timers, MTU, retry budgets).
  ServerConfig server_template;
};

class Cluster : public ClusterContext, public FsWorld {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster() override;

  // --- FsWorld ---
  sim::Simulator& world_sim() override { return *sim_; }
  std::unique_ptr<MetadataService> NewClient(bool warm) override {
    auto client = MakeClient();
    if (warm) {
      WarmClient(*client);
    }
    return client;
  }
  void PreloadDir(const std::string& path) override { PreloadMkdir(path); }
  void PreloadFileAt(const std::string& path) override { PreloadFile(path); }
  std::string name() const override { return "SwitchFS"; }

  // --- ClusterContext ---
  const HashRing& ring() const override { return ring_; }
  net::NodeId ServerNode(uint32_t server_index) const override {
    return servers_[server_index]->node_id();
  }
  uint32_t ServerCount() const override {
    return static_cast<uint32_t>(servers_.size());
  }

  sim::Simulator& sim() { return *sim_; }
  net::Network& network() { return *net_; }
  const sim::CostModel& costs() const { return config_.costs; }
  psw::DataPlane* data_plane() { return data_plane_.get(); }
  // The tracker subsystem (src/tracker/). `dirty_tracker` is always set;
  // the narrower accessors are non-null only in their respective modes.
  tracker::DirtyTracker* dirty_tracker() { return dirty_tracker_.get(); }
  tracker::TrackerServer* tracker() { return tracker_.get(); }
  tracker::DedicatedTracker* dedicated_tracker() { return dedicated_; }
  tracker::ReplicatedTracker* replicated_tracker() { return replicated_; }
  SwitchServer& server(uint32_t i) { return *servers_[i]; }
  const ClusterConfig& config() const { return config_; }

  std::unique_ptr<SwitchFsClient> MakeClient();

  // --- fault orchestration ---
  void CrashServer(uint32_t i);
  // Coroutine completes when the server is serving again.
  sim::Task<void> RecoverServer(uint32_t i);
  // Switch failure: all in-flight traffic drops until RecoverSwitch.
  void CrashSwitch();
  // §5.4.2: reinitialize an empty dirty set, stop all servers, flush every
  // change-log, then resume. Completes when the cluster serves again.
  sim::Task<void> RecoverSwitch();

  // --- stop-the-world reconfiguration (§5.5 / §A.3) ---
  // Adds a server (2-phase: drain + aggregate everywhere, then migrate).
  sim::Task<void> AddServerAndRebalance();

  // --- bench/test namespace preload (bypasses the protocol) ---
  struct PreloadedDir {
    InodeId id;
    psw::Fingerprint fp = 0;
    std::vector<InodeId> ancestors;
  };
  // Creates directory metadata directly in the owners' stores. Parents must
  // already exist ("/" always does).
  const PreloadedDir& PreloadMkdir(const std::string& path);
  void PreloadFile(const std::string& path);
  const PreloadedDir* preloaded(const std::string& path) const;
  // Seeds a client's path cache with every preloaded directory.
  void WarmClient(SwitchFsClient& client) const;

  // Truncates the applied prefix of every server's WAL (checkpoint).
  void Checkpoint();

  // --- WAN replication wiring (src/wan/) ---
  // Points every server's capture hook at the cluster's replicator (null
  // detaches; servers added later by AddServerAndRebalance inherit it).
  void SetWanSink(WanSink* sink);
  // Registers an externally-owned counter block (replicator/applier-side
  // wan_* counters) to be summed into TotalStats. The pointer must outlive
  // the cluster.
  void RegisterExtraStats(const ServerStats* stats) {
    extra_stats_.push_back(stats);
  }

  // Aggregate totals across servers (bench reporting).
  SwitchServer::Stats TotalStats() const;
  size_t TotalPendingChangeLogEntries() const;

 private:
  void BumpPreloadedDirSize(const std::string& dir_path);

  ClusterConfig config_;
  // Owned unless ClusterConfig::shared_sim points at an external simulator
  // (multi-cluster worlds share one event loop); sim_ is the working alias.
  std::unique_ptr<sim::Simulator> owned_sim_;
  sim::Simulator* sim_ = nullptr;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<psw::DataPlane> data_plane_;
  std::unique_ptr<net::PlainSwitch> plain_switch_;
  std::unique_ptr<tracker::TrackerServer> tracker_;
  std::unique_ptr<tracker::DirtyTracker> dirty_tracker_;
  tracker::DedicatedTracker* dedicated_ = nullptr;   // aliases dirty_tracker_
  tracker::ReplicatedTracker* replicated_ = nullptr;  // aliases dirty_tracker_
  std::vector<std::unique_ptr<DurableState>> durables_;
  std::vector<std::unique_ptr<SwitchServer>> servers_;
  HashRing ring_;
  std::unordered_map<std::string, PreloadedDir> preloaded_;
  WanSink* wan_sink_ = nullptr;
  std::vector<const ServerStats*> extra_stats_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_CLUSTER_H_
