// Owner-side directory-stream sessions (MetadataService v2). An OpenDir
// pins a snapshot of one directory's entry list; ReaddirPage serves bounded
// pages from it via a positional cookie. The table is shared by the SwitchFS
// server and the four baseline servers so the stream semantics are identical
// across systems:
//
//  * The snapshot is immutable: a page stream never drops an entry that was
//    committed before the open (SwitchFS aggregates under the agg gate
//    first, so deferred pre-open entries are in the list) and never
//    duplicates an entry across pages — concurrent creates/unlinks/renames
//    mutate the live entry list, not the snapshot.
//  * Sessions are volatile: they expire after an inactivity TTL (watchdog +
//    lazy check, mirroring the aggregation responder-session watchdog) and
//    die with the server incarnation. A page call against a missing session
//    fails with kStaleHandle and the client re-opens.
//  * Session ids embed an incarnation epoch so a handle minted before a
//    crash can never alias a session created after recovery.
#ifndef SRC_CORE_DIR_SESSION_H_
#define SRC_CORE_DIR_SESSION_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/core/metadata_service.h"
#include "src/core/types.h"
#include "src/sim/time.h"

namespace switchfs::core {

struct DirSession {
  uint64_t id = 0;
  InodeId dir;
  // Stamp of the consistency point the snapshot represents: the simulated
  // time the owner snapshotted the entry list (after the OpenDir-time
  // aggregation on SwitchFS). Monotone per directory, so two handles can be
  // ordered by freshness.
  int64_t snapshot_at = 0;
  std::vector<DirEntry> entries;  // key-ordered snapshot of the entry list
  int64_t last_access = 0;        // inactivity-TTL base
};

class DirSessionTable {
 public:
  // `epoch` disambiguates server incarnations (pass the sim time the
  // incarnation was created; only one incarnation can exist per instant).
  explicit DirSessionTable(int64_t epoch)
      : epoch_(static_cast<uint64_t>(epoch)) {}

  DirSession& Open(const InodeId& dir, std::vector<DirEntry> entries,
                   int64_t now) {
    DirSession s;
    s.id = (epoch_ << 20) | next_id_++;
    s.dir = dir;
    s.snapshot_at = now;
    s.entries = std::move(entries);
    s.last_access = now;
    return sessions_.emplace(s.id, std::move(s)).first->second;
  }

  // Live session or nullptr; refreshes the inactivity clock on a hit and
  // lazily expires on a miss-by-TTL.
  DirSession* Touch(uint64_t id, int64_t now, sim::SimTime ttl) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return nullptr;
    }
    if (now - it->second.last_access > ttl) {
      sessions_.erase(it);
      return nullptr;
    }
    it->second.last_access = now;
    return &it->second;
  }

  bool Close(uint64_t id) { return sessions_.erase(id) > 0; }

  // Watchdog sweep: erases the session if it has been idle past `ttl`.
  // Returns true when the session is gone (expired now or already closed) —
  // the watchdog coroutine exits; false keeps it watching.
  bool ExpireIfIdle(uint64_t id, int64_t now, sim::SimTime ttl) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return true;
    }
    if (now - it->second.last_access > ttl) {
      sessions_.erase(it);
      return true;
    }
    return false;
  }

  size_t size() const { return sessions_.size(); }

  // Builds the page at `cookie` (a position into the snapshot), at most
  // `limit` entries. The returned next_cookie continues the stream; at_end
  // marks exhaustion. A cookie beyond the snapshot yields an empty at_end
  // page (idempotent tail re-reads are harmless).
  static DirPage PageOf(const DirSession& s, uint64_t cookie, int limit) {
    DirPage page;
    const uint64_t n = s.entries.size();
    const uint64_t start = cookie > n ? n : cookie;
    const uint64_t count =
        std::min<uint64_t>(static_cast<uint64_t>(limit > 0 ? limit : 1),
                           n - start);
    page.entries.reserve(count);
    for (uint64_t i = start; i < start + count; ++i) {
      page.entries.push_back(s.entries[i]);
    }
    page.next_cookie = start + count;
    page.at_end = page.next_cookie >= n;
    return page;
  }

 private:
  uint64_t epoch_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, DirSession> sessions_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_DIR_SESSION_H_
