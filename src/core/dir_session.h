// Owner-side directory-stream sessions (MetadataService v2). An OpenDir
// pins a stream over one directory's entry list; ReaddirPage serves
// byte-budget pages from it. The table is shared by the SwitchFS server and
// the four baseline servers so the stream semantics are identical across
// systems. Two session flavours:
//
//  * Snapshot sessions (baselines; SwitchFS with `snapshot_sessions`) copy
//    the entry list at open. The snapshot is immutable: a page stream never
//    drops an entry that was committed before the open (SwitchFS aggregates
//    under the agg gate first, so deferred pre-open entries are in the list)
//    and never duplicates an entry across pages — concurrent creates/
//    unlinks/renames mutate the live entry list, not the snapshot.
//  * Cursor sessions (SwitchFS default) store only the scan position — the
//    KV key of the last served entry — and each page does a bounded KV seek
//    from it. OpenDir is O(1) instead of O(directory). The entry keyspace
//    is ordered and deletes remove keys outright (no tombstone rows), so
//    the seek's implicit skip over deleted cursors preserves the no-dup/
//    no-loss guarantee: a key is served at most once, and every pre-open
//    entry that survives the scan window is reached. Entries created or
//    renamed ahead of the cursor may appear (live semantics, like POSIX
//    readdir); entries behind it never re-appear.
//
// SwitchFS streams are page-sequenced: the cookie is the page's sequence
// number, so a client can speculatively issue page p+1 while consuming page
// p (pipelined prefetch). The session caches the last served page for
// idempotent re-serves and briefly parks pages that arrive ahead of their
// turn (network jitter reorders packets). Baseline streams keep positional
// cookies (index into the snapshot) — they never prefetch.
//
// Sessions are volatile: they expire after an inactivity TTL (watchdog +
// lazy check), are LRU-evicted past the per-table cap (a crash-looping
// scanner abandoning handles must not bloat the owner), and die with the
// server incarnation. A page call against a missing session fails with
// kStaleHandle and the client re-opens. Session ids embed an incarnation
// epoch so a handle minted before a crash can never alias a session created
// after recovery, plus the owning shard's index in the low kShardIdBits so
// a page call can route back to the shard that minted the handle without a
// broadcast (ServerVolatile::SessionShard). The SwitchFS owner keeps one
// table per shard with a per-shard slice of the session cap; baselines keep
// a single table at shard 0.
#ifndef SRC_CORE_DIR_SESSION_H_
#define SRC_CORE_DIR_SESSION_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/annotations.h"
#include "src/core/metadata_service.h"
#include "src/core/types.h"
#include "src/sim/time.h"

namespace switchfs::core {

// Session-id / shard-index geometry (shared with src/core/shard.h): the low
// kShardIdBits of a session id name the shard whose table minted it, which
// caps a server at kMaxShards shards.
inline constexpr int kShardIdBits = 4;
inline constexpr size_t kMaxShards = size_t{1} << kShardIdBits;

struct DirSession {
  uint64_t id = 0;
  InodeId dir;
  // Stamp of the consistency point the stream represents: the simulated
  // time the owner opened it (after the OpenDir-time aggregation on
  // SwitchFS). Monotone per directory, so two handles can be ordered by
  // freshness.
  int64_t snapshot_at = 0;
  bool cursor = false;            // cursor session (no pinned snapshot)
  std::vector<DirEntry> entries;  // snapshot sessions: key-ordered copy

  // Page-sequenced stream state (SwitchFS, both flavours).
  uint64_t next_page = 0;   // sequence number the stream serves next
  uint64_t offset = 0;      // snapshot: index of the next unserved entry
  std::string cursor_key;   // cursor: KV key of the last served entry
  bool at_end = false;      // the stream has served its final entry
  DirPage last_page;        // cached last-served page (idempotent re-serve)

  int64_t last_access = 0;  // inactivity-TTL base
};

class SFS_SUSPENSION_SHARED DirSessionTable {
 public:
  // `epoch` disambiguates server incarnations (pass the sim time the
  // incarnation was created; only one incarnation can exist per instant).
  // `shard` is stamped into the low kShardIdBits of every minted id so the
  // owner can route page/close calls back to this table.
  explicit DirSessionTable(int64_t epoch, int shard = 0)
      : epoch_(static_cast<uint64_t>(epoch)),
        shard_(static_cast<uint64_t>(shard) & (kMaxShards - 1)) {}

  // Opens a snapshot session over a pre-scanned entry list.
  DirSession& Open(const InodeId& dir, std::vector<DirEntry> entries,
                   int64_t now) {
    DirSession s;
    s.id = (epoch_ << 20) | (next_id_++ << kShardIdBits) | shard_;
    s.dir = dir;
    s.snapshot_at = now;
    s.entries = std::move(entries);
    s.last_access = now;
    return sessions_.emplace(s.id, std::move(s)).first->second;
  }

  // Opens a cursor session: no snapshot copy, O(1).
  DirSession& OpenCursor(const InodeId& dir, int64_t now) {
    DirSession& s = Open(dir, {}, now);
    s.cursor = true;
    return s;
  }

  // Live session or nullptr; refreshes the inactivity clock on a hit and
  // lazily expires on a miss-by-TTL.
  DirSession* Touch(uint64_t id, int64_t now, sim::SimTime ttl) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return nullptr;
    }
    if (now - it->second.last_access > ttl) {
      sessions_.erase(it);
      return nullptr;
    }
    it->second.last_access = now;
    return &it->second;
  }

  bool Close(uint64_t id) { return sessions_.erase(id) > 0; }

  // Watchdog sweep: erases the session if it has been idle past `ttl`.
  // Returns true when the session is gone (expired now or already closed) —
  // the watchdog coroutine exits; false keeps it watching.
  bool ExpireIfIdle(uint64_t id, int64_t now, sim::SimTime ttl) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return true;
    }
    if (now - it->second.last_access > ttl) {
      sessions_.erase(it);
      return true;
    }
    return false;
  }

  // Table-wide cap: evicts least-recently-used sessions until at most `cap`
  // remain (0 = uncapped). Returns the number evicted; the abandoned
  // handles surface as kStaleHandle on their next page call.
  size_t EvictLruOverCap(size_t cap) {
    if (cap == 0) {
      return 0;
    }
    size_t evicted = 0;
    while (sessions_.size() > cap) {
      auto victim = sessions_.begin();
      for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
        if (it->second.last_access < victim->second.last_access) {
          victim = it;
        }
      }
      sessions_.erase(victim);
      ++evicted;
    }
    return evicted;
  }

  size_t size() const { return sessions_.size(); }

  // Builds the page at `cookie` (a position into the snapshot): entries are
  // admitted until the next one would overflow `mtu_bytes` (0 disables the
  // byte budget), capped at `limit` entries. The returned next_cookie
  // continues the stream; at_end marks exhaustion. A cookie beyond the
  // snapshot yields an empty at_end page (idempotent tail re-reads are
  // harmless).
  static DirPage PageOf(const DirSession& s, uint64_t cookie, int limit,
                        int mtu_bytes = 0) {
    DirPage page;
    const uint64_t n = s.entries.size();
    uint64_t i = cookie > n ? n : cookie;
    size_t used = 0;
    while (i < n && PageHasRoom(used, static_cast<int>(page.entries.size()),
                                DirEntryWireSize(s.entries[i].name), mtu_bytes,
                                limit)) {
      used += DirEntryWireSize(s.entries[i].name);
      page.entries.push_back(s.entries[i]);
      ++i;
    }
    page.next_cookie = i;
    page.at_end = i >= n;
    return page;
  }

 private:
  uint64_t epoch_;
  uint64_t shard_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, DirSession> sessions_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_DIR_SESSION_H_
