// FsWorld: the uniform handle benches and examples use to drive any of the
// five systems (SwitchFS + four baselines). One workload runner, five
// implementations — mirroring the paper's "same storage and networking
// framework" fairness argument (§7.1).
#ifndef SRC_CORE_FS_WORLD_H_
#define SRC_CORE_FS_WORLD_H_

#include <memory>
#include <string>

#include "src/core/metadata_service.h"
#include "src/sim/simulator.h"

namespace switchfs::core {

class FsWorld {
 public:
  virtual ~FsWorld() = default;

  virtual sim::Simulator& world_sim() = 0;
  // Creates a client; `warm` seeds its path-resolution cache with every
  // preloaded directory (bench steady-state behaviour).
  virtual std::unique_ptr<MetadataService> NewClient(bool warm) = 0;

  // Namespace preload (bypasses the protocol; used for bench setup).
  virtual void PreloadDir(const std::string& path) = 0;
  virtual void PreloadFileAt(const std::string& path) = 0;

  virtual std::string name() const = 0;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_FS_WORLD_H_
