// Lazy client-cache invalidation (paper §4.2/§5.2, as in InfiniFS): when a
// directory is removed, renamed, or changes permission, its id is appended to
// every server's invalidation list; servers check the ancestor ids a request
// resolved through and bounce stale requests back to the client.
#ifndef SRC_CORE_INVALIDATION_H_
#define SRC_CORE_INVALIDATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/types.h"

namespace switchfs::core {

class InvalidationList {
 public:
  void Add(const InodeId& id, int64_t now) { entries_[id] = now; }

  bool Contains(const InodeId& id) const { return entries_.count(id) > 0; }

  // Returns the ancestors whose cache entries predate an invalidation of the
  // same id (the stale set to report back to the client). Entries re-fetched
  // after the invalidation pass the check.
  template <typename AncestorRefVec>
  std::vector<InodeId> Check(const AncestorRefVec& ancestors) const {
    std::vector<InodeId> stale;
    for (const auto& a : ancestors) {
      auto it = entries_.find(a.id);
      if (it != entries_.end() && it->second >= a.cached_at) {
        stale.push_back(a.id);
      }
    }
    return stale;
  }

  // Drops entries older than `before` (safe once every client cache entry
  // that could reference them has itself expired).
  void PruneBefore(int64_t before) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second < before) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Snapshot / merge used to clone the list during crash recovery (§5.4.2).
  std::vector<std::pair<InodeId, int64_t>> Snapshot() const {
    return {entries_.begin(), entries_.end()};
  }
  void Merge(const std::vector<std::pair<InodeId, int64_t>>& snapshot) {
    for (const auto& [id, t] : snapshot) {
      auto it = entries_.find(id);
      if (it == entries_.end() || it->second < t) {
        entries_[id] = t;
      }
    }
  }

  size_t size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

 private:
  std::unordered_map<InodeId, int64_t, InodeIdHash> entries_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_INVALIDATION_H_
