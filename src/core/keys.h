// Derived KV and lock-table keys shared by the SwitchFS server's protocol
// modules and the baseline systems (paper §4.3, Tab 3). The primary schema
// keys ("i" inode, "e" entry) live in src/core/schema.h; this header covers
// the single-id auxiliary records and the per-fingerprint lock keys.
#ifndef SRC_CORE_KEYS_H_
#define SRC_CORE_KEYS_H_

#include <cstring>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/core/types.h"
#include "src/pswitch/fingerprint.h"

namespace switchfs::core {

// Lock-table key of a fingerprint group: "f" + raw 8-byte fingerprint. Used
// for change-log locks and owner-side aggregation gates (one per group).
inline std::string FpKey(psw::Fingerprint fp) {
  std::string key(1 + sizeof(fp), '\0');
  key[0] = 'f';
  std::memcpy(key.data() + 1, &fp, sizeof(fp));
  return key;
}

// "<prefix>" + id(32B): auxiliary records keyed by a single inode id.
inline std::string IdKey(char prefix, const InodeId& id) {
  std::string key;
  key.reserve(33);
  key.push_back(prefix);
  key += id.ToKeyBytes();
  return key;
}

// Key of a shared attributes object (hard links, §5.5).
inline std::string AttrKey(const InodeId& id) { return IdKey('a', id); }

// Lock-table key of ONE change-log's append mutex: "l" + fingerprint + dir.
// Serializes sequence-number assignment against the log (upsert/rmdir/rename
// commit legs/link legs/moved_fp renumbering) independently of the fp-group
// change-log lock — commit legs cannot take the group lock (it would invert
// the upsert's cl-then-inode order), so a seq captured before their WAL
// suspension used to go stale against a concurrent append or rebind.
inline std::string ClAppendKey(psw::Fingerprint fp, const InodeId& dir) {
  std::string key;
  key.reserve(1 + sizeof(fp) + 32);
  key.push_back('l');
  key.append(reinterpret_cast<const char*>(&fp), sizeof(fp));
  key += dir.ToKeyBytes();
  return key;
}

// Key of the "d" (dir-id -> inode key) index used by aggregation applies.
inline std::string DirIndexKey(const InodeId& id) { return IdKey('d', id); }
// Prefix covering every dir-index row (recovery re-aggregation scan).
inline constexpr const char* kDirIndexPrefix = "d";

// Key of a baseline system's authoritative directory content record, kept at
// the directory's home server (src/baselines).
inline std::string ContentKey(const InodeId& dir) { return IdKey('c', dir); }

// ---- per-entry LWW commit stamps (WAN replication + cross-era ordering) ----
//
// One row per (directory, name) at the directory's owner: the commit stamp of
// the last dirent write applied for that name. Writes (local change-log
// applies and WAN replays alike) compare their stamp against the row and
// no-op when they lose — last-writer-wins with a total order of
// (timestamp, origin cluster, source server, seq). The row persists across an
// unlink (a delete tombstone), so a late create carrying an older stamp
// cannot resurrect a name a newer delete removed. Rebuilt from the WAL on
// recovery (kWalEntryApply / kWalWanApply records carry the stamp fields).

// Key of a name's LWW stamp row: "w" + dir(32B) + name.
inline std::string LwwStampKey(const InodeId& dir, std::string_view name) {
  std::string key;
  key.reserve(33 + name.size());
  key.push_back('w');
  key += dir.ToKeyBytes();
  key.append(name.data(), name.size());
  return key;
}

struct LwwStamp {
  int64_t ts = 0;           // commit timestamp at the origin
  uint32_t origin = 0;      // origin cluster id (ServerConfig::cluster_id)
  uint32_t src = 0;         // origin source server (tie-break)
  uint64_t seq = 0;         // origin change-log seq (tie-break)

  // Strict total order; equal stamps are the same write (idempotent re-apply
  // is allowed, so callers drop only on Less(incoming, existing)).
  friend bool operator<(const LwwStamp& a, const LwwStamp& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.origin != b.origin) return a.origin < b.origin;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  }

  std::string Encode() const {
    Encoder enc;
    enc.PutI64(ts);
    enc.PutU32(origin);
    enc.PutU32(src);
    enc.PutU64(seq);
    return std::move(enc).Take();
  }
  static LwwStamp Decode(const std::string& value) {
    Decoder dec(value);
    LwwStamp s;
    s.ts = dec.GetI64();
    s.origin = dec.GetU32();
    s.src = dec.GetU32();
    s.seq = dec.GetU64();
    return s;
  }
};

// Encoded value of a dir-index row: (inode key, fingerprint).
inline std::string EncodeDirIndex(const std::string& inode_key,
                                  psw::Fingerprint fp) {
  Encoder enc;
  enc.PutString(inode_key);
  enc.PutU64(fp);
  return std::move(enc).Take();
}

inline void DecodeDirIndex(const std::string& value, std::string* inode_key,
                           psw::Fingerprint* fp) {
  Decoder dec(value);
  *inode_key = dec.GetString();
  *fp = dec.GetU64();
}

}  // namespace switchfs::core

#endif  // SRC_CORE_KEYS_H_
