// Derived KV and lock-table keys shared by the SwitchFS server's protocol
// modules and the baseline systems (paper §4.3, Tab 3). The primary schema
// keys ("i" inode, "e" entry) live in src/core/schema.h; this header covers
// the single-id auxiliary records and the per-fingerprint lock keys.
#ifndef SRC_CORE_KEYS_H_
#define SRC_CORE_KEYS_H_

#include <cstring>
#include <string>

#include "src/common/bytes.h"
#include "src/core/types.h"
#include "src/pswitch/fingerprint.h"

namespace switchfs::core {

// Lock-table key of a fingerprint group: "f" + raw 8-byte fingerprint. Used
// for change-log locks and owner-side aggregation gates (one per group).
inline std::string FpKey(psw::Fingerprint fp) {
  std::string key(1 + sizeof(fp), '\0');
  key[0] = 'f';
  std::memcpy(key.data() + 1, &fp, sizeof(fp));
  return key;
}

// "<prefix>" + id(32B): auxiliary records keyed by a single inode id.
inline std::string IdKey(char prefix, const InodeId& id) {
  std::string key;
  key.reserve(33);
  key.push_back(prefix);
  key += id.ToKeyBytes();
  return key;
}

// Key of a shared attributes object (hard links, §5.5).
inline std::string AttrKey(const InodeId& id) { return IdKey('a', id); }

// Lock-table key of ONE change-log's append mutex: "l" + fingerprint + dir.
// Serializes sequence-number assignment against the log (upsert/rmdir/rename
// commit legs/link legs/moved_fp renumbering) independently of the fp-group
// change-log lock — commit legs cannot take the group lock (it would invert
// the upsert's cl-then-inode order), so a seq captured before their WAL
// suspension used to go stale against a concurrent append or rebind.
inline std::string ClAppendKey(psw::Fingerprint fp, const InodeId& dir) {
  std::string key;
  key.reserve(1 + sizeof(fp) + 32);
  key.push_back('l');
  key.append(reinterpret_cast<const char*>(&fp), sizeof(fp));
  key += dir.ToKeyBytes();
  return key;
}

// Key of the "d" (dir-id -> inode key) index used by aggregation applies.
inline std::string DirIndexKey(const InodeId& id) { return IdKey('d', id); }
// Prefix covering every dir-index row (recovery re-aggregation scan).
inline constexpr const char* kDirIndexPrefix = "d";

// Key of a baseline system's authoritative directory content record, kept at
// the directory's home server (src/baselines).
inline std::string ContentKey(const InodeId& dir) { return IdKey('c', dir); }

// Encoded value of a dir-index row: (inode key, fingerprint).
inline std::string EncodeDirIndex(const std::string& inode_key,
                                  psw::Fingerprint fp) {
  Encoder enc;
  enc.PutString(inode_key);
  enc.PutU64(fp);
  return std::move(enc).Take();
}

inline void DecodeDirIndex(const std::string& value, std::string* inode_key,
                           psw::Fingerprint* fp) {
  Decoder dec(value);
  *inode_key = dec.GetString();
  *fp = dec.GetU64();
}

}  // namespace switchfs::core

#endif  // SRC_CORE_KEYS_H_
