#include "src/core/link_manager.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "src/core/cache_evict.h"
#include "src/core/schema.h"
#include "src/core/wal_records.h"
#include "src/sim/discipline.h"

namespace switchfs::core {

sim::Task<Status> LinkManager::UpdateLinkCount(VolPtr v, InodeId file_id,
                                               uint32_t attr_server,
                                               int32_t delta, Attr* out,
                                               const AttrDelta& attr_delta) {
  if (attr_server == ctx_.config->index) {
    const std::string akey = AttrKey(file_id);
    // Sanctioned cross-shard handoff (hard-link split): callers hold the
    // link's inode lock on its name's shard while this acquires the shared
    // attributes object's lock on the object-id's shard. Deadlock-free
    // because attr locks are only ever taken innermost (no chain holds an
    // attr lock while waiting on a name lock).
    sim::CrossShardScope link_xs(co_await sim::discipline::CurrentChainId{});
    auto lock = co_await v->ShardForKey(akey).inode_locks.AcquireExclusive(akey);
    link_xs.Release();
    if (v->dead) co_return UnavailableError();
    co_await ctx_.cpu->Run(ctx_.costs->kv_get);
    if (v->dead) co_return UnavailableError();
    auto value = v->kv.Get(akey);
    if (!value.has_value()) {
      co_return NotFoundError("attributes object missing");
    }
    Attr attrs = Attr::Decode(*value);
    attrs.nlink = static_cast<uint32_t>(
        std::max<int64_t>(0, static_cast<int64_t>(attrs.nlink) + delta));
    const bool changed = attr_delta.ApplyTo(attrs, ctx_.Now());
    if (delta != 0 || changed) {
      OpCommitRecord rec;
      rec.op = OpType::kLink;
      rec.inode_key = akey;
      rec.inode_delete = attrs.nlink == 0;
      if (!rec.inode_delete) {
        rec.inode_value = attrs.Encode();
      }
      co_await ctx_.cpu->Run(ctx_.costs->wal_append);
      if (v->dead) co_return UnavailableError();
      ctx_.durable->wal.Append(kWalOpCommit, rec.Encode());
      co_await ctx_.cpu->Run(attrs.nlink == 0 ? ctx_.costs->kv_delete
                                              : ctx_.costs->kv_put);
      if (v->dead) co_return UnavailableError();
      if (attrs.nlink == 0) {
        v->kv.Delete(akey);
      } else {
        v->kv.Put(akey, attrs.Encode());
      }
    }
    if (out != nullptr) {
      *out = attrs;
    }
    co_return OkStatus();
  }
  auto msg = std::make_shared<LinkRefUpdate>();
  msg->file_id = file_id;
  msg->delta = delta;
  msg->attr = attr_delta;
  auto r = co_await ctx_.rpc->Call(ctx_.cluster->ServerNode(attr_server), msg);
  if (v->dead) co_return UnavailableError();
  if (!r.ok()) {
    co_return r.status();
  }
  const auto* resp = net::MsgAs<LinkRefUpdateResp>(*r);
  if (resp == nullptr || resp->status != StatusCode::kOk) {
    co_return Status(resp == nullptr ? StatusCode::kInternal : resp->status);
  }
  if (out != nullptr) {
    *out = resp->attrs;
  }
  co_return OkStatus();
}

sim::Task<void> LinkManager::HandleLinkRefUpdate(net::Packet p, VolPtr v) {
  const auto* msg = static_cast<const LinkRefUpdate*>(p.body.get());
  co_await ctx_.cpu->Run(ctx_.costs->op_dispatch);
  if (v->dead) co_return;
  auto resp = std::make_shared<LinkRefUpdateResp>();
  Attr attrs;
  Status s = co_await UpdateLinkCount(v, msg->file_id, ctx_.config->index,
                                      msg->delta, &attrs, msg->attr);
  if (v->dead) co_return;
  resp->status = s.ok() ? StatusCode::kOk : s.code();
  resp->nlink = attrs.nlink;
  resp->attrs = attrs;
  ctx_.rpc->Respond(p, resp);
}

sim::Task<void> LinkManager::HandleLinkConvert(net::Packet p, VolPtr v) {
  const auto* msg = static_cast<const LinkConvert*>(p.body.get());
  co_await ctx_.cpu->Run(ctx_.costs->op_dispatch);
  if (v->dead) co_return;
  const std::string ikey = InodeKey(msg->pid, msg->name);
  auto resp = std::make_shared<LinkConvertResp>();
  auto lock = co_await v->ShardForKey(ikey).inode_locks.AcquireExclusive(ikey);
  if (v->dead) co_return;
  co_await ctx_.cpu->Run(ctx_.costs->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (!value.has_value()) {
    resp->status = StatusCode::kNotFound;
    ctx_.rpc->Respond(p, resp);
    co_return;
  }
  Attr attr = Attr::Decode(*value);
  if (attr.is_dir()) {
    resp->status = StatusCode::kIsADirectory;
    ctx_.rpc->Respond(p, resp);
    co_return;
  }
  if (attr.type == FileType::kReference) {
    // Already split: just bump the count at the attributes owner.
    lock.Release();
    Status s = co_await UpdateLinkCount(
        v, attr.id, static_cast<uint32_t>(attr.size), +1, nullptr);
    if (v->dead) co_return;
    resp->status = s.ok() ? StatusCode::kOk : s.code();
    resp->file_id = attr.id;
    resp->attr_server = static_cast<uint32_t>(attr.size);
    ctx_.rpc->Respond(p, resp);
    co_return;
  }
  // First link: split into reference + attributes object, both local (§5.5).
  // The original name's row may sit in the switch cache from when it was a
  // plain file; after the split its live attributes (nlink) move to the
  // shared object, which later updates cannot evict by this fingerprint.
  // Drop it before the rewrite commits, under the exclusive inode lock.
  co_await EvictSwitchCacheEntry(ctx_, v, FingerprintOf(msg->pid, msg->name));
  if (v->dead) co_return;
  Attr attrs = attr;
  attrs.nlink = 2;  // the original name plus the new link
  Attr ref;
  ref.id = attr.id;
  ref.type = FileType::kReference;
  ref.size = ctx_.config->index;  // attributes stay with the original owner
  {
    OpCommitRecord rec;
    rec.op = OpType::kLink;
    rec.inode_key = AttrKey(attr.id);
    rec.inode_value = attrs.Encode();
    co_await ctx_.cpu->Run(ctx_.costs->wal_append);
    if (v->dead) co_return;
    ctx_.durable->wal.Append(kWalOpCommit, rec.Encode());
  }
  {
    OpCommitRecord rec;
    rec.op = OpType::kLink;
    rec.inode_key = ikey;
    rec.inode_value = ref.Encode();
    co_await ctx_.cpu->Run(ctx_.costs->wal_append);
    if (v->dead) co_return;
    ctx_.durable->wal.Append(kWalOpCommit, rec.Encode());
  }
  co_await ctx_.cpu->Run(2 * ctx_.costs->kv_put);
  if (v->dead) co_return;
  v->kv.Put(AttrKey(attr.id), attrs.Encode());
  v->kv.Put(ikey, ref.Encode());
  resp->status = StatusCode::kOk;
  resp->file_id = attr.id;
  resp->attr_server = ctx_.config->index;
  ctx_.rpc->Respond(p, resp);
}

sim::Task<void> LinkManager::HandleLink(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  ctx_.stats->ops++;
  co_await ctx_.cpu->Run(ctx_.costs->op_dispatch);
  if (v->dead) co_return;
  const PathRef& dst = req->ref;
  const PathRef& src = req->ref2;
  const std::string ikey = InodeKey(dst.pid, dst.name);
  const psw::Fingerprint pfp = dst.parent_fp;

  auto cl_lock =
      co_await v->ShardFor(pfp).changelog_locks.AcquireExclusive(FpKey(pfp));
  if (v->dead) co_return;
  auto ino_lock =
      co_await v->ShardForKey(ikey).inode_locks.AcquireExclusive(ikey);
  if (v->dead) co_return;
  co_await ctx_.cpu->Run(ctx_.costs->path_check *
                         static_cast<sim::SimTime>(1 + dst.ancestors.size()));
  if (v->dead) co_return;
  auto stale = v->inval.Check(dst.ancestors);
  if (!stale.empty()) {
    ctx_.stats->stale_cache_bounces++;
    ctx_.RespondStale(p, std::move(stale));
    co_return;
  }
  co_await ctx_.cpu->Run(ctx_.costs->kv_get);
  if (v->dead) co_return;
  if (v->kv.Contains(ikey)) {
    ctx_.RespondStatus(p, StatusCode::kAlreadyExists);
    co_return;
  }

  // Split / bump at the source's owner (two-phase across servers).
  auto convert = std::make_shared<LinkConvert>();
  convert->pid = src.pid;
  convert->name = src.name;
  const psw::Fingerprint sfp = FingerprintOf(src.pid, src.name);
  auto r = co_await ctx_.rpc->Call(
      ctx_.cluster->ServerNode(ctx_.OwnerOf(sfp)), convert);
  if (v->dead) co_return;
  if (!r.ok()) {
    ctx_.RespondStatus(p, StatusCode::kUnavailable);
    co_return;
  }
  const auto* conv = net::MsgAs<LinkConvertResp>(*r);
  if (conv == nullptr || conv->status != StatusCode::kOk) {
    ctx_.RespondStatus(
        p, conv == nullptr ? StatusCode::kInternal : conv->status);
    co_return;
  }

  Attr ref;
  ref.id = conv->file_id;
  ref.type = FileType::kReference;
  ref.size = conv->attr_server;

  {
    // Per-log append mutex (see HandleRenameCommit): this leg appends while
    // holding only the destination inode lock, so the captured seq must be
    // pinned against concurrent appends/renumbering across the WAL await.
    auto append_lock =
        co_await v->ShardFor(pfp).changelog_append_locks.AcquireExclusive(
            ClAppendKey(pfp, dst.pid));
    if (v->dead) co_return;
    // sfs-lint: allow(borrow-across-suspend, log slot pinned by the held append mutex — a rebind erase needs this key's append lock, and changelog map nodes are reference-stable)
    ChangeLog& clog = v->GetChangeLog(pfp, dst.pid);
    ChangeLogEntry entry;
    entry.timestamp = ctx_.Now();
    entry.op = OpType::kCreate;
    entry.name = dst.name;
    entry.entry_type = FileType::kFile;
    entry.size_delta = 1;
    entry.seq = clog.last_appended_seq() + 1;

    OpCommitRecord rec;
    rec.op = OpType::kLink;
    rec.inode_key = ikey;
    rec.inode_value = ref.Encode();
    rec.parent_dir = dst.pid;
    rec.parent_fp = pfp;
    rec.entry = entry;
    rec.has_entry = true;
    co_await ctx_.cpu->Run(ctx_.costs->wal_append);
    if (v->dead) co_return;
    entry.wal_lsn = ctx_.durable->wal.Append(kWalOpCommit, rec.Encode());
    co_await ctx_.cpu->Run(ctx_.costs->kv_put);
    if (v->dead) co_return;
    v->kv.Put(ikey, ref.Encode());
    co_await ctx_.cpu->Run(ctx_.costs->changelog_append);
    if (v->dead) co_return;
    clog.Restore(entry);
  }

  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->attr = ref;
  co_await publisher_.PublishUpdate(&p, v, pfp, dst.pid, resp);
  if (v->dead) co_return;
  push_.MaybeSchedulePush(v, pfp, dst.pid);
}

}  // namespace switchfs::core
