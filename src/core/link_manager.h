// Hard links (paper §5.5): the first link splits a file into a reference
// inode plus a shared attributes object ("a" key) kept at the original
// owner; further links and unlinks bump/drop the shared reference count, and
// file ops on a reference chase the attributes object at its home server.
#ifndef SRC_CORE_LINK_MANAGER_H_
#define SRC_CORE_LINK_MANAGER_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/core/push_engine.h"
#include "src/core/server_context.h"
#include "src/net/packet.h"
#include "src/sim/task.h"

namespace switchfs::core {

class LinkManager {
 public:
  LinkManager(ServerContext& ctx, PushEngine& push, UpdatePublisher& publisher)
      : ctx_(ctx), push_(push), publisher_(publisher) {}
  LinkManager(const LinkManager&) = delete;
  LinkManager& operator=(const LinkManager&) = delete;

  // Client-facing kLink: creates the new reference entry (deferred parent
  // update) after converting/bumping the source at its owner.
  sim::Task<void> HandleLink(net::Packet p, VolPtr v);
  // First-link split (or count bump) at the source's owner.
  sim::Task<void> HandleLinkConvert(net::Packet p, VolPtr v);
  // Reference-count update at the attributes object's home server.
  sim::Task<void> HandleLinkRefUpdate(net::Packet p, VolPtr v);
  // delta: +1 link, -1 unlink, 0 read; `attr_delta` optionally rewrites the
  // shared mode/timestamps (SetAttr on a hard-linked file). Local when this
  // server holds the attributes object, else one RPC.
  sim::Task<Status> UpdateLinkCount(VolPtr v, InodeId file_id,
                                    uint32_t attr_server, int32_t delta,
                                    Attr* out,
                                    const AttrDelta& attr_delta = {});

 private:
  ServerContext& ctx_;
  PushEngine& push_;
  UpdatePublisher& publisher_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_LINK_MANAGER_H_
