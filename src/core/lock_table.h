// Reference-counted table of per-key reader/writer locks, used for inode
// locks and change-log locks on metadata servers. Slots are created on first
// acquisition and reclaimed when the last holder/waiter releases, so the
// table's footprint tracks the working set rather than the filesystem size.
//
// Each table carries a sim::LockClass describing its role in the server's
// lock order; in SFS_DISCIPLINE_CHECKS builds every grant is registered with
// the DisciplineChecker under the acquiring coroutine chain, which enforces
// the append-innermost and evict-requires-lock rules at runtime.
#ifndef SRC_CORE_LOCK_TABLE_H_
#define SRC_CORE_LOCK_TABLE_H_

#include <cassert>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/common/annotations.h"
#include "src/sim/discipline.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace switchfs::core {

class SFS_LOCKABLE LockTable {
 public:
  // `shard` is the table's shard domain tag for the cross-shard-lock rule
  // (src/sim/discipline.h): every per-shard table carries a process-unique
  // tag, so a chain mixing same-class locks from two shards is caught even
  // across server incarnations. -1 = untagged (clients, baselines, tests).
  explicit LockTable(sim::Simulator* sim,
                     sim::LockClass cls = sim::LockClass::kOther,
                     int shard = -1)
      : sim_(sim), class_(cls), shard_(shard) {}
  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  class [[nodiscard]] Handle {
   public:
    Handle() = default;
    Handle(LockTable* table, std::string key, sim::SharedMutex::Guard guard,
           uint64_t hold_id)
        : table_(table),
          key_(std::move(key)),
          guard_(std::move(guard)),
          hold_id_(hold_id) {}
    Handle(Handle&& o) noexcept
        : table_(std::exchange(o.table_, nullptr)),
          key_(std::move(o.key_)),
          guard_(std::move(o.guard_)),
          hold_id_(std::exchange(o.hold_id_, 0)) {}
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        Release();
        table_ = std::exchange(o.table_, nullptr);
        key_ = std::move(o.key_);
        guard_ = std::move(o.guard_);
        hold_id_ = std::exchange(o.hold_id_, 0);
      }
      return *this;
    }
    ~Handle() { Release(); }

    void Release() {
      if (table_ != nullptr) {
#if SFS_DISCIPLINE_CHECKS
        sim::DisciplineChecker::OnReleased(std::exchange(hold_id_, 0));
#endif
        guard_.Release();
        std::exchange(table_, nullptr)->Unref(key_);
      }
    }
    bool held() const { return table_ != nullptr; }

   private:
    LockTable* table_ = nullptr;
    std::string key_;
    sim::SharedMutex::Guard guard_;
    uint64_t hold_id_ = 0;
  };

  sim::Task<Handle> AcquireShared(std::string key) {
    Slot* slot = Ref(key);
    auto guard = co_await slot->mu.AcquireShared();
    uint64_t hold_id = 0;
#if SFS_DISCIPLINE_CHECKS
    hold_id = sim::DisciplineChecker::OnAcquired(
        co_await sim::discipline::CurrentChainId{}, class_,
        /*exclusive=*/false, key, shard_);
#endif
    co_return Handle(this, std::move(key), std::move(guard), hold_id);
  }

  sim::Task<Handle> AcquireExclusive(std::string key) {
    Slot* slot = Ref(key);
    auto guard = co_await slot->mu.AcquireExclusive();
    uint64_t hold_id = 0;
#if SFS_DISCIPLINE_CHECKS
    hold_id = sim::DisciplineChecker::OnAcquired(
        co_await sim::discipline::CurrentChainId{}, class_,
        /*exclusive=*/true, key, shard_);
#endif
    co_return Handle(this, std::move(key), std::move(guard), hold_id);
  }

  size_t slot_count() const { return slots_.size(); }
  sim::LockClass lock_class() const { return class_; }
  int shard() const { return shard_; }

 private:
  struct Slot {
    explicit Slot(sim::Simulator* sim) : mu(sim) {}
    sim::SharedMutex mu;
    int refs = 0;
  };

  Slot* Ref(const std::string& key) {
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      it = slots_.emplace(key, std::make_unique<Slot>(sim_)).first;
    }
    it->second->refs++;
    return it->second.get();
  }

  void Unref(const std::string& key) {
    auto it = slots_.find(key);
    assert(it != slots_.end());
    if (--it->second->refs == 0) {
      slots_.erase(it);
    }
  }

  sim::Simulator* sim_;
  sim::LockClass class_;
  int shard_ = -1;
  std::unordered_map<std::string, std::unique_ptr<Slot>> slots_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_LOCK_TABLE_H_
