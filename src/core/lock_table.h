// Reference-counted table of per-key reader/writer locks, used for inode
// locks and change-log locks on metadata servers. Slots are created on first
// acquisition and reclaimed when the last holder/waiter releases, so the
// table's footprint tracks the working set rather than the filesystem size.
#ifndef SRC_CORE_LOCK_TABLE_H_
#define SRC_CORE_LOCK_TABLE_H_

#include <cassert>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace switchfs::core {

class LockTable {
 public:
  explicit LockTable(sim::Simulator* sim) : sim_(sim) {}
  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  class [[nodiscard]] Handle {
   public:
    Handle() = default;
    Handle(LockTable* table, std::string key, sim::SharedMutex::Guard guard)
        : table_(table), key_(std::move(key)), guard_(std::move(guard)) {}
    Handle(Handle&& o) noexcept
        : table_(std::exchange(o.table_, nullptr)),
          key_(std::move(o.key_)),
          guard_(std::move(o.guard_)) {}
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        Release();
        table_ = std::exchange(o.table_, nullptr);
        key_ = std::move(o.key_);
        guard_ = std::move(o.guard_);
      }
      return *this;
    }
    ~Handle() { Release(); }

    void Release() {
      if (table_ != nullptr) {
        guard_.Release();
        std::exchange(table_, nullptr)->Unref(key_);
      }
    }
    bool held() const { return table_ != nullptr; }

   private:
    LockTable* table_ = nullptr;
    std::string key_;
    sim::SharedMutex::Guard guard_;
  };

  sim::Task<Handle> AcquireShared(std::string key) {
    Slot* slot = Ref(key);
    auto guard = co_await slot->mu.AcquireShared();
    co_return Handle(this, std::move(key), std::move(guard));
  }

  sim::Task<Handle> AcquireExclusive(std::string key) {
    Slot* slot = Ref(key);
    auto guard = co_await slot->mu.AcquireExclusive();
    co_return Handle(this, std::move(key), std::move(guard));
  }

  size_t slot_count() const { return slots_.size(); }

 private:
  struct Slot {
    explicit Slot(sim::Simulator* sim) : mu(sim) {}
    sim::SharedMutex mu;
    int refs = 0;
  };

  Slot* Ref(const std::string& key) {
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      it = slots_.emplace(key, std::make_unique<Slot>(sim_)).first;
    }
    it->second->refs++;
    return it->second.get();
  }

  void Unref(const std::string& key) {
    auto it = slots_.find(key);
    assert(it != slots_.end());
    if (--it->second->refs == 0) {
      slots_.erase(it);
    }
  }

  sim::Simulator* sim_;
  std::unordered_map<std::string, std::unique_ptr<Slot>> slots_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_LOCK_TABLE_H_
