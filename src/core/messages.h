// RPC message bodies for the SwitchFS protocol (client<->server and
// server<->server). Message type tags 100-199 are reserved for this module.
#ifndef SRC_CORE_MESSAGES_H_
#define SRC_CORE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/core/change_log.h"
#include "src/core/types.h"
#include "src/net/packet.h"
#include "src/pswitch/fingerprint.h"

namespace switchfs::core {

// One resolved ancestor: the directory id plus the server-side read time of
// the cache entry it came from. Invalidation checks compare this against the
// invalidation entry's timestamp (InfiniFS-style lazy invalidation): only
// entries cached *before* the invalidation are stale, so a failed rmdir does
// not poison re-fetched cache entries forever.
struct AncestorRef {
  InodeId id;
  int64_t cached_at = 0;
};

// A client-resolved reference to a (parent directory, name) target, plus the
// ancestor chain the resolution walked through (checked against server
// invalidation lists, §5.2.1 step 3).
struct PathRef {
  InodeId pid;                      // parent directory id
  psw::Fingerprint parent_fp = 0;   // parent directory's fingerprint
  std::string name;                 // target component name
  std::vector<AncestorRef> ancestors;
};

// --- client -> metadata server ---

struct MetaReq : net::Message {
  static constexpr uint32_t kType = 100;
  MetaReq() : Message(kType) {}
  OpType op = OpType::kStat;
  PathRef ref;
  uint32_t mode = 0644;       // create/mkdir permission bits
  PathRef ref2;               // rename destination / link source
  bool want_entries = false;  // monolithic readdir (A/B + recovery tooling)
  // Dedicated-tracker mode (§7.3.3): the client pre-queried the tracker and
  // forwards the scattered bit here (the switch path stamps ds.ret instead).
  bool scattered_hint = false;
  // Subtree routing keys (CephFS-sim): top-level component of the target
  // path (and of the rename destination).
  std::string top;
  std::string top2;
  // --- MetadataService v2 ---
  uint64_t dir_session = 0;  // kReaddirPage / kCloseDir: owner-side session
  uint64_t cookie = 0;       // kReaddirPage: resume position
  AttrDelta delta;           // kSetAttr
  // kBatchStat: every target the client resolved to this server. `ref` is
  // unused; per-target verdicts return in MetaResp::batch_status/batch_attrs
  // (parallel to this vector).
  std::vector<PathRef> targets;
  // kBulkInsert: names to create inside the directory `ref` points at (ref
  // carries pid / parent_fp / ancestors with an empty name). Every name in
  // one request hashes to this server; per-name verdicts return in
  // MetaResp::batch_status.
  std::vector<std::string> bulk_names;
};

struct MetaResp : net::Message {
  static constexpr uint32_t kType = 101;
  MetaResp() : Message(kType) {}
  explicit MetaResp(StatusCode s) : Message(kType), status(s) {}
  StatusCode status = StatusCode::kOk;
  Attr attr;
  std::vector<DirEntry> entries;      // readdir payload (one page for v2)
  std::vector<InodeId> stale_ids;     // kStaleCache: ancestors to invalidate
  // --- MetadataService v2 ---
  uint64_t dir_session = 0;  // kOpenDir: session the pages are served from
  uint64_t next_cookie = 0;  // kReaddirPage: pass to the next page call
  bool at_end = false;       // kReaddirPage: stream exhausted
  uint64_t dir_entries = 0;  // kOpenDir: snapshot cardinality (observability)
  // kBatchStat verdicts, parallel to MetaReq::targets. A per-target
  // kStaleCache points at stale_ids (union across targets); the overall
  // `status` stays kOk so healthy targets in the batch still resolve.
  std::vector<StatusCode> batch_status;
  std::vector<Attr> batch_attrs;
};

// --- dirty-set insert envelope (rides the kInsert packet, §5.2.1 step 6) ---
//
// Carries (a) the pre-built response the switch forwards to the client on
// success (7a), and (b) the change-log backlog the parent's owner needs to
// apply the update synchronously if the insert overflows and the address
// rewriter redirects the packet (§6.2). The mirror copy (7b) tells the
// executing server to release its locks.
struct InsertEnvelope : net::Message {
  static constexpr uint32_t kType = 102;
  InsertEnvelope() : Message(kType) {}
  net::MsgPtr client_resp;
  InodeId dir;                     // the parent directory being updated
  psw::Fingerprint fp = 0;
  uint32_t src_server = 0;         // metadata-server index of the origin
  uint64_t op_token = 0;           // matches the waiting create coroutine
  std::vector<ChangeLogEntry> backlog;  // full unacked backlog for `dir`
};

// --- aggregation (rides the kRemove multicast, §5.2.2 step 5) ---

struct AggCollect : net::Message {
  static constexpr uint32_t kType = 103;
  AggCollect() : Message(kType) {}
  psw::Fingerprint fp = 0;
  uint32_t initiator_server = 0;
  net::NodeId initiator_node = net::kInvalidNode;
  uint64_t agg_seq = 0;  // the dirty-set remove sequence number
  // rmdir: receivers insert the target into their invalidation lists before
  // snapshotting change-logs (Fig 6 step 5).
  bool invalidate = false;
  InodeId invalidate_id;
};

// Responder -> initiator: all pending change-log entries in the fingerprint
// group (RPC; the response is an empty ack).
struct AggEntries : net::Message {
  static constexpr uint32_t kType = 104;
  AggEntries() : Message(kType) {}
  psw::Fingerprint fp = 0;
  uint64_t agg_seq = 0;
  uint32_t src_server = 0;
  struct PerDir {
    InodeId dir;
    std::vector<ChangeLogEntry> entries;
  };
  std::vector<PerDir> dirs;
};

struct Ack : net::Message {
  static constexpr uint32_t kType = 105;
  Ack() : Message(kType) {}
  explicit Ack(StatusCode s) : Message(kType), status(s) {}
  StatusCode status = StatusCode::kOk;
};

// Initiator -> all responders (multicast): aggregation complete; mark entries
// up to the per-directory acked seq as applied and release change-log locks
// (§5.2.2 steps 9a/9b).
struct AggDone : net::Message {
  static constexpr uint32_t kType = 106;
  AggDone() : Message(kType) {}
  psw::Fingerprint fp = 0;
  uint64_t agg_seq = 0;
  // (source server, dir, acked seq): each responder picks out its own rows.
  struct AckedRow {
    uint32_t src_server;
    InodeId dir;
    uint64_t acked_seq;
  };
  std::vector<AckedRow> acked;
  // Directories in the group that were renamed away (moved tombstone at the
  // initiator): the collected entries were NOT applied and are NOT acked —
  // each source trims the pre-rename applied prefix (applied_seq) and
  // re-keys the rest of its change-log under new_fp toward new_owner
  // (the aggregation-path analog of PushResp's kMoved section status).
  struct MovedRow {
    uint32_t src_server;
    InodeId dir;
    uint64_t applied_seq;  // prefix the old owner applied before the rename
    psw::Fingerprint new_fp;
    uint32_t new_owner;
    uint64_t rename_epoch;
  };
  std::vector<MovedRow> moved;
};

// --- proactive change-log push (§5.3) ---
//
// Pushes are batched per owner server, not per directory: one PushReq
// coalesces every ready change-log headed to the same owner into PerDir
// sections, up to push_mtu_entries entries total (overflow splits across
// packets). The owner applies each section through Aggregation::ApplyEntries
// and replies with a per-directory acked-seq vector. Exception: the
// synchronous-fallback path (SwitchServer::SyncParentUpdate) sends one
// directory's full backlog in a single request — the op blocks on the apply,
// so splitting would only add round trips.

struct PushReq : net::Message {
  static constexpr uint32_t kType = 107;
  PushReq() : Message(kType) {}
  uint32_t src_server = 0;
  struct PerDir {
    InodeId dir;
    psw::Fingerprint fp = 0;
    std::vector<ChangeLogEntry> entries;  // FIFO prefix of the unacked backlog
    // Per-(dir, src) idempotency token, minted monotonically by the source
    // per section. The owner commits it with the applied section (WAL
    // kWalEntryApply records) and no-ops + re-acks any section whose token
    // it has already committed, so a duplicated delivery (retransmit after
    // a lost ack, rebind replay) applies exactly once. 0 = untokened
    // (legacy/aggregation paths; hwm-lane dedup still applies).
    uint64_t batch_token = 0;
  };
  std::vector<PerDir> dirs;
};

struct PushResp : net::Message {
  static constexpr uint32_t kType = 108;
  PushResp() : Message(kType) {}
  StatusCode status = StatusCode::kOk;
  // Per-section verdict. kApplied is the normal case; kMoved tells the
  // source the directory was renamed away (moved tombstone at this owner)
  // and the section's entries must be re-keyed, not trimmed.
  enum class SectionStatus : uint8_t {
    kApplied = 0,  // entries up to acked_seq applied (or obsolete: dir removed)
    kMoved = 1,    // dir renamed away: re-key the log to new_fp / new_owner
  };
  // One row per PushReq section.
  //  * kApplied: acked_seq is the applied high-water mark; for a directory
  //    that no longer exists at the owner (removed since the entries were
  //    logged) it is the section's max seq, so the source trims the obsolete
  //    backlog instead of re-pushing it forever.
  //  * kMoved: acked_seq is the prefix this owner applied *before* the
  //    rename (those entries migrated with the directory's entry list, so
  //    re-applying them at the new owner would double-count); the source
  //    trims that prefix and rebinds the rest under new_fp toward new_owner.
  //    rename_epoch echoes the tombstone's epoch for observability; the
  //    ordering check itself lives at tombstone install (newest epoch wins,
  //    ServerVolatile::InstallMovedTombstone), so a verdict always reflects
  //    the latest rename this owner knows of.
  struct AckedDir {
    InodeId dir;
    uint64_t acked_seq = 0;
    SectionStatus status = SectionStatus::kApplied;
    psw::Fingerprint new_fp = 0;  // kMoved only
    uint32_t new_owner = 0;       // kMoved only
    uint64_t rename_epoch = 0;    // kMoved only
  };
  std::vector<AckedDir> acked;
  // Adaptive pacing hint (ns): non-zero when this owner's apply backlog is
  // deep (ServerConfig::push_busy_threshold). The source pusher defers its
  // next MTU-triggered drain toward this owner by this long, letting the
  // idle timer coalesce a bigger batch instead of hammering a busy owner.
  int64_t retry_after = 0;
};

// Owner -> origin server after a synchronous fallback apply (§5.2.1): mark
// the backlog applied and release the operation's locks. `fp` scopes the
// trim to the change-log the backlog was sent from: acked_seq is meaningful
// only under that fingerprint's numbering, and a concurrent moved_fp rebind
// may have re-keyed (re-numbered) the directory's log under another one.
struct FallbackDone : net::Message {
  static constexpr uint32_t kType = 109;
  FallbackDone() : Message(kType) {}
  InodeId dir;
  psw::Fingerprint fp = 0;
  uint64_t op_token = 0;
  uint64_t acked_seq = 0;
};

// --- lookups (path resolution) ---

struct LookupReq : net::Message {
  static constexpr uint32_t kType = 110;
  LookupReq() : Message(kType) {}
  InodeId pid;
  std::string name;
  std::vector<AncestorRef> ancestors;
};

struct LookupResp : net::Message {
  static constexpr uint32_t kType = 111;
  LookupResp() : Message(kType) {}
  StatusCode status = StatusCode::kOk;
  Attr attr;
  // Server-side time the inode was read under lock; becomes the cache
  // entry's `cached_at` so later invalidations are ordered correctly.
  int64_t read_at = 0;
  std::vector<InodeId> stale_ids;
};

// --- recovery (§5.4.2) ---

struct InvalCloneReq : net::Message {
  static constexpr uint32_t kType = 112;
  InvalCloneReq() : Message(kType) {}
};

struct InvalCloneResp : net::Message {
  static constexpr uint32_t kType = 113;
  InvalCloneResp() : Message(kType) {}
  std::vector<std::pair<InodeId, int64_t>> entries;
};

// --- rename distributed transaction (§5.2, coordinator-driven 2PL/2PC) ---

struct RenamePrepare : net::Message {
  static constexpr uint32_t kType = 114;
  RenamePrepare() : Message(kType) {}
  uint64_t txn_id = 0;
  InodeId pid;
  std::string name;
  bool must_exist = false;   // source leg: validate presence, lock, return attr
  bool must_absent = false;  // destination leg: validate absence, lock
};

struct RenamePrepareResp : net::Message {
  static constexpr uint32_t kType = 115;
  RenamePrepareResp() : Message(kType) {}
  StatusCode status = StatusCode::kOk;
  Attr attr;  // source attr when must_exist
};

struct RenameCommit : net::Message {
  static constexpr uint32_t kType = 116;
  RenameCommit() : Message(kType) {}
  uint64_t txn_id = 0;
  bool abort = false;
  // Applied on the leg's server under the txn's locks:
  bool delete_inode = false;  // source leg
  bool put_inode = false;     // destination leg
  Attr inode;                 // inode to write (destination leg)
  // Deferred parent-directory update entry to log locally (change-log).
  bool log_parent_update = false;
  InodeId parent_dir;
  psw::Fingerprint parent_fp = 0;
  OpType parent_op = OpType::kCreate;
  std::string parent_entry_name;
  FileType parent_entry_type = FileType::kFile;
  // Directory renames: the entry list migrates with the inode.
  bool install = false;
  std::vector<DirEntry> install_entries;
  // Source leg of a directory rename: install a moved tombstone (dir id ->
  // new fingerprint / owner) in place of a bare removal, so change-log
  // entries that committed under the old fingerprint in the rename race
  // window are re-keyed to the new owner instead of trimmed as obsolete.
  // The committing server stamps the tombstone's rename epoch.
  bool moved_tombstone = false;
  InodeId moved_dir;                 // the moving directory's id
  psw::Fingerprint moved_new_fp = 0;
  uint32_t moved_new_owner = 0;
  std::string top;  // subtree routing key of the leg's parent (CephFS-sim)
};

// --- hard links (§5.5): reference object pointing at a remote attributes
// object; ref-count updates are 2PC'd by the owning servers. ---

struct LinkRefUpdate : net::Message {
  static constexpr uint32_t kType = 117;
  LinkRefUpdate() : Message(kType) {}
  InodeId file_id;   // attributes-object id
  int32_t delta = 0; // +1 link, -1 unlink, 0 read
  AttrDelta attr;    // setattr on a hard-linked file (mode / times)
};

struct LinkRefUpdateResp : net::Message {
  static constexpr uint32_t kType = 118;
  LinkRefUpdateResp() : Message(kType) {}
  StatusCode status = StatusCode::kOk;
  uint32_t nlink = 0;  // post-update link count
  Attr attrs;          // current shared attributes (delta == 0 reads them)
};

// First hard link to a file: its owner splits the inode into a reference and
// a shared attributes object (§5.5), bumping the link count.
struct LinkConvert : net::Message {
  static constexpr uint32_t kType = 126;
  LinkConvert() : Message(kType) {}
  InodeId pid;
  std::string name;
};

struct LinkConvertResp : net::Message {
  static constexpr uint32_t kType = 127;
  LinkConvertResp() : Message(kType) {}
  StatusCode status = StatusCode::kOk;
  InodeId file_id;         // the attributes object's id
  uint32_t attr_server = 0;  // server index holding the attributes object
};

// --- alternative dirty-state trackers (§7.3.3, Fig 15/16) ---

struct TrackerOp : net::Message {
  static constexpr uint32_t kType = 120;
  TrackerOp() : Message(kType) {}
  net::DsOp op = net::DsOp::kQuery;
  psw::Fingerprint fp = 0;
  uint64_t remove_seq = 0;
  uint32_t origin_server = 0;
};

struct TrackerResp : net::Message {
  static constexpr uint32_t kType = 121;
  TrackerResp() : Message(kType) {}
  bool ok = false;       // insert success / remove executed
  bool present = false;  // query result
  // Chain-replicated tracker group: a downstream replica did not acknowledge
  // (it is crashed or partitioned). `fault_node` names the unreachable hop so
  // the tracker group can start failover on the right replica.
  bool chain_fault = false;
  net::NodeId fault_node = net::kInvalidNode;
};

// Owner-server tracker mode: mark a directory scattered at its owner.
struct MarkScattered : net::Message {
  static constexpr uint32_t kType = 122;
  MarkScattered() : Message(kType) {}
  psw::Fingerprint fp = 0;
};

// Directory-id invalidation broadcast (rename / chmod of a directory). For
// renames it doubles as the eager moved_fp signal: on receipt every server
// cleans up an empty stale-era (old_fp, id) change-log slot, or — if it
// holds pending entries — pushes toward the old owner immediately so the
// kMoved verdict re-keys them with the tombstone's authoritative applied
// marks. Fetching the verdict now, rather than at the next idle timeout,
// keeps old-era entries ordered ahead of new-era entries for the same name:
// the broadcast is one hop and the verdict one round trip, while a client
// op via the new path needs the rename response plus at least one
// resolution RPC. The verdict / AggDone moved rows remain the catch-up for
// servers that never see the broadcast.
struct InvalBroadcast : net::Message {
  static constexpr uint32_t kType = 123;
  InvalBroadcast() : Message(kType) {}
  InodeId id;
  // Rename-only rebind hint (moved = true); chmod broadcasts leave it unset.
  bool moved = false;
  psw::Fingerprint old_fp = 0;
  psw::Fingerprint new_fp = 0;
};

// Asks a directory's owner to aggregate a fingerprint group now (rename of a
// source directory, §5.2; recovery tooling).
struct AggregateReq : net::Message {
  static constexpr uint32_t kType = 124;
  AggregateReq() : Message(kType) {}
  psw::Fingerprint fp = 0;
};

// Tracker-group failover (§5.4.2 analog for tracker faults): the rebuilt
// tracker reconstructs its dirty set from the servers' durable scattered-key
// state — every fingerprint group that still holds pending change-log
// entries (entries are WAL-backed, so this survives server crashes too).
struct ScatteredSnapshotReq : net::Message {
  static constexpr uint32_t kType = 128;
  ScatteredSnapshotReq() : Message(kType) {}
};

struct ScatteredSnapshotResp : net::Message {
  static constexpr uint32_t kType = 129;
  ScatteredSnapshotResp() : Message(kType) {}
  std::vector<psw::Fingerprint> fps;  // fingerprints with pending entries
};

// Entry-list migration leg for directory renames: the renamed directory's
// entry list moves with its inode to the new owner.
struct EntryListBlob : net::Message {
  static constexpr uint32_t kType = 125;
  EntryListBlob() : Message(kType) {}
  InodeId dir;
  std::vector<DirEntry> entries;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_MESSAGES_H_
