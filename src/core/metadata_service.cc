#include "src/core/metadata_service.h"

namespace switchfs::core {

sim::Task<std::vector<StatusOr<Attr>>> MetadataService::BatchStatDir(
    const std::vector<std::string>& paths) {
  // Unbatched fallback: one StatDir round trip per target. Result i
  // corresponds to paths[i], as in BatchStat.
  std::vector<StatusOr<Attr>> results;
  results.reserve(paths.size());
  for (const std::string& path : paths) {
    results.push_back(co_await StatDir(path));
  }
  co_return results;
}

sim::Task<StatusOr<std::vector<DirEntry>>> MetadataService::Readdir(
    const std::string& path) {
  // A whole-directory listing is one paged stream drained to the end. A
  // kStaleHandle mid-stream (session expired or the owner crashed) restarts
  // the scan from a fresh OpenDir: resuming would splice two snapshots and
  // could drop or duplicate entries across the seam.
  constexpr int kMaxRestarts = 4;
  for (int attempt = 0; attempt <= kMaxRestarts; ++attempt) {
    auto handle = co_await OpenDir(path);
    if (!handle.ok()) {
      co_return handle.status();
    }
    std::vector<DirEntry> all;
    uint64_t cookie = kDirStreamStart;
    bool stale = false;
    while (true) {
      auto page = co_await ReaddirPage(*handle, cookie);
      if (!page.ok()) {
        if (page.status().code() == StatusCode::kStaleHandle) {
          stale = true;
          break;
        }
        (void)co_await CloseDir(*handle);
        co_return page.status();
      }
      for (DirEntry& e : page->entries) {
        all.push_back(std::move(e));
      }
      if (page->at_end) {
        (void)co_await CloseDir(*handle);
        co_return all;
      }
      cookie = page->next_cookie;
    }
    if (stale) {
      (void)co_await CloseDir(*handle);  // drops the client-side handle state
      continue;
    }
  }
  co_return StaleHandleError("readdir restarts exhausted");
}

}  // namespace switchfs::core
