// The public client-facing API (MetadataService v2). Every system in the
// repository — SwitchFS and the four baselines — exposes this interface, so
// workloads, examples, benches, and the consistency tests run unmodified
// across systems.
//
// v2 redesign (directory handles, cookie-paged readdir, batched lookups):
//
//  * OpenDir / ReaddirPage / CloseDir replace the monolithic everything-in-
//    one-RPC directory listing. OpenDir makes the directory consistent once
//    (SwitchFS: dirty-set check + aggregation under the owner's agg gate)
//    and pins an owner-side snapshot session; ReaddirPage serves bounded
//    pages from that snapshot via an opaque cookie. The page stream never
//    drops an entry committed before the open and never duplicates an entry
//    across pages, regardless of concurrent creates/unlinks/renames — they
//    land in the live entry list, not the pinned snapshot. Sessions expire
//    server-side after an inactivity TTL (and die with an owner crash);
//    a page call against a dead session fails with kStaleHandle and the
//    caller re-opens.
//  * BatchStat amortizes lookup fan-out: the client groups targets by owner
//    placement and ships one multi-target request per server (the read-path
//    mirror of the per-owner push batching).
//  * SetAttr is the chmod/utimens-class partial attribute update, committed
//    through the same WAL path as the other mutations.
//
// All calls are coroutines driven by the discrete-event simulator; latency
// and throughput fall out of simulated time.
#ifndef SRC_CORE_METADATA_SERVICE_H_
#define SRC_CORE_METADATA_SERVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/types.h"
#include "src/sim/task.h"

namespace switchfs::core {

// Client-local directory handle returned by OpenDir. Opaque: the id indexes
// the client's handle table (which remembers the owner routing and the
// server-side session); handles are not transferable between clients.
struct DirHandle {
  uint64_t id = 0;
  bool valid() const { return id != 0; }
};

// One page of a directory stream. `next_cookie` feeds the next ReaddirPage
// call; when `at_end` is set the stream is exhausted (next_cookie is then
// meaningless). Cookies are opaque to callers and only valid for the handle
// they came from.
struct DirPage {
  std::vector<DirEntry> entries;
  uint64_t next_cookie = 0;
  bool at_end = false;
};

// Cookie that starts a directory stream from the beginning.
inline constexpr uint64_t kDirStreamStart = 0;

// --- byte-budget page packing (shared by all five systems) ---
//
// A readdir page is filled until the next entry would overflow the
// transport's `mtu_bytes` budget; `mtu_entries` remains only a hard cap.
// Each entry's wire footprint is its name plus the fixed framing a
// production page carries per entry: a type tag, a length-prefixed name,
// and the readdirplus-style attr summary (id + size + mtime).
inline constexpr size_t kDirEntryWireFixed = 19;

inline size_t DirEntryWireSize(const std::string& name) {
  return kDirEntryWireFixed + name.size();
}

// True if an entry of `wire` bytes still fits a page currently holding
// `used` bytes / `count` entries. Every page admits at least one entry so
// oversized names cannot wedge a stream. `mtu_bytes <= 0` disables the byte
// budget (entry-count-only paging).
inline bool PageHasRoom(size_t used, int count, size_t wire, int mtu_bytes,
                        int max_entries) {
  if (count == 0) {
    return true;
  }
  if (max_entries > 0 && count >= max_entries) {
    return false;
  }
  return mtu_bytes <= 0 || used + wire <= static_cast<size_t>(mtu_bytes);
}

class MetadataService {
 public:
  virtual ~MetadataService() = default;

  // Double-inode operations (§5.2.1, §5.2.3).
  virtual sim::Task<Status> Create(const std::string& path) = 0;
  virtual sim::Task<Status> Unlink(const std::string& path) = 0;
  virtual sim::Task<Status> Mkdir(const std::string& path) = 0;
  virtual sim::Task<Status> Rmdir(const std::string& path) = 0;

  // Single-inode operations.
  virtual sim::Task<StatusOr<Attr>> Stat(const std::string& path) = 0;
  virtual sim::Task<StatusOr<Attr>> StatDir(const std::string& path) = 0;
  virtual sim::Task<StatusOr<Attr>> Open(const std::string& path) = 0;
  virtual sim::Task<Status> Close(const std::string& path) = 0;

  // Partial attribute update (chmod / utimens). Commits at the target's
  // owner through the regular mutation WAL path.
  virtual sim::Task<Status> SetAttr(const std::string& path,
                                    const AttrDelta& delta) = 0;

  // --- directory streams (v2) ---
  virtual sim::Task<StatusOr<DirHandle>> OpenDir(const std::string& path) = 0;
  // Serves the page at `cookie` (kDirStreamStart begins the stream). Pages
  // fill to the system's `mtu_bytes` budget (DirEntryWireSize per entry),
  // with `mtu_entries` as the hard entry-count cap.
  // Fails with kStaleHandle when the server-side session expired or died.
  virtual sim::Task<StatusOr<DirPage>> ReaddirPage(const DirHandle& handle,
                                                   uint64_t cookie) = 0;
  virtual sim::Task<Status> CloseDir(const DirHandle& handle) = 0;

  // --- batched lookups (v2) ---
  // Stats every path; result i corresponds to paths[i]. Targets are grouped
  // by owner placement into multi-target requests (one RPC per server, not
  // per path).
  virtual sim::Task<std::vector<StatusOr<Attr>>> BatchStat(
      const std::vector<std::string>& paths) = 0;

  // BatchStat whose targets are directories: each target's attr reflects
  // every update committed before the call (SwitchFS runs the per-target
  // dirty-set check + aggregation under the owner's agg gate, batched into
  // one multi-target request per server — a scan over N subdirectories
  // costs one round trip per owner instead of N). The default drains the
  // targets through per-path StatDir calls; systems with a batched native
  // path override.
  virtual sim::Task<std::vector<StatusOr<Attr>>> BatchStatDir(
      const std::vector<std::string>& paths);

  // --- bulk insert (v2) ---
  // Creates `names` inside the open directory `handle` — the create-path
  // mirror of BatchStat. The client groups names by owner placement and
  // ships one multi-entry request per server per page-fill, each committed
  // as a single WAL record. Result i corresponds to names[i] (kOk or
  // kAlreadyExists per entry; a whole-request failure such as kStaleHandle
  // is replicated to every slot it covered).
  virtual sim::Task<std::vector<Status>> BulkInsert(
      const DirHandle& handle, const std::vector<std::string>& names) = 0;

  // Rename (§5.2: distributed transaction through a central coordinator).
  virtual sim::Task<Status> Rename(const std::string& from,
                                   const std::string& to) = 0;

  // Whole-directory listing, built on the paged stream: OpenDir, drain the
  // pages, CloseDir. Restarts from scratch on a kStaleHandle mid-stream
  // (expired session / owner crash), so the returned listing is always one
  // coherent snapshot. Overridable for systems with a cheaper native path.
  virtual sim::Task<StatusOr<std::vector<DirEntry>>> Readdir(
      const std::string& path);
};

}  // namespace switchfs::core

#endif  // SRC_CORE_METADATA_SERVICE_H_
