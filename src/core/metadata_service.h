// The public client-facing API. Every system in the repository — SwitchFS
// and the four baselines — exposes this interface, so workloads, examples,
// benches, and the consistency tests run unmodified across systems.
//
// All calls are coroutines driven by the discrete-event simulator; latency
// and throughput fall out of simulated time.
#ifndef SRC_CORE_METADATA_SERVICE_H_
#define SRC_CORE_METADATA_SERVICE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/types.h"
#include "src/sim/task.h"

namespace switchfs::core {

class MetadataService {
 public:
  virtual ~MetadataService() = default;

  // Double-inode operations (§5.2.1, §5.2.3).
  virtual sim::Task<Status> Create(const std::string& path) = 0;
  virtual sim::Task<Status> Unlink(const std::string& path) = 0;
  virtual sim::Task<Status> Mkdir(const std::string& path) = 0;
  virtual sim::Task<Status> Rmdir(const std::string& path) = 0;

  // Single-inode operations.
  virtual sim::Task<StatusOr<Attr>> Stat(const std::string& path) = 0;
  virtual sim::Task<StatusOr<Attr>> StatDir(const std::string& path) = 0;
  virtual sim::Task<StatusOr<std::vector<DirEntry>>> Readdir(
      const std::string& path) = 0;
  virtual sim::Task<StatusOr<Attr>> Open(const std::string& path) = 0;
  virtual sim::Task<Status> Close(const std::string& path) = 0;

  // Rename (§5.2: distributed transaction through a central coordinator).
  virtual sim::Task<Status> Rename(const std::string& from,
                                   const std::string& to) = 0;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_METADATA_SERVICE_H_
