#include "src/core/placement.h"

#include <algorithm>
#include <cassert>

namespace switchfs::core {

void HashRing::AddServer(uint32_t server_index) {
  assert(std::find(servers_.begin(), servers_.end(), server_index) ==
         servers_.end());
  servers_.push_back(server_index);
  for (int v = 0; v < kVnodesPerServer; ++v) {
    const uint64_t point =
        Mix64((static_cast<uint64_t>(server_index) << 16) | static_cast<uint64_t>(v));
    ring_[point] = server_index;
  }
}

void HashRing::RemoveServer(uint32_t server_index) {
  servers_.erase(std::remove(servers_.begin(), servers_.end(), server_index),
                 servers_.end());
  for (int v = 0; v < kVnodesPerServer; ++v) {
    const uint64_t point =
        Mix64((static_cast<uint64_t>(server_index) << 16) | static_cast<uint64_t>(v));
    ring_.erase(point);
  }
}

uint32_t HashRing::Owner(psw::Fingerprint fp) const {
  assert(!ring_.empty());
  const uint64_t point = Mix64(fp);
  auto it = ring_.lower_bound(point);
  if (it == ring_.end()) {
    it = ring_.begin();
  }
  return it->second;
}

}  // namespace switchfs::core
