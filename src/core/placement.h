// Inode placement: consistent hashing from the 49-bit fingerprint space to
// metadata servers (paper §5.5: "SwitchFS uses consistent hashing to map
// inodes to servers"). Virtual nodes smooth the load distribution; the ring
// lives on clients and servers (the switch never needs it, §5.5).
//
// Because the placement key *is* the fingerprint, all directories in one
// fingerprint group land on one server — the invariant §4.3 requires.
#ifndef SRC_CORE_PLACEMENT_H_
#define SRC_CORE_PLACEMENT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/hash.h"
#include "src/pswitch/fingerprint.h"

namespace switchfs::core {

class HashRing {
 public:
  static constexpr int kVnodesPerServer = 64;

  HashRing() = default;
  explicit HashRing(const std::vector<uint32_t>& server_indices) {
    for (uint32_t s : server_indices) {
      AddServer(s);
    }
  }

  void AddServer(uint32_t server_index);
  void RemoveServer(uint32_t server_index);

  // Owner server of a fingerprint.
  uint32_t Owner(psw::Fingerprint fp) const;

  size_t server_count() const { return servers_.size(); }
  const std::vector<uint32_t>& servers() const { return servers_; }

 private:
  std::map<uint64_t, uint32_t> ring_;
  std::vector<uint32_t> servers_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_PLACEMENT_H_
