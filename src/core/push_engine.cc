#include "src/core/push_engine.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/cache_evict.h"
#include "src/sim/discipline.h"
#include "src/sim/sync.h"
#include "src/tracker/dirty_tracker.h"

namespace switchfs::core {

void PushEngine::EnqueueBacklog(VolPtr v, psw::Fingerprint fp,
                                const InodeId& dir) {
  v->ShardFor(fp).pushers[ctx_.OwnerOf(fp)].ready.insert({fp, dir});
}

void PushEngine::MaybeSchedulePush(VolPtr v, psw::Fingerprint fp,
                                   const InodeId& dir) {
  const size_t shard = ShardIndexForFp(fp, v->num_shards());
  auto logs = v->ShardAt(shard).changelogs.find(fp);
  if (logs == v->ShardAt(shard).changelogs.end()) {
    return;
  }
  auto it = logs->second.find(dir);
  if (it == logs->second.end() || it->second.empty()) {
    return;
  }
  const uint32_t owner = ctx_.OwnerOf(fp);
  // sfs-lint: allow(borrow-across-suspend, non-coroutine function — pushers is a std::map whose slots are never erased)
  auto& st = v->ShardAt(shard).pushers[owner];
  st.ready.insert({fp, dir});
  st.activity++;
  if (st.retry_timer_armed) {
    // The owner is in failure backoff: let the retry timer pace the next
    // attempt instead of hammering a down owner at traffic rate.
    return;
  }
  if (static_cast<int>(it->second.size()) >= ctx_.config->push_mtu_entries ||
      ReadyEntries(v->ShardAt(shard), st, ctx_.config->push_mtu_entries) >=
          ctx_.config->push_mtu_entries) {
    if (ctx_.Now() < st.pace_until) {
      // The owner asked for breathing room (PushResp::retry_after): defer
      // the MTU-triggered drain to the idle timer, which waits out the
      // pacing deadline and flushes a bigger coalesced batch.
      ctx_.stats->push_paced_drains++;
      if (!st.idle_timer_armed) {
        st.idle_timer_armed = true;
        sim::Spawn(OwnerIdleTimer(v, shard, owner));
      }
      return;
    }
    sim::Spawn(DrainOwner(v, shard, owner));
    return;
  }
  if (!st.idle_timer_armed) {
    st.idle_timer_armed = true;
    sim::Spawn(OwnerIdleTimer(v, shard, owner));
  }
}

int PushEngine::ReadyEntries(ServerShard& sh, OwnerPusher& st, int cap) const {
  int total = 0;
  for (auto it = st.ready.begin(); it != st.ready.end();) {
    const ChangeLog* log = nullptr;
    auto logs = sh.changelogs.find(it->first);
    if (logs != sh.changelogs.end()) {
      auto lit = logs->second.find(it->second);
      if (lit != logs->second.end()) {
        log = &lit->second;
      }
    }
    if (log == nullptr || log->empty()) {
      // Drained by a concurrent aggregation (or rebound away): prune, so
      // repeated scans stay O(mtu) instead of degrading to O(ready). A
      // later commit re-inserts the pair through MaybeSchedulePush.
      it = st.ready.erase(it);
      continue;
    }
    total += static_cast<int>(log->size());
    if (total >= cap) {
      break;
    }
    ++it;
  }
  return total;
}

sim::Task<void> PushEngine::OwnerIdleTimer(VolPtr v, size_t shard,
                                           uint32_t owner) {
  while (true) {
    const uint64_t seen = v->ShardAt(shard).pushers[owner].activity;
    co_await sim::Delay(ctx_.sim, ctx_.config->push_idle_timeout);
    if (v->dead) co_return;
    // sfs-lint: allow(borrow-across-suspend, pushers is a std::map whose slots are never erased — the reference is node-stable across suspensions)
    auto& st = v->ShardAt(shard).pushers[owner];
    if (st.ready.empty()) {
      st.idle_timer_armed = false;
      co_return;
    }
    if (st.activity == seen) {
      if (ctx_.Now() < st.pace_until) {
        continue;  // paced by the owner: wait another interval before flushing
      }
      // Quiet: flush the backlog (§5.3 "no new entries within an interval").
      st.idle_timer_armed = false;
      co_await DrainOwner(v, shard, owner);
      co_return;
    }
  }
}

void PushEngine::ArmRetry(VolPtr v, size_t shard, uint32_t owner) {
  auto& st = v->ShardAt(shard).pushers[owner];
  st.backoff_shift =
      std::min(st.backoff_shift + 1, ctx_.config->push_retry_max_backoff_shift);
  if (!st.retry_timer_armed) {
    st.retry_timer_armed = true;
    sim::Spawn(RetryTimer(v, shard, owner));
  }
}

sim::Task<void> PushEngine::RetryTimer(VolPtr v, size_t shard,
                                       uint32_t owner) {
  // A successful MTU-triggered drain may reset backoff_shift while this
  // timer is pending; clamp so the shift stays well-defined.
  const int shift = std::max(1, v->ShardAt(shard).pushers[owner].backoff_shift);
  const sim::SimTime delay = ctx_.config->push_retry_backoff << (shift - 1);
  co_await sim::Delay(ctx_.sim, delay);
  if (v->dead) co_return;
  v->ShardAt(shard).pushers[owner].retry_timer_armed = false;
  co_await DrainOwner(v, shard, owner);
}

sim::Task<void> PushEngine::DrainOwner(VolPtr v, size_t shard,
                                       uint32_t owner) {
  co_await DrainOwnerImpl(v, shard, owner, /*to_completion=*/false);
}

sim::Task<void> PushEngine::DrainOwnerBarrier(VolPtr v, uint32_t owner) {
  for (size_t shard = 0; shard < v->num_shards(); ++shard) {
    // Wait out an in-flight background drain: the single-flight guard would
    // otherwise no-op and the recovery flush would return with the backlog
    // still unapplied.
    while (v->ShardAt(shard).pushers[owner].draining) {
      co_await sim::Delay(ctx_.sim, sim::Microseconds(20));
      if (v->dead) co_return;
    }
    co_await DrainOwnerImpl(v, shard, owner, /*to_completion=*/true);
    if (v->dead) co_return;
  }
}

sim::Task<void> PushEngine::DrainOwnerImpl(VolPtr v, size_t shard,
                                           uint32_t owner,
                                           bool to_completion) {
  // sfs-lint: allow(borrow-across-suspend, pushers is a std::map whose slots are never erased — the reference is node-stable across suspensions)
  auto& st = v->ShardAt(shard).pushers[owner];
  if (st.draining) {
    co_return;  // a drain for this owner is already running
  }
  st.draining = true;
  while (!st.ready.empty()) {
    // ---- gather one MTU-bounded batch across the owner's ready logs ----
    auto req = std::make_shared<PushReq>();
    req->src_server = ctx_.config->index;
    std::vector<std::pair<psw::Fingerprint, InodeId>> took;
    int budget = ctx_.config->push_mtu_entries;
    // Snapshot at most one batch's worth of keys: every gathered section
    // carries at least one entry, so a batch never spans more than
    // mtu_entries logs (one log in per-dir mode). Gathered keys are erased,
    // so successive rounds walk the queue without re-copying it.
    std::vector<std::pair<psw::Fingerprint, InodeId>> want;
    const size_t key_cap = ctx_.config->batch_pushes
                               ? static_cast<size_t>(ctx_.config->push_mtu_entries)
                               : size_t{1};
    for (auto it = st.ready.begin();
         it != st.ready.end() && want.size() < key_cap; ++it) {
      want.push_back(*it);
    }
    size_t i = 0;
    while (i < want.size() && budget > 0) {
      const psw::Fingerprint fp = want[i].first;
      auto lock =
          co_await v->ShardAt(shard).changelog_locks.AcquireShared(FpKey(fp));
      if (v->dead) co_return;
      for (; i < want.size() && want[i].first == fp && budget > 0; ++i) {
        st.ready.erase(want[i]);
        auto logs = v->ShardAt(shard).changelogs.find(fp);
        if (logs == v->ShardAt(shard).changelogs.end()) {
          continue;
        }
        auto lit = logs->second.find(want[i].second);
        if (lit == logs->second.end() || lit->second.empty()) {
          continue;  // already drained by an aggregation
        }
        const auto& pending = lit->second.pending();
        const size_t take =
            std::min(static_cast<size_t>(budget), pending.size());
        PushReq::PerDir pd;
        pd.dir = want[i].second;
        pd.fp = fp;
        // Idempotency token: minted monotonically per source, one per
        // gathered section. A replay of this batch (lost response, retry
        // after rebind) re-presents the same token and the owner re-acks
        // without re-applying.
        pd.batch_token = v->push_token_counter++;
        pd.entries.assign(pending.begin(),
                          pending.begin() + static_cast<ptrdiff_t>(take));
        budget -= static_cast<int>(take);
        req->dirs.push_back(std::move(pd));
        took.push_back(want[i]);
      }
    }
    if (req->dirs.empty()) {
      // Every snapshotted log turned out empty (drained by a concurrent
      // aggregation). Re-check the queue rather than exit: an MTU-full log
      // enqueued while the gather was suspended would otherwise be stranded
      // (its MTU-triggered DrainOwner no-opped against our draining flag).
      // No spin: gathered keys were erased, so the loop only re-runs on
      // genuinely new insertions, whose logs are non-empty.
      continue;
    }

    // ---- deliver: owner-local apply or one batched RPC ----
    std::vector<PushResp::AckedDir> acked;
    if (owner == ctx_.config->index) {
      ctx_.stats->pushes_local++;
      // Every section in this batch belongs to `shard` (the queue is
      // per-shard), so fanning out to apply lanes would serialize on the
      // same lane anyway — apply inline.
      for (auto& pd : req->dirs) {
        PushResp::AckedDir row =
            co_await ApplySection(v, pd.dir, req->src_server, pd.fp,
                                  std::move(pd.entries), pd.batch_token);
        if (v->dead) co_return;
        acked.push_back(row);
        v->ShardFor(pd.fp).last_push[pd.fp] = ctx_.Now();
        ArmOwnerQuietTimer(v, pd.fp);
      }
    } else {
      size_t batch_entries = 0;
      for (const auto& pd : req->dirs) {
        batch_entries += pd.entries.size();
      }
      auto r = co_await ctx_.rpc->Call(ctx_.cluster->ServerNode(owner), req);
      if (v->dead) co_return;
      const auto* resp = r.ok() ? net::MsgAs<PushResp>(*r) : nullptr;
      if (resp == nullptr || resp->status != StatusCode::kOk) {
        // Owner unreachable (or replied garbage): re-queue the sections and
        // retry after a backoff — a failed push must never strand a backlog.
        ctx_.stats->push_failures++;
        for (const auto& key : took) {
          st.ready.insert(key);
        }
        st.draining = false;
        ArmRetry(v, shard, owner);
        co_return;
      }
      ctx_.stats->pushes_sent++;
      ctx_.stats->push_dirs_sent += req->dirs.size();
      ctx_.stats->push_entries_sent += batch_entries;
      acked = resp->acked;
      if (resp->retry_after > 0) {
        // Adaptive pacing: the owner's apply queue is deep. Remember the
        // deadline; MaybeSchedulePush and the loop below route the next
        // non-urgent drain through the idle timer until it passes.
        st.pace_until = std::max(st.pace_until, ctx_.Now() + resp->retry_after);
      }
    }

    // ---- trim acknowledged prefixes; re-queue logs that still hold work ---
    bool progressed = false;
    bool heavy_leftover = false;  // some re-queued log still holds >= an MTU
    struct Rebind {
      InodeId dir;
      psw::Fingerprint old_fp;
      psw::Fingerprint new_fp;
      uint64_t applied_seq;
    };
    std::vector<Rebind> rebinds;
    for (size_t pi = 0; pi < req->dirs.size(); ++pi) {
      const auto& pd = req->dirs[pi];
      // Rows come back one per section IN SECTION ORDER (both the local
      // apply loop and HandlePush). Match by index, not by dir: after a
      // same-owner rename the same directory can legitimately appear twice
      // in one batch under its old and new fingerprints, and a first-by-dir
      // scan would trim the second section with the other era's acked_seq —
      // numbering it never measured. Fall back to a dir scan only if the
      // responder returned a malformed row set.
      const PushResp::AckedDir* row = nullptr;
      if (pi < acked.size() && acked[pi].dir == pd.dir) {
        row = &acked[pi];
      } else {
        for (const auto& r : acked) {
          if (r.dir == pd.dir) {
            row = &r;
            break;
          }
        }
      }
      if (row != nullptr && row->status == PushResp::SectionStatus::kMoved) {
        // Renamed away (moved tombstone at the owner): neither trim nor
        // re-queue here — the log is re-keyed below, after the per-section
        // locks are released (the rebind takes two group locks in fp order).
        rebinds.push_back(Rebind{pd.dir, pd.fp, row->new_fp, row->acked_seq});
        continue;
      }
      const uint64_t acked_seq = row == nullptr ? 0 : row->acked_seq;
      auto lock = co_await v->ShardAt(shard).changelog_locks.AcquireExclusive(
          FpKey(pd.fp));
      if (v->dead) co_return;
      auto logs = v->ShardAt(shard).changelogs.find(pd.fp);
      if (logs == v->ShardAt(shard).changelogs.end()) {
        continue;
      }
      auto lit = logs->second.find(pd.dir);
      if (lit == logs->second.end()) {
        continue;
      }
      const size_t before = lit->second.size();
      for (uint64_t lsn : lit->second.AckUpTo(acked_seq)) {
        ctx_.durable->wal.MarkApplied(lsn);
      }
      if (lit->second.size() < before) {
        progressed = true;
      }
      if (!lit->second.empty()) {
        st.ready.insert({pd.fp, pd.dir});
        if (static_cast<int>(lit->second.size()) >= ctx_.config->push_mtu_entries) {
          heavy_leftover = true;
        }
      }
    }
    // Re-key moved sections toward their new owners. A kMoved verdict is
    // progress in itself — the section left this owner's queue for good and
    // is never re-queued here — even when the rebind finds the log already
    // re-keyed by a racing aggregation verdict or eager rebind; counting
    // that as no-progress would put a healthy owner into failure backoff.
    for (const Rebind& rb : rebinds) {
      co_await RebindMovedLog(v, rb.dir, rb.old_fp, rb.new_fp, rb.applied_seq,
                              /*from_aggregation=*/false);
      if (v->dead) co_return;
    }
    progressed = progressed || !rebinds.empty();
    if (!progressed) {
      // The owner accepted the batch but applied nothing (a sequence gap:
      // an earlier push is still missing at the owner). Back off instead of
      // spinning at simulator speed.
      st.draining = false;
      ArmRetry(v, shard, owner);
      co_return;
    }
    st.backoff_shift = 0;
    if (!to_completion && !st.ready.empty() && ctx_.Now() < st.pace_until) {
      // Paced by the owner: stop streaming batches and hand the remainder
      // to the idle timer, which waits out the deadline and coalesces.
      ctx_.stats->push_paced_drains++;
      if (!st.idle_timer_armed) {
        st.idle_timer_armed = true;
        sim::Spawn(OwnerIdleTimer(v, shard, owner));
      }
      break;
    }
    if (!to_completion && !heavy_leftover && !st.ready.empty() &&
        ReadyEntries(v->ShardAt(shard), st, ctx_.config->push_mtu_entries) <
            ctx_.config->push_mtu_entries) {
      // The remainder is a sub-MTU tail that trickled in while we were
      // pushing. Hand it to the idle timer (or the aggregate MTU trigger,
      // whichever fires first) instead of spraying small batches at
      // simulator speed — that would erode exactly the batching this
      // pusher exists for.
      if (!st.idle_timer_armed) {
        st.idle_timer_armed = true;
        sim::Spawn(OwnerIdleTimer(v, shard, owner));
      }
      break;
    }
  }
  st.draining = false;
}

sim::Task<PushResp::AckedDir> PushEngine::ApplySection(
    VolPtr v, InodeId dir, uint32_t src, psw::Fingerprint section_fp,
    std::vector<ChangeLogEntry> entries, uint64_t batch_token) {
  PushResp::AckedDir row;
  row.dir = dir;
  const uint64_t max_seq = entries.empty() ? 0 : entries.back().seq;
  // Idempotent apply: a section whose token is not above the highest token
  // committed for (dir, src) is a duplicate — a batch replayed after a lost
  // response, a retry that crossed its own ack, or a re-push after the
  // owner's crash (push_tokens is rebuilt from kWalEntryApply records). Re-
  // ack what the original apply acked so the source trims; apply nothing.
  if (batch_token != 0) {
    auto tok = v->push_tokens.find({dir, src});
    if (tok != v->push_tokens.end() && tok->second.fp == section_fp &&
        batch_token <= tok->second.token) {
      ctx_.stats->push_batches_deduped++;
      row.acked_seq = tok->second.acked_seq;
      co_return row;
    }
  }
  std::string ikey;
  psw::Fingerprint fp = 0;
  // Directory unknown here: either removed (rmdir raced the push, or WAL
  // replay left a stale dir-index row without an inode — hence the inode
  // check; ApplyEntries would drop the entries silently without advancing
  // the hwm) or renamed away. A live moved tombstone distinguishes the two:
  //  * renamed away -> kMoved verdict. acked_seq names the prefix this owner
  //    applied before the rename (it migrated with the entry list, so
  //    re-applying at the new owner would double-count); the source re-keys
  //    the rest toward the tombstone's target (RebindMovedLog).
  //  * genuinely removed -> ack the section's max seq so the source trims
  //    the obsolete backlog instead of re-pushing it forever.
  if (!v->LookupDirIndex(dir, &ikey, &fp) || !v->kv.Get(ikey).has_value()) {
    if (ctx_.config->moved_rebind) {
      const ServerVolatile::MovedDir* moved = v->FindMovedTombstone(
          dir, ctx_.Now(), ctx_.config->moved_tombstone_ttl);
      if (moved != nullptr) {
        row.status = PushResp::SectionStatus::kMoved;
        row.new_fp = moved->new_fp;
        row.new_owner = moved->new_owner;
        row.rename_epoch = moved->epoch;
        row.acked_seq = moved->AppliedFor(src, section_fp);
        co_return row;
      }
    }
    row.acked_seq = max_seq;
    if (batch_token != 0) {
      auto& ts = v->push_tokens[{dir, src}];
      if (ts.fp == section_fp) {
        ts.token = std::max(ts.token, batch_token);
        ts.acked_seq = std::max(ts.acked_seq, row.acked_seq);
      } else {
        ts = ServerVolatile::PushTokenState{batch_token, row.acked_seq,
                                            section_fp};
      }
    }
    co_return row;
  }
  // In-switch cache: the apply is about to move the directory's attr
  // (size/mtime) — drop any record this owner installed for it first. In
  // async mode the entries' dirty-set inserts already evicted it at the
  // switch in flight, so this is the sync-mode channel (and a cheap no-op
  // otherwise: gated on cached_fps). The exclusive inode lock is taken
  // BEFORE the evict and held through the apply: evicting outside the lock
  // leaves a window where a concurrent lookup re-installs the stale attr
  // between the evict round trip and the apply's KV write.
  auto ino_lock = co_await v->ShardFor(fp).inode_locks.AcquireExclusive(ikey);
  if (v->dead) {
    row.acked_seq = 0;
    co_return row;
  }
  co_await EvictSwitchCacheEntry(ctx_, v, fp);
  if (v->dead) {
    row.acked_seq = 0;
    co_return row;
  }
  co_await agg_.ApplyEntries(v, dir, src, section_fp, std::move(entries),
                             ikey, batch_token);
  if (v->dead) {
    row.acked_seq = 0;
    co_return row;
  }
  auto it = v->hwm.find({dir, src, section_fp});
  row.acked_seq = it == v->hwm.end() ? 0 : it->second;
  // Commit the section's token AFTER the apply: the WAL records carrying it
  // are durable by now, so a crash between apply and ack replays to the same
  // {token, acked_seq} and the duplicate still no-ops.
  if (batch_token != 0) {
    auto& ts = v->push_tokens[{dir, src}];
    if (ts.fp == section_fp) {
      ts.token = std::max(ts.token, batch_token);
      ts.acked_seq = std::max(ts.acked_seq, row.acked_seq);
    } else {
      ts = ServerVolatile::PushTokenState{batch_token, row.acked_seq,
                                          section_fp};
    }
  }
  co_return row;
}

sim::Task<void> PushEngine::ApplySectionTask(
    VolPtr v, PushReq::PerDir pd, uint32_t src,
    std::shared_ptr<std::vector<PushResp::AckedDir>> rows, size_t slot,
    std::shared_ptr<sim::JoinCounter> jc) {
  (*rows)[slot] = co_await ApplySection(v, pd.dir, src, pd.fp,
                                        std::move(pd.entries), pd.batch_token);
  if (!v->dead) {
    v->inflight_push_sections--;
    v->ShardFor(pd.fp).last_push[pd.fp] = ctx_.Now();
    ArmOwnerQuietTimer(v, pd.fp);
  }
  // Unconditional, dead or not: HandlePush's join must resolve so its frame
  // (and the captured shared state) unwinds.
  jc->Done();
}

sim::Task<void> PushEngine::HandlePush(net::Packet p, VolPtr v) {
  auto body = p.body;
  const auto* msg = net::MsgAs<PushReq>(body);
  if (msg == nullptr) {
    co_return;
  }
  ctx_.stats->pushes_received++;
  co_await ctx_.cpu->Run(ctx_.costs->op_dispatch);
  if (v->dead) co_return;
  auto resp = std::make_shared<PushResp>();
  resp->status = StatusCode::kOk;
  // Busy signal for adaptive pacing: sections are counted in-flight while
  // they apply (each decrements as it completes, so by reply time the count
  // reflects the OTHER pushes still applying). Dead incarnations skip the
  // unwind — the counter is volatile and dies with them.
  v->inflight_push_sections += static_cast<int>(msg->dirs.size());
  // Fan the sections out onto their shards' apply lanes: each lane applies
  // serially, lanes run concurrently on the CpuPool, and rows land at their
  // section's index so the response preserves SECTION ORDER (the source
  // matches rows by index — a same-owner rename can put the same dir in one
  // batch twice under two fingerprints).
  auto rows = std::make_shared<std::vector<PushResp::AckedDir>>(
      msg->dirs.size());
  auto jc = std::make_shared<sim::JoinCounter>(
      ctx_.sim, static_cast<int>(msg->dirs.size()));
  for (size_t i = 0; i < msg->dirs.size(); ++i) {
    const size_t shard = ShardIndexForFp(msg->dirs[i].fp, v->num_shards());
    // Plain-callable thunk: captures copies, builds the coroutine only when
    // the lane runs it (a coroutine lambda's captures would dangle once the
    // lambda object queued in the lane is destroyed).
    EnqueueShardTask(
        v, shard, ShardLane::kApply,
        [this, v, pd = msg->dirs[i], src = msg->src_server, rows, i, jc]() {
          return ApplySectionTask(v, pd, src, rows, i, jc);
        });
  }
  co_await jc->Wait();
  if (v->dead) co_return;
  resp->acked = std::move(*rows);
  if (ctx_.config->push_busy_threshold > 0 &&
      v->inflight_push_sections > ctx_.config->push_busy_threshold) {
    // Deep apply queue: hint the source to defer its next non-urgent drain
    // (it coalesces a bigger batch behind its idle timer instead).
    resp->retry_after = ctx_.config->push_pace_hint;
    ctx_.stats->push_pace_hints++;
  }
  ctx_.rpc->Respond(p, resp);
}

sim::Task<bool> PushEngine::RebindMovedLog(VolPtr v, InodeId dir,
                                           psw::Fingerprint old_fp,
                                           psw::Fingerprint new_fp,
                                           uint64_t applied_seq,
                                           bool from_aggregation) {
  if (old_fp == new_fp) {
    // Degenerate verdict (a chained rename led back to the same
    // fingerprint): the log is already keyed correctly; re-keying onto
    // itself would self-append forever in DrainInto.
    co_return false;
  }
  size_t moved_entries = 0;
  {
    // The (old, new) pairs below straddle two shard domains when the rename
    // changed the fingerprint's shard — one of the two sanctioned cross-
    // shard handoffs. The witness sanctions the same-class pairs for the
    // discipline checker; ordering by fingerprint value stays globally
    // consistent across shards, so the pairs remain deadlock-free.
    sim::CrossShardScope xs(co_await sim::discipline::CurrentChainId{});
    // Two group locks in fingerprint order (the rmdir discipline) — the
    // rebind reads the old group's log and appends into the new group's.
    LockTable::Handle first;
    LockTable::Handle second;
    if (old_fp < new_fp) {
      first = co_await v->ShardFor(old_fp).changelog_locks.AcquireExclusive(
          FpKey(old_fp));
      if (v->dead) co_return false;
      second = co_await v->ShardFor(new_fp).changelog_locks.AcquireExclusive(
          FpKey(new_fp));
    } else {
      first = co_await v->ShardFor(new_fp).changelog_locks.AcquireExclusive(
          FpKey(new_fp));
      if (v->dead) co_return false;
      second = co_await v->ShardFor(old_fp).changelog_locks.AcquireExclusive(
          FpKey(old_fp));
    }
    if (v->dead) co_return false;

    // Per-log append mutexes, in key order: DrainInto renumbers the target
    // log and drains the source, and rename/link commit legs append to
    // either without the group locks above — the append mutex is the only
    // thing pinning their captured seqs against this renumbering.
    LockTable::Handle append_first;
    LockTable::Handle append_second;
    if (old_fp < new_fp) {
      append_first =
          co_await v->ShardFor(old_fp).changelog_append_locks.AcquireExclusive(
              ClAppendKey(old_fp, dir));
      if (v->dead) co_return false;
      // sfs-lint: allow(append-innermost, same-class pair in ClAppendKey order — deadlock-free; the rebind must hold both ends to renumber)
      append_second =
          co_await v->ShardFor(new_fp).changelog_append_locks.AcquireExclusive(
              ClAppendKey(new_fp, dir));
    } else {
      append_first =
          co_await v->ShardFor(new_fp).changelog_append_locks.AcquireExclusive(
              ClAppendKey(new_fp, dir));
      if (v->dead) co_return false;
      // sfs-lint: allow(append-innermost, same-class pair in ClAppendKey order — deadlock-free; the rebind must hold both ends to renumber)
      append_second =
          co_await v->ShardFor(old_fp).changelog_append_locks.AcquireExclusive(
              ClAppendKey(old_fp, dir));
    }
    if (v->dead) co_return false;

    auto logs = v->ShardFor(old_fp).changelogs.find(old_fp);
    if (logs == v->ShardFor(old_fp).changelogs.end()) {
      co_return false;  // already rebound (push and aggregation verdicts race)
    }
    auto lit = logs->second.find(dir);
    if (lit == logs->second.end()) {
      co_return false;
    }
    ChangeLog* from = &lit->second;  // value-stable across map rehashes
    // The prefix the old owner applied before the rename migrated with the
    // directory's entry list; re-keying it would double-count the directory
    // size at the new owner. Trim it as acknowledged.
    const size_t before = from->size();
    for (uint64_t lsn : from->AckUpTo(applied_seq)) {
      ctx_.durable->wal.MarkApplied(lsn);
    }
    const size_t trimmed = before - from->size();
    v->ShardFor(old_fp).pushers[ctx_.OwnerOf(old_fp)].ready.erase(
        {old_fp, dir});
    if (!from->empty()) {
      // Seqs are re-assigned to continue the new-fingerprint log's FIFO:
      // entries committed under the new fingerprint after clients refreshed
      // their caches already numbered from 1, and the new owner's hwm for
      // (dir, src) only knows that numbering.
      // Appended AFTER any new-era entries already pending: renumbering
      // those would let entries that already reached the new owner through
      // a channel invisible here (in-flight push, aggregation, fallback)
      // escape its seq dedup. The resulting old-era-after-new-era inversion
      // is bounded to the same-name case and to sources whose eager verdict
      // fetch (EagerRebindMoved) lost the race with a client op through the
      // new path — and it is settled at the apply: the per-name LWW stamp
      // (ServerConfig::lww_resolve) drops the stale old-era entry when it
      // arrives after the newer same-name write, so the inversion can no
      // longer materialize a phantom dirent or resurrect a deleted one.
      moved_entries = from->DrainInto(v->GetChangeLog(new_fp, dir));
    }
    // The drained slot is KEPT, numbering intact: a straggler commit that
    // raced the rename may still append under the old fingerprint, and a
    // fresh log restarting at 1 would collide with the tombstone's applied
    // marks and be trimmed as already-applied. The straggler resumes above
    // the marks and re-chains through the next verdict; the owner-side
    // resolved-prefix bridge (ApplyEntries) absorbs the seq gap.
    if (moved_entries == 0) {
      co_return trimmed > 0;  // trimming the applied prefix is progress too
    }
    if (from_aggregation) {
      ctx_.stats->agg_rebinds++;
      ctx_.stats->agg_entries_rebound += moved_entries;
    } else {
      ctx_.stats->pushes_rebound++;
      ctx_.stats->entries_rebound += moved_entries;
    }
  }
  // Re-insert the dirty bit for the new fingerprint group so reads at the
  // new owner aggregate before the re-push lands. Overflow is ignored: the
  // re-push delivers the entries regardless, so an overflow only costs
  // dirty-bit visibility until then (the insert_exhausted exposure).
  co_await ctx_.dirty_tracker->Insert(ctx_, v, new_fp, dir, nullptr, nullptr);
  if (v->dead) co_return true;
  MaybeSchedulePush(v, new_fp, dir);
  co_return true;
}

sim::Task<void> PushEngine::RebindMovedLogDetached(VolPtr v, InodeId dir,
                                                   psw::Fingerprint old_fp,
                                                   psw::Fingerprint new_fp,
                                                   uint64_t applied_seq,
                                                   bool from_aggregation) {
  co_await RebindMovedLog(v, dir, old_fp, new_fp, applied_seq,
                          from_aggregation);
}

sim::Task<void> PushEngine::EagerRebindMoved(VolPtr v, InodeId dir,
                                             psw::Fingerprint old_fp,
                                             psw::Fingerprint new_fp) {
  (void)new_fp;
  {
    auto lock = co_await v->ShardFor(old_fp).changelog_locks.AcquireExclusive(
        FpKey(old_fp));
    if (v->dead) co_return;
    auto logs = v->ShardFor(old_fp).changelogs.find(old_fp);
    if (logs == v->ShardFor(old_fp).changelogs.end()) {
      co_return;
    }
    auto lit = logs->second.find(dir);
    if (lit == logs->second.end()) {
      co_return;
    }
    if (lit->second.empty()) {
      // Nothing pending. The empty slot is kept: per-(fp, dir) numbering is
      // monotonic forever, and the owner-side resolved-prefix bridge
      // (ApplyEntries) absorbs the seq offset if the directory ever returns
      // to this fingerprint.
      co_return;
    }
    // Pending entries: do NOT rebind blindly. Entries may be applied-but-
    // unacked at the old owner through channels this server cannot see
    // (a push whose response was lost across the owner's crash, an
    // aggregation whose AggDone went missing, an insert-overflow fallback
    // in flight) — only the old owner's tombstone holds the authoritative
    // pre-rename applied marks. Fetch the verdict instead: queue the log
    // and drain toward the old owner right now. The kMoved reply performs
    // the rebind with those marks (RebindMovedLog via the trim loop), one
    // round trip from now — still ahead of any client op through the new
    // path, which needs the rename response plus at least one resolution
    // RPC first.
    v->ShardFor(old_fp).pushers[ctx_.OwnerOf(old_fp)].ready.insert(
        {old_fp, dir});
  }
  co_await DrainOwner(v, ShardIndexForFp(old_fp, v->num_shards()),
                      ctx_.OwnerOf(old_fp));
}

void PushEngine::ArmOwnerQuietTimer(VolPtr v, psw::Fingerprint fp) {
  if (!ctx_.config->async_updates) {
    return;  // synchronous mode never defers
  }
  if (v->ShardFor(fp).quiet_timer_armed.insert(fp).second) {
    sim::Spawn(OwnerQuietTimer(v, fp));
  }
}

sim::Task<void> PushEngine::OwnerQuietTimer(VolPtr v, psw::Fingerprint fp) {
  while (true) {
    co_await sim::Delay(ctx_.sim, ctx_.config->owner_quiet_period);
    if (v->dead) {
      // Dead incarnation: unwind the armed marker so the state carries no
      // phantom timer (the replacement incarnation starts fresh anyway).
      v->ShardFor(fp).quiet_timer_armed.erase(fp);
      co_return;
    }
    auto it = v->ShardFor(fp).last_push.find(fp);
    const int64_t last =
        it == v->ShardFor(fp).last_push.end() ? 0 : it->second;
    if (ctx_.Now() - last >= ctx_.config->owner_quiet_period) {
      break;
    }
  }
  v->ShardFor(fp).quiet_timer_armed.erase(fp);
  // Quiet period elapsed: aggregate proactively so the next read finds the
  // directory in normal state (§5.3).
  co_await agg_.GateAndAggregate(v, fp);
}

}  // namespace switchfs::core
