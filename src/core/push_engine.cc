#include "src/core/push_engine.h"

#include <memory>
#include <utility>
#include <vector>

#include "src/sim/sync.h"

namespace switchfs::core {

void PushEngine::MaybeSchedulePush(VolPtr v, psw::Fingerprint fp,
                                   const InodeId& dir) {
  auto logs = v->changelogs.find(fp);
  if (logs == v->changelogs.end()) {
    return;
  }
  auto it = logs->second.find(dir);
  if (it == logs->second.end() || it->second.empty()) {
    return;
  }
  if (static_cast<int>(it->second.size()) >= ctx_.config->mtu_entries) {
    sim::Spawn(PushBacklog(v, fp, dir));
    return;
  }
  const auto key = std::make_pair(fp, dir);
  if (v->push_timer_armed.insert(key).second) {
    sim::Spawn(PushIdleTimer(v, fp, dir));
  }
}

sim::Task<void> PushEngine::PushIdleTimer(VolPtr v, psw::Fingerprint fp,
                                          InodeId dir) {
  const auto key = std::make_pair(fp, dir);
  while (true) {
    uint64_t last_seq = 0;
    {
      auto logs = v->changelogs.find(fp);
      if (logs == v->changelogs.end()) break;
      auto it = logs->second.find(dir);
      if (it == logs->second.end() || it->second.empty()) break;
      last_seq = it->second.last_appended_seq();
    }
    co_await sim::Delay(ctx_.sim, ctx_.config->push_idle_timeout);
    if (v->dead) co_return;
    auto logs = v->changelogs.find(fp);
    if (logs == v->changelogs.end()) break;
    auto it = logs->second.find(dir);
    if (it == logs->second.end() || it->second.empty()) break;
    if (it->second.last_appended_seq() == last_seq) {
      // Quiet: flush the backlog (§5.3 "no new entries within an interval").
      v->push_timer_armed.erase(key);
      co_await PushBacklog(v, fp, dir);
      co_return;
    }
  }
  v->push_timer_armed.erase(key);
}

sim::Task<void> PushEngine::PushBacklog(VolPtr v, psw::Fingerprint fp,
                                        InodeId dir) {
  const auto key = std::make_pair(fp, dir);
  if (!v->push_in_flight.insert(key).second) {
    co_return;  // a push for this log is already running
  }
  while (true) {
    std::vector<ChangeLogEntry> entries;
    {
      auto lock = co_await v->changelog_locks.AcquireShared(FpKey(fp));
      if (v->dead) co_return;
      auto logs = v->changelogs.find(fp);
      if (logs == v->changelogs.end()) break;
      auto it = logs->second.find(dir);
      if (it == logs->second.end() || it->second.empty()) break;
      entries.assign(it->second.pending().begin(), it->second.pending().end());
    }
    if (entries.empty()) break;
    ctx_.stats->pushes_sent++;
    const uint64_t max_seq = entries.back().seq;

    uint64_t acked_seq = 0;
    if (ctx_.IsOwner(fp)) {
      co_await agg_.ApplyEntries(v, dir, ctx_.config->index,
                                 std::move(entries), "");
      if (v->dead) co_return;
      acked_seq = max_seq;
      v->last_push[fp] = ctx_.Now();
      ArmOwnerQuietTimer(v, fp);
    } else {
      auto push = std::make_shared<PushReq>();
      push->dir = dir;
      push->fp = fp;
      push->src_server = ctx_.config->index;
      push->entries = std::move(entries);
      auto r = co_await ctx_.rpc->Call(
          ctx_.cluster->ServerNode(ctx_.OwnerOf(fp)), push);
      if (v->dead) co_return;
      if (!r.ok()) break;  // owner unreachable; a later trigger retries
      const auto* resp = net::MsgAs<PushResp>(*r);
      if (resp == nullptr || resp->status != StatusCode::kOk) break;
      acked_seq = resp->acked_seq;
    }
    {
      auto lock = co_await v->changelog_locks.AcquireExclusive(FpKey(fp));
      if (v->dead) co_return;
      auto logs = v->changelogs.find(fp);
      if (logs == v->changelogs.end()) break;
      auto it = logs->second.find(dir);
      if (it == logs->second.end()) break;
      for (uint64_t lsn : it->second.AckUpTo(acked_seq)) {
        ctx_.durable->wal.MarkApplied(lsn);
      }
      if (static_cast<int>(it->second.size()) < ctx_.config->mtu_entries) {
        break;
      }
    }
  }
  v->push_in_flight.erase(key);
}

sim::Task<void> PushEngine::HandlePush(net::Packet p, VolPtr v) {
  const auto* msg = static_cast<const PushReq*>(p.body.get());
  ctx_.stats->pushes_received++;
  co_await ctx_.cpu->Run(ctx_.costs->op_dispatch);
  if (v->dead) co_return;
  co_await agg_.ApplyEntries(v, msg->dir, msg->src_server, msg->entries, "");
  if (v->dead) co_return;
  auto resp = std::make_shared<PushResp>();
  resp->status = StatusCode::kOk;
  auto it = v->hwm.find({msg->dir, msg->src_server});
  resp->acked_seq = it == v->hwm.end() ? 0 : it->second;
  ctx_.rpc->Respond(p, resp);
  v->last_push[msg->fp] = ctx_.Now();
  ArmOwnerQuietTimer(v, msg->fp);
}

void PushEngine::ArmOwnerQuietTimer(VolPtr v, psw::Fingerprint fp) {
  if (!ctx_.config->async_updates) {
    return;  // synchronous mode never defers
  }
  if (v->quiet_timer_armed.insert(fp).second) {
    sim::Spawn(OwnerQuietTimer(v, fp));
  }
}

sim::Task<void> PushEngine::OwnerQuietTimer(VolPtr v, psw::Fingerprint fp) {
  while (true) {
    co_await sim::Delay(ctx_.sim, ctx_.config->owner_quiet_period);
    if (v->dead) co_return;
    auto it = v->last_push.find(fp);
    const int64_t last = it == v->last_push.end() ? 0 : it->second;
    if (ctx_.Now() - last >= ctx_.config->owner_quiet_period) {
      break;
    }
  }
  v->quiet_timer_armed.erase(fp);
  // Quiet period elapsed: aggregate proactively so the next read finds the
  // directory in normal state (§5.3).
  co_await agg_.GateAndAggregate(v, fp);
}

}  // namespace switchfs::core
