#include "src/core/push_engine.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/sync.h"

namespace switchfs::core {

void PushEngine::EnqueueBacklog(VolPtr v, psw::Fingerprint fp,
                                const InodeId& dir) {
  v->pushers[ctx_.OwnerOf(fp)].ready.insert({fp, dir});
}

void PushEngine::MaybeSchedulePush(VolPtr v, psw::Fingerprint fp,
                                   const InodeId& dir) {
  auto logs = v->changelogs.find(fp);
  if (logs == v->changelogs.end()) {
    return;
  }
  auto it = logs->second.find(dir);
  if (it == logs->second.end() || it->second.empty()) {
    return;
  }
  const uint32_t owner = ctx_.OwnerOf(fp);
  auto& st = v->pushers[owner];
  st.ready.insert({fp, dir});
  st.activity++;
  st.enqueued_since_drain++;
  if (st.retry_timer_armed) {
    // The owner is in failure backoff: let the retry timer pace the next
    // attempt instead of hammering a down owner at traffic rate.
    return;
  }
  if (static_cast<int>(it->second.size()) >= ctx_.config->mtu_entries ||
      st.enqueued_since_drain >= ctx_.config->mtu_entries) {
    sim::Spawn(DrainOwner(v, owner));
    return;
  }
  if (!st.idle_timer_armed) {
    st.idle_timer_armed = true;
    sim::Spawn(OwnerIdleTimer(v, owner));
  }
}

sim::Task<void> PushEngine::OwnerIdleTimer(VolPtr v, uint32_t owner) {
  while (true) {
    const uint64_t seen = v->pushers[owner].activity;
    co_await sim::Delay(ctx_.sim, ctx_.config->push_idle_timeout);
    if (v->dead) co_return;
    auto& st = v->pushers[owner];
    if (st.ready.empty()) {
      st.idle_timer_armed = false;
      co_return;
    }
    if (st.activity == seen) {
      // Quiet: flush the backlog (§5.3 "no new entries within an interval").
      st.idle_timer_armed = false;
      co_await DrainOwner(v, owner);
      co_return;
    }
  }
}

void PushEngine::ArmRetry(VolPtr v, uint32_t owner) {
  auto& st = v->pushers[owner];
  st.backoff_shift =
      std::min(st.backoff_shift + 1, ctx_.config->push_retry_max_backoff_shift);
  if (!st.retry_timer_armed) {
    st.retry_timer_armed = true;
    sim::Spawn(RetryTimer(v, owner));
  }
}

sim::Task<void> PushEngine::RetryTimer(VolPtr v, uint32_t owner) {
  // A successful MTU-triggered drain may reset backoff_shift while this
  // timer is pending; clamp so the shift stays well-defined.
  const int shift = std::max(1, v->pushers[owner].backoff_shift);
  const sim::SimTime delay = ctx_.config->push_retry_backoff << (shift - 1);
  co_await sim::Delay(ctx_.sim, delay);
  if (v->dead) co_return;
  v->pushers[owner].retry_timer_armed = false;
  co_await DrainOwner(v, owner);
}

sim::Task<void> PushEngine::DrainOwner(VolPtr v, uint32_t owner) {
  co_await DrainOwnerImpl(v, owner, /*to_completion=*/false);
}

sim::Task<void> PushEngine::DrainOwnerBarrier(VolPtr v, uint32_t owner) {
  // Wait out an in-flight background drain: the single-flight guard would
  // otherwise no-op and the recovery flush would return with the backlog
  // still unapplied.
  while (v->pushers[owner].draining) {
    co_await sim::Delay(ctx_.sim, sim::Microseconds(20));
    if (v->dead) co_return;
  }
  co_await DrainOwnerImpl(v, owner, /*to_completion=*/true);
}

sim::Task<void> PushEngine::DrainOwnerImpl(VolPtr v, uint32_t owner,
                                           bool to_completion) {
  auto& st = v->pushers[owner];
  if (st.draining) {
    co_return;  // a drain for this owner is already running
  }
  st.draining = true;
  while (!st.ready.empty()) {
    st.enqueued_since_drain = 0;
    // ---- gather one MTU-bounded batch across the owner's ready logs ----
    auto req = std::make_shared<PushReq>();
    req->src_server = ctx_.config->index;
    std::vector<std::pair<psw::Fingerprint, InodeId>> took;
    int budget = ctx_.config->mtu_entries;
    // Snapshot at most one batch's worth of keys: every gathered section
    // carries at least one entry, so a batch never spans more than
    // mtu_entries logs (one log in per-dir mode). Gathered keys are erased,
    // so successive rounds walk the queue without re-copying it.
    std::vector<std::pair<psw::Fingerprint, InodeId>> want;
    const size_t key_cap = ctx_.config->batch_pushes
                               ? static_cast<size_t>(ctx_.config->mtu_entries)
                               : size_t{1};
    for (auto it = st.ready.begin();
         it != st.ready.end() && want.size() < key_cap; ++it) {
      want.push_back(*it);
    }
    size_t i = 0;
    while (i < want.size() && budget > 0) {
      const psw::Fingerprint fp = want[i].first;
      auto lock = co_await v->changelog_locks.AcquireShared(FpKey(fp));
      if (v->dead) co_return;
      for (; i < want.size() && want[i].first == fp && budget > 0; ++i) {
        st.ready.erase(want[i]);
        auto logs = v->changelogs.find(fp);
        if (logs == v->changelogs.end()) {
          continue;
        }
        auto lit = logs->second.find(want[i].second);
        if (lit == logs->second.end() || lit->second.empty()) {
          continue;  // already drained by an aggregation
        }
        const auto& pending = lit->second.pending();
        const size_t take =
            std::min(static_cast<size_t>(budget), pending.size());
        PushReq::PerDir pd;
        pd.dir = want[i].second;
        pd.fp = fp;
        pd.entries.assign(pending.begin(),
                          pending.begin() + static_cast<ptrdiff_t>(take));
        budget -= static_cast<int>(take);
        req->dirs.push_back(std::move(pd));
        took.push_back(want[i]);
      }
    }
    if (req->dirs.empty()) {
      // Every snapshotted log turned out empty (drained by a concurrent
      // aggregation). Re-check the queue rather than exit: an MTU-full log
      // enqueued while the gather was suspended would otherwise be stranded
      // (its MTU-triggered DrainOwner no-opped against our draining flag).
      // No spin: gathered keys were erased, so the loop only re-runs on
      // genuinely new insertions, whose logs are non-empty.
      continue;
    }

    // ---- deliver: owner-local apply or one batched RPC ----
    std::vector<PushResp::AckedDir> acked;
    if (owner == ctx_.config->index) {
      ctx_.stats->pushes_local++;
      for (auto& pd : req->dirs) {
        const uint64_t seq =
            co_await ApplySection(v, pd.dir, req->src_server,
                                  std::move(pd.entries));
        if (v->dead) co_return;
        acked.push_back(PushResp::AckedDir{pd.dir, seq});
        v->last_push[pd.fp] = ctx_.Now();
        ArmOwnerQuietTimer(v, pd.fp);
      }
    } else {
      size_t batch_entries = 0;
      for (const auto& pd : req->dirs) {
        batch_entries += pd.entries.size();
      }
      auto r = co_await ctx_.rpc->Call(ctx_.cluster->ServerNode(owner), req);
      if (v->dead) co_return;
      const auto* resp = r.ok() ? net::MsgAs<PushResp>(*r) : nullptr;
      if (resp == nullptr || resp->status != StatusCode::kOk) {
        // Owner unreachable (or replied garbage): re-queue the sections and
        // retry after a backoff — a failed push must never strand a backlog.
        ctx_.stats->push_failures++;
        for (const auto& key : took) {
          st.ready.insert(key);
        }
        st.draining = false;
        ArmRetry(v, owner);
        co_return;
      }
      ctx_.stats->pushes_sent++;
      ctx_.stats->push_dirs_sent += req->dirs.size();
      ctx_.stats->push_entries_sent += batch_entries;
      acked = resp->acked;
    }

    // ---- trim acknowledged prefixes; re-queue logs that still hold work ---
    bool progressed = false;
    bool heavy_leftover = false;  // some re-queued log still holds >= an MTU
    for (const auto& pd : req->dirs) {
      uint64_t acked_seq = 0;
      for (const auto& row : acked) {
        if (row.dir == pd.dir) {
          acked_seq = row.acked_seq;
          break;
        }
      }
      auto lock = co_await v->changelog_locks.AcquireExclusive(FpKey(pd.fp));
      if (v->dead) co_return;
      auto logs = v->changelogs.find(pd.fp);
      if (logs == v->changelogs.end()) {
        continue;
      }
      auto lit = logs->second.find(pd.dir);
      if (lit == logs->second.end()) {
        continue;
      }
      const size_t before = lit->second.size();
      for (uint64_t lsn : lit->second.AckUpTo(acked_seq)) {
        ctx_.durable->wal.MarkApplied(lsn);
      }
      if (lit->second.size() < before) {
        progressed = true;
      }
      if (!lit->second.empty()) {
        st.ready.insert({pd.fp, pd.dir});
        if (static_cast<int>(lit->second.size()) >= ctx_.config->mtu_entries) {
          heavy_leftover = true;
        }
      }
    }
    if (!progressed) {
      // The owner accepted the batch but applied nothing (a sequence gap:
      // an earlier push is still missing at the owner). Back off instead of
      // spinning at simulator speed.
      st.draining = false;
      ArmRetry(v, owner);
      co_return;
    }
    st.backoff_shift = 0;
    if (!to_completion && !heavy_leftover && !st.ready.empty() &&
        st.enqueued_since_drain < ctx_.config->mtu_entries) {
      // The remainder is a sub-MTU tail that trickled in while we were
      // pushing. Hand it to the idle timer (or the aggregate MTU trigger,
      // whichever fires first) instead of spraying small batches at
      // simulator speed — that would erode exactly the batching this
      // pusher exists for.
      if (!st.idle_timer_armed) {
        st.idle_timer_armed = true;
        sim::Spawn(OwnerIdleTimer(v, owner));
      }
      break;
    }
  }
  st.draining = false;
}

sim::Task<uint64_t> PushEngine::ApplySection(
    VolPtr v, InodeId dir, uint32_t src, std::vector<ChangeLogEntry> entries) {
  const uint64_t max_seq = entries.empty() ? 0 : entries.back().seq;
  std::string ikey;
  psw::Fingerprint fp = 0;
  // Directory removed since the entries were logged (rmdir raced the push):
  // they can never apply. Ack the section's max seq so the source trims the
  // obsolete backlog instead of re-pushing it forever. The inode row must be
  // checked too — WAL replay of an rmdir leaves a stale dir-index row behind
  // (see ReplayWalInto), and ApplyEntries would drop the entries silently
  // without advancing the hwm.
  //
  // Known limitation (matches the aggregation path, which acks collected
  // entries for vanished directories the same way): a directory renamed
  // away is indistinguishable from one removed, so an entry that commits
  // under the old fingerprint in the rename race window is trimmed rather
  // than rebound to the new owner — the paper's moved_fp rebind is future
  // work (see ROADMAP).
  if (!v->LookupDirIndex(dir, &ikey, &fp) || !v->kv.Get(ikey).has_value()) {
    co_return max_seq;
  }
  co_await agg_.ApplyEntries(v, dir, src, std::move(entries), "");
  if (v->dead) co_return 0;
  auto it = v->hwm.find({dir, src});
  co_return it == v->hwm.end() ? 0 : it->second;
}

sim::Task<void> PushEngine::HandlePush(net::Packet p, VolPtr v) {
  auto body = p.body;
  const auto* msg = net::MsgAs<PushReq>(body);
  if (msg == nullptr) {
    co_return;
  }
  ctx_.stats->pushes_received++;
  co_await ctx_.cpu->Run(ctx_.costs->op_dispatch);
  if (v->dead) co_return;
  auto resp = std::make_shared<PushResp>();
  resp->status = StatusCode::kOk;
  for (const auto& pd : msg->dirs) {
    const uint64_t acked =
        co_await ApplySection(v, pd.dir, msg->src_server, pd.entries);
    if (v->dead) co_return;
    resp->acked.push_back(PushResp::AckedDir{pd.dir, acked});
    v->last_push[pd.fp] = ctx_.Now();
    ArmOwnerQuietTimer(v, pd.fp);
  }
  ctx_.rpc->Respond(p, resp);
}

void PushEngine::ArmOwnerQuietTimer(VolPtr v, psw::Fingerprint fp) {
  if (!ctx_.config->async_updates) {
    return;  // synchronous mode never defers
  }
  if (v->quiet_timer_armed.insert(fp).second) {
    sim::Spawn(OwnerQuietTimer(v, fp));
  }
}

sim::Task<void> PushEngine::OwnerQuietTimer(VolPtr v, psw::Fingerprint fp) {
  while (true) {
    co_await sim::Delay(ctx_.sim, ctx_.config->owner_quiet_period);
    if (v->dead) {
      // Dead incarnation: unwind the armed marker so the state carries no
      // phantom timer (the replacement incarnation starts fresh anyway).
      v->quiet_timer_armed.erase(fp);
      co_return;
    }
    auto it = v->last_push.find(fp);
    const int64_t last = it == v->last_push.end() ? 0 : it->second;
    if (ctx_.Now() - last >= ctx_.config->owner_quiet_period) {
      break;
    }
  }
  v->quiet_timer_armed.erase(fp);
  // Quiet period elapsed: aggregate proactively so the next read finds the
  // directory in normal state (§5.3).
  co_await agg_.GateAndAggregate(v, fp);
}

}  // namespace switchfs::core
