// Proactive push & owner-driven aggregation (paper §5.3): source servers
// push change-log backlogs to their owners once an MTU worth of entries
// accumulates or a log has been idle; the owner aggregates after a quiet
// period so the next read finds the directory in normal state.
//
// Pushes are scheduled per (SHARD, OWNER), not per directory: every source
// server keeps one outbound queue per owner server in each of its shards
// (ServerShard::pushers) and a drain coroutine per queue coalesces all ready
// (fp, dir) logs for that owner into batched PushReqs of up to
// push_mtu_entries entries (overflow splits across packets). Sharding the
// queue turns the former single-flight-per-owner pipe into num_shards
// concurrent pipes toward a hot owner — the multi-core scaling the shard
// refactor exists for. A failed push re-queues its sections and re-arms a
// retry timer with exponential backoff, so an unreachable owner can never
// strand a backlog.
//
// Idempotent apply: every gathered section is stamped with a source-minted
// monotonic batch_token (ServerVolatile::push_token_counter). The owner
// remembers the highest committed {token, acked_seq} per (dir, src)
// (ServerVolatile::push_tokens, rebuilt from kWalEntryApply records on
// replay) and re-acks a duplicate section — a batch replayed after packet
// loss, a rebind, or an owner crash — without re-applying it.
#ifndef SRC_CORE_PUSH_ENGINE_H_
#define SRC_CORE_PUSH_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/aggregation.h"
#include "src/core/server_context.h"
#include "src/net/packet.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace switchfs::core {

class PushEngine {
 public:
  PushEngine(ServerContext& ctx, Aggregation& agg) : ctx_(ctx), agg_(agg) {}
  PushEngine(const PushEngine&) = delete;
  PushEngine& operator=(const PushEngine&) = delete;

  // ---- source side ----
  // After a deferred update commits: queue the log on its owner's pusher,
  // drain immediately when the backlog reaches push_mtu_entries, else (re)arm the
  // owner's idle-flush timer.
  void MaybeSchedulePush(VolPtr v, psw::Fingerprint fp, const InodeId& dir);
  // Queues a log on its owner's pusher without arming timers (recovery
  // flush path; pair with DrainOwnerBarrier).
  void EnqueueBacklog(VolPtr v, psw::Fingerprint fp, const InodeId& dir);
  // Background drain of one shard's queue toward `owner`: pushes ready logs
  // in MTU-bounded batches; a sub-MTU tail that trickles in mid-drain is
  // handed back to the idle timer. Single-flight per (shard, owner); on
  // failure the sections are re-queued and a backoff retry timer is armed.
  // No-ops when a drain for the pair is already running.
  sim::Task<void> DrainOwner(VolPtr v, size_t shard, uint32_t owner);
  // Recovery barrier (§5.4.2 flush): for every shard, waits out any
  // in-flight drain, then drains to completion with no tail handoff.
  // Returns with entries still queued only if the owner is unreachable (the
  // armed retry keeps at it).
  sim::Task<void> DrainOwnerBarrier(VolPtr v, uint32_t owner);

  // ---- owner side ----
  sim::Task<void> HandlePush(net::Packet p, VolPtr v);
  // Arms the quiet-period timer that triggers a proactive aggregation once
  // pushes stop arriving for owner_quiet_period.
  void ArmOwnerQuietTimer(VolPtr v, psw::Fingerprint fp);

  // ---- moved_fp rebind (§5.2 rename race, source side) ----
  // Re-keys `dir`'s change-log from `old_fp` to `new_fp` after a kMoved push
  // verdict or an AggDone moved row: trims the prefix the old owner applied
  // before the rename (`applied_seq` — those entries migrated with the
  // directory's entry list), moves the rest into the new-fingerprint log
  // with re-assigned seqs, re-inserts the dirty bit through the tracker, and
  // enqueues the log on the new owner's pusher. Safe to call twice for the
  // same verdict (the second call finds no log and no-ops). Returns true if
  // entries were re-keyed. `from_aggregation` selects which rebind counters
  // advance.
  sim::Task<bool> RebindMovedLog(VolPtr v, InodeId dir, psw::Fingerprint old_fp,
                                 psw::Fingerprint new_fp, uint64_t applied_seq,
                                 bool from_aggregation);
  // Spawn-friendly wrapper (sim::Spawn takes Task<void>).
  sim::Task<void> RebindMovedLogDetached(VolPtr v, InodeId dir,
                                         psw::Fingerprint old_fp,
                                         psw::Fingerprint new_fp,
                                         uint64_t applied_seq,
                                         bool from_aggregation);
  // Eager reaction to the rename's invalidation broadcast: for a log with
  // pending entries, triggers an immediate push toward the old owner so its
  // kMoved verdict (the only holder of the authoritative pre-rename applied
  // marks) performs the rebind one round trip from now — still ahead of any
  // client op through the new path. Never re-keys blindly (entries may be
  // applied-but-unacked at the old owner through channels invisible to this
  // server), and never erases the slot: per-(fp, dir) numbering must stay
  // monotonic so straggler commits cannot restart at seqs the tombstone's
  // marks would trim as already-applied.
  sim::Task<void> EagerRebindMoved(VolPtr v, InodeId dir,
                                   psw::Fingerprint old_fp,
                                   psw::Fingerprint new_fp);

 private:
  sim::Task<void> DrainOwnerImpl(VolPtr v, size_t shard, uint32_t owner,
                                 bool to_completion);
  sim::Task<void> OwnerIdleTimer(VolPtr v, size_t shard, uint32_t owner);
  sim::Task<void> RetryTimer(VolPtr v, size_t shard, uint32_t owner);
  sim::Task<void> OwnerQuietTimer(VolPtr v, psw::Fingerprint fp);
  // Owner-side application of one pushed section; the returned row carries
  // the seq the source may trim to. For a directory that no longer exists:
  // a live moved tombstone yields a kMoved rebind verdict; a genuinely
  // removed directory is acked at the section's max seq (the entries are
  // obsolete and must not be re-pushed forever).
  // `section_fp` is the fingerprint the pushed section is keyed under
  // (scopes a moved tombstone's applied marks to the right era).
  // `batch_token`: non-zero sections whose token is <= the committed token
  // for (dir, src) are duplicates — re-acked without re-applying.
  sim::Task<PushResp::AckedDir> ApplySection(VolPtr v, InodeId dir,
                                             uint32_t src,
                                             psw::Fingerprint section_fp,
                                             std::vector<ChangeLogEntry> entries,
                                             uint64_t batch_token);
  // One pushed section routed onto its shard's apply lane (HandlePush fans a
  // batch out through these): applies, records the row at `slot`, bumps the
  // shard's push clock, and signals `jc` unconditionally — even on a dead
  // incarnation — so the response assembly never hangs.
  sim::Task<void> ApplySectionTask(
      VolPtr v, PushReq::PerDir pd, uint32_t src,
      std::shared_ptr<std::vector<PushResp::AckedDir>> rows, size_t slot,
      std::shared_ptr<sim::JoinCounter> jc);
  void ArmRetry(VolPtr v, size_t shard, uint32_t owner);
  // Exact count of live pending entries across the pusher's ready logs
  // (whose fingerprints all belong to `sh`), saturating at `cap` (the
  // aggregate-MTU trigger only compares against push_mtu_entries, so the
  // scan is O(mtu) amortized: entries whose logs turned out empty are pruned
  // as it goes, not re-visited per commit). Counting live entries — not
  // commits — keeps logs drained by a concurrent aggregation from inflating
  // the trigger into early sub-MTU batches.
  int ReadyEntries(ServerShard& sh, OwnerPusher& st, int cap) const;

  ServerContext& ctx_;
  Aggregation& agg_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_PUSH_ENGINE_H_
