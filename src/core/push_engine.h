// Proactive push & owner-driven aggregation (paper §5.3): source servers
// push a directory's change-log backlog to its owner once an MTU worth of
// entries accumulates or the log has been idle; the owner aggregates after a
// quiet period so the next read finds the directory in normal state.
#ifndef SRC_CORE_PUSH_ENGINE_H_
#define SRC_CORE_PUSH_ENGINE_H_

#include "src/core/aggregation.h"
#include "src/core/server_context.h"
#include "src/net/packet.h"
#include "src/sim/task.h"

namespace switchfs::core {

class PushEngine {
 public:
  PushEngine(ServerContext& ctx, Aggregation& agg) : ctx_(ctx), agg_(agg) {}
  PushEngine(const PushEngine&) = delete;
  PushEngine& operator=(const PushEngine&) = delete;

  // ---- source side ----
  // After a deferred update commits: push immediately when the backlog
  // reaches mtu_entries, else (re)arm the idle-flush timer.
  void MaybeSchedulePush(VolPtr v, psw::Fingerprint fp, const InodeId& dir);
  // Pushes the directory's backlog to its owner until it drains below an
  // MTU (also the recovery flush path; single-flight per (fp, dir)).
  sim::Task<void> PushBacklog(VolPtr v, psw::Fingerprint fp, InodeId dir);

  // ---- owner side ----
  sim::Task<void> HandlePush(net::Packet p, VolPtr v);
  // Arms the quiet-period timer that triggers a proactive aggregation once
  // pushes stop arriving for owner_quiet_period.
  void ArmOwnerQuietTimer(VolPtr v, psw::Fingerprint fp);

 private:
  sim::Task<void> PushIdleTimer(VolPtr v, psw::Fingerprint fp, InodeId dir);
  sim::Task<void> OwnerQuietTimer(VolPtr v, psw::Fingerprint fp);

  ServerContext& ctx_;
  Aggregation& agg_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_PUSH_ENGINE_H_
