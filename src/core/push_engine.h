// Proactive push & owner-driven aggregation (paper §5.3): source servers
// push change-log backlogs to their owners once an MTU worth of entries
// accumulates or a log has been idle; the owner aggregates after a quiet
// period so the next read finds the directory in normal state.
//
// Pushes are scheduled per OWNER, not per directory: every source server
// keeps one outbound queue per owner server (ServerVolatile::OwnerPusher)
// and a drain coroutine coalesces all ready (fp, dir) logs for that owner
// into batched PushReqs of up to push_mtu_entries entries (overflow splits across
// packets). A failed push re-queues its sections and re-arms a retry timer
// with exponential backoff, so an unreachable owner can never strand a
// backlog.
#ifndef SRC_CORE_PUSH_ENGINE_H_
#define SRC_CORE_PUSH_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/core/aggregation.h"
#include "src/core/server_context.h"
#include "src/net/packet.h"
#include "src/sim/task.h"

namespace switchfs::core {

class PushEngine {
 public:
  PushEngine(ServerContext& ctx, Aggregation& agg) : ctx_(ctx), agg_(agg) {}
  PushEngine(const PushEngine&) = delete;
  PushEngine& operator=(const PushEngine&) = delete;

  // ---- source side ----
  // After a deferred update commits: queue the log on its owner's pusher,
  // drain immediately when the backlog reaches push_mtu_entries, else (re)arm the
  // owner's idle-flush timer.
  void MaybeSchedulePush(VolPtr v, psw::Fingerprint fp, const InodeId& dir);
  // Queues a log on its owner's pusher without arming timers (recovery
  // flush path; pair with DrainOwnerBarrier).
  void EnqueueBacklog(VolPtr v, psw::Fingerprint fp, const InodeId& dir);
  // Background drain: pushes ready logs headed to `owner` in MTU-bounded
  // batches; a sub-MTU tail that trickles in mid-drain is handed back to
  // the idle timer. Single-flight per owner; on failure the sections are
  // re-queued and a backoff retry timer is armed. No-ops when a drain for
  // the owner is already running.
  sim::Task<void> DrainOwner(VolPtr v, uint32_t owner);
  // Recovery barrier (§5.4.2 flush): waits out any in-flight drain, then
  // drains to completion with no tail handoff. Returns with entries still
  // queued only if the owner is unreachable (the armed retry keeps at it).
  sim::Task<void> DrainOwnerBarrier(VolPtr v, uint32_t owner);

  // ---- owner side ----
  sim::Task<void> HandlePush(net::Packet p, VolPtr v);
  // Arms the quiet-period timer that triggers a proactive aggregation once
  // pushes stop arriving for owner_quiet_period.
  void ArmOwnerQuietTimer(VolPtr v, psw::Fingerprint fp);

  // ---- moved_fp rebind (§5.2 rename race, source side) ----
  // Re-keys `dir`'s change-log from `old_fp` to `new_fp` after a kMoved push
  // verdict or an AggDone moved row: trims the prefix the old owner applied
  // before the rename (`applied_seq` — those entries migrated with the
  // directory's entry list), moves the rest into the new-fingerprint log
  // with re-assigned seqs, re-inserts the dirty bit through the tracker, and
  // enqueues the log on the new owner's pusher. Safe to call twice for the
  // same verdict (the second call finds no log and no-ops). Returns true if
  // entries were re-keyed. `from_aggregation` selects which rebind counters
  // advance.
  sim::Task<bool> RebindMovedLog(VolPtr v, InodeId dir, psw::Fingerprint old_fp,
                                 psw::Fingerprint new_fp, uint64_t applied_seq,
                                 bool from_aggregation);
  // Spawn-friendly wrapper (sim::Spawn takes Task<void>).
  sim::Task<void> RebindMovedLogDetached(VolPtr v, InodeId dir,
                                         psw::Fingerprint old_fp,
                                         psw::Fingerprint new_fp,
                                         uint64_t applied_seq,
                                         bool from_aggregation);
  // Eager reaction to the rename's invalidation broadcast: for a log with
  // pending entries, triggers an immediate push toward the old owner so its
  // kMoved verdict (the only holder of the authoritative pre-rename applied
  // marks) performs the rebind one round trip from now — still ahead of any
  // client op through the new path. Never re-keys blindly (entries may be
  // applied-but-unacked at the old owner through channels invisible to this
  // server), and never erases the slot: per-(fp, dir) numbering must stay
  // monotonic so straggler commits cannot restart at seqs the tombstone's
  // marks would trim as already-applied.
  sim::Task<void> EagerRebindMoved(VolPtr v, InodeId dir,
                                   psw::Fingerprint old_fp,
                                   psw::Fingerprint new_fp);

 private:
  sim::Task<void> DrainOwnerImpl(VolPtr v, uint32_t owner, bool to_completion);
  sim::Task<void> OwnerIdleTimer(VolPtr v, uint32_t owner);
  sim::Task<void> RetryTimer(VolPtr v, uint32_t owner);
  sim::Task<void> OwnerQuietTimer(VolPtr v, psw::Fingerprint fp);
  // Owner-side application of one pushed section; the returned row carries
  // the seq the source may trim to. For a directory that no longer exists:
  // a live moved tombstone yields a kMoved rebind verdict; a genuinely
  // removed directory is acked at the section's max seq (the entries are
  // obsolete and must not be re-pushed forever).
  // `section_fp` is the fingerprint the pushed section is keyed under
  // (scopes a moved tombstone's applied marks to the right era).
  sim::Task<PushResp::AckedDir> ApplySection(VolPtr v, InodeId dir,
                                             uint32_t src,
                                             psw::Fingerprint section_fp,
                                             std::vector<ChangeLogEntry> entries);
  void ArmRetry(VolPtr v, uint32_t owner);
  // Exact count of live pending entries across the owner's ready logs,
  // saturating at `cap` (the aggregate-MTU trigger only compares against
  // push_mtu_entries, so the scan is O(mtu) amortized: entries whose logs turned
  // out empty are pruned as it goes, not re-visited per commit). Counting
  // live entries — not commits — keeps logs drained by a concurrent
  // aggregation from inflating the trigger into early sub-MTU batches.
  int ReadyEntries(const ServerVolatile& v, ServerVolatile::OwnerPusher& st,
                   int cap) const;

  ServerContext& ctx_;
  Aggregation& agg_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_PUSH_ENGINE_H_
