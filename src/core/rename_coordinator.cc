#include "src/core/rename_coordinator.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/core/cache_evict.h"
#include "src/core/schema.h"
#include "src/core/wal_records.h"

namespace switchfs::core {

sim::Task<void> RenameCoordinator::HandleRename(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  ctx_.stats->ops++;
  co_await ctx_.cpu->Run(ctx_.costs->op_dispatch);
  if (v->dead) co_return;

  const PathRef& src = req->ref;
  const PathRef& dst = req->ref2;
  const std::string skey = InodeKey(src.pid, src.name);
  const std::string dkey = InodeKey(dst.pid, dst.name);
  if (skey == dkey) {
    ctx_.RespondStatus(p, StatusCode::kInvalidArgument);
    co_return;
  }
  const psw::Fingerprint sfp = FingerprintOf(src.pid, src.name);
  const psw::Fingerprint dfp = FingerprintOf(dst.pid, dst.name);
  const net::NodeId s_node = ctx_.cluster->ServerNode(ctx_.OwnerOf(sfp));
  const net::NodeId d_node = ctx_.cluster->ServerNode(ctx_.OwnerOf(dfp));
  const uint64_t txn =
      (static_cast<uint64_t>(ctx_.config->index) << 48) | v->txn_counter++;

  struct Leg {
    net::NodeId node;
    InodeId pid;
    psw::Fingerprint parent_fp;
    std::string name;
    std::vector<AncestorRef> ancestors;
    bool is_src;
  };
  Leg legs[2] = {
      {s_node, src.pid, src.parent_fp, src.name, src.ancestors, true},
      {d_node, dst.pid, dst.parent_fp, dst.name, dst.ancestors, false},
  };
  // Deadlock-free 2PL: prepare in (parent_fp, key) order.
  if (std::make_pair(legs[1].parent_fp, dkey) <
      std::make_pair(legs[0].parent_fp, skey)) {
    std::swap(legs[0], legs[1]);
  }

  // §5.2: if the source is a directory, aggregate it *before* locking so the
  // inode we move is current and the aggregation's applies cannot deadlock
  // against our own prepare locks.
  {
    auto look = std::make_shared<LookupReq>();
    look->pid = src.pid;
    look->name = src.name;
    auto lr = co_await ctx_.rpc->Call(s_node, look);
    if (v->dead) co_return;
    if (lr.ok()) {
      const auto* lresp = net::MsgAs<LookupResp>(*lr);
      if (lresp != nullptr && lresp->status == StatusCode::kOk &&
          lresp->attr.is_dir()) {
        auto agg = std::make_shared<AggregateReq>();
        agg->fp = sfp;
        auto ar = co_await ctx_.rpc->Call(s_node, agg);
        (void)ar;
        if (v->dead) co_return;
      }
    }
  }

  Attr src_attr;
  StatusCode failure = StatusCode::kOk;
  int prepared = 0;
  for (int i = 0; i < 2; ++i) {
    auto prep = std::make_shared<RenamePrepare>();
    prep->txn_id = txn;
    prep->pid = legs[i].pid;
    prep->name = legs[i].name;
    prep->must_exist = legs[i].is_src;
    prep->must_absent = !legs[i].is_src;
    net::CallOptions txn_opts;
    txn_opts.timeout = sim::Milliseconds(20);
    txn_opts.max_attempts = 3;
    auto r = co_await ctx_.rpc->Call(legs[i].node, prep, txn_opts);
    if (v->dead) co_return;
    if (!r.ok()) {
      failure = StatusCode::kUnavailable;
      break;
    }
    const auto* pr = net::MsgAs<RenamePrepareResp>(*r);
    if (pr == nullptr || pr->status != StatusCode::kOk) {
      failure = pr == nullptr ? StatusCode::kInternal : pr->status;
      break;
    }
    if (legs[i].is_src) {
      src_attr = pr->attr;
    }
    prepared = i + 1;
  }

  // Orphaned-loop prevention (§5.2): a directory must not be moved under
  // one of its own descendants.
  if (failure == StatusCode::kOk && src_attr.is_dir()) {
    for (const AncestorRef& a : dst.ancestors) {
      if (a.id == src_attr.id) {
        failure = StatusCode::kCrossDevice;
        break;
      }
    }
  }

  if (failure != StatusCode::kOk) {
    for (int i = 0; i < prepared; ++i) {
      auto abort = std::make_shared<RenameCommit>();
      abort->txn_id = txn;
      abort->abort = true;
      abort->parent_dir = legs[i].pid;
      abort->parent_entry_name = legs[i].name;
      auto r = co_await ctx_.rpc->Call(legs[i].node, abort);
      (void)r;
      if (v->dead) co_return;
    }
    ctx_.RespondStatus(p, failure);
    co_return;
  }

  // Commit: source leg (delete + deferred parent remove-entry) first, then
  // destination (put + deferred parent add-entry).
  auto scommit = std::make_shared<RenameCommit>();
  scommit->txn_id = txn;
  scommit->delete_inode = true;
  scommit->log_parent_update = true;
  scommit->parent_dir = src.pid;
  scommit->parent_fp = src.parent_fp;
  scommit->parent_op = OpType::kUnlink;
  scommit->parent_entry_name = src.name;
  scommit->parent_entry_type = src_attr.type;
  if (src_attr.is_dir()) {
    // Moved tombstone: the old owner must be able to tell "renamed away"
    // from "removed" when change-log entries committed under the old
    // fingerprint arrive after this commit — they are re-keyed to the new
    // owner, not trimmed.
    scommit->moved_tombstone = true;
    scommit->moved_dir = src_attr.id;
    scommit->moved_new_fp = dfp;
    scommit->moved_new_owner = ctx_.OwnerOf(dfp);
  }
  net::CallOptions commit_opts;
  commit_opts.timeout = sim::Milliseconds(20);
  commit_opts.max_attempts = 3;
  auto r1 = co_await ctx_.rpc->Call(s_node, scommit, commit_opts);
  if (v->dead) co_return;

  std::vector<DirEntry> moved_entries;
  if (r1.ok()) {
    if (const auto* blob = net::MsgAs<EntryListBlob>(*r1)) {
      moved_entries = blob->entries;
    }
  }

  auto dcommit = std::make_shared<RenameCommit>();
  dcommit->txn_id = txn;
  dcommit->put_inode = true;
  dcommit->inode = src_attr;
  dcommit->log_parent_update = true;
  dcommit->parent_dir = dst.pid;
  dcommit->parent_fp = dst.parent_fp;
  dcommit->parent_op = OpType::kCreate;
  dcommit->parent_entry_name = dst.name;
  dcommit->parent_entry_type = src_attr.type;
  dcommit->install_entries = std::move(moved_entries);
  dcommit->install = src_attr.is_dir();
  auto r2 = co_await ctx_.rpc->Call(d_node, dcommit, commit_opts);
  (void)r2;
  if (v->dead) co_return;

  if (src_attr.is_dir()) {
    // The directory's cached path mappings are now stale everywhere. The
    // broadcast also carries the moved_fp rebind hint: each server re-keys
    // its (old fp, dir) change-log right away, before any client can have
    // re-resolved the new path — which keeps old-era entries ordered ahead
    // of same-name new-era ones (see InvalBroadcast in messages.h).
    v->inval.Add(src_attr.id, ctx_.Now());
    auto bcast = std::make_shared<InvalBroadcast>();
    bcast->id = src_attr.id;
    if (ctx_.config->moved_rebind) {
      bcast->moved = true;
      bcast->old_fp = sfp;
      bcast->new_fp = dfp;
    }
    net::Packet mc;
    mc.dst = net::kServerMulticast;
    mc.ds.origin = ctx_.node_id();
    // Defense-in-depth evict stamp: the source commit leg already evicted
    // the moving directory's old fingerprint; the broadcast's switch
    // traversal re-executes it and bumps the set version against any
    // install still in flight from a pre-rename read.
    mc.mc.op = net::McOp::kEvict;
    mc.mc.fingerprint = sfp;
    mc.body = bcast;
    ctx_.rpc->Send(std::move(mc));
    if (ctx_.config->moved_rebind) {
      // The multicast does not loop back to this server: rebind our own
      // old-era log for the directory, if any.
      sim::Spawn(push_.EagerRebindMoved(v, src_attr.id, sfp, dfp));
    }
  }
  ctx_.RespondStatus(p, StatusCode::kOk);
}

sim::Task<void> RenameCoordinator::HandleRenamePrepare(net::Packet p,
                                                       VolPtr v) {
  const auto* msg = static_cast<const RenamePrepare*>(p.body.get());
  co_await ctx_.cpu->Run(ctx_.costs->op_dispatch + ctx_.costs->txn_prepare);
  if (v->dead) co_return;
  const std::string ikey = InodeKey(msg->pid, msg->name);
  auto resp = std::make_shared<RenamePrepareResp>();
  auto ino = co_await v->ShardForKey(ikey).inode_locks.AcquireExclusive(ikey);
  if (v->dead) co_return;
  co_await ctx_.cpu->Run(ctx_.costs->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (msg->must_exist && !value.has_value()) {
    resp->status = StatusCode::kNotFound;
    ctx_.rpc->Respond(p, resp);
    co_return;
  }
  if (msg->must_absent && value.has_value()) {
    resp->status = StatusCode::kAlreadyExists;
    ctx_.rpc->Respond(p, resp);
    co_return;
  }
  if (value.has_value()) {
    resp->attr = Attr::Decode(*value);
  }
  resp->status = StatusCode::kOk;
  std::vector<LockTable::Handle> held;
  held.push_back(std::move(ino));
  // Keyed by (txn, leg): both legs of a rename may prepare on one server.
  v->txn_locks[msg->txn_id ^ HashString(ikey)] = std::move(held);
  ctx_.rpc->Respond(p, resp);
}

sim::Task<void> RenameCoordinator::HandleRenameCommit(net::Packet p, VolPtr v) {
  const auto* msg = static_cast<const RenameCommit*>(p.body.get());
  co_await ctx_.cpu->Run(ctx_.costs->op_dispatch + ctx_.costs->txn_commit);
  if (v->dead) co_return;
  const std::string leg_key =
      InodeKey(msg->parent_dir, msg->parent_entry_name);
  auto it = v->txn_locks.find(msg->txn_id ^ HashString(leg_key));
  if (it == v->txn_locks.end()) {
    // Retransmitted commit after completion: acknowledge idempotently.
    ctx_.rpc->Respond(p, net::MakeMsg<Ack>());
    co_return;
  }
  if (msg->abort) {
    v->txn_locks.erase(it);
    ctx_.rpc->Respond(p, net::MakeMsg<Ack>());
    co_return;
  }

  net::MsgPtr reply = net::MakeMsg<Ack>();
  ChangeLogEntry entry;
  if (msg->log_parent_update) {
    entry.timestamp = ctx_.Now();
    entry.op = msg->parent_op == OpType::kCreate
                   ? (msg->parent_entry_type == FileType::kDirectory
                          ? OpType::kMkdir
                          : OpType::kCreate)
                   : (msg->parent_entry_type == FileType::kDirectory
                          ? OpType::kRmdir
                          : OpType::kUnlink);
    entry.name = msg->parent_entry_name;
    entry.entry_type = msg->parent_entry_type;
    entry.size_delta = msg->parent_op == OpType::kCreate ? 1 : -1;
  }

  if (msg->delete_inode || msg->put_inode) {
    OpCommitRecord rec;
    rec.op = OpType::kRename;
    rec.parent_dir = msg->parent_dir;
    rec.parent_fp = msg->parent_fp;
    rec.has_entry = msg->log_parent_update;
    // The leg's inode key is recomputed from the parent update fields: the
    // leg's (pid, name) is exactly (parent_dir, parent_entry_name).
    const std::string key = InodeKey(msg->parent_dir, msg->parent_entry_name);
    rec.inode_key = key;
    rec.inode_delete = msg->delete_inode;
    if (msg->put_inode) {
      Attr attr = msg->inode;
      rec.inode_value = attr.Encode();
      // The migrated entry list must be as durable as the attr that counts
      // it: replay without these rows would resurrect the directory with its
      // pre-move size but an empty listing.
      rec.install_entries = msg->install_entries;
    }
    // Directory-rename source leg: the moved tombstone is committed with the
    // removal (same WAL record) so replay re-installs it. The epoch is this
    // commit's time — successive renames of one directory commit in causal
    // order, so epochs order tombstones across the chain. The tombstone
    // takes over the directory's applied high-water marks (rename era
    // boundary): kMoved verdicts serve them, and the live rows are erased so
    // a directory that later returns here starts a fresh dedup era.
    const bool install_tombstone =
        msg->moved_tombstone && ctx_.config->moved_rebind;
    const uint64_t moved_epoch = static_cast<uint64_t>(ctx_.Now());
    std::vector<std::pair<uint32_t, uint64_t>> moved_applied;
    if (install_tombstone) {
      // The fingerprint this tombstone closes: the renamed directory's own
      // (parent, name) hash at this server — the snapshot below must filter
      // the hwm lanes by it BEFORE it lands in the record.
      const psw::Fingerprint departing_fp =
          FingerprintOf(msg->parent_dir, msg->parent_entry_name);
      moved_applied = v->TakeHwmRows(msg->moved_dir, departing_fp);
      rec.has_moved_tombstone = true;
      rec.moved_dir = msg->moved_dir;
      rec.moved_old_fp = departing_fp;
      rec.moved_new_fp = msg->moved_new_fp;
      rec.moved_new_owner = msg->moved_new_owner;
      rec.moved_epoch = moved_epoch;
      rec.moved_applied = moved_applied;
    }

    // In-switch cache: both legs rewrite the row at this (parent, name)
    // fingerprint — the source leg deletes it, the destination leg creates
    // it. Evict before the WAL commit, under the txn's prepare-held lock:
    // the 2PC prepare leg acquired this key's exclusive inode lock and
    // parked it in v->txn_locks, so the commit leg's own chain holds
    // nothing — kExternal names that holder for the discipline checker.
    // sfs-lint: allow(evict-requires-lock, exclusive inode lock held in v->txn_locks by the prepare leg of this txn)
    co_await EvictSwitchCacheEntry(
        ctx_, v, FingerprintOf(msg->parent_dir, msg->parent_entry_name),
        EvictLockWitness::kExternal);
    if (v->dead) co_return;

    // Per-log append mutex: commit legs cannot take the fp-group change-log
    // lock (it would invert the upsert's cl-then-inode order and deadlock),
    // so without it the seq captured here went stale against a concurrent
    // append or moved_fp renumber during the WAL suspension below — the
    // ROADMAP PR-4 follow-up exposure. Innermost lock; held through Restore.
    LockTable::Handle append_lock;
    ChangeLog* clog = nullptr;
    if (msg->log_parent_update) {
      append_lock =
          co_await v->ShardFor(msg->parent_fp)
              .changelog_append_locks.AcquireExclusive(
                  ClAppendKey(msg->parent_fp, msg->parent_dir));
      if (v->dead) co_return;
      clog = &v->GetChangeLog(msg->parent_fp, msg->parent_dir);
      entry.seq = clog->last_appended_seq() + 1;
      rec.entry = entry;
    }
    co_await ctx_.cpu->Run(ctx_.costs->wal_append);
    if (v->dead) co_return;
    const uint64_t lsn = ctx_.durable->wal.Append(kWalOpCommit, rec.Encode());

    co_await ctx_.cpu->Run(msg->delete_inode ? ctx_.costs->kv_delete
                                             : ctx_.costs->kv_put);
    if (v->dead) co_return;
    if (msg->delete_inode) {
      auto old = v->kv.Get(key);
      v->kv.Delete(key);
      if (old.has_value()) {
        Attr attr = Attr::Decode(*old);
        if (attr.is_dir()) {
          // Export the entry list; it moves with the inode to the new owner.
          auto blob = std::make_shared<EntryListBlob>();
          blob->dir = attr.id;
          v->kv.ScanPrefix(EntryPrefix(attr.id),
                           [&](const std::string& k, const std::string& val) {
                             blob->entries.push_back(
                                 DirEntry{std::string(EntryNameFromKey(k)),
                                          DecodeEntryValue(val)});
                             return true;
                           });
          for (const DirEntry& e : blob->entries) {
            v->kv.Delete(EntryKey(attr.id, e.name));
          }
          v->kv.Delete(DirIndexKey(attr.id));
          if (install_tombstone) {
            // In place of the bare removal: record where the directory went,
            // so a push/aggregation that finds it gone re-keys instead of
            // trimming (PushResp::kMoved / AggDone moved rows).
            ServerVolatile::MovedDir tomb;
            tomb.old_fp = rec.moved_old_fp;
            tomb.new_fp = msg->moved_new_fp;
            tomb.new_owner = msg->moved_new_owner;
            tomb.epoch = moved_epoch;
            tomb.installed_at = ctx_.Now();
            tomb.applied = std::move(moved_applied);
            v->InstallMovedTombstone(msg->moved_dir, tomb);
          }
          reply = blob;
        }
      }
    } else {
      v->kv.Put(key, rec.inode_value);
      if (msg->inode.type == FileType::kDirectory) {
        // Arrival era hygiene: drop dead-era lanes for the directory.
        v->TakeHwmRows(msg->inode.id, 0);
        v->kv.Put(DirIndexKey(msg->inode.id),
                  EncodeDirIndex(key, FingerprintOf(msg->parent_dir,
                                                    msg->parent_entry_name)));
        for (const DirEntry& e : msg->install_entries) {
          v->kv.Put(EntryKey(msg->inode.id, e.name), EncodeEntryValue(e.type));
        }
      }
    }
    if (clog != nullptr) {
      co_await ctx_.cpu->Run(ctx_.costs->changelog_append);
      if (v->dead) co_return;
      entry.wal_lsn = lsn;
      // Re-obtain the log rather than reuse `clog`: the append mutex held
      // above excludes concurrent appends and rebind renumbering, but the
      // slot map itself is not under it, so a stale pointer is still not
      // worth the risk across the suspensions above.
      v->GetChangeLog(msg->parent_fp, msg->parent_dir).Restore(entry);
    }
  }

  if (msg->log_parent_update) {
    co_await publisher_.PublishUpdate(nullptr, v, msg->parent_fp,
                                      msg->parent_dir, nullptr);
    if (v->dead) co_return;
    push_.MaybeSchedulePush(v, msg->parent_fp, msg->parent_dir);
  }
  v->txn_locks.erase(msg->txn_id ^ HashString(leg_key));
  ctx_.rpc->Respond(p, reply);
}

sim::Task<void> RenameCoordinator::HandleAggregateReq(net::Packet p, VolPtr v) {
  const auto* msg = static_cast<const AggregateReq*>(p.body.get());
  co_await ctx_.cpu->Run(ctx_.costs->op_dispatch);
  if (v->dead) co_return;
  co_await agg_.GateAndAggregate(v, msg->fp);
  if (v->dead) co_return;
  ctx_.rpc->Respond(p, net::MakeMsg<Ack>());
}

}  // namespace switchfs::core
