// Rename (paper §5.2): coordinator-driven 2PL/2PC across up to four inodes
// with orphaned-loop prevention and source-directory aggregation, plus the
// participant prepare/commit legs every server runs.
//
// The coordinator (a designated server) aggregates the source directory
// before locking (so the inode it moves is current and the aggregation's
// applies cannot deadlock against its own prepare locks), prepares both legs
// in deterministic (parent_fp, key) order, rejects moves of a directory
// under one of its own descendants, then commits: source leg (delete +
// deferred parent remove-entry) first, destination (put + deferred parent
// add-entry) second. Directory moves broadcast a client-cache invalidation.
#ifndef SRC_CORE_RENAME_COORDINATOR_H_
#define SRC_CORE_RENAME_COORDINATOR_H_

#include "src/core/aggregation.h"
#include "src/core/push_engine.h"
#include "src/core/server_context.h"
#include "src/net/packet.h"
#include "src/sim/task.h"

namespace switchfs::core {

class RenameCoordinator {
 public:
  RenameCoordinator(ServerContext& ctx, Aggregation& agg, PushEngine& push,
                    UpdatePublisher& publisher)
      : ctx_(ctx), agg_(agg), push_(push), publisher_(publisher) {}
  RenameCoordinator(const RenameCoordinator&) = delete;
  RenameCoordinator& operator=(const RenameCoordinator&) = delete;

  // Coordinator entry point (client-facing kRename).
  sim::Task<void> HandleRename(net::Packet p, VolPtr v);

  // Participant legs.
  sim::Task<void> HandleRenamePrepare(net::Packet p, VolPtr v);
  sim::Task<void> HandleRenameCommit(net::Packet p, VolPtr v);
  // Aggregate-on-demand RPC the coordinator sends to the source's owner.
  sim::Task<void> HandleAggregateReq(net::Packet p, VolPtr v);

 private:
  ServerContext& ctx_;
  Aggregation& agg_;
  PushEngine& push_;
  UpdatePublisher& publisher_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_RENAME_COORDINATOR_H_
