#include "src/core/schema.h"

namespace switchfs::core {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kCreate:
      return "create";
    case OpType::kUnlink:
      return "delete";
    case OpType::kMkdir:
      return "mkdir";
    case OpType::kRmdir:
      return "rmdir";
    case OpType::kRename:
      return "rename";
    case OpType::kStat:
      return "stat";
    case OpType::kStatDir:
      return "statdir";
    case OpType::kReaddir:
      return "readdir";
    case OpType::kOpen:
      return "open";
    case OpType::kClose:
      return "close";
    case OpType::kLookup:
      return "lookup";
    case OpType::kChmod:
      return "chmod";
    case OpType::kLink:
      return "link";
    case OpType::kOpenDir:
      return "opendir";
    case OpType::kReaddirPage:
      return "readdirpage";
    case OpType::kCloseDir:
      return "closedir";
    case OpType::kBatchStat:
      return "batchstat";
    case OpType::kSetAttr:
      return "setattr";
    case OpType::kBulkInsert:
      return "bulkinsert";
    case OpType::kBatchStatDir:
      return "batchstatdir";
  }
  return "unknown";
}

std::string InodeKey(const InodeId& pid, std::string_view name) {
  std::string key;
  key.reserve(1 + 32 + name.size());
  key.push_back('i');
  key += pid.ToKeyBytes();
  key += name;
  return key;
}

std::string EntryKey(const InodeId& dir_id, std::string_view name) {
  std::string key;
  key.reserve(1 + 32 + name.size());
  key.push_back('e');
  key += dir_id.ToKeyBytes();
  key += name;
  return key;
}

std::string EntryPrefix(const InodeId& dir_id) {
  std::string key;
  key.reserve(1 + 32);
  key.push_back('e');
  key += dir_id.ToKeyBytes();
  return key;
}

std::string_view EntryNameFromKey(std::string_view key) {
  return key.substr(1 + 32);
}

uint64_t NameHash(const InodeId& pid, std::string_view name) {
  return HashCombine(pid.Hash64(), HashString(name));
}

std::string EncodeEntryValue(FileType type) {
  return std::string(1, static_cast<char>(type));
}

FileType DecodeEntryValue(std::string_view value) {
  return value.empty() ? FileType::kFile : static_cast<FileType>(value[0]);
}

}  // namespace switchfs::core
