// Metadata schema (paper §4.3, Tab 3).
//
// Everything is a key-value pair:
//   inode key   "i" + pid(32B) + name         -> Attr        (file or dir)
//   entry key   "e" + dir_id(32B) + name      -> entry type  (dir entry list)
//
// Inode keys are partitioned by hashing (pid, name) — the same hash that
// produces the directory's switch fingerprint — so every directory is
// colocated with its fingerprint group, and a directory's entry list lives
// with its inode (entry keys are only ever touched by the inode's owner).
#ifndef SRC_CORE_SCHEMA_H_
#define SRC_CORE_SCHEMA_H_

#include <string>
#include <string_view>

#include "src/core/types.h"
#include "src/pswitch/fingerprint.h"

namespace switchfs::core {

// Key of the inode for (pid, name).
std::string InodeKey(const InodeId& pid, std::string_view name);

// Key of one entry in directory `dir_id`'s entry list.
std::string EntryKey(const InodeId& dir_id, std::string_view name);
// Prefix covering the whole entry list of `dir_id`.
std::string EntryPrefix(const InodeId& dir_id);
// Extracts the entry name back out of an entry key.
std::string_view EntryNameFromKey(std::string_view key);

// The partition/fingerprint hash of a (pid, name) key (§4.3): both the
// owner-server choice and the 49-bit switch fingerprint derive from it.
uint64_t NameHash(const InodeId& pid, std::string_view name);

inline psw::Fingerprint FingerprintOf(const InodeId& pid,
                                      std::string_view name) {
  return psw::FingerprintFromHash(NameHash(pid, name));
}

// Entry-list values are a single byte (the entry's file type).
std::string EncodeEntryValue(FileType type);
FileType DecodeEntryValue(std::string_view value);

}  // namespace switchfs::core

#endif  // SRC_CORE_SCHEMA_H_
