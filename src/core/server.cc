#include "src/core/server.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/core/wal_records.h"
#include "src/sim/task.h"

namespace switchfs::core {

namespace {

// Encoded value of the "d" (dir-id -> inode key) index.
std::string EncodeDirIndex(const std::string& inode_key, psw::Fingerprint fp) {
  Encoder enc;
  enc.PutString(inode_key);
  enc.PutU64(fp);
  return std::move(enc).Take();
}

void DecodeDirIndex(const std::string& value, std::string* inode_key,
                    psw::Fingerprint* fp) {
  Decoder dec(value);
  *inode_key = dec.GetString();
  *fp = dec.GetU64();
}

}  // namespace

SwitchServer::SwitchServer(sim::Simulator* sim, net::Network* net,
                           ClusterContext* cluster, DurableState* durable,
                           const sim::CostModel* costs, ServerConfig config)
    : sim_(sim),
      net_(net),
      cluster_(cluster),
      durable_(durable),
      costs_(costs),
      config_(config),
      cpu_(sim, config.cores),
      rpc_(sim, net),
      vol_(std::make_shared<Volatile>(sim)) {
  rpc_.SetCpu(&cpu_);
  rpc_.SetRequestHandler([this](net::Packet p) { OnRequest(std::move(p)); });
  rpc_.SetRawHandler([this](net::Packet p) { OnRaw(std::move(p)); });
}

std::string SwitchServer::FpKey(psw::Fingerprint fp) {
  std::string key(1 + sizeof(fp), '\0');
  key[0] = 'f';
  std::memcpy(key.data() + 1, &fp, sizeof(fp));
  return key;
}

// Key of a shared attributes object (hard links, §5.5).
std::string AttrKey(const InodeId& id) {
  std::string key;
  key.reserve(33);
  key.push_back('a');
  key += id.ToKeyBytes();
  return key;
}

std::string SwitchServer::DirIndexKey(const InodeId& id) {
  std::string key;
  key.reserve(33);
  key.push_back('d');
  key += id.ToKeyBytes();
  return key;
}

int64_t SwitchServer::Now() const { return sim_->Now(); }

InodeId SwitchServer::NewInodeId() {
  InodeId id;
  id.w[0] = (static_cast<uint64_t>(config_.index) << 48) | durable_->id_counter;
  id.w[1] = Mix64(durable_->id_counter ^ (config_.index * 0x9e37ULL));
  id.w[2] = static_cast<uint64_t>(Now());
  id.w[3] = 2;  // != RootId
  durable_->id_counter++;
  return id;
}

void SwitchServer::SeedRoot() {
  const psw::Fingerprint root_fp = FingerprintOf(InodeId{}, "/");
  if (!IsOwner(root_fp)) {
    return;
  }
  Attr root;
  root.id = RootId();
  root.type = FileType::kDirectory;
  root.mode = 0755;
  const std::string key = InodeKey(InodeId{}, "/");
  vol_->kv.Put(key, root.Encode());
  vol_->kv.Put(DirIndexKey(root.id), EncodeDirIndex(key, root_fp));
}

void SwitchServer::PreloadInode(const std::string& key, const Attr& attr) {
  vol_->kv.Put(key, attr.Encode());
}

void SwitchServer::PreloadEntry(const InodeId& dir, const std::string& name,
                                FileType t) {
  vol_->kv.Put(EntryKey(dir, name), EncodeEntryValue(t));
}

void SwitchServer::PreloadDirIndex(const InodeId& id,
                                   const std::string& inode_key,
                                   psw::Fingerprint fp) {
  vol_->kv.Put(DirIndexKey(id), EncodeDirIndex(inode_key, fp));
}

size_t SwitchServer::PendingChangeLogEntries() const {
  size_t total = 0;
  for (const auto& [fp, dirs] : vol_->changelogs) {
    for (const auto& [dir, log] : dirs) {
      total += log.size();
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void SwitchServer::OnRequest(net::Packet p) {
  if (p.body == nullptr) {
    return;
  }
  VolPtr v = vol_;
  switch (p.body->type) {
    case MetaReq::kType: {
      if (!serving_) {
        RespondStatus(p, StatusCode::kUnavailable);
        return;
      }
      const auto* req = static_cast<const MetaReq*>(p.body.get());
      switch (req->op) {
        case OpType::kCreate:
        case OpType::kMkdir:
        case OpType::kUnlink:
          sim::Spawn(HandleUpsert(std::move(p), std::move(v)));
          break;
        case OpType::kRmdir:
          sim::Spawn(HandleRmdir(std::move(p), std::move(v)));
          break;
        case OpType::kStatDir:
        case OpType::kReaddir:
          sim::Spawn(HandleDirRead(std::move(p), std::move(v)));
          break;
        case OpType::kStat:
        case OpType::kOpen:
        case OpType::kClose:
        case OpType::kChmod:
          sim::Spawn(HandleFileOp(std::move(p), std::move(v)));
          break;
        case OpType::kRename:
          sim::Spawn(HandleRename(std::move(p), std::move(v)));
          break;
        case OpType::kLink:
          sim::Spawn(HandleLink(std::move(p), std::move(v)));
          break;
        default:
          RespondStatus(p, StatusCode::kInvalidArgument);
          break;
      }
      break;
    }
    case LookupReq::kType:
      if (!serving_) {
        RespondStatus(p, StatusCode::kUnavailable);
        return;
      }
      sim::Spawn(HandleLookup(std::move(p), std::move(v)));
      break;
    case AggEntries::kType:
      HandleAggEntries(std::move(p), std::move(v));
      break;
    case PushReq::kType:
      sim::Spawn(HandlePush(std::move(p), std::move(v)));
      break;
    case MarkScattered::kType: {
      const auto* msg = static_cast<const MarkScattered*>(p.body.get());
      v->owner_scattered.insert(msg->fp);
      rpc_.Respond(p, net::MakeMsg<Ack>());
      break;
    }
    case AggregateReq::kType:
      sim::Spawn(HandleAggregateReq(std::move(p), std::move(v)));
      break;
    case RenamePrepare::kType:
      sim::Spawn(HandleRenamePrepare(std::move(p), std::move(v)));
      break;
    case RenameCommit::kType:
      sim::Spawn(HandleRenameCommit(std::move(p), std::move(v)));
      break;
    case InvalCloneReq::kType:
      sim::Spawn(HandleInvalClone(std::move(p), std::move(v)));
      break;
    case LinkConvert::kType:
      sim::Spawn(HandleLinkConvert(std::move(p), std::move(v)));
      break;
    case LinkRefUpdate::kType:
      sim::Spawn(HandleLinkRefUpdate(std::move(p), std::move(v)));
      break;
    default:
      break;
  }
}

void SwitchServer::OnRaw(net::Packet p) {
  VolPtr v = vol_;
  if (p.has_ds_op() && p.ds.op == net::DsOp::kInsert) {
    if (p.ds.ret) {
      HandleInsertAck(p, v);  // mirror copy: release signal (7b)
    } else {
      // Address-rewriter redirect: we own the parent; apply synchronously.
      sim::Spawn(HandleInsertFallback(std::move(p), std::move(v)));
    }
    return;
  }
  if (p.body == nullptr) {
    return;
  }
  switch (p.body->type) {
    case AggCollect::kType:
      sim::Spawn(HandleAggCollect(std::move(p), std::move(v)));
      break;
    case AggDone::kType:
      HandleAggDone(*static_cast<const AggDone*>(p.body.get()), v);
      break;
    case FallbackDone::kType:
      HandleFallbackDone(*static_cast<const FallbackDone*>(p.body.get()), v);
      break;
    case InvalBroadcast::kType:
      v->inval.Add(static_cast<const InvalBroadcast*>(p.body.get())->id, Now());
      break;
    default:
      break;
  }
}

void SwitchServer::RespondStatus(const net::Packet& p, StatusCode code) {
  rpc_.Respond(p, net::MakeMsg<MetaResp>(code));
}

void SwitchServer::RespondStale(const net::Packet& p,
                                std::vector<InodeId> stale) {
  auto resp = std::make_shared<MetaResp>(StatusCode::kStaleCache);
  resp->stale_ids = std::move(stale);
  rpc_.Respond(p, resp);
}

// ---------------------------------------------------------------------------
// Double-inode operations: create / mkdir / delete (§5.2.1)
// ---------------------------------------------------------------------------

ChangeLog& SwitchServer::GetChangeLog(const VolPtr& v, psw::Fingerprint fp,
                                      const InodeId& dir) {
  auto& per_dir = v->changelogs[fp];
  auto it = per_dir.find(dir);
  if (it == per_dir.end()) {
    it = per_dir.emplace(dir, ChangeLog(dir, fp)).first;
  }
  return it->second;
}

sim::Task<void> SwitchServer::HandleUpsert(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  const PathRef& ref = req->ref;
  const std::string ikey = InodeKey(ref.pid, ref.name);
  const psw::Fingerprint pfp = ref.parent_fp;

  // Step 2: locking — parent change-log (write) + target inode (write).
  auto cl_lock = co_await v->changelog_locks.AcquireExclusive(FpKey(pfp));
  if (v->dead) co_return;
  auto ino_lock = co_await v->inode_locks.AcquireExclusive(ikey);
  if (v->dead) co_return;

  // Step 3: validation — invalidation list, then existence.
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  if (v->dead) co_return;
  auto stale = v->inval.Check(ref.ancestors);
  if (!stale.empty()) {
    stats_.stale_cache_bounces++;
    RespondStale(p, std::move(stale));
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  auto existing = v->kv.Get(ikey);

  Attr attr;
  ChangeLogEntry entry;
  entry.timestamp = Now();
  entry.name = ref.name;
  switch (req->op) {
    case OpType::kCreate:
    case OpType::kMkdir: {
      if (existing.has_value()) {
        RespondStatus(p, StatusCode::kAlreadyExists);
        co_return;
      }
      attr.id = NewInodeId();
      attr.type = req->op == OpType::kMkdir ? FileType::kDirectory
                                            : FileType::kFile;
      attr.mode = req->mode;
      attr.ctime = attr.mtime = attr.atime = Now();
      entry.op = req->op;
      entry.entry_type = attr.type;
      entry.size_delta = 1;
      break;
    }
    case OpType::kUnlink: {
      if (!existing.has_value()) {
        RespondStatus(p, StatusCode::kNotFound);
        co_return;
      }
      attr = Attr::Decode(*existing);
      if (attr.is_dir()) {
        RespondStatus(p, StatusCode::kIsADirectory);
        co_return;
      }
      if (attr.type == FileType::kReference) {
        // Hard link: drop one reference; the attributes object dies when the
        // count reaches zero (§5.5).
        co_await UpdateLinkCount(v, attr.id,
                                 static_cast<uint32_t>(attr.size), -1,
                                 nullptr);
        if (v->dead) co_return;
      }
      entry.op = OpType::kUnlink;
      entry.entry_type = FileType::kFile;
      entry.size_delta = -1;
      break;
    }
    default:
      RespondStatus(p, StatusCode::kInvalidArgument);
      co_return;
  }

  // Step 4: persistent commit (WAL).
  ChangeLog& clog = GetChangeLog(v, pfp, ref.pid);
  entry.seq = clog.last_appended_seq() + 1;
  OpCommitRecord rec;
  rec.op = req->op;
  rec.inode_key = ikey;
  rec.inode_delete = req->op == OpType::kUnlink;
  if (!rec.inode_delete) {
    rec.inode_value = attr.Encode();
  }
  rec.parent_dir = ref.pid;
  rec.parent_fp = pfp;
  rec.entry = entry;
  rec.has_entry = true;
  co_await cpu_.Run(costs_->wal_append);
  if (v->dead) co_return;
  const uint64_t lsn = durable_->wal.Append(kWalOpCommit, rec.Encode());

  // Step 5: execute locally.
  co_await cpu_.Run(rec.inode_delete ? costs_->kv_delete : costs_->kv_put);
  if (v->dead) co_return;
  if (rec.inode_delete) {
    v->kv.Delete(ikey);
  } else {
    v->kv.Put(ikey, rec.inode_value);
    if (req->op == OpType::kMkdir) {
      // New directory: its fingerprint group is this very key's hash, so we
      // are its owner; index id -> inode key for aggregation applies.
      v->kv.Put(DirIndexKey(attr.id),
                EncodeDirIndex(ikey, FingerprintOf(ref.pid, ref.name)));
    }
  }
  co_await cpu_.Run(costs_->changelog_append);
  if (v->dead) co_return;
  entry.wal_lsn = lsn;
  clog.Restore(entry);

  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->attr = attr;

  if (!config_.async_updates) {
    // Conventional synchronous update (Baseline of §7.3.1).
    Status s = co_await SyncParentUpdate(v, pfp, ref.pid, entry);
    if (v->dead) co_return;
    if (!s.ok()) {
      // Owner unreachable: the entry stays pending; it will be flushed by a
      // later push. The op itself is committed, so report success.
    }
    rpc_.Respond(p, resp);
    co_return;
  }

  // Step 6/7: mark scattered, reply via the ack path, release locks (RAII).
  co_await PublishUpdate(&p, v, pfp, ref.pid, resp);
  if (v->dead) co_return;
  MaybeSchedulePush(v, pfp, ref.pid);
}

sim::Task<void> SwitchServer::PublishUpdate(const net::Packet* client_req,
                                            VolPtr v, psw::Fingerprint fp,
                                            const InodeId& dir,
                                            net::MsgPtr client_resp) {
  ChangeLog& clog = GetChangeLog(v, fp, dir);

  switch (config_.tracker) {
    case TrackerMode::kSwitch: {
      const uint64_t token = v->op_token_counter++;
      auto wait = std::make_shared<OpWait>();
      v->op_waits[token] = wait;

      auto env = std::make_shared<InsertEnvelope>();
      env->client_resp = client_resp;
      env->dir = dir;
      env->fp = fp;
      env->src_server = config_.index;
      env->op_token = token;
      env->backlog.assign(clog.pending().begin(), clog.pending().end());

      net::Packet ins;
      if (client_req != nullptr) {
        ins = rpc_.MakeResponsePacket(*client_req, env);
      } else {
        ins.dst = node_id();
        ins.body = env;
      }
      ins.ds.op = net::DsOp::kInsert;
      ins.ds.fingerprint = fp;
      ins.ds.origin = node_id();
      ins.ds.notify = ins.dst;
      ins.ds.alt_dst = cluster_->ServerNode(OwnerOf(fp));

      int result = 0;
      for (int attempt = 0; attempt < config_.insert_max_attempts; ++attempt) {
        if (wait->acked) {
          result = 1;
          break;
        }
        if (wait->fallback_done) {
          result = 2;
          break;
        }
        wait->slot = std::make_shared<sim::OneShot<int>>(sim_);
        rpc_.Send(ins);
        auto slot = wait->slot;
        sim_->ScheduleAfter(config_.insert_ack_timeout,
                            [slot] { slot->Set(0); });
        result = co_await slot->Wait();
        if (v->dead) co_return;
        if (result != 0) {
          break;
        }
      }
      v->op_waits.erase(token);
      if (client_req != nullptr) {
        // From here on, client retransmits are served from the dedup cache.
        rpc_.RecordResponse(*client_req, env);
      }
      break;
    }
    case TrackerMode::kDedicatedServer: {
      auto op = std::make_shared<TrackerOp>();
      op->op = net::DsOp::kInsert;
      op->fp = fp;
      op->origin_server = config_.index;
      auto r = co_await rpc_.Call(config_.tracker_node, op);
      if (v->dead) co_return;
      const bool ok =
          r.ok() && net::MsgAs<TrackerResp>(*r) != nullptr &&
          net::MsgAs<TrackerResp>(*r)->ok;
      if (!ok) {
        stats_.fallbacks++;
        co_await SyncParentUpdate(v, fp, dir, clog.pending().back());
        if (v->dead) co_return;
      }
      if (client_req != nullptr) {
        rpc_.Respond(*client_req, client_resp);
      }
      break;
    }
    case TrackerMode::kOwnerServer: {
      if (IsOwner(fp)) {
        v->owner_scattered.insert(fp);
      } else {
        auto msg = std::make_shared<MarkScattered>();
        msg->fp = fp;
        auto r = co_await rpc_.Call(cluster_->ServerNode(OwnerOf(fp)), msg);
        (void)r;  // on timeout the push path repairs visibility
        if (v->dead) co_return;
      }
      if (client_req != nullptr) {
        rpc_.Respond(*client_req, client_resp);
      }
      break;
    }
  }
}

sim::Task<Status> SwitchServer::SyncParentUpdate(VolPtr v, psw::Fingerprint fp,
                                                 const InodeId& dir,
                                                 const ChangeLogEntry& entry) {
  ChangeLog& clog = GetChangeLog(v, fp, dir);
  const uint64_t max_seq = clog.last_appended_seq();
  if (IsOwner(fp)) {
    std::vector<ChangeLogEntry> entries(clog.pending().begin(),
                                        clog.pending().end());
    co_await ApplyEntries(v, dir, config_.index, std::move(entries), "");
    if (v->dead) co_return UnavailableError();
    for (uint64_t lsn : clog.AckUpTo(max_seq)) {
      durable_->wal.MarkApplied(lsn);
    }
    co_return OkStatus();
  }
  auto push = std::make_shared<PushReq>();
  push->dir = dir;
  push->fp = fp;
  push->src_server = config_.index;
  push->entries.assign(clog.pending().begin(), clog.pending().end());
  auto r = co_await rpc_.Call(cluster_->ServerNode(OwnerOf(fp)), push);
  if (v->dead) co_return UnavailableError();
  if (!r.ok()) {
    co_return r.status();
  }
  const auto* resp = net::MsgAs<PushResp>(*r);
  if (resp == nullptr) {
    co_return InternalError("bad push response");
  }
  for (uint64_t lsn : clog.AckUpTo(resp->acked_seq)) {
    durable_->wal.MarkApplied(lsn);
  }
  co_return OkStatus();
}

// ---------------------------------------------------------------------------
// Insert acks & overflow fallback
// ---------------------------------------------------------------------------

void SwitchServer::HandleInsertAck(const net::Packet& p, VolPtr v) {
  const auto* env = net::MsgAs<InsertEnvelope>(p.body);
  if (env == nullptr) {
    return;
  }
  auto it = v->op_waits.find(env->op_token);
  if (it == v->op_waits.end()) {
    return;  // duplicate/late ack
  }
  it->second->acked = true;
  if (it->second->slot != nullptr) {
    it->second->slot->Set(1);
  }
}

sim::Task<void> SwitchServer::HandleInsertFallback(net::Packet p, VolPtr v) {
  auto body = p.body;
  const auto* env = net::MsgAs<InsertEnvelope>(body);
  if (env == nullptr) {
    co_return;
  }
  stats_.fallbacks++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;
  const uint64_t acked_seq =
      env->backlog.empty() ? 0 : env->backlog.back().seq;
  co_await ApplyEntries(v, env->dir, env->src_server, env->backlog, "");
  if (v->dead) co_return;

  // Complete the client's operation (the response packet was redirected to
  // us; forward the envelope on to its rightful recipient).
  if (env->client_resp != nullptr && p.rpc.caller != net::kInvalidNode) {
    net::Packet out;
    out.dst = p.rpc.caller;
    out.rpc = p.rpc;
    out.body = body;
    rpc_.Send(std::move(out));
  }
  // Tell the origin to release its locks and mark the backlog applied.
  auto done = std::make_shared<FallbackDone>();
  done->dir = env->dir;
  done->op_token = env->op_token;
  done->acked_seq = acked_seq;
  rpc_.Notify(cluster_->ServerNode(env->src_server), done);
}

void SwitchServer::HandleFallbackDone(const FallbackDone& msg, VolPtr v) {
  auto it = v->op_waits.find(msg.op_token);
  if (it == v->op_waits.end()) {
    return;
  }
  auto wait = it->second;
  // Mark the applied backlog; the fingerprint is recoverable from the wait.
  for (auto& [fp, dirs] : v->changelogs) {
    auto dit = dirs.find(msg.dir);
    if (dit != dirs.end()) {
      for (uint64_t lsn : dit->second.AckUpTo(msg.acked_seq)) {
        durable_->wal.MarkApplied(lsn);
      }
    }
  }
  wait->fallback_done = true;
  if (wait->slot != nullptr) {
    wait->slot->Set(2);
  }
}

// ---------------------------------------------------------------------------
// Directory reads: statdir / readdir (§5.2.2)
// ---------------------------------------------------------------------------

sim::Task<void> SwitchServer::HandleDirRead(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  const PathRef& ref = req->ref;
  const psw::Fingerprint dir_fp = FingerprintOf(ref.pid, ref.name);
  const std::string ikey = InodeKey(ref.pid, ref.name);

  bool scattered = false;
  switch (config_.tracker) {
    case TrackerMode::kSwitch:
      scattered = p.ds.op == net::DsOp::kQuery && p.ds.ret;
      break;
    case TrackerMode::kDedicatedServer:
      scattered = req->scattered_hint;
      break;
    case TrackerMode::kOwnerServer:
      scattered = v->owner_scattered.count(dir_fp) > 0;
      break;
  }
  const int64_t observed_at = Now();

  LockTable::Handle gate;
  while (true) {
    gate = co_await v->agg_gates.AcquireShared(FpKey(dir_fp));
    if (v->dead) co_return;
    if (!scattered) {
      break;
    }
    auto last = v->last_agg_complete.find(dir_fp);
    if (last != v->last_agg_complete.end() && last->second > observed_at) {
      break;  // someone aggregated after our dirty-set observation
    }
    gate.Release();
    auto xgate = co_await v->agg_gates.AcquireExclusive(FpKey(dir_fp));
    if (v->dead) co_return;
    last = v->last_agg_complete.find(dir_fp);
    if (last == v->last_agg_complete.end() || last->second <= observed_at) {
      co_await RunAggregation(v, dir_fp, std::nullopt, 0, "", false);
      if (v->dead) co_return;
    }
    xgate.Release();
    scattered = false;
  }

  auto ino = co_await v->inode_locks.AcquireShared(ikey);
  if (v->dead) co_return;
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  if (v->dead) co_return;
  auto stale = v->inval.Check(ref.ancestors);
  if (!stale.empty()) {
    stats_.stale_cache_bounces++;
    RespondStale(p, std::move(stale));
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (!value.has_value()) {
    RespondStatus(p, StatusCode::kNotFound);
    co_return;
  }
  Attr attr = Attr::Decode(*value);
  if (!attr.is_dir()) {
    RespondStatus(p, StatusCode::kNotADirectory);
    co_return;
  }
  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->attr = attr;
  if (req->op == OpType::kReaddir && req->want_entries) {
    size_t n = 0;
    v->kv.ScanPrefix(EntryPrefix(attr.id),
                     [&](const std::string& k, const std::string& val) {
                       resp->entries.push_back(DirEntry{
                           std::string(EntryNameFromKey(k)),
                           DecodeEntryValue(val)});
                       ++n;
                       return true;
                     });
    co_await cpu_.Run(static_cast<sim::SimTime>(n) *
                      (costs_->kv_scan_per_entry + costs_->readdir_per_entry));
    if (v->dead) co_return;
  }
  co_await cpu_.Run(costs_->reply_build);
  if (v->dead) co_return;
  rpc_.Respond(p, resp);
}

// ---------------------------------------------------------------------------
// Aggregation — owner side (§5.2.2 steps 5-10)
// ---------------------------------------------------------------------------

bool SwitchServer::LookupDirIndex(const VolPtr& v, const InodeId& dir,
                                  std::string* inode_key,
                                  psw::Fingerprint* fp) const {
  auto value = v->kv.Get(DirIndexKey(dir));
  if (!value.has_value()) {
    return false;
  }
  DecodeDirIndex(*value, inode_key, fp);
  return true;
}

sim::Task<SwitchServer::AggOutcome> SwitchServer::RunAggregation(
    VolPtr v, psw::Fingerprint fp, std::optional<InodeId> invalidate,
    psw::Fingerprint held_cl_fp, const std::string& held_inode_key,
    bool defer_done) {
  stats_.aggregations++;
  AggOutcome outcome;

  auto w = std::make_shared<AggWait>();
  for (uint32_t s = 0; s < cluster_->ServerCount(); ++s) {
    if (s != config_.index) {
      w->pending.insert(s);
    }
  }
  v->agg_waits[fp] = w;

  if (invalidate.has_value()) {
    v->inval.Add(*invalidate, Now());
  }

  // Local snapshot: our own change-logs belong to the collection too. The
  // shared lock serializes against in-flight double-inode ops (Fig 20).
  {
    LockTable::Handle local_lock;
    if (fp != held_cl_fp) {
      local_lock = co_await v->changelog_locks.AcquireShared(FpKey(fp));
      if (v->dead) co_return outcome;
    }
    auto it = v->changelogs.find(fp);
    if (it != v->changelogs.end()) {
      for (auto& [dir, log] : it->second) {
        if (log.empty()) {
          continue;
        }
        AggEntries::PerDir pd;
        pd.dir = dir;
        pd.entries.assign(log.pending().begin(), log.pending().end());
        w->collected.push_back(std::move(pd));
        w->collected_src.push_back(config_.index);
      }
    }
  }

  // Remove the fingerprint and multicast the collect request; retry with a
  // fresh sequence number until every server has replied (§5.4.1).
  bool complete = w->pending.empty();
  for (int attempt = 0; attempt <= config_.agg_max_retries && !complete;
       ++attempt) {
    if (attempt > 0) {
      stats_.agg_retries++;
    }
    const uint64_t seq = ++durable_->remove_seq;
    w->seq = seq;
    w->slot = std::make_shared<sim::OneShot<bool>>(sim_);

    auto collect = std::make_shared<AggCollect>();
    collect->fp = fp;
    collect->initiator_server = config_.index;
    collect->initiator_node = node_id();
    collect->agg_seq = seq;
    if (invalidate.has_value()) {
      collect->invalidate = true;
      collect->invalidate_id = *invalidate;
    }

    net::Packet rm;
    rm.dst = net::kServerMulticast;
    rm.body = collect;
    switch (config_.tracker) {
      case TrackerMode::kSwitch:
        rm.ds.op = net::DsOp::kRemove;
        rm.ds.fingerprint = fp;
        rm.ds.remove_seq = seq;
        rm.ds.origin = node_id();
        rpc_.Send(rm);
        break;
      case TrackerMode::kDedicatedServer: {
        auto op = std::make_shared<TrackerOp>();
        op->op = net::DsOp::kRemove;
        op->fp = fp;
        op->remove_seq = seq;
        op->origin_server = config_.index;
        auto r = co_await rpc_.Call(config_.tracker_node, op);
        (void)r;
        if (v->dead) co_return outcome;
        rm.ds.origin = node_id();  // multicast exclusion key
        rpc_.Send(rm);
        break;
      }
      case TrackerMode::kOwnerServer:
        v->owner_scattered.erase(fp);
        rm.ds.origin = node_id();
        rpc_.Send(rm);
        break;
    }

    auto slot = w->slot;
    sim_->ScheduleAfter(config_.agg_reply_timeout, [slot] { slot->Set(false); });
    complete = co_await slot->Wait();
    if (v->dead) co_return outcome;
    if (w->pending.empty()) {
      complete = true;
    }
  }

  // Apply phase: per-(dir, source) batches, hwm-deduplicated.
  uint64_t local_max_acked = 0;
  std::map<std::pair<uint32_t, InodeId>, uint64_t> acked;
  for (size_t i = 0; i < w->collected.size(); ++i) {
    const uint32_t src = w->collected_src[i];
    auto& pd = w->collected[i];
    if (!pd.entries.empty()) {
      auto& high = acked[{src, pd.dir}];
      high = std::max(high, pd.entries.back().seq);
    }
    co_await ApplyEntries(v, pd.dir, src, std::move(pd.entries),
                          held_inode_key);
    if (v->dead) co_return outcome;
  }

  // Ack our own change-logs synchronously.
  auto own = v->changelogs.find(fp);
  if (own != v->changelogs.end()) {
    for (auto& [dir, log] : own->second) {
      auto it = acked.find({config_.index, dir});
      if (it == acked.end()) {
        continue;
      }
      local_max_acked = std::max(local_max_acked, it->second);
      for (uint64_t lsn : log.AckUpTo(it->second)) {
        durable_->wal.MarkApplied(lsn);
      }
    }
  }
  (void)local_max_acked;

  auto done = std::make_shared<AggDone>();
  done->fp = fp;
  done->agg_seq = w->seq;
  for (const auto& [key, seq] : acked) {
    if (key.first == config_.index) {
      continue;
    }
    done->acked.push_back(AggDone::AckedRow{key.first, key.second, seq});
  }
  v->last_agg_complete[fp] = Now();
  v->agg_waits.erase(fp);

  outcome.ok = true;
  if (defer_done) {
    outcome.deferred_done = done;
  } else {
    SendAggDone(done);
  }
  co_return outcome;
}

void SwitchServer::SendAggDone(net::MsgPtr done_msg) {
  if (done_msg == nullptr) {
    return;
  }
  net::Packet p;
  p.dst = net::kServerMulticast;
  p.ds.origin = node_id();
  p.body = std::move(done_msg);
  rpc_.Send(std::move(p));
}

sim::Task<void> SwitchServer::GateAndAggregate(VolPtr v, psw::Fingerprint fp) {
  auto gate = co_await v->agg_gates.AcquireExclusive(FpKey(fp));
  if (v->dead) co_return;
  co_await RunAggregation(v, fp, std::nullopt, 0, "", false);
}

sim::Task<void> SwitchServer::ApplyEntries(VolPtr v, InodeId dir, uint32_t src,
                                           std::vector<ChangeLogEntry> entries,
                                           const std::string& held_inode_key) {
  if (entries.empty()) {
    co_return;
  }
  std::string ikey;
  psw::Fingerprint fp = 0;
  if (!LookupDirIndex(v, dir, &ikey, &fp)) {
    co_return;  // directory since removed; entries are obsolete
  }
  LockTable::Handle lock;
  if (ikey != held_inode_key) {
    lock = co_await v->inode_locks.AcquireExclusive(ikey);
    if (v->dead) co_return;
  }

  uint64_t& high = v->hwm[{dir, src}];
  std::vector<ChangeLogEntry> todo;
  uint64_t next = high + 1;
  for (ChangeLogEntry& e : entries) {
    if (e.seq < next) {
      stats_.entries_deduped++;
      continue;
    }
    if (e.seq > next) {
      break;  // gap (an earlier push is still in flight): apply the prefix
    }
    todo.push_back(std::move(e));
    ++next;
  }
  if (todo.empty()) {
    co_return;
  }

  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (!value.has_value()) {
    co_return;  // directory vanished under a concurrent rmdir
  }
  Attr attr = Attr::Decode(*value);

  if (config_.compaction) {
    // §5.3: consolidated attribute update (one put) + entry-list operations
    // fanned out across cores; WAL appends are group-committed.
    int64_t size_delta = 0;
    int64_t max_ts = attr.mtime;
    for (const ChangeLogEntry& e : todo) {
      size_delta += e.size_delta;
      max_ts = std::max(max_ts, e.timestamp);
    }
    const uint64_t result_size = static_cast<uint64_t>(
        std::max<int64_t>(0, static_cast<int64_t>(attr.size) + size_delta));
    auto join = std::make_shared<sim::JoinCounter>(
        sim_, static_cast<int>(todo.size()));
    for (const ChangeLogEntry& e : todo) {
      EntryApplyRecord rec;
      rec.dir = dir;
      rec.src_server = src;
      rec.entry = e;
      rec.result_size = result_size;
      rec.result_mtime = max_ts;
      durable_->wal.Append(kWalEntryApply, rec.Encode());
      sim::Spawn([](SwitchServer* self, VolPtr vol, InodeId d,
                    ChangeLogEntry entry,
                    std::shared_ptr<sim::JoinCounter> jc) -> sim::Task<void> {
        co_await self->cpu_.Run(self->costs_->wal_append_batched +
                                self->costs_->changelog_apply_entry);
        if (!vol->dead) {
          const std::string ekey = EntryKey(d, entry.name);
          if (entry.op == OpType::kCreate || entry.op == OpType::kMkdir) {
            vol->kv.Put(ekey, EncodeEntryValue(entry.entry_type));
          } else {
            vol->kv.Delete(ekey);
          }
        }
        jc->Done();
      }(this, v, dir, e, join));
    }
    co_await join->Wait();
    if (v->dead) co_return;
    attr.size = result_size;
    attr.mtime = max_ts;
    attr.atime = std::max(attr.atime, max_ts);
    co_await cpu_.Run(costs_->attr_merge_apply);
    if (v->dead) co_return;
    v->kv.Put(ikey, attr.Encode());
    high = std::max(high, todo.back().seq);
  } else {
    // No compaction (+Async ablation): every entry is a full read-modify-
    // write of the directory inode, serialized under the inode lock.
    for (const ChangeLogEntry& e : todo) {
      EntryApplyRecord rec;
      rec.dir = dir;
      rec.src_server = src;
      rec.entry = e;
      const int64_t new_size =
          std::max<int64_t>(0, static_cast<int64_t>(attr.size) + e.size_delta);
      rec.result_size = static_cast<uint64_t>(new_size);
      rec.result_mtime = std::max(attr.mtime, e.timestamp);
      co_await cpu_.Run(costs_->wal_append);
      if (v->dead) co_return;
      durable_->wal.Append(kWalEntryApply, rec.Encode());
      co_await cpu_.Run(costs_->dir_update_cpu);
      if (v->dead) co_return;
      co_await sim::Delay(
          sim_, costs_->dir_update_critical - costs_->dir_update_cpu);
      if (v->dead) co_return;
      const std::string ekey = EntryKey(dir, e.name);
      if (e.op == OpType::kCreate || e.op == OpType::kMkdir) {
        v->kv.Put(ekey, EncodeEntryValue(e.entry_type));
      } else {
        v->kv.Delete(ekey);
      }
      attr.size = rec.result_size;
      attr.mtime = rec.result_mtime;
      v->kv.Put(ikey, attr.Encode());
      high = std::max(high, e.seq);
    }
  }
  stats_.entries_applied += todo.size();
}

// ---------------------------------------------------------------------------
// Aggregation — responder side
// ---------------------------------------------------------------------------

sim::Task<void> SwitchServer::HandleAggCollect(net::Packet p, VolPtr v) {
  auto body = p.body;
  const auto* msg = net::MsgAs<AggCollect>(body);
  if (msg == nullptr) {
    co_return;
  }
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  // Fig 6 step 5: insert the removed directory into the invalidation list
  // *before* snapshotting, so racing double-inode ops fail their checks.
  if (msg->invalidate) {
    v->inval.Add(msg->invalidate_id, Now());
  }

  const psw::Fingerprint fp = msg->fp;
  auto it = v->agg_sessions.find(fp);
  if (it == v->agg_sessions.end()) {
    auto lock = co_await v->changelog_locks.AcquireShared(FpKey(fp));
    if (v->dead) co_return;
    // Re-check: a concurrent collect may have created the session while we
    // waited for the lock; keep the first session's lock and drop ours.
    it = v->agg_sessions.find(fp);
    if (it == v->agg_sessions.end()) {
      AggSession session;
      session.seq = msg->agg_seq;
      session.lock = std::move(lock);
      session.started_at = Now();
      it = v->agg_sessions.emplace(fp, std::move(session)).first;
      sim::Spawn(ResponderSessionWatchdog(v, fp, msg->agg_seq));
    } else {
      it->second.seq = std::max(it->second.seq, msg->agg_seq);
    }
  } else {
    it->second.seq = std::max(it->second.seq, msg->agg_seq);
  }

  auto reply = std::make_shared<AggEntries>();
  reply->fp = fp;
  reply->agg_seq = msg->agg_seq;
  reply->src_server = config_.index;
  auto logs = v->changelogs.find(fp);
  if (logs != v->changelogs.end()) {
    for (auto& [dir, log] : logs->second) {
      if (log.empty()) {
        continue;
      }
      AggEntries::PerDir pd;
      pd.dir = dir;
      pd.entries.assign(log.pending().begin(), log.pending().end());
      reply->dirs.push_back(std::move(pd));
    }
  }
  net::CallOptions opts;
  opts.timeout = sim::Microseconds(500);
  opts.max_attempts = 5;
  auto r = co_await rpc_.Call(msg->initiator_node, reply, opts);
  (void)r;  // receipt ack only; AggDone (or the watchdog) finishes the session
}

void SwitchServer::HandleAggEntries(net::Packet p, VolPtr v) {
  const auto* msg = net::MsgAs<AggEntries>(p.body);
  if (msg == nullptr) {
    return;
  }
  rpc_.Respond(p, net::MakeMsg<Ack>());
  auto it = v->agg_waits.find(msg->fp);
  if (it == v->agg_waits.end()) {
    return;  // aggregation already finished
  }
  auto& w = *it->second;
  for (const auto& pd : msg->dirs) {
    w.collected.push_back(pd);
    w.collected_src.push_back(msg->src_server);
  }
  if (msg->agg_seq == w.seq) {
    w.pending.erase(msg->src_server);
    if (w.pending.empty() && w.slot != nullptr) {
      w.slot->Set(true);
    }
  }
}

void SwitchServer::HandleAggDone(const AggDone& done, VolPtr v) {
  auto it = v->agg_sessions.find(done.fp);
  if (it == v->agg_sessions.end()) {
    return;
  }
  if (done.agg_seq < it->second.seq) {
    return;  // stale completion of an earlier attempt
  }
  auto logs = v->changelogs.find(done.fp);
  if (logs != v->changelogs.end()) {
    for (const auto& row : done.acked) {
      if (row.src_server != config_.index) {
        continue;
      }
      auto dit = logs->second.find(row.dir);
      if (dit == logs->second.end()) {
        continue;
      }
      for (uint64_t lsn : dit->second.AckUpTo(row.acked_seq)) {
        durable_->wal.MarkApplied(lsn);
      }
    }
  }
  v->agg_sessions.erase(it);  // releases the change-log lock (9a)
}

sim::Task<void> SwitchServer::ResponderSessionWatchdog(VolPtr v,
                                                       psw::Fingerprint fp,
                                                       uint64_t seq) {
  while (true) {
    co_await sim::Delay(sim_, config_.responder_session_timeout);
    if (v->dead) co_return;
    auto it = v->agg_sessions.find(fp);
    if (it == v->agg_sessions.end()) {
      co_return;  // finished normally
    }
    if (it->second.seq != seq) {
      seq = it->second.seq;  // still live (retries); keep watching
      continue;
    }
    // The initiator went silent (likely crashed): release the lock. Pending
    // entries stay; recovery or the next aggregation re-collects them.
    v->agg_sessions.erase(it);
    co_return;
  }
}

// ---------------------------------------------------------------------------
// rmdir (§5.2.3)
// ---------------------------------------------------------------------------

sim::Task<void> SwitchServer::HandleRmdir(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  const PathRef& ref = req->ref;
  const psw::Fingerprint target_fp = FingerprintOf(ref.pid, ref.name);
  const psw::Fingerprint pfp = ref.parent_fp;
  const std::string ikey = InodeKey(ref.pid, ref.name);

  // Lock order: agg gate -> change-log locks (fp order) -> target inode.
  auto gate = co_await v->agg_gates.AcquireExclusive(FpKey(target_fp));
  if (v->dead) co_return;
  LockTable::Handle cl_first;
  LockTable::Handle cl_second;
  if (pfp == target_fp) {
    cl_first = co_await v->changelog_locks.AcquireExclusive(FpKey(pfp));
  } else if (pfp < target_fp) {
    cl_first = co_await v->changelog_locks.AcquireExclusive(FpKey(pfp));
    if (v->dead) co_return;
    cl_second = co_await v->changelog_locks.AcquireExclusive(FpKey(target_fp));
  } else {
    cl_first = co_await v->changelog_locks.AcquireExclusive(FpKey(target_fp));
    if (v->dead) co_return;
    cl_second = co_await v->changelog_locks.AcquireExclusive(FpKey(pfp));
  }
  if (v->dead) co_return;
  auto ino = co_await v->inode_locks.AcquireExclusive(ikey);
  if (v->dead) co_return;

  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  if (v->dead) co_return;
  auto stale = v->inval.Check(ref.ancestors);
  if (!stale.empty()) {
    stats_.stale_cache_bounces++;
    RespondStale(p, std::move(stale));
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (!value.has_value()) {
    RespondStatus(p, StatusCode::kNotFound);
    co_return;
  }
  Attr attr = Attr::Decode(*value);
  if (!attr.is_dir()) {
    RespondStatus(p, StatusCode::kNotADirectory);
    co_return;
  }
  if (attr.id == RootId()) {
    RespondStatus(p, StatusCode::kInvalidArgument);
    co_return;
  }

  // Steps 4-7: aggregate the target with invalidation, deferring the
  // responders' release until after commit (Fig 6 step 12).
  auto outcome = co_await RunAggregation(v, target_fp, attr.id, target_fp,
                                         ikey, /*defer_done=*/true);
  if (v->dead) co_return;

  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  value = v->kv.Get(ikey);
  if (!value.has_value()) {
    SendAggDone(outcome.deferred_done);
    RespondStatus(p, StatusCode::kNotFound);
    co_return;
  }
  attr = Attr::Decode(*value);
  const bool empty = attr.size == 0 && v->kv.CountPrefix(EntryPrefix(attr.id)) == 0;
  if (!empty) {
    SendAggDone(outcome.deferred_done);
    RespondStatus(p, StatusCode::kNotEmpty);
    co_return;
  }

  // Step 8: commit.
  ChangeLog& clog = GetChangeLog(v, pfp, ref.pid);
  ChangeLogEntry entry;
  entry.timestamp = Now();
  entry.op = OpType::kRmdir;
  entry.name = ref.name;
  entry.entry_type = FileType::kDirectory;
  entry.size_delta = -1;
  entry.seq = clog.last_appended_seq() + 1;

  OpCommitRecord rec;
  rec.op = OpType::kRmdir;
  rec.inode_key = ikey;
  rec.inode_delete = true;
  rec.parent_dir = ref.pid;
  rec.parent_fp = pfp;
  rec.entry = entry;
  rec.has_entry = true;
  co_await cpu_.Run(costs_->wal_append);
  if (v->dead) co_return;
  entry.wal_lsn = durable_->wal.Append(kWalOpCommit, rec.Encode());

  co_await cpu_.Run(costs_->kv_delete);
  if (v->dead) co_return;
  v->kv.Delete(ikey);
  v->kv.Delete(DirIndexKey(attr.id));
  co_await cpu_.Run(costs_->changelog_append);
  if (v->dead) co_return;
  clog.Restore(entry);

  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  co_await PublishUpdate(&p, v, pfp, ref.pid, resp);
  if (v->dead) co_return;

  // Step 12: let the responders release their locks and mark WALs.
  SendAggDone(outcome.deferred_done);
  MaybeSchedulePush(v, pfp, ref.pid);
}

// ---------------------------------------------------------------------------
// Single-inode file ops & lookups
// ---------------------------------------------------------------------------

sim::Task<void> SwitchServer::HandleFileOp(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  const PathRef& ref = req->ref;
  if (req->op == OpType::kClose) {
    // close releases client-side state only; servers just acknowledge.
    co_await cpu_.Run(costs_->reply_build);
    if (v->dead) co_return;
    RespondStatus(p, StatusCode::kOk);
    co_return;
  }

  const std::string ikey = InodeKey(ref.pid, ref.name);
  const bool write = req->op == OpType::kChmod;
  // NOTE: never combine co_await with the conditional operator — GCC 12
  // miscompiles `c ? co_await a : co_await b` (shared frame slots for the
  // branch temporaries corrupt RAII state).
  LockTable::Handle lock;
  if (write) {
    lock = co_await v->inode_locks.AcquireExclusive(ikey);
  } else {
    lock = co_await v->inode_locks.AcquireShared(ikey);
  }
  if (v->dead) co_return;
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  if (v->dead) co_return;
  auto stale = v->inval.Check(ref.ancestors);
  if (!stale.empty()) {
    stats_.stale_cache_bounces++;
    RespondStale(p, std::move(stale));
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (!value.has_value()) {
    RespondStatus(p, StatusCode::kNotFound);
    co_return;
  }
  Attr attr = Attr::Decode(*value);
  if (attr.type == FileType::kReference) {
    // Hard link: the real attributes live in the shared object (§5.5).
    Attr shared;
    co_await UpdateLinkCount(v, attr.id, static_cast<uint32_t>(attr.size),
                             /*delta=*/0, &shared,
                             req->op == OpType::kChmod, req->mode);
    if (v->dead) co_return;
    auto resp2 = std::make_shared<MetaResp>(StatusCode::kOk);
    resp2->attr = shared;
    co_await cpu_.Run(costs_->reply_build);
    if (v->dead) co_return;
    rpc_.Respond(p, resp2);
    co_return;
  }
  if (req->op == OpType::kChmod) {
    attr.mode = req->mode;
    attr.ctime = Now();
    co_await cpu_.Run(costs_->kv_put);
    if (v->dead) co_return;
    v->kv.Put(ikey, attr.Encode());
    if (attr.is_dir() && attr.id != RootId()) {
      // Permission changes on directories invalidate client caches (§4.2).
      // The root is exempt: clients cannot re-look it up (it has no parent),
      // and servers check root permissions directly.
      v->inval.Add(attr.id, Now());
      auto bcast = std::make_shared<InvalBroadcast>();
      bcast->id = attr.id;
      net::Packet mc;
      mc.dst = net::kServerMulticast;
      mc.ds.origin = node_id();
      mc.body = bcast;
      rpc_.Send(std::move(mc));
    }
  }
  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->attr = attr;
  co_await cpu_.Run(costs_->reply_build);
  if (v->dead) co_return;
  rpc_.Respond(p, resp);
}

sim::Task<void> SwitchServer::HandleLookup(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const LookupReq*>(p.body.get());
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;
  const std::string ikey = InodeKey(req->pid, req->name);
  auto lock = co_await v->inode_locks.AcquireShared(ikey);
  if (v->dead) co_return;
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + req->ancestors.size()));
  if (v->dead) co_return;
  auto resp = std::make_shared<LookupResp>();
  auto stale = v->inval.Check(req->ancestors);
  if (!stale.empty()) {
    stats_.stale_cache_bounces++;
    resp->status = StatusCode::kStaleCache;
    resp->stale_ids = std::move(stale);
    rpc_.Respond(p, resp);
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (!value.has_value()) {
    resp->status = StatusCode::kNotFound;
  } else {
    resp->status = StatusCode::kOk;
    resp->attr = Attr::Decode(*value);
    resp->read_at = Now();
  }
  rpc_.Respond(p, resp);
}

// ---------------------------------------------------------------------------
// Proactive push & owner-driven aggregation (§5.3)
// ---------------------------------------------------------------------------

void SwitchServer::MaybeSchedulePush(VolPtr v, psw::Fingerprint fp,
                                     const InodeId& dir) {
  auto logs = v->changelogs.find(fp);
  if (logs == v->changelogs.end()) {
    return;
  }
  auto it = logs->second.find(dir);
  if (it == logs->second.end() || it->second.empty()) {
    return;
  }
  if (static_cast<int>(it->second.size()) >= config_.mtu_entries) {
    sim::Spawn(PushBacklog(v, fp, dir));
    return;
  }
  const auto key = std::make_pair(fp, dir);
  if (v->push_timer_armed.insert(key).second) {
    sim::Spawn(PushIdleTimer(v, fp, dir));
  }
}

sim::Task<void> SwitchServer::PushIdleTimer(VolPtr v, psw::Fingerprint fp,
                                            InodeId dir) {
  const auto key = std::make_pair(fp, dir);
  while (true) {
    uint64_t last_seq = 0;
    {
      auto logs = v->changelogs.find(fp);
      if (logs == v->changelogs.end()) break;
      auto it = logs->second.find(dir);
      if (it == logs->second.end() || it->second.empty()) break;
      last_seq = it->second.last_appended_seq();
    }
    co_await sim::Delay(sim_, config_.push_idle_timeout);
    if (v->dead) co_return;
    auto logs = v->changelogs.find(fp);
    if (logs == v->changelogs.end()) break;
    auto it = logs->second.find(dir);
    if (it == logs->second.end() || it->second.empty()) break;
    if (it->second.last_appended_seq() == last_seq) {
      // Quiet: flush the backlog (§5.3 "no new entries within an interval").
      v->push_timer_armed.erase(key);
      co_await PushBacklog(v, fp, dir);
      co_return;
    }
  }
  v->push_timer_armed.erase(key);
}

sim::Task<void> SwitchServer::PushBacklog(VolPtr v, psw::Fingerprint fp,
                                          InodeId dir) {
  const auto key = std::make_pair(fp, dir);
  if (!v->push_in_flight.insert(key).second) {
    co_return;  // a push for this log is already running
  }
  while (true) {
    std::vector<ChangeLogEntry> entries;
    {
      auto lock = co_await v->changelog_locks.AcquireShared(FpKey(fp));
      if (v->dead) co_return;
      auto logs = v->changelogs.find(fp);
      if (logs == v->changelogs.end()) break;
      auto it = logs->second.find(dir);
      if (it == logs->second.end() || it->second.empty()) break;
      entries.assign(it->second.pending().begin(), it->second.pending().end());
    }
    if (entries.empty()) break;
    stats_.pushes_sent++;
    const uint64_t max_seq = entries.back().seq;

    uint64_t acked_seq = 0;
    if (IsOwner(fp)) {
      co_await ApplyEntries(v, dir, config_.index, std::move(entries), "");
      if (v->dead) co_return;
      acked_seq = max_seq;
      v->last_push[fp] = Now();
      ArmOwnerQuietTimer(v, fp);
    } else {
      auto push = std::make_shared<PushReq>();
      push->dir = dir;
      push->fp = fp;
      push->src_server = config_.index;
      push->entries = std::move(entries);
      auto r = co_await rpc_.Call(cluster_->ServerNode(OwnerOf(fp)), push);
      if (v->dead) co_return;
      if (!r.ok()) break;  // owner unreachable; a later trigger retries
      const auto* resp = net::MsgAs<PushResp>(*r);
      if (resp == nullptr || resp->status != StatusCode::kOk) break;
      acked_seq = resp->acked_seq;
    }
    {
      auto lock = co_await v->changelog_locks.AcquireExclusive(FpKey(fp));
      if (v->dead) co_return;
      auto logs = v->changelogs.find(fp);
      if (logs == v->changelogs.end()) break;
      auto it = logs->second.find(dir);
      if (it == logs->second.end()) break;
      for (uint64_t lsn : it->second.AckUpTo(acked_seq)) {
        durable_->wal.MarkApplied(lsn);
      }
      if (static_cast<int>(it->second.size()) < config_.mtu_entries) {
        break;
      }
    }
  }
  v->push_in_flight.erase(key);
}

sim::Task<void> SwitchServer::HandlePush(net::Packet p, VolPtr v) {
  const auto* msg = static_cast<const PushReq*>(p.body.get());
  stats_.pushes_received++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;
  co_await ApplyEntries(v, msg->dir, msg->src_server, msg->entries, "");
  if (v->dead) co_return;
  auto resp = std::make_shared<PushResp>();
  resp->status = StatusCode::kOk;
  auto it = v->hwm.find({msg->dir, msg->src_server});
  resp->acked_seq = it == v->hwm.end() ? 0 : it->second;
  rpc_.Respond(p, resp);
  v->last_push[msg->fp] = Now();
  ArmOwnerQuietTimer(v, msg->fp);
}

void SwitchServer::ArmOwnerQuietTimer(VolPtr v, psw::Fingerprint fp) {
  if (!config_.async_updates) {
    return;  // synchronous mode never defers
  }
  if (v->quiet_timer_armed.insert(fp).second) {
    sim::Spawn(OwnerQuietTimer(v, fp));
  }
}

sim::Task<void> SwitchServer::OwnerQuietTimer(VolPtr v, psw::Fingerprint fp) {
  while (true) {
    co_await sim::Delay(sim_, config_.owner_quiet_period);
    if (v->dead) co_return;
    auto it = v->last_push.find(fp);
    const int64_t last = it == v->last_push.end() ? 0 : it->second;
    if (Now() - last >= config_.owner_quiet_period) {
      break;
    }
  }
  v->quiet_timer_armed.erase(fp);
  // Quiet period elapsed: aggregate proactively so the next read finds the
  // directory in normal state (§5.3).
  co_await GateAndAggregate(v, fp);
}

// ---------------------------------------------------------------------------
// Rename (coordinator + participant legs)
// ---------------------------------------------------------------------------

sim::Task<void> SwitchServer::HandleRename(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  const PathRef& src = req->ref;
  const PathRef& dst = req->ref2;
  const std::string skey = InodeKey(src.pid, src.name);
  const std::string dkey = InodeKey(dst.pid, dst.name);
  if (skey == dkey) {
    RespondStatus(p, StatusCode::kInvalidArgument);
    co_return;
  }
  const psw::Fingerprint sfp = FingerprintOf(src.pid, src.name);
  const psw::Fingerprint dfp = FingerprintOf(dst.pid, dst.name);
  const net::NodeId s_node = cluster_->ServerNode(OwnerOf(sfp));
  const net::NodeId d_node = cluster_->ServerNode(OwnerOf(dfp));
  const uint64_t txn =
      (static_cast<uint64_t>(config_.index) << 48) | v->txn_counter++;

  struct Leg {
    net::NodeId node;
    InodeId pid;
    psw::Fingerprint parent_fp;
    std::string name;
    std::vector<AncestorRef> ancestors;
    bool is_src;
  };
  Leg legs[2] = {
      {s_node, src.pid, src.parent_fp, src.name, src.ancestors, true},
      {d_node, dst.pid, dst.parent_fp, dst.name, dst.ancestors, false},
  };
  // Deadlock-free 2PL: prepare in (parent_fp, key) order.
  if (std::make_pair(legs[1].parent_fp, dkey) <
      std::make_pair(legs[0].parent_fp, skey)) {
    std::swap(legs[0], legs[1]);
  }

  // §5.2: if the source is a directory, aggregate it *before* locking so the
  // inode we move is current and the aggregation's applies cannot deadlock
  // against our own prepare locks.
  {
    auto look = std::make_shared<LookupReq>();
    look->pid = src.pid;
    look->name = src.name;
    auto lr = co_await rpc_.Call(s_node, look);
    if (v->dead) co_return;
    if (lr.ok()) {
      const auto* lresp = net::MsgAs<LookupResp>(*lr);
      if (lresp != nullptr && lresp->status == StatusCode::kOk &&
          lresp->attr.is_dir()) {
        auto agg = std::make_shared<AggregateReq>();
        agg->fp = sfp;
        auto ar = co_await rpc_.Call(s_node, agg);
        (void)ar;
        if (v->dead) co_return;
      }
    }
  }

  Attr src_attr;
  StatusCode failure = StatusCode::kOk;
  std::vector<InodeId> stale;
  int prepared = 0;
  for (int i = 0; i < 2; ++i) {
    auto prep = std::make_shared<RenamePrepare>();
    prep->txn_id = txn;
    prep->pid = legs[i].pid;
    prep->name = legs[i].name;
    prep->must_exist = legs[i].is_src;
    prep->must_absent = !legs[i].is_src;
    net::CallOptions txn_opts;
    txn_opts.timeout = sim::Milliseconds(20);
    txn_opts.max_attempts = 3;
    auto r = co_await rpc_.Call(legs[i].node, prep, txn_opts);
    if (v->dead) co_return;
    if (!r.ok()) {
      failure = StatusCode::kUnavailable;
      break;
    }
    const auto* pr = net::MsgAs<RenamePrepareResp>(*r);
    if (pr == nullptr || pr->status != StatusCode::kOk) {
      failure = pr == nullptr ? StatusCode::kInternal : pr->status;
      break;
    }
    if (legs[i].is_src) {
      src_attr = pr->attr;
    }
    prepared = i + 1;
  }

  // Orphaned-loop prevention (§5.2): a directory must not be moved under
  // one of its own descendants.
  if (failure == StatusCode::kOk && src_attr.is_dir()) {
    for (const AncestorRef& a : dst.ancestors) {
      if (a.id == src_attr.id) {
        failure = StatusCode::kCrossDevice;
        break;
      }
    }
  }

  if (failure != StatusCode::kOk) {
    for (int i = 0; i < prepared; ++i) {
      auto abort = std::make_shared<RenameCommit>();
      abort->txn_id = txn;
      abort->abort = true;
      abort->parent_dir = legs[i].pid;
      abort->parent_entry_name = legs[i].name;
      auto r = co_await rpc_.Call(legs[i].node, abort);
      (void)r;
      if (v->dead) co_return;
    }
    RespondStatus(p, failure);
    co_return;
  }

  // Commit: source leg (delete + deferred parent remove-entry) first, then
  // destination (put + deferred parent add-entry).
  auto scommit = std::make_shared<RenameCommit>();
  scommit->txn_id = txn;
  scommit->delete_inode = true;
  scommit->log_parent_update = true;
  scommit->parent_dir = src.pid;
  scommit->parent_fp = src.parent_fp;
  scommit->parent_op = OpType::kUnlink;
  scommit->parent_entry_name = src.name;
  scommit->parent_entry_type = src_attr.type;
  net::CallOptions commit_opts;
  commit_opts.timeout = sim::Milliseconds(20);
  commit_opts.max_attempts = 3;
  auto r1 = co_await rpc_.Call(s_node, scommit, commit_opts);
  if (v->dead) co_return;

  std::vector<DirEntry> moved_entries;
  if (r1.ok()) {
    if (const auto* blob = net::MsgAs<EntryListBlob>(*r1)) {
      moved_entries = blob->entries;
    }
  }

  auto dcommit = std::make_shared<RenameCommit>();
  dcommit->txn_id = txn;
  dcommit->put_inode = true;
  dcommit->inode = src_attr;
  dcommit->log_parent_update = true;
  dcommit->parent_dir = dst.pid;
  dcommit->parent_fp = dst.parent_fp;
  dcommit->parent_op = OpType::kCreate;
  dcommit->parent_entry_name = dst.name;
  dcommit->parent_entry_type = src_attr.type;
  dcommit->install_entries = std::move(moved_entries);
  dcommit->install = src_attr.is_dir();
  auto r2 = co_await rpc_.Call(d_node, dcommit, commit_opts);
  (void)r2;
  if (v->dead) co_return;

  if (src_attr.is_dir()) {
    // The directory's cached path mappings are now stale everywhere.
    v->inval.Add(src_attr.id, Now());
    auto bcast = std::make_shared<InvalBroadcast>();
    bcast->id = src_attr.id;
    net::Packet mc;
    mc.dst = net::kServerMulticast;
    mc.ds.origin = node_id();
    mc.body = bcast;
    rpc_.Send(std::move(mc));
  }
  RespondStatus(p, StatusCode::kOk);
}

sim::Task<void> SwitchServer::HandleRenamePrepare(net::Packet p, VolPtr v) {
  const auto* msg = static_cast<const RenamePrepare*>(p.body.get());
  co_await cpu_.Run(costs_->op_dispatch + costs_->txn_prepare);
  if (v->dead) co_return;
  const std::string ikey = InodeKey(msg->pid, msg->name);
  auto resp = std::make_shared<RenamePrepareResp>();
  auto ino = co_await v->inode_locks.AcquireExclusive(ikey);
  if (v->dead) co_return;
  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (msg->must_exist && !value.has_value()) {
    resp->status = StatusCode::kNotFound;
    rpc_.Respond(p, resp);
    co_return;
  }
  if (msg->must_absent && value.has_value()) {
    resp->status = StatusCode::kAlreadyExists;
    rpc_.Respond(p, resp);
    co_return;
  }
  if (value.has_value()) {
    resp->attr = Attr::Decode(*value);
  }
  resp->status = StatusCode::kOk;
  std::vector<LockTable::Handle> held;
  held.push_back(std::move(ino));
  // Keyed by (txn, leg): both legs of a rename may prepare on one server.
  v->txn_locks[msg->txn_id ^ HashString(ikey)] = std::move(held);
  rpc_.Respond(p, resp);
}

sim::Task<void> SwitchServer::HandleRenameCommit(net::Packet p, VolPtr v) {
  const auto* msg = static_cast<const RenameCommit*>(p.body.get());
  co_await cpu_.Run(costs_->op_dispatch + costs_->txn_commit);
  if (v->dead) co_return;
  const std::string leg_key =
      InodeKey(msg->parent_dir, msg->parent_entry_name);
  auto it = v->txn_locks.find(msg->txn_id ^ HashString(leg_key));
  if (it == v->txn_locks.end()) {
    // Retransmitted commit after completion: acknowledge idempotently.
    rpc_.Respond(p, net::MakeMsg<Ack>());
    co_return;
  }
  if (msg->abort) {
    v->txn_locks.erase(it);
    rpc_.Respond(p, net::MakeMsg<Ack>());
    co_return;
  }

  net::MsgPtr reply = net::MakeMsg<Ack>();
  ChangeLogEntry entry;
  if (msg->log_parent_update) {
    entry.timestamp = Now();
    entry.op = msg->parent_op == OpType::kCreate
                   ? (msg->parent_entry_type == FileType::kDirectory
                          ? OpType::kMkdir
                          : OpType::kCreate)
                   : (msg->parent_entry_type == FileType::kDirectory
                          ? OpType::kRmdir
                          : OpType::kUnlink);
    entry.name = msg->parent_entry_name;
    entry.entry_type = msg->parent_entry_type;
    entry.size_delta = msg->parent_op == OpType::kCreate ? 1 : -1;
  }

  if (msg->delete_inode || msg->put_inode) {
    OpCommitRecord rec;
    rec.op = OpType::kRename;
    rec.parent_dir = msg->parent_dir;
    rec.parent_fp = msg->parent_fp;
    rec.has_entry = msg->log_parent_update;
    // The leg's inode key is recomputed from the parent update fields: the
    // leg's (pid, name) is exactly (parent_dir, parent_entry_name).
    const std::string key = InodeKey(msg->parent_dir, msg->parent_entry_name);
    rec.inode_key = key;
    rec.inode_delete = msg->delete_inode;
    if (msg->put_inode) {
      Attr attr = msg->inode;
      rec.inode_value = attr.Encode();
    }

    ChangeLog* clog = nullptr;
    if (msg->log_parent_update) {
      clog = &GetChangeLog(v, msg->parent_fp, msg->parent_dir);
      entry.seq = clog->last_appended_seq() + 1;
      rec.entry = entry;
    }
    co_await cpu_.Run(costs_->wal_append);
    if (v->dead) co_return;
    const uint64_t lsn = durable_->wal.Append(kWalOpCommit, rec.Encode());

    co_await cpu_.Run(msg->delete_inode ? costs_->kv_delete : costs_->kv_put);
    if (v->dead) co_return;
    if (msg->delete_inode) {
      auto old = v->kv.Get(key);
      v->kv.Delete(key);
      if (old.has_value()) {
        Attr attr = Attr::Decode(*old);
        if (attr.is_dir()) {
          // Export the entry list; it moves with the inode to the new owner.
          auto blob = std::make_shared<EntryListBlob>();
          blob->dir = attr.id;
          v->kv.ScanPrefix(EntryPrefix(attr.id),
                           [&](const std::string& k, const std::string& val) {
                             blob->entries.push_back(
                                 DirEntry{std::string(EntryNameFromKey(k)),
                                          DecodeEntryValue(val)});
                             return true;
                           });
          for (const DirEntry& e : blob->entries) {
            v->kv.Delete(EntryKey(attr.id, e.name));
          }
          v->kv.Delete(DirIndexKey(attr.id));
          reply = blob;
        }
      }
    } else {
      v->kv.Put(key, rec.inode_value);
      if (msg->inode.type == FileType::kDirectory) {
        v->kv.Put(DirIndexKey(msg->inode.id),
                  EncodeDirIndex(key, FingerprintOf(msg->parent_dir,
                                                    msg->parent_entry_name)));
        for (const DirEntry& e : msg->install_entries) {
          v->kv.Put(EntryKey(msg->inode.id, e.name), EncodeEntryValue(e.type));
        }
      }
    }
    if (clog != nullptr) {
      co_await cpu_.Run(costs_->changelog_append);
      if (v->dead) co_return;
      entry.wal_lsn = lsn;
      clog->Restore(entry);
    }
  }

  if (msg->log_parent_update) {
    co_await PublishUpdate(nullptr, v, msg->parent_fp, msg->parent_dir,
                           nullptr);
    if (v->dead) co_return;
    MaybeSchedulePush(v, msg->parent_fp, msg->parent_dir);
  }
  v->txn_locks.erase(msg->txn_id ^ HashString(leg_key));
  rpc_.Respond(p, reply);
}

sim::Task<void> SwitchServer::HandleAggregateReq(net::Packet p, VolPtr v) {
  const auto* msg = static_cast<const AggregateReq*>(p.body.get());
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;
  co_await GateAndAggregate(v, msg->fp);
  if (v->dead) co_return;
  rpc_.Respond(p, net::MakeMsg<Ack>());
}

// ---------------------------------------------------------------------------
// Hard links (§5.5)
// ---------------------------------------------------------------------------

sim::Task<Status> SwitchServer::UpdateLinkCount(VolPtr v, InodeId file_id,
                                                uint32_t attr_server,
                                                int32_t delta, Attr* out,
                                                bool set_mode, uint32_t mode) {
  if (attr_server == config_.index) {
    const std::string akey = AttrKey(file_id);
    auto lock = co_await v->inode_locks.AcquireExclusive(akey);
    if (v->dead) co_return UnavailableError();
    co_await cpu_.Run(costs_->kv_get);
    if (v->dead) co_return UnavailableError();
    auto value = v->kv.Get(akey);
    if (!value.has_value()) {
      co_return NotFoundError("attributes object missing");
    }
    Attr attrs = Attr::Decode(*value);
    attrs.nlink = static_cast<uint32_t>(
        std::max<int64_t>(0, static_cast<int64_t>(attrs.nlink) + delta));
    if (set_mode) {
      attrs.mode = mode;
      attrs.ctime = Now();
    }
    if (delta != 0 || set_mode) {
      OpCommitRecord rec;
      rec.op = OpType::kLink;
      rec.inode_key = akey;
      rec.inode_delete = attrs.nlink == 0;
      if (!rec.inode_delete) {
        rec.inode_value = attrs.Encode();
      }
      co_await cpu_.Run(costs_->wal_append);
      if (v->dead) co_return UnavailableError();
      durable_->wal.Append(kWalOpCommit, rec.Encode());
      co_await cpu_.Run(attrs.nlink == 0 ? costs_->kv_delete : costs_->kv_put);
      if (v->dead) co_return UnavailableError();
      if (attrs.nlink == 0) {
        v->kv.Delete(akey);
      } else {
        v->kv.Put(akey, attrs.Encode());
      }
    }
    if (out != nullptr) {
      *out = attrs;
    }
    co_return OkStatus();
  }
  auto msg = std::make_shared<LinkRefUpdate>();
  msg->file_id = file_id;
  msg->delta = delta;
  msg->set_mode = set_mode;
  msg->mode = mode;
  auto r = co_await rpc_.Call(cluster_->ServerNode(attr_server), msg);
  if (v->dead) co_return UnavailableError();
  if (!r.ok()) {
    co_return r.status();
  }
  const auto* resp = net::MsgAs<LinkRefUpdateResp>(*r);
  if (resp == nullptr || resp->status != StatusCode::kOk) {
    co_return Status(resp == nullptr ? StatusCode::kInternal : resp->status);
  }
  if (out != nullptr) {
    *out = resp->attrs;
  }
  co_return OkStatus();
}

sim::Task<void> SwitchServer::HandleLinkRefUpdate(net::Packet p, VolPtr v) {
  const auto* msg = static_cast<const LinkRefUpdate*>(p.body.get());
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;
  auto resp = std::make_shared<LinkRefUpdateResp>();
  Attr attrs;
  Status s = co_await UpdateLinkCount(v, msg->file_id, config_.index,
                                      msg->delta, &attrs, msg->set_mode,
                                      msg->mode);
  if (v->dead) co_return;
  resp->status = s.ok() ? StatusCode::kOk : s.code();
  resp->nlink = attrs.nlink;
  resp->attrs = attrs;
  rpc_.Respond(p, resp);
}

sim::Task<void> SwitchServer::HandleLinkConvert(net::Packet p, VolPtr v) {
  const auto* msg = static_cast<const LinkConvert*>(p.body.get());
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;
  const std::string ikey = InodeKey(msg->pid, msg->name);
  auto resp = std::make_shared<LinkConvertResp>();
  auto lock = co_await v->inode_locks.AcquireExclusive(ikey);
  if (v->dead) co_return;
  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (!value.has_value()) {
    resp->status = StatusCode::kNotFound;
    rpc_.Respond(p, resp);
    co_return;
  }
  Attr attr = Attr::Decode(*value);
  if (attr.is_dir()) {
    resp->status = StatusCode::kIsADirectory;
    rpc_.Respond(p, resp);
    co_return;
  }
  if (attr.type == FileType::kReference) {
    // Already split: just bump the count at the attributes owner.
    lock.Release();
    Status s = co_await UpdateLinkCount(
        v, attr.id, static_cast<uint32_t>(attr.size), +1, nullptr);
    if (v->dead) co_return;
    resp->status = s.ok() ? StatusCode::kOk : s.code();
    resp->file_id = attr.id;
    resp->attr_server = static_cast<uint32_t>(attr.size);
    rpc_.Respond(p, resp);
    co_return;
  }
  // First link: split into reference + attributes object, both local (§5.5).
  Attr attrs = attr;
  attrs.nlink = 2;  // the original name plus the new link
  Attr ref;
  ref.id = attr.id;
  ref.type = FileType::kReference;
  ref.size = config_.index;  // attributes stay with the original owner
  {
    OpCommitRecord rec;
    rec.op = OpType::kLink;
    rec.inode_key = AttrKey(attr.id);
    rec.inode_value = attrs.Encode();
    co_await cpu_.Run(costs_->wal_append);
    if (v->dead) co_return;
    durable_->wal.Append(kWalOpCommit, rec.Encode());
  }
  {
    OpCommitRecord rec;
    rec.op = OpType::kLink;
    rec.inode_key = ikey;
    rec.inode_value = ref.Encode();
    co_await cpu_.Run(costs_->wal_append);
    if (v->dead) co_return;
    durable_->wal.Append(kWalOpCommit, rec.Encode());
  }
  co_await cpu_.Run(2 * costs_->kv_put);
  if (v->dead) co_return;
  v->kv.Put(AttrKey(attr.id), attrs.Encode());
  v->kv.Put(ikey, ref.Encode());
  resp->status = StatusCode::kOk;
  resp->file_id = attr.id;
  resp->attr_server = config_.index;
  rpc_.Respond(p, resp);
}

sim::Task<void> SwitchServer::HandleLink(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;
  const PathRef& dst = req->ref;
  const PathRef& src = req->ref2;
  const std::string ikey = InodeKey(dst.pid, dst.name);
  const psw::Fingerprint pfp = dst.parent_fp;

  auto cl_lock = co_await v->changelog_locks.AcquireExclusive(FpKey(pfp));
  if (v->dead) co_return;
  auto ino_lock = co_await v->inode_locks.AcquireExclusive(ikey);
  if (v->dead) co_return;
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + dst.ancestors.size()));
  if (v->dead) co_return;
  auto stale = v->inval.Check(dst.ancestors);
  if (!stale.empty()) {
    stats_.stale_cache_bounces++;
    RespondStale(p, std::move(stale));
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  if (v->kv.Contains(ikey)) {
    RespondStatus(p, StatusCode::kAlreadyExists);
    co_return;
  }

  // Split / bump at the source's owner (two-phase across servers).
  auto convert = std::make_shared<LinkConvert>();
  convert->pid = src.pid;
  convert->name = src.name;
  const psw::Fingerprint sfp = FingerprintOf(src.pid, src.name);
  auto r = co_await rpc_.Call(cluster_->ServerNode(OwnerOf(sfp)), convert);
  if (v->dead) co_return;
  if (!r.ok()) {
    RespondStatus(p, StatusCode::kUnavailable);
    co_return;
  }
  const auto* conv = net::MsgAs<LinkConvertResp>(*r);
  if (conv == nullptr || conv->status != StatusCode::kOk) {
    RespondStatus(p, conv == nullptr ? StatusCode::kInternal : conv->status);
    co_return;
  }

  Attr ref;
  ref.id = conv->file_id;
  ref.type = FileType::kReference;
  ref.size = conv->attr_server;

  ChangeLog& clog = GetChangeLog(v, pfp, dst.pid);
  ChangeLogEntry entry;
  entry.timestamp = Now();
  entry.op = OpType::kCreate;
  entry.name = dst.name;
  entry.entry_type = FileType::kFile;
  entry.size_delta = 1;
  entry.seq = clog.last_appended_seq() + 1;

  OpCommitRecord rec;
  rec.op = OpType::kLink;
  rec.inode_key = ikey;
  rec.inode_value = ref.Encode();
  rec.parent_dir = dst.pid;
  rec.parent_fp = pfp;
  rec.entry = entry;
  rec.has_entry = true;
  co_await cpu_.Run(costs_->wal_append);
  if (v->dead) co_return;
  entry.wal_lsn = durable_->wal.Append(kWalOpCommit, rec.Encode());
  co_await cpu_.Run(costs_->kv_put);
  if (v->dead) co_return;
  v->kv.Put(ikey, ref.Encode());
  co_await cpu_.Run(costs_->changelog_append);
  if (v->dead) co_return;
  clog.Restore(entry);

  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->attr = ref;
  co_await PublishUpdate(&p, v, pfp, dst.pid, resp);
  if (v->dead) co_return;
  MaybeSchedulePush(v, pfp, dst.pid);
}

// ---------------------------------------------------------------------------
// Crash & recovery (§5.4.2, §A.1)
// ---------------------------------------------------------------------------

void SwitchServer::Crash() {
  vol_->dead = true;
  vol_ = std::make_shared<Volatile>(sim_);
  vol_->dead = true;  // stays dead until Recover() finishes the replay
  serving_ = false;
  rpc_.SetEnabled(false);
  rpc_.ResetVolatileState();
}

void SwitchServer::ReplayWalInto(Volatile& v) {
  for (const kv::WalRecord& r : durable_->wal.records()) {
    stats_.wal_replayed++;
    switch (r.type) {
      case kWalOpCommit: {
        OpCommitRecord rec = OpCommitRecord::Decode(r.payload);
        if (!rec.inode_key.empty()) {
          if (rec.inode_delete) {
            v.kv.Delete(rec.inode_key);
          } else {
            v.kv.Put(rec.inode_key, rec.inode_value);
            if (rec.op == OpType::kMkdir ||
                (rec.op == OpType::kRename && !rec.inode_value.empty())) {
              Attr attr = Attr::Decode(rec.inode_value);
              if (attr.is_dir()) {
                // Rebuild the id -> inode-key index. The key embeds
                // (pid, name), from which the fingerprint re-derives.
                const std::string name = rec.inode_key.substr(33);
                InodeId pid;
                std::memcpy(pid.w.data(), rec.inode_key.data() + 1, 32);
                v.kv.Put(DirIndexKey(attr.id),
                         EncodeDirIndex(rec.inode_key,
                                        FingerprintOf(pid, name)));
              }
            }
            if (rec.op == OpType::kRmdir) {
              // Covered by inode_delete above.
            }
          }
          if (rec.inode_delete && rec.op == OpType::kRmdir) {
            // Also drop the dir index if we can find it by scanning is too
            // costly; the index row is keyed by id, which the entry lacks.
            // Stale index rows are harmless: the inode key they point to is
            // gone, so ApplyEntries drops obsolete entries.
          }
        }
        if (rec.has_entry && !r.applied) {
          ChangeLogEntry e = rec.entry;
          e.wal_lsn = r.lsn;
          auto& per_dir = v.changelogs[rec.parent_fp];
          auto it = per_dir.find(rec.parent_dir);
          if (it == per_dir.end()) {
            it = per_dir
                     .emplace(rec.parent_dir,
                              ChangeLog(rec.parent_dir, rec.parent_fp))
                     .first;
          }
          it->second.Restore(std::move(e));
        }
        break;
      }
      case kWalEntryApply: {
        EntryApplyRecord rec = EntryApplyRecord::Decode(r.payload);
        uint64_t& high = v.hwm[{rec.dir, rec.src_server}];
        if (rec.entry.seq <= high) {
          break;  // already applied (idempotent redo)
        }
        high = rec.entry.seq;
        std::string ikey;
        psw::Fingerprint fp = 0;
        auto idx = v.kv.Get(DirIndexKey(rec.dir));
        if (!idx.has_value()) {
          break;  // directory removed later in the log
        }
        DecodeDirIndex(*idx, &ikey, &fp);
        auto value = v.kv.Get(ikey);
        if (!value.has_value()) {
          break;
        }
        const std::string ekey = EntryKey(rec.dir, rec.entry.name);
        if (rec.entry.op == OpType::kCreate ||
            rec.entry.op == OpType::kMkdir) {
          v.kv.Put(ekey, EncodeEntryValue(rec.entry.entry_type));
        } else {
          v.kv.Delete(ekey);
        }
        Attr attr = Attr::Decode(*value);
        attr.size = rec.result_size;
        attr.mtime = std::max(attr.mtime, rec.result_mtime);
        v.kv.Put(ikey, attr.Encode());
        break;
      }
      default:
        break;
    }
  }
}

sim::Task<void> SwitchServer::Recover() {
  // Fresh volatile incarnation.
  auto v = std::make_shared<Volatile>(sim_);
  ReplayWalInto(*v);
  vol_ = v;
  rpc_.SetEnabled(true);

  // Charge the redo cost: dominated by per-record work (§7.7).
  const size_t records = durable_->wal.record_count();
  const size_t chunk = 256;
  for (size_t i = 0; i < records; i += chunk) {
    const size_t n = std::min(chunk, records - i);
    co_await cpu_.Run(static_cast<sim::SimTime>(n) *
                      costs_->wal_replay_per_record);
    if (v->dead) co_return;
  }

  SeedRoot();  // re-seed if we own the root

  // Flush rebuilt backlogs and re-aggregate owned directories so interrupted
  // aggregations complete (§A.1).
  co_await FlushAllChangeLogs();
  if (v->dead) co_return;
  co_await AggregateAllOwnedDirs();
  if (v->dead) co_return;

  // Clone the invalidation list from a healthy peer (§5.4.2).
  for (uint32_t s = 0; s < cluster_->ServerCount(); ++s) {
    if (s == config_.index) {
      continue;
    }
    auto r = co_await rpc_.Call(cluster_->ServerNode(s),
                                net::MakeMsg<InvalCloneReq>());
    if (v->dead) co_return;
    if (r.ok()) {
      if (const auto* resp = net::MsgAs<InvalCloneResp>(*r)) {
        v->inval.Merge(resp->entries);
        break;
      }
    }
  }
  serving_ = true;
}

sim::Task<void> SwitchServer::HandleInvalClone(net::Packet p, VolPtr v) {
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;
  auto resp = std::make_shared<InvalCloneResp>();
  resp->entries = v->inval.Snapshot();
  rpc_.Respond(p, resp);
}

sim::Task<void> SwitchServer::FlushAllChangeLogs() {
  VolPtr v = vol_;
  std::vector<std::pair<psw::Fingerprint, InodeId>> targets;
  for (const auto& [fp, dirs] : v->changelogs) {
    for (const auto& [dir, log] : dirs) {
      if (!log.empty()) {
        targets.emplace_back(fp, dir);
      }
    }
  }
  for (const auto& [fp, dir] : targets) {
    co_await PushBacklog(v, fp, dir);
    if (v->dead) co_return;
  }
}

sim::Task<void> SwitchServer::AggregateAllOwnedDirs() {
  VolPtr v = vol_;
  std::vector<psw::Fingerprint> fps;
  v->kv.ScanPrefix("d", [&](const std::string&, const std::string& value) {
    std::string ikey;
    psw::Fingerprint fp = 0;
    DecodeDirIndex(value, &ikey, &fp);
    fps.push_back(fp);
    return true;
  });
  std::sort(fps.begin(), fps.end());
  fps.erase(std::unique(fps.begin(), fps.end()), fps.end());
  for (psw::Fingerprint fp : fps) {
    if (!IsOwner(fp)) {
      continue;
    }
    co_await GateAndAggregate(v, fp);
    if (v->dead) co_return;
  }
}

SwitchServer::MigrationBatch SwitchServer::ExtractMisplaced(
    const HashRing& ring) {
  MigrationBatch batch;
  VolPtr v = vol_;
  std::vector<std::string> doomed;
  // Inodes ("i" keys) move when their (pid, name) hash moves; entry lists
  // and dir-index rows follow their directory's inode.
  v->kv.ScanPrefix("i", [&](const std::string& key, const std::string& value) {
    const std::string name = key.substr(33);
    InodeId pid;
    std::memcpy(pid.w.data(), key.data() + 1, 32);
    const psw::Fingerprint fp = FingerprintOf(pid, name);
    if (ring.Owner(fp) != config_.index) {
      batch.pairs.emplace_back(key, value);
      doomed.push_back(key);
      Attr attr = Attr::Decode(value);
      if (attr.is_dir()) {
        auto idx = v->kv.Get(DirIndexKey(attr.id));
        if (idx.has_value()) {
          batch.pairs.emplace_back(DirIndexKey(attr.id), *idx);
          doomed.push_back(DirIndexKey(attr.id));
        }
        v->kv.ScanPrefix(EntryPrefix(attr.id),
                         [&](const std::string& ek, const std::string& ev) {
                           batch.pairs.emplace_back(ek, ev);
                           doomed.push_back(ek);
                           return true;
                         });
      }
    }
    return true;
  });
  for (const std::string& key : doomed) {
    v->kv.Delete(key);
  }
  return batch;
}

void SwitchServer::InstallBatch(const MigrationBatch& batch) {
  for (const auto& [key, value] : batch.pairs) {
    vol_->kv.Put(key, value);
  }
}

}  // namespace switchfs::core
