#include "src/core/server.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/core/cache_evict.h"
#include "src/core/cache_record.h"
#include "src/core/schema.h"
#include "src/core/wal_records.h"
#include "src/sim/discipline.h"
#include "src/sim/task.h"
#include "src/tracker/dirty_tracker.h"

namespace switchfs::core {

SwitchServer::SwitchServer(sim::Simulator* sim, net::Network* net,
                           ClusterContext* cluster, DurableState* durable,
                           const sim::CostModel* costs,
                           tracker::DirtyTracker* dirty_tracker,
                           ServerConfig config)
    : sim_(sim),
      net_(net),
      cluster_(cluster),
      durable_(durable),
      costs_(costs),
      config_(config),
      cpu_(sim, config.cores),
      rpc_(sim, net),
      vol_(std::make_shared<ServerVolatile>(sim, config.shard_count)),
      ctx_{sim_,    net_,  cluster_, durable_, costs_,
           &config_, &cpu_, &rpc_,    &stats_,  dirty_tracker},
      agg_(ctx_),
      push_(ctx_, agg_),
      links_(ctx_, push_, *this),
      rename_(ctx_, agg_, push_, *this) {
  agg_.SetRebinder(&push_);  // moved_fp rebind for the aggregation path
  rpc_.SetCpu(&cpu_);
  rpc_.SetRequestHandler([this](net::Packet p) { OnRequest(std::move(p)); });
  rpc_.SetRawHandler([this](net::Packet p) { OnRaw(std::move(p)); });
  // Run-while-work-pending: the shard run queues hold work the event queue
  // cannot see. The lambdas read vol_ at call time, so one registration
  // covers every incarnation across crashes.
  work_source_id_ = sim_->RegisterWorkSource(sim::Simulator::WorkSource{
      [this]() { return PendingShardTasks(*vol_); },
      [this]() { KickShardDrains(vol_); }});
}

SwitchServer::~SwitchServer() { sim_->UnregisterWorkSource(work_source_id_); }

int64_t SwitchServer::Now() const { return sim_->Now(); }

InodeId SwitchServer::NewInodeId() {
  InodeId id;
  id.w[0] = (static_cast<uint64_t>(config_.index) << 48) | durable_->id_counter;
  id.w[1] = Mix64(durable_->id_counter ^ (config_.index * 0x9e37ULL));
  id.w[2] = static_cast<uint64_t>(Now());
  id.w[3] = 2;  // != RootId
  durable_->id_counter++;
  return id;
}

void SwitchServer::SeedRoot() {
  const psw::Fingerprint root_fp = FingerprintOf(InodeId{}, "/");
  if (!IsOwner(root_fp)) {
    return;
  }
  Attr root;
  root.id = RootId();
  root.type = FileType::kDirectory;
  root.mode = 0755;
  const std::string key = InodeKey(InodeId{}, "/");
  vol_->kv.Put(key, root.Encode());
  vol_->kv.Put(DirIndexKey(root.id), EncodeDirIndex(key, root_fp));
}

void SwitchServer::PreloadInode(const std::string& key, const Attr& attr) {
  vol_->kv.Put(key, attr.Encode());
}

void SwitchServer::PreloadEntry(const InodeId& dir, const std::string& name,
                                FileType t) {
  vol_->kv.Put(EntryKey(dir, name), EncodeEntryValue(t));
}

void SwitchServer::PreloadDirIndex(const InodeId& id,
                                   const std::string& inode_key,
                                   psw::Fingerprint fp) {
  vol_->kv.Put(DirIndexKey(id), EncodeDirIndex(inode_key, fp));
}

size_t SwitchServer::PendingChangeLogEntries() const {
  size_t total = 0;
  for (size_t i = 0; i < vol_->num_shards(); ++i) {
    for (const auto& [fp, dirs] : vol_->ShardAt(i).changelogs) {
      for (const auto& [dir, log] : dirs) {
        total += log.size();
      }
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void SwitchServer::OnRequest(net::Packet p) {
  if (p.body == nullptr) {
    return;
  }
  VolPtr v = vol_;
  switch (p.body->type) {
    case MetaReq::kType: {
      if (!serving_) {
        RespondStatus(p, StatusCode::kUnavailable);
        return;
      }
      const auto* req = static_cast<const MetaReq*>(p.body.get());
      switch (req->op) {
        case OpType::kCreate:
        case OpType::kMkdir:
        case OpType::kUnlink:
          sim::Spawn(HandleUpsert(std::move(p), std::move(v)));
          break;
        case OpType::kRmdir:
          sim::Spawn(HandleRmdir(std::move(p), std::move(v)));
          break;
        case OpType::kStatDir:
        case OpType::kReaddir:
          sim::Spawn(HandleDirRead(std::move(p), std::move(v)));
          break;
        case OpType::kOpenDir:
          sim::Spawn(HandleOpenDir(std::move(p), std::move(v)));
          break;
        case OpType::kReaddirPage:
          sim::Spawn(HandleReaddirPage(std::move(p), std::move(v)));
          break;
        case OpType::kCloseDir:
          sim::Spawn(HandleCloseDir(std::move(p), std::move(v)));
          break;
        case OpType::kBatchStat:
          sim::Spawn(HandleBatchStat(std::move(p), std::move(v)));
          break;
        case OpType::kBatchStatDir:
          sim::Spawn(HandleBatchStatDir(std::move(p), std::move(v)));
          break;
        case OpType::kSetAttr:
          sim::Spawn(HandleSetAttr(std::move(p), std::move(v)));
          break;
        case OpType::kBulkInsert:
          sim::Spawn(HandleBulkInsert(std::move(p), std::move(v)));
          break;
        case OpType::kStat:
        case OpType::kOpen:
        case OpType::kClose:
        case OpType::kChmod:
          sim::Spawn(HandleFileOp(std::move(p), std::move(v)));
          break;
        case OpType::kRename:
          sim::Spawn(rename_.HandleRename(std::move(p), std::move(v)));
          break;
        case OpType::kLink:
          sim::Spawn(links_.HandleLink(std::move(p), std::move(v)));
          break;
        default:
          RespondStatus(p, StatusCode::kInvalidArgument);
          break;
      }
      break;
    }
    case LookupReq::kType:
      if (!serving_) {
        RespondStatus(p, StatusCode::kUnavailable);
        return;
      }
      sim::Spawn(HandleLookup(std::move(p), std::move(v)));
      break;
    case AggEntries::kType:
      agg_.HandleAggEntries(std::move(p), std::move(v));
      break;
    case PushReq::kType:
      sim::Spawn(push_.HandlePush(std::move(p), std::move(v)));
      break;
    case MarkScattered::kType: {
      const auto* msg = static_cast<const MarkScattered*>(p.body.get());
      v->ShardFor(msg->fp).owner_scattered.insert(msg->fp);
      rpc_.Respond(p, net::MakeMsg<Ack>());
      break;
    }
    case ScatteredSnapshotReq::kType: {
      // Tracker-group failover: report every fingerprint group that still
      // holds pending change-log entries (answered even while !serving_ —
      // the rebuilt tracker must not wait out our recovery).
      auto resp = std::make_shared<ScatteredSnapshotResp>();
      for (size_t i = 0; i < v->num_shards(); ++i) {
        for (const auto& [fp, dirs] : v->ShardAt(i).changelogs) {
          for (const auto& [dir, log] : dirs) {
            if (!log.empty()) {
              resp->fps.push_back(fp);
              break;
            }
          }
        }
      }
      rpc_.Respond(p, resp);
      break;
    }
    case AggregateReq::kType:
      sim::Spawn(rename_.HandleAggregateReq(std::move(p), std::move(v)));
      break;
    case RenamePrepare::kType: {
      // Cross-shard handoff (sanctioned flow #1, rename legs): the prepare
      // locks the leg's inode key, which lives on the (pid, name)
      // fingerprint's shard — route the whole leg there as a handoff task.
      const auto* msg = static_cast<const RenamePrepare*>(p.body.get());
      const size_t shard = ShardIndexForFp(
          FingerprintOf(msg->pid, msg->name), v->num_shards());
      stats_.cross_shard_handoffs++;
      EnqueueShardTask(v, shard, ShardLane::kHandoff, [this, p, v]() {
        return rename_.HandleRenamePrepare(p, v);
      });
      break;
    }
    case RenameCommit::kType: {
      // Commit leg routes by the leg's (parent, name) key — the shard whose
      // inode lock the prepare leg parked in txn_locks.
      const auto* msg = static_cast<const RenameCommit*>(p.body.get());
      const size_t shard = ShardIndexForFp(
          FingerprintOf(msg->parent_dir, msg->parent_entry_name),
          v->num_shards());
      stats_.cross_shard_handoffs++;
      EnqueueShardTask(v, shard, ShardLane::kHandoff, [this, p, v]() {
        return rename_.HandleRenameCommit(p, v);
      });
      break;
    }
    case InvalCloneReq::kType:
      sim::Spawn(HandleInvalClone(std::move(p), std::move(v)));
      break;
    case LinkConvert::kType: {
      // Cross-shard handoff (sanctioned flow #2, hard-link splits): the
      // convert rewrites the source name's inode row under its shard's lock.
      const auto* msg = static_cast<const LinkConvert*>(p.body.get());
      const size_t shard = ShardIndexForFp(
          FingerprintOf(msg->pid, msg->name), v->num_shards());
      stats_.cross_shard_handoffs++;
      EnqueueShardTask(v, shard, ShardLane::kHandoff, [this, p, v]() {
        return links_.HandleLinkConvert(p, v);
      });
      break;
    }
    case LinkRefUpdate::kType:
      sim::Spawn(links_.HandleLinkRefUpdate(std::move(p), std::move(v)));
      break;
    default:
      break;
  }
}

void SwitchServer::OnRaw(net::Packet p) {
  VolPtr v = vol_;
  if (p.has_ds_op() && p.ds.op == net::DsOp::kInsert) {
    if (p.ds.ret) {
      HandleInsertAck(p, v);  // mirror copy: release signal (7b)
    } else {
      // Address-rewriter redirect: we own the parent; apply synchronously.
      sim::Spawn(HandleInsertFallback(std::move(p), std::move(v)));
    }
    return;
  }
  if (p.has_mc_op() && p.mc.op == net::McOp::kEvict) {
    // Ack of our own pre-commit cache evict: the self-addressed packet made
    // it through the switch (which executed the evict in flight) back to us.
    // Multicast invalidations also carry an evict stamp — their token never
    // matches a wait (it is 0), so their bodies are handled below.
    auto it = v->cache_evict_waits.find(p.mc.token);
    if (it != v->cache_evict_waits.end()) {
      it->second->acked = true;
      if (it->second->slot != nullptr) {
        it->second->slot->Set(1);
      }
      return;
    }
  }
  if (p.body == nullptr) {
    return;
  }
  switch (p.body->type) {
    case AggCollect::kType:
      sim::Spawn(agg_.HandleAggCollect(std::move(p), std::move(v)));
      break;
    case AggDone::kType:
      agg_.HandleAggDone(*static_cast<const AggDone*>(p.body.get()), v);
      break;
    case FallbackDone::kType:
      HandleFallbackDone(*static_cast<const FallbackDone*>(p.body.get()), v);
      break;
    case InvalBroadcast::kType: {
      const auto* msg = static_cast<const InvalBroadcast*>(p.body.get());
      v->inval.Add(msg->id, Now());
      if (msg->moved && config_.moved_rebind) {
        // Rename rebind hint: re-key our old-era change-log for the moved
        // directory now, before any client can have re-resolved the new
        // path (keeps old-era entries ordered ahead of same-name new-era
        // ones; see InvalBroadcast in messages.h).
        sim::Spawn(push_.EagerRebindMoved(v, msg->id, msg->old_fp,
                                          msg->new_fp));
      }
      break;
    }
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Double-inode operations: create / mkdir / delete (§5.2.1)
// ---------------------------------------------------------------------------

sim::Task<void> SwitchServer::HandleUpsert(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  const PathRef& ref = req->ref;
  const std::string ikey = InodeKey(ref.pid, ref.name);
  const psw::Fingerprint pfp = ref.parent_fp;

  // Step 2: locking — parent change-log (write) + target inode (write).
  // Both route to the target's shard: the inode key's fingerprint is
  // exactly pfp's group only for the parent's own row; here the target key
  // hashes to its own group, which the ring maps to this server and the
  // shard router maps to one shard — same fp, same shard for both tables.
  auto cl_lock =
      co_await v->ShardFor(pfp).changelog_locks.AcquireExclusive(FpKey(pfp));
  if (v->dead) co_return;
  auto ino_lock =
      co_await v->ShardForKey(ikey).inode_locks.AcquireExclusive(ikey);
  if (v->dead) co_return;

  // Step 3: validation — invalidation list, then existence.
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  if (v->dead) co_return;
  auto stale = v->inval.Check(ref.ancestors);
  if (!stale.empty()) {
    stats_.stale_cache_bounces++;
    RespondStale(p, std::move(stale));
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  auto existing = v->kv.Get(ikey);

  Attr attr;
  ChangeLogEntry entry;
  entry.timestamp = Now();
  entry.name = ref.name;
  switch (req->op) {
    case OpType::kCreate:
    case OpType::kMkdir: {
      if (existing.has_value()) {
        RespondStatus(p, StatusCode::kAlreadyExists);
        co_return;
      }
      attr.id = NewInodeId();
      attr.type = req->op == OpType::kMkdir ? FileType::kDirectory
                                            : FileType::kFile;
      attr.mode = req->mode;
      attr.ctime = attr.mtime = attr.atime = Now();
      entry.op = req->op;
      entry.entry_type = attr.type;
      entry.size_delta = 1;
      break;
    }
    case OpType::kUnlink: {
      if (!existing.has_value()) {
        RespondStatus(p, StatusCode::kNotFound);
        co_return;
      }
      attr = Attr::Decode(*existing);
      if (attr.is_dir()) {
        RespondStatus(p, StatusCode::kIsADirectory);
        co_return;
      }
      if (attr.type == FileType::kReference) {
        // Hard link: drop one reference; the attributes object dies when the
        // count reaches zero (§5.5).
        Status ls = co_await links_.UpdateLinkCount(
            v, attr.id, static_cast<uint32_t>(attr.size), -1, nullptr);
        if (v->dead) co_return;
        if (!ls.ok()) {
          // A failed decrement leaves the refcount untouched; surfacing the
          // error beats unlinking the entry and stranding the attributes
          // object with a count it can never shed.
          RespondStatus(p, ls.code());
          co_return;
        }
      }
      entry.op = OpType::kUnlink;
      entry.entry_type = FileType::kFile;
      entry.size_delta = -1;
      break;
    }
    default:
      RespondStatus(p, StatusCode::kInvalidArgument);
      co_return;
  }

  // In-switch cache: drop any cached attr of the target before the commit
  // becomes visible (read-your-writes; no-op for creates — negative results
  // are never installed). Runs under the exclusive inode lock, so no read
  // can install a pre-write record after this returns (see cache_evict.h).
  co_await EvictSwitchCacheEntry(ctx_, v, FingerprintOf(ref.pid, ref.name));
  if (v->dead) co_return;

  // Step 4: persistent commit (WAL). The per-log append mutex pins the
  // captured seq across the WAL/KV suspensions: rename and link commit legs
  // append to this log WITHOUT the fp-group lock (taking it would invert
  // the cl-then-inode order), so the group lock alone does not serialize
  // sequence assignment.
  {
    auto append_lock =
        co_await v->ShardFor(pfp).changelog_append_locks.AcquireExclusive(
            ClAppendKey(pfp, ref.pid));
    if (v->dead) co_return;
    // sfs-lint: allow(borrow-across-suspend, log slot pinned by the held append mutex — a rebind erase needs this key's append lock, and changelog map nodes are reference-stable)
    ChangeLog& clog = v->GetChangeLog(pfp, ref.pid);
    entry.seq = clog.last_appended_seq() + 1;
    OpCommitRecord rec;
    rec.op = req->op;
    rec.inode_key = ikey;
    rec.inode_delete = req->op == OpType::kUnlink;
    if (!rec.inode_delete) {
      rec.inode_value = attr.Encode();
    }
    rec.parent_dir = ref.pid;
    rec.parent_fp = pfp;
    rec.entry = entry;
    rec.has_entry = true;
    co_await cpu_.Run(costs_->wal_append);
    if (v->dead) co_return;
    const uint64_t lsn = durable_->wal.Append(kWalOpCommit, rec.Encode());

    // Step 5: execute locally.
    co_await cpu_.Run(rec.inode_delete ? costs_->kv_delete : costs_->kv_put);
    if (v->dead) co_return;
    if (rec.inode_delete) {
      v->kv.Delete(ikey);
    } else {
      v->kv.Put(ikey, rec.inode_value);
      if (req->op == OpType::kMkdir) {
        // New directory: its fingerprint group is this very key's hash, so
        // we are its owner; index id -> inode key for aggregation applies.
        v->kv.Put(DirIndexKey(attr.id),
                  EncodeDirIndex(ikey, FingerprintOf(ref.pid, ref.name)));
      }
    }
    co_await cpu_.Run(costs_->changelog_append);
    if (v->dead) co_return;
    entry.wal_lsn = lsn;
    clog.Restore(entry);
  }

  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->attr = attr;

  if (!config_.async_updates) {
    // Conventional synchronous update (Baseline of §7.3.1).
    Status s = co_await SyncParentUpdate(v, pfp, ref.pid);
    if (v->dead) co_return;
    if (!s.ok()) {
      // Owner unreachable: the entry stays pending; it will be flushed by a
      // later push. The op itself is committed, so report success.
    }
    rpc_.Respond(p, resp);
    co_return;
  }

  // Step 6/7: mark scattered, reply via the ack path, release locks (RAII).
  co_await PublishUpdate(&p, v, pfp, ref.pid, resp);
  if (v->dead) co_return;
  push_.MaybeSchedulePush(v, pfp, ref.pid);
}

sim::Task<void> SwitchServer::PublishUpdate(const net::Packet* client_req,
                                            VolPtr v, psw::Fingerprint fp,
                                            const InodeId& dir,
                                            net::MsgPtr client_resp) {
  const tracker::InsertResult res = co_await ctx_.dirty_tracker->Insert(
      ctx_, v, fp, dir, client_req, client_resp);
  if (v->dead) co_return;
  if (res == tracker::InsertResult::kOverflow) {
    // Tracker full or unreachable: apply the parent update synchronously at
    // its owner so the deferred entry is visible without the dirty set.
    stats_.fallbacks++;
    // Best-effort: on failure the entries simply stay pending for a later
    // push — the op itself is already committed.
    (void)co_await SyncParentUpdate(v, fp, dir);
    if (v->dead) co_return;
  }
  if (res != tracker::InsertResult::kDelivered && client_req != nullptr) {
    rpc_.Respond(*client_req, client_resp);
  }
}

// Trims the (fp, dir) change-log up to acked_seq, re-finding the log after
// the caller's suspension points: a concurrent moved_fp rebind may have
// re-keyed (and erased) the slot, so a ChangeLog reference taken before a
// co_await must not be reused for the trim.
void SwitchServer::AckChangeLogUpTo(VolPtr v, psw::Fingerprint fp,
                                    const InodeId& dir, uint64_t acked_seq) {
  auto& shard_logs = v->ShardFor(fp).changelogs;
  auto logs = shard_logs.find(fp);
  if (logs == shard_logs.end()) {
    return;
  }
  auto lit = logs->second.find(dir);
  if (lit == logs->second.end()) {
    return;
  }
  for (uint64_t lsn : lit->second.AckUpTo(acked_seq)) {
    durable_->wal.MarkApplied(lsn);
  }
}

sim::Task<Status> SwitchServer::SyncParentUpdate(VolPtr v, psw::Fingerprint fp,
                                                 const InodeId& dir) {
  uint64_t max_seq = 0;
  std::vector<ChangeLogEntry> entries;
  {
    ChangeLog& clog = v->GetChangeLog(fp, dir);
    max_seq = clog.last_appended_seq();
    entries.assign(clog.pending().begin(), clog.pending().end());
  }
  if (IsOwner(fp)) {
    // Synchronous local apply mutates the directory's attr without a
    // dirty-set insert, so the switch never saw a kInsert evict for this
    // fingerprint — drop any cached attr first (no-op unless installed),
    // under the directory's exclusive inode lock spanning evict -> apply
    // commit (handed to ApplyEntries via held_inode_key): an unlocked evict
    // leaves a window for a lookup to re-install the pre-apply record with a
    // post-evict version. Directory unknown here: nothing to evict (its
    // removal evicted under its own lock) and ApplyEntries drops the
    // entries; skip straight to classification.
    std::string dkey;
    psw::Fingerprint dfp = 0;
    LockTable::Handle ino_lock;
    if (v->LookupDirIndex(dir, &dkey, &dfp)) {
      // Sanctioned cross-shard pair: the awaiting op chain (sync-mode
      // create/unlink, tracker-overflow fallback) still holds ITS target's
      // inode lock on that key's shard, and the parent directory's group
      // can live on another shard. The pair is deadlock-free — op chains
      // always lock child-then-parent, and parent keys are distinct from
      // child keys — so witness it instead of handing off the apply.
      sim::CrossShardScope sync_xs(
          co_await sim::discipline::CurrentChainId{});
      ino_lock =
          co_await v->ShardForKey(dkey).inode_locks.AcquireExclusive(dkey);
      if (v->dead) co_return UnavailableError();
      co_await EvictSwitchCacheEntry(ctx_, v, fp);
      if (v->dead) co_return UnavailableError();
    }
    // dkey is empty exactly when the lookup failed and no lock is held (and
    // a conditional-operator temporary inside a co_await expression would
    // trip the GCC 12 frame-slot miscompile noted in HandleChmod).
    co_await agg_.ApplyEntries(v, dir, config_.index, fp, std::move(entries),
                               dkey);
    if (v->dead) co_return UnavailableError();
    ino_lock.Release();
    // Classify AFTER the apply: ApplyEntries drops entries silently when
    // the directory is unknown here, and a rename can commit while the
    // apply waits on the inode lock — a pre-apply check would let the
    // blanket trim below swallow entries the rename raced. (Index AND
    // inode checked: replay can leave a stale dir-index row behind, see
    // ReplayWalInto — matching PushEngine::ApplySection.)
    std::string ikey;
    psw::Fingerprint ifp = 0;
    if (config_.moved_rebind && (!v->LookupDirIndex(dir, &ikey, &ifp) ||
                                 !v->kv.Get(ikey).has_value())) {
      const ServerVolatile::MovedDir* tomb =
          v->FindMovedTombstone(dir, Now(), config_.moved_tombstone_ttl);
      if (tomb != nullptr) {
        // Renamed away from this fingerprint: re-key the backlog toward the
        // new owner instead of trimming it. Detached — the caller holds
        // this group's change-log lock, so an inline rebind would
        // self-deadlock. The op itself is committed; visibility follows
        // the rebound push.
        sim::Spawn(push_.RebindMovedLogDetached(
            v, dir, fp, tomb->new_fp, tomb->AppliedFor(config_.index, fp),
            /*from_aggregation=*/false));
        co_return OkStatus();
      }
    }
    AckChangeLogUpTo(v, fp, dir, max_seq);
    co_return OkStatus();
  }
  // Synchronous fallback: the whole backlog rides one request (no MTU
  // split — the op blocks on the apply, so splitting would only add round
  // trips; see the exception note in messages.h).
  auto push = std::make_shared<PushReq>();
  push->src_server = config_.index;
  PushReq::PerDir pd;
  pd.dir = dir;
  pd.fp = fp;
  pd.entries = std::move(entries);
  // Idempotency token, as on the batched path: if the RPC layer retransmits
  // after a lost ack, the owner re-acks the committed section instead of
  // re-applying it.
  pd.batch_token = v->push_token_counter++;
  push->dirs.push_back(std::move(pd));
  auto r = co_await rpc_.Call(cluster_->ServerNode(OwnerOf(fp)), push);
  if (v->dead) co_return UnavailableError();
  if (!r.ok()) {
    co_return r.status();
  }
  const auto* resp = net::MsgAs<PushResp>(*r);
  if (resp == nullptr) {
    co_return InternalError("bad push response");
  }
  uint64_t acked_seq = 0;
  for (const auto& row : resp->acked) {
    if (row.dir == dir) {
      if (row.status == PushResp::SectionStatus::kMoved) {
        // Renamed away at the owner: trim only the pre-rename applied prefix
        // and re-key the rest (detached — see the local branch). The op is
        // committed either way.
        sim::Spawn(push_.RebindMovedLogDetached(v, dir, fp, row.new_fp,
                                                row.acked_seq,
                                                /*from_aggregation=*/false));
        co_return OkStatus();
      }
      acked_seq = row.acked_seq;
      break;
    }
  }
  AckChangeLogUpTo(v, fp, dir, acked_seq);
  co_return OkStatus();
}

// ---------------------------------------------------------------------------
// Insert acks & overflow fallback
// ---------------------------------------------------------------------------

void SwitchServer::HandleInsertAck(const net::Packet& p, VolPtr v) {
  const auto* env = net::MsgAs<InsertEnvelope>(p.body);
  if (env == nullptr) {
    return;
  }
  auto it = v->op_waits.find(env->op_token);
  if (it == v->op_waits.end()) {
    return;  // duplicate/late ack
  }
  it->second->acked = true;
  if (it->second->slot != nullptr) {
    it->second->slot->Set(1);
  }
}

sim::Task<void> SwitchServer::HandleInsertFallback(net::Packet p, VolPtr v) {
  auto body = p.body;
  const auto* env = net::MsgAs<InsertEnvelope>(body);
  if (env == nullptr) {
    co_return;
  }
  stats_.fallbacks++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;
  uint64_t acked_seq = env->backlog.empty() ? 0 : env->backlog.back().seq;
  co_await agg_.ApplyEntries(v, env->dir, env->src_server, env->fp,
                             env->backlog, "");
  if (v->dead) co_return;
  {
    // A backlog for a renamed-away directory must not be acked at max seq
    // (ApplyEntries drops it silently): ack only the pre-rename applied
    // prefix, so the source keeps the rest pending and the regular push
    // path re-keys it via the kMoved verdict. Classified AFTER the apply —
    // a rename can commit while the apply waits on the inode lock — and
    // with the inode row checked as well as the index (replay can leave a
    // stale dir-index row; see ReplayWalInto / PushEngine::ApplySection).
    std::string ikey;
    psw::Fingerprint ifp = 0;
    if (config_.moved_rebind && (!v->LookupDirIndex(env->dir, &ikey, &ifp) ||
                                 !v->kv.Get(ikey).has_value())) {
      const ServerVolatile::MovedDir* tomb = v->FindMovedTombstone(
          env->dir, Now(), config_.moved_tombstone_ttl);
      if (tomb != nullptr) {
        acked_seq = tomb->AppliedFor(env->src_server, env->fp);
      }
    }
  }

  // Complete the client's operation (the response packet was redirected to
  // us; forward the envelope on to its rightful recipient).
  if (env->client_resp != nullptr && p.rpc.caller != net::kInvalidNode) {
    net::Packet out;
    out.dst = p.rpc.caller;
    out.rpc = p.rpc;
    out.body = body;
    rpc_.Send(std::move(out));
  }
  // Tell the origin to release its locks and mark the backlog applied.
  auto done = std::make_shared<FallbackDone>();
  done->dir = env->dir;
  done->fp = env->fp;
  done->op_token = env->op_token;
  done->acked_seq = acked_seq;
  rpc_.Notify(cluster_->ServerNode(env->src_server), done);
}

void SwitchServer::HandleFallbackDone(const FallbackDone& msg, VolPtr v) {
  auto it = v->op_waits.find(msg.op_token);
  if (it == v->op_waits.end()) {
    return;
  }
  auto wait = it->second;
  // Trim ONLY the fingerprint the backlog was sent under: acked_seq is in
  // that log's numbering, and a moved_fp rebind racing this notification
  // may have re-keyed the directory's log under another fingerprint with
  // fresh seqs — a dir-wide trim would swallow never-applied entries there.
  // (The rebound copy of the applied prefix is trimmed by the kMoved
  // verdict's applied marks instead.)
  AckChangeLogUpTo(v, msg.fp, msg.dir, msg.acked_seq);
  wait->fallback_done = true;
  if (wait->slot != nullptr) {
    wait->slot->Set(2);
  }
}

// ---------------------------------------------------------------------------
// In-switch read cache: install piggyback (owner side)
// ---------------------------------------------------------------------------

// Replies to a read, piggybacking a cache install when the request traversed
// the switch with an mc.kRead stamp (lookup / stat / statdir fast path). The
// install echoes the set version the switch stamped on the request's miss:
// if any write evicted the entry in between, the version moved and the
// switch rejects the install — the read's data predates that write. Negative
// results and hard-link references never reach here (references alias a
// shared attributes object whose writers would not evict this fingerprint).
void SwitchServer::RespondWithInstall(const net::Packet& p, net::MsgPtr resp,
                                      VolPtr v, const Attr& attr,
                                      int64_t read_at) {
  if (!config_.switch_cache || p.mc.op != net::McOp::kRead ||
      attr.type == FileType::kReference) {
    rpc_.Respond(p, std::move(resp));
    return;
  }
  net::Packet rp = rpc_.MakeResponsePacket(p, resp);
  rp.mc.op = net::McOp::kInstall;
  rp.mc.fingerprint = p.mc.fingerprint;
  rp.mc.version = p.mc.version;  // the switch's stamp from the read's miss
  rp.mc.record = PackCacheRecord(attr, read_at);
  v->cached_fps.insert(p.mc.fingerprint);
  stats_.cache_installs++;
  // Cache for retransmit replay (replays carry no install — a fresh response
  // packet omits the mc header, which is the safe default).
  rpc_.RecordResponse(p, resp);
  rpc_.Send(std::move(rp));
}

// ---------------------------------------------------------------------------
// Directory reads: statdir / readdir (§5.2.2)
// ---------------------------------------------------------------------------

sim::Task<LockTable::Handle> SwitchServer::GateDirRead(
    VolPtr v, const net::Packet& p, const MetaReq& req,
    psw::Fingerprint dir_fp, bool force_scattered) {
  bool scattered =
      force_scattered ||
      ctx_.dirty_tracker->ReadScattered(ctx_, *v, p, req, dir_fp);
  const int64_t observed_at = Now();

  LockTable::Handle gate;
  while (true) {
    gate = co_await v->ShardFor(dir_fp).agg_gates.AcquireShared(FpKey(dir_fp));
    if (v->dead) co_return LockTable::Handle();
    if (!scattered) {
      break;
    }
    {
      auto& complete = v->ShardFor(dir_fp).last_agg_complete;
      auto last = complete.find(dir_fp);
      if (last != complete.end() && last->second > observed_at) {
        break;  // someone aggregated after our dirty-set observation
      }
    }
    gate.Release();
    auto xgate =
        co_await v->ShardFor(dir_fp).agg_gates.AcquireExclusive(FpKey(dir_fp));
    if (v->dead) co_return LockTable::Handle();
    bool need_agg = false;
    {
      auto& complete = v->ShardFor(dir_fp).last_agg_complete;
      auto last = complete.find(dir_fp);
      need_agg = last == complete.end() || last->second <= observed_at;
    }
    if (need_agg) {
      co_await agg_.RunAggregation(v, dir_fp, std::nullopt, 0, "", false);
      if (v->dead) co_return LockTable::Handle();
    }
    xgate.Release();
    scattered = false;
  }
  co_return gate;
}

sim::Task<void> SwitchServer::HandleDirRead(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  const PathRef& ref = req->ref;
  const psw::Fingerprint dir_fp = FingerprintOf(ref.pid, ref.name);
  const std::string ikey = InodeKey(ref.pid, ref.name);

  LockTable::Handle gate = co_await GateDirRead(v, p, *req, dir_fp);
  if (v->dead) co_return;

  auto ino = co_await v->ShardForKey(ikey).inode_locks.AcquireShared(ikey);
  if (v->dead) co_return;
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  if (v->dead) co_return;
  auto stale = v->inval.Check(ref.ancestors);
  if (!stale.empty()) {
    stats_.stale_cache_bounces++;
    RespondStale(p, std::move(stale));
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (!value.has_value()) {
    RespondStatus(p, StatusCode::kNotFound);
    co_return;
  }
  Attr attr = Attr::Decode(*value);
  if (!attr.is_dir()) {
    RespondStatus(p, StatusCode::kNotADirectory);
    co_return;
  }
  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->attr = attr;
  if (req->op == OpType::kStatDir) {
    // statdir fast path: piggyback a cache install (the aggregation gate
    // above landed every pre-read deferred entry, so the attr is as fresh as
    // any uncached read's; later deferred updates evict via their kInsert
    // switch traversal).
    co_await cpu_.Run(costs_->reply_build);
    if (v->dead) co_return;
    RespondWithInstall(p, resp, v, attr, Now());
    co_return;
  }
  if (req->op == OpType::kReaddir && req->want_entries) {
    // Monolithic listing (A/B + recovery tooling): one scan AND the full
    // marshalling land on this single request — the paged path instead
    // charges the scan once at OpenDir and marshalling per page.
    size_t n = 0;
    v->kv.ScanPrefix(EntryPrefix(attr.id),
                     [&](const std::string& k, const std::string& val) {
                       resp->entries.push_back(DirEntry{
                           std::string(EntryNameFromKey(k)),
                           DecodeEntryValue(val)});
                       ++n;
                       return true;
                     });
    co_await cpu_.Run(static_cast<sim::SimTime>(n) *
                      (costs_->kv_scan_per_entry + costs_->readdir_per_entry));
    if (v->dead) co_return;
  }
  co_await cpu_.Run(costs_->reply_build);
  if (v->dead) co_return;
  rpc_.Respond(p, resp);
}

// ---------------------------------------------------------------------------
// Directory streams (MetadataService v2): OpenDir / ReaddirPage / CloseDir
// ---------------------------------------------------------------------------

sim::Task<void> SwitchServer::HandleOpenDir(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  const PathRef& ref = req->ref;
  const psw::Fingerprint dir_fp = FingerprintOf(ref.pid, ref.name);
  const std::string ikey = InodeKey(ref.pid, ref.name);

  // Aggregate ONCE at open (§5.2.2 under the agg gate): every entry
  // committed before the open is in the list the snapshot below pins, so
  // the page stream can never drop a pre-open entry. Pages themselves skip
  // the gate — they serve the pinned snapshot.
  LockTable::Handle gate = co_await GateDirRead(v, p, *req, dir_fp);
  if (v->dead) co_return;

  auto ino = co_await v->ShardForKey(ikey).inode_locks.AcquireShared(ikey);
  if (v->dead) co_return;
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  if (v->dead) co_return;
  auto stale = v->inval.Check(ref.ancestors);
  if (!stale.empty()) {
    stats_.stale_cache_bounces++;
    RespondStale(p, std::move(stale));
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (!value.has_value()) {
    RespondStatus(p, StatusCode::kNotFound);
    co_return;
  }
  Attr attr = Attr::Decode(*value);
  if (!attr.is_dir()) {
    RespondStatus(p, StatusCode::kNotADirectory);
    co_return;
  }

  // Open-time cost is the A/B lever (`snapshot_sessions`): a snapshot
  // session copies the entry list here — the stream's one O(directory)
  // scan, charged at open — and is immune to concurrent creates/unlinks/
  // renames, including a rename or rmdir of the directory itself (the
  // session outlives the directory's presence and keeps serving the pinned
  // listing). The default cursor session stores only a scan position, so
  // OpenDir is O(1) and each page charges its own bounded seek+scan
  // (HandleReaddirPage); pre-open entries are still never lost — the
  // aggregation above lands them in the live keyspace the cursor walks.
  // Sessions are minted by (and live on) the directory fingerprint's shard;
  // the session id embeds the shard index so page/close/watchdog route back
  // without knowing the fingerprint. The LRU cap divides across shards (at
  // least 1 each) so one hot directory's scanners cannot evict every other
  // shard's cursors; the shard-local counter feeds the per-shard satellite
  // test, the global stat keeps the historical aggregate visible.
  uint64_t session_id = 0;
  uint64_t dir_entries = 0;
  if (config_.snapshot_sessions) {
    std::vector<DirEntry> entries;
    v->kv.ScanPrefix(EntryPrefix(attr.id),
                     [&](const std::string& k, const std::string& val) {
                       entries.push_back(DirEntry{
                           std::string(EntryNameFromKey(k)),
                           DecodeEntryValue(val)});
                       return true;
                     });
    co_await cpu_.Run(static_cast<sim::SimTime>(entries.size()) *
                      costs_->kv_scan_per_entry);
    if (v->dead) co_return;
    dir_entries = entries.size();
    session_id = v->ShardFor(dir_fp)
                     .dir_sessions.Open(attr.id, std::move(entries), Now())
                     .id;
  } else {
    // Advisory entry count from the aggregated directory size (no scan).
    dir_entries = attr.size;
    session_id = v->ShardFor(dir_fp).dir_sessions.OpenCursor(attr.id, Now()).id;
  }
  stats_.dir_opens++;
  const size_t shard_cap =
      config_.max_dir_sessions == 0
          ? 0
          : std::max<size_t>(1, config_.max_dir_sessions / v->num_shards());
  const uint64_t evicted =
      v->ShardFor(dir_fp).dir_sessions.EvictLruOverCap(shard_cap);
  v->ShardFor(dir_fp).dir_sessions_evicted += evicted;
  stats_.dir_sessions_evicted += evicted;
  sim::Spawn(DirSessionWatchdog(v, session_id));

  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->attr = attr;
  resp->dir_session = session_id;
  resp->dir_entries = dir_entries;
  co_await cpu_.Run(costs_->reply_build);
  if (v->dead) co_return;
  rpc_.Respond(p, resp);
}

sim::Task<void> SwitchServer::DirSessionWatchdog(VolPtr v, uint64_t session_id) {
  while (true) {
    co_await sim::Delay(sim_, config_.dir_session_ttl);
    if (v->dead) co_return;
    const size_t before = v->SessionShard(session_id).dir_sessions.size();
    if (v->SessionShard(session_id)
            .dir_sessions.ExpireIfIdle(session_id, Now(),
                                       config_.dir_session_ttl)) {
      if (v->SessionShard(session_id).dir_sessions.size() < before) {
        stats_.dir_sessions_expired++;
      }
      co_return;
    }
  }
}

sim::Task<void> SwitchServer::HandleReaddirPage(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  // SwitchFS streams are page-sequenced: req->cookie is the page's sequence
  // number, so a prefetching client can issue page p+1 while page p is in
  // flight. A speculative page that the network delivers ahead of its turn
  // parks in a bounded poll loop until the stream catches up. The session
  // pointer is re-found after every suspension — the watchdog, an LRU
  // eviction, or a crash may erase it during an await.
  const uint64_t want = req->cookie;
  for (int spin = 0;; ++spin) {
    DirSession* session = v->SessionShard(req->dir_session)
                              .dir_sessions.Touch(req->dir_session, Now(),
                                                  config_.dir_session_ttl);
    if (session == nullptr) {
      // Expired, evicted, closed, or minted by a previous incarnation:
      // resuming mid-stream could drop or duplicate entries, so the client
      // must re-open.
      stats_.stale_handle_bounces++;
      RespondStatus(p, StatusCode::kStaleHandle);
      co_return;
    }
    if (want + 1 == session->next_page) {
      // Retry of the page just served: re-serve the cached copy (the scan
      // already happened and the stream already advanced — charging only
      // the marshalling keeps the retry idempotent in cost too).
      DirPage page = session->last_page;
      co_await cpu_.Run(static_cast<sim::SimTime>(page.entries.size()) *
                            costs_->readdir_per_entry +
                        costs_->reply_build);
      if (v->dead) co_return;
      auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
      resp->entries = std::move(page.entries);
      resp->next_cookie = page.next_cookie;
      resp->at_end = page.at_end;
      rpc_.Respond(p, resp);
      co_return;
    }
    if (want == session->next_page) {
      // Build the page and advance the stream state BEFORE suspending:
      // first, the watchdog may expire the session during an await,
      // invalidating `session`; second, advancing first lets the NEXT
      // prefetched page start its scan on another core while this one is
      // still paying for marshalling — the pipelining that makes the paged
      // path beat the monolithic one.
      DirPage page;
      sim::SimTime scan_cost = 0;
      if (session->at_end) {
        // Idempotent tail re-read past the end.
        page.at_end = true;
      } else if (session->cursor) {
        // Bounded KV seek from the last served key. Deletes remove entry
        // keys outright (no tombstone rows), so a deleted cursor is skipped
        // implicitly by upper_bound and a key is served at most once.
        size_t used = 0;
        bool budget_stop = false;
        v->kv.ScanFrom(
            EntryPrefix(session->dir), session->cursor_key,
            [&](const std::string& k, const std::string& val) {
              std::string name(EntryNameFromKey(k));
              if (!PageHasRoom(used, static_cast<int>(page.entries.size()),
                               DirEntryWireSize(name), config_.mtu_bytes,
                               config_.mtu_entries)) {
                budget_stop = true;
                return false;
              }
              used += DirEntryWireSize(name);
              page.entries.push_back(
                  DirEntry{std::move(name), DecodeEntryValue(val)});
              return true;
            });
        if (!page.entries.empty()) {
          session->cursor_key =
              EntryKey(session->dir, page.entries.back().name);
        }
        page.at_end = !budget_stop;
        // Satellite of the cursor design: the scan cost moves from OpenDir
        // (where the snapshot path pays it all at once) to the page that
        // performs it.
        scan_cost = static_cast<sim::SimTime>(page.entries.size()) *
                    costs_->kv_scan_per_entry;
      } else {
        page = DirSessionTable::PageOf(*session, session->offset,
                                       config_.mtu_entries, config_.mtu_bytes);
        session->offset = page.next_cookie;
      }
      page.next_cookie = want + 1;
      session->at_end = page.at_end;
      session->next_page = want + 1;
      session->last_page = page;

      // Per-page accounting: this page's scan (cursor sessions only) plus
      // its marshalling and reply build.
      co_await cpu_.Run(scan_cost +
                        static_cast<sim::SimTime>(page.entries.size()) *
                            costs_->readdir_per_entry +
                        costs_->reply_build);
      if (v->dead) co_return;
      stats_.dir_pages++;
      stats_.dir_page_entries += page.entries.size();

      auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
      resp->entries = std::move(page.entries);
      resp->next_cookie = page.next_cookie;
      resp->at_end = page.at_end;
      rpc_.Respond(p, resp);
      co_return;
    }
    if (want < session->next_page || spin >= 64) {
      // A page from a past position (beyond the cached one), or a future
      // page whose predecessors never arrived: serving it would skip or
      // repeat entries. The client restarts the scan.
      stats_.stale_handle_bounces++;
      RespondStatus(p, StatusCode::kStaleHandle);
      co_return;
    }
    co_await sim::Delay(sim_, 1000);  // park ~1µs; jitter reorders sub-µs
    if (v->dead) co_return;
  }
}

sim::Task<void> SwitchServer::HandleCloseDir(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;
  v->SessionShard(req->dir_session).dir_sessions.Close(req->dir_session);
  RespondStatus(p, StatusCode::kOk);
}

// ---------------------------------------------------------------------------
// Batched lookups & attr deltas (MetadataService v2)
// ---------------------------------------------------------------------------

sim::Task<void> SwitchServer::HandleBatchStat(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  stats_.batch_stats++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->batch_status.reserve(req->targets.size());
  resp->batch_attrs.resize(req->targets.size());
  for (size_t i = 0; i < req->targets.size(); ++i) {
    const PathRef& ref = req->targets[i];
    stats_.batch_stat_targets++;
    const std::string ikey = InodeKey(ref.pid, ref.name);
    auto lock =
        co_await v->ShardForKey(ikey).inode_locks.AcquireShared(ikey);
    if (v->dead) co_return;
    co_await cpu_.Run(costs_->path_check *
                      static_cast<sim::SimTime>(1 + ref.ancestors.size()));
    if (v->dead) co_return;
    auto stale = v->inval.Check(ref.ancestors);
    if (!stale.empty()) {
      // Per-target verdict; the batch itself stays kOk so healthy targets
      // still resolve. stale_ids accumulates the union for the client.
      stats_.stale_cache_bounces++;
      for (InodeId& id : stale) {
        resp->stale_ids.push_back(id);
      }
      resp->batch_status.push_back(StatusCode::kStaleCache);
      continue;
    }
    co_await cpu_.Run(costs_->kv_get);
    if (v->dead) co_return;
    auto value = v->kv.Get(ikey);
    if (!value.has_value()) {
      resp->batch_status.push_back(StatusCode::kNotFound);
      continue;
    }
    Attr attr = Attr::Decode(*value);
    if (attr.type == FileType::kReference) {
      // Hard link: chase the shared attributes object (§5.5). A failed
      // chase (attributes owner unreachable) is that target's verdict —
      // reporting kOk with a default Attr would hand the client garbage.
      Attr shared;
      Status s = co_await links_.UpdateLinkCount(
          v, attr.id, static_cast<uint32_t>(attr.size), /*delta=*/0, &shared);
      if (v->dead) co_return;
      if (!s.ok()) {
        resp->batch_status.push_back(s.code());
        continue;
      }
      attr = shared;
    }
    resp->batch_attrs[i] = attr;
    resp->batch_status.push_back(StatusCode::kOk);
  }
  co_await cpu_.Run(costs_->reply_build);
  if (v->dead) co_return;
  rpc_.Respond(p, resp);
}

sim::Task<void> SwitchServer::HandleBatchStatDir(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  stats_.batch_stat_dirs++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->batch_status.reserve(req->targets.size());
  resp->batch_attrs.resize(req->targets.size());
  for (size_t i = 0; i < req->targets.size(); ++i) {
    const PathRef& ref = req->targets[i];
    stats_.batch_stat_targets++;
    const psw::Fingerprint dir_fp = FingerprintOf(ref.pid, ref.name);
    const std::string ikey = InodeKey(ref.pid, ref.name);
    // Per-target agg-gate dance: the gate and inode locks are scoped to the
    // iteration, so a slow aggregation for one target never pins another
    // target's shard (an "i" key's shard is its own (pid, name) group, the
    // same shard the gate routes to — no cross-shard pair is held).
    // scattered_hint forces the dance for tracker modes whose hint channel
    // is single-fingerprint (the batch could not pre-query N groups).
    LockTable::Handle gate =
        co_await GateDirRead(v, p, *req, dir_fp, req->scattered_hint);
    if (v->dead) co_return;
    auto ino = co_await v->ShardForKey(ikey).inode_locks.AcquireShared(ikey);
    if (v->dead) co_return;
    co_await cpu_.Run(costs_->path_check *
                      static_cast<sim::SimTime>(1 + ref.ancestors.size()));
    if (v->dead) co_return;
    auto stale = v->inval.Check(ref.ancestors);
    if (!stale.empty()) {
      // Per-target verdict, as in HandleBatchStat: healthy targets still
      // resolve; stale_ids accumulates the union for the client.
      stats_.stale_cache_bounces++;
      for (InodeId& id : stale) {
        resp->stale_ids.push_back(id);
      }
      resp->batch_status.push_back(StatusCode::kStaleCache);
      continue;
    }
    co_await cpu_.Run(costs_->kv_get);
    if (v->dead) co_return;
    auto value = v->kv.Get(ikey);
    if (!value.has_value()) {
      resp->batch_status.push_back(StatusCode::kNotFound);
      continue;
    }
    Attr attr = Attr::Decode(*value);
    if (!attr.is_dir()) {
      resp->batch_status.push_back(StatusCode::kNotADirectory);
      continue;
    }
    resp->batch_attrs[i] = attr;
    resp->batch_status.push_back(StatusCode::kOk);
  }
  co_await cpu_.Run(costs_->reply_build);
  if (v->dead) co_return;
  rpc_.Respond(p, resp);
}

sim::Task<void> SwitchServer::HandleSetAttr(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  stats_.setattrs++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  const PathRef& ref = req->ref;
  const std::string ikey = InodeKey(ref.pid, ref.name);
  auto lock =
      co_await v->ShardForKey(ikey).inode_locks.AcquireExclusive(ikey);
  if (v->dead) co_return;
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  if (v->dead) co_return;
  auto stale = v->inval.Check(ref.ancestors);
  if (!stale.empty()) {
    stats_.stale_cache_bounces++;
    RespondStale(p, std::move(stale));
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (!value.has_value()) {
    RespondStatus(p, StatusCode::kNotFound);
    co_return;
  }
  Attr attr = Attr::Decode(*value);
  if (attr.type == FileType::kReference) {
    // Hard link: the delta applies to the shared attributes object (§5.5).
    // A failed update (attributes owner unreachable) must surface — the
    // mutation did NOT commit, and the client's retry loop handles it.
    Attr shared;
    Status s = co_await links_.UpdateLinkCount(
        v, attr.id, static_cast<uint32_t>(attr.size), /*delta=*/0, &shared,
        req->delta);
    if (v->dead) co_return;
    if (!s.ok()) {
      RespondStatus(p, s.code());
      co_return;
    }
    auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
    resp->attr = shared;
    co_await cpu_.Run(costs_->reply_build);
    if (v->dead) co_return;
    rpc_.Respond(p, resp);
    co_return;
  }

  if (req->delta.ApplyTo(attr, Now())) {
    // In-switch cache: evict before the commit, under the exclusive lock.
    co_await EvictSwitchCacheEntry(ctx_, v, FingerprintOf(ref.pid, ref.name));
    if (v->dead) co_return;
    // Commit through the WAL like every other mutation (the legacy chmod
    // path mutated the KV row only, losing the change across a crash).
    OpCommitRecord rec;
    rec.op = OpType::kSetAttr;
    rec.inode_key = ikey;
    rec.inode_value = attr.Encode();
    co_await cpu_.Run(costs_->wal_append);
    if (v->dead) co_return;
    durable_->wal.Append(kWalOpCommit, rec.Encode());
    co_await cpu_.Run(costs_->kv_put);
    if (v->dead) co_return;
    v->kv.Put(ikey, attr.Encode());
    if (req->delta.set_mode && attr.is_dir() && attr.id != RootId()) {
      // Permission changes on directories invalidate client caches (§4.2);
      // the root is exempt (clients cannot re-look it up).
      v->inval.Add(attr.id, Now());
      auto bcast = std::make_shared<InvalBroadcast>();
      bcast->id = attr.id;
      net::Packet mc;
      mc.dst = net::kServerMulticast;
      mc.ds.origin = node_id();
      // Defense-in-depth evict stamp: the broadcast traverses the switch
      // anyway, so it re-executes the pre-commit evict (a no-op when that
      // evict landed) and bumps the set version against in-flight installs.
      mc.mc.op = net::McOp::kEvict;
      mc.mc.fingerprint = FingerprintOf(ref.pid, ref.name);
      mc.body = bcast;
      rpc_.Send(std::move(mc));
    }
  }
  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->attr = attr;
  co_await cpu_.Run(costs_->reply_build);
  if (v->dead) co_return;
  rpc_.Respond(p, resp);
}

// ---------------------------------------------------------------------------
// BulkInsert (MetadataService v2): WAL-batched multi-entry create
// ---------------------------------------------------------------------------

sim::Task<void> SwitchServer::HandleBulkInsert(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  stats_.bulk_inserts++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  const PathRef& ref = req->ref;  // the shared parent; names in bulk_names
  const psw::Fingerprint pfp = ref.parent_fp;

  // Locking mirrors the single-entry upsert: parent change-log group
  // (write), then every target inode (write) — in name order, so two bulks
  // racing on overlapping name sets cannot deadlock on the entry locks.
  // All locks are held through the commit.
  auto cl_lock =
      co_await v->ShardFor(pfp).changelog_locks.AcquireExclusive(FpKey(pfp));
  if (v->dead) co_return;
  std::vector<size_t> order(req->bulk_names.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return req->bulk_names[a] < req->bulk_names[b];
  });
  // The admitted names hash to independent fingerprints, so their inode
  // locks may live on different shards — one chain holding same-class locks
  // from two shards is exactly what the cross-shard-lock rule flags. The
  // batch is a sanctioned multi-shard writer (name-ordered acquisition
  // keeps it deadlock-free), witnessed by the scope below.
  sim::CrossShardScope bulk_xs(co_await sim::discipline::CurrentChainId{});
  std::vector<LockTable::Handle> ino_locks;
  ino_locks.reserve(order.size());
  for (size_t k = 0; k < order.size(); ++k) {
    const std::string& name = req->bulk_names[order[k]];
    if (k > 0 && name == req->bulk_names[order[k - 1]]) {
      continue;  // duplicate within the batch: one lock suffices
    }
    const std::string name_key = InodeKey(ref.pid, name);
    ino_locks.push_back(
        co_await v->ShardForKey(name_key).inode_locks.AcquireExclusive(
            name_key));
    if (v->dead) co_return;
  }
  bulk_xs.Release();

  // One validation pass for the shared parent path.
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  if (v->dead) co_return;
  auto stale = v->inval.Check(ref.ancestors);
  if (!stale.empty()) {
    stats_.stale_cache_bounces++;
    RespondStale(p, std::move(stale));
    co_return;
  }

  // Per-entry existence verdicts: a name that already exists (in the KV
  // store or earlier in this very batch) is rejected without sinking the
  // batch, like BatchStat's per-target verdicts.
  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->batch_status.assign(req->bulk_names.size(), StatusCode::kOk);
  resp->batch_attrs.resize(req->bulk_names.size());
  std::set<std::string> admitted;
  std::vector<size_t> admitted_idx;
  for (size_t i = 0; i < req->bulk_names.size(); ++i) {
    const std::string& name = req->bulk_names[i];
    co_await cpu_.Run(costs_->kv_get);
    if (v->dead) co_return;
    if (v->kv.Get(InodeKey(ref.pid, name)).has_value() ||
        !admitted.insert(name).second) {
      resp->batch_status[i] = StatusCode::kAlreadyExists;
      continue;
    }
    admitted_idx.push_back(i);
  }
  if (admitted_idx.empty()) {
    co_await cpu_.Run(costs_->reply_build);
    if (v->dead) co_return;
    rpc_.Respond(p, resp);
    co_return;
  }

  // In-switch cache: drop cached attrs of the admitted targets before they
  // become visible. Normally a no-op (creations were uncached misses); it
  // matters for an unlink+bulk-recreate race on the same names.
  for (size_t i : admitted_idx) {
    const psw::Fingerprint target_cache_fp =
        FingerprintOf(ref.pid, req->bulk_names[i]);
    co_await EvictSwitchCacheEntry(ctx_, v, target_cache_fp);
    if (v->dead) co_return;
  }

  // Persistent commit: ONE WAL record covers the whole batch. The per-log
  // append mutex pins the captured seq range across the WAL/KV suspensions
  // (see HandleUpsert).
  BulkCommitRecord rec;
  rec.parent_dir = ref.pid;
  rec.parent_fp = pfp;
  {
    auto append_lock =
        co_await v->ShardFor(pfp).changelog_append_locks.AcquireExclusive(
            ClAppendKey(pfp, ref.pid));
    if (v->dead) co_return;
    // sfs-lint: allow(borrow-across-suspend, log slot pinned by the held append mutex — a rebind erase needs this key's append lock, and changelog map nodes are reference-stable)
    ChangeLog& clog = v->GetChangeLog(pfp, ref.pid);
    uint64_t seq = clog.last_appended_seq();
    const int64_t now = Now();
    rec.items.reserve(admitted_idx.size());
    for (size_t i : admitted_idx) {
      const std::string& name = req->bulk_names[i];
      Attr attr;
      attr.id = NewInodeId();
      attr.type = FileType::kFile;
      attr.mode = req->mode;
      attr.ctime = attr.mtime = attr.atime = now;
      resp->batch_attrs[i] = attr;
      BulkCommitRecord::Item item;
      item.inode_key = InodeKey(ref.pid, name);
      item.inode_value = attr.Encode();
      item.entry.timestamp = now;
      item.entry.name = name;
      item.entry.op = OpType::kCreate;
      item.entry.entry_type = FileType::kFile;
      item.entry.size_delta = 1;
      item.entry.seq = ++seq;
      rec.items.push_back(std::move(item));
    }
    // The first item pays the full append; the rest ride at the batched
    // marginal cost (same model as the push path's group append).
    co_await cpu_.Run(costs_->wal_append +
                      static_cast<sim::SimTime>(rec.items.size() - 1) *
                          costs_->wal_append_batched);
    if (v->dead) co_return;
    const uint64_t lsn = durable_->wal.Append(kWalBulkCommit, rec.Encode());

    co_await cpu_.Run(static_cast<sim::SimTime>(rec.items.size()) *
                      costs_->kv_put);
    if (v->dead) co_return;
    for (const BulkCommitRecord::Item& item : rec.items) {
      v->kv.Put(item.inode_key, item.inode_value);
    }
    co_await cpu_.Run(costs_->changelog_append);
    if (v->dead) co_return;
    // Entries ack in FIFO order, so the shared record may be marked applied
    // only when its LAST entry acks — the others carry lsn 0 (a no-op for
    // Wal::MarkApplied). A partial ack followed by a crash replays the
    // whole batch; the owner's high-water mark dedups the applied prefix.
    for (size_t k = 0; k < rec.items.size(); ++k) {
      ChangeLogEntry entry = rec.items[k].entry;
      entry.wal_lsn = k + 1 == rec.items.size() ? lsn : 0;
      clog.Restore(std::move(entry));
    }
  }
  stats_.bulk_insert_entries += rec.items.size();

  if (!config_.async_updates) {
    // Conventional synchronous update (Baseline of §7.3.1). Owner
    // unreachable: the entries stay pending for a later push; the batch
    // itself is committed, so report the verdicts.
    (void)co_await SyncParentUpdate(v, pfp, ref.pid);
    if (v->dead) co_return;
    rpc_.Respond(p, resp);
    co_return;
  }

  // One deferred-update publication covers the batch (they share the
  // parent's dirty-set slot), and at most one push is scheduled.
  co_await PublishUpdate(&p, v, pfp, ref.pid, resp);
  if (v->dead) co_return;
  push_.MaybeSchedulePush(v, pfp, ref.pid);
}

// ---------------------------------------------------------------------------
// rmdir (§5.2.3)
// ---------------------------------------------------------------------------

sim::Task<void> SwitchServer::HandleRmdir(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  const PathRef& ref = req->ref;
  const psw::Fingerprint target_fp = FingerprintOf(ref.pid, ref.name);
  const psw::Fingerprint pfp = ref.parent_fp;
  const std::string ikey = InodeKey(ref.pid, ref.name);

  // Lock order: agg gate -> change-log locks (fp order) -> target inode.
  // pfp and target_fp are independent hashes, so their group locks may live
  // on different shards: rmdir is a sanctioned two-group writer (global fp
  // order keeps it deadlock-free across shards), witnessed by the scope —
  // which also spans RunAggregation below, whose snapshot takes the target
  // group's shared lock while the parent's is still held.
  auto gate =
      co_await v->ShardFor(target_fp).agg_gates.AcquireExclusive(
          FpKey(target_fp));
  if (v->dead) co_return;
  sim::CrossShardScope rmdir_xs(co_await sim::discipline::CurrentChainId{});
  LockTable::Handle cl_first;
  LockTable::Handle cl_second;
  if (pfp == target_fp) {
    cl_first = co_await v->ShardFor(pfp).changelog_locks.AcquireExclusive(
        FpKey(pfp));
  } else if (pfp < target_fp) {
    cl_first = co_await v->ShardFor(pfp).changelog_locks.AcquireExclusive(
        FpKey(pfp));
    if (v->dead) co_return;
    cl_second =
        co_await v->ShardFor(target_fp).changelog_locks.AcquireExclusive(
            FpKey(target_fp));
  } else {
    cl_first =
        co_await v->ShardFor(target_fp).changelog_locks.AcquireExclusive(
            FpKey(target_fp));
    if (v->dead) co_return;
    cl_second = co_await v->ShardFor(pfp).changelog_locks.AcquireExclusive(
        FpKey(pfp));
  }
  if (v->dead) co_return;
  auto ino = co_await v->ShardForKey(ikey).inode_locks.AcquireExclusive(ikey);
  if (v->dead) co_return;
  // Everything further this chain locks (RunAggregation's applies, the
  // append mutex) stays on the target group's shard or changes class, so
  // the witness can end here.
  rmdir_xs.Release();

  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  if (v->dead) co_return;
  auto stale = v->inval.Check(ref.ancestors);
  if (!stale.empty()) {
    stats_.stale_cache_bounces++;
    RespondStale(p, std::move(stale));
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (!value.has_value()) {
    RespondStatus(p, StatusCode::kNotFound);
    co_return;
  }
  Attr attr = Attr::Decode(*value);
  if (!attr.is_dir()) {
    RespondStatus(p, StatusCode::kNotADirectory);
    co_return;
  }
  if (attr.id == RootId()) {
    RespondStatus(p, StatusCode::kInvalidArgument);
    co_return;
  }

  // Steps 4-7: aggregate the target with invalidation, deferring the
  // responders' release until after commit (Fig 6 step 12).
  auto outcome = co_await agg_.RunAggregation(v, target_fp, attr.id, target_fp,
                                              ikey, /*defer_done=*/true);
  if (v->dead) co_return;

  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  value = v->kv.Get(ikey);
  if (!value.has_value()) {
    agg_.SendAggDone(outcome.deferred_done);
    RespondStatus(p, StatusCode::kNotFound);
    co_return;
  }
  attr = Attr::Decode(*value);
  const bool empty = attr.size == 0 && v->kv.CountPrefix(EntryPrefix(attr.id)) == 0;
  if (!empty) {
    agg_.SendAggDone(outcome.deferred_done);
    RespondStatus(p, StatusCode::kNotEmpty);
    co_return;
  }

  // In-switch cache: the directory's attr must not survive its removal.
  co_await EvictSwitchCacheEntry(ctx_, v, target_fp);
  if (v->dead) co_return;

  // Step 8: commit (append mutex: see HandleUpsert's commit section).
  {
    auto append_lock = co_await v->ShardFor(pfp).changelog_append_locks.AcquireExclusive(
        ClAppendKey(pfp, ref.pid));
    if (v->dead) co_return;
    // sfs-lint: allow(borrow-across-suspend, log slot pinned by the held append mutex — a rebind erase needs this key's append lock, and changelog map nodes are reference-stable)
    ChangeLog& clog = v->GetChangeLog(pfp, ref.pid);
    ChangeLogEntry entry;
    entry.timestamp = Now();
    entry.op = OpType::kRmdir;
    entry.name = ref.name;
    entry.entry_type = FileType::kDirectory;
    entry.size_delta = -1;
    entry.seq = clog.last_appended_seq() + 1;

    OpCommitRecord rec;
    rec.op = OpType::kRmdir;
    rec.inode_key = ikey;
    rec.inode_delete = true;
    rec.parent_dir = ref.pid;
    rec.parent_fp = pfp;
    rec.entry = entry;
    rec.has_entry = true;
    co_await cpu_.Run(costs_->wal_append);
    if (v->dead) co_return;
    entry.wal_lsn = durable_->wal.Append(kWalOpCommit, rec.Encode());

    co_await cpu_.Run(costs_->kv_delete);
    if (v->dead) co_return;
    v->kv.Delete(ikey);
    v->kv.Delete(DirIndexKey(attr.id));
    co_await cpu_.Run(costs_->changelog_append);
    if (v->dead) co_return;
    clog.Restore(entry);
  }

  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  co_await PublishUpdate(&p, v, pfp, ref.pid, resp);
  if (v->dead) co_return;

  // Step 12: let the responders release their locks and mark WALs.
  agg_.SendAggDone(outcome.deferred_done);
  push_.MaybeSchedulePush(v, pfp, ref.pid);
}

// ---------------------------------------------------------------------------
// Single-inode file ops & lookups
// ---------------------------------------------------------------------------

sim::Task<void> SwitchServer::HandleFileOp(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const MetaReq*>(p.body.get());
  stats_.ops++;
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;

  const PathRef& ref = req->ref;
  if (req->op == OpType::kClose) {
    // close releases client-side state only; servers just acknowledge.
    co_await cpu_.Run(costs_->reply_build);
    if (v->dead) co_return;
    RespondStatus(p, StatusCode::kOk);
    co_return;
  }

  const std::string ikey = InodeKey(ref.pid, ref.name);
  const bool write = req->op == OpType::kChmod;
  // NOTE: never combine co_await with the conditional operator — GCC 12
  // miscompiles `c ? co_await a : co_await b` (shared frame slots for the
  // branch temporaries corrupt RAII state).
  LockTable::Handle lock;
  if (write) {
    lock = co_await v->ShardForKey(ikey).inode_locks.AcquireExclusive(ikey);
  } else {
    lock = co_await v->ShardForKey(ikey).inode_locks.AcquireShared(ikey);
  }
  if (v->dead) co_return;
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + ref.ancestors.size()));
  if (v->dead) co_return;
  auto stale = v->inval.Check(ref.ancestors);
  if (!stale.empty()) {
    stats_.stale_cache_bounces++;
    RespondStale(p, std::move(stale));
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (!value.has_value()) {
    RespondStatus(p, StatusCode::kNotFound);
    co_return;
  }
  Attr attr = Attr::Decode(*value);
  if (attr.type == FileType::kReference) {
    // Hard link: the real attributes live in the shared object (§5.5).
    AttrDelta delta;
    if (req->op == OpType::kChmod) {
      delta.set_mode = true;
      delta.mode = req->mode;
    }
    Attr shared;
    // A failed update (attributes owner unreachable) must surface — the
    // mutation did NOT commit, and replying kOk would hand the client a
    // default-constructed Attr as the new truth (see HandleSetAttr's leg).
    Status s = co_await links_.UpdateLinkCount(v, attr.id,
                                               static_cast<uint32_t>(attr.size),
                                               /*delta=*/0, &shared, delta);
    if (v->dead) co_return;
    if (!s.ok()) {
      RespondStatus(p, s.code());
      co_return;
    }
    auto resp2 = std::make_shared<MetaResp>(StatusCode::kOk);
    resp2->attr = shared;
    co_await cpu_.Run(costs_->reply_build);
    if (v->dead) co_return;
    rpc_.Respond(p, resp2);
    co_return;
  }
  if (req->op == OpType::kChmod) {
    // In-switch cache: evict before the KV commit (chmod's commit point),
    // under the exclusive lock.
    co_await EvictSwitchCacheEntry(ctx_, v, FingerprintOf(ref.pid, ref.name));
    if (v->dead) co_return;
    attr.mode = req->mode;
    attr.ctime = Now();
    co_await cpu_.Run(costs_->kv_put);
    if (v->dead) co_return;
    v->kv.Put(ikey, attr.Encode());
    if (attr.is_dir() && attr.id != RootId()) {
      // Permission changes on directories invalidate client caches (§4.2).
      // The root is exempt: clients cannot re-look it up (it has no parent),
      // and servers check root permissions directly.
      v->inval.Add(attr.id, Now());
      auto bcast = std::make_shared<InvalBroadcast>();
      bcast->id = attr.id;
      net::Packet mc;
      mc.dst = net::kServerMulticast;
      mc.ds.origin = node_id();
      // Defense-in-depth evict stamp (see HandleSetAttr's broadcast).
      mc.mc.op = net::McOp::kEvict;
      mc.mc.fingerprint = FingerprintOf(ref.pid, ref.name);
      mc.body = bcast;
      rpc_.Send(std::move(mc));
    }
  }
  auto resp = std::make_shared<MetaResp>(StatusCode::kOk);
  resp->attr = attr;
  co_await cpu_.Run(costs_->reply_build);
  if (v->dead) co_return;
  // stat/open piggyback a cache install; chmod requests carry no mc.kRead
  // stamp, so the helper degrades to a plain respond for them.
  RespondWithInstall(p, resp, v, attr, Now());
}

sim::Task<void> SwitchServer::HandleLookup(net::Packet p, VolPtr v) {
  const auto* req = static_cast<const LookupReq*>(p.body.get());
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;
  const std::string ikey = InodeKey(req->pid, req->name);
  auto lock = co_await v->ShardForKey(ikey).inode_locks.AcquireShared(ikey);
  if (v->dead) co_return;
  co_await cpu_.Run(costs_->path_check *
                    static_cast<sim::SimTime>(1 + req->ancestors.size()));
  if (v->dead) co_return;
  auto resp = std::make_shared<LookupResp>();
  auto stale = v->inval.Check(req->ancestors);
  if (!stale.empty()) {
    stats_.stale_cache_bounces++;
    resp->status = StatusCode::kStaleCache;
    resp->stale_ids = std::move(stale);
    rpc_.Respond(p, resp);
    co_return;
  }
  co_await cpu_.Run(costs_->kv_get);
  if (v->dead) co_return;
  auto value = v->kv.Get(ikey);
  if (!value.has_value()) {
    // Negative results are never installed: nothing would evict them (the
    // create path only evicts fingerprints in cached_fps).
    resp->status = StatusCode::kNotFound;
    rpc_.Respond(p, resp);
    co_return;
  }
  resp->status = StatusCode::kOk;
  resp->attr = Attr::Decode(*value);
  resp->read_at = Now();
  RespondWithInstall(p, resp, v, resp->attr, resp->read_at);
}

// ---------------------------------------------------------------------------
// Crash & recovery (§5.4.2, §A.1)
// ---------------------------------------------------------------------------

void SwitchServer::Crash() {
  vol_->dead = true;
  vol_ = std::make_shared<ServerVolatile>(sim_, config_.shard_count);
  vol_->dead = true;  // stays dead until Recover() finishes the replay
  serving_ = false;
  rpc_.SetEnabled(false);
  rpc_.ResetVolatileState();
}

void SwitchServer::ReplayWalInto(ServerVolatile& v) {
  for (const kv::WalRecord& r : durable_->wal.records()) {
    stats_.wal_replayed++;
    switch (r.type) {
      case kWalOpCommit: {
        OpCommitRecord rec = OpCommitRecord::Decode(r.payload);
        if (!rec.inode_key.empty()) {
          if (rec.inode_delete) {
            v.kv.Delete(rec.inode_key);
          } else {
            v.kv.Put(rec.inode_key, rec.inode_value);
            if (rec.op == OpType::kMkdir ||
                (rec.op == OpType::kRename && !rec.inode_value.empty())) {
              Attr attr = Attr::Decode(rec.inode_value);
              if (attr.is_dir()) {
                // Rebuild the id -> inode-key index. The key embeds
                // (pid, name), from which the fingerprint re-derives.
                const std::string name = rec.inode_key.substr(33);
                InodeId pid;
                std::memcpy(pid.w.data(), rec.inode_key.data() + 1, 32);
                if (rec.op == OpType::kRename) {
                  // Arrival era boundary, as at runtime: earlier-era applied
                  // marks replayed from EntryApply records must not dedup
                  // this era's renumbered entries.
                  v.TakeHwmRows(attr.id, 0);
                }
                v.kv.Put(DirIndexKey(attr.id),
                         EncodeDirIndex(rec.inode_key,
                                        FingerprintOf(pid, name)));
                // Rename destination leg: re-install the migrated entry
                // list (it is as committed as the attr whose size counts it).
                for (const DirEntry& e : rec.install_entries) {
                  v.kv.Put(EntryKey(attr.id, e.name),
                           EncodeEntryValue(e.type));
                }
              }
            }
          }
          // rmdir's inode_delete covers the inode row; any stale dir-index
          // row is harmless (the inode key it points to is gone, so
          // ApplyEntries drops obsolete entries).
        }
        if (rec.has_entry && !r.applied) {
          ChangeLogEntry e = rec.entry;
          e.wal_lsn = r.lsn;
          v.GetChangeLog(rec.parent_fp, rec.parent_dir).Restore(std::move(e));
        }
        if (rec.has_moved_tombstone && config_.moved_rebind) {
          // Re-install the moved tombstone so rename-away stays
          // distinguishable from removed across a crash of the old owner
          // (in-flight change-logs elsewhere still need the rebind verdict).
          // The TTL restarts at replay time; install order is irrelevant
          // (newest epoch wins). Departure era boundary, as at runtime: the
          // tombstone takes over the applied marks, the live rows go — and
          // so does the dir-index row (the runtime source leg deleted it;
          // a stale replayed row would mask the tombstone consult).
          v.kv.Delete(DirIndexKey(rec.moved_dir));
          v.TakeHwmRows(rec.moved_dir, rec.moved_old_fp);
          ServerVolatile::MovedDir tomb;
          tomb.old_fp = rec.moved_old_fp;
          tomb.new_fp = rec.moved_new_fp;
          tomb.new_owner = rec.moved_new_owner;
          tomb.epoch = rec.moved_epoch;
          tomb.installed_at = Now();
          tomb.applied = rec.moved_applied;
          v.InstallMovedTombstone(rec.moved_dir, tomb);
        }
        break;
      }
      case kWalBulkCommit: {
        BulkCommitRecord rec = BulkCommitRecord::Decode(r.payload);
        for (const BulkCommitRecord::Item& item : rec.items) {
          v.kv.Put(item.inode_key, item.inode_value);
        }
        if (!r.applied) {
          // The record is marked applied only once its LAST entry acked, so
          // an un-applied record restores the whole batch; the owner's
          // high-water mark dedups any already-applied prefix on re-push.
          ChangeLog& clog = v.GetChangeLog(rec.parent_fp, rec.parent_dir);
          for (size_t i = 0; i < rec.items.size(); ++i) {
            ChangeLogEntry e = rec.items[i].entry;
            e.wal_lsn = i + 1 == rec.items.size() ? r.lsn : 0;
            clog.Restore(std::move(e));
          }
        }
        break;
      }
      case kWalEntryApply: {
        EntryApplyRecord rec = EntryApplyRecord::Decode(r.payload);
        if (rec.batch_token != 0) {
          // Rebuild the duplicate-push filter with ApplySection's commit
          // logic: era-scoped max-merge of {token, acked_seq} per (dir,
          // src). Runs before the hwm dedup below — a replayed duplicate
          // record still names the committed token.
          auto& ts = v.push_tokens[{rec.dir, rec.src_server}];
          if (ts.fp == rec.fp && ts.token != 0) {
            ts.token = std::max(ts.token, rec.batch_token);
            ts.acked_seq = std::max(ts.acked_seq, rec.entry.seq);
          } else if (rec.batch_token > ts.token) {
            ts = ServerVolatile::PushTokenState{rec.batch_token,
                                                rec.entry.seq, rec.fp};
          }
        }
        uint64_t& high = v.hwm[{rec.dir, rec.src_server, rec.fp}];
        if (rec.entry.seq <= high) {
          break;  // already applied (idempotent redo)
        }
        high = rec.entry.seq;
        std::string ikey;
        psw::Fingerprint fp = 0;
        if (!v.LookupDirIndex(rec.dir, &ikey, &fp)) {
          break;  // directory removed later in the log
        }
        auto value = v.kv.Get(ikey);
        if (!value.has_value()) {
          break;
        }
        const std::string ekey = EntryKey(rec.dir, rec.entry.name);
        if (rec.entry.op == OpType::kCreate ||
            rec.entry.op == OpType::kMkdir) {
          v.kv.Put(ekey, EncodeEntryValue(rec.entry.entry_type));
        } else {
          v.kv.Delete(ekey);
        }
        // Rebuild the name's LWW stamp (max-merge). Records exist only for
        // entries that won their comparison at runtime, so replay applies
        // them unconditionally; the stamps only need to be correct for
        // FUTURE arrivals (a late cross-era or WAN entry after recovery).
        if (config_.lww_resolve) {
          const LwwStamp stamp{rec.entry.timestamp, config_.cluster_id,
                               rec.src_server, rec.entry.seq};
          const std::string skey = LwwStampKey(rec.dir, rec.entry.name);
          auto srow = v.kv.Get(skey);
          if (!srow.has_value() || LwwStamp::Decode(*srow) < stamp) {
            v.kv.Put(skey, stamp.Encode());
          }
        }
        Attr attr = Attr::Decode(*value);
        attr.size = rec.result_size;
        attr.mtime = std::max(attr.mtime, rec.result_mtime);
        v.kv.Put(ikey, attr.Encode());
        break;
      }
      case kWalWanApply: {
        // Geo-replicated apply (idempotent redo, mirroring kWalEntryApply):
        // re-apply the entry, restore the absolute directory attributes the
        // runtime apply computed, and max-merge the origin's LWW stamp so
        // post-recovery arrivals still resolve against it.
        WanApplyRecord rec = WanApplyRecord::Decode(r.payload);
        std::string ikey;
        psw::Fingerprint fp = 0;
        if (!v.LookupDirIndex(rec.dir, &ikey, &fp)) {
          break;  // directory removed later in the log
        }
        auto value = v.kv.Get(ikey);
        if (!value.has_value()) {
          break;
        }
        const std::string ekey = EntryKey(rec.dir, rec.entry.name);
        if (rec.entry.op == OpType::kCreate ||
            rec.entry.op == OpType::kMkdir) {
          v.kv.Put(ekey, EncodeEntryValue(rec.entry.entry_type));
        } else {
          v.kv.Delete(ekey);
        }
        const LwwStamp stamp{rec.entry.timestamp, rec.origin_cluster,
                             rec.src_server, rec.entry.seq};
        const std::string skey = LwwStampKey(rec.dir, rec.entry.name);
        auto srow = v.kv.Get(skey);
        if (!srow.has_value() || LwwStamp::Decode(*srow) < stamp) {
          v.kv.Put(skey, stamp.Encode());
        }
        Attr attr = Attr::Decode(*value);
        attr.size = rec.result_size;
        attr.mtime = std::max(attr.mtime, rec.result_mtime);
        v.kv.Put(ikey, attr.Encode());
        break;
      }
      default:
        break;
    }
  }
}

sim::Task<void> SwitchServer::Recover() {
  // Fresh volatile incarnation.
  auto v = std::make_shared<ServerVolatile>(sim_, config_.shard_count);
  ReplayWalInto(*v);
  vol_ = v;
  rpc_.SetEnabled(true);

  // Charge the redo cost: dominated by per-record work (§7.7).
  const size_t records = durable_->wal.record_count();
  const size_t chunk = 256;
  for (size_t i = 0; i < records; i += chunk) {
    const size_t n = std::min(chunk, records - i);
    co_await cpu_.Run(static_cast<sim::SimTime>(n) *
                      costs_->wal_replay_per_record);
    if (v->dead) co_return;
  }

  SeedRoot();  // re-seed if we own the root

  // Flush rebuilt backlogs and re-aggregate owned directories so interrupted
  // aggregations complete (§A.1).
  co_await FlushAllChangeLogs();
  if (v->dead) co_return;
  co_await AggregateAllOwnedDirs();
  if (v->dead) co_return;

  // Clone the invalidation list from a healthy peer (§5.4.2).
  for (uint32_t s = 0; s < cluster_->ServerCount(); ++s) {
    if (s == config_.index) {
      continue;
    }
    auto r = co_await rpc_.Call(cluster_->ServerNode(s),
                                net::MakeMsg<InvalCloneReq>());
    if (v->dead) co_return;
    if (r.ok()) {
      if (const auto* resp = net::MsgAs<InvalCloneResp>(*r)) {
        v->inval.Merge(resp->entries);
        break;
      }
    }
  }
  serving_ = true;
}

// ---------------------------------------------------------------------------
// WAN replay (geo-replication apply leg, src/wan/)
// ---------------------------------------------------------------------------

void SwitchServer::EnqueueWanApply(const WanEntry& entry,
                                   std::shared_ptr<WanApplyResult> result,
                                   std::shared_ptr<sim::JoinCounter> jc) {
  VolPtr v = vol_;
  const size_t shard = ShardIndexForFp(entry.dir_fp, v->num_shards());
  // Plain-callable thunk (EnqueueShardTask contract): copies only, the
  // coroutine is built when the lane runs it.
  EnqueueShardTask(v, shard, ShardLane::kApply,
                   [this, v, entry, result, jc]() {
                     return ApplyWanEntryTask(v, entry, result, jc);
                   });
}

sim::Task<void> SwitchServer::ApplyWanEntryTask(
    VolPtr v, WanEntry we, std::shared_ptr<WanApplyResult> result,
    std::shared_ptr<sim::JoinCounter> jc) {
  // The WAN analog of PushEngine::ApplySection, minus the change-log ack
  // machinery: resolve the directory, take its inode lock, settle the entry
  // through the per-name LWW stamp, and persist a kWalWanApply record before
  // mutating. jc->Done() is unconditional (dead or not) so the applier's
  // join always resolves.
  if (v->dead) {
    result->failed++;
    jc->Done();
    co_return;
  }
  std::string ikey;
  psw::Fingerprint fp = 0;
  if (!v->LookupDirIndex(we.dir, &ikey, &fp) ||
      !v->kv.Get(ikey).has_value()) {
    // Unknown or removed here: not replicable at this cluster. Acked — a
    // re-ship cannot make it applicable (a later mkdir of the same path
    // mints a fresh id at its own cluster).
    stats_.wan_entries_dropped++;
    result->dropped++;
    jc->Done();
    co_return;
  }
  auto lock = co_await v->ShardFor(fp).inode_locks.AcquireExclusive(ikey);
  if (v->dead) {
    result->failed++;
    jc->Done();
    co_return;
  }
  const LwwStamp incoming{we.entry.timestamp, we.origin_cluster,
                          we.src_server, we.entry.seq};
  const std::string skey = LwwStampKey(we.dir, we.entry.name);
  auto srow = v->kv.Get(skey);
  if (srow.has_value() && incoming < LwwStamp::Decode(*srow)) {
    // A newer write (local or from another origin) already resolved this
    // name — the conflict settles the same way at every cluster.
    stats_.wan_conflicts_lww++;
    result->conflicts++;
    jc->Done();
    co_return;
  }
  co_await EvictSwitchCacheEntry(ctx_, v, fp);
  if (v->dead) {
    result->failed++;
    jc->Done();
    co_return;
  }
  auto value = v->kv.Get(ikey);
  if (!value.has_value()) {
    stats_.wan_entries_dropped++;
    result->dropped++;
    jc->Done();
    co_return;
  }
  Attr attr = Attr::Decode(*value);
  const bool creates =
      we.entry.op == OpType::kCreate || we.entry.op == OpType::kMkdir;
  // Presence-aware size delta: a replicated create that lands on a name this
  // cluster also created replaces the entry row, it does not add one — both
  // clusters converge on the same entry count.
  const bool present = v->kv.Get(EntryKey(we.dir, we.entry.name)).has_value();
  const int64_t delta = creates ? (present ? 0 : 1) : (present ? -1 : 0);
  WanApplyRecord rec;
  rec.origin_cluster = we.origin_cluster;
  rec.dir = we.dir;
  rec.src_server = we.src_server;
  rec.entry = we.entry;
  rec.result_size = static_cast<uint64_t>(
      std::max<int64_t>(0, static_cast<int64_t>(attr.size) + delta));
  rec.result_mtime = std::max(attr.mtime, we.entry.timestamp);
  durable_->wal.Append(kWalWanApply, rec.Encode());
  co_await cpu_.Run(costs_->wal_append_batched + costs_->changelog_apply_entry);
  if (v->dead) {
    result->failed++;
    jc->Done();
    co_return;
  }
  const std::string ekey = EntryKey(we.dir, we.entry.name);
  if (creates) {
    v->kv.Put(ekey, EncodeEntryValue(we.entry.entry_type));
  } else {
    v->kv.Delete(ekey);
  }
  v->kv.Put(skey, incoming.Encode());
  attr.size = rec.result_size;
  attr.mtime = rec.result_mtime;
  attr.atime = std::max(attr.atime, rec.result_mtime);
  v->kv.Put(ikey, attr.Encode());
  stats_.wan_entries_applied++;
  result->applied++;
  jc->Done();
}

sim::Task<void> SwitchServer::HandleInvalClone(net::Packet p, VolPtr v) {
  co_await cpu_.Run(costs_->op_dispatch);
  if (v->dead) co_return;
  auto resp = std::make_shared<InvalCloneResp>();
  resp->entries = v->inval.Snapshot();
  rpc_.Respond(p, resp);
}

sim::Task<void> SwitchServer::FlushAllChangeLogs() {
  VolPtr v = vol_;
  std::set<uint32_t> owners;
  for (size_t i = 0; i < v->num_shards(); ++i) {
    for (const auto& [fp, dirs] : v->ShardAt(i).changelogs) {
      for (const auto& [dir, log] : dirs) {
        if (!log.empty()) {
          push_.EnqueueBacklog(v, fp, dir);
          owners.insert(OwnerOf(fp));
        }
      }
    }
  }
  for (uint32_t owner : owners) {
    co_await push_.DrainOwnerBarrier(v, owner);
    if (v->dead) co_return;
  }
}

sim::Task<void> SwitchServer::AggregateAllOwnedDirs() {
  VolPtr v = vol_;
  std::vector<psw::Fingerprint> fps;
  v->kv.ScanPrefix(kDirIndexPrefix,
                   [&](const std::string&, const std::string& value) {
                     std::string ikey;
                     psw::Fingerprint fp = 0;
                     DecodeDirIndex(value, &ikey, &fp);
                     fps.push_back(fp);
                     return true;
                   });
  std::sort(fps.begin(), fps.end());
  fps.erase(std::unique(fps.begin(), fps.end()), fps.end());
  for (psw::Fingerprint fp : fps) {
    if (!IsOwner(fp)) {
      continue;
    }
    co_await agg_.GateAndAggregate(v, fp);
    if (v->dead) co_return;
  }
}

SwitchServer::MigrationBatch SwitchServer::ExtractMisplaced(
    const HashRing& ring) {
  MigrationBatch batch;
  VolPtr v = vol_;
  std::vector<std::string> doomed;
  // Inodes ("i" keys) move when their (pid, name) hash moves; entry lists
  // and dir-index rows follow their directory's inode.
  v->kv.ScanPrefix("i", [&](const std::string& key, const std::string& value) {
    const std::string name = key.substr(33);
    InodeId pid;
    std::memcpy(pid.w.data(), key.data() + 1, 32);
    const psw::Fingerprint fp = FingerprintOf(pid, name);
    if (ring.Owner(fp) != config_.index) {
      batch.pairs.emplace_back(key, value);
      doomed.push_back(key);
      Attr attr = Attr::Decode(value);
      if (attr.is_dir()) {
        auto idx = v->kv.Get(DirIndexKey(attr.id));
        if (idx.has_value()) {
          batch.pairs.emplace_back(DirIndexKey(attr.id), *idx);
          doomed.push_back(DirIndexKey(attr.id));
        }
        v->kv.ScanPrefix(EntryPrefix(attr.id),
                         [&](const std::string& ek, const std::string& ev) {
                           batch.pairs.emplace_back(ek, ev);
                           doomed.push_back(ek);
                           return true;
                         });
      }
    }
    return true;
  });
  for (const std::string& key : doomed) {
    v->kv.Delete(key);
  }
  return batch;
}

void SwitchServer::InstallBatch(const MigrationBatch& batch) {
  for (const auto& [key, value] : batch.pairs) {
    vol_->kv.Put(key, value);
  }
}

}  // namespace switchfs::core
