// The SwitchFS metadata server (paper §4-§5).
//
// SwitchServer is the dispatch-and-lifecycle layer over four protocol
// modules that share a ServerContext (src/core/server_context.h):
//
//   aggregation.h         scatter/aggregate directory reads (§5.2.2),
//                         owner-side collect/apply + responder sessions
//   push_engine.h         proactive push & quiet-period timers (§5.3)
//   rename_coordinator.h  2PL/2PC rename legs + orphaned-loop check (§5.2)
//   link_manager.h        hard links via shared attributes objects (§5.5)
//
// The server itself keeps the client-facing upsert/read handlers (§5.2.1,
// §5.2.3), the deferred-update publication machinery (insert-ack wait,
// dirty-set overflow fallback, §6.2), and crash/recovery (§5.4.2, §A.1).
//
// Request handlers are coroutines; each captures a shared_ptr to the
// server's volatile state (ServerVolatile) so a simulated crash can
// atomically invalidate every in-flight handler (they observe `dead` at
// their next resume and abandon work) while the replacement state recovers
// from the WAL.
#ifndef SRC_CORE_SERVER_H_
#define SRC_CORE_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/aggregation.h"
#include "src/core/link_manager.h"
#include "src/core/push_engine.h"
#include "src/core/rename_coordinator.h"
#include "src/core/server_context.h"

namespace switchfs::core {

class SwitchServer : public UpdatePublisher {
 public:
  // Protocol counters keep their historical nested name.
  using Stats = ServerStats;

  SwitchServer(sim::Simulator* sim, net::Network* net, ClusterContext* cluster,
               DurableState* durable, const sim::CostModel* costs,
               tracker::DirtyTracker* dirty_tracker, ServerConfig config);
  ~SwitchServer() override;  // unregisters the shard-queue work source

  net::NodeId node_id() const { return rpc_.id(); }
  uint32_t index() const { return config_.index; }
  const ServerConfig& config() const { return config_; }
  sim::CpuPool& cpu() { return cpu_; }

  // Seeds the root directory if this server owns it (cluster setup).
  void SeedRoot();

  // --- crash / recovery (§5.4.2) ---
  void Crash();
  sim::Task<void> Recover();
  bool serving() const { return serving_; }
  void SetServing(bool on) { serving_ = on; }

  // Flushes all change-log backlogs to their owners and waits (used by the
  // switch-recovery and reconfiguration procedures).
  sim::Task<void> FlushAllChangeLogs();
  // Aggregates every directory this server owns (recovery, reconfiguration).
  sim::Task<void> AggregateAllOwnedDirs();

  // --- introspection for tests and benches ---
  const Stats& stats() const { return stats_; }
  size_t PendingChangeLogEntries() const;
  size_t KvSize() const { return vol_->kv.size(); }
  const ShardedKv& kv_for_test() const { return vol_->kv; }
  InvalidationList& invalidation_for_test() { return vol_->inval; }
  bool OwnerScatteredForTest(psw::Fingerprint fp) const {
    return vol_->ShardFor(fp).owner_scattered.count(fp) > 0;
  }
  // Read-only shard-state access (per-shard counters, session tables).
  const ServerVolatile& vol_for_test() const { return *vol_; }

  // Direct KV injection used by cluster preload (bench setup fast path).
  void PreloadInode(const std::string& key, const Attr& attr);
  void PreloadEntry(const InodeId& dir, const std::string& name, FileType t);
  void PreloadDirIndex(const InodeId& id, const std::string& inode_key,
                       psw::Fingerprint fp);

  // --- WAN replication (src/wan/) ---
  // Points the capture hook at the cluster's replicator (null detaches).
  void SetWanSink(WanSink* sink) { ctx_.wan_sink = sink; }
  // Queues one WAN-replicated entry onto its directory's shard apply lane
  // (the same serial lanes push-batch sections apply through). Outcomes are
  // tallied into `result`; `jc` resolves when the entry has been applied,
  // LWW-dropped, or abandoned by a dead incarnation (counted as `failed`, so
  // the applier withholds the batch ack and the origin re-ships).
  void EnqueueWanApply(const WanEntry& entry,
                       std::shared_ptr<WanApplyResult> result,
                       std::shared_ptr<sim::JoinCounter> jc);

  // Metadata migration support (cluster reconfiguration, §5.5/A.3).
  struct MigrationBatch {
    std::vector<std::pair<std::string, std::string>> pairs;  // raw kv pairs
  };
  // Extracts (and removes) everything that no longer belongs here per `ring`.
  MigrationBatch ExtractMisplaced(const HashRing& ring);
  void InstallBatch(const MigrationBatch& batch);

  // UpdatePublisher: publishes a deferred parent update — marks the directory
  // scattered via the configured tracker and waits for the ack (or the
  // overflow fallback). `client_req` non-null: the insert-ack multicast
  // carries `client_resp` to the client; null: internal update (rename and
  // link legs), acks return to us only.
  sim::Task<void> PublishUpdate(const net::Packet* client_req, VolPtr v,
                                psw::Fingerprint fp, const InodeId& dir,
                                net::MsgPtr client_resp) override;

 private:
  int64_t Now() const;
  InodeId NewInodeId();
  uint32_t OwnerOf(psw::Fingerprint fp) const { return ctx_.OwnerOf(fp); }
  bool IsOwner(psw::Fingerprint fp) const { return ctx_.IsOwner(fp); }

  // ---- dispatch ----
  void OnRequest(net::Packet p);
  void OnRaw(net::Packet p);

  // ---- client-facing handlers ----
  sim::Task<void> HandleUpsert(net::Packet p, VolPtr v);   // create/mkdir/delete
  sim::Task<void> HandleRmdir(net::Packet p, VolPtr v);
  sim::Task<void> HandleDirRead(net::Packet p, VolPtr v);  // statdir/readdir
  sim::Task<void> HandleFileOp(net::Packet p, VolPtr v);   // stat/open/close/chmod
  sim::Task<void> HandleLookup(net::Packet p, VolPtr v);
  // MetadataService v2: directory streams, batched lookups, attr deltas.
  sim::Task<void> HandleOpenDir(net::Packet p, VolPtr v);
  sim::Task<void> HandleReaddirPage(net::Packet p, VolPtr v);
  sim::Task<void> HandleCloseDir(net::Packet p, VolPtr v);
  sim::Task<void> HandleBatchStat(net::Packet p, VolPtr v);
  // BatchStat flavor for directory targets: one multi-target RPC that runs
  // the per-target agg-gate dance (dirty check + aggregation + shared gate)
  // before each stat, so a scan over N subdirectories costs one round trip.
  sim::Task<void> HandleBatchStatDir(net::Packet p, VolPtr v);
  sim::Task<void> HandleSetAttr(net::Packet p, VolPtr v);
  sim::Task<void> HandleBulkInsert(net::Packet p, VolPtr v);
  // Ensures the directory group's deferred entries are applied before a
  // read: dirty-set check, then aggregation under the exclusive agg gate if
  // needed; returns a held SHARED gate handle (empty if the incarnation
  // died). Shared by statdir/readdir, OpenDir and BatchStatDir.
  // `force_scattered` skips the tracker consult and treats the directory as
  // dirty (multi-target requests whose tracker hint channel is
  // single-fingerprint).
  sim::Task<LockTable::Handle> GateDirRead(VolPtr v, const net::Packet& p,
                                           const MetaReq& req,
                                           psw::Fingerprint dir_fp,
                                           bool force_scattered = false);
  // Expires an idle directory-stream session after dir_session_ttl
  // (responder-watchdog pattern; the table also expires lazily on access).
  sim::Task<void> DirSessionWatchdog(VolPtr v, uint64_t session_id);

  // ---- asynchronous update machinery ----
  // Synchronous parent update at the parent's owner (Baseline mode §7.3.1 and
  // dedicated-tracker overflow fallback).
  sim::Task<Status> SyncParentUpdate(VolPtr v, psw::Fingerprint fp,
                                     const InodeId& dir);
  // Rebind-safe change-log trim (re-finds the log; see definition).
  void AckChangeLogUpTo(VolPtr v, psw::Fingerprint fp, const InodeId& dir,
                        uint64_t acked_seq);

  // ---- dirty-set fallback and acks ----
  sim::Task<void> HandleInsertFallback(net::Packet p, VolPtr v);
  void HandleFallbackDone(const FallbackDone& msg, VolPtr v);
  void HandleInsertAck(const net::Packet& p, VolPtr v);

  // ---- recovery helpers ----
  sim::Task<void> HandleInvalClone(net::Packet p, VolPtr v);
  void ReplayWalInto(ServerVolatile& v);

  // ---- WAN replay (geo-replication apply leg) ----
  sim::Task<void> ApplyWanEntryTask(VolPtr v, WanEntry we,
                                    std::shared_ptr<WanApplyResult> result,
                                    std::shared_ptr<sim::JoinCounter> jc);

  // In-switch read cache: reply to a read, piggybacking a cache install when
  // the request carried an mc.kRead stamp (plain Respond otherwise; see the
  // definition for the version-echo staleness guard).
  void RespondWithInstall(const net::Packet& p, net::MsgPtr resp, VolPtr v,
                          const Attr& attr, int64_t read_at);

  void RespondStatus(const net::Packet& p, StatusCode code) {
    ctx_.RespondStatus(p, code);
  }
  void RespondStale(const net::Packet& p, std::vector<InodeId> stale) {
    ctx_.RespondStale(p, std::move(stale));
  }

  sim::Simulator* sim_;
  net::Network* net_;
  ClusterContext* cluster_;
  DurableState* durable_;
  const sim::CostModel* costs_;
  ServerConfig config_;
  sim::CpuPool cpu_;
  net::RpcEndpoint rpc_;
  VolPtr vol_;
  bool serving_ = true;
  Stats stats_;
  uint64_t work_source_id_ = 0;  // shard run queues (RunWhileWorkPending)

  // Shared view + protocol modules (declaration order matters: ctx_ views
  // the members above; the modules hold references to ctx_ and each other).
  ServerContext ctx_;
  Aggregation agg_;
  PushEngine push_;
  LinkManager links_;
  RenameCoordinator rename_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_SERVER_H_
