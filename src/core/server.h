// The SwitchFS metadata server (paper §4-§5).
//
// Request handlers are coroutines; each captures a shared_ptr to the server's
// volatile state (Volatile) so a simulated crash can atomically invalidate
// every in-flight handler (they observe `dead` at their next resume and
// abandon work) while the replacement state recovers from the WAL.
//
// Protocol summary implemented here:
//  * create/mkdir/delete (§5.2.1): lock parent change-log + target inode,
//    check invalidation list + existence, WAL-commit, execute locally, defer
//    the parent update to the change-log and insert the parent's fingerprint
//    into the in-network dirty set; the switch's insert-ack multicast both
//    completes the client's RPC and releases our locks. Dirty-set overflow
//    falls back to a synchronous update at the parent's owner (§6.2).
//  * statdir/readdir (§5.2.2): the switch stamps the scattered bit on the
//    request; scattered directories trigger an aggregation that removes the
//    fingerprint, multicasts a collect to all other servers, applies the
//    returned change-log entries (compacted, §5.3), and acks so the senders
//    mark their WAL records applied.
//  * rmdir (§5.2.3): aggregation-with-invalidation to determine emptiness and
//    lazily invalidate client caches, then the usual deferred parent update.
//  * rename (§5.2): coordinator-driven 2PL/2PC across up to four inodes with
//    orphaned-loop prevention and source-directory aggregation.
//  * proactive push/aggregation (§5.3): sources push MTU-full or idle
//    backlogs to the directory owner; the owner aggregates after a quiet
//    period, returning the directory to normal state.
//  * fault handling (§5.4): packet loss/dup/reorder via RPC retransmission,
//    dirty-set remove sequence numbers, and insert-ack retry; crash recovery
//    replays the WAL and re-aggregates owned directories (§A.1).
#ifndef SRC_CORE_SERVER_H_
#define SRC_CORE_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/change_log.h"
#include "src/core/invalidation.h"
#include "src/core/lock_table.h"
#include "src/core/messages.h"
#include "src/core/placement.h"
#include "src/core/schema.h"
#include "src/core/types.h"
#include "src/kv/kvstore.h"
#include "src/kv/wal.h"
#include "src/net/rpc.h"
#include "src/sim/costs.h"
#include "src/sim/cpu.h"

namespace switchfs::core {

// Where directory dirty-state is tracked (§7.3.3 alternatives study).
enum class TrackerMode {
  kSwitch = 0,           // in-network dirty set (SwitchFS proper)
  kDedicatedServer = 1,  // a DPDK server node maintains the dirty set
  kOwnerServer = 2,      // each directory's owner tracks its own state
};

struct ServerConfig {
  uint32_t index = 0;
  int cores = 4;
  // Feature flags for the Fig 14 ablation: Baseline = async_updates off;
  // +Async = async on, compaction off; +Compaction = both on.
  bool async_updates = true;
  bool compaction = true;
  TrackerMode tracker = TrackerMode::kSwitch;
  net::NodeId tracker_node = net::kInvalidNode;

  int mtu_entries = 29;  // §7.5: proactive push once an MTU worth accumulates
  sim::SimTime push_idle_timeout = sim::Microseconds(300);
  sim::SimTime owner_quiet_period = sim::Microseconds(400);
  sim::SimTime insert_ack_timeout = sim::Microseconds(150);
  int insert_max_attempts = 100;
  sim::SimTime agg_reply_timeout = sim::Milliseconds(2);
  int agg_max_retries = 12;
  sim::SimTime responder_session_timeout = sim::Milliseconds(20);
  uint32_t rename_coordinator = 0;  // server index of the rename coordinator
};

// Context the cluster provides to servers and clients.
class ClusterContext {
 public:
  virtual ~ClusterContext() = default;
  virtual const HashRing& ring() const = 0;
  virtual net::NodeId ServerNode(uint32_t server_index) const = 0;
  virtual uint32_t ServerCount() const = 0;
};

// Durable per-server state: survives crashes (owned by the cluster).
struct DurableState {
  kv::Wal wal;
  // Dirty-set remove sequence (§5.4.1). Monotonic across crashes, else the
  // switch would treat all post-recovery removes as stale.
  uint64_t remove_seq = 0;
  uint64_t id_counter = 1;  // inode-id generation must not repeat
};

class SwitchServer {
 public:
  SwitchServer(sim::Simulator* sim, net::Network* net, ClusterContext* cluster,
               DurableState* durable, const sim::CostModel* costs,
               ServerConfig config);

  net::NodeId node_id() const { return rpc_.id(); }
  uint32_t index() const { return config_.index; }
  const ServerConfig& config() const { return config_; }
  sim::CpuPool& cpu() { return cpu_; }

  // Seeds the root directory if this server owns it (cluster setup).
  void SeedRoot();

  // --- crash / recovery (§5.4.2) ---
  void Crash();
  sim::Task<void> Recover();
  bool serving() const { return serving_; }
  void SetServing(bool on) { serving_ = on; }

  // Flushes all change-log backlogs to their owners and waits (used by the
  // switch-recovery and reconfiguration procedures).
  sim::Task<void> FlushAllChangeLogs();
  // Aggregates every directory this server owns (recovery, reconfiguration).
  sim::Task<void> AggregateAllOwnedDirs();

  // --- introspection for tests and benches ---
  struct Stats {
    uint64_t ops = 0;
    uint64_t aggregations = 0;
    uint64_t agg_retries = 0;
    uint64_t entries_applied = 0;
    uint64_t entries_deduped = 0;
    uint64_t pushes_sent = 0;
    uint64_t pushes_received = 0;
    uint64_t fallbacks = 0;
    uint64_t stale_cache_bounces = 0;
    uint64_t wal_replayed = 0;
  };
  const Stats& stats() const { return stats_; }
  size_t PendingChangeLogEntries() const;
  size_t KvSize() const { return vol_->kv.size(); }
  const kv::KvStore& kv_for_test() const { return vol_->kv; }
  InvalidationList& invalidation_for_test() { return vol_->inval; }
  bool OwnerScatteredForTest(psw::Fingerprint fp) const {
    return vol_->owner_scattered.count(fp) > 0;
  }

  // Direct KV injection used by cluster preload (bench setup fast path).
  void PreloadInode(const std::string& key, const Attr& attr);
  void PreloadEntry(const InodeId& dir, const std::string& name, FileType t);
  void PreloadDirIndex(const InodeId& id, const std::string& inode_key,
                       psw::Fingerprint fp);

  // Metadata migration support (cluster reconfiguration, §5.5/A.3).
  struct MigrationBatch {
    std::vector<std::pair<std::string, std::string>> pairs;  // raw kv pairs
  };
  // Extracts (and removes) everything that no longer belongs here per `ring`.
  MigrationBatch ExtractMisplaced(const HashRing& ring);
  void InstallBatch(const MigrationBatch& batch);

 private:
  friend class SwitchFsClient;

  // ---- volatile state (wiped on crash) ----
  struct AggWait {
    uint64_t seq = 0;
    std::set<uint32_t> pending;  // server indices yet to reply for `seq`
    std::vector<AggEntries::PerDir> collected;
    std::vector<uint32_t> collected_src;  // parallel to `collected`
    std::shared_ptr<sim::OneShot<bool>> slot;  // armed per attempt
  };
  struct AggSession {  // responder side
    uint64_t seq = 0;
    LockTable::Handle lock;
    int64_t started_at = 0;
  };
  struct OpWait {
    bool acked = false;
    bool fallback_done = false;
    std::shared_ptr<sim::OneShot<int>> slot;  // armed per attempt
  };
  struct Volatile {
    explicit Volatile(sim::Simulator* sim)
        : inode_locks(sim),
          changelog_locks(sim),
          agg_gates(sim) {}
    bool dead = false;
    kv::KvStore kv;
    LockTable inode_locks;      // key: inode key
    LockTable changelog_locks;  // key: FpKey(fp) — one per fingerprint group
    LockTable agg_gates;        // key: FpKey(fp) — owner-side read/agg gate
    std::unordered_map<psw::Fingerprint, std::map<InodeId, ChangeLog>>
        changelogs;
    InvalidationList inval;
    // Owner-side applied high-water marks: (dir, src server) -> seq.
    std::map<std::pair<InodeId, uint32_t>, uint64_t> hwm;
    std::unordered_map<psw::Fingerprint, std::shared_ptr<AggWait>> agg_waits;
    std::unordered_map<psw::Fingerprint, AggSession> agg_sessions;
    std::unordered_map<uint64_t, std::shared_ptr<OpWait>> op_waits;
    // Owner-side: completion time of the last aggregation per fingerprint.
    std::unordered_map<psw::Fingerprint, int64_t> last_agg_complete;
    // Owner-side: last push arrival per fingerprint (quiet-period timer).
    std::unordered_map<psw::Fingerprint, int64_t> last_push;
    std::unordered_set<psw::Fingerprint> quiet_timer_armed;
    // Owner-server tracker mode: local scattered set.
    std::unordered_set<psw::Fingerprint> owner_scattered;
    // Source-side pusher bookkeeping.
    std::set<std::pair<psw::Fingerprint, InodeId>> push_timer_armed;
    std::set<std::pair<psw::Fingerprint, InodeId>> push_in_flight;
    // Rename participant state: txn id -> held locks.
    std::unordered_map<uint64_t, std::vector<LockTable::Handle>> txn_locks;
    uint64_t op_token_counter = 1;
    uint64_t txn_counter = 1;
  };
  using VolPtr = std::shared_ptr<Volatile>;

  static std::string FpKey(psw::Fingerprint fp);
  static std::string DirIndexKey(const InodeId& id);
  int64_t Now() const;
  InodeId NewInodeId();
  uint32_t OwnerOf(psw::Fingerprint fp) const {
    return cluster_->ring().Owner(fp);
  }
  bool IsOwner(psw::Fingerprint fp) const {
    return OwnerOf(fp) == config_.index;
  }

  // ---- dispatch ----
  void OnRequest(net::Packet p);
  void OnRaw(net::Packet p);

  // ---- client-facing handlers ----
  sim::Task<void> HandleUpsert(net::Packet p, VolPtr v);   // create/mkdir/delete
  sim::Task<void> HandleRmdir(net::Packet p, VolPtr v);
  sim::Task<void> HandleDirRead(net::Packet p, VolPtr v);  // statdir/readdir
  sim::Task<void> HandleFileOp(net::Packet p, VolPtr v);   // stat/open/close/chmod
  sim::Task<void> HandleLookup(net::Packet p, VolPtr v);
  sim::Task<void> HandleRename(net::Packet p, VolPtr v);   // coordinator

  // ---- asynchronous update machinery ----
  ChangeLog& GetChangeLog(const VolPtr& v, psw::Fingerprint fp,
                          const InodeId& dir);
  // Publishes a deferred parent update: marks the directory scattered via the
  // configured tracker and waits for the ack (or the overflow fallback).
  // `client_req` non-null: the insert-ack multicast carries `client_resp` to
  // the client; null: internal update (rename legs), acks return to us only.
  sim::Task<void> PublishUpdate(const net::Packet* client_req, VolPtr v,
                                psw::Fingerprint fp, const InodeId& dir,
                                net::MsgPtr client_resp);
  // Synchronous parent update at the parent's owner (Baseline mode §7.3.1 and
  // dedicated-tracker overflow fallback).
  sim::Task<Status> SyncParentUpdate(VolPtr v, psw::Fingerprint fp,
                                     const InodeId& dir,
                                     const ChangeLogEntry& entry);

  // ---- aggregation (owner side) ----
  struct AggOutcome {
    bool ok = false;
    net::MsgPtr deferred_done;  // AggDone to multicast (when defer_done)
  };
  // Caller must hold the exclusive agg gate for `fp`. `held_cl_fp`: a
  // fingerprint whose change-log lock the caller already holds exclusively
  // (rmdir holds the parent's); pass 0 if none. `held_inode_key`: an inode
  // key the caller already holds a write lock on ("" if none).
  sim::Task<AggOutcome> RunAggregation(VolPtr v, psw::Fingerprint fp,
                                       std::optional<InodeId> invalidate,
                                       psw::Fingerprint held_cl_fp,
                                       const std::string& held_inode_key,
                                       bool defer_done);
  void SendAggDone(net::MsgPtr done_msg);
  // Applies entries from `src` to directory `dir` (hwm-deduped, FIFO).
  sim::Task<void> ApplyEntries(VolPtr v, InodeId dir, uint32_t src,
                               std::vector<ChangeLogEntry> entries,
                               const std::string& held_inode_key);
  bool LookupDirIndex(const VolPtr& v, const InodeId& dir,
                      std::string* inode_key, psw::Fingerprint* fp) const;
  // Takes the exclusive gate and aggregates (helper for quiet timers, rename
  // and the AggregateReq RPC).
  sim::Task<void> GateAndAggregate(VolPtr v, psw::Fingerprint fp);

  // ---- aggregation (responder side) ----
  sim::Task<void> HandleAggCollect(net::Packet p, VolPtr v);
  void HandleAggDone(const AggDone& done, VolPtr v);
  void HandleAggEntries(net::Packet p, VolPtr v);  // at initiator
  sim::Task<void> ResponderSessionWatchdog(VolPtr v, psw::Fingerprint fp,
                                           uint64_t seq);

  // ---- proactive push (§5.3) ----
  void MaybeSchedulePush(VolPtr v, psw::Fingerprint fp, const InodeId& dir);
  sim::Task<void> PushIdleTimer(VolPtr v, psw::Fingerprint fp, InodeId dir);
  sim::Task<void> PushBacklog(VolPtr v, psw::Fingerprint fp, InodeId dir);
  sim::Task<void> HandlePush(net::Packet p, VolPtr v);
  void ArmOwnerQuietTimer(VolPtr v, psw::Fingerprint fp);
  sim::Task<void> OwnerQuietTimer(VolPtr v, psw::Fingerprint fp);

  // ---- dirty-set fallback and acks ----
  sim::Task<void> HandleInsertFallback(net::Packet p, VolPtr v);
  void HandleFallbackDone(const FallbackDone& msg, VolPtr v);
  void HandleInsertAck(const net::Packet& p, VolPtr v);

  // ---- rename participant legs ----
  sim::Task<void> HandleRenamePrepare(net::Packet p, VolPtr v);
  sim::Task<void> HandleRenameCommit(net::Packet p, VolPtr v);
  sim::Task<void> HandleAggregateReq(net::Packet p, VolPtr v);

  // ---- hard links (§5.5) ----
  sim::Task<void> HandleLink(net::Packet p, VolPtr v);
  sim::Task<void> HandleLinkConvert(net::Packet p, VolPtr v);
  sim::Task<void> HandleLinkRefUpdate(net::Packet p, VolPtr v);
  // delta: +1 link, -1 unlink, 0 read; optionally rewrites the mode.
  sim::Task<Status> UpdateLinkCount(VolPtr v, InodeId file_id,
                                    uint32_t attr_server, int32_t delta,
                                    Attr* out, bool set_mode = false,
                                    uint32_t mode = 0);

  // ---- recovery helpers ----
  sim::Task<void> HandleInvalClone(net::Packet p, VolPtr v);
  void ReplayWalInto(Volatile& v);

  void RespondStatus(const net::Packet& p, StatusCode code);
  void RespondStale(const net::Packet& p, std::vector<InodeId> stale);

  sim::Simulator* sim_;
  net::Network* net_;
  ClusterContext* cluster_;
  DurableState* durable_;
  const sim::CostModel* costs_;
  ServerConfig config_;
  sim::CpuPool cpu_;
  net::RpcEndpoint rpc_;
  VolPtr vol_;
  bool serving_ = true;
  Stats stats_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_SERVER_H_
