// Shared context of one SwitchFS metadata server, factored out of the
// SwitchServer monolith so the protocol-layer modules (aggregation, proactive
// push, rename 2PC, hard links) are separately constructible and testable
// without a full cluster.
//
// Ownership model: SwitchServer owns the durable pieces' pointers plus the
// CPU pool, RPC endpoint, and stats; ServerContext is a non-owning view over
// them with the small derived helpers (Now, owner lookup, responders) every
// module needs. The per-incarnation volatile state (ServerVolatile) is a
// shared_ptr handed to each coroutine handler at spawn time: a simulated
// crash atomically replaces it and flags the old incarnation `dead`, so
// in-flight handlers abandon work at their next resume while the replacement
// recovers from the WAL.
#ifndef SRC_CORE_SERVER_CONTEXT_H_
#define SRC_CORE_SERVER_CONTEXT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/annotations.h"
#include "src/core/change_log.h"
#include "src/core/dir_session.h"
#include "src/core/invalidation.h"
#include "src/core/keys.h"
#include "src/core/lock_table.h"
#include "src/core/messages.h"
#include "src/core/placement.h"
#include "src/core/schema.h"
#include "src/core/shard.h"
#include "src/core/types.h"
#include "src/kv/kvstore.h"
#include "src/kv/wal.h"
#include "src/net/rpc.h"
#include "src/sim/costs.h"
#include "src/sim/cpu.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace switchfs::tracker {
class DirtyTracker;  // src/tracker/dirty_tracker.h
}  // namespace switchfs::tracker

namespace switchfs::core {

// Where directory dirty-state is tracked (§7.3.3 alternatives study). The
// mode only selects which tracker::DirtyTracker implementation the cluster
// wires up; the protocol modules talk to the interface.
enum class TrackerMode {
  kSwitch = 0,           // in-network dirty set (SwitchFS proper)
  kDedicatedServer = 1,  // a DPDK server node maintains the dirty set
  kOwnerServer = 2,      // each directory's owner tracks its own state
  kReplicated = 3,       // chain-replicated tracker group with failover
};

struct ServerConfig {
  uint32_t index = 0;
  int cores = 4;
  // Fingerprint-group shards per server (clamped to [1, kMaxShards]). Each
  // shard owns its slice of the KV namespace, its lock tables, change logs,
  // pushers, and dir sessions, and drains its apply lane serially — so the
  // owner's apply throughput scales with min(shard_count, cores). 1 restores
  // the pre-sharding single-owner behavior (the bench_shard_scaling A/B).
  int shard_count = 4;
  // Feature flags for the Fig 14 ablation: Baseline = async_updates off;
  // +Async = async on, compaction off; +Compaction = both on.
  bool async_updates = true;
  bool compaction = true;

  // Readdir-page packing: pages fill to mtu_bytes of entry wire data
  // (DirEntryWireSize per entry); mtu_entries is only the hard entry-count
  // cap. BulkInsert chunks requests by the same budget.
  int mtu_bytes = 1400;
  int mtu_entries = 128;
  // §7.5: proactive push once an MTU worth of change-log entries
  // accumulates (also the per-PushReq batch bound). Kept at the historical
  // 29-entry MTU estimate — page packing moved to mtu_bytes, but the push
  // path still batches by entry count.
  int push_mtu_entries = 29;
  // Batch cross-server pushes per (owner, MTU): one PushReq carries every
  // ready change-log headed to the same owner. Off = one directory per
  // packet (the pre-batching behavior, kept for the A/B bench).
  bool batch_pushes = true;
  sim::SimTime push_idle_timeout = sim::Microseconds(300);
  // Base delay before re-trying a failed push to an owner; doubles per
  // consecutive failure up to push_retry_max_backoff_shift doublings.
  sim::SimTime push_retry_backoff = sim::Microseconds(200);
  int push_retry_max_backoff_shift = 6;
  // Rename-vs-removal disambiguation (§5.2 rename race): the source leg of a
  // directory rename installs a moved tombstone so in-flight change-log
  // entries keyed to the old fingerprint are re-keyed to the new owner
  // instead of trimmed. Off = pre-tombstone behavior (rename-away
  // indistinguishable from removal; raced entries are lost) — A/B lever for
  // the rename-race tests.
  bool moved_rebind = true;
  // Moved-tombstone retention. This is the change-log retention horizon for
  // rebinds: a tombstone must outlive any source's unacked backlog for the
  // old fingerprint (pushes retry with backoff capped at
  // push_retry_backoff << push_retry_max_backoff_shift, so seconds dwarf the
  // retry cadence). After expiry a late push for the moved directory
  // degrades to the removed-directory trim. Expired lazily on lookup.
  sim::SimTime moved_tombstone_ttl = sim::Seconds(10);
  sim::SimTime owner_quiet_period = sim::Microseconds(400);
  sim::SimTime insert_ack_timeout = sim::Microseconds(150);
  int insert_max_attempts = 100;
  sim::SimTime agg_reply_timeout = sim::Milliseconds(2);
  int agg_max_retries = 12;
  sim::SimTime responder_session_timeout = sim::Milliseconds(20);
  // Directory-stream sessions (MetadataService v2): inactivity TTL of an
  // OpenDir snapshot at the owner. A page call after expiry gets
  // kStaleHandle and the client re-opens. The watchdog reuses the responder-
  // session pattern; the TTL must dwarf the per-page RPC cadence (~µs).
  sim::SimTime dir_session_ttl = sim::Milliseconds(20);
  // A/B lever: pin an O(directory) snapshot at OpenDir (the PR-5 behavior)
  // instead of the default KV-cursor sessions (O(1) open, per-page bounded
  // seek, live POSIX-readdir semantics for concurrent mutations).
  bool snapshot_sessions = false;
  // Table-wide session cap: past it, the least-recently-used session is
  // evicted (kStaleHandle on its next page) so a crash-looping scanner
  // abandoning handles cannot bloat the owner. 0 = uncapped.
  size_t max_dir_sessions = 4096;
  uint32_t rename_coordinator = 0;  // server index of the rename coordinator
  // In-switch metadata read cache (requires TrackerMode::kSwitch — the cache
  // lives in the same data plane as the dirty set). Off by default; the
  // bench/test A/B lever. When on, owners piggyback installs on lookup/stat
  // replies and evict cached fingerprints before every committing write.
  bool switch_cache = false;
  // Writer's pre-commit evict round trip: retry cadence and budget (mirrors
  // the dirty-set insert-ack machinery). On budget exhaustion the write
  // proceeds — the evict executed at the switch unless the switch itself is
  // down, in which case the cache died with it.
  sim::SimTime cache_evict_timeout = sim::Microseconds(150);
  int cache_evict_max_attempts = 100;
  // Adaptive push pacing: when an owner's in-flight apply backlog exceeds
  // push_busy_threshold sections, its PushResp carries a retry_after hint of
  // push_pace_hint and source pushers defer their next non-urgent drain by
  // that long. 0 threshold disables the hint.
  int push_busy_threshold = 8;
  sim::SimTime push_pace_hint = sim::Microseconds(200);
  // Geo-replication identity: which cluster this server belongs to. Part of
  // every LWW commit stamp (the tie-break after the timestamp), so two
  // clusters stamping the same simulated instant still resolve
  // deterministically and identically everywhere.
  uint32_t cluster_id = 0;
  // Per-entry commit-timestamp last-writer-wins at the apply: each dirent
  // write keeps a stamp row ("w" + dir + name) and an incoming entry whose
  // stamp is older no-ops. Closes the phantom-dirent old-era/new-era
  // ordering gap (a rebound old-era entry can arrive after a same-name
  // new-era entry; seq dedup lanes are per-fingerprint and cannot see the
  // inversion) and is the conflict resolver for WAN replays. Off restores
  // the pre-LWW arrival-order behavior (A/B lever for the regression test).
  bool lww_resolve = true;
};

// Context the cluster provides to servers and clients.
class ClusterContext {
 public:
  virtual ~ClusterContext() = default;
  virtual const HashRing& ring() const = 0;
  virtual net::NodeId ServerNode(uint32_t server_index) const = 0;
  virtual uint32_t ServerCount() const = 0;
};

// One dirent mutation as it travels between clusters (src/wan/): the
// directory's identity (ids and fingerprints of preloaded shared-namespace
// directories derive from path hashes, so they are identical in every
// cluster), the origin coordinates that make up the LWW stamp, and the
// change-log entry itself. Defined in core so SwitchServer can apply one
// without depending on the WAN tier.
struct WanEntry {
  InodeId dir;
  psw::Fingerprint dir_fp = 0;   // the directory's own fingerprint (owner key)
  uint32_t origin_cluster = 0;
  uint32_t src_server = 0;
  ChangeLogEntry entry;
};

// Where an owner publishes every committed dirent apply (the WAN
// replicator's capture hook; see Aggregation::ApplyEntries). Null when the
// cluster has no WAN tier. Only locally-originated applies flow through the
// sink — WAN replays use SwitchServer::EnqueueWanApply, which bypasses it,
// so batches cannot echo between clusters.
class WanSink {
 public:
  virtual ~WanSink() = default;
  virtual void OnEntryApplied(const WanEntry& entry) = 0;
};

// Shared tally of one WAN batch's fan-out across owner shard lanes
// (src/wan/applier.cc joins on it). `failed` counts entries a dead server
// incarnation dropped — the applier refuses to ack the batch so the origin
// re-ships it after recovery (per-entry LWW + idempotent redo absorb the
// overlap). `dropped` counts directories unknown at this cluster (outside
// the shared namespace, or removed here) — those ARE acked; re-shipping
// cannot make them applicable.
struct WanApplyResult {
  int applied = 0;
  int conflicts = 0;
  int dropped = 0;
  int failed = 0;
};

// Durable per-server state: survives crashes (owned by the cluster).
struct DurableState {
  kv::Wal wal;
  // Dirty-set remove sequence (§5.4.1). Monotonic across crashes, else the
  // switch would treat all post-recovery removes as stale.
  uint64_t remove_seq = 0;
  uint64_t id_counter = 1;  // inode-id generation must not repeat
};

// Protocol counters surfaced to tests and benches.
struct ServerStats {
  uint64_t ops = 0;
  uint64_t aggregations = 0;
  uint64_t agg_retries = 0;
  uint64_t entries_applied = 0;
  uint64_t entries_deduped = 0;
  // Push-path counters. pushes_sent counts PushReq packets whose RPC round
  // trip succeeded; failures and owner-local applies are counted separately
  // (they never hit the network).
  uint64_t pushes_sent = 0;
  uint64_t pushes_local = 0;
  uint64_t push_failures = 0;
  uint64_t push_dirs_sent = 0;     // PerDir sections across sent packets
  uint64_t push_entries_sent = 0;  // entries across sent packets
  uint64_t pushes_received = 0;
  // moved_fp rebinds (§5.2 rename race): change-logs re-keyed to a renamed
  // directory's new fingerprint instead of trimmed, counted at the source
  // performing the rebind. pushes_rebound/entries_rebound come from kMoved
  // PushResp sections; agg_rebinds/agg_entries_rebound from AggDone moved
  // rows (the aggregation-path equivalent).
  uint64_t pushes_rebound = 0;
  uint64_t entries_rebound = 0;
  uint64_t agg_rebinds = 0;
  uint64_t agg_entries_rebound = 0;
  uint64_t fallbacks = 0;
  uint64_t stale_cache_bounces = 0;
  uint64_t wal_replayed = 0;
  // MetadataService v2 (directory streams, batched lookups, setattr).
  uint64_t dir_opens = 0;
  uint64_t dir_pages = 0;           // ReaddirPage calls served
  uint64_t dir_page_entries = 0;    // entries across served pages
  uint64_t dir_sessions_expired = 0;  // watchdog/lazy TTL expiries
  uint64_t dir_sessions_evicted = 0;  // LRU evictions past max_dir_sessions
  uint64_t stale_handle_bounces = 0;  // pages against dead sessions
  uint64_t batch_stats = 0;           // BatchStat requests served
  uint64_t batch_stat_targets = 0;    // targets across those requests
  uint64_t batch_stat_dirs = 0;       // BatchStatDir requests served
  uint64_t setattrs = 0;
  uint64_t bulk_inserts = 0;          // BulkInsert requests served
  uint64_t bulk_insert_entries = 0;   // entries across those requests
  // Dirty-set inserts whose ack retry budget ran out (the entry stays in the
  // change-log; the push path repairs tracker visibility).
  uint64_t insert_exhausted = 0;
  // In-switch metadata read cache (owner side): installs piggybacked on read
  // replies, pre-commit evict round trips, and evict retry budgets that ran
  // out (the write proceeded; see ServerConfig::cache_evict_max_attempts).
  uint64_t cache_installs = 0;
  uint64_t cache_evicts = 0;
  uint64_t cache_evict_exhausted = 0;
  // Adaptive push pacing: PushResps stamped with a retry_after hint (owner
  // side) and drains deferred by a received hint (source side).
  uint64_t push_pace_hints = 0;
  uint64_t push_paced_drains = 0;
  // Sharded owner: push-batch sections whose (dir, src) idempotency token
  // was already committed (duplicate delivery no-oped and re-acked), and
  // cross-shard handoff tasks enqueued (rename legs, hard-link splits).
  uint64_t push_batches_deduped = 0;
  uint64_t cross_shard_handoffs = 0;
  // WAN replication (src/wan/). Shipped/catch-up counters are bumped by the
  // cluster-level replicator (registered into Cluster::TotalStats as an
  // extra stats block); applied/conflict counters are bumped by the owner
  // server applying (or LWW-dropping) an entry. wan_conflicts_lww also
  // counts LOCAL cross-era LWW drops (the phantom-dirent resolver) — the
  // same comparison at the same apply point.
  uint64_t wan_batches_shipped = 0;
  uint64_t wan_entries_applied = 0;
  uint64_t wan_conflicts_lww = 0;
  uint64_t wan_catchup_replays = 0;
  // WAN entries dropped because the directory is unknown at this cluster
  // (outside the shared replicated namespace, or removed here).
  uint64_t wan_entries_dropped = 0;
};

// Member-wise counter sum — the one place that enumerates every ServerStats
// field (Cluster::TotalStats, the geo harness). Defined in cluster.cc.
void AccumulateServerStats(ServerStats& total, const ServerStats& add);

// Volatile state of one server incarnation (wiped on crash). Its containers
// are mutated by concurrently-interleaved coroutine handlers, so references,
// pointers, and iterators into them must not live across a co_await
// (sfs-lint rule borrow-across-suspend).
//
// Most hot-path state now lives on the fingerprint-group shards
// (src/core/shard.h): lock tables, change logs, pushers, agg sessions, dir
// sessions, and the KV slices. What remains here is genuinely server-global:
// crash/incarnation state, the invalidation list, hwm dedup lanes and moved
// tombstones (consulted across rename-era fingerprints), rename transaction
// locks, switch-cache bookkeeping, and the push idempotency tokens.
struct SFS_SUSPENSION_SHARED ServerVolatile {
  // Relocated to shard.h (the shards own them); aliases keep module
  // signatures readable.
  using AggWait = core::AggWait;
  using AggSession = core::AggSession;
  using OwnerPusher = core::OwnerPusher;

  struct OpWait {  // insert-ack / overflow-fallback wait (§5.2.1 step 7)
    bool acked = false;
    bool fallback_done = false;
    std::shared_ptr<sim::OneShot<int>> slot;  // armed per attempt
  };
  struct CacheEvictWait {  // switch-cache evict round trip (pre-commit)
    bool acked = false;
    std::shared_ptr<sim::OneShot<int>> slot;  // armed per attempt
  };
  // Moved tombstone (§5.2 rename race): installed by the source leg of a
  // directory rename in place of a bare dir-index removal. A push or
  // aggregation that finds the directory gone consults this map: a hit turns
  // the ack-at-max-seq trim into a kMoved rebind verdict (new fingerprint,
  // new owner); a miss keeps the removed-directory trim. `epoch` is the
  // rename's commit time at this server — newest wins on install, so a
  // replayed or duplicated commit of an earlier rename cannot clobber the
  // tombstone of a later one and re-key logs onto a superseded location.
  struct MovedDir {
    psw::Fingerprint old_fp = 0;  // the fingerprint this tombstone closed
    psw::Fingerprint new_fp = 0;
    uint32_t new_owner = 0;
    uint64_t epoch = 0;
    int64_t installed_at = 0;  // lazy TTL expiry base (moved_tombstone_ttl)
    // Pre-rename applied high-water marks, (source server, seq), snapshotted
    // from `hwm` when the tombstone is installed. kMoved verdicts hand each
    // source its row so the already-applied prefix (it migrated with the
    // entry list) is trimmed, not re-keyed. The live hwm rows are erased at
    // install: rebound logs are renumbered from 1 at the new owner, so a
    // directory that later returns to this server must start a fresh
    // dedup era — stale marks would silently swallow its new entries.
    std::vector<std::pair<uint32_t, uint64_t>> applied;

    // Marks are meaningful only in the numbering of the era this tombstone
    // closed: a server that hosted the directory under several fingerprints
    // across a rename chain keeps one (newest) tombstone, and handing its
    // marks to a push keyed to an older fingerprint would trim entries of a
    // numbering they never measured.
    uint64_t AppliedFor(uint32_t src, psw::Fingerprint section_fp) const {
      if (section_fp != old_fp) {
        return 0;
      }
      for (const auto& [s, seq] : applied) {
        if (s == src) {
          return seq;
        }
      }
      return 0;
    }
  };

  // `shard_count` is clamped to [1, kMaxShards]; dir-session ids only have
  // kShardIdBits of routing space. Each shard's lock tables carry a
  // process-unique discipline tag, and each shard's DirSessionTable is
  // seeded with the incarnation's creation time so a handle minted before a
  // crash cannot alias a post-recovery session.
  SFS_SHARD_ROUTER ServerVolatile(sim::Simulator* sim, int shard_count = 1)
      : kv(&shards),
        push_token_counter(static_cast<uint64_t>(sim->Now()) + 1) {
    if (shard_count < 1) {
      shard_count = 1;
    }
    if (shard_count > static_cast<int>(kMaxShards)) {
      shard_count = static_cast<int>(kMaxShards);
    }
    const int64_t epoch = sim->Now();
    shards.reserve(static_cast<size_t>(shard_count));
    for (int i = 0; i < shard_count; ++i) {
      shards.push_back(std::make_unique<ServerShard>(sim, i, epoch));
    }
  }

  bool dead = false;
  // The fingerprint-group shards. Never index directly outside the router
  // helpers below (sfs-lint rule cross-shard-direct): resolve a shard at op
  // entry via ShardFor/ShardForKey/SessionShard and route cross-shard work
  // through the handoff lane (EnqueueShardTask).
  SFS_SHARD_PRIVATE std::vector<std::unique_ptr<ServerShard>> shards;
  // Key-routing view over the shards' KV slices (point ops route, short
  // prefixes gather) — the one sanctioned way to reach another shard's rows.
  ShardedKv kv;

  SFS_SHARD_ROUTER size_t num_shards() const { return shards.size(); }
  SFS_SHARD_ROUTER ServerShard& ShardAt(size_t i) { return *shards[i]; }
  SFS_SHARD_ROUTER const ServerShard& ShardAt(size_t i) const {
    return *shards[i];
  }
  SFS_SHARD_ROUTER ServerShard& ShardFor(psw::Fingerprint fp) {
    return *shards[ShardIndexForFp(fp, shards.size())];
  }
  SFS_SHARD_ROUTER const ServerShard& ShardFor(psw::Fingerprint fp) const {
    return *shards[ShardIndexForFp(fp, shards.size())];
  }
  SFS_SHARD_ROUTER ServerShard& ShardForKey(std::string_view key) {
    return *shards[ShardIndexForKey(key, shards.size())];
  }
  // Shard that minted a directory-stream session id (the id's low bits; a
  // garbage handle clamps to a valid shard and misses in its table).
  SFS_SHARD_ROUTER ServerShard& SessionShard(uint64_t session_id) {
    return *shards[(session_id & (kMaxShards - 1)) % shards.size()];
  }

  InvalidationList inval;
  // Owner-side applied high-water marks: (dir, src server, fingerprint the
  // entries were logged under) -> seq. The fingerprint is part of the key
  // because each (fp, dir) source log numbers independently: after a rename,
  // a source may hold both a kept old-fingerprint log (monotonic straggler
  // seqs) and a fresh new-fingerprint log restarting at 1, and a shared lane
  // would let one era's resolved-prefix bridge swallow the other era's
  // entries as duplicates.
  std::map<std::tuple<InodeId, uint32_t, psw::Fingerprint>, uint64_t> hwm;
  // Old-owner-side moved tombstones, keyed by the renamed directory's id.
  std::map<InodeId, MovedDir> moved_dirs;
  std::unordered_map<uint64_t, std::shared_ptr<OpWait>> op_waits;
  // Rename participant state: txn id -> held locks.
  std::unordered_map<uint64_t, std::vector<LockTable::Handle>> txn_locks;
  // In-switch read cache bookkeeping (owner side). cached_fps: fingerprints
  // this owner has (possibly) installed at the switch — the pre-commit evict
  // is skipped for fingerprints never installed. Volatile by design: a crash
  // forgets it, and recovery flushes the switch cache of everything this
  // owner could have installed (Cluster::RecoverServer).
  std::unordered_set<psw::Fingerprint> cached_fps;
  std::unordered_map<uint64_t, std::shared_ptr<CacheEvictWait>>
      cache_evict_waits;  // key: CacheHeader::token
  // Owner-side in-flight PushReq sections being applied (adaptive pacing
  // busy signal).
  int inflight_push_sections = 0;
  uint64_t op_token_counter = 1;
  uint64_t txn_counter = 1;

  // Push-batch idempotency (owner side, §5.3 loss recovery): the highest
  // (dir, src) batch token whose section committed, plus the acked seq it
  // reported — a duplicated delivery (RPC retransmit after a lost ack,
  // rebind replay) no-ops and re-acks instead of re-running the apply.
  // Tokens are minted monotonically per source (push_token_counter below is
  // seeded from sim time, so it stays monotonic across source crashes) and
  // persisted in the owner's kWalEntryApply records, so recovery rebuilds
  // this map and a pre-crash duplicate still dedups post-recovery.
  // `fp` scopes the state to the fingerprint era the token was committed
  // under: after a rename, old- and new-era sections for the same (dir,
  // src) travel different shard pipes and can arrive out of mint order — a
  // cross-era token must never dedup (nor re-ack into) the other era's
  // sections, whose acked_seq lives in a different numbering.
  struct PushTokenState {
    uint64_t token = 0;
    uint64_t acked_seq = 0;
    psw::Fingerprint fp = 0;
  };
  std::map<std::pair<InodeId, uint32_t>, PushTokenState> push_tokens;
  // Source side: next batch token to mint (per-server, shared by all
  // (dir, src) lanes — per-lane monotonicity is all the owner checks).
  uint64_t push_token_counter = 1;

  // The per-directory change-log within `fp`'s group, created on demand
  // (routes to fp's shard; call sites are shard-agnostic).
  ChangeLog& GetChangeLog(psw::Fingerprint fp, const InodeId& dir) {
    return ShardFor(fp).GetChangeLog(fp, dir);
  }

  // Resolves a directory id to its inode key + fingerprint via the "d" index.
  bool LookupDirIndex(const InodeId& dir, std::string* inode_key,
                      psw::Fingerprint* fp) const {
    auto value = kv.Get(DirIndexKey(dir));
    if (!value.has_value()) {
      return false;
    }
    DecodeDirIndex(*value, inode_key, fp);
    return true;
  }

  // Installs (or refreshes) a moved tombstone. The epoch check makes install
  // order irrelevant: a replayed commit of an earlier rename cannot displace
  // the tombstone of a later one.
  void InstallMovedTombstone(const InodeId& dir, const MovedDir& tomb) {
    auto& slot = moved_dirs[dir];
    if (slot.epoch <= tomb.epoch) {
      slot = tomb;
    }
  }

  // Live tombstone for `dir`, or nullptr. Expired tombstones (older than
  // `ttl`) are erased on the way — after that a late push for the moved
  // directory degrades to the removed-directory trim.
  const MovedDir* FindMovedTombstone(const InodeId& dir, int64_t now,
                                     sim::SimTime ttl) {
    auto it = moved_dirs.find(dir);
    if (it == moved_dirs.end()) {
      return nullptr;
    }
    if (now - it->second.installed_at > ttl) {
      moved_dirs.erase(it);
      return nullptr;
    }
    return &it->second;
  }

  // Snapshot-and-erase of ALL of a directory's applied lanes (rename era
  // hygiene); returns only the rows of `fp`'s lane — the marks a moved
  // tombstone serves (MovedDir::AppliedFor is scoped to that fingerprint).
  std::vector<std::pair<uint32_t, uint64_t>> TakeHwmRows(const InodeId& dir,
                                                         psw::Fingerprint fp) {
    std::vector<std::pair<uint32_t, uint64_t>> rows;
    auto it = hwm.lower_bound({dir, 0, 0});
    while (it != hwm.end() && std::get<0>(it->first) == dir) {
      if (std::get<2>(it->first) == fp) {
        rows.emplace_back(std::get<1>(it->first), it->second);
      }
      it = hwm.erase(it);
    }
    return rows;
  }
};
using VolPtr = std::shared_ptr<ServerVolatile>;

// ---- shard run queues (defined in shard.cc) --------------------------------

enum class ShardLane {
  kApply,    // serial per-shard drain (push-batch section applies)
  kHandoff,  // cross-shard handoff (rename legs, hard-link splits): FIFO
             // dispatch, each task its own chain
};

// Enqueues `fn` on shard `shard`'s lane and ensures a drain is running.
// Tasks are retained (and still drained) across `v->dead` — the thunks
// themselves no-op on a dead incarnation, and draining keeps their captured
// completion state (JoinCounters, response slots) from leaking.
//
// `fn` must be a PLAIN (non-coroutine) callable that builds its Task from a
// coroutine function taking the state as parameters (copied into the
// frame). A capturing coroutine lambda would dangle: lambda captures live
// in the lambda object, not the coroutine frame, and the handoff lane
// destroys `fn` right after spawning the task.
void EnqueueShardTask(VolPtr v, size_t shard, ShardLane lane,
                      std::function<sim::Task<void>()> fn);

// Queued-but-undrained tasks across all lanes of all shards (the
// simulator's run-while-work-pending predicate for this server).
size_t PendingShardTasks(const ServerVolatile& v);

// Re-spawns drains for any lane with queued work (the simulator's kick
// hook: work enqueued from outside a running event needs a fresh drainer).
void KickShardDrains(VolPtr v);

// Non-owning view over one server's fixed parts, shared by all protocol
// modules. All pointers outlive the modules (SwitchServer owns both).
struct ServerContext {
  sim::Simulator* sim = nullptr;
  net::Network* net = nullptr;
  ClusterContext* cluster = nullptr;
  DurableState* durable = nullptr;
  const sim::CostModel* costs = nullptr;
  const ServerConfig* config = nullptr;
  sim::CpuPool* cpu = nullptr;
  net::RpcEndpoint* rpc = nullptr;
  ServerStats* stats = nullptr;
  // The cluster's dirty-set tracker (src/tracker/): where "directory X has
  // scattered deferred updates" is recorded, queried, and removed.
  tracker::DirtyTracker* dirty_tracker = nullptr;
  // WAN capture hook (null without a WAN tier; see WanSink above).
  WanSink* wan_sink = nullptr;

  int64_t Now() const { return sim->Now(); }
  net::NodeId node_id() const { return rpc->id(); }
  uint32_t OwnerOf(psw::Fingerprint fp) const {
    return cluster->ring().Owner(fp);
  }
  bool IsOwner(psw::Fingerprint fp) const {
    return OwnerOf(fp) == config->index;
  }

  void RespondStatus(const net::Packet& p, StatusCode code) const {
    rpc->Respond(p, net::MakeMsg<MetaResp>(code));
  }
  void RespondStale(const net::Packet& p, std::vector<InodeId> stale) const {
    auto resp = std::make_shared<MetaResp>(StatusCode::kStaleCache);
    resp->stale_ids = std::move(stale);
    rpc->Respond(p, resp);
  }
};

// Narrow interface the rename and hard-link modules use to publish a deferred
// parent update through the configured tracker: marks the directory scattered
// (switch insert / dedicated tracker / owner set) and waits for the ack or
// the overflow fallback. Implemented by SwitchServer, which owns the insert
// retry machinery. `client_req` non-null: the insert-ack multicast carries
// `client_resp` to the client; null: internal update, acks return to us only.
class UpdatePublisher {
 public:
  virtual ~UpdatePublisher() = default;
  virtual sim::Task<void> PublishUpdate(const net::Packet* client_req,
                                        VolPtr v, psw::Fingerprint fp,
                                        const InodeId& dir,
                                        net::MsgPtr client_resp) = 0;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_SERVER_CONTEXT_H_
