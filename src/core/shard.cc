#include "src/core/shard.h"

#include <algorithm>

#include "src/core/server_context.h"

namespace switchfs::core {

int NextShardDomainTag() {
  static int next = 0;
  return next++;
}

// ---- ShardedKv -------------------------------------------------------------

const kv::KvStore& ShardedKv::Route(std::string_view key) const {
  return (*shards_)[ShardIndexForKey(key, shards_->size())]->kv;
}

kv::KvStore& ShardedKv::Route(std::string_view key) {
  return (*shards_)[ShardIndexForKey(key, shards_->size())]->kv;
}

std::optional<std::string> ShardedKv::Get(const std::string& key) const {
  return Route(key).Get(key);
}

bool ShardedKv::Contains(const std::string& key) const {
  return Route(key).Contains(key);
}

void ShardedKv::Put(const std::string& key, std::string value) {
  Route(key).Put(key, std::move(value));
}

bool ShardedKv::Delete(const std::string& key) { return Route(key).Delete(key); }

void ShardedKv::ScanPrefix(
    std::string_view prefix,
    const std::function<bool(const std::string&, const std::string&)>& visit)
    const {
  if (shards_->size() == 1 || KeyIsRoutable(prefix)) {
    Route(prefix).ScanPrefix(prefix, visit);
    return;
  }
  // Gather: the prefix does not pin a shard (recovery's "d" sweep,
  // migration's "i" sweep). Collect from every shard, then visit in global
  // key order with the usual early-stop semantics. Copies are fine — these
  // are cold control-plane scans, and the snapshot also makes the visitor
  // free to mutate the store.
  std::vector<std::pair<std::string, std::string>> rows;
  for (const auto& shard : *shards_) {
    shard->kv.ScanPrefix(prefix,
                         [&rows](const std::string& k, const std::string& v) {
                           rows.emplace_back(k, v);
                           return true;
                         });
  }
  std::sort(rows.begin(), rows.end());
  for (const auto& [k, v] : rows) {
    if (!visit(k, v)) {
      return;
    }
  }
}

size_t ShardedKv::CountPrefix(std::string_view prefix) const {
  if (shards_->size() == 1 || KeyIsRoutable(prefix)) {
    return Route(prefix).CountPrefix(prefix);
  }
  size_t n = 0;
  for (const auto& shard : *shards_) {
    n += shard->kv.CountPrefix(prefix);
  }
  return n;
}

void ShardedKv::ScanFrom(
    std::string_view prefix, const std::string& after,
    const std::function<bool(const std::string&, const std::string&)>& visit)
    const {
  if (shards_->size() == 1 || KeyIsRoutable(prefix)) {
    Route(prefix).ScanFrom(prefix, after, visit);
    return;
  }
  std::vector<std::pair<std::string, std::string>> rows;
  for (const auto& shard : *shards_) {
    shard->kv.ScanFrom(prefix, after,
                       [&rows](const std::string& k, const std::string& v) {
                         rows.emplace_back(k, v);
                         return true;
                       });
  }
  std::sort(rows.begin(), rows.end());
  for (const auto& [k, v] : rows) {
    if (!visit(k, v)) {
      return;
    }
  }
}

size_t ShardedKv::size() const {
  size_t n = 0;
  for (const auto& shard : *shards_) {
    n += shard->kv.size();
  }
  return n;
}

void ShardedKv::Clear() {
  for (const auto& shard : *shards_) {
    shard->kv.Clear();
  }
}

uint64_t ShardedKv::gets() const {
  uint64_t n = 0;
  for (const auto& shard : *shards_) {
    n += shard->kv.gets();
  }
  return n;
}

uint64_t ShardedKv::puts() const {
  uint64_t n = 0;
  for (const auto& shard : *shards_) {
    n += shard->kv.puts();
  }
  return n;
}

uint64_t ShardedKv::deletes() const {
  uint64_t n = 0;
  for (const auto& shard : *shards_) {
    n += shard->kv.deletes();
  }
  return n;
}

// ---- shard run queues ------------------------------------------------------

namespace {

// Serial apply drainer: one in flight per shard. Runs to queue exhaustion
// and keeps draining even when the incarnation died — thunks no-op on dead
// themselves, and abandoning queued thunks would leak their captured
// completion state (JoinCounters, RPC response slots).
sim::Task<void> DrainApplyLane(VolPtr v, size_t shard) {
  for (;;) {
    if (v->ShardAt(shard).apply_queue.empty()) {
      v->ShardAt(shard).apply_draining = false;
      co_return;
    }
    auto fn = std::move(v->ShardAt(shard).apply_queue.front());
    v->ShardAt(shard).apply_queue.pop_front();
    co_await fn();
  }
}

// Handoff dispatch: FIFO start order, but each task is its own detached
// chain (a rename leg parks its lock in txn_locks and waits for the commit
// leg — a serial drainer would deadlock against itself).
void DispatchHandoffs(VolPtr v, size_t shard) {
  while (!v->ShardAt(shard).handoff_queue.empty()) {
    auto fn = std::move(v->ShardAt(shard).handoff_queue.front());
    v->ShardAt(shard).handoff_queue.pop_front();
    sim::Spawn(fn());
  }
}

}  // namespace

void EnqueueShardTask(VolPtr v, size_t shard, ShardLane lane,
                      std::function<sim::Task<void>()> fn) {
  if (lane == ShardLane::kApply) {
    v->ShardAt(shard).apply_queue.push_back(std::move(fn));
    if (!v->ShardAt(shard).apply_draining) {
      v->ShardAt(shard).apply_draining = true;
      sim::Spawn(DrainApplyLane(v, shard));
    }
    return;
  }
  v->ShardAt(shard).handoff_queue.push_back(std::move(fn));
  DispatchHandoffs(v, shard);
}

size_t PendingShardTasks(const ServerVolatile& v) {
  size_t n = 0;
  for (size_t i = 0; i < v.num_shards(); ++i) {
    n += v.ShardAt(i).apply_queue.size();
    n += v.ShardAt(i).handoff_queue.size();
  }
  return n;
}

void KickShardDrains(VolPtr v) {
  for (size_t i = 0; i < v->num_shards(); ++i) {
    if (!v->ShardAt(i).apply_queue.empty() && !v->ShardAt(i).apply_draining) {
      v->ShardAt(i).apply_draining = true;
      sim::Spawn(DrainApplyLane(v, i));
    }
    DispatchHandoffs(v, i);
  }
}

}  // namespace switchfs::core
