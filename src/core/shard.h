// Per-server shards keyed by fingerprint group (multi-core owners). One
// ServerVolatile used to be a single bundle of shared maps, so the simulated
// k-core CpuPool bought nothing on the hot apply path: every handler
// serialized on the same lock tables and the same owner pusher. This header
// splits the per-incarnation state into kMaxShards-bounded ServerShard
// slices, each owning
//   * its slice of the KV namespace (ShardedKv routes keys),
//   * its inode/change-log/agg-gate/append lock tables,
//   * its change logs and per-owner pushers,
//   * its directory-stream sessions (ids embed the shard index), and
//   * two run-queue lanes drained by the CpuPool cores: the serial `apply`
//     lane (push-batch section applies — one in flight per shard, so shard
//     state is single-writer) and the `handoff` lane (cross-shard work
//     another shard routed here: rename legs, hard-link splits).
//
// Routing: a fingerprint group fp lives on shard fp % num_shards. Inode keys
// "i" + pid + name route by their (pid, name) fingerprint — the same hash
// that picked the owner server — so a directory's inode row, its entry-list
// group locks, and its change-log aggregation all land on one shard.
// Id-keyed auxiliary rows ("e"/"d"/"a"/"c" + id) route by the id's hash.
// Short prefixes (recovery's "d" sweep, migration's "i" sweep) gather across
// shards in key order.
//
// Discipline: modules resolve a shard at op entry through the
// ServerVolatile router helpers (SFS_SHARD_ROUTER) and never index the
// shard vector directly (SFS_SHARD_PRIVATE; sfs-lint rule
// cross-shard-direct). The two sanctioned cross-shard flows — rename legs
// and hard-link splits — arrive as enqueued handoff-lane tasks, and the
// lock-level counterpart (a chain mixing same-class locks from two shards)
// is enforced at runtime by the DisciplineChecker's cross-shard-lock rule.
#ifndef SRC_CORE_SHARD_H_
#define SRC_CORE_SHARD_H_

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/annotations.h"
#include "src/core/change_log.h"
#include "src/core/dir_session.h"
#include "src/core/keys.h"
#include "src/core/lock_table.h"
#include "src/core/messages.h"
#include "src/core/schema.h"
#include "src/core/types.h"
#include "src/kv/kvstore.h"
#include "src/pswitch/fingerprint.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace switchfs::core {

// Decodes the 32-byte inode id embedded at offset 1 of a routable KV key
// ("e"/"d"/"a"/"c" + id..., or the pid half of "i" + pid + name).
inline InodeId IdFromKeyBytes(std::string_view key) {
  InodeId id;
  for (int i = 0; i < 4; ++i) {
    std::memcpy(&id.w[i], key.data() + 1 + i * 8, sizeof(uint64_t));
  }
  return id;
}

// Fingerprint of an inode key "i" + pid(32B) + name: the same (pid, name)
// hash that picked the key's owner server picks its shard.
inline psw::Fingerprint FingerprintFromInodeKey(std::string_view key) {
  return FingerprintOf(IdFromKeyBytes(key), key.substr(33));
}

inline size_t ShardIndexForFp(psw::Fingerprint fp, size_t num_shards) {
  return num_shards <= 1 ? 0 : static_cast<size_t>(fp % num_shards);
}

inline size_t ShardIndexForId(const InodeId& id, size_t num_shards) {
  return num_shards <= 1 ? 0 : static_cast<size_t>(id.Hash64() % num_shards);
}

// A key (or scan prefix) that pins down one shard: the schema prefixes whose
// first 33 bytes carry a full inode id. Anything shorter ("i" alone, the "d"
// recovery sweep) is a gather across every shard.
inline bool KeyIsRoutable(std::string_view key) {
  if (key.size() < 33) {
    return false;
  }
  const char p = key[0];
  return p == 'i' || p == 'e' || p == 'd' || p == 'a' || p == 'c';
}

inline size_t ShardIndexForKey(std::string_view key, size_t num_shards) {
  if (num_shards <= 1 || !KeyIsRoutable(key)) {
    return 0;
  }
  if (key[0] == 'i') {
    return ShardIndexForFp(FingerprintFromInodeKey(key), num_shards);
  }
  return ShardIndexForId(IdFromKeyBytes(key), num_shards);
}

// Process-unique discipline tag for a shard's lock tables, so the
// cross-shard-lock rule distinguishes shards across servers and across
// incarnations of the same server (tags are never reused).
int NextShardDomainTag();

// Aggregation initiator state (one in flight per fingerprint group).
struct AggWait {
  uint64_t seq = 0;
  std::set<uint32_t> pending;  // server indices yet to reply for `seq`
  std::vector<AggEntries::PerDir> collected;
  std::vector<uint32_t> collected_src;       // parallel to `collected`
  std::shared_ptr<sim::OneShot<bool>> slot;  // armed per attempt
};

// Aggregation responder state (holds the snapshot-side change-log lock).
struct AggSession {
  uint64_t seq = 0;
  LockTable::Handle lock;
  int64_t started_at = 0;
};

// Source-side per-owner pusher (§5.3 batching): one outbound queue per
// (shard, owner server). `ready` holds the (fp, dir) change-logs awaiting a
// push; the drain coroutine coalesces them into MTU-bounded PushReq batches.
struct OwnerPusher {
  std::set<std::pair<psw::Fingerprint, InodeId>> ready;
  bool draining = false;           // single-flight drain per (shard, owner)
  bool idle_timer_armed = false;   // quiet-log flush timer
  bool retry_timer_armed = false;  // failure re-arm (owner unreachable)
  uint64_t activity = 0;  // bumped per enqueue; the idle timer watches it
  int backoff_shift = 0;  // consecutive failed drains (caps the retry delay)
  // Adaptive pacing (PushResp::retry_after): MTU-triggered drains are
  // deferred to the idle timer until this deadline so a busy owner's apply
  // queue can breathe (§5.3 variant).
  int64_t pace_until = 0;
};

// One fingerprint-group shard of a server incarnation. Like ServerVolatile
// it is mutated by interleaved coroutine handlers: references, pointers, and
// iterators into its containers must not live across a co_await (sfs-lint
// rule borrow-across-suspend) — always re-route through
// ServerVolatile::ShardFor/ShardAt after a suspension.
struct SFS_SUSPENSION_SHARED ServerShard {
  ServerShard(sim::Simulator* sim, int index, int64_t epoch)
      : index(index),
        discipline_tag(NextShardDomainTag()),
        inode_locks(sim, sim::LockClass::kInode, discipline_tag),
        changelog_locks(sim, sim::LockClass::kChangelogGroup, discipline_tag),
        agg_gates(sim, sim::LockClass::kAggGate, discipline_tag),
        changelog_append_locks(sim, sim::LockClass::kAppend, discipline_tag),
        dir_sessions(epoch, index) {}
  ServerShard(const ServerShard&) = delete;
  ServerShard& operator=(const ServerShard&) = delete;

  const int index;
  const int discipline_tag;

  // This shard's slice of the KV namespace (accessed through ShardedKv).
  kv::KvStore kv;

  LockTable inode_locks;      // key: inode key (fp-routed to this shard)
  LockTable changelog_locks;  // key: FpKey(fp) — one per fingerprint group
  LockTable agg_gates;        // key: FpKey(fp) — owner-side read/agg gate
  // Per-change-log append mutex (key: ClAppendKey(fp, dir)), innermost in
  // the lock order: held only across {seq capture -> WAL append -> Restore}
  // (or a rebind's renumbering DrainInto) with no other lock acquired
  // inside. Every appender takes it — including the rename/link commit legs
  // that cannot take the fp-group lock — so a captured seq can no longer go
  // stale against a concurrent append or rebind renumber of the same log.
  SFS_LOCK_INNERMOST LockTable changelog_append_locks;

  // Directory-stream sessions minted by this shard (ids carry `index` in
  // their low bits). The LRU cap and eviction counter are per-shard, so one
  // hot directory's scanners cannot evict every other shard's cursors.
  DirSessionTable dir_sessions;
  uint64_t dir_sessions_evicted = 0;

  std::unordered_map<psw::Fingerprint, std::map<InodeId, ChangeLog>>
      changelogs;
  std::unordered_map<psw::Fingerprint, std::shared_ptr<AggWait>> agg_waits;
  std::unordered_map<psw::Fingerprint, AggSession> agg_sessions;
  // Owner-side: completion time of the last aggregation per fingerprint.
  std::unordered_map<psw::Fingerprint, int64_t> last_agg_complete;
  // Owner-side: last push arrival per fingerprint (quiet-period timer).
  std::unordered_map<psw::Fingerprint, int64_t> last_push;
  std::unordered_set<psw::Fingerprint> quiet_timer_armed;
  // Owner-server tracker mode: local scattered set.
  std::unordered_set<psw::Fingerprint> owner_scattered;
  std::map<uint32_t, OwnerPusher> pushers;  // key: owner server index

  // Run-queue lanes (drained via EnqueueShardTask / KickShardDrains).
  //
  // apply lane: push-batch section applies, executed strictly one at a time
  // per shard by a single drainer coroutine — the shard's single-writer
  // guarantee for its kv slice and hwm lanes under a storm of concurrent
  // PushReqs. The drainer charges the CpuPool, so k shards on k cores give
  // the intra-server scaling of Fig 2(d).
  std::deque<std::function<sim::Task<void>()>> apply_queue;
  bool apply_draining = false;
  // handoff lane: cross-shard work routed here by another shard's handler
  // (rename legs, hard-link splits). Dispatch is FIFO but not serialized —
  // each task is spawned as its own chain; the shard's lock tables take it
  // from there.
  std::deque<std::function<sim::Task<void>()>> handoff_queue;

  // The per-directory change-log within `fp`'s group, created on demand.
  // Only meaningful on the shard owning `fp` (ServerVolatile::GetChangeLog
  // routes).
  ChangeLog& GetChangeLog(psw::Fingerprint fp, const InodeId& dir) {
    auto& per_dir = changelogs[fp];
    auto it = per_dir.find(dir);
    if (it == per_dir.end()) {
      it = per_dir.emplace(dir, ChangeLog(dir, fp)).first;
    }
    return it->second;
  }
};

// KvStore-shaped router over the shard vector: point reads/writes route by
// key, scans with a routable prefix delegate to one shard, short-prefix
// scans gather across shards in global key order. This is the sanctioned
// way for protocol code to touch another shard's rows (e.g. an apply
// writing the id-routed "e" entry rows of a directory whose inode row is
// fp-routed elsewhere): storage routing stays inside the router; the lock
// and queue state of a shard is never reached this way.
class SFS_SUSPENSION_SHARED ShardedKv {
 public:
  explicit ShardedKv(std::vector<std::unique_ptr<ServerShard>>* shards)
      : shards_(shards) {}

  std::optional<std::string> Get(const std::string& key) const;
  bool Contains(const std::string& key) const;
  void Put(const std::string& key, std::string value);
  // Returns true if the key existed.
  bool Delete(const std::string& key);

  // Visits all (key, value) pairs whose key starts with `prefix`, in global
  // key order. Visitor returns false to stop early.
  void ScanPrefix(std::string_view prefix,
                  const std::function<bool(const std::string&,
                                           const std::string&)>& visit) const;
  size_t CountPrefix(std::string_view prefix) const;

  // Cursor variant of ScanPrefix: visits pairs with key strictly greater
  // than `after` (still restricted to `prefix`), in key order.
  void ScanFrom(std::string_view prefix, const std::string& after,
                const std::function<bool(const std::string&,
                                         const std::string&)>& visit) const;

  size_t size() const;
  void Clear();

  uint64_t gets() const;
  uint64_t puts() const;
  uint64_t deletes() const;

 private:
  const kv::KvStore& Route(std::string_view key) const;
  kv::KvStore& Route(std::string_view key);

  std::vector<std::unique_ptr<ServerShard>>* shards_;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_SHARD_H_
