// Dedicated dirty-set tracker server (paper §7.3.3, Fig 15): a regular DPDK
// server maintaining the same set-associative dirty set the switch would.
// Unlike the switch, every operation costs server CPU (per-packet processing
// at ~1 us on 12 cores caps it near 11 Mops/s) and an extra RTT, which is
// exactly the trade-off Fig 15 quantifies.
#ifndef SRC_CORE_TRACKER_H_
#define SRC_CORE_TRACKER_H_

#include "src/core/messages.h"
#include "src/net/rpc.h"
#include "src/pswitch/dirty_set.h"
#include "src/sim/costs.h"
#include "src/sim/cpu.h"

namespace switchfs::core {

class TrackerServer {
 public:
  TrackerServer(sim::Simulator* sim, net::Network* net,
                const sim::CostModel* costs)
      : sim_(sim),
        costs_(costs),
        cpu_(sim, costs->tracker_cores),
        rpc_(sim, net),
        dirty_set_(psw::DirtySetConfig{}) {
    rpc_.SetRequestHandler([this](net::Packet p) {
      sim::Spawn(Handle(std::move(p)));
    });
  }

  net::NodeId node_id() const { return rpc_.id(); }
  psw::DirtySet& dirty_set() { return dirty_set_; }
  void SetForceInsertOverflow(bool v) { force_overflow_ = v; }

  uint64_t ops() const { return ops_; }

 private:
  sim::Task<void> Handle(net::Packet p) {
    const auto* op = net::MsgAs<TrackerOp>(p.body);
    if (op == nullptr) {
      co_return;
    }
    ops_++;
    co_await cpu_.Run(costs_->tracker_packet_cost);
    auto resp = std::make_shared<TrackerResp>();
    switch (op->op) {
      case net::DsOp::kQuery:
        resp->present = dirty_set_.Query(op->fp);
        resp->ok = true;
        break;
      case net::DsOp::kInsert:
        resp->ok = !force_overflow_ && dirty_set_.Insert(op->fp);
        break;
      case net::DsOp::kRemove:
        resp->ok = dirty_set_.Remove(op->fp, op->origin_server, op->remove_seq);
        break;
      default:
        break;
    }
    rpc_.Respond(p, resp);
  }

  sim::Simulator* sim_;
  const sim::CostModel* costs_;
  sim::CpuPool cpu_;
  net::RpcEndpoint rpc_;
  psw::DirtySet dirty_set_;
  bool force_overflow_ = false;
  uint64_t ops_ = 0;
};

}  // namespace switchfs::core

#endif  // SRC_CORE_TRACKER_H_
