// Core metadata types shared by SwitchFS and the baseline systems: 256-bit
// inode/directory identifiers (paper §4.3), attribute blocks, directory
// entries, and operation tags.
#ifndef SRC_CORE_TYPES_H_
#define SRC_CORE_TYPES_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "src/common/bytes.h"
#include "src/common/hash.h"

namespace switchfs::core {

// 256-bit identifier, unique per directory/file for the filesystem lifetime
// (paper: "each directory has a 256-bit id").
struct InodeId {
  std::array<uint64_t, 4> w{0, 0, 0, 0};

  bool operator==(const InodeId& o) const { return w == o.w; }
  bool operator!=(const InodeId& o) const { return w != o.w; }
  bool operator<(const InodeId& o) const { return w < o.w; }

  bool IsZero() const { return w[0] == 0 && w[1] == 0 && w[2] == 0 && w[3] == 0; }

  uint64_t Hash64() const {
    return HashCombine(HashCombine(w[0], w[1]), HashCombine(w[2], w[3]));
  }

  void EncodeTo(Encoder& enc) const {
    for (uint64_t v : w) {
      enc.PutU64(v);
    }
  }
  static InodeId DecodeFrom(Decoder& dec) {
    InodeId id;
    for (auto& v : id.w) {
      v = dec.GetU64();
    }
    return id;
  }

  // Compact string form used inside KV keys.
  std::string ToKeyBytes() const {
    std::string out(32, '\0');
    for (int i = 0; i < 4; ++i) {
      std::memcpy(out.data() + i * 8, &w[i], 8);
    }
    return out;
  }

  std::string ToShortString() const {
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%08llx",
                  static_cast<unsigned long long>(w[0] ^ w[1] ^ w[2] ^ w[3]));
    return buf;
  }
};

// The root directory has a well-known id.
inline InodeId RootId() {
  InodeId id;
  id.w[3] = 1;
  return id;
}

struct InodeIdHash {
  size_t operator()(const InodeId& id) const {
    return static_cast<size_t>(id.Hash64());
  }
};

enum class FileType : uint8_t {
  kFile = 0,
  kDirectory = 1,
  // Hard-link support (§5.5): the inode value is a *reference* pointing at a
  // shared attributes object. For a reference Attr: `id` is the attributes
  // object's file id and `size` holds the index of the server storing it.
  kReference = 2,
};

// Attribute block (Tab 3: timestamps, permissions, size, ...).
struct Attr {
  InodeId id;
  FileType type = FileType::kFile;
  uint32_t mode = 0644;
  uint64_t size = 0;      // files: bytes; directories: entry count
  int64_t ctime = 0;
  int64_t mtime = 0;
  int64_t atime = 0;
  uint32_t nlink = 1;

  bool is_dir() const { return type == FileType::kDirectory; }

  void EncodeTo(Encoder& enc) const {
    id.EncodeTo(enc);
    enc.PutU8(static_cast<uint8_t>(type));
    enc.PutU32(mode);
    enc.PutU64(size);
    enc.PutI64(ctime);
    enc.PutI64(mtime);
    enc.PutI64(atime);
    enc.PutU32(nlink);
  }
  static Attr DecodeFrom(Decoder& dec) {
    Attr a;
    a.id = InodeId::DecodeFrom(dec);
    a.type = static_cast<FileType>(dec.GetU8());
    a.mode = dec.GetU32();
    a.size = dec.GetU64();
    a.ctime = dec.GetI64();
    a.mtime = dec.GetI64();
    a.atime = dec.GetI64();
    a.nlink = dec.GetU32();
    return a;
  }

  std::string Encode() const {
    Encoder enc;
    EncodeTo(enc);
    return std::move(enc).Take();
  }
  static Attr Decode(const std::string& data) {
    Decoder dec(data);
    return DecodeFrom(dec);
  }
};

struct DirEntry {
  std::string name;
  FileType type = FileType::kFile;
};

// Metadata operation kinds, used in change-log entries and workload specs.
enum class OpType : uint8_t {
  kCreate = 0,
  kUnlink = 1,
  kMkdir = 2,
  kRmdir = 3,
  kRename = 4,
  kStat = 5,
  kStatDir = 6,
  kReaddir = 7,
  kOpen = 8,
  kClose = 9,
  kLookup = 10,
  kChmod = 11,
  kLink = 12,
  // MetadataService v2 (directory handles, batched lookups, attr deltas).
  kOpenDir = 13,
  kReaddirPage = 14,
  kCloseDir = 15,
  kBatchStat = 16,
  kSetAttr = 17,
  kBulkInsert = 18,
  // BatchStat flavor whose targets are directories: the server runs the
  // per-target agg-gate dance (dirty check + aggregation) before each stat.
  kBatchStatDir = 19,
};

const char* OpTypeName(OpType op);

// Partial attribute update (SetAttr, chmod/utimens-class). Unset fields keep
// their current value; mtime/atime move only forward (concurrent deferred
// entry applies use max-merge, so a backward explicit stamp would be
// silently re-overwritten anyway).
struct AttrDelta {
  bool set_mode = false;
  uint32_t mode = 0644;
  bool set_times = false;
  int64_t mtime = 0;
  int64_t atime = 0;

  bool empty() const { return !set_mode && !set_times; }
  // Applies the delta in place; returns true if anything changed.
  bool ApplyTo(Attr& attr, int64_t now) const {
    bool changed = false;
    if (set_mode && attr.mode != mode) {
      attr.mode = mode;
      changed = true;
    }
    if (set_times) {
      if (mtime > attr.mtime) {
        attr.mtime = mtime;
        changed = true;
      }
      if (atime > attr.atime) {
        attr.atime = atime;
        changed = true;
      }
    }
    if (changed) {
      attr.ctime = now;
    }
    return changed;
  }
};

}  // namespace switchfs::core

#endif  // SRC_CORE_TYPES_H_
