// WAL record payloads (paper §5.4.2, §A.1). Three record families cover
// everything recovery needs:
//   * OpCommit    — a committed local operation: the inode mutation plus (for
//                   double-inode ops) the change-log entry for the remote
//                   parent. Redo rebuilds the KV store; un-"applied" records
//                   also rebuild the change-log backlog.
//   * EntryApply  — the owner persisted a received change-log entry before
//                   applying it to the directory inode (§5.2.2 step 7). The
//                   record carries the *resulting* directory size/mtime so
//                   redo is idempotent, and advances the per-(dir, source)
//                   high-water mark that dedups re-sent entries (§A.1).
//   * DirCommit   — mkdir/rmdir of a directory inode owned by this server,
//                   and rename-transaction inode moves.
#ifndef SRC_CORE_WAL_RECORDS_H_
#define SRC_CORE_WAL_RECORDS_H_

#include <cstdint>
#include <string>

#include "src/common/bytes.h"
#include "src/core/change_log.h"
#include "src/core/types.h"
#include "src/pswitch/fingerprint.h"

namespace switchfs::core {

enum WalRecordType : uint32_t {
  kWalOpCommit = 1,
  kWalEntryApply = 2,
  kWalBulkCommit = 3,
  kWalWanApply = 4,
};

struct OpCommitRecord {
  OpType op = OpType::kCreate;
  // Inode mutation on this server ("" key means none).
  std::string inode_key;
  std::string inode_value;  // empty => delete
  bool inode_delete = false;
  // Deferred update to a remote parent directory (empty dir => none).
  InodeId parent_dir;
  psw::Fingerprint parent_fp = 0;
  ChangeLogEntry entry;
  bool has_entry = false;
  // Directory-rename source leg: the moved tombstone (dir id -> new
  // fingerprint/owner at rename epoch) rides the commit record so WAL replay
  // re-installs it — an old-owner crash must not turn rename-away back into
  // indistinguishable-from-removed for in-flight change-logs.
  bool has_moved_tombstone = false;
  InodeId moved_dir;
  psw::Fingerprint moved_old_fp = 0;
  psw::Fingerprint moved_new_fp = 0;
  uint32_t moved_new_owner = 0;
  uint64_t moved_epoch = 0;
  // Pre-rename applied marks per source (the tombstone's `applied` snapshot;
  // the live hwm rows are erased at install — rename era boundary).
  std::vector<std::pair<uint32_t, uint64_t>> moved_applied;
  // Directory-rename destination leg: the migrated entry list. The put-leg
  // commit installs these rows in the KV store; without them in the record a
  // new-owner crash replays the directory's attr (size included) but loses
  // every migrated dirent.
  std::vector<DirEntry> install_entries;

  std::string Encode() const {
    Encoder enc;
    enc.PutU8(static_cast<uint8_t>(op));
    enc.PutString(inode_key);
    enc.PutString(inode_value);
    enc.PutBool(inode_delete);
    parent_dir.EncodeTo(enc);
    enc.PutU64(parent_fp);
    enc.PutBool(has_entry);
    if (has_entry) {
      entry.EncodeTo(enc);
    }
    enc.PutBool(has_moved_tombstone);
    if (has_moved_tombstone) {
      moved_dir.EncodeTo(enc);
      enc.PutU64(moved_old_fp);
      enc.PutU64(moved_new_fp);
      enc.PutU32(moved_new_owner);
      enc.PutU64(moved_epoch);
      enc.PutU32(static_cast<uint32_t>(moved_applied.size()));
      for (const auto& [src, seq] : moved_applied) {
        enc.PutU32(src);
        enc.PutU64(seq);
      }
    }
    enc.PutU32(static_cast<uint32_t>(install_entries.size()));
    for (const DirEntry& e : install_entries) {
      enc.PutString(e.name);
      enc.PutU8(static_cast<uint8_t>(e.type));
    }
    return std::move(enc).Take();
  }

  static OpCommitRecord Decode(const std::string& data) {
    Decoder dec(data);
    OpCommitRecord r;
    r.op = static_cast<OpType>(dec.GetU8());
    r.inode_key = dec.GetString();
    r.inode_value = dec.GetString();
    r.inode_delete = dec.GetBool();
    r.parent_dir = InodeId::DecodeFrom(dec);
    r.parent_fp = dec.GetU64();
    r.has_entry = dec.GetBool();
    if (r.has_entry) {
      r.entry = ChangeLogEntry::DecodeFrom(dec);
    }
    r.has_moved_tombstone = dec.GetBool();
    if (r.has_moved_tombstone) {
      r.moved_dir = InodeId::DecodeFrom(dec);
      r.moved_old_fp = dec.GetU64();
      r.moved_new_fp = dec.GetU64();
      r.moved_new_owner = dec.GetU32();
      r.moved_epoch = dec.GetU64();
      const uint32_t rows = dec.GetU32();
      r.moved_applied.reserve(rows);
      for (uint32_t i = 0; i < rows; ++i) {
        const uint32_t src = dec.GetU32();
        const uint64_t seq = dec.GetU64();
        r.moved_applied.emplace_back(src, seq);
      }
    }
    const uint32_t installs = dec.GetU32();
    r.install_entries.reserve(installs);
    for (uint32_t i = 0; i < installs; ++i) {
      DirEntry e;
      e.name = dec.GetString();
      e.type = static_cast<FileType>(dec.GetU8());
      r.install_entries.push_back(std::move(e));
    }
    return r;
  }
};

// One WAL-committed multi-entry append (BulkInsert): every created inode
// row plus its deferred parent-update entry, sharing a single record (and
// so a single simulated persistence round). All items target the same
// parent directory / fingerprint group. On replay, only the FINAL item's
// change-log entry is stamped with the record's LSN: entries ack in FIFO
// order, so the record may be marked applied only once its last entry is
// acked — a partial ack followed by a crash re-pushes the whole batch and
// the owner's high-water mark dedups the already-applied prefix.
struct BulkCommitRecord {
  InodeId parent_dir;
  psw::Fingerprint parent_fp = 0;
  struct Item {
    std::string inode_key;
    std::string inode_value;
    ChangeLogEntry entry;
  };
  std::vector<Item> items;

  std::string Encode() const {
    Encoder enc;
    parent_dir.EncodeTo(enc);
    enc.PutU64(parent_fp);
    enc.PutU32(static_cast<uint32_t>(items.size()));
    for (const Item& it : items) {
      enc.PutString(it.inode_key);
      enc.PutString(it.inode_value);
      it.entry.EncodeTo(enc);
    }
    return std::move(enc).Take();
  }

  static BulkCommitRecord Decode(const std::string& data) {
    Decoder dec(data);
    BulkCommitRecord r;
    r.parent_dir = InodeId::DecodeFrom(dec);
    r.parent_fp = dec.GetU64();
    const uint32_t n = dec.GetU32();
    r.items.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Item it;
      it.inode_key = dec.GetString();
      it.inode_value = dec.GetString();
      it.entry = ChangeLogEntry::DecodeFrom(dec);
      r.items.push_back(std::move(it));
    }
    return r;
  }
};

struct EntryApplyRecord {
  InodeId dir;
  uint32_t src_server = 0;
  psw::Fingerprint fp = 0;  // dedup lane (see ServerVolatile::hwm)
  ChangeLogEntry entry;
  // Resulting absolute directory attributes (idempotent redo).
  uint64_t result_size = 0;
  int64_t result_mtime = 0;
  // Push-batch idempotency token of the section this apply belonged to
  // (0 = untokened path). Replay rebuilds ServerVolatile::push_tokens from
  // it, so a duplicate delivered after the owner's crash still no-ops.
  uint64_t batch_token = 0;

  std::string Encode() const {
    Encoder enc;
    dir.EncodeTo(enc);
    enc.PutU32(src_server);
    enc.PutU64(fp);
    entry.EncodeTo(enc);
    enc.PutU64(result_size);
    enc.PutI64(result_mtime);
    enc.PutU64(batch_token);
    return std::move(enc).Take();
  }

  static EntryApplyRecord Decode(const std::string& data) {
    Decoder dec(data);
    EntryApplyRecord r;
    r.dir = InodeId::DecodeFrom(dec);
    r.src_server = dec.GetU32();
    r.fp = dec.GetU64();
    r.entry = ChangeLogEntry::DecodeFrom(dec);
    r.result_size = dec.GetU64();
    r.result_mtime = dec.GetI64();
    r.batch_token = dec.GetU64();
    return r;
  }
};

// One WAN-replicated dirent apply persisted at the receiving owner before it
// mutates the directory (the geo-replication analog of EntryApply). The
// record carries the entry's origin identity — the LWW stamp rebuilds from
// it on replay — and the resulting absolute directory attributes so redo is
// idempotent. Records exist only for entries that WON their LWW comparison
// at runtime, so replay applies them unconditionally in WAL order (a
// later-logged record always carries a stamp >= every earlier record for the
// same name; see WanApplier).
struct WanApplyRecord {
  uint32_t origin_cluster = 0;
  InodeId dir;
  uint32_t src_server = 0;
  ChangeLogEntry entry;
  // Resulting absolute directory attributes (idempotent redo).
  uint64_t result_size = 0;
  int64_t result_mtime = 0;

  std::string Encode() const {
    Encoder enc;
    enc.PutU32(origin_cluster);
    dir.EncodeTo(enc);
    enc.PutU32(src_server);
    entry.EncodeTo(enc);
    enc.PutU64(result_size);
    enc.PutI64(result_mtime);
    return std::move(enc).Take();
  }

  static WanApplyRecord Decode(const std::string& data) {
    Decoder dec(data);
    WanApplyRecord r;
    r.origin_cluster = dec.GetU32();
    r.dir = InodeId::DecodeFrom(dec);
    r.src_server = dec.GetU32();
    r.entry = ChangeLogEntry::DecodeFrom(dec);
    r.result_size = dec.GetU64();
    r.result_mtime = dec.GetI64();
    return r;
  }
};

}  // namespace switchfs::core

#endif  // SRC_CORE_WAL_RECORDS_H_
