// WAL record payloads (paper §5.4.2, §A.1). Three record families cover
// everything recovery needs:
//   * OpCommit    — a committed local operation: the inode mutation plus (for
//                   double-inode ops) the change-log entry for the remote
//                   parent. Redo rebuilds the KV store; un-"applied" records
//                   also rebuild the change-log backlog.
//   * EntryApply  — the owner persisted a received change-log entry before
//                   applying it to the directory inode (§5.2.2 step 7). The
//                   record carries the *resulting* directory size/mtime so
//                   redo is idempotent, and advances the per-(dir, source)
//                   high-water mark that dedups re-sent entries (§A.1).
//   * DirCommit   — mkdir/rmdir of a directory inode owned by this server,
//                   and rename-transaction inode moves.
#ifndef SRC_CORE_WAL_RECORDS_H_
#define SRC_CORE_WAL_RECORDS_H_

#include <cstdint>
#include <string>

#include "src/common/bytes.h"
#include "src/core/change_log.h"
#include "src/core/types.h"
#include "src/pswitch/fingerprint.h"

namespace switchfs::core {

enum WalRecordType : uint32_t {
  kWalOpCommit = 1,
  kWalEntryApply = 2,
};

struct OpCommitRecord {
  OpType op = OpType::kCreate;
  // Inode mutation on this server ("" key means none).
  std::string inode_key;
  std::string inode_value;  // empty => delete
  bool inode_delete = false;
  // Deferred update to a remote parent directory (empty dir => none).
  InodeId parent_dir;
  psw::Fingerprint parent_fp = 0;
  ChangeLogEntry entry;
  bool has_entry = false;

  std::string Encode() const {
    Encoder enc;
    enc.PutU8(static_cast<uint8_t>(op));
    enc.PutString(inode_key);
    enc.PutString(inode_value);
    enc.PutBool(inode_delete);
    parent_dir.EncodeTo(enc);
    enc.PutU64(parent_fp);
    enc.PutBool(has_entry);
    if (has_entry) {
      entry.EncodeTo(enc);
    }
    return std::move(enc).Take();
  }

  static OpCommitRecord Decode(const std::string& data) {
    Decoder dec(data);
    OpCommitRecord r;
    r.op = static_cast<OpType>(dec.GetU8());
    r.inode_key = dec.GetString();
    r.inode_value = dec.GetString();
    r.inode_delete = dec.GetBool();
    r.parent_dir = InodeId::DecodeFrom(dec);
    r.parent_fp = dec.GetU64();
    r.has_entry = dec.GetBool();
    if (r.has_entry) {
      r.entry = ChangeLogEntry::DecodeFrom(dec);
    }
    return r;
  }
};

struct EntryApplyRecord {
  InodeId dir;
  uint32_t src_server = 0;
  ChangeLogEntry entry;
  // Resulting absolute directory attributes (idempotent redo).
  uint64_t result_size = 0;
  int64_t result_mtime = 0;

  std::string Encode() const {
    Encoder enc;
    dir.EncodeTo(enc);
    enc.PutU32(src_server);
    entry.EncodeTo(enc);
    enc.PutU64(result_size);
    enc.PutI64(result_mtime);
    return std::move(enc).Take();
  }

  static EntryApplyRecord Decode(const std::string& data) {
    Decoder dec(data);
    EntryApplyRecord r;
    r.dir = InodeId::DecodeFrom(dec);
    r.src_server = dec.GetU32();
    r.entry = ChangeLogEntry::DecodeFrom(dec);
    r.result_size = dec.GetU64();
    r.result_mtime = dec.GetI64();
    return r;
  }
};

}  // namespace switchfs::core

#endif  // SRC_CORE_WAL_RECORDS_H_
