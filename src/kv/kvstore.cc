#include "src/kv/kvstore.h"

namespace switchfs::kv {

std::optional<std::string> KvStore::Get(const std::string& key) const {
  gets_++;
  auto it = map_.find(key);
  if (it == map_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool KvStore::Contains(const std::string& key) const {
  gets_++;
  return map_.count(key) > 0;
}

void KvStore::Put(const std::string& key, std::string value) {
  puts_++;
  map_[key] = std::move(value);
}

bool KvStore::Delete(const std::string& key) {
  deletes_++;
  return map_.erase(key) > 0;
}

void KvStore::ScanPrefix(
    std::string_view prefix,
    const std::function<bool(const std::string&, const std::string&)>& visit)
    const {
  for (auto it = map_.lower_bound(std::string(prefix)); it != map_.end();
       ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    if (!visit(it->first, it->second)) {
      break;
    }
  }
}

void KvStore::ScanFrom(
    std::string_view prefix, const std::string& after,
    const std::function<bool(const std::string&, const std::string&)>& visit)
    const {
  auto it = after.empty() ? map_.lower_bound(std::string(prefix))
                          : map_.upper_bound(after);
  for (; it != map_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    if (!visit(it->first, it->second)) {
      break;
    }
  }
}

size_t KvStore::CountPrefix(std::string_view prefix) const {
  size_t n = 0;
  ScanPrefix(prefix, [&n](const std::string&, const std::string&) {
    ++n;
    return true;
  });
  return n;
}

}  // namespace switchfs::kv
