// In-memory ordered key-value store standing in for RocksDB (paper §4.2:
// "a server stores its metadata in a key-value store (i.e., RocksDB)").
// The store is a plain data structure; callers charge the corresponding CPU
// service times (CostModel::kv_*) before mutating it, and concurrency
// control lives above it (per-key lock tables on the metadata servers), as
// it does in the real systems.
//
// Contents are volatile: a server crash wipes the store and recovery rebuilds
// it from the WAL (§5.4.2).
#ifndef SRC_KV_KVSTORE_H_
#define SRC_KV_KVSTORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/annotations.h"

namespace switchfs::kv {

class SFS_SUSPENSION_SHARED KvStore {
 public:
  std::optional<std::string> Get(const std::string& key) const;
  bool Contains(const std::string& key) const;
  void Put(const std::string& key, std::string value);
  // Returns true if the key existed.
  bool Delete(const std::string& key);

  // Visits all (key, value) pairs whose key starts with `prefix`, in key
  // order. Visitor returns false to stop early.
  void ScanPrefix(std::string_view prefix,
                  const std::function<bool(const std::string&,
                                           const std::string&)>& visit) const;
  size_t CountPrefix(std::string_view prefix) const;

  // Cursor variant of ScanPrefix: visits pairs with key strictly greater
  // than `after` (still restricted to `prefix`), in key order. `after` need
  // not exist — a deleted cursor key simply seeks to its successor. An empty
  // `after` scans from the start of the prefix.
  void ScanFrom(std::string_view prefix, const std::string& after,
                const std::function<bool(const std::string&,
                                         const std::string&)>& visit) const;

  size_t size() const { return map_.size(); }
  void Clear() { map_.clear(); }

  uint64_t gets() const { return gets_; }
  uint64_t puts() const { return puts_; }
  uint64_t deletes() const { return deletes_; }

 private:
  std::map<std::string, std::string> map_;
  mutable uint64_t gets_ = 0;
  uint64_t puts_ = 0;
  uint64_t deletes_ = 0;
};

}  // namespace switchfs::kv

#endif  // SRC_KV_KVSTORE_H_
