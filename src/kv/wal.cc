#include "src/kv/wal.h"

#include <cassert>

namespace switchfs::kv {

uint64_t Wal::Append(uint32_t type, std::string payload) {
  const uint64_t lsn = next_lsn_++;
  records_.push_back(WalRecord{lsn, type, std::move(payload), false});
  return lsn;
}

void Wal::MarkApplied(uint64_t lsn) {
  if (lsn < first_lsn_) {
    return;  // already truncated
  }
  const size_t idx = static_cast<size_t>(lsn - first_lsn_);
  if (idx < records_.size()) {
    assert(records_[idx].lsn == lsn);
    records_[idx].applied = true;
  }
}

size_t Wal::unapplied_count() const {
  size_t n = 0;
  for (const WalRecord& r : records_) {
    if (!r.applied) {
      ++n;
    }
  }
  return n;
}

void Wal::TruncateUpTo(uint64_t up_to) {
  while (!records_.empty() && records_.front().lsn <= up_to) {
    records_.pop_front();
    first_lsn_++;
  }
}

}  // namespace switchfs::kv
