// Write-ahead log (paper §4.2, §5.4.2). The WAL is the only durable
// structure on a metadata server: it records committed operations and
// received change-log entries, and marks which asynchronous updates have
// been applied remotely so that recovery can rebuild exactly the volatile
// state that was lost (key-value store + un-applied change-log entries).
//
// Durability model: the Wal object is owned by the cluster's DurableStorage
// (it survives simulated crashes); everything else on a server is wiped.
#ifndef SRC_KV_WAL_H_
#define SRC_KV_WAL_H_

#include <cstdint>
#include <deque>
#include <string>

namespace switchfs::kv {

struct WalRecord {
  uint64_t lsn = 0;
  uint32_t type = 0;      // interpreted by the owner (core/wal_records.h)
  std::string payload;    // encoded record body
  bool applied = false;   // "asynchronous update has been applied remotely"
};

class Wal {
 public:
  // Appends a committed record; returns its LSN. The simulated persistence
  // latency is charged by the caller (CostModel::wal_append).
  uint64_t Append(uint32_t type, std::string payload);

  // Marks the record with `lsn` as applied (§5.2.2 step 9b). No-op if the
  // record was truncated.
  void MarkApplied(uint64_t lsn);

  // Recovery iteration in LSN order.
  const std::deque<WalRecord>& records() const { return records_; }
  size_t record_count() const { return records_.size(); }
  size_t unapplied_count() const;

  // Drops all records with lsn <= up_to (checkpointing).
  void TruncateUpTo(uint64_t up_to);

  uint64_t next_lsn() const { return next_lsn_; }

 private:
  uint64_t next_lsn_ = 1;
  uint64_t first_lsn_ = 1;
  std::deque<WalRecord> records_;
};

}  // namespace switchfs::kv

#endif  // SRC_KV_WAL_H_
