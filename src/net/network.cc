#include "src/net/network.h"

#include <cassert>
#include <utility>

namespace switchfs::net {

std::vector<Packet> PlainSwitch::Process(Packet p) {
  std::vector<Packet> out;
  if (p.dst == kServerMulticast) {
    out.reserve(server_group_.size());
    for (NodeId s : server_group_) {
      if (s == p.ds.origin) {
        continue;
      }
      Packet copy = p;
      copy.dst = s;
      out.push_back(std::move(copy));
    }
  } else {
    out.push_back(std::move(p));
  }
  return out;
}

Network::Network(sim::Simulator* sim, const sim::CostModel* costs, uint64_t seed)
    : sim_(sim), costs_(costs), rng_(seed) {}

NodeId Network::Register(Node* node) {
  nodes_.push_back(node);
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::Rebind(NodeId id, Node* node) {
  assert(id < nodes_.size());
  nodes_[id] = node;
}

sim::SimTime Network::HopDelay() {
  sim::SimTime d = costs_->link_latency;
  if (costs_->link_jitter > 0) {
    d += static_cast<sim::SimTime>(
        rng_.NextExponential(static_cast<double>(costs_->link_jitter)));
  }
  if (faults_.reorder_jitter > 0) {
    d += static_cast<sim::SimTime>(
        rng_.NextBelow(static_cast<uint64_t>(faults_.reorder_jitter) + 1));
  }
  return d;
}

bool Network::ApplyFaults(const Packet& p, std::function<void(Packet)> redeliver) {
  if (faults_.duplicate_probability > 0.0 &&
      rng_.NextBool(faults_.duplicate_probability)) {
    stats_.packets_duplicated++;
    Packet dup = p;
    sim_->ScheduleAfter(HopDelay(), [redeliver, dup = std::move(dup)]() mutable {
      redeliver(std::move(dup));
    });
  }
  if (faults_.loss_probability > 0.0 && rng_.NextBool(faults_.loss_probability)) {
    stats_.packets_dropped++;
    return false;
  }
  return true;
}

void Network::Send(Packet p) {
  assert(switch_ != nullptr && "Network requires a switch behaviour");
  stats_.packets_sent++;
  // Hop 1: host -> switch.
  auto to_switch = [this](Packet pkt) {
    if (switch_down_) {
      stats_.packets_dropped++;
      return;
    }
    stats_.switch_traversals++;
    std::vector<Packet> out = switch_->Process(std::move(pkt));
    const sim::SimTime pipeline = switch_->PipelineDelay();
    for (Packet& o : out) {
      // Hop 2: switch -> host (per multicast leg, independently faulted).
      if (!ApplyFaults(o, [this](Packet q) { DeliverToHost(std::move(q)); })) {
        continue;
      }
      sim_->ScheduleAfter(pipeline + HopDelay(),
                          [this, o = std::move(o)]() mutable {
                            DeliverToHost(std::move(o));
                          });
    }
  };
  if (!ApplyFaults(p, to_switch)) {
    return;
  }
  sim_->ScheduleAfter(HopDelay(), [to_switch, p = std::move(p)]() mutable {
    to_switch(std::move(p));
  });
}

void Network::DeliverToHost(Packet p) {
  if (p.dst >= nodes_.size() || nodes_[p.dst] == nullptr) {
    stats_.packets_dropped++;
    return;
  }
  stats_.packets_delivered++;
  nodes_[p.dst]->HandlePacket(std::move(p));
}

}  // namespace switchfs::net
