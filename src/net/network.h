// Simulated single-rack datacenter network: every host hangs off one
// top-of-rack switch, and every packet traverses it (paper §6.4, single-rack
// deployment). The switch behaviour is pluggable: the SwitchFS programmable
// data plane (src/pswitch) or a plain L2 switch for the baselines.
//
// Fault injection (loss, duplication, reorder jitter) is applied per physical
// hop with a seeded RNG, exercising the §5.4.1 fault-handling machinery.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/random.h"
#include "src/net/packet.h"
#include "src/sim/costs.h"
#include "src/sim/simulator.h"

namespace switchfs::net {

class Node {
 public:
  virtual ~Node() = default;
  virtual void HandlePacket(Packet p) = 0;
};

// What the ToR switch does to each packet. Implementations must be pure
// packet-in/packets-out functions of switch state (no time dependence); the
// Network layers on the pipeline delay.
class SwitchBehavior {
 public:
  virtual ~SwitchBehavior() = default;
  // Returns the packets to emit (possibly rewritten / multicast-expanded).
  virtual std::vector<Packet> Process(Packet p) = 0;
  // Per-packet traversal delay of this switch.
  virtual sim::SimTime PipelineDelay() const = 0;
};

// Default L2 behaviour: forward by destination, expand server-multicast.
class PlainSwitch : public SwitchBehavior {
 public:
  explicit PlainSwitch(sim::SimTime delay) : delay_(delay) {}

  void SetServerGroup(std::vector<NodeId> servers) {
    server_group_ = std::move(servers);
  }

  std::vector<Packet> Process(Packet p) override;
  sim::SimTime PipelineDelay() const override { return delay_; }

 private:
  sim::SimTime delay_;
  std::vector<NodeId> server_group_;
};

class Network {
 public:
  struct FaultConfig {
    double loss_probability = 0.0;
    double duplicate_probability = 0.0;
    sim::SimTime reorder_jitter = 0;  // extra uniform delay in [0, jitter]
  };

  struct Stats {
    uint64_t packets_sent = 0;
    uint64_t packets_delivered = 0;
    uint64_t packets_dropped = 0;
    uint64_t packets_duplicated = 0;
    uint64_t switch_traversals = 0;
  };

  Network(sim::Simulator* sim, const sim::CostModel* costs, uint64_t seed);

  NodeId Register(Node* node);
  // Replaces the node behind an id (used by crash/recovery to swap a server
  // incarnation without invalidating addresses held by peers).
  void Rebind(NodeId id, Node* node);

  void SetSwitch(SwitchBehavior* behavior) { switch_ = behavior; }
  void SetFaults(const FaultConfig& cfg) { faults_ = cfg; }
  // While true, the switch drops everything (switch reboot window, §7.7).
  void SetSwitchDown(bool down) { switch_down_ = down; }

  // Injects a packet from `p.src`; it traverses the switch and is delivered
  // to the destination(s) chosen by the switch behaviour.
  void Send(Packet p);

  const Stats& stats() const { return stats_; }
  sim::Simulator* simulator() const { return sim_; }
  const sim::CostModel* costs() const { return costs_; }

 private:
  void DeliverToHost(Packet p);
  sim::SimTime HopDelay();
  // Returns false if the packet is dropped; schedules a duplicate if drawn.
  bool ApplyFaults(const Packet& p, std::function<void(Packet)> redeliver);

  sim::Simulator* sim_;
  const sim::CostModel* costs_;
  SwitchBehavior* switch_ = nullptr;
  std::vector<Node*> nodes_;
  FaultConfig faults_;
  bool switch_down_ = false;
  Rng rng_;
  Stats stats_;
};

}  // namespace switchfs::net

#endif  // SRC_NET_NETWORK_H_
