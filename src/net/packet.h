// Packet and message vocabulary for the simulated UDP fabric.
//
// Mirrors the SwitchFS packet format (paper §6.1, Fig 9): an Ethernet/IP/UDP
// envelope (modeled by src/dst node ids and a byte size), an *optional*
// dirty-set operation header that the programmable switch parses and acts on,
// and an opaque DFS request/response payload that only end hosts interpret.
// SwitchFS reserves two UDP ports to distinguish packets with and without the
// dirty-set header; here that is the `ds.op != DsOp::kNone` predicate.
#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <array>
#include <cstdint>
#include <memory>

namespace switchfs::net {

using NodeId = uint32_t;
constexpr NodeId kInvalidNode = 0xffffffffu;
// Destination meaning "all metadata servers except ds.origin" — expanded by
// the switch's multicast engine (used by aggregation requests, §5.2.2 step 5).
constexpr NodeId kServerMulticast = 0xfffffffeu;

// Dirty-set operations encoded in the optional header (Fig 9: OP field).
enum class DsOp : uint8_t {
  kNone = 0,    // regular packet, forwarded by destination MAC
  kQuery = 1,   // RET <- fingerprint present?
  kInsert = 2,  // insert fingerprint; multicast ack or overflow-fallback
  kRemove = 3,  // remove fingerprint; multicast body to the server group
};

struct DsHeader {
  DsOp op = DsOp::kNone;
  uint64_t fingerprint = 0;  // 49 significant bits (17-bit index + 32-bit tag)
  // Remove-request sequence number, per sending server (§5.4.1): the switch
  // only honors a remove whose seq exceeds all previously seen from `origin`.
  uint64_t remove_seq = 0;
  bool ret = false;          // RET field, written by the switch on query/insert
  NodeId origin = kInvalidNode;   // server that issued the dirty-set op
  NodeId notify = kInvalidNode;   // second ack target on insert (the client)
  NodeId alt_dst = kInvalidNode;  // "alternative MAC": fallback owner server
};

// Metadata-cache operations encoded in the optional read-cache header. Like
// the dirty-set header these are switch-parsed fields, not payload bytes: the
// switch never interprets message bodies, so everything it needs (fingerprint,
// packed attr record, set-version echo) rides the header.
enum class McOp : uint8_t {
  kNone = 0,     // no cache involvement
  kRead = 1,     // lookup/stat request: serve from the cache on a tag hit
  kInstall = 2,  // owner's read reply: install the record (version-guarded)
  kEvict = 3,    // writer's pre-commit invalidate (or broadcast-piggybacked)
};

// Packed attribute record stored per cache way, 32-bit register words to
// match the Tofino register model: 256-bit id (8), type (1), mode (1),
// size (2), ctime/mtime/atime (2 each), nlink (1), owner read timestamp (2).
constexpr int kCacheRecordWords = 21;
using CacheRecord = std::array<uint32_t, kCacheRecordWords>;

struct CacheHeader {
  McOp op = McOp::kNone;
  uint64_t fingerprint = 0;  // 49 significant bits, same layout as DsHeader
  // Per-set version echo: a kRead miss stamps the set's current version; the
  // owner's kInstall echoes it back and the switch rejects the install if any
  // evict bumped the version in between (prevents a stale install racing a
  // concurrent write's invalidation).
  uint32_t version = 0;
  CacheRecord record{};  // kInstall: the packed attr to store
  uint64_t token = 0;    // kEvict: writer's ack-matching token
};

// Base class for typed payloads. Each module assigns message types from its
// own range; handlers switch on `type` and static_cast.
struct Message {
  explicit Message(uint32_t t) : type(t) {}
  virtual ~Message() = default;
  uint32_t type;
};

using MsgPtr = std::shared_ptr<Message>;

template <typename T, typename... Args>
MsgPtr MakeMsg(Args&&... args) {
  return std::make_shared<T>(std::forward<Args>(args)...);
}

template <typename T>
const T* MsgAs(const MsgPtr& m) {
  return (m && m->type == T::kType) ? static_cast<const T*>(m.get()) : nullptr;
}

// RPC envelope. call_id is unique per (caller, call); retransmits reuse it so
// receivers can suppress duplicates (§5.4.1: "(sender server, sequence
// number) tuple attached to each packet").
struct RpcHeader {
  uint64_t call_id = 0;
  NodeId caller = kInvalidNode;
  bool is_response = false;
};

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  DsHeader ds;
  CacheHeader mc;
  RpcHeader rpc;
  MsgPtr body;
  uint32_t size_bytes = 128;

  bool has_ds_op() const { return ds.op != DsOp::kNone; }
  bool has_mc_op() const { return mc.op != McOp::kNone; }
};

}  // namespace switchfs::net

#endif  // SRC_NET_PACKET_H_
