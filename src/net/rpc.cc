#include "src/net/rpc.h"

#include <cassert>
#include <utility>

namespace switchfs::net {

RpcEndpoint::RpcEndpoint(sim::Simulator* sim, Network* net)
    : sim_(sim), net_(net), id_(net->Register(this)) {}

void RpcEndpoint::ResetVolatileState() {
  pending_.clear();
  dedup_.clear();
  dedup_fifo_.clear();
}

sim::Task<StatusOr<MsgPtr>> RpcEndpoint::Call(NodeId dst, MsgPtr request,
                                              CallOptions opts) {
  const uint64_t call_id = next_call_id_++;
  Packet p;
  p.src = id_;
  p.dst = dst;
  p.ds = opts.ds;
  p.mc = opts.mc;
  p.rpc = RpcHeader{call_id, id_, /*is_response=*/false};
  p.body = std::move(request);

  for (int attempt = 0; attempt < opts.max_attempts; ++attempt) {
    if (!enabled_) {
      pending_.erase(call_id);
      co_return UnavailableError("caller endpoint down");
    }
    if (attempt > 0) {
      retransmits_++;
    }
    auto slot = std::make_shared<sim::OneShot<MsgPtr>>(sim_);
    pending_[call_id] = PendingCall{slot};
    Send(p);
    sim_->ScheduleAfter(opts.timeout, [slot] { slot->Set(nullptr); });
    MsgPtr resp = co_await slot->Wait();
    if (resp != nullptr) {
      pending_.erase(call_id);
      co_return resp;
    }
  }
  pending_.erase(call_id);
  co_return TimeoutError("rpc retries exhausted");
}

Packet RpcEndpoint::MakeResponsePacket(const Packet& request, MsgPtr resp,
                                       uint32_t size_bytes) const {
  Packet p;
  p.src = id_;
  p.dst = request.rpc.caller;
  p.rpc = RpcHeader{request.rpc.call_id, request.rpc.caller,
                    /*is_response=*/true};
  p.body = std::move(resp);
  p.size_bytes = size_bytes;
  return p;
}

void RpcEndpoint::CacheResponse(const DedupKey& key, MsgPtr resp) {
  auto it = dedup_.find(key);
  if (it == dedup_.end()) {
    return;  // evicted during a long-running handler; nothing to update
  }
  it->second.completed = true;
  it->second.cached_response = std::move(resp);
}

void RpcEndpoint::Respond(const Packet& request, MsgPtr resp,
                          uint32_t size_bytes) {
  CacheResponse(DedupKey{request.rpc.caller, request.rpc.call_id}, resp);
  Send(MakeResponsePacket(request, std::move(resp), size_bytes));
}

void RpcEndpoint::RecordResponse(const Packet& request, MsgPtr resp) {
  CacheResponse(DedupKey{request.rpc.caller, request.rpc.call_id},
                std::move(resp));
}

void RpcEndpoint::Send(Packet p) {
  if (!enabled_) {
    return;
  }
  p.src = id_;
  if (cpu_ != nullptr) {
    const sim::SimTime tx = net_->costs()->tx_cost;
    sim::Spawn([](RpcEndpoint* self, Packet pkt, sim::SimTime cost)
                   -> sim::Task<void> {
      co_await self->cpu_->Run(cost);
      if (self->enabled_) {
        self->net_->Send(std::move(pkt));
      }
    }(this, std::move(p), tx));
    return;
  }
  net_->Send(std::move(p));
}

void RpcEndpoint::Notify(NodeId dst, MsgPtr msg, uint32_t size_bytes) {
  Packet p;
  p.src = id_;
  p.dst = dst;
  p.body = std::move(msg);
  p.size_bytes = size_bytes;
  Send(std::move(p));
}

void RpcEndpoint::HandlePacket(Packet p) {
  if (!enabled_) {
    return;
  }
  if (cpu_ != nullptr) {
    sim::Spawn(ChargedDeliver(std::move(p)));
    return;
  }
  DispatchRequest(std::move(p));
}

sim::Task<void> RpcEndpoint::ChargedDeliver(Packet p) {
  co_await cpu_->Run(net_->costs()->rx_cost);
  if (enabled_) {
    DispatchRequest(std::move(p));
  }
}

void RpcEndpoint::DispatchRequest(Packet p) {
  if (p.rpc.is_response) {
    // Response to one of our calls?
    if (p.rpc.caller == id_) {
      auto it = pending_.find(p.rpc.call_id);
      if (it != pending_.end()) {
        it->second.slot->Set(std::move(p.body));
        return;
      }
    }
    // Not ours / already resolved. SwitchFS reuses response packets as
    // dirty-set notifications (insert-ack mirror to the executing server);
    // hand those to the raw handler.
    if (p.has_ds_op() && raw_handler_) {
      raw_handler_(std::move(p));
    }
    return;
  }
  if (p.rpc.call_id == 0) {
    if (raw_handler_) {
      raw_handler_(std::move(p));
    }
    return;
  }
  // Inbound request: duplicate suppression by (caller, call_id), §5.4.1.
  const DedupKey key{p.rpc.caller, p.rpc.call_id};
  auto it = dedup_.find(key);
  if (it != dedup_.end()) {
    dup_requests_++;
    if (it->second.completed && it->second.cached_response != nullptr) {
      Send(MakeResponsePacket(p, it->second.cached_response));
    }
    // In-flight duplicates are dropped; the response will reach the caller
    // when the original execution completes.
    return;
  }
  dedup_.emplace(key, DedupEntry{});
  dedup_fifo_.push_back(key);
  while (dedup_fifo_.size() > kMaxDedupEntries) {
    dedup_.erase(dedup_fifo_.front());
    dedup_fifo_.pop_front();
  }
  if (request_handler_) {
    request_handler_(std::move(p));
  }
}

}  // namespace switchfs::net
