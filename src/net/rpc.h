// Coroutine RPC endpoint over the simulated UDP fabric.
//
// Faithful to the paper's transport (§5.4.1, §7.1): UDP with client-side
// timeout/retransmission; receivers suppress duplicate requests by the
// (caller, call_id) tuple and replay cached responses; responses may be
// delivered out-of-band (SwitchFS's insert-ack multicast carries the create
// response through the switch rather than from the executing server).
#ifndef SRC_NET_RPC_H_
#define SRC_NET_RPC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "src/common/status.h"
#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/sim/cpu.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace switchfs::net {

struct CallOptions {
  sim::SimTime timeout = sim::Microseconds(100);
  int max_attempts = 8;
  // Optional dirty-set operation header stamped on every attempt's packet
  // (SwitchFS directory reads attach a kQuery the switch answers in-flight).
  DsHeader ds;
  // Optional metadata-cache header (lookup/stat reads attach a kRead the
  // switch may answer from its register cache without reaching the owner).
  CacheHeader mc;
};

class RpcEndpoint : public Node {
 public:
  // Invoked for deduplicated inbound requests. The handler owns replying,
  // via Respond() (direct) or RecordResponse() (out-of-band delivery).
  using RequestHandler = std::function<void(Packet)>;
  // Invoked for non-RPC packets (dirty-set notifications, one-way signals).
  using RawHandler = std::function<void(Packet)>;

  RpcEndpoint(sim::Simulator* sim, Network* net);
  ~RpcEndpoint() override = default;

  NodeId id() const { return id_; }
  sim::Simulator* simulator() const { return sim_; }
  Network* network() const { return net_; }

  void SetRequestHandler(RequestHandler h) { request_handler_ = std::move(h); }
  void SetRawHandler(RawHandler h) { raw_handler_ = std::move(h); }
  // When set, rx/tx packet-processing costs are charged to this CPU pool.
  void SetCpu(sim::CpuPool* cpu) { cpu_ = cpu; }
  // Disabled endpoints drop all traffic (crashed / recovering node).
  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }
  // Drops duplicate-suppression and pending-call state (crash wipes DRAM).
  void ResetVolatileState();

  // --- client side ---
  sim::Task<StatusOr<MsgPtr>> Call(NodeId dst, MsgPtr request,
                                   CallOptions opts = CallOptions{});

  // --- server side ---
  // Sends `resp` to the caller of `request` and caches it for retransmits.
  void Respond(const Packet& request, MsgPtr resp, uint32_t size_bytes = 128);
  // Caches `resp` for retransmits without sending (the first copy was
  // delivered out-of-band, e.g. via the switch insert-ack multicast).
  void RecordResponse(const Packet& request, MsgPtr resp);
  // Builds the response packet for `request` without sending or caching
  // (used to hand the pre-built response to the switch data plane).
  Packet MakeResponsePacket(const Packet& request, MsgPtr resp,
                            uint32_t size_bytes = 128) const;

  // --- raw sends (dirty-set ops, one-way notifications) ---
  void Send(Packet p);
  // Convenience: one-way message (no call id, handled by the raw handler).
  void Notify(NodeId dst, MsgPtr msg, uint32_t size_bytes = 128);

  void HandlePacket(Packet p) override;

  uint64_t duplicate_requests_seen() const { return dup_requests_; }
  uint64_t retransmits_sent() const { return retransmits_; }

 private:
  struct PendingCall {
    std::shared_ptr<sim::OneShot<MsgPtr>> slot;
  };
  struct DedupKey {
    NodeId caller;
    uint64_t call_id;
    bool operator==(const DedupKey& o) const {
      return caller == o.caller && call_id == o.call_id;
    }
  };
  struct DedupKeyHash {
    size_t operator()(const DedupKey& k) const {
      return std::hash<uint64_t>()((static_cast<uint64_t>(k.caller) << 40) ^
                                   k.call_id);
    }
  };
  struct DedupEntry {
    bool completed = false;
    MsgPtr cached_response;  // valid when completed
  };

  void DispatchRequest(Packet p);
  void CacheResponse(const DedupKey& key, MsgPtr resp);
  sim::Task<void> ChargedDeliver(Packet p);

  sim::Simulator* sim_;
  Network* net_;
  NodeId id_;
  sim::CpuPool* cpu_ = nullptr;
  bool enabled_ = true;

  RequestHandler request_handler_;
  RawHandler raw_handler_;

  uint64_t next_call_id_ = 1;
  std::unordered_map<uint64_t, PendingCall> pending_;

  static constexpr size_t kMaxDedupEntries = 1 << 16;
  std::unordered_map<DedupKey, DedupEntry, DedupKeyHash> dedup_;
  std::deque<DedupKey> dedup_fifo_;

  uint64_t dup_requests_ = 0;
  uint64_t retransmits_ = 0;
};

}  // namespace switchfs::net

#endif  // SRC_NET_RPC_H_
