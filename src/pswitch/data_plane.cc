#include "src/pswitch/data_plane.h"

#include <cassert>
#include <utility>

namespace switchfs::psw {

DataPlane::DataPlane(const DataPlaneConfig& config) : config_(config) {
  assert(config_.num_pipes >= 1);
  // The total register budget (10 stages x 2^17 registers, §6.5) is split
  // evenly across pipes: each pipe serves 1/P of the fingerprint space with
  // 1/P of the per-stage registers.
  DirtySetConfig shard = config_.dirty_set;
  shard.registers_per_stage =
      std::max<uint32_t>(1, shard.registers_per_stage /
                                static_cast<uint32_t>(config_.num_pipes));
  MetaCacheConfig cache_shard = config_.meta_cache;
  cache_shard.num_sets =
      std::max<uint32_t>(1, cache_shard.num_sets /
                                static_cast<uint32_t>(config_.num_pipes));
  for (int i = 0; i < config_.num_pipes; ++i) {
    pipes_.push_back(std::make_unique<DirtySet>(shard));
    caches_.push_back(std::make_unique<MetaCache>(cache_shard));
  }
}

void DataPlane::SetServerGroup(std::vector<net::NodeId> servers) {
  server_group_ = std::move(servers);
}

int DataPlane::PipeOfNode(net::NodeId node) const {
  return static_cast<int>(node % static_cast<net::NodeId>(config_.num_pipes));
}

int DataPlane::HomePipe(Fingerprint fp) const {
  // Route by fingerprint prefix (the paper's router matches on the prefix).
  return static_cast<int>((fp >> (kFingerprintBits - 8)) %
                          static_cast<uint64_t>(config_.num_pipes));
}

bool DataPlane::Contains(Fingerprint fp) const {
  return pipes_[HomePipe(fp)]->Query(fp);
}

bool DataPlane::CacheContains(Fingerprint fp) {
  return caches_[HomePipe(fp)]->Contains(fp);
}

size_t DataPlane::EvictCachedIf(const std::function<bool(Fingerprint)>& pred) {
  size_t dropped = 0;
  for (auto& cache : caches_) {
    dropped += cache->EvictIf(pred);
  }
  return dropped;
}

sim::SimTime DataPlane::PipelineDelay() const {
  sim::SimTime d = config_.pipeline_delay;
  if (last_crossed_pipes_) {
    d += config_.cross_pipe_mirror_delay;
    last_crossed_pipes_ = false;
  }
  if (last_cache_served_) {
    d += config_.cache_serve_delay;
    last_cache_served_ = false;
  }
  return d;
}

// Metadata-cache stage, traversed by every packet carrying an mc header
// before the dirty-set stages. Returns true when the packet was fully
// answered from the cache (a kRead hit): `out` then holds the synthesized
// response and the original packet must not be forwarded.
bool DataPlane::ProcessCacheHeader(net::Packet& p,
                                   std::vector<net::Packet>& out) {
  const Fingerprint fp = p.mc.fingerprint;
  MetaCache& cache = *caches_[HomePipe(fp)];
  switch (p.mc.op) {
    case net::McOp::kRead: {
      auto resp = std::make_shared<CacheHitResp>();
      if (cache.Lookup(fp, &resp->record)) {
        stats_.mc_hits++;
        last_cache_served_ = true;
        // Rewrite the request into its own response: swap the envelope
        // around and attach the record — the owner never sees the packet.
        net::Packet hit;
        hit.src = p.dst;
        hit.dst = p.src;
        hit.rpc = net::RpcHeader{p.rpc.call_id, p.rpc.caller,
                                 /*is_response=*/true};
        hit.body = std::move(resp);
        out.push_back(std::move(hit));
        return true;
      }
      stats_.mc_misses++;
      // Export the set version for the owner's install to echo: an evict
      // between now and the install bumps it and the install is rejected.
      p.mc.version = cache.VersionOf(fp);
      return false;
    }
    case net::McOp::kInstall: {
      if (cache.Install(fp, p.mc.record, p.mc.version)) {
        stats_.mc_installs++;
      } else {
        stats_.mc_install_rejects++;
      }
      return false;  // the reply continues to the client untouched
    }
    case net::McOp::kEvict: {
      cache.Evict(fp);
      stats_.mc_evicts++;
      return false;  // forwards on: self-addressed evicts become the ack
    }
    case net::McOp::kNone:
      return false;
  }
  return false;
}

std::vector<net::Packet> DataPlane::Process(net::Packet p) {
  std::vector<net::Packet> out;
  if (p.has_mc_op() && ProcessCacheHeader(p, out)) {
    return out;  // answered from the cache; the owner never sees the read
  }
  if (!p.has_ds_op()) {
    // Regular packet: route by destination MAC (server multicast is expanded
    // for baseline-system broadcasts as well).
    if (p.dst == net::kServerMulticast) {
      for (net::NodeId s : server_group_) {
        if (s == p.src) {
          continue;
        }
        net::Packet copy = p;
        copy.dst = s;
        stats_.multicast_packets++;
        out.push_back(std::move(copy));
      }
    } else {
      stats_.regular_forwarded++;
      out.push_back(std::move(p));
    }
    return out;
  }

  const Fingerprint fp = p.ds.fingerprint;
  const int home = HomePipe(fp);
  if (PipeOfNode(p.src) != home) {
    stats_.cross_pipe_mirrors++;
    last_crossed_pipes_ = true;
  }
  DirtySet& ds = *pipes_[home];

  switch (p.ds.op) {
    case net::DsOp::kQuery: {
      stats_.queries++;
      p.ds.ret = ds.Query(fp);
      out.push_back(std::move(p));
      break;
    }
    case net::DsOp::kInsert: {
      stats_.inserts++;
      // A dirty directory is a cache-invalid one: drop any cached record for
      // this fingerprint in the same traversal (both outcomes — on overflow
      // the write still commits, via the synchronous fallback), preserving
      // the invariant dirty(fp) => not cached(fp).
      if (caches_[home]->Evict(fp)) {
        stats_.mc_evicts++;
      }
      const bool ok = !force_insert_overflow_ && ds.Insert(fp);
      if (force_insert_overflow_) {
        // Account the attempted insert for the overflow study.
      }
      p.ds.ret = ok;
      if (ok) {
        // 7a: completion notification to the destination (the client).
        // 7b: mirror to the origin server (lock release signal).
        net::Packet mirror = p;
        mirror.dst = p.ds.origin;
        stats_.multicast_packets += 2;
        out.push_back(std::move(p));
        out.push_back(std::move(mirror));
      } else {
        stats_.insert_fallbacks++;
        // Address rewriter: overwrite the destination with the alternative
        // address for the synchronous fallback (§6.2).
        if (p.ds.alt_dst != net::kInvalidNode) {
          p.dst = p.ds.alt_dst;
          out.push_back(std::move(p));
        }
      }
      break;
    }
    case net::DsOp::kRemove: {
      const bool executed =
          ds.Remove(fp, p.ds.origin, p.ds.remove_seq);
      if (!executed) {
        stats_.stale_removes++;
        break;  // stale duplicate: no multicast, no state change (§5.4.1)
      }
      stats_.removes++;
      for (net::NodeId s : server_group_) {
        if (s == p.ds.origin) {
          continue;
        }
        net::Packet copy = p;
        copy.dst = s;
        stats_.multicast_packets++;
        out.push_back(std::move(copy));
      }
      break;
    }
    case net::DsOp::kNone:
      break;
  }
  return out;
}

void DataPlane::Reset() {
  for (auto& pipe : pipes_) {
    pipe->Clear();
  }
  for (auto& cache : caches_) {
    // Clear() keeps set versions monotonic so installs whose reads predate
    // the reboot stay rejected (see MetaCache).
    cache->Clear();
  }
}

size_t DataPlane::MemoryBytes() const {
  size_t total = 0;
  for (const auto& pipe : pipes_) {
    total += pipe->MemoryBytes();
  }
  for (const auto& cache : caches_) {
    total += cache->MemoryBytes();
  }
  return total;
}

}  // namespace switchfs::psw
