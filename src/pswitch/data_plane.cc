#include "src/pswitch/data_plane.h"

#include <cassert>
#include <utility>

namespace switchfs::psw {

DataPlane::DataPlane(const DataPlaneConfig& config) : config_(config) {
  assert(config_.num_pipes >= 1);
  // The total register budget (10 stages x 2^17 registers, §6.5) is split
  // evenly across pipes: each pipe serves 1/P of the fingerprint space with
  // 1/P of the per-stage registers.
  DirtySetConfig shard = config_.dirty_set;
  shard.registers_per_stage =
      std::max<uint32_t>(1, shard.registers_per_stage /
                                static_cast<uint32_t>(config_.num_pipes));
  for (int i = 0; i < config_.num_pipes; ++i) {
    pipes_.push_back(std::make_unique<DirtySet>(shard));
  }
}

void DataPlane::SetServerGroup(std::vector<net::NodeId> servers) {
  server_group_ = std::move(servers);
}

int DataPlane::PipeOfNode(net::NodeId node) const {
  return static_cast<int>(node % static_cast<net::NodeId>(config_.num_pipes));
}

int DataPlane::HomePipe(Fingerprint fp) const {
  // Route by fingerprint prefix (the paper's router matches on the prefix).
  return static_cast<int>((fp >> (kFingerprintBits - 8)) %
                          static_cast<uint64_t>(config_.num_pipes));
}

bool DataPlane::Contains(Fingerprint fp) const {
  return pipes_[HomePipe(fp)]->Query(fp);
}

sim::SimTime DataPlane::PipelineDelay() const {
  sim::SimTime d = config_.pipeline_delay;
  if (last_crossed_pipes_) {
    d += config_.cross_pipe_mirror_delay;
    last_crossed_pipes_ = false;
  }
  return d;
}

std::vector<net::Packet> DataPlane::Process(net::Packet p) {
  std::vector<net::Packet> out;
  if (!p.has_ds_op()) {
    // Regular packet: route by destination MAC (server multicast is expanded
    // for baseline-system broadcasts as well).
    if (p.dst == net::kServerMulticast) {
      for (net::NodeId s : server_group_) {
        if (s == p.src) {
          continue;
        }
        net::Packet copy = p;
        copy.dst = s;
        stats_.multicast_packets++;
        out.push_back(std::move(copy));
      }
    } else {
      stats_.regular_forwarded++;
      out.push_back(std::move(p));
    }
    return out;
  }

  const Fingerprint fp = p.ds.fingerprint;
  const int home = HomePipe(fp);
  if (PipeOfNode(p.src) != home) {
    stats_.cross_pipe_mirrors++;
    last_crossed_pipes_ = true;
  }
  DirtySet& ds = *pipes_[home];

  switch (p.ds.op) {
    case net::DsOp::kQuery: {
      stats_.queries++;
      p.ds.ret = ds.Query(fp);
      out.push_back(std::move(p));
      break;
    }
    case net::DsOp::kInsert: {
      stats_.inserts++;
      const bool ok = !force_insert_overflow_ && ds.Insert(fp);
      if (force_insert_overflow_) {
        // Account the attempted insert for the overflow study.
      }
      p.ds.ret = ok;
      if (ok) {
        // 7a: completion notification to the destination (the client).
        // 7b: mirror to the origin server (lock release signal).
        net::Packet mirror = p;
        mirror.dst = p.ds.origin;
        stats_.multicast_packets += 2;
        out.push_back(std::move(p));
        out.push_back(std::move(mirror));
      } else {
        stats_.insert_fallbacks++;
        // Address rewriter: overwrite the destination with the alternative
        // address for the synchronous fallback (§6.2).
        if (p.ds.alt_dst != net::kInvalidNode) {
          p.dst = p.ds.alt_dst;
          out.push_back(std::move(p));
        }
      }
      break;
    }
    case net::DsOp::kRemove: {
      const bool executed =
          ds.Remove(fp, p.ds.origin, p.ds.remove_seq);
      if (!executed) {
        stats_.stale_removes++;
        break;  // stale duplicate: no multicast, no state change (§5.4.1)
      }
      stats_.removes++;
      for (net::NodeId s : server_group_) {
        if (s == p.ds.origin) {
          continue;
        }
        net::Packet copy = p;
        copy.dst = s;
        stats_.multicast_packets++;
        out.push_back(std::move(copy));
      }
      break;
    }
    case net::DsOp::kNone:
      break;
  }
  return out;
}

void DataPlane::Reset() {
  for (auto& pipe : pipes_) {
    pipe->Clear();
  }
}

size_t DataPlane::MemoryBytes() const {
  size_t total = 0;
  for (const auto& pipe : pipes_) {
    total += pipe->MemoryBytes();
  }
  return total;
}

}  // namespace switchfs::psw
