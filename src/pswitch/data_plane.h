// SwitchFS programmable switch data plane (paper §6.2, Fig 8).
//
// Pipeline: Parser -> Router -> Dirty set -> Address rewriter.
//  * Regular packets (no dirty-set header) forward by destination.
//  * kQuery: the dirty set writes RET into the header; packet forwards on.
//  * kInsert: on success the packet is multicast to its destination (the
//    client awaiting the operation's completion) and mirrored to the origin
//    server (lock release signal) — §5.2.1 steps 7a/7b. On overflow the
//    address rewriter redirects the packet to the alternative address (the
//    parent directory's owner) for the synchronous fallback.
//  * kRemove: executed with per-origin sequence-number protection, then the
//    packet is multicast to all metadata servers except the origin
//    (aggregation request, §5.2.2 step 5). Stale removes are dropped.
//
// Multi-pipe layout (§6.2): pipes do not share state, so the dirty set is
// sharded by fingerprint prefix across pipes; a packet entering through a
// different pipe is mirrored to the home pipe, adding a fixed delay.
#ifndef SRC_PSWITCH_DATA_PLANE_H_
#define SRC_PSWITCH_DATA_PLANE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/annotations.h"
#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/pswitch/dirty_set.h"
#include "src/pswitch/meta_cache.h"
#include "src/sim/time.h"

namespace switchfs::psw {

struct DataPlaneConfig {
  DirtySetConfig dirty_set;
  MetaCacheConfig meta_cache;
  int num_pipes = 4;  // Tofino 6.4Tbps: 4 pipes
  sim::SimTime pipeline_delay = sim::Nanoseconds(350);
  sim::SimTime cross_pipe_mirror_delay = sim::Nanoseconds(120);
  // Extra stages traversed when a read is answered from the metadata cache
  // (record read + response rewrite).
  sim::SimTime cache_serve_delay = sim::Nanoseconds(150);
};

class DataPlane : public net::SwitchBehavior {
 public:
  explicit DataPlane(const DataPlaneConfig& config = DataPlaneConfig{});

  void SetServerGroup(std::vector<net::NodeId> servers);
  // Pipe assignment of a host port; defaults to node id modulo pipe count.
  int PipeOfNode(net::NodeId node) const;

  std::vector<net::Packet> Process(net::Packet p) override;
  sim::SimTime PipelineDelay() const override;

  // Switch reboot: wipes all register state (dirty set + remove sequences +
  // metadata cache).
  void Reset();

  DirtySet& dirty_set(int pipe) { return *pipes_[pipe]; }
  MetaCache& meta_cache(int pipe) { return *caches_[pipe]; }
  int HomePipe(Fingerprint fp) const;
  // Queries across the pipe shards (test/verification helper).
  bool Contains(Fingerprint fp) const;
  // Metadata-cache presence across the pipe shards (test helper).
  bool CacheContains(Fingerprint fp);
  // Control-plane predicate flush of the metadata cache (owner recovery:
  // drop everything a crashed owner may have installed). Returns entries
  // dropped. Outside recovery, call sites must hold the exclusive inode
  // lock of every fingerprint the predicate can match (rule
  // evict-requires-lock), or a stale record can be re-installed between the
  // flush and the commit.
  SFS_REQUIRES_EXCLUSIVE(inode_locks)
  size_t EvictCachedIf(const std::function<bool(Fingerprint)>& pred);

  // Forces every insert to fail (dirty-set overflow study, §7.3.2).
  void SetForceInsertOverflow(bool v) { force_insert_overflow_ = v; }

  struct Stats {
    uint64_t regular_forwarded = 0;
    uint64_t queries = 0;
    uint64_t inserts = 0;
    uint64_t insert_fallbacks = 0;
    uint64_t removes = 0;
    uint64_t stale_removes = 0;
    uint64_t multicast_packets = 0;
    uint64_t cross_pipe_mirrors = 0;
    // Metadata read cache.
    uint64_t mc_hits = 0;
    uint64_t mc_misses = 0;
    uint64_t mc_installs = 0;
    uint64_t mc_install_rejects = 0;
    uint64_t mc_evicts = 0;
  };
  const Stats& stats() const { return stats_; }

  size_t MemoryBytes() const;

 private:
  // Handles the metadata-cache header; returns true when the packet was
  // answered from the cache (kRead hit) and must not be forwarded.
  bool ProcessCacheHeader(net::Packet& p, std::vector<net::Packet>& out);

  DataPlaneConfig config_;
  // One dirty-set shard per pipe (shared-nothing, §6.2).
  std::vector<std::unique_ptr<DirtySet>> pipes_;
  // One metadata-cache shard per pipe (same shared-nothing split).
  std::vector<std::unique_ptr<MetaCache>> caches_;
  std::vector<net::NodeId> server_group_;
  bool force_insert_overflow_ = false;
  // Set during Process() when the packet crossed pipes, consumed by
  // PipelineDelay(); the Network queries the delay right after Process().
  mutable bool last_crossed_pipes_ = false;
  // Set when Process() answered the packet from the metadata cache; adds the
  // record-read/rewrite stages to the next PipelineDelay() query.
  mutable bool last_cache_served_ = false;
  Stats stats_;
};

}  // namespace switchfs::psw

#endif  // SRC_PSWITCH_DATA_PLANE_H_
