#include "src/pswitch/dirty_set.h"

#include <cassert>

namespace switchfs::psw {

DirtySet::DirtySet(const DirtySetConfig& config) {
  assert(config.num_stages >= 1);
  assert(config.registers_per_stage >= 1);
  stages_.reserve(config.num_stages);
  for (int i = 0; i < config.num_stages; ++i) {
    stages_.emplace_back(config.registers_per_stage);
  }
}

bool DirtySet::Query(Fingerprint fp) const {
  const uint32_t index = FingerprintIndex(fp) % stages_[0].size();
  const uint32_t tag = FingerprintTag(fp);
  for (const RegisterStage& stage : stages_) {
    if (stage.Query(index, tag)) {
      return true;
    }
  }
  return false;
}

bool DirtySet::Insert(Fingerprint fp) {
  const uint32_t index = FingerprintIndex(fp) % stages_[0].size();
  const uint32_t tag = FingerprintTag(fp);
  inserts_++;
  bool inserted = false;
  for (RegisterStage& stage : stages_) {
    if (!inserted) {
      inserted = stage.ConditionalInsert(index, tag);
    } else {
      // Later stages clean up any stale duplicate of the same tag (Fig 10).
      stage.ConditionalRemove(index, tag);
    }
  }
  if (!inserted) {
    insert_overflows_++;
  }
  return inserted;
}

bool DirtySet::Remove(Fingerprint fp, uint32_t origin_server, uint64_t seq) {
  uint64_t& highest = remove_seq_[origin_server];
  if (seq <= highest) {
    stale_removes_++;
    return false;
  }
  highest = seq;
  RemoveUnchecked(fp);
  return true;
}

void DirtySet::RemoveUnchecked(Fingerprint fp) {
  const uint32_t index = FingerprintIndex(fp) % stages_[0].size();
  const uint32_t tag = FingerprintTag(fp);
  removes_++;
  for (RegisterStage& stage : stages_) {
    stage.ConditionalRemove(index, tag);
  }
}

void DirtySet::Clear() {
  for (RegisterStage& stage : stages_) {
    stage.Clear();
  }
  remove_seq_.clear();
}

size_t DirtySet::MemoryBytes() const {
  size_t total = 0;
  for (const RegisterStage& stage : stages_) {
    total += stage.MemoryBytes();
  }
  return total;
}

uint64_t DirtySet::Population() const {
  uint64_t population = 0;
  for (const RegisterStage& stage : stages_) {
    for (uint32_t i = 0; i < stage.size(); ++i) {
      if (stage.ValueAt(i) != 0) {
        population++;
      }
    }
  }
  return population;
}

}  // namespace switchfs::psw
