// The in-network dirty set (paper §6.3): a set-associative structure built
// from per-stage 32-bit register arrays. Registers at the same index across
// the pipeline stages form a set; the fingerprint's 17-bit index selects the
// set and its 32-bit tag is what the stages store.
//
// Operation composition (verbatim from the paper):
//   query  - all stages run `register query`; result is the OR.
//   insert - stages run `conditional insert` one by one until one returns
//            true; the *following* stages run `conditional remove` so no
//            duplicate tags remain in the set (Fig 10).
//   remove - all stages run `conditional remove`.
//
// Duplicate-remove protection (§5.4.1): each remove request carries a
// sequence number; the switch tracks the highest sequence seen per sending
// server and ignores stale removes, so a delayed duplicate cannot evict a
// fingerprint inserted after its aggregation completed.
#ifndef SRC_PSWITCH_DIRTY_SET_H_
#define SRC_PSWITCH_DIRTY_SET_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/pswitch/fingerprint.h"
#include "src/pswitch/register_stage.h"

namespace switchfs::psw {

struct DirtySetConfig {
  int num_stages = 10;                     // §6.3: ten stages
  uint32_t registers_per_stage = kIndexCount;  // 131072 (2^17) per stage
};

class DirtySet {
 public:
  explicit DirtySet(const DirtySetConfig& config = DirtySetConfig{});

  // Returns true iff `fp` is present.
  bool Query(Fingerprint fp) const;

  // Returns true on success (inserted or already present); false if the set
  // (all stage slots for this index) is full — the overflow that triggers the
  // synchronous-update fallback (§5.2.1).
  bool Insert(Fingerprint fp);

  // Applies a remove from `origin_server` with sequence number `seq`.
  // Returns true if the remove was executed, false if it was stale (§5.4.1).
  bool Remove(Fingerprint fp, uint32_t origin_server, uint64_t seq);

  // Unconditional remove without sequence bookkeeping (tests / recovery).
  void RemoveUnchecked(Fingerprint fp);

  // Switch reboot: all register state and sequence bookkeeping is lost.
  void Clear();

  int num_stages() const { return static_cast<int>(stages_.size()); }
  uint32_t registers_per_stage() const { return stages_[0].size(); }
  size_t MemoryBytes() const;
  uint64_t Population() const;  // number of non-zero registers

  uint64_t inserts() const { return inserts_; }
  uint64_t insert_overflows() const { return insert_overflows_; }
  uint64_t removes() const { return removes_; }
  uint64_t stale_removes() const { return stale_removes_; }

 private:
  std::vector<RegisterStage> stages_;
  // Highest remove sequence seen per origin server.
  std::unordered_map<uint32_t, uint64_t> remove_seq_;
  uint64_t inserts_ = 0;
  uint64_t insert_overflows_ = 0;
  uint64_t removes_ = 0;
  uint64_t stale_removes_ = 0;
};

}  // namespace switchfs::psw

#endif  // SRC_PSWITCH_DIRTY_SET_H_
