// Directory fingerprints (paper §4.3, §6.3).
//
// Each directory is identified inside the switch by a 49-bit fingerprint
// derived from hashing its (parent id, name) key: the upper 17 bits select a
// set (one register index per pipeline stage) and the remaining 32 bits are
// the tag stored in the registers. Tag value 0 is reserved to mean "empty
// register", so fingerprints are adjusted to never carry a zero tag.
#ifndef SRC_PSWITCH_FINGERPRINT_H_
#define SRC_PSWITCH_FINGERPRINT_H_

#include <cstdint>

#include "src/common/hash.h"

namespace switchfs::psw {

constexpr int kIndexBits = 17;
constexpr int kTagBits = 32;
constexpr int kFingerprintBits = kIndexBits + kTagBits;  // 49 (Fig 9)
constexpr uint32_t kIndexCount = 1u << kIndexBits;       // 131072 sets
constexpr uint64_t kFingerprintMask = (1ULL << kFingerprintBits) - 1;

using Fingerprint = uint64_t;  // only the low 49 bits are significant

constexpr uint32_t FingerprintIndex(Fingerprint fp) {
  return static_cast<uint32_t>((fp >> kTagBits) & (kIndexCount - 1));
}

constexpr uint32_t FingerprintTag(Fingerprint fp) {
  return static_cast<uint32_t>(fp & 0xffffffffULL);
}

// Builds a valid fingerprint from a raw 64-bit hash: truncate to 49 bits and
// remap a zero tag (reserved for "empty") to 1.
constexpr Fingerprint FingerprintFromHash(uint64_t h) {
  Fingerprint fp = h & kFingerprintMask;
  if (FingerprintTag(fp) == 0) {
    fp |= 1;
  }
  return fp;
}

constexpr Fingerprint MakeFingerprint(uint32_t index, uint32_t tag) {
  return ((static_cast<uint64_t>(index) & (kIndexCount - 1)) << kTagBits) |
         tag;
}

}  // namespace switchfs::psw

#endif  // SRC_PSWITCH_FINGERPRINT_H_
