#include "src/pswitch/meta_cache.h"

#include <cassert>

namespace switchfs::psw {

namespace {

uint32_t RoundDownPow2(uint32_t v) {
  uint32_t p = 1;
  while (p * 2 <= v) {
    p *= 2;
  }
  return p;
}

}  // namespace

MetaCache::MetaCache(const MetaCacheConfig& config)
    : num_sets_(RoundDownPow2(config.num_sets > 0 ? config.num_sets : 1)) {
  const int ways = config.num_ways > 0 ? config.num_ways : 1;
  ways_.reserve(static_cast<size_t>(ways));
  for (int i = 0; i < ways; ++i) {
    ways_.emplace_back(num_sets_, static_cast<uint32_t>(net::kCacheRecordWords));
  }
  versions_.assign(num_sets_, 1);  // version 0 never occurs on the wire
  clock_.assign(num_sets_, 0);
  shadow_.assign(static_cast<size_t>(ways) * num_sets_, 0);
}

bool MetaCache::Lookup(Fingerprint fp, net::CacheRecord* out) {
  const uint32_t tag = FingerprintTag(fp);
  if (tag == 0) {
    misses_++;
    return false;
  }
  const uint32_t set = SetOf(fp);
  for (RecordStage& way : ways_) {
    if (way.TagAt(set) == tag) {
      const uint32_t* words = way.RecordAt(set);
      for (int i = 0; i < net::kCacheRecordWords; ++i) {
        (*out)[static_cast<size_t>(i)] = words[i];
      }
      hits_++;
      return true;
    }
  }
  misses_++;
  return false;
}

bool MetaCache::Contains(Fingerprint fp) const {
  const uint32_t tag = FingerprintTag(fp);
  if (tag == 0) {
    return false;
  }
  const uint32_t set = SetOf(fp);
  for (const RecordStage& way : ways_) {
    if (way.TagAt(set) == tag) {
      return true;
    }
  }
  return false;
}

uint32_t MetaCache::VersionOf(Fingerprint fp) const {
  return versions_[SetOf(fp)];
}

bool MetaCache::Install(Fingerprint fp, const net::CacheRecord& record,
                        uint32_t version) {
  const uint32_t tag = FingerprintTag(fp);
  const uint32_t set = SetOf(fp);
  if (tag == 0 || versions_[set] != version) {
    install_rejects_++;
    return false;
  }
  // Same tag already cached: refresh in place.
  for (size_t w = 0; w < ways_.size(); ++w) {
    if (ways_[w].TagAt(set) == tag) {
      ways_[w].WriteRecord(set, record.data());
      shadow_[w * num_sets_ + set] = fp;
      installs_++;
      return true;
    }
  }
  // Empty way, else clock-evict one (stage-local round robin).
  size_t victim = ways_.size();
  for (size_t w = 0; w < ways_.size(); ++w) {
    if (ways_[w].TagAt(set) == 0) {
      victim = w;
      break;
    }
  }
  if (victim == ways_.size()) {
    victim = clock_[set] % ways_.size();
    clock_[set] = static_cast<uint32_t>(victim + 1);
  }
  ways_[victim].SetTag(set, tag);
  ways_[victim].WriteRecord(set, record.data());
  shadow_[victim * num_sets_ + set] = fp;
  installs_++;
  return true;
}

bool MetaCache::Evict(Fingerprint fp) {
  const uint32_t tag = FingerprintTag(fp);
  const uint32_t set = SetOf(fp);
  versions_[set]++;  // unconditional: guards in-flight installs (see header)
  evicts_++;
  if (tag == 0) {
    return false;
  }
  bool present = false;
  for (size_t w = 0; w < ways_.size(); ++w) {
    if (ways_[w].TagAt(set) == tag) {
      ways_[w].SetTag(set, 0);
      shadow_[w * num_sets_ + set] = 0;
      present = true;
    }
  }
  return present;
}

void MetaCache::Clear() {
  for (RecordStage& way : ways_) {
    way.Clear();
  }
  for (uint32_t& v : versions_) {
    v++;
  }
  std::fill(clock_.begin(), clock_.end(), 0);
  std::fill(shadow_.begin(), shadow_.end(), 0);
}

size_t MetaCache::EvictIf(const std::function<bool(Fingerprint)>& pred) {
  size_t dropped = 0;
  for (size_t w = 0; w < ways_.size(); ++w) {
    for (uint32_t set = 0; set < num_sets_; ++set) {
      const Fingerprint fp = shadow_[w * num_sets_ + set];
      if (fp != 0 && pred(fp)) {
        ways_[w].SetTag(set, 0);
        shadow_[w * num_sets_ + set] = 0;
        versions_[set]++;
        evicts_++;
        dropped++;
      }
    }
  }
  return dropped;
}

size_t MetaCache::MemoryBytes() const {
  size_t bytes = (versions_.size() + clock_.size()) * sizeof(uint32_t);
  for (const RecordStage& way : ways_) {
    bytes += way.MemoryBytes();
  }
  return bytes;  // the fingerprint shadow is control-plane state, not SRAM
}

uint64_t MetaCache::Population() const {
  uint64_t n = 0;
  for (const RecordStage& way : ways_) {
    for (uint32_t set = 0; set < way.size(); ++set) {
      if (way.TagAt(set) != 0) {
        n++;
      }
    }
  }
  return n;
}

}  // namespace switchfs::psw
