// The in-switch metadata read cache (Fletch-style, PAPERS.md): a
// set-associative register structure that stores packed attribute records for
// hot lookup/stat fingerprints and answers matching reads on the client's
// request path, before the packet ever reaches an owner server.
//
// Layout mirrors the dirty set: the fingerprint's index bits select a set,
// its 32-bit tag is what the way stages store (tag 0 = empty), and a W-way
// cache is W RecordStages probed in pipeline order. On top of the dirty set's
// machinery each set carries:
//
//   * a version register, bumped by EVERY evict aimed at the set (present or
//     not) and by Clear(). A read miss exports the set's current version; the
//     owner's install echoes it and is rejected unless the set version is
//     still the same. This closes the read-miss/install race against a
//     concurrent write: the writer evicts (bumping the version) BEFORE its
//     commit, so any install carrying pre-write data also carries a stale
//     version.
//   * a clock hand for stage-local round-robin eviction when all ways of a
//     set are occupied.
//
// The control plane additionally shadows each occupied slot's full
// fingerprint (not a data-plane register; used by predicate flushes during
// owner recovery, when the volatile installed-set bookkeeping at the owner is
// lost and the switch must drop everything the crashed owner installed).
#ifndef SRC_PSWITCH_META_CACHE_H_
#define SRC_PSWITCH_META_CACHE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/net/packet.h"
#include "src/pswitch/fingerprint.h"
#include "src/pswitch/register_stage.h"

namespace switchfs::psw {

struct MetaCacheConfig {
  // Ways = RecordStages; the register budget is ways * sets * (1 tag word +
  // kCacheRecordWords value words + amortized version/clock registers).
  int num_ways = 4;
  uint32_t num_sets = 4096;  // power of two; masked onto the fingerprint index
};

// The response body a cache hit is answered with. The switch itself never
// builds or parses message bodies from header state in anything but this
// fixed shape: the record words are copied verbatim from the way registers.
struct CacheHitResp : net::Message {
  static constexpr uint32_t kType = 130;
  CacheHitResp() : Message(kType) {}
  net::CacheRecord record{};
};

class MetaCache {
 public:
  explicit MetaCache(const MetaCacheConfig& config = MetaCacheConfig{});

  // Probes the set for `fp`; on a tag hit copies the record words into `out`
  // and returns true.
  bool Lookup(Fingerprint fp, net::CacheRecord* out);

  // Presence probe without counter side effects (tests / control plane).
  bool Contains(Fingerprint fp) const;

  // The set's current version (what a read miss exports for the install to
  // echo).
  uint32_t VersionOf(Fingerprint fp) const;

  // Version-guarded install: rejected (returns false) unless the set version
  // still equals `version`. Overwrites an existing way for the same tag,
  // otherwise fills an empty way, otherwise clock-evicts one.
  bool Install(Fingerprint fp, const net::CacheRecord& record,
               uint32_t version);

  // Removes `fp` if present and ALWAYS bumps the set version — the bump is
  // the write-side half of the install guard and must happen even when the
  // entry is absent (a racing install may be in flight). Returns whether the
  // entry was present.
  bool Evict(Fingerprint fp);

  // Switch reboot / recovery flush: drops every entry and bumps every set
  // version. Versions are monotonic across Clear() — resetting them would
  // let an install that predates the reboot be accepted afterwards.
  void Clear();

  // Control-plane predicate flush (owner recovery): evicts every occupied
  // slot whose shadowed fingerprint matches, bumping the affected set
  // versions. Returns the number of entries dropped.
  size_t EvictIf(const std::function<bool(Fingerprint)>& pred);

  int num_ways() const { return static_cast<int>(ways_.size()); }
  uint32_t num_sets() const { return num_sets_; }
  size_t MemoryBytes() const;
  uint64_t Population() const;  // occupied ways

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t installs() const { return installs_; }
  uint64_t install_rejects() const { return install_rejects_; }
  uint64_t evicts() const { return evicts_; }

 private:
  uint32_t SetOf(Fingerprint fp) const {
    return FingerprintIndex(fp) & (num_sets_ - 1);
  }

  uint32_t num_sets_;
  std::vector<RecordStage> ways_;
  std::vector<uint32_t> versions_;    // per set, starts at 1
  std::vector<uint32_t> clock_;       // per set, round-robin eviction hand
  std::vector<Fingerprint> shadow_;   // [way * num_sets + set] full fp

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t installs_ = 0;
  uint64_t install_rejects_ = 0;
  uint64_t evicts_ = 0;
};

}  // namespace switchfs::psw

#endif  // SRC_PSWITCH_META_CACHE_H_
