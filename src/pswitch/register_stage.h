// One match-action pipeline stage holding an array of 32-bit registers
// (paper §6.3, Fig 9). A stage supports exactly the three register actions
// the Tofino program implements, each a single atomic read-modify-write of
// one register:
//   (a) register query       - compare register to tag
//   (b) conditional insert   - succeed if register is 0 or already tag;
//                              write tag when it was 0
//   (c) conditional remove   - zero the register if it matches tag
//
// Stage atomicity and pipeline-ordered execution (§6.3 "Properties") are
// inherited from the single-threaded simulator: the data plane processes one
// packet's full stage sequence before the next packet's.
#ifndef SRC_PSWITCH_REGISTER_STAGE_H_
#define SRC_PSWITCH_REGISTER_STAGE_H_

#include <cstdint>
#include <vector>

namespace switchfs::psw {

class RegisterStage {
 public:
  explicit RegisterStage(uint32_t num_registers)
      : registers_(num_registers, 0) {}

  // (a) register query: true iff the register holds `tag`.
  bool Query(uint32_t index, uint32_t tag) const {
    return registers_[index] == tag;
  }

  // (b) conditional insert: returns true iff the register's value equals
  // zero or `tag`; writes `tag` into the register if the old value was zero.
  bool ConditionalInsert(uint32_t index, uint32_t tag) {
    uint32_t& reg = registers_[index];
    if (reg == 0) {
      reg = tag;
      return true;
    }
    return reg == tag;
  }

  // (c) conditional remove: zeroes the register if it matches `tag`.
  void ConditionalRemove(uint32_t index, uint32_t tag) {
    uint32_t& reg = registers_[index];
    if (reg == tag) {
      reg = 0;
    }
  }

  void Clear() { std::fill(registers_.begin(), registers_.end(), 0); }

  uint32_t size() const { return static_cast<uint32_t>(registers_.size()); }
  uint32_t ValueAt(uint32_t index) const { return registers_[index]; }
  size_t MemoryBytes() const { return registers_.size() * sizeof(uint32_t); }

 private:
  std::vector<uint32_t> registers_;
};

// One pipeline stage holding fixed-width multi-word record slots (the
// metadata read cache's way storage, Fletch-style): each slot is a 32-bit
// tag register plus `words_per_slot` value registers written/read as one
// stage action. A W-way cache is W consecutive RecordStages, mirroring how
// the dirty set spreads its ways across stages.
class RecordStage {
 public:
  RecordStage(uint32_t num_slots, uint32_t words_per_slot)
      : words_per_slot_(words_per_slot),
        tags_(num_slots, 0),
        words_(static_cast<size_t>(num_slots) * words_per_slot, 0) {}

  uint32_t TagAt(uint32_t slot) const { return tags_[slot]; }
  void SetTag(uint32_t slot, uint32_t tag) { tags_[slot] = tag; }

  const uint32_t* RecordAt(uint32_t slot) const {
    return words_.data() + static_cast<size_t>(slot) * words_per_slot_;
  }
  void WriteRecord(uint32_t slot, const uint32_t* words) {
    uint32_t* dst = words_.data() + static_cast<size_t>(slot) * words_per_slot_;
    for (uint32_t i = 0; i < words_per_slot_; ++i) {
      dst[i] = words[i];
    }
  }

  void Clear() {
    std::fill(tags_.begin(), tags_.end(), 0);
    std::fill(words_.begin(), words_.end(), 0);
  }

  uint32_t size() const { return static_cast<uint32_t>(tags_.size()); }
  uint32_t words_per_slot() const { return words_per_slot_; }
  size_t MemoryBytes() const {
    return (tags_.size() + words_.size()) * sizeof(uint32_t);
  }

 private:
  uint32_t words_per_slot_;
  std::vector<uint32_t> tags_;
  std::vector<uint32_t> words_;
};

}  // namespace switchfs::psw

#endif  // SRC_PSWITCH_REGISTER_STAGE_H_
