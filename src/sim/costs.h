// Calibration constants for the simulated hardware. Single source of truth
// for every latency/cost parameter in the repository; benches construct one
// CostModel and hand it to the cluster builder.
//
// Calibration targets (paper, §7.1 testbed: Xeon Gold 5317 servers, Optane
// PMEM, ConnectX-5 100GbE, Tofino switch):
//   * client<->server RTT through the ToR switch ~= 3 us (§7.3.3 reports the
//     extra dedicated-server hop as "an additional RTT (~3 us)").
//   * E-InfiniFS stat latency ~= 6 us, create ~= 15-20 us (Fig 2b, Fig 13).
//   * A DPDK dedicated tracker caps at ~11 Mops/s (Fig 15b).
//   * Serialized directory-update critical sections limit contended create
//     to ~60-120 Kops/s regardless of servers/cores (Fig 2c, 2d).
#ifndef SRC_SIM_COSTS_H_
#define SRC_SIM_COSTS_H_

#include "src/sim/time.h"

namespace switchfs::sim {

struct CostModel {
  // --- network fabric ---
  SimTime link_latency = Nanoseconds(750);       // host <-> switch, one way
  SimTime switch_pipeline = Nanoseconds(350);    // programmable switch per packet
  SimTime plain_switch_delay = Nanoseconds(300); // regular L2 switch per packet
  SimTime link_jitter = Nanoseconds(60);         // exponential jitter mean

  // --- server packet processing (DPDK-style userspace stack) ---
  SimTime rx_cost = Nanoseconds(450);  // per received packet
  SimTime tx_cost = Nanoseconds(350);  // per sent packet

  // --- local storage (RocksDB on PMEM; WAL persists to Optane) ---
  SimTime kv_get = Nanoseconds(1500);
  SimTime kv_put = Nanoseconds(2100);
  SimTime kv_delete = Nanoseconds(1800);
  SimTime kv_scan_per_entry = Nanoseconds(140);
  SimTime wal_append = Nanoseconds(850);
  // WAL appends issued inside a batched (group-committed) apply loop.
  SimTime wal_append_batched = Nanoseconds(260);
  SimTime wal_replay_per_record = Nanoseconds(3600);  // recovery redo cost

  // --- metadata operation logic ---
  SimTime op_dispatch = Nanoseconds(350);    // request decode + routing
  SimTime path_check = Nanoseconds(220);     // invalidation/permission check per component
  SimTime reply_build = Nanoseconds(250);
  // Read-modify-write of a directory inode (attrs + entry list) under the
  // directory lock. The full window is the serialized section that caps
  // contended create throughput in conventional designs (Challenge #2);
  // only dir_update_cpu of it occupies a core (the rest is storage latency
  // that overlaps with other requests when the directory is uncontended).
  SimTime dir_update_critical = Nanoseconds(8800);
  SimTime dir_update_cpu = Nanoseconds(2500);
  SimTime changelog_append = Nanoseconds(420);   // local per-server log append
  SimTime changelog_apply_entry = Nanoseconds(1500);  // entry-list op at owner
  SimTime attr_merge_apply = Nanoseconds(900);   // one consolidated attr put
  SimTime readdir_per_entry = Nanoseconds(90);

  // --- distributed transactions (baselines, rename, hard links) ---
  SimTime txn_prepare = Nanoseconds(1200);   // participant prepare (incl. WAL)
  SimTime txn_commit = Nanoseconds(800);     // participant commit apply

  // --- CephFS-sim heavy software stack (matches Fig 13's 587-1140 us) ---
  SimTime ceph_op_overhead = Microseconds(575);  // per-op MDS stack cost
  SimTime ceph_journal = Microseconds(240);      // serialized journal commit
  // --- IndexFS-sim lease-based client caching ---
  SimTime indexfs_lease_check = Nanoseconds(700);

  // --- dedicated dirty-set tracker (Fig 15): DPDK server, per-packet cost.
  // 12 cores / 1.05 us per packet ~= 11.4 Mops/s ceiling.
  SimTime tracker_packet_cost = Nanoseconds(1050);
  int tracker_cores = 12;

  // Extra per-packet match-action latency when the metadata read cache
  // answers from the way registers (record copy into the reply header).
  SimTime switch_cache_serve = Nanoseconds(150);

  // --- client-side costs ---
  SimTime client_op_cost = Nanoseconds(300);  // LibFS bookkeeping per op
  SimTime cache_lookup = Nanoseconds(80);

  // --- data plane (Fig 19 end-to-end) ---
  SimTime data_request_cost = Microseconds(3);   // per data-node request
  double data_bandwidth_gbps = 50.0;             // per data node
};

}  // namespace switchfs::sim

#endif  // SRC_SIM_COSTS_H_
