// CPU model for a simulated server: a pool of k identical cores with a FIFO
// run queue. Protocol handlers charge CPU by co_awaiting Run(cost); while a
// handler waits on a lock or an RPC it holds no core, mirroring the paper's
// coroutine-based non-blocking server design (§7.1). The per-server core
// count is the knob behind Fig 2(d) and Fig 14 (intra-server parallelism).
#ifndef SRC_SIM_CPU_H_
#define SRC_SIM_CPU_H_

#include <cstdint>

#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace switchfs::sim {

class CpuPool {
 public:
  CpuPool(Simulator* sim, int cores)
      : sim_(sim), cores_(cores), slots_(sim, cores) {}

  // Occupies one core for `cost` simulated time (FIFO queueing when all
  // cores are busy).
  Task<void> Run(SimTime cost) {
    co_await slots_.Acquire();
    busy_time_ += cost;
    co_await Delay(sim_, cost);
    slots_.Release();
  }

  int cores() const { return cores_; }
  size_t run_queue_length() const { return slots_.waiter_count(); }
  // Total core-nanoseconds consumed; used by benches to report utilization.
  SimTime busy_time() const { return busy_time_; }
  double Utilization(SimTime elapsed) const {
    if (elapsed <= 0) {
      return 0.0;
    }
    return static_cast<double>(busy_time_) /
           (static_cast<double>(elapsed) * cores_);
  }

 private:
  Simulator* sim_;
  int cores_;
  Semaphore slots_;
  SimTime busy_time_ = 0;
};

}  // namespace switchfs::sim

#endif  // SRC_SIM_CPU_H_
