#include "src/sim/discipline.h"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <utility>
#include <vector>

namespace switchfs::sim {

namespace {

struct Hold {
  uint64_t chain = 0;
  LockClass cls = LockClass::kOther;
  bool exclusive = false;
  int shard = -1;  // shard domain tag; -1 = untagged (rule exempt)
  std::string key;
};

struct Registry {
  std::unordered_map<uint64_t, Hold> holds;  // hold id -> hold
  // chain id -> live hold ids (small per chain; O(holds-per-chain) scans).
  std::unordered_map<uint64_t, std::vector<uint64_t>> by_chain;
  // chain id -> open CrossShardScope count (cross-shard-lock witnesses).
  std::unordered_map<uint64_t, int> cross_shard_scopes;
  uint64_t next_hold_id = 1;
  uint64_t next_chain_id = 1;
  uint64_t current_chain = 0;
  uint64_t violations = 0;
  DisciplineChecker::Handler handler;
};

Registry& Reg() {
  static Registry* r = new Registry();  // leaked: outlives all static guards
  return *r;
}

void Report(const char* rule, std::string detail) {
  auto& reg = Reg();
  reg.violations++;
  DisciplineChecker::Violation violation{rule, std::move(detail)};
  if (reg.handler) {
    reg.handler(violation);
    return;
  }
  std::fprintf(stderr, "DisciplineChecker: %s violation: %s\n",
               violation.rule.c_str(), violation.detail.c_str());
  std::abort();
}

}  // namespace

std::string_view LockClassName(LockClass cls) {
  switch (cls) {
    case LockClass::kInode:
      return "inode";
    case LockClass::kChangelogGroup:
      return "changelog-group";
    case LockClass::kAggGate:
      return "agg-gate";
    case LockClass::kAppend:
      return "append";
    case LockClass::kOther:
      break;
  }
  return "other";
}

void DisciplineChecker::SetHandler(Handler h) { Reg().handler = std::move(h); }

uint64_t DisciplineChecker::OnAcquired(uint64_t chain, LockClass cls,
                                       bool exclusive, std::string_view key,
                                       int shard) {
  auto& reg = Reg();
  if (chain != 0 && cls != LockClass::kAppend) {
    // append-innermost: a chain already holding an append mutex must not
    // acquire a lock of any other class. A second kAppend is legal — the
    // moved_fp rebind takes the (old, new) append pair in key order.
    auto it = reg.by_chain.find(chain);
    if (it != reg.by_chain.end()) {
      for (uint64_t id : it->second) {
        const Hold& h = reg.holds.at(id);
        if (h.cls == LockClass::kAppend) {
          Report("append-innermost",
                 "chain " + std::to_string(chain) + " acquired " +
                     std::string(LockClassName(cls)) + " lock '" +
                     std::string(key) + "' while holding append mutex '" +
                     h.key + "'");
          break;
        }
      }
    }
  }
  if (chain != 0 && shard >= 0) {
    // cross-shard-lock: a chain holding a same-class lock tagged with a
    // DIFFERENT shard domain must carry a CrossShardScope witness. Cross-
    // class holds are the ordinary lock order's business, not this rule's.
    auto scope_it = reg.cross_shard_scopes.find(chain);
    const bool sanctioned =
        scope_it != reg.cross_shard_scopes.end() && scope_it->second > 0;
    if (!sanctioned) {
      auto it = reg.by_chain.find(chain);
      if (it != reg.by_chain.end()) {
        for (uint64_t id : it->second) {
          const Hold& h = reg.holds.at(id);
          if (h.cls == cls && h.shard >= 0 && h.shard != shard) {
            Report("cross-shard-lock",
                   "chain " + std::to_string(chain) + " acquired " +
                       std::string(LockClassName(cls)) + " lock '" +
                       std::string(key) + "' (shard tag " +
                       std::to_string(shard) +
                       ") while holding same-class lock '" + h.key +
                       "' (shard tag " + std::to_string(h.shard) +
                       ") without a CrossShardScope");
            break;
          }
        }
      }
    }
  }
  const uint64_t id = reg.next_hold_id++;
  reg.holds.emplace(id, Hold{chain, cls, exclusive, shard, std::string(key)});
  reg.by_chain[chain].push_back(id);
  return id;
}

void DisciplineChecker::BeginCrossShard(uint64_t chain) {
  if (chain != 0) {
    Reg().cross_shard_scopes[chain]++;
  }
}

void DisciplineChecker::EndCrossShard(uint64_t chain) {
  if (chain == 0) {
    return;
  }
  auto& reg = Reg();
  auto it = reg.cross_shard_scopes.find(chain);
  if (it == reg.cross_shard_scopes.end()) {
    return;  // scope outlived a Reset(); nothing to close
  }
  if (--it->second <= 0) {
    reg.cross_shard_scopes.erase(it);
  }
}

void DisciplineChecker::OnReleased(uint64_t hold_id) {
  if (hold_id == 0) {
    return;  // default-constructed / already-released guard
  }
  auto& reg = Reg();
  auto it = reg.holds.find(hold_id);
  if (it == reg.holds.end()) {
    return;  // released after a Reset() wiped the registry
  }
  auto chain_it = reg.by_chain.find(it->second.chain);
  if (chain_it != reg.by_chain.end()) {
    auto& ids = chain_it->second;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == hold_id) {
        ids[i] = ids.back();
        ids.pop_back();
        break;
      }
    }
    if (ids.empty()) {
      reg.by_chain.erase(chain_it);
    }
  }
  reg.holds.erase(it);
}

void DisciplineChecker::CheckEvictAllowed(uint64_t chain,
                                          std::string_view context) {
  if (chain == 0) {
    return;  // unknown origin (non-coroutine caller); nothing to check
  }
  auto& reg = Reg();
  auto it = reg.by_chain.find(chain);
  if (it != reg.by_chain.end()) {
    for (uint64_t id : it->second) {
      const Hold& h = reg.holds.at(id);
      if (h.cls == LockClass::kInode && h.exclusive) {
        return;
      }
    }
  }
  Report("evict-requires-lock",
         "chain " + std::to_string(chain) +
             " ran a switch-cache evict without holding an exclusive inode "
             "lock (" +
             std::string(context) + ")");
}

size_t DisciplineChecker::live_holds() { return Reg().holds.size(); }

uint64_t DisciplineChecker::violations_seen() { return Reg().violations; }

void DisciplineChecker::Reset() {
  auto& reg = Reg();
  reg.holds.clear();
  reg.by_chain.clear();
  reg.cross_shard_scopes.clear();
  reg.current_chain = 0;
  reg.violations = 0;
}

namespace discipline {

#if SFS_DISCIPLINE_CHECKS
uint64_t FreshChainId() { return Reg().next_chain_id++; }
void SetCurrentChain(uint64_t id) { Reg().current_chain = id; }
uint64_t CurrentChain() { return Reg().current_chain; }
#endif

}  // namespace discipline
}  // namespace switchfs::sim
