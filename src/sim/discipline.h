// Dynamic lock-discipline checker for the coroutine core — the runtime
// counterpart of scripts/lint/sfs_lint.py. The static analyzer proves the
// *lexical* discipline (no borrow across co_await, append mutex innermost,
// evicts under the exclusive inode lock); this checker enforces the same
// rules on the *executed* interleavings of every Debug/Asan tier-1 run, so a
// suppressed-but-wrong site or a path the linter cannot see (locks stashed in
// transaction tables, handles moved between frames) still trips an assert.
//
// Chain identity: the simulator is single-threaded, but coroutines interleave
// at suspension points, so "who holds this lock" cannot be a global flag.
// Every sim::Task promise carries a chain id: a root coroutine gets a fresh
// id at its first co_await, and awaiting a child task propagates the id into
// the child (src/sim/task.h). A coroutine can query its own id with
//   uint64_t chain = co_await sim::discipline::CurrentChainId{};
// which never actually suspends (await_suspend returns false).
//
// Checks (violations call the installed handler; the default aborts):
//  * append-innermost — while a chain holds a LockClass::kAppend lock, it
//    must not acquire a lock of any OTHER class. Acquiring a second kAppend
//    lock is allowed: the moved_fp rebind takes the (old, new) append pair in
//    key order, which the static rule flags and the site suppresses with the
//    ordering argument (see PushEngine::RebindMovedLog).
//  * evict-requires-lock — EvictSwitchCacheEntry must run on a chain holding
//    an exclusive LockClass::kInode lock, unless the caller passes the
//    kExternal witness (rename 2PC: the locks live in txn_locks, acquired by
//    the prepare chain).
//  * cross-shard-lock — a chain holding a lock that belongs to one server
//    shard must not acquire a SAME-class lock belonging to a different shard
//    unless it carries an explicit CrossShardScope witness (the sanctioned
//    cross-shard handoffs: rmdir's parent/target change-log pair, the
//    moved_fp rebind's (old, new) pairs, BulkInsert's multi-name inode
//    locks). Cross-CLASS acquisitions stay governed by the ordinary lock
//    order — an upsert legitimately holds the parent group's change-log lock
//    while locking the child inode in another shard. Locks with no shard
//    tag (shard < 0: client caches, baselines, tests) are exempt.
//
// Everything compiles away when SFS_DISCIPLINE_CHECKS is 0 (the default for
// NDEBUG builds — RelWithDebInfo/Release); Debug and Asan builds keep it on.
#ifndef SRC_SIM_DISCIPLINE_H_
#define SRC_SIM_DISCIPLINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#ifndef SFS_DISCIPLINE_CHECKS
#ifdef NDEBUG
#define SFS_DISCIPLINE_CHECKS 0
#else
#define SFS_DISCIPLINE_CHECKS 1
#endif
#endif

namespace switchfs::sim {

// Role of a LockTable in the server's lock order (see ServerVolatile).
enum class LockClass {
  kOther = 0,
  kInode = 1,           // per-inode reader/writer locks
  kChangelogGroup = 2,  // per-fingerprint-group change-log locks
  kAggGate = 3,         // owner-side read/aggregation gates
  kAppend = 4,          // per-log append mutexes — innermost
};

std::string_view LockClassName(LockClass cls);

class DisciplineChecker {
 public:
  struct Violation {
    std::string rule;    // "append-innermost" | "evict-requires-lock"
    std::string detail;  // human-readable description of the interleaving
  };
  // Invoked on every violation. The default handler prints the violation and
  // aborts; tests install a capturing handler to assert the checker fires
  // without killing the process. Passing nullptr restores the default.
  using Handler = std::function<void(const Violation&)>;
  static void SetHandler(Handler h);

  // Registers a granted lock. chain 0 = unknown origin (skips the checks but
  // still tracks the hold). `shard` is the acquiring table's shard domain
  // tag (-1 = untagged, exempt from the cross-shard rule). Returns the hold
  // id the guard must pass to OnReleased; 0 is the "no hold" sentinel for
  // default-constructed guards.
  static uint64_t OnAcquired(uint64_t chain, LockClass cls, bool exclusive,
                             std::string_view key, int shard = -1);
  static void OnReleased(uint64_t hold_id);

  // evict-requires-lock: the calling chain must hold an exclusive kInode
  // lock. `context` names the evicted fingerprint for the report.
  static void CheckEvictAllowed(uint64_t chain, std::string_view context);

  // cross-shard-lock witness: while a chain has a scope open, same-class
  // acquisitions across shard domains are sanctioned (nesting refcounts).
  static void BeginCrossShard(uint64_t chain);
  static void EndCrossShard(uint64_t chain);

  // Observability for tests.
  static size_t live_holds();
  static uint64_t violations_seen();

  // Wipes all hold/chain state and the violation count (NOT the handler).
  // Crash-heavy tests abandon guards mid-flight by design; suites call this
  // between scenarios so leaked holds cannot cross-talk.
  static void Reset();
};

// RAII witness sanctioning same-class cross-shard lock pairs on one chain:
//   sim::CrossShardScope xs(co_await sim::discipline::CurrentChainId{});
// Open it BEFORE the second acquisition of the pair; the destructor closes
// it. Chain 0 (checks compiled out / non-coroutine caller) is a no-op.
class [[nodiscard]] CrossShardScope {
 public:
  CrossShardScope() = default;
  explicit CrossShardScope(uint64_t chain) : chain_(chain) {
#if SFS_DISCIPLINE_CHECKS
    if (chain_ != 0) {
      DisciplineChecker::BeginCrossShard(chain_);
    }
#endif
  }
  CrossShardScope(CrossShardScope&& o) noexcept : chain_(o.chain_) {
    o.chain_ = 0;
  }
  CrossShardScope& operator=(CrossShardScope&& o) noexcept {
    if (this != &o) {
      Release();
      chain_ = o.chain_;
      o.chain_ = 0;
    }
    return *this;
  }
  CrossShardScope(const CrossShardScope&) = delete;
  CrossShardScope& operator=(const CrossShardScope&) = delete;
  ~CrossShardScope() { Release(); }

  void Release() {
#if SFS_DISCIPLINE_CHECKS
    if (chain_ != 0) {
      DisciplineChecker::EndCrossShard(chain_);
    }
#endif
    chain_ = 0;
  }

 private:
  uint64_t chain_ = 0;
};

namespace discipline {

#if SFS_DISCIPLINE_CHECKS
// Chain-id bookkeeping used by sim::Task (src/sim/task.h). g_current tracks
// the chain of the coroutine currently executing a co_await expression;
// correctness relies only on reads that happen while that coroutine is still
// running (single-threaded simulator).
uint64_t FreshChainId();
void SetCurrentChain(uint64_t id);
uint64_t CurrentChain();
#endif

// Awaitable yielding the enclosing coroutine's chain id without suspending.
// Requires the enclosing promise to expose `chain_id` (sim::Task does); with
// checks compiled out it yields 0.
struct CurrentChainId {
  uint64_t id = 0;
  bool await_ready() const noexcept { return !SFS_DISCIPLINE_CHECKS; }
  template <typename Handle>
  bool await_suspend(Handle h) noexcept {
#if SFS_DISCIPLINE_CHECKS
    id = h.promise().chain_id;
#else
    (void)h;
#endif
    return false;  // resume immediately; this is a query, not a suspension
  }
  uint64_t await_resume() const noexcept { return id; }
};

}  // namespace discipline
}  // namespace switchfs::sim

#endif  // SRC_SIM_DISCIPLINE_H_
