#include "src/sim/simulator.h"

#include <utility>

namespace switchfs::sim {

void Simulator::ScheduleAt(SimTime at, std::function<void()> fn) {
  if (at < now_) {
    at = now_;
  }
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; the function object must be moved out
  // before pop. const_cast is confined to this one line.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  ev.fn();
  return true;
}

SimTime Simulator::Run() {
  while (Step()) {
  }
  return now_;
}

SimTime Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

uint64_t Simulator::RegisterWorkSource(WorkSource source) {
  const uint64_t id = next_source_id_++;
  sources_.emplace(id, std::move(source));
  return id;
}

void Simulator::UnregisterWorkSource(uint64_t id) { sources_.erase(id); }

size_t Simulator::pending_source_work() const {
  size_t n = 0;
  for (const auto& [id, source] : sources_) {
    n += source.pending();
  }
  return n;
}

SimTime Simulator::RunWhileWorkPending(SimTime deadline) {
  for (;;) {
    // Drain the visible event queue first (bounded by the deadline).
    while (!queue_.empty() && queue_.top().at <= deadline) {
      Step();
    }
    if (!queue_.empty()) {
      return now_;  // remaining events are all past the deadline
    }
    const size_t before = pending_source_work();
    if (before == 0) {
      return now_;  // quiescent: no events, no parked work
    }
    // Kick every source with parked work; their drains schedule events.
    for (auto& [id, source] : sources_) {
      if (source.pending() > 0) {
        source.kick();
      }
    }
    // Livelock guard: a kick that schedules nothing and shrinks nothing is
    // a stuck source — stop rather than spin forever.
    if (queue_.empty() && pending_source_work() >= before) {
      return now_;
    }
  }
}

}  // namespace switchfs::sim
