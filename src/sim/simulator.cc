#include "src/sim/simulator.h"

#include <utility>

namespace switchfs::sim {

void Simulator::ScheduleAt(SimTime at, std::function<void()> fn) {
  if (at < now_) {
    at = now_;
  }
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; the function object must be moved out
  // before pop. const_cast is confined to this one line.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  ev.fn();
  return true;
}

SimTime Simulator::Run() {
  while (Step()) {
  }
  return now_;
}

SimTime Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

}  // namespace switchfs::sim
