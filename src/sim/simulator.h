// Single-threaded deterministic discrete-event simulator. Events with equal
// timestamps fire in scheduling order (FIFO tie-break), which makes every run
// with the same seed bit-for-bit reproducible — a property the integration
// and property tests rely on.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace switchfs::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules fn to run at absolute time `at` (clamped to Now()).
  void ScheduleAt(SimTime at, std::function<void()> fn);
  // Schedules fn to run `delay` after Now().
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // Runs until the event queue is empty. Returns the final time.
  SimTime Run();
  // Runs until the queue is empty or simulated time would exceed `deadline`.
  // Events at exactly `deadline` are executed.
  SimTime RunUntil(SimTime deadline);
  // Executes at most one event; returns false if the queue was empty.
  bool Step();

  // ---- work sources (run-while-work-pending mode) -------------------------
  // A work source is a component holding work the event queue cannot see:
  // tasks parked in per-shard run queues, standing control-plane backlogs.
  // `pending` reports how much is queued; `kick` starts drains for it
  // (scheduling events). Sources let RunWhileWorkPending make background
  // work progress without an external op driving it.
  struct WorkSource {
    std::function<size_t()> pending;
    std::function<void()> kick;
  };
  uint64_t RegisterWorkSource(WorkSource source);
  void UnregisterWorkSource(uint64_t id);
  size_t pending_source_work() const;

  // Like Run()/RunUntil(deadline), but after the event queue drains, polls
  // the registered work sources: if any reports pending work, kicks them
  // all and keeps running. Returns when (a) the queue is empty AND every
  // source reports zero pending, (b) the deadline passes, or (c) a kick
  // round makes no progress (no events scheduled and pending unchanged —
  // a stuck source must not livelock the loop).
  SimTime RunWhileWorkPending(SimTime deadline = kSimTimeMax);

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  uint64_t next_source_id_ = 1;
  std::map<uint64_t, WorkSource> sources_;  // ordered: deterministic kicks
};

}  // namespace switchfs::sim

#endif  // SRC_SIM_SIMULATOR_H_
