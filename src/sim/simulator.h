// Single-threaded deterministic discrete-event simulator. Events with equal
// timestamps fire in scheduling order (FIFO tie-break), which makes every run
// with the same seed bit-for-bit reproducible — a property the integration
// and property tests rely on.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace switchfs::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules fn to run at absolute time `at` (clamped to Now()).
  void ScheduleAt(SimTime at, std::function<void()> fn);
  // Schedules fn to run `delay` after Now().
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // Runs until the event queue is empty. Returns the final time.
  SimTime Run();
  // Runs until the queue is empty or simulated time would exceed `deadline`.
  // Events at exactly `deadline` are executed.
  SimTime RunUntil(SimTime deadline);
  // Executes at most one event; returns false if the queue was empty.
  bool Step();

  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace switchfs::sim

#endif  // SRC_SIM_SIMULATOR_H_
