// Coroutine-aware synchronization primitives on top of the simulator.
//
// All primitives are strictly FIFO and resume waiters through the event queue
// (never inline) so that (a) lock-handoff chains cannot recurse arbitrarily
// deep and (b) wakeup order is deterministic. Ownership is granted either in
// await_ready (fast path) or at handoff time inside the release path — never
// in await_resume — so there is no window in which a late arrival can steal a
// grant from a queued waiter. None of these are thread-safe; the simulator is
// single-threaded by design.
#ifndef SRC_SIM_SYNC_H_
#define SRC_SIM_SYNC_H_

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/annotations.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace switchfs::sim {

// Suspends the awaiting coroutine for `delay` simulated nanoseconds.
class Delay {
 public:
  Delay(Simulator* sim, SimTime delay) : sim_(sim), delay_(delay) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    sim_->ScheduleAfter(delay_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Simulator* sim_;
  SimTime delay_;
};

// Exclusive mutex with FIFO handoff. Usage:
//   auto guard = co_await mu.Acquire();
class SFS_LOCKABLE Mutex {
 public:
  explicit Mutex(Simulator* sim) : sim_(sim) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  class [[nodiscard]] Guard {
   public:
    Guard() = default;
    explicit Guard(Mutex* mu) : mu_(mu) {}
    Guard(Guard&& o) noexcept : mu_(std::exchange(o.mu_, nullptr)) {}
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        Release();
        mu_ = std::exchange(o.mu_, nullptr);
      }
      return *this;
    }
    ~Guard() { Release(); }

    void Release() {
      if (mu_ != nullptr) {
        std::exchange(mu_, nullptr)->Unlock();
      }
    }
    bool held() const { return mu_ != nullptr; }

   private:
    Mutex* mu_ = nullptr;
  };

  class [[nodiscard]] Acquirer {
   public:
    explicit Acquirer(Mutex* mu) : mu_(mu) {}
    bool await_ready() noexcept {
      if (!mu_->locked_) {
        mu_->locked_ = true;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { mu_->waiters_.push_back(h); }
    // On the queued path the lock was handed off (still locked_) before the
    // resume was scheduled, so ownership is already ours here.
    Guard await_resume() { return Guard(mu_); }

   private:
    Mutex* mu_;
  };

  Acquirer Acquire() { return Acquirer(this); }
  bool locked() const { return locked_; }
  size_t waiter_count() const { return waiters_.size(); }

 private:
  void Unlock() {
    assert(locked_);
    if (waiters_.empty()) {
      locked_ = false;
      return;
    }
    // FIFO handoff: the lock stays held and transfers to the front waiter.
    auto next = waiters_.front();
    waiters_.pop_front();
    sim_->ScheduleAfter(0, [next] { next.resume(); });
  }

  Simulator* sim_;
  bool locked_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Reader/writer lock with strict FIFO admission (no reader or writer
// starvation): a reader queued behind a writer waits for that writer;
// consecutive queued readers are admitted as a batch.
class SFS_LOCKABLE SharedMutex {
 public:
  explicit SharedMutex(Simulator* sim) : sim_(sim) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  class [[nodiscard]] Guard {
   public:
    Guard() = default;
    Guard(SharedMutex* mu, bool exclusive) : mu_(mu), exclusive_(exclusive) {}
    Guard(Guard&& o) noexcept
        : mu_(std::exchange(o.mu_, nullptr)), exclusive_(o.exclusive_) {}
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        Release();
        mu_ = std::exchange(o.mu_, nullptr);
        exclusive_ = o.exclusive_;
      }
      return *this;
    }
    ~Guard() { Release(); }

    void Release() {
      if (mu_ != nullptr) {
        auto* mu = std::exchange(mu_, nullptr);
        if (exclusive_) {
          mu->UnlockExclusive();
        } else {
          mu->UnlockShared();
        }
      }
    }
    bool held() const { return mu_ != nullptr; }

   private:
    SharedMutex* mu_ = nullptr;
    bool exclusive_ = false;
  };

  class [[nodiscard]] Acquirer {
   public:
    Acquirer(SharedMutex* mu, bool exclusive) : mu_(mu), exclusive_(exclusive) {}
    bool await_ready() noexcept {
      if (!mu_->waiters_.empty()) {
        return false;  // strict FIFO: never bypass the queue
      }
      if (exclusive_) {
        if (!mu_->writer_ && mu_->readers_ == 0) {
          mu_->writer_ = true;
          return true;
        }
        return false;
      }
      if (!mu_->writer_) {
        mu_->readers_++;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      mu_->waiters_.push_back({h, exclusive_});
    }
    Guard await_resume() { return Guard(mu_, exclusive_); }

   private:
    SharedMutex* mu_;
    bool exclusive_;
  };

  Acquirer AcquireShared() { return Acquirer(this, false); }
  Acquirer AcquireExclusive() { return Acquirer(this, true); }

  int readers() const { return readers_; }
  bool has_writer() const { return writer_; }
  size_t waiter_count() const { return waiters_.size(); }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    bool exclusive;
  };

  void UnlockShared() {
    assert(readers_ > 0);
    if (--readers_ == 0) {
      Admit();
    }
  }
  void UnlockExclusive() {
    assert(writer_);
    writer_ = false;
    Admit();
  }

  // Grants the queue front. Grants are reflected in readers_/writer_
  // immediately (before the waiter physically resumes) so later arrivals and
  // unlocks observe a consistent reservation state.
  void Admit() {
    if (writer_ || readers_ > 0 || waiters_.empty()) {
      return;
    }
    if (waiters_.front().exclusive) {
      writer_ = true;
      auto next = waiters_.front().handle;
      waiters_.pop_front();
      sim_->ScheduleAfter(0, [next] { next.resume(); });
      return;
    }
    while (!waiters_.empty() && !waiters_.front().exclusive) {
      readers_++;
      auto next = waiters_.front().handle;
      waiters_.pop_front();
      sim_->ScheduleAfter(0, [next] { next.resume(); });
    }
  }

  Simulator* sim_;
  int readers_ = 0;
  bool writer_ = false;
  std::deque<Waiter> waiters_;
};

// Manual-reset event: Wait() suspends until Set() has been called.
class ManualEvent {
 public:
  explicit ManualEvent(Simulator* sim) : sim_(sim) {}

  class [[nodiscard]] Waiter {
   public:
    explicit Waiter(ManualEvent* ev) : ev_(ev) {}
    bool await_ready() const noexcept { return ev_->set_; }
    void await_suspend(std::coroutine_handle<> h) { ev_->waiters_.push_back(h); }
    void await_resume() const noexcept {}

   private:
    ManualEvent* ev_;
  };

  Waiter Wait() { return Waiter(this); }

  void Set() {
    if (set_) {
      return;
    }
    set_ = true;
    for (auto h : waiters_) {
      sim_->ScheduleAfter(0, [h] { h.resume(); });
    }
    waiters_.clear();
  }
  void Reset() { set_ = false; }
  bool is_set() const { return set_; }

 private:
  Simulator* sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Counting semaphore with FIFO waiters and direct permit handoff.
class Semaphore {
 public:
  Semaphore(Simulator* sim, int64_t permits) : sim_(sim), permits_(permits) {}

  class [[nodiscard]] Acquirer {
   public:
    explicit Acquirer(Semaphore* sem) : sem_(sem) {}
    bool await_ready() noexcept {
      if (sem_->waiters_.empty() && sem_->permits_ > 0) {
        sem_->permits_--;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { sem_->waiters_.push_back(h); }
    // Queued path: the permit was transferred at Release() time.
    void await_resume() const noexcept {}

   private:
    Semaphore* sem_;
  };

  Acquirer Acquire() { return Acquirer(this); }

  void Release() {
    if (!waiters_.empty()) {
      // Direct handoff; permits_ is not incremented.
      auto next = waiters_.front();
      waiters_.pop_front();
      sim_->ScheduleAfter(0, [next] { next.resume(); });
      return;
    }
    permits_++;
  }

  int64_t permits() const { return permits_; }
  size_t waiter_count() const { return waiters_.size(); }

 private:
  Simulator* sim_;
  int64_t permits_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Single-producer single-consumer completion slot, used by the RPC layer to
// join a response (or a timeout) with the awaiting caller. First Set() wins.
template <typename T>
class OneShot {
 public:
  explicit OneShot(Simulator* sim) : sim_(sim) {}

  bool Set(T value) {
    if (value_.has_value()) {
      return false;
    }
    value_ = std::move(value);
    if (waiter_) {
      auto h = std::exchange(waiter_, nullptr);
      sim_->ScheduleAfter(0, [h] { h.resume(); });
    }
    return true;
  }

  class [[nodiscard]] Waiter {
   public:
    explicit Waiter(OneShot* slot) : slot_(slot) {}
    bool await_ready() const noexcept { return slot_->value_.has_value(); }
    void await_suspend(std::coroutine_handle<> h) {
      assert(slot_->waiter_ == nullptr && "OneShot supports a single waiter");
      slot_->waiter_ = h;
    }
    T await_resume() { return *std::move(slot_->value_); }

   private:
    OneShot* slot_;
  };

  Waiter Wait() { return Waiter(this); }
  bool ready() const { return value_.has_value(); }

 private:
  Simulator* sim_;
  std::optional<T> value_;
  std::coroutine_handle<> waiter_ = nullptr;
};

// A join counter for fan-out/fan-in: arms with `expected` completions, each
// Done() decrements, waiters resume when the count reaches zero.
class JoinCounter {
 public:
  JoinCounter(Simulator* sim, int expected) : event_(sim), remaining_(expected) {
    if (remaining_ <= 0) {
      event_.Set();
    }
  }

  void Done() {
    assert(remaining_ > 0);
    if (--remaining_ == 0) {
      event_.Set();
    }
  }

  ManualEvent::Waiter Wait() { return event_.Wait(); }
  int remaining() const { return remaining_; }

 private:
  ManualEvent event_;
  int remaining_;
};

}  // namespace switchfs::sim

#endif  // SRC_SIM_SYNC_H_
