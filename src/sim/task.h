// Coroutine task type for simulator-driven protocol code. Mirrors the
// structure of the paper's coroutine-based RPC engine (§7.1): server handlers
// and client operations are lazy coroutines that co_await locks, simulated
// CPU time, and RPC completions.
//
// Lifetime rules:
//  * Task<T> is lazy; nothing runs until it is co_awaited or Spawn()ed.
//  * The awaiting coroutine owns the child Task object for the duration of
//    the await, so child frames never outlive their owners.
//  * Spawn() detaches a Task<void>; the wrapper frame self-destroys when the
//    task completes.
#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "src/sim/discipline.h"

namespace switchfs::sim {

template <typename T>
class Task;

namespace internal {

template <typename T>
struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;
#if SFS_DISCIPLINE_CHECKS
  // Chain identity for the dynamic discipline checker: every frame reachable
  // from one root (spawned or test-driven) coroutine shares one id, so lock
  // holds registered by LockTable sub-coroutines attribute to the logical
  // operation that owns them. 0 until the frame's first co_await.
  uint64_t chain_id = 0;

  // Pass-through await_transform that publishes this frame's chain id so an
  // awaited child Task can inherit it (Task::Awaiter::await_suspend reads it
  // back synchronously, before any suspension can intervene).
  template <typename A>
  decltype(auto) await_transform(A&& awaitable) {
    if (chain_id == 0) {
      chain_id = discipline::FreshChainId();
    }
    discipline::SetCurrentChain(chain_id);
    return std::forward<A>(awaitable);
  }
#endif

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace internal

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::PromiseBase<T> {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  struct Awaiter {
    Handle h;
    bool await_ready() const noexcept { return !h || h.done(); }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
      h.promise().continuation = cont;
#if SFS_DISCIPLINE_CHECKS
      h.promise().chain_id = discipline::CurrentChain();
#endif
      return h;  // symmetric transfer: start (or resume into) the child
    }
    T await_resume() {
      auto& p = h.promise();
      if (p.error) {
        std::rethrow_exception(p.error);
      }
      assert(p.value.has_value());
      return *std::move(p.value);
    }
  };

  Awaiter operator co_await() const& noexcept { return Awaiter{handle_}; }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::PromiseBase<void> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  struct Awaiter {
    Handle h;
    bool await_ready() const noexcept { return !h || h.done(); }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
      h.promise().continuation = cont;
#if SFS_DISCIPLINE_CHECKS
      h.promise().chain_id = discipline::CurrentChain();
#endif
      return h;
    }
    void await_resume() {
      auto& p = h.promise();
      if (p.error) {
        std::rethrow_exception(p.error);
      }
    }
  };

  Awaiter operator co_await() const& noexcept { return Awaiter{handle_}; }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

namespace internal {

// Self-destroying wrapper used by Spawn(). The wrapper frame owns the
// spawned Task and is torn down automatically at final_suspend.
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
#if SFS_DISCIPLINE_CHECKS
    // Each spawned root starts a fresh discipline chain; the awaited Task
    // inherits the id via Task::Awaiter::await_suspend.
    template <typename A>
    decltype(auto) await_transform(A&& awaitable) {
      discipline::SetCurrentChain(discipline::FreshChainId());
      return std::forward<A>(awaitable);
    }
#endif
  };
};

inline DetachedTask RunDetached(Task<void> task) { co_await task; }

}  // namespace internal

// Starts `task` immediately and detaches it. The task's frame (and anything
// owned by it) is destroyed when it completes. Uncaught exceptions terminate.
inline void Spawn(Task<void> task) {
  internal::RunDetached(std::move(task));
}

}  // namespace switchfs::sim

#endif  // SRC_SIM_TASK_H_
