// Simulated time. All protocol and cost constants in the repository are in
// simulated nanoseconds; helpers below keep call sites readable.
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace switchfs::sim {

using SimTime = int64_t;  // nanoseconds since simulation start

constexpr SimTime kNanosecond = 1;
constexpr SimTime kSimTimeMax = INT64_MAX;
constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * 1000;
constexpr SimTime kSecond = 1000LL * 1000 * 1000;

constexpr SimTime Nanoseconds(int64_t n) { return n; }
constexpr SimTime Microseconds(int64_t n) { return n * kMicrosecond; }
constexpr SimTime Milliseconds(int64_t n) { return n * kMillisecond; }
constexpr SimTime Seconds(int64_t n) { return n * kSecond; }

constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e9; }
constexpr double ToMicros(SimTime t) { return static_cast<double>(t) / 1e3; }

}  // namespace switchfs::sim

#endif  // SRC_SIM_TIME_H_
