#include "src/tracker/dedicated_tracker.h"

#include <memory>
#include <utility>

#include "src/sim/sync.h"
#include "src/tracker/scatter_snapshot.h"

namespace switchfs::tracker {

sim::Task<InsertResult> DedicatedTracker::Insert(core::ServerContext& ctx,
                                                 core::VolPtr v,
                                                 psw::Fingerprint fp,
                                                 const core::InodeId& dir,
                                                 const net::Packet* client_req,
                                                 net::MsgPtr client_resp) {
  (void)dir;
  (void)client_req;
  (void)client_resp;
  auto op = std::make_shared<core::TrackerOp>();
  op->op = net::DsOp::kInsert;
  op->fp = fp;
  op->origin_server = ctx.config->index;
  auto r = co_await ctx.rpc->Call(server_->node_id(), op);
  if (v->dead) co_return InsertResult::kPublished;
  const auto* resp = r.ok() ? net::MsgAs<core::TrackerResp>(*r) : nullptr;
  if (resp == nullptr || !resp->ok) {
    // Overflow — or an unreachable tracker, which degrades the same way.
    co_return InsertResult::kOverflow;
  }
  co_return InsertResult::kPublished;
}

sim::Task<void> DedicatedTracker::RemoveAndMulticast(core::ServerContext& ctx,
                                                     core::VolPtr v,
                                                     psw::Fingerprint fp,
                                                     uint64_t seq,
                                                     net::Packet rm) {
  auto op = std::make_shared<core::TrackerOp>();
  op->op = net::DsOp::kRemove;
  op->fp = fp;
  op->remove_seq = seq;
  op->origin_server = ctx.config->index;
  auto r = co_await ctx.rpc->Call(server_->node_id(), op);
  (void)r;  // stale removes and tracker outages both resolve conservatively
  if (v->dead) co_return;
  rm.ds.origin = ctx.node_id();  // multicast exclusion key
  ctx.rpc->Send(std::move(rm));
}

bool DedicatedTracker::ReadScattered(const core::ServerContext& ctx,
                                     const core::ServerVolatile& v,
                                     const net::Packet& p,
                                     const core::MetaReq& req,
                                     psw::Fingerprint fp) const {
  (void)ctx;
  (void)v;
  (void)p;
  (void)fp;
  return req.scattered_hint;
}

sim::Task<void> DedicatedTracker::ClientPreRead(net::RpcEndpoint& rpc,
                                                psw::Fingerprint fp,
                                                core::MetaReq& req,
                                                net::CallOptions& opts) {
  // Extra RTT to the tracker before the request proper (Fig 15a).
  auto q = std::make_shared<core::TrackerOp>();
  q->op = net::DsOp::kQuery;
  q->fp = fp;
  net::CallOptions topts = opts;
  topts.ds = net::DsHeader{};
  auto tr = co_await rpc.Call(server_->node_id(), q, topts);
  req.scattered_hint = tr.ok() &&
                       net::MsgAs<core::TrackerResp>(*tr) != nullptr &&
                       net::MsgAs<core::TrackerResp>(*tr)->present;
}

sim::Task<void> DedicatedTracker::RecoverAndRebuild() {
  server_->Restart();
  auto fps = co_await CollectScatteredFingerprints(ctl_rpc_, *cluster_);
  for (psw::Fingerprint fp : fps) {
    server_->dirty_set().Insert(fp);
  }
  reconstructed_entries_ += fps.size();
  // Charge the reinstall cost (one tracker-packet worth per entry).
  co_await sim::Delay(sim_, static_cast<sim::SimTime>(fps.size()) *
                                costs_->tracker_packet_cost);
}

}  // namespace switchfs::tracker
