// Dedicated-server dirty tracker (§7.3.3, Fig 15): one TrackerServer node
// maintains the dirty set; every hook costs an extra RTT to it. The node is
// a single point of failure — while it is down, inserts fall back to
// synchronous parent updates and client pre-reads degrade to "not
// scattered" hints (exactly the weakness the replicated tracker removes).
// RecoverAndRebuild models the operator-driven recovery: restart the node
// empty, then reconstruct the dirty set from the servers' pending
// change-log state.
#ifndef SRC_TRACKER_DEDICATED_TRACKER_H_
#define SRC_TRACKER_DEDICATED_TRACKER_H_

#include "src/tracker/dirty_tracker.h"
#include "src/tracker/tracker_server.h"

namespace switchfs::tracker {

class DedicatedTracker : public DirtyTracker {
 public:
  DedicatedTracker(sim::Simulator* sim, net::Network* net,
                   core::ClusterContext* cluster, const sim::CostModel* costs,
                   TrackerServer* server)
      : sim_(sim),
        cluster_(cluster),
        costs_(costs),
        server_(server),
        ctl_rpc_(sim, net) {}

  const char* name() const override { return "dedicated"; }

  sim::Task<InsertResult> Insert(core::ServerContext& ctx, core::VolPtr v,
                                 psw::Fingerprint fp, const core::InodeId& dir,
                                 const net::Packet* client_req,
                                 net::MsgPtr client_resp) override;
  sim::Task<void> RemoveAndMulticast(core::ServerContext& ctx, core::VolPtr v,
                                     psw::Fingerprint fp, uint64_t seq,
                                     net::Packet rm) override;
  bool ReadScattered(const core::ServerContext& ctx,
                     const core::ServerVolatile& v, const net::Packet& p,
                     const core::MetaReq& req,
                     psw::Fingerprint fp) const override;
  sim::Task<void> ClientPreRead(net::RpcEndpoint& rpc, psw::Fingerprint fp,
                                core::MetaReq& req,
                                net::CallOptions& opts) override;

  // Operator-driven recovery after a tracker crash: restart the node with an
  // empty set and reconstruct it from every server's pending change-logs.
  // Completes when the tracker serves a fully reconstructed set again.
  sim::Task<void> RecoverAndRebuild();

  TrackerServer* server() { return server_; }
  uint64_t reconstructed_entries() const { return reconstructed_entries_; }

 private:
  sim::Simulator* sim_;
  core::ClusterContext* cluster_;
  const sim::CostModel* costs_;
  TrackerServer* server_;
  net::RpcEndpoint ctl_rpc_;  // failover/reconstruction control traffic
  uint64_t reconstructed_entries_ = 0;
};

}  // namespace switchfs::tracker

#endif  // SRC_TRACKER_DEDICATED_TRACKER_H_
