// Pluggable dirty-set tracker subsystem (paper §7.3.3): where "directory X
// has deferred updates scattered across servers" is tracked is an
// exchangeable component. This interface hides the tracker choice — the
// in-network switch dirty set, a dedicated tracker server, the directory
// owner itself, or a chain-replicated tracker group — behind four hooks that
// correspond to the protocol's touch points:
//
//   Insert          §5.2.1 steps 6/7: after a deferred update commits, mark
//                   the parent scattered and wait for the acknowledgement
//                   (or the overflow signal that forces a synchronous apply).
//   RemoveAndMulticast
//                   §5.2.2 step 5: atomically-enough remove the fingerprint
//                   (with the §5.4.1 sequence number) and multicast the
//                   aggregation collect request to the server group.
//   ReadScattered   §5.2.2 step 1: owner-side test "is this directory in
//                   scattered state?" for an incoming directory read.
//   ClientPreRead   §4.2: what a client does before a directory read — stamp
//                   the in-network query header, or pre-query the tracker
//                   service and forward the bit as `scattered_hint`.
//
// Implementations are shared cluster-wide and stateless with respect to the
// calling server: every server-side hook receives the caller's ServerContext
// and volatile state, so one tracker object serves all servers and clients.
#ifndef SRC_TRACKER_DIRTY_TRACKER_H_
#define SRC_TRACKER_DIRTY_TRACKER_H_

#include "src/core/messages.h"
#include "src/core/server_context.h"
#include "src/net/packet.h"
#include "src/net/rpc.h"
#include "src/sim/task.h"

namespace switchfs::tracker {

// Outcome of publishing a deferred update through the tracker.
enum class InsertResult {
  // The tracker recorded the fingerprint; the caller still owes the client
  // its response.
  kPublished,
  // The tracker recorded the fingerprint AND the response was (or will be)
  // delivered in-band — the switch's insert-ack multicast carries it, or the
  // overflow redirect completed the operation at the parent's owner.
  kDelivered,
  // The tracker is full or unreachable: the caller must fall back to a
  // synchronous parent update (§5.2.1 fallback), then respond itself.
  kOverflow,
};

class DirtyTracker {
 public:
  virtual ~DirtyTracker() = default;
  virtual const char* name() const = 0;

  // --- server side (runs inside the calling server's coroutines) ---

  // Marks `fp` scattered on behalf of `dir`'s deferred update and waits for
  // the acknowledgement. `client_req` non-null: the operation has a waiting
  // client whose `client_resp` may be delivered in-band (see InsertResult);
  // null: internal update (rename/link legs), acks return to the server only.
  virtual sim::Task<InsertResult> Insert(core::ServerContext& ctx,
                                         core::VolPtr v, psw::Fingerprint fp,
                                         const core::InodeId& dir,
                                         const net::Packet* client_req,
                                         net::MsgPtr client_resp) = 0;

  // Removes `fp` with remove-sequence `seq` (§5.4.1 duplicate protection)
  // and sends the prepared aggregation multicast `rm` (dst/body already set;
  // implementations stamp the dirty-set header or contact the tracker
  // service first, then send).
  virtual sim::Task<void> RemoveAndMulticast(core::ServerContext& ctx,
                                             core::VolPtr v,
                                             psw::Fingerprint fp, uint64_t seq,
                                             net::Packet rm) = 0;

  // Owner-side scattered test for the directory read in packet `p`.
  virtual bool ReadScattered(const core::ServerContext& ctx,
                             const core::ServerVolatile& v,
                             const net::Packet& p, const core::MetaReq& req,
                             psw::Fingerprint fp) const = 0;

  // --- client side ---

  // Pre-read hook: runs on `rpc` (the client's endpoint) before the read is
  // sent. `opts` are the read's call options (query header target); `req` is
  // the read request (scattered_hint target). Implementations needing an
  // extra tracker RTT derive their call options from `opts`.
  virtual sim::Task<void> ClientPreRead(net::RpcEndpoint& rpc,
                                        psw::Fingerprint fp,
                                        core::MetaReq& req,
                                        net::CallOptions& opts) = 0;
};

}  // namespace switchfs::tracker

#endif  // SRC_TRACKER_DIRTY_TRACKER_H_
