#include "src/tracker/owner_tracker.h"

#include <memory>
#include <utility>

namespace switchfs::tracker {

sim::Task<InsertResult> OwnerTracker::Insert(core::ServerContext& ctx,
                                             core::VolPtr v,
                                             psw::Fingerprint fp,
                                             const core::InodeId& dir,
                                             const net::Packet* client_req,
                                             net::MsgPtr client_resp) {
  (void)dir;
  (void)client_req;
  (void)client_resp;
  if (ctx.IsOwner(fp)) {
    v->ShardFor(fp).owner_scattered.insert(fp);
  } else {
    auto msg = std::make_shared<core::MarkScattered>();
    msg->fp = fp;
    auto r = co_await ctx.rpc->Call(ctx.cluster->ServerNode(ctx.OwnerOf(fp)),
                                    msg);
    (void)r;  // on timeout the push path repairs visibility
    if (v->dead) co_return InsertResult::kPublished;
  }
  co_return InsertResult::kPublished;
}

sim::Task<void> OwnerTracker::RemoveAndMulticast(core::ServerContext& ctx,
                                                 core::VolPtr v,
                                                 psw::Fingerprint fp,
                                                 uint64_t seq, net::Packet rm) {
  (void)seq;
  v->ShardFor(fp).owner_scattered.erase(fp);
  rm.ds.origin = ctx.node_id();
  ctx.rpc->Send(std::move(rm));
  co_return;
}

bool OwnerTracker::ReadScattered(const core::ServerContext& ctx,
                                 const core::ServerVolatile& v,
                                 const net::Packet& p,
                                 const core::MetaReq& req,
                                 psw::Fingerprint fp) const {
  (void)ctx;
  (void)p;
  (void)req;
  return v.ShardFor(fp).owner_scattered.count(fp) > 0;
}

sim::Task<void> OwnerTracker::ClientPreRead(net::RpcEndpoint& rpc,
                                            psw::Fingerprint fp,
                                            core::MetaReq& req,
                                            net::CallOptions& opts) {
  (void)rpc;
  (void)fp;
  (void)req;
  (void)opts;
  co_return;  // the owner consults its local state
}

}  // namespace switchfs::tracker
