// Owner-tracked dirty state (§7.3.3, Fig 16): each directory's owner keeps a
// local scattered set (ServerVolatile::owner_scattered). Non-owner inserts
// cost one MarkScattered RPC to the owner; reads consult the owner's local
// set for free; removes erase locally during the owner-run aggregation.
#ifndef SRC_TRACKER_OWNER_TRACKER_H_
#define SRC_TRACKER_OWNER_TRACKER_H_

#include "src/tracker/dirty_tracker.h"

namespace switchfs::tracker {

class OwnerTracker : public DirtyTracker {
 public:
  const char* name() const override { return "owner"; }

  sim::Task<InsertResult> Insert(core::ServerContext& ctx, core::VolPtr v,
                                 psw::Fingerprint fp, const core::InodeId& dir,
                                 const net::Packet* client_req,
                                 net::MsgPtr client_resp) override;
  sim::Task<void> RemoveAndMulticast(core::ServerContext& ctx, core::VolPtr v,
                                     psw::Fingerprint fp, uint64_t seq,
                                     net::Packet rm) override;
  bool ReadScattered(const core::ServerContext& ctx,
                     const core::ServerVolatile& v, const net::Packet& p,
                     const core::MetaReq& req,
                     psw::Fingerprint fp) const override;
  sim::Task<void> ClientPreRead(net::RpcEndpoint& rpc, psw::Fingerprint fp,
                                core::MetaReq& req,
                                net::CallOptions& opts) override;
};

}  // namespace switchfs::tracker

#endif  // SRC_TRACKER_OWNER_TRACKER_H_
