#include "src/tracker/replicated_tracker.h"

#include <algorithm>
#include <utility>

#include "src/tracker/scatter_snapshot.h"

namespace switchfs::tracker {

ReplicatedTracker::ReplicatedTracker(sim::Simulator* sim, net::Network* net,
                                     core::ClusterContext* cluster,
                                     const sim::CostModel* costs,
                                     ReplicatedTrackerConfig config)
    : sim_(sim),
      cluster_(cluster),
      costs_(costs),
      config_(std::move(config)),
      ctl_rpc_(sim, net) {
  for (int i = 0; i < config_.replicas; ++i) {
    nodes_.push_back(std::make_unique<TrackerServer>(sim, net, costs,
                                                     config_.dirty_set));
    chain_.push_back(i);
  }
  RewireChain();
}

void ReplicatedTracker::RewireChain() {
  for (size_t i = 0; i < chain_.size(); ++i) {
    const size_t hops_below = chain_.size() - 1 - i;
    nodes_[chain_[i]]->SetSuccessor(hops_below > 0
                                        ? nodes_[chain_[i + 1]]->node_id()
                                        : net::kInvalidNode);
    // Per-depth forward budgets: a node `h` hops above the tail waits
    // 3 x 40us x (1+h) on its successor, strictly more than the successor's
    // own 3 x 40us x h worst case — so when the tail dies, the chain_fault
    // verdict from the node above it outruns every upstream timeout and the
    // fault is pinned on the dead replica, not a healthy intermediate.
    nodes_[chain_[i]]->SetForwardBudget(
        sim::Microseconds(40 * static_cast<int64_t>(1 + hops_below)), 3);
  }
}

void ReplicatedTracker::SuspectNode(net::NodeId id) {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->node_id() == id) {
      SuspectIndex(static_cast<int>(i));
      return;
    }
  }
}

void ReplicatedTracker::SuspectIndex(int idx) {
  if (rebuilding_) {
    return;  // a failover is already repairing the chain
  }
  if (std::find(chain_.begin(), chain_.end(), idx) == chain_.end()) {
    return;  // already evicted
  }
  rebuilding_ = true;
  failover_started_ = sim_->Now();
  rebuild_done_ = std::make_shared<sim::ManualEvent>(sim_);
  sim::Spawn(Rebuild(idx));
}

sim::Task<void> ReplicatedTracker::Rebuild(int dead_idx) {
  chain_.erase(std::find(chain_.begin(), chain_.end(), dead_idx));
  // Health-probe the remaining members before rewiring: a second replica may
  // have died undetected (or die with the suspect), and completing failover
  // with a dead node in the chain would stall every subsequent op until yet
  // another failover round.
  std::vector<int> survivors;
  for (int i : chain_) {
    auto ping = std::make_shared<core::TrackerOp>();
    ping->op = net::DsOp::kQuery;
    net::CallOptions opts;
    opts.timeout = sim::Microseconds(100);
    opts.max_attempts = 3;
    auto r = co_await ctl_rpc_.Call(nodes_[i]->node_id(), ping, opts);
    if (r.ok()) {
      survivors.push_back(i);
    }
  }
  chain_ = std::move(survivors);
  RewireChain();
  // Survivors restart from empty: partially propagated writes and per-origin
  // remove-sequence state may diverge across replicas, so the set is rebuilt
  // from the single source of truth — the servers' pending change-logs.
  for (int i : chain_) {
    nodes_[i]->dirty_set().Clear();
  }
  auto fps = co_await CollectScatteredFingerprints(ctl_rpc_, *cluster_);
  for (int i : chain_) {
    for (psw::Fingerprint fp : fps) {
      nodes_[i]->dirty_set().Insert(fp);
    }
  }
  reconstructed_entries_ += fps.size();
  // Charge the reinstall traffic: one tracker packet per entry per replica.
  co_await sim::Delay(sim_, static_cast<sim::SimTime>(fps.size()) *
                                static_cast<sim::SimTime>(chain_.size()) *
                                costs_->tracker_packet_cost);
  failovers_++;
  last_failover_duration_ = sim_->Now() - failover_started_;
  last_failover_completed_at_ = sim_->Now();
  rebuilding_ = false;
  rebuild_done_->Set();
}

sim::Task<void> ReplicatedTracker::WaitWhileRebuilding() {
  while (rebuilding_) {
    auto done = rebuild_done_;
    co_await done->Wait();
  }
}

sim::Task<net::MsgPtr> ReplicatedTracker::CallHeadWithFailover(
    core::ServerContext& ctx, core::VolPtr v,
    std::shared_ptr<core::TrackerOp> op) {
  for (int round = 0; round < config_.op_retry_rounds; ++round) {
    if (rebuilding_) {
      co_await WaitWhileRebuilding();
      if (v->dead) co_return nullptr;
    }
    const int head = head_index();
    if (head < 0) {
      break;  // every replica is down
    }
    auto r = co_await ctx.rpc->Call(nodes_[head]->node_id(), op,
                                    config_.op_call);
    if (v->dead) co_return nullptr;
    if (!r.ok()) {
      SuspectIndex(head);
      continue;
    }
    const auto* resp = net::MsgAs<core::TrackerResp>(*r);
    if (resp == nullptr) {
      continue;
    }
    if (resp->chain_fault) {
      SuspectNode(resp->fault_node);
      continue;
    }
    co_return *r;
  }
  co_return nullptr;
}

sim::Task<InsertResult> ReplicatedTracker::Insert(core::ServerContext& ctx,
                                                  core::VolPtr v,
                                                  psw::Fingerprint fp,
                                                  const core::InodeId& dir,
                                                  const net::Packet* client_req,
                                                  net::MsgPtr client_resp) {
  (void)dir;
  (void)client_req;
  (void)client_resp;
  auto op = std::make_shared<core::TrackerOp>();
  op->op = net::DsOp::kInsert;
  op->fp = fp;
  op->origin_server = ctx.config->index;
  net::MsgPtr r = co_await CallHeadWithFailover(ctx, v, op);
  if (v->dead) co_return InsertResult::kPublished;
  const auto* resp = net::MsgAs<core::TrackerResp>(r);
  if (resp == nullptr || !resp->ok) {
    // Chain unavailable within the retry budget, or a genuine dirty-set
    // overflow: the synchronous fallback keeps the update visible without
    // the tracker.
    co_return InsertResult::kOverflow;
  }
  co_return InsertResult::kPublished;
}

sim::Task<void> ReplicatedTracker::RemoveAndMulticast(core::ServerContext& ctx,
                                                      core::VolPtr v,
                                                      psw::Fingerprint fp,
                                                      uint64_t seq,
                                                      net::Packet rm) {
  auto op = std::make_shared<core::TrackerOp>();
  op->op = net::DsOp::kRemove;
  op->fp = fp;
  op->remove_seq = seq;
  op->origin_server = ctx.config->index;
  // ok=false without chain_fault means the remove was stale — either way
  // the entry is gone downstream, and on total failure the aggregation
  // proceeds regardless: a leftover tracker entry only costs one spurious
  // aggregation on a later read.
  net::MsgPtr r = co_await CallHeadWithFailover(ctx, v, op);
  (void)r;
  if (v->dead) co_return;
  rm.ds.origin = ctx.node_id();
  ctx.rpc->Send(std::move(rm));
}

bool ReplicatedTracker::ReadScattered(const core::ServerContext& ctx,
                                      const core::ServerVolatile& v,
                                      const net::Packet& p,
                                      const core::MetaReq& req,
                                      psw::Fingerprint fp) const {
  (void)ctx;
  (void)v;
  (void)p;
  (void)fp;
  // While the set is being reconstructed a "fresh" hint cannot be trusted.
  return req.scattered_hint || rebuilding_;
}

sim::Task<void> ReplicatedTracker::ClientPreRead(net::RpcEndpoint& rpc,
                                                 psw::Fingerprint fp,
                                                 core::MetaReq& req,
                                                 net::CallOptions& opts) {
  (void)opts;
  if (rebuilding_) {
    req.scattered_hint = true;  // conservative: forces the aggregation path
    co_return;
  }
  const int tail = tail_index();
  if (tail < 0) {
    req.scattered_hint = true;
    co_return;
  }
  auto q = std::make_shared<core::TrackerOp>();
  q->op = net::DsOp::kQuery;
  q->fp = fp;
  auto r = co_await rpc.Call(nodes_[tail]->node_id(), q, config_.op_call);
  const auto* resp = r.ok() ? net::MsgAs<core::TrackerResp>(*r) : nullptr;
  if (resp == nullptr) {
    SuspectIndex(tail);
    req.scattered_hint = true;
    co_return;
  }
  req.scattered_hint = resp->present;
}

}  // namespace switchfs::tracker
