// Chain-replicated dirty-tracker group (§7.3.3 extension; NetChain-style
// chain replication): 2-3 TrackerServer replicas ordered head -> tail.
// Writes (insert / remove-with-seq) enter at the head, propagate down the
// chain, and are acknowledged by the tail's ack bubbling back — so an acked
// entry is on every live replica. Queries are served by the tail, whose
// state is always fully replicated.
//
// Failure handling: there is no standing heartbeat (the simulator drains to
// quiescence between bursts); detection is lazy and sim-clock driven — the
// first operation whose RPC budget expires against a replica (or whose
// chain ack reports a dead downstream hop) triggers failover. Failover
// removes the dead replica, re-wires the survivors into a shorter chain,
// and reconstructs the dirty set from the metadata servers' pending
// change-log state (the durable scattered-key state of §5.4.2 recovery).
// Operations arriving during the rebuild wait for it; client queries
// conservatively report "scattered", which at worst costs one spurious
// aggregation and never hides a deferred update.
#ifndef SRC_TRACKER_REPLICATED_TRACKER_H_
#define SRC_TRACKER_REPLICATED_TRACKER_H_

#include <memory>
#include <vector>

#include "src/common/annotations.h"
#include "src/sim/sync.h"
#include "src/tracker/dirty_tracker.h"
#include "src/tracker/tracker_server.h"

namespace switchfs::tracker {

struct ReplicatedTrackerConfig {
  int replicas = 3;
  psw::DirtySetConfig dirty_set;
  // Per-call budget for tracker ops. Full exhaustion against one replica is
  // the failure-detection signal, so detection latency is roughly
  // timeout * max_attempts of simulated time.
  net::CallOptions op_call = [] {
    net::CallOptions o;
    o.timeout = sim::Microseconds(250);
    o.max_attempts = 4;
    return o;
  }();
  // Whole-operation retries around failovers before giving up (an exhausted
  // insert falls back to the synchronous parent update, staying correct).
  int op_retry_rounds = 4;
};

// Chain membership (nodes_/chain_) is rewired by failover while query
// coroutines are suspended mid-RPC, so borrows of it must not cross a
// co_await (sfs-lint rule borrow-across-suspend).
class SFS_SUSPENSION_SHARED ReplicatedTracker : public DirtyTracker {
 public:
  ReplicatedTracker(sim::Simulator* sim, net::Network* net,
                    core::ClusterContext* cluster, const sim::CostModel* costs,
                    ReplicatedTrackerConfig config);

  const char* name() const override { return "replicated"; }

  sim::Task<InsertResult> Insert(core::ServerContext& ctx, core::VolPtr v,
                                 psw::Fingerprint fp, const core::InodeId& dir,
                                 const net::Packet* client_req,
                                 net::MsgPtr client_resp) override;
  sim::Task<void> RemoveAndMulticast(core::ServerContext& ctx, core::VolPtr v,
                                     psw::Fingerprint fp, uint64_t seq,
                                     net::Packet rm) override;
  bool ReadScattered(const core::ServerContext& ctx,
                     const core::ServerVolatile& v, const net::Packet& p,
                     const core::MetaReq& req,
                     psw::Fingerprint fp) const override;
  sim::Task<void> ClientPreRead(net::RpcEndpoint& rpc, psw::Fingerprint fp,
                                core::MetaReq& req,
                                net::CallOptions& opts) override;

  // --- introspection & fault orchestration (tests, benches) ---
  int replica_count() const { return static_cast<int>(nodes_.size()); }
  TrackerServer& node(int i) { return *nodes_[i]; }
  const std::vector<int>& chain() const { return chain_; }
  int head_index() const { return chain_.empty() ? -1 : chain_.front(); }
  int tail_index() const { return chain_.empty() ? -1 : chain_.back(); }
  // Kills a replica. Detection stays lazy: the next op that hits the dead
  // node starts the failover.
  void CrashNode(int i) { nodes_[i]->Crash(); }
  // Starts failover immediately (benches that want a deterministic start).
  void TriggerFailover(int node_index) { SuspectIndex(node_index); }

  bool rebuilding() const { return rebuilding_; }
  uint64_t failovers() const { return failovers_; }
  sim::SimTime last_failover_duration() const {
    return last_failover_duration_;
  }
  // Instant the last rebuild finished (0 if none): lets callers that know
  // the crash instant compute detection + rebuild end to end.
  sim::SimTime last_failover_completed_at() const {
    return last_failover_completed_at_;
  }
  uint64_t reconstructed_entries() const { return reconstructed_entries_; }

 private:
  void SuspectNode(net::NodeId id);
  void SuspectIndex(int idx);
  void RewireChain();
  sim::Task<void> Rebuild(int dead_idx);
  sim::Task<void> WaitWhileRebuilding();
  // Shared write-path scaffolding: sends `op` to the current head, waiting
  // out rebuilds and suspecting unresponsive / chain-faulted replicas
  // between rounds. Returns the first usable TrackerResp, or nullptr once
  // the retry budget is exhausted, every replica is down, or `v` died.
  sim::Task<net::MsgPtr> CallHeadWithFailover(
      core::ServerContext& ctx, core::VolPtr v,
      std::shared_ptr<core::TrackerOp> op);

  sim::Simulator* sim_;
  core::ClusterContext* cluster_;
  const sim::CostModel* costs_;
  ReplicatedTrackerConfig config_;
  std::vector<std::unique_ptr<TrackerServer>> nodes_;
  std::vector<int> chain_;    // live replica indices, head first
  net::RpcEndpoint ctl_rpc_;  // failover/reconstruction control traffic
  bool rebuilding_ = false;
  std::shared_ptr<sim::ManualEvent> rebuild_done_;
  uint64_t failovers_ = 0;
  sim::SimTime failover_started_ = 0;
  sim::SimTime last_failover_duration_ = 0;
  sim::SimTime last_failover_completed_at_ = 0;
  uint64_t reconstructed_entries_ = 0;
};

}  // namespace switchfs::tracker

#endif  // SRC_TRACKER_REPLICATED_TRACKER_H_
