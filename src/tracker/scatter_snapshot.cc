#include "src/tracker/scatter_snapshot.h"

#include <algorithm>
#include <memory>

#include "src/core/messages.h"
#include "src/sim/sync.h"

namespace switchfs::tracker {

sim::Task<std::vector<psw::Fingerprint>> CollectScatteredFingerprints(
    net::RpcEndpoint& rpc, const core::ClusterContext& cluster) {
  // Fan out one snapshot call per server: every tracker write is parked on
  // the rebuild, so collection latency is bounded by the slowest (possibly
  // crashed) server, not the sum over all of them.
  const uint32_t n = cluster.ServerCount();
  auto collected =
      std::make_shared<std::vector<std::vector<psw::Fingerprint>>>(n);
  auto join =
      std::make_shared<sim::JoinCounter>(rpc.simulator(), static_cast<int>(n));
  for (uint32_t s = 0; s < n; ++s) {
    sim::Spawn(
        [](net::RpcEndpoint* ep, net::NodeId dst, uint32_t idx,
           std::shared_ptr<std::vector<std::vector<psw::Fingerprint>>> out,
           std::shared_ptr<sim::JoinCounter> jc) -> sim::Task<void> {
          net::CallOptions opts;
          opts.timeout = sim::Microseconds(500);
          opts.max_attempts = 6;
          auto r = co_await ep->Call(
              dst, net::MakeMsg<core::ScatteredSnapshotReq>(), opts);
          // Crashed server: its WAL-backed backlog re-pushes after its own
          // recovery; nothing to collect now.
          if (r.ok()) {
            if (const auto* resp =
                    net::MsgAs<core::ScatteredSnapshotResp>(*r)) {
              (*out)[idx] = resp->fps;
            }
          }
          jc->Done();
        }(&rpc, cluster.ServerNode(s), s, collected, join));
  }
  co_await join->Wait();

  std::vector<psw::Fingerprint> fps;
  for (const auto& per_server : *collected) {
    fps.insert(fps.end(), per_server.begin(), per_server.end());
  }
  std::sort(fps.begin(), fps.end());
  fps.erase(std::unique(fps.begin(), fps.end()), fps.end());
  co_return fps;
}

}  // namespace switchfs::tracker
