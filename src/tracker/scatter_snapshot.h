// Dirty-set reconstruction (shared by tracker failover paths): a rebuilt
// tracker asks every metadata server for the fingerprint groups that still
// hold pending change-log entries — the durable scattered-key state the
// paper's recovery path reconstructs from (§5.4.2). Entries are WAL-backed,
// so a crashed server re-publishes its share through the push path after
// its own recovery; unreachable servers are skipped, not waited for.
#ifndef SRC_TRACKER_SCATTER_SNAPSHOT_H_
#define SRC_TRACKER_SCATTER_SNAPSHOT_H_

#include <vector>

#include "src/core/server_context.h"
#include "src/net/rpc.h"
#include "src/pswitch/fingerprint.h"
#include "src/sim/task.h"

namespace switchfs::tracker {

// Returns the deduplicated union of every reachable server's scattered
// fingerprints, collected over `rpc`.
sim::Task<std::vector<psw::Fingerprint>> CollectScatteredFingerprints(
    net::RpcEndpoint& rpc, const core::ClusterContext& cluster);

}  // namespace switchfs::tracker

#endif  // SRC_TRACKER_SCATTER_SNAPSHOT_H_
