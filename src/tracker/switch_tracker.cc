#include "src/tracker/switch_tracker.h"

#include <memory>
#include <utility>

#include "src/sim/sync.h"

namespace switchfs::tracker {

sim::Task<InsertResult> SwitchTracker::Insert(core::ServerContext& ctx,
                                              core::VolPtr v,
                                              psw::Fingerprint fp,
                                              const core::InodeId& dir,
                                              const net::Packet* client_req,
                                              net::MsgPtr client_resp) {
  core::ChangeLog& clog = v->GetChangeLog(fp, dir);
  const uint64_t token = v->op_token_counter++;
  auto wait = std::make_shared<core::ServerVolatile::OpWait>();
  v->op_waits[token] = wait;

  // The envelope rides the insert packet: on success the switch forwards it
  // to the client (7a) and mirrors it back to us as the release signal (7b);
  // on overflow the address rewriter redirects it — backlog included — to
  // the parent's owner for a synchronous apply (§6.2).
  auto env = std::make_shared<core::InsertEnvelope>();
  env->client_resp = client_resp;
  env->dir = dir;
  env->fp = fp;
  env->src_server = ctx.config->index;
  env->op_token = token;
  env->backlog.assign(clog.pending().begin(), clog.pending().end());

  net::Packet ins;
  if (client_req != nullptr) {
    ins = ctx.rpc->MakeResponsePacket(*client_req, env);
  } else {
    ins.dst = ctx.node_id();
    ins.body = env;
  }
  ins.ds.op = net::DsOp::kInsert;
  ins.ds.fingerprint = fp;
  ins.ds.origin = ctx.node_id();
  ins.ds.notify = ins.dst;
  ins.ds.alt_dst = ctx.cluster->ServerNode(ctx.OwnerOf(fp));

  int result = 0;
  for (int attempt = 0; attempt < ctx.config->insert_max_attempts; ++attempt) {
    if (wait->acked) {
      result = 1;
      break;
    }
    if (wait->fallback_done) {
      result = 2;
      break;
    }
    wait->slot = std::make_shared<sim::OneShot<int>>(ctx.sim);
    ctx.rpc->Send(ins);
    auto slot = wait->slot;
    ctx.sim->ScheduleAfter(ctx.config->insert_ack_timeout,
                           [slot] { slot->Set(0); });
    result = co_await slot->Wait();
    if (v->dead) co_return InsertResult::kDelivered;
    if (result != 0) {
      break;
    }
  }
  if (result == 0) {
    // Retry budget exhausted without an ack: the entry stays in the
    // change-log and the push path repairs dirty-set visibility; retransmits
    // are served from the dedup cache below.
    ctx.stats->insert_exhausted++;
  }
  v->op_waits.erase(token);
  if (client_req != nullptr) {
    // From here on, client retransmits are served from the dedup cache.
    ctx.rpc->RecordResponse(*client_req, env);
  }
  co_return InsertResult::kDelivered;
}

sim::Task<void> SwitchTracker::RemoveAndMulticast(core::ServerContext& ctx,
                                                  core::VolPtr v,
                                                  psw::Fingerprint fp,
                                                  uint64_t seq, net::Packet rm) {
  (void)v;
  rm.ds.op = net::DsOp::kRemove;
  rm.ds.fingerprint = fp;
  rm.ds.remove_seq = seq;
  rm.ds.origin = ctx.node_id();
  ctx.rpc->Send(std::move(rm));
  co_return;
}

bool SwitchTracker::ReadScattered(const core::ServerContext& ctx,
                                  const core::ServerVolatile& v,
                                  const net::Packet& p,
                                  const core::MetaReq& req,
                                  psw::Fingerprint fp) const {
  (void)ctx;
  (void)v;
  (void)req;
  (void)fp;
  // The switch answered the query in flight and stamped the RET bit.
  return p.ds.op == net::DsOp::kQuery && p.ds.ret;
}

sim::Task<void> SwitchTracker::ClientPreRead(net::RpcEndpoint& rpc,
                                             psw::Fingerprint fp,
                                             core::MetaReq& req,
                                             net::CallOptions& opts) {
  (void)rpc;
  (void)req;
  opts.ds.op = net::DsOp::kQuery;
  opts.ds.fingerprint = fp;
  co_return;
}

}  // namespace switchfs::tracker
