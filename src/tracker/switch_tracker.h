// In-network dirty tracker (SwitchFS proper, §5.2.1/§6): inserts ride the
// operation's response packet through the programmable switch, which records
// the fingerprint and multicasts the ack to the client and the executing
// server (7a/7b); overflow redirects the packet to the parent's owner via
// the address rewriter (§6.2). Reads attach a query header the switch
// answers in flight, and removes are stamped onto the aggregation multicast.
#ifndef SRC_TRACKER_SWITCH_TRACKER_H_
#define SRC_TRACKER_SWITCH_TRACKER_H_

#include "src/tracker/dirty_tracker.h"

namespace switchfs::tracker {

class SwitchTracker : public DirtyTracker {
 public:
  const char* name() const override { return "switch"; }

  sim::Task<InsertResult> Insert(core::ServerContext& ctx, core::VolPtr v,
                                 psw::Fingerprint fp, const core::InodeId& dir,
                                 const net::Packet* client_req,
                                 net::MsgPtr client_resp) override;
  sim::Task<void> RemoveAndMulticast(core::ServerContext& ctx, core::VolPtr v,
                                     psw::Fingerprint fp, uint64_t seq,
                                     net::Packet rm) override;
  bool ReadScattered(const core::ServerContext& ctx,
                     const core::ServerVolatile& v, const net::Packet& p,
                     const core::MetaReq& req,
                     psw::Fingerprint fp) const override;
  sim::Task<void> ClientPreRead(net::RpcEndpoint& rpc, psw::Fingerprint fp,
                                core::MetaReq& req,
                                net::CallOptions& opts) override;
};

}  // namespace switchfs::tracker

#endif  // SRC_TRACKER_SWITCH_TRACKER_H_
