#include "src/tracker/tracker_server.h"

#include <memory>
#include <utility>

namespace switchfs::tracker {

sim::Task<void> TrackerServer::Handle(net::Packet p) {
  auto resp = std::make_shared<core::TrackerResp>();
  const auto* op = net::MsgAs<core::TrackerOp>(p.body);
  if (op == nullptr) {
    // Malformed or unknown body: reply ok=false instead of staying silent —
    // a silent drop leaves the caller's RPC retransmitting until its budget
    // runs out.
    rpc_.Respond(p, resp);
    co_return;
  }
  ops_++;
  co_await cpu_.Run(costs_->tracker_packet_cost);
  switch (op->op) {
    case net::DsOp::kQuery:
      resp->present = dirty_set_.Query(op->fp);
      resp->ok = true;
      break;
    case net::DsOp::kInsert:
      resp->ok = !force_overflow_ && dirty_set_.Insert(op->fp);
      break;
    case net::DsOp::kRemove:
      resp->ok = dirty_set_.Remove(op->fp, op->origin_server, op->remove_seq);
      break;
    default:
      break;  // unknown op: ok stays false
  }
  // Chain propagation: writes flow downstream before the ack; the remove is
  // forwarded even when locally stale so every replica's per-origin sequence
  // bookkeeping advances in the same order.
  if (successor_ != net::kInvalidNode &&
      (op->op == net::DsOp::kInsert || op->op == net::DsOp::kRemove)) {
    net::CallOptions hop;
    hop.timeout = forward_timeout_;
    hop.max_attempts = forward_attempts_;
    auto r = co_await rpc_.Call(successor_, std::make_shared<core::TrackerOp>(*op),
                                hop);
    if (!r.ok()) {
      resp->ok = false;
      resp->chain_fault = true;
      resp->fault_node = successor_;
    } else if (const auto* down = net::MsgAs<core::TrackerResp>(*r)) {
      resp->ok = resp->ok && down->ok;
      resp->chain_fault = down->chain_fault;
      resp->fault_node = down->fault_node;
    } else {
      resp->ok = false;
    }
  }
  rpc_.Respond(p, resp);
}

}  // namespace switchfs::tracker
