// Dedicated dirty-set tracker server (paper §7.3.3, Fig 15): a regular DPDK
// server maintaining the same set-associative dirty set the switch would.
// Unlike the switch, every operation costs server CPU (per-packet processing
// at ~1 us on 12 cores caps it near 11 Mops/s) and an extra RTT, which is
// exactly the trade-off Fig 15 quantifies.
//
// The same node type doubles as one replica of the chain-replicated tracker
// group (NetChain-style): with a successor configured, insert/remove ops are
// applied locally, forwarded downstream, and acknowledged only once the rest
// of the chain has acknowledged — so the tail's state is always a subset of
// every predecessor's and queries served at the tail observe fully
// replicated entries.
#ifndef SRC_TRACKER_TRACKER_SERVER_H_
#define SRC_TRACKER_TRACKER_SERVER_H_

#include "src/core/messages.h"
#include "src/net/rpc.h"
#include "src/pswitch/dirty_set.h"
#include "src/sim/costs.h"
#include "src/sim/cpu.h"

namespace switchfs::tracker {

class TrackerServer {
 public:
  TrackerServer(sim::Simulator* sim, net::Network* net,
                const sim::CostModel* costs,
                psw::DirtySetConfig ds_config = psw::DirtySetConfig{})
      : sim_(sim),
        costs_(costs),
        cpu_(sim, costs->tracker_cores),
        rpc_(sim, net),
        dirty_set_(ds_config) {
    rpc_.SetRequestHandler([this](net::Packet p) {
      sim::Spawn(Handle(std::move(p)));
    });
  }

  net::NodeId node_id() const { return rpc_.id(); }
  psw::DirtySet& dirty_set() { return dirty_set_; }
  void SetForceInsertOverflow(bool v) { force_overflow_ = v; }

  // Chain replication: forward insert/remove to `n` before acknowledging.
  // kInvalidNode (the default) makes this node a standalone tracker / tail.
  void SetSuccessor(net::NodeId n) { successor_ = n; }
  net::NodeId successor() const { return successor_; }
  // RPC budget for the forward hop. Budgets must SHRINK down the chain
  // (total timeout x attempts at depth d strictly above depth d+1's total):
  // when the tail dies, the node above it burns its whole successor budget
  // before replying chain_fault, and every upstream node must outwait that
  // reply or it would misattribute the fault to its own healthy successor.
  void SetForwardBudget(sim::SimTime timeout, int attempts) {
    forward_timeout_ = timeout;
    forward_attempts_ = attempts;
  }

  // Crash: the node drops all traffic and loses its DRAM dirty set.
  void Crash() {
    alive_ = false;
    rpc_.SetEnabled(false);
    rpc_.ResetVolatileState();
    dirty_set_.Clear();
  }
  // Restart with an empty dirty set; reconstruction reinstalls entries.
  void Restart() {
    alive_ = true;
    rpc_.SetEnabled(true);
  }
  bool alive() const { return alive_; }

  uint64_t ops() const { return ops_; }

 private:
  sim::Task<void> Handle(net::Packet p);

  sim::Simulator* sim_;
  const sim::CostModel* costs_;
  sim::CpuPool cpu_;
  net::RpcEndpoint rpc_;
  psw::DirtySet dirty_set_;
  net::NodeId successor_ = net::kInvalidNode;
  sim::SimTime forward_timeout_ = sim::Microseconds(200);
  int forward_attempts_ = 4;
  bool alive_ = true;
  bool force_overflow_ = false;
  uint64_t ops_ = 0;
};

}  // namespace switchfs::tracker

#endif  // SRC_TRACKER_TRACKER_SERVER_H_
