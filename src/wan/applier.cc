#include "src/wan/applier.h"

#include <algorithm>
#include <memory>

#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace switchfs::wan {

void WanApplier::Deliver(WanBatch batch, std::function<void()> ack) {
  const uint32_t origin = batch.origin_cluster;
  const uint64_t seq = batch.batch_seq;
  auto wm = applied_wm_.find(origin);
  if (wm != applied_wm_.end() && seq <= wm->second) {
    // Retransmit or post-recovery catch-up re-ship of a batch this cluster
    // already holds. Idempotent: ack it so the origin can retire it.
    stats_.wan_catchup_replays++;
    ack();
    return;
  }
  if (!in_progress_.insert({origin, seq}).second) {
    // Same batch already mid-apply (the origin's retry fired while our
    // shard lanes were still working). Drop; the next retry sees the
    // watermark.
    return;
  }
  sim::Spawn(ApplyBatch(std::move(batch), std::move(ack)));
}

sim::Task<void> WanApplier::ApplyBatch(WanBatch batch,
                                       std::function<void()> ack) {
  const uint32_t origin = batch.origin_cluster;
  const uint64_t seq = batch.batch_seq;
  auto result = std::make_shared<core::WanApplyResult>();
  auto jc = std::make_shared<sim::JoinCounter>(
      sim_, static_cast<int>(batch.entries.size()));
  for (const core::WanEntry& e : batch.entries) {
    const uint32_t owner = cluster_->ring().Owner(e.dir_fp);
    cluster_->server(owner).EnqueueWanApply(e, result, jc);
  }
  co_await jc->Wait();
  in_progress_.erase({origin, seq});
  if (result->failed > 0) {
    // An owner incarnation died mid-apply. No ack: the origin re-ships and
    // the LWW stamps make the second pass idempotent.
    co_return;
  }
  uint64_t& wm = applied_wm_[origin];
  wm = std::max(wm, seq);
  if (on_applied_ && origin != cluster_id_) {
    on_applied_(batch);  // hub: forward to the other spokes
  }
  ack();
}

}  // namespace switchfs::wan
