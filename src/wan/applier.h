// The destination-side WAN apply leg (one per cluster).
//
// WanApplier receives WanBatches off the fabric, dedups them on a
// per-origin batch watermark (single-flight in-order shipping means a
// batch below the watermark is a retransmit or a post-recovery catch-up
// re-ship — acked immediately, counted as wan_catchup_replays), and fans
// the entries to their owning servers' shard apply lanes
// (SwitchServer::EnqueueWanApply). The ack is withheld unless every entry
// settled — applied, LWW-dropped, or not-replicable-here — so a batch that
// raced a crashing owner incarnation is re-shipped by the origin and
// re-applied idempotently.
#ifndef SRC_WAN_APPLIER_H_
#define SRC_WAN_APPLIER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "src/core/cluster.h"
#include "src/wan/wan_batch.h"

namespace switchfs::wan {

class WanApplier {
 public:
  WanApplier(sim::Simulator* sim, core::Cluster* cluster, uint32_t cluster_id)
      : sim_(sim), cluster_(cluster), cluster_id_(cluster_id) {}

  // Runs at this cluster, post-fabric. `ack` is invoked (possibly much
  // later) iff the batch is fully settled here — the caller routes it back
  // to the origin over the fabric.
  void Deliver(WanBatch batch, std::function<void()> ack);

  // Hub wiring: called after a FOREIGN batch fully applies, so the hub's
  // replicator can forward it to the other spokes.
  void SetOnApplied(std::function<void(const WanBatch&)> on_applied) {
    on_applied_ = std::move(on_applied);
  }

  const core::ServerStats& stats() const { return stats_; }
  const core::ServerStats* stats_block() const { return &stats_; }
  // True while a delivered batch is still fanned out over the apply lanes.
  bool busy() const { return !in_progress_.empty(); }
  uint64_t watermark(uint32_t origin) const {
    auto it = applied_wm_.find(origin);
    return it == applied_wm_.end() ? 0 : it->second;
  }

 private:
  sim::Task<void> ApplyBatch(WanBatch batch, std::function<void()> ack);

  sim::Simulator* sim_;
  core::Cluster* cluster_;
  const uint32_t cluster_id_;
  std::map<uint32_t, uint64_t> applied_wm_;  // origin -> highest applied seq
  // Batches being applied right now; a retransmit of one is dropped (no
  // ack — the origin's retry finds the watermark advanced by then).
  std::set<std::pair<uint32_t, uint64_t>> in_progress_;
  std::function<void(const WanBatch&)> on_applied_;
  core::ServerStats stats_;
};

}  // namespace switchfs::wan

#endif  // SRC_WAN_APPLIER_H_
