#include "src/wan/geo.h"

#include <cassert>

namespace switchfs::wan {

GeoCluster::GeoCluster(GeoConfig config)
    : config_(std::move(config)),
      fabric_(&sim_, config_.link, config_.seed) {
  assert(config_.num_clusters >= 2 && "a geo world needs at least two sites");
  assert(config_.hub < config_.num_clusters);
  for (uint32_t i = 0; i < config_.num_clusters; ++i) {
    core::ClusterConfig cc = config_.cluster_template;
    cc.cluster_id = i;
    cc.shared_sim = &sim_;
    cc.seed = config_.seed + 1000 * i;  // distinct intra-DC jitter per site
    clusters_.push_back(std::make_unique<core::Cluster>(std::move(cc)));
  }
  for (uint32_t i = 0; i < config_.num_clusters; ++i) {
    std::vector<uint32_t> peers;
    if (i == config_.hub) {
      for (uint32_t j = 0; j < config_.num_clusters; ++j) {
        if (j != i) {
          peers.push_back(j);
        }
      }
    } else {
      peers.push_back(config_.hub);
    }
    durables_.push_back(std::make_unique<WanDurable>());
    replicators_.push_back(std::make_unique<WanReplicator>(
        &sim_, &fabric_, durables_.back().get(), i, std::move(peers),
        config_.replication));
    appliers_.push_back(
        std::make_unique<WanApplier>(&sim_, clusters_[i].get(), i));
  }
  for (uint32_t i = 0; i < config_.num_clusters; ++i) {
    for (uint32_t j = 0; j < config_.num_clusters; ++j) {
      if (j != i) {
        replicators_[i]->SetPeerApplier(j, appliers_[j].get());
      }
    }
    clusters_[i]->SetWanSink(replicators_[i].get());
    clusters_[i]->RegisterExtraStats(replicators_[i]->stats_block());
    clusters_[i]->RegisterExtraStats(appliers_[i]->stats_block());
  }
  // Star forwarding: a foreign batch the hub applied goes on to every spoke
  // that did not originate it (origin identity preserved end to end).
  WanReplicator* hub_repl = replicators_[config_.hub].get();
  appliers_[config_.hub]->SetOnApplied(
      [hub_repl](const WanBatch& b) { hub_repl->ForwardBatch(b); });
}

void GeoCluster::PreloadDirAll(const std::string& path) {
  for (auto& c : clusters_) {
    c->PreloadMkdir(path);
  }
}

void GeoCluster::PreloadFileAll(const std::string& path) {
  for (auto& c : clusters_) {
    c->PreloadFile(path);
  }
}

bool GeoCluster::WanIdle() const {
  for (const auto& r : replicators_) {
    if (!r->Idle()) {
      return false;
    }
  }
  return true;
}

bool GeoCluster::Converged() const {
  for (const auto& c : clusters_) {
    if (c->TotalPendingChangeLogEntries() != 0) {
      return false;
    }
  }
  for (const auto& a : appliers_) {
    if (a->busy()) {
      return false;
    }
  }
  return WanIdle();
}

core::SwitchServer::Stats GeoCluster::TotalStats() const {
  core::SwitchServer::Stats total;
  for (const auto& c : clusters_) {
    core::AccumulateServerStats(total, c->TotalStats());
  }
  return total;
}

}  // namespace switchfs::wan
