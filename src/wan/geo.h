// Multi-cluster world for geo-replication tests, benches, and examples.
//
// GeoCluster owns the one shared simulator every member cluster runs on
// (ClusterConfig::shared_sim — one event loop, one virtual clock, so LWW
// commit timestamps are comparable across clusters), the WanFabric between
// them, and per-cluster replication daemons: a WanDurable spool, a
// WanReplicator (attached as the cluster's WanSink) and a WanApplier.
// Topology is a star around `hub` (cluster 0 by default): spokes ship to
// the hub; the hub ships its own batches to every spoke and forwards each
// foreign batch to the spokes that did not originate it. With two clusters
// the star degenerates to a direct pair.
//
// Shared namespace: PreloadDirAll/PreloadFileAll preload the same path into
// every cluster. Cluster::PreloadMkdir derives directory InodeIds from the
// path hash, so the same path has the SAME identity everywhere — the
// requirement for cross-cluster entry routing (WanEntry carries the dir id
// and fingerprint; the receiving applier resolves the owner on its own
// ring, which may differ in size and layout from the origin's).
//
// Run discipline: replication timers are one-shot and armed only while
// work is pending, so sim().Run() terminates once every cluster is synced.
// While a partition stands, retry timers keep the queue non-empty — drive
// partitioned phases with sim().RunUntil(deadline) (or RunWhileWorkPending
// with a deadline), heal, then Run()/RunWhileWorkPending to quiesce.
#ifndef SRC_WAN_GEO_H_
#define SRC_WAN_GEO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/sim/simulator.h"
#include "src/wan/applier.h"
#include "src/wan/replicator.h"
#include "src/wan/wan_batch.h"
#include "src/wan/wan_fabric.h"

namespace switchfs::wan {

struct GeoConfig {
  uint32_t num_clusters = 2;
  uint32_t hub = 0;
  // Template for every member; cluster_id, shared_sim, and seed are
  // overwritten per cluster.
  core::ClusterConfig cluster_template;
  WanLinkConfig link;
  WanReplicatorConfig replication;
  uint64_t seed = 42;
};

class GeoCluster {
 public:
  explicit GeoCluster(GeoConfig config);

  sim::Simulator& sim() { return sim_; }
  WanFabric& fabric() { return fabric_; }
  uint32_t size() const { return static_cast<uint32_t>(clusters_.size()); }
  core::Cluster& cluster(uint32_t i) { return *clusters_[i]; }
  WanReplicator& replicator(uint32_t i) { return *replicators_[i]; }
  WanApplier& applier(uint32_t i) { return *appliers_[i]; }

  // Preloads the path into EVERY cluster (shared replicated namespace).
  void PreloadDirAll(const std::string& path);
  void PreloadFileAll(const std::string& path);

  void SetPartitioned(uint32_t a, uint32_t b, bool on) {
    fabric_.SetPartitioned(a, b, on);
  }

  // True when every origin has nothing left to ship (open + closed +
  // forward spools all empty everywhere).
  bool WanIdle() const;

  // Full cross-cluster quiescence: WanIdle, no batch mid-apply anywhere,
  // and every cluster's local change logs drained. The point benches and
  // tests call "converged".
  bool Converged() const;

  // Sum over all member clusters (replicator/applier blocks included via
  // Cluster::RegisterExtraStats).
  core::SwitchServer::Stats TotalStats() const;

 private:
  GeoConfig config_;
  sim::Simulator sim_;
  WanFabric fabric_;
  std::vector<std::unique_ptr<core::Cluster>> clusters_;
  std::vector<std::unique_ptr<WanDurable>> durables_;
  std::vector<std::unique_ptr<WanReplicator>> replicators_;
  std::vector<std::unique_ptr<WanApplier>> appliers_;
};

}  // namespace switchfs::wan

#endif  // SRC_WAN_GEO_H_
