#include "src/wan/replicator.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/core/keys.h"
#include "src/wan/applier.h"

namespace switchfs::wan {

WanReplicator::WanReplicator(sim::Simulator* sim, WanFabric* fabric,
                             WanDurable* durable, uint32_t cluster_id,
                             std::vector<uint32_t> peers,
                             WanReplicatorConfig config)
    : sim_(sim),
      fabric_(fabric),
      durable_(durable),
      cluster_id_(cluster_id),
      peers_(std::move(peers)),
      config_(config) {
  for (uint32_t p : peers_) {
    durable_->peer_acked.emplace(p, 0);
    lanes_[p].backoff = config_.ack_timeout;
  }
}

void WanReplicator::SetPeerApplier(uint32_t dst, WanApplier* applier) {
  peer_appliers_[dst] = applier;
}

void WanReplicator::OnEntryApplied(const core::WanEntry& entry) {
  if (durable_->open.empty()) {
    durable_->open_created_ts = sim_->Now();
  }
  durable_->open.push_back(entry);
  if (!running_) {
    return;  // durable capture continues; the recovered daemon drains it
  }
  if (durable_->open.size() >= config_.max_batch_entries && CanClose()) {
    CloseOpenBatch();
    KickAllPeers();
    return;
  }
  ArmCloseTimer();
}

bool WanReplicator::CanClose() const {
  return durable_->closed.size() < config_.max_closed_batches;
}

void WanReplicator::ArmCloseTimer() {
  if (close_timer_armed_) {
    return;
  }
  close_timer_armed_ = true;
  const uint64_t inc = incarnation_;
  sim_->ScheduleAfter(config_.batch_interval, [this, inc] {
    if (inc != incarnation_) {
      return;  // armed by a dead incarnation; Recover() re-arms
    }
    close_timer_armed_ = false;
    if (!running_ || durable_->open.empty()) {
      return;
    }
    if (!CanClose()) {
      // Acks are not keeping up (long lag or partition): let the open batch
      // absorb the backlog and check again next interval. See
      // WanReplicatorConfig::max_closed_batches.
      ArmCloseTimer();
      return;
    }
    CloseOpenBatch();
    KickAllPeers();
  });
}

void WanReplicator::CloseOpenBatch() {
  if (durable_->open.empty()) {
    return;
  }
  WanBatch batch;
  batch.origin_cluster = cluster_id_;
  batch.era = durable_->era;
  batch.batch_seq = durable_->next_batch_seq++;
  batch.created_ts = durable_->open_created_ts;
  batch.closed_ts = sim_->Now();
  // In-batch dedup: one entry per (dir, name), the LWW-newest. Shipping the
  // older writes would be harmless (they lose the same stamp comparison at
  // every applier) — just wasted WAN bytes.
  std::map<std::string, size_t> newest;  // stamp key -> index into entries
  for (core::WanEntry& e : durable_->open) {
    const core::LwwStamp stamp{e.entry.timestamp, e.origin_cluster,
                               e.src_server, e.entry.seq};
    const std::string key = core::LwwStampKey(e.dir, e.entry.name);
    auto it = newest.find(key);
    if (it == newest.end()) {
      newest.emplace(key, batch.entries.size());
      batch.entries.push_back(std::move(e));
      continue;
    }
    core::WanEntry& kept = batch.entries[it->second];
    const core::LwwStamp kept_stamp{kept.entry.timestamp, kept.origin_cluster,
                                    kept.src_server, kept.entry.seq};
    if (kept_stamp < stamp) {
      kept = std::move(e);  // newer write for the same name wins in place
    }
  }
  durable_->open.clear();
  durable_->closed.push_back(std::move(batch));
}

void WanReplicator::ForwardBatch(const WanBatch& batch) {
  for (uint32_t p : peers_) {
    if (p == batch.origin_cluster) {
      continue;
    }
    durable_->forward[p].push_back(batch);
    if (running_) {
      KickPeer(p);
    }
  }
}

void WanReplicator::KickAllPeers() {
  for (uint32_t p : peers_) {
    KickPeer(p);
  }
}

void WanReplicator::KickPeer(uint32_t peer) {
  if (!running_ || lanes_[peer].inflight) {
    return;
  }
  // Own batches first (lowest unacked), then forwarded foreign batches.
  const uint64_t acked = durable_->peer_acked[peer];
  for (const WanBatch& b : durable_->closed) {
    if (b.batch_seq > acked) {
      Ship(peer, b);
      return;
    }
  }
  auto fit = durable_->forward.find(peer);
  if (fit != durable_->forward.end() && !fit->second.empty()) {
    Ship(peer, fit->second.front());
  }
}

void WanReplicator::Ship(uint32_t peer, const WanBatch& batch) {
  PeerLane& lane = lanes_[peer];
  lane.inflight = true;
  lane.origin = batch.origin_cluster;
  lane.seq = batch.batch_seq;
  stats_.wan_batches_shipped++;

  WanApplier* applier = peer_appliers_.at(peer);
  const uint32_t me = cluster_id_;
  const uint32_t origin = batch.origin_cluster;
  const uint64_t seq = batch.batch_seq;
  const uint64_t inc = incarnation_;
  // Delivery runs at the destination after the one-way link delay; the ack
  // closes the loop over the same fabric (equally partition/loss-prone).
  // The inner incarnation check drops acks addressed to a crashed daemon.
  fabric_->Send(me, peer, [this, applier, peer, me, origin, seq, inc,
                           copy = batch]() mutable {
    applier->Deliver(std::move(copy), [this, peer, me, origin, seq, inc] {
      fabric_->Send(peer, me, [this, peer, origin, seq, inc] {
        if (inc != incarnation_) {
          return;
        }
        OnAck(peer, origin, seq);
      });
    });
  });

  // One-shot retry: if the unit is still unacked when this fires, abandon
  // the flight and re-ship with doubled backoff (bounded). Acked units make
  // this a no-op, so a synced origin has no standing timers.
  sim_->ScheduleAfter(lane.backoff, [this, peer, origin, seq, inc] {
    if (inc != incarnation_ || !running_) {
      return;
    }
    PeerLane& l = lanes_[peer];
    if (!l.inflight || l.origin != origin || l.seq != seq) {
      return;  // already acked (or a different unit is up)
    }
    l.inflight = false;
    l.backoff = std::min(l.backoff * 2, config_.max_backoff);
    KickPeer(peer);
  });
}

void WanReplicator::OnAck(uint32_t peer, uint32_t origin, uint64_t batch_seq) {
  if (origin == cluster_id_) {
    uint64_t& acked = durable_->peer_acked[peer];
    acked = std::max(acked, batch_seq);
    TrimSynced();
  } else {
    auto fit = durable_->forward.find(peer);
    if (fit != durable_->forward.end() && !fit->second.empty() &&
        fit->second.front().origin_cluster == origin &&
        fit->second.front().batch_seq == batch_seq) {
      fit->second.pop_front();
    }
  }
  PeerLane& lane = lanes_[peer];
  if (lane.inflight && lane.origin == origin && lane.seq == batch_seq) {
    lane.inflight = false;
    lane.backoff = config_.ack_timeout;  // the link works again
  }
  KickPeer(peer);
}

void WanReplicator::TrimSynced() {
  while (!durable_->closed.empty()) {
    const uint64_t seq = durable_->closed.front().batch_seq;
    bool synced = true;
    for (uint32_t p : peers_) {
      if (durable_->peer_acked[p] < seq) {
        synced = false;
        break;
      }
    }
    if (!synced) {
      return;
    }
    durable_->closed.pop_front();
  }
}

void WanReplicator::Crash() {
  running_ = false;
  incarnation_++;  // timers and in-flight acks die with the daemon
  close_timer_armed_ = false;
  for (auto& [peer, lane] : lanes_) {
    lane.inflight = false;
  }
}

void WanReplicator::Recover() {
  assert(!running_ && "Recover() without a preceding Crash()");
  running_ = true;
  incarnation_++;
  durable_->era++;  // batches closed from here on are a new incarnation's
  for (auto& [peer, lane] : lanes_) {
    lane.inflight = false;
    lane.backoff = config_.ack_timeout;
  }
  if (!durable_->open.empty()) {
    ArmCloseTimer();
  }
  // Catch-up: re-ship everything unacked. Peers whose ack got lost see a
  // duplicate and count wan_catchup_replays.
  KickAllPeers();
}

bool WanReplicator::Idle() const {
  if (!durable_->open.empty() || !durable_->closed.empty()) {
    return false;
  }
  for (const auto& [peer, q] : durable_->forward) {
    if (!q.empty()) {
      return false;
    }
  }
  return true;
}

}  // namespace switchfs::wan
