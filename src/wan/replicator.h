// The origin-side WAN replication daemon (one per cluster).
//
// WanReplicator is the cluster's core::WanSink: every committed change-log
// apply on the local servers lands in the durable spool (WanDurable::open)
// through OnEntryApplied. The daemon closes batches (timer or fill), ships
// them over the WanFabric to its peers — spokes ship to the hub only, the
// hub ships its own batches to every spoke AND forwards foreign batches it
// has applied (star topology, origin identity preserved) — and retires a
// batch once every peer acked it.
//
// Timer discipline: every timer is a one-shot armed only while there is
// work it could progress (an open batch to close, an unacked batch to
// retry). A fully-synced origin schedules nothing, so a quiescent
// multi-cluster world drains out of sim::Simulator::Run() — standing
// periodic timers would keep it alive forever.
//
// Crash/recovery: Crash() stops the daemon and invalidates its timers and
// pending acks via an incarnation counter (the WanDurable spool, including
// per-peer ack watermarks, survives — it is the origin's durable state).
// Recover() bumps the era, resets the per-peer lanes, and re-ships
// everything unacked; peers dedup the re-ships on their per-origin batch
// watermark (wan_catchup_replays).
#ifndef SRC_WAN_REPLICATOR_H_
#define SRC_WAN_REPLICATOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/core/server_context.h"
#include "src/sim/simulator.h"
#include "src/wan/wan_batch.h"
#include "src/wan/wan_fabric.h"

namespace switchfs::wan {

class WanApplier;

class WanReplicator : public core::WanSink {
 public:
  WanReplicator(sim::Simulator* sim, WanFabric* fabric, WanDurable* durable,
                uint32_t cluster_id, std::vector<uint32_t> peers,
                WanReplicatorConfig config);

  // Wires the destination applier for peer `dst` (geo harness setup).
  void SetPeerApplier(uint32_t dst, WanApplier* applier);

  // core::WanSink — the capture hook. Spool writes always happen (durable
  // capture); batching and shipping only while the daemon runs.
  void OnEntryApplied(const core::WanEntry& entry) override;

  // Hub only: queue a foreign batch for every peer except its origin (and
  // the hub itself), preserving origin identity and batch_seq.
  void ForwardBatch(const WanBatch& batch);

  void Crash();
  void Recover();
  bool running() const { return running_; }

  // True when nothing is pending at this origin: no open entries, no
  // unsynced own batches, no unforwarded foreign batches.
  bool Idle() const;

  uint32_t cluster_id() const { return cluster_id_; }
  const core::ServerStats& stats() const { return stats_; }
  // Registered into Cluster::TotalStats by the geo harness.
  const core::ServerStats* stats_block() const { return &stats_; }

 private:
  struct PeerLane {
    bool inflight = false;
    uint32_t origin = 0;  // identity of the inflight batch
    uint64_t seq = 0;
    sim::SimTime backoff = 0;  // current retry delay
  };

  void ArmCloseTimer();
  // False while the closed-batch backlog is at max_closed_batches — the
  // open batch keeps absorbing entries until acks drain the backlog.
  bool CanClose() const;
  void CloseOpenBatch();
  // Ships the next unacked unit to `peer` (lowest own unacked batch first,
  // then the forward queue) unless one is already in flight.
  void KickPeer(uint32_t peer);
  void KickAllPeers();
  void Ship(uint32_t peer, const WanBatch& batch);
  void OnAck(uint32_t peer, uint32_t origin, uint64_t batch_seq);
  // Retires own batches acked by every peer (CLOSED -> SYNCED).
  void TrimSynced();

  sim::Simulator* sim_;
  WanFabric* fabric_;
  WanDurable* durable_;
  const uint32_t cluster_id_;
  const std::vector<uint32_t> peers_;
  const WanReplicatorConfig config_;
  std::map<uint32_t, WanApplier*> peer_appliers_;
  std::map<uint32_t, PeerLane> lanes_;
  bool running_ = true;
  bool close_timer_armed_ = false;
  // Bumped by Crash() and Recover(); scheduled callbacks capture the value
  // and no-op when it moved on (the daemon that armed them is gone).
  uint64_t incarnation_ = 0;
  core::ServerStats stats_;
};

}  // namespace switchfs::wan

#endif  // SRC_WAN_REPLICATOR_H_
