// Geo-replication data model (docs/architecture.md "WAN replication").
//
// A WanBatch is the shipping unit between clusters: a run of committed
// change-log applies captured at one origin cluster, closed either on a
// timer (WanReplicatorConfig::batch_interval) or when it fills
// (max_batch_entries). Batches carry the origin's identity, an era (the
// replicator incarnation that closed them — bumped on recovery so peers can
// tell a catch-up re-ship from fresh traffic), and a dense per-origin
// batch_seq the receiving applier dedups on.
//
// Lifecycle: OPEN (accumulating in WanDurable::open) -> CLOSED (sequenced,
// in WanDurable::closed, being shipped) -> SYNCED (acked by every peer and
// retired from the spool). The spool is durable at the origin: a replicator
// daemon crash loses in-flight ships and pending acks, never captured
// entries.
#ifndef SRC_WAN_WAN_BATCH_H_
#define SRC_WAN_WAN_BATCH_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/core/server_context.h"
#include "src/sim/time.h"

namespace switchfs::wan {

struct WanBatch {
  uint32_t origin_cluster = 0;
  // Replicator incarnation that closed the batch (catch-up forensics; the
  // applier dedups on batch_seq alone, which is stable across eras).
  uint32_t era = 0;
  uint64_t batch_seq = 0;   // dense, per-origin
  sim::SimTime created_ts = 0;  // first entry captured
  sim::SimTime closed_ts = 0;
  std::vector<core::WanEntry> entries;
};

// The origin-side durable spool. Owned by the multi-cluster harness (like
// core::DurableState it survives simulated replicator crashes); the
// WanReplicator is the daemon that drains it.
struct WanDurable {
  std::vector<core::WanEntry> open;     // accumulating (OPEN) batch
  sim::SimTime open_created_ts = 0;
  std::deque<WanBatch> closed;          // CLOSED, not yet synced everywhere
  uint64_t next_batch_seq = 1;
  uint32_t era = 0;                     // bumped by WanReplicator::Recover
  // Highest batch_seq each peer has acked (origin-minted batches).
  std::map<uint32_t, uint64_t> peer_acked;
  // Hub only: foreign batches to forward to the other spokes, per
  // destination, FIFO. Origin identity and batch_seq are preserved, so the
  // spoke applier's per-origin watermark dedups forwarded duplicates too.
  std::map<uint32_t, std::deque<WanBatch>> forward;
};

// The simulated WAN link model (one config shared by every pair).
struct WanLinkConfig {
  sim::SimTime latency = sim::Milliseconds(20);  // one way
  sim::SimTime jitter = sim::Microseconds(500);  // uniform [0, jitter]
  double loss_rate = 0.0;                        // per one-way message
};

struct WanReplicatorConfig {
  // Close the open batch this long after its first entry (one-shot timer,
  // armed only while entries are pending — a quiescent origin schedules
  // nothing and lets the simulator drain).
  sim::SimTime batch_interval = sim::Milliseconds(5);
  size_t max_batch_entries = 256;  // close early when the batch fills
  // Re-ship an unacked batch after this long; backs off exponentially to
  // max_backoff while the link is lossy or partitioned.
  sim::SimTime ack_timeout = sim::Milliseconds(50);
  sim::SimTime max_backoff = sim::Milliseconds(400);
  // Adaptive sizing: while this many CLOSED batches are waiting for acks,
  // the close timer re-arms instead of closing — the open batch absorbs the
  // backlog and the next close ships it as ONE unit. Shipping is
  // single-flight per peer (one batch per WAN round trip), so without this
  // a long-lag link would drain a large write burst one small batch per
  // RTT and convergence time would scale with write volume; with it, the
  // per-RTT transfer grows to match the backlog and convergence stays a
  // small multiple of the lag.
  size_t max_closed_batches = 4;
};

}  // namespace switchfs::wan

#endif  // SRC_WAN_WAN_BATCH_H_
